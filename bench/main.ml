(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md, "Per-experiment index", and EXPERIMENTS.md
   for paper-vs-measured numbers).

     dune exec bench/main.exe            -- all experiments, paper-style tables
     dune exec bench/main.exe table1     -- one experiment by id
     dune exec bench/main.exe bechamel   -- Bechamel host-time microbenchmarks

   Experiment ids: table1, intranode, conversion, sweep, ablation, fig2,
   fig3 (includes fig4), scaling, cluster, cluster_smoke (CI-sized),
   faults, spans, evict, interp, blit, bridge, bechamel.

   --shards N sets the shard count the scaling experiment compares
   against the single-shard baseline (default 4). *)

module A = Isa.Arch
module W = Core.Workloads

let pf = Printf.printf

let hr () = pf "%s\n" (String.make 78 '-')

let host_cores = Domain.recommended_domain_count ()
let shards_flag = ref 4

(* ------------------------------------------------------------------ *)
(* --json FILE: machine-readable results (schema "emobility-bench/1")   *)
(* ------------------------------------------------------------------ *)

let json_path : string option ref = ref None
let json_rows : string list ref = ref []

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ json_escape s ^ "\""
let jint i = string_of_int i
let jnum f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"

let add_json_row ~experiment fields =
  json_rows := jobj (("experiment", jstr experiment) :: fields) :: !json_rows

let write_json path =
  let oc = open_out path in
  output_string oc
    (jobj
       [
         ("schema", jstr "emobility-bench/1");
         ("host_cores", jint host_cores);
         ("shards", jint !shards_flag);
         ("rows", "[" ^ String.concat "," (List.rev !json_rows) ^ "]");
       ]);
  output_string oc "\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Table 1: thread mobility timings                                     *)
(* ------------------------------------------------------------------ *)

type t1_row = {
  t1_name : string;
  t1_home : A.t;
  t1_dest : A.t;
  t1_paper_orig : string;
  t1_paper_enh : string;
}

let t1_rows =
  [
    { t1_name = "SPARC<->SPARC"; t1_home = A.sparc; t1_dest = A.sparc;
      t1_paper_orig = "40"; t1_paper_enh = "63" };
    { t1_name = "SPARC<->Sun3"; t1_home = A.sparc; t1_dest = A.sun3;
      t1_paper_orig = "N/A"; t1_paper_enh = "122" };
    { t1_name = "SPARC<->HP9000/300-1"; t1_home = A.sparc; t1_dest = A.hp9000_433;
      t1_paper_orig = "N/A"; t1_paper_enh = "52" };
    { t1_name = "SPARC<->HP9000/300-2"; t1_home = A.sparc; t1_dest = A.hp9000_385;
      t1_paper_orig = "N/A"; t1_paper_enh = "57" };
    { t1_name = "SPARC<->VAX"; t1_home = A.sparc; t1_dest = A.vax;
      t1_paper_orig = "N/A"; t1_paper_enh = "N/A (VAX died)" };
    { t1_name = "Sun-3<->Sun-3"; t1_home = A.sun3; t1_dest = A.sun3;
      t1_paper_orig = "65"; t1_paper_enh = "N/A (one Sun-3 left)" };
    { t1_name = "Sun-3<->HP9000/300-1"; t1_home = A.sun3; t1_dest = A.hp9000_433;
      t1_paper_orig = "N/A"; t1_paper_enh = "109" };
    { t1_name = "Sun-3<->HP9000/300-2"; t1_home = A.sun3; t1_dest = A.hp9000_385;
      t1_paper_orig = "N/A"; t1_paper_enh = "113" };
    { t1_name = "Sun-3<->VAX"; t1_home = A.sun3; t1_dest = A.vax;
      t1_paper_orig = "N/A"; t1_paper_enh = "N/A (VAX died)" };
    { t1_name = "HP9000/300-1<->HP9000/300-2"; t1_home = A.hp9000_433;
      t1_dest = A.hp9000_385; t1_paper_orig = "28"; t1_paper_enh = "44" };
    { t1_name = "VAX<->VAX"; t1_home = A.vax; t1_dest = A.vax;
      t1_paper_orig = "79"; t1_paper_enh = "N/A (VAX died)" };
  ]

let measure_ms ?protocol ?wire_impl home dest =
  let r = W.measure_roundtrip ?protocol ?wire_impl ~home ~dest ~iters:3 () in
  r.W.rt_us_per_trip /. 1000.0

let run_table1 () =
  pf "Table 1: Thread Mobility Timings\n";
  pf "Cost of moving a small thread (13 variables in the moved fragment)\n";
  pf "from one machine to another and back: two thread moves per figure.\n";
  pf "'Original' is the homogeneous system (raw copies, same-architecture\n";
  pf "only); 'Enhanced' is the heterogeneous system of the paper.\n";
  hr ();
  pf "%-28s %12s %12s %8s   %s\n" "Systems" "Original" "Enhanced" "Slower" "(paper: orig/enh ms)";
  hr ();
  List.iter
    (fun row ->
      let homogeneous = A.equal_family row.t1_home.A.family row.t1_dest.A.family in
      let orig =
        if homogeneous then
          Some (measure_ms ~protocol:Core.Cluster.Original row.t1_home row.t1_dest)
        else None
      in
      let enh = measure_ms row.t1_home row.t1_dest in
      add_json_row ~experiment:"table1"
        [
          ("pair", jstr row.t1_name);
          ("home", jstr row.t1_home.A.id);
          ("dest", jstr row.t1_dest.A.id);
          ("original_ms", match orig with Some v -> jnum v | None -> "null");
          ("enhanced_ms", jnum enh);
          ("paper_original", jstr row.t1_paper_orig);
          ("paper_enhanced", jstr row.t1_paper_enh);
        ];
      let orig_s =
        match orig with
        | Some v -> Printf.sprintf "%.0f ms" v
        | None -> "N/A"
      in
      let over_s =
        match orig with
        | Some v -> Printf.sprintf "%+.0f%%" ((enh -. v) /. v *. 100.0)
        | None -> ""
      in
      pf "%-28s %12s %9.0f ms %8s   (%s / %s)\n" row.t1_name orig_s enh over_s
        row.t1_paper_orig row.t1_paper_enh)
    t1_rows;
  hr ();
  pf "Notes: rows the paper marks N/A (its last VAX died, only one Sun-3\n";
  pf "was left) are measurable here — the simulation resurrects the\n";
  pf "machines.  Absolute times are virtual (cost-model) milliseconds;\n";
  pf "compare shape, not wall clock.\n\n"

(* ------------------------------------------------------------------ *)
(* Section 3.6: intra-node performance is unaffected by migration       *)
(* ------------------------------------------------------------------ *)

let run_intranode () =
  pf "Intra-node performance (section 3.6 claim)\n";
  pf "The same invocation-and-arithmetic loop, run by a thread created on\n";
  pf "the node vs. one that migrated in.  The paper: 'intra-node\n";
  pf "performance ... is independent of whether the thread was created on\n";
  pf "the processor or migrated to the processor'.\n";
  hr ();
  pf "%-16s %16s %16s %10s\n" "Architecture" "local thread" "migrated thread" "ratio";
  hr ();
  List.iter
    (fun arch ->
      let local = W.measure_intranode ~arch ~migrated:false ~n:2000 () in
      let migr = W.measure_intranode ~arch ~migrated:true ~n:2000 () in
      pf "%-16s %13.2f ms %13.2f ms %9.3fx\n" arch.A.name
        (local.W.in_virtual_us /. 1000.0)
        (migr.W.in_virtual_us /. 1000.0)
        (migr.W.in_virtual_us /. local.W.in_virtual_us))
    A.all;
  hr ();
  pf "The ratio must be 1.000: migrated threads execute the very same\n";
  pf "native instructions (measurements on both systems verify this\n";
  pf "trivially, as the paper puts it).\n\n"

(* ------------------------------------------------------------------ *)
(* Section 4 hypothesis: optimized conversion routines                  *)
(* ------------------------------------------------------------------ *)

let run_conversion () =
  pf "Conversion-routine ablation (sections 3.6/4)\n";
  pf "The paper attributes most of the enhanced system's penalty to its\n";
  pf "naive conversion routines (1-2 procedure calls per byte) and guesses\n";
  pf "that efficient routines would cut the penalty by about 50%%.\n";
  pf "Three wire tiers: naive (per-byte calls), bulk (per-datum calls),\n";
  pf "plan (compiled conversion plans; identical virtual cost to bulk,\n";
  pf "less host work).  'host' columns are simulator wall time.\n";
  hr ();
  let pairs = [ ("SPARC<->SPARC", A.sparc, A.sparc); ("VAX<->VAX", A.vax, A.vax) ] in
  pf "%-14s %8s %9s %9s %9s %5s %8s %8s\n" "Systems" "Original" "naive" "bulk"
    "plan" "cut" "host(n)" "host(p)";
  hr ();
  let measure ?protocol ?wire_impl home dest =
    W.measure_roundtrip ?protocol ?wire_impl ~home ~dest ~iters:3 ()
  in
  List.iter
    (fun (name, home, dest) ->
      let orig = measure ~protocol:Core.Cluster.Original home dest in
      let naive = measure ~wire_impl:Enet.Wire.Naive home dest in
      let bulk = measure ~wire_impl:Enet.Wire.Bulk home dest in
      let plan = measure ~wire_impl:Enet.Wire.Plan home dest in
      let ms r = r.W.rt_us_per_trip /. 1000.0 in
      let cut = (ms naive -. ms bulk) /. (ms naive -. ms orig) *. 100.0 in
      add_json_row ~experiment:"conversion"
        [
          ("pair", jstr name);
          ("original_ms", jnum (ms orig));
          ("naive_ms", jnum (ms naive));
          ("bulk_ms", jnum (ms bulk));
          ("plan_ms", jnum (ms plan));
          ("penalty_cut_pct", jnum cut);
          ("naive_host_s", jnum naive.W.rt_host_seconds);
          ("bulk_host_s", jnum bulk.W.rt_host_seconds);
          ("plan_host_s", jnum plan.W.rt_host_seconds);
        ];
      pf "%-14s %5.0f ms %6.0f ms %6.0f ms %6.0f ms %4.0f%% %6.1f ms %6.1f ms%s\n"
        name (ms orig) (ms naive) (ms bulk) (ms plan) cut
        (naive.W.rt_host_seconds *. 1000.0)
        (plan.W.rt_host_seconds *. 1000.0)
        (if ms plan <> ms bulk then "  VIRTUAL-TIME MISMATCH" else ""))
    pairs;
  hr ();
  pf "(the paper's guess: about 50%%; the plan tier must not move the\n";
  pf "virtual numbers at all — it only cuts host time)\n\n"

(* ------------------------------------------------------------------ *)
(* Extension: move cost vs thread-fragment size                          *)
(* ------------------------------------------------------------------ *)

let run_sweep () =
  pf "Extension: thread-move cost vs fragment size\n";
  pf "The paper measured one point (13 variables in the moved fragment);\n";
  pf "this sweep varies the number of live variables the activation\n";
  pf "record carries across each move ('live vars' counts the payload\n";
  pf "variables; five bookkeeping variables ride along).  SPARC<->SPARC.\n";
  hr ();
  pf "%10s %14s %14s %12s %14s\n" "live vars" "original" "enhanced" "overhead" "wire bytes";
  hr ();
  List.iter
    (fun n ->
      let orig =
        W.measure_roundtrip ~protocol:Core.Cluster.Original ~n_vars:n ~home:A.sparc
          ~dest:A.sparc ~iters:2 ()
      in
      let enh = W.measure_roundtrip ~n_vars:n ~home:A.sparc ~dest:A.sparc ~iters:2 () in
      pf "%10d %11.1f ms %11.1f ms %11.0f%% %14d\n" n
        (orig.W.rt_us_per_trip /. 1000.0)
        (enh.W.rt_us_per_trip /. 1000.0)
        ((enh.W.rt_us_per_trip -. orig.W.rt_us_per_trip)
        /. orig.W.rt_us_per_trip *. 100.0)
        (enh.W.rt_bytes_sent / (enh.W.rt_messages / 2)))
    [ 1; 5; 13; 25; 50; 100 ];
  hr ();
  pf "The enhanced system's overhead grows with fragment size (every value\n";
  pf "pays the per-byte conversion routines), while the original's cost is\n";
  pf "dominated by the fixed protocol path - the paper's analysis, swept.\n\n"

(* ------------------------------------------------------------------ *)
(* Ablation: the between-bus-stops peephole pass                        *)
(* ------------------------------------------------------------------ *)

let run_ablation () =
  pf "Ablation: peephole optimization between bus stops (section 2.2.1)\n";
  pf "'A compiler is free to reorder and optimize between bus stops'; this\n";
  pf "pass removes store/reload redundancy without touching the stop\n";
  pf "discipline.  Same workload as the intra-node experiment.\n";
  hr ();
  pf "%-16s %12s %12s %14s %14s\n" "Architecture" "bytes -O0" "bytes -O1" "time -O0" "time -O1";
  hr ();
  let code_bytes arch optimize =
    let prog =
      Emc.Compile.compile_exn ~optimize ~name:"abl" ~archs:[ arch ] W.intranode_src
    in
    Array.fold_left
      (fun acc (cc : Emc.Compile.compiled_class) ->
        acc
        + (Emc.Compile.artifact cc ~arch_id:arch.A.id).Emc.Compile.aa_code
            .Isa.Code.byte_size)
      0 prog.Emc.Compile.p_classes
  in
  List.iter
    (fun arch ->
      let b0 = code_bytes arch false and b1 = code_bytes arch true in
      let t0 = W.measure_intranode ~optimize:false ~arch ~migrated:false ~n:2000 () in
      let t1 = W.measure_intranode ~optimize:true ~arch ~migrated:false ~n:2000 () in
      pf "%-16s %12d %12d %11.2f ms %11.2f ms\n" arch.A.name b0 b1
        (t0.W.in_virtual_us /. 1000.0)
        (t1.W.in_virtual_us /. 1000.0))
    A.all;
  hr ();
  pf "Migration works identically at either level because both ends run\n";
  pf "identically optimized code — the prototype's rule; crossing levels\n";
  pf "is what the bridging mechanism (fig3) is for.\n\n"

(* ------------------------------------------------------------------ *)
(* Figure 2: the thread-state specialization hierarchy                  *)
(* ------------------------------------------------------------------ *)

let host_time_of f =
  (* warm up, then take the best of a few timed batches *)
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to 5 do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Marshalling fast path: host ns per encode/decode, by wire tier       *)
(* ------------------------------------------------------------------ *)

let marshal_src =
  {|
object Agent
  operation go[] -> [r : int]
    var i1 : int <- 1000001
    var i2 : int <- 1000002
    var i3 : int <- 1000003
    var i4 : int <- 1000004
    var i5 : int <- 1000005
    var i6 : int <- 1000006
    var i7 : int <- 1000007
    var i8 : int <- 1000008
    var i9 : int <- 1000009
    var x : real <- 6.5
    var y : real <- 0.25
    var s : string <- "carried-payload"
    var b : bool <- true
    move self to 1
    r <- i1 + i2 + i3 + i4 + i5 + i6 + i7 + i8 + i9
    if b and x == 6.5 and s == "carried-payload" then
      r <- r + 1
    end if
    if y == 0.25 then
      r <- r + 1
    end if
  end go
end Agent
|}

(* drive a kernel to its move bus stop and capture the real M_move
   payload, exactly what the cluster would put on the wire *)
let marshal_payload arch =
  let prog = Emc.Compile.compile_exn ~name:"mbench" ~archs:[ arch ] marshal_src in
  let k = Ert.Kernel.create ~node_id:0 ~arch () in
  Ert.Kernel.load_program k prog;
  let cc = Option.get (Emc.Compile.find_class prog "Agent") in
  let addr = Ert.Kernel.create_object k ~class_index:cc.Emc.Compile.cc_index in
  ignore (Ert.Kernel.spawn_root k ~target_addr:addr ~method_name:"go" ~args:[]);
  let rec to_move n =
    if n > 10000 then failwith "marshal bench: never reached the move";
    match Ert.Kernel.step k with
    | [ Ert.Kernel.Oc_move { seg; obj_addr; dest_node } ] ->
      Mobility.Move.park_mover_for_test seg;
      Mobility.Move.perform_move k ~obj_addr ~dest:dest_node
    | _ -> to_move (n + 1)
  in
  (prog, to_move 0)

let run_marshal () =
  pf "Marshalling fast path: host time per encode/decode of a real move\n";
  pf "payload (the Table 1 thread fragment, 13 variables), by wire tier.\n";
  pf "All tiers emit byte-identical wire images; bulk and plan also share\n";
  pf "identical virtual accounting — the plan tier only cuts host work.\n";
  hr ();
  let arch = A.sparc in
  let prog, payload = marshal_payload arch in
  let msg = Mobility.Marshal.M_move payload in
  let cache = Mobility.Conv_plan.create_cache () in
  Mobility.Conv_plan.set_program cache prog;
  let use =
    Mobility.Conv_plan.make_use cache
      { Mobility.Conv_plan.pr_src = arch; pr_dst = arch }
  in
  let stats = Enet.Conversion_stats.create () in
  (* each tier is timed on its real send path: the naive tier copies the
     buffer into a fresh string per message (the seed's behavior), the
     optimized tiers hand a pooled length-delimited view to the network
     and the receiver releases it after decoding *)
  let tiers =
    [
      ("naive", Enet.Wire.Naive, None, `Copy);
      ("bulk", Enet.Wire.Bulk, None, `View);
      ("plan", Enet.Wire.Plan, Some use, `View);
    ]
  in
  let image = Mobility.Marshal.encode ~impl:Enet.Wire.Naive ~stats msg in
  let image_view = Enet.Wire.view_of_string image in
  (* byte identity and decode fidelity across tiers, before any timing *)
  List.iter
    (fun (name, impl, plans, _) ->
      let enc = Mobility.Marshal.encode ?plans ~impl ~stats msg in
      if not (String.equal enc image) then
        failwith (Printf.sprintf "marshal bench: %s tier wire image differs" name);
      if Mobility.Marshal.decode ?plans ~impl ~stats enc <> msg then
        failwith (Printf.sprintf "marshal bench: %s tier does not round trip" name))
    tiers;
  let n = 2000 in
  let tier_fns =
    List.map
      (fun (name, impl, plans, mode) ->
        match mode with
        | `Copy ->
          ( name,
            (fun () -> ignore (Mobility.Marshal.encode ?plans ~impl ~stats msg)),
            fun () -> ignore (Mobility.Marshal.decode ?plans ~impl ~stats image) )
        | `View ->
          ( name,
            (fun () ->
              let v = Mobility.Marshal.encode_view ?plans ~impl ~stats msg in
              Enet.Wire.release_view v),
            fun () ->
              ignore (Mobility.Marshal.decode_view ?plans ~impl ~stats image_view) ))
      tiers
  in
  (* interleave the tiers round-robin so transient host load hits them
     all; keep each tier's best round *)
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let batch f =
    for _ = 1 to n do
      f ()
    done
  in
  List.iter
    (fun (_, e, d) ->
      batch e;
      batch d)
    tier_fns;
  let n_tiers = List.length tier_fns in
  let best_enc = Array.make n_tiers infinity in
  let best_dec = Array.make n_tiers infinity in
  for _ = 1 to 7 do
    List.iteri
      (fun i (_, e, d) ->
        let te = time (fun () -> batch e) in
        let td = time (fun () -> batch d) in
        if te < best_enc.(i) then best_enc.(i) <- te;
        if td < best_dec.(i) then best_dec.(i) <- td)
      tier_fns
  done;
  let ns t = t /. float_of_int n *. 1e9 in
  let results =
    List.mapi (fun i (name, _, _) -> (name, ns best_enc.(i), ns best_dec.(i))) tier_fns
  in
  let total (_, e, d) = e +. d in
  let naive_total = total (List.nth results 0) in
  pf "%-8s %12s %12s %10s %12s\n" "tier" "encode" "decode" "bytes" "vs naive";
  hr ();
  List.iter
    (fun ((name, e, d) as r) ->
      let speedup = naive_total /. total r in
      add_json_row ~experiment:"marshal"
        [
          ("tier", jstr name);
          ("encode_ns", jnum e);
          ("decode_ns", jnum d);
          ("bytes", jint (String.length image));
          ("speedup_vs_naive", jnum speedup);
        ];
      pf "%-8s %9.0f ns %9.0f ns %10d %11.2fx\n" name e d (String.length image)
        speedup)
    results;
  hr ();
  let plan_speedup = naive_total /. total (List.nth results 2) in
  pf "plan vs naive: %.2fx host-time speedup on identical wire bytes%s\n"
    plan_speedup
    (if plan_speedup >= 2.0 then "" else "  (BELOW the 2x target)");
  pf "plan cache: %d compiles, %d hits\n\n"
    (Mobility.Conv_plan.compiles cache)
    (Mobility.Conv_plan.hits cache)

let run_fig2 () =
  pf "Figure 2: the thread-state specialization hierarchy\n";
  pf "The same program executed at three levels of the hierarchy.  Program\n";
  pf "execution lower in the hierarchy is faster; higher levels have\n";
  pf "machine-independent thread state, where mobility is trivial.  The\n";
  pf "paper's technique gets native speed AND mobility at once.\n";
  hr ();
  let src = W.fig2_src in
  let n = 16 in
  let ast = Emc.Parser.parse_program src in
  let tprog = Emc.Typecheck.check ast in
  let ir = Emc.Lower.lower_program ~name:"fig2" tprog in
  let args_mv = [ Emi.Mvalue.Int (Int32.of_int n) ] in
  let source_run () =
    (Emi.Ast_interp.run tprog ~class_name:"Main" ~op:"start" ~args:args_mv)
      .Emi.Ast_interp.steps
  in
  let ir_run () =
    (Emi.Ir_interp.run ir ~class_name:"Main" ~op:"start" ~args:args_mv)
      .Emi.Ir_interp.steps
  in
  let native_arch = A.sparc in
  let native_prog = Emc.Compile.compile_exn ~name:"fig2" ~archs:[ native_arch ] src in
  let native_run () =
    let k = Ert.Kernel.create ~node_id:0 ~arch:native_arch () in
    Ert.Kernel.load_program k native_prog;
    let cc = Option.get (Emc.Compile.find_class native_prog "Main") in
    let addr = Ert.Kernel.create_object k ~class_index:cc.Emc.Compile.cc_index in
    let tid =
      Ert.Kernel.spawn_root k ~target_addr:addr ~method_name:"start"
        ~args:[ Ert.Value.Vint (Int32.of_int n) ]
    in
    let rec loop () =
      match Ert.Kernel.root_result k tid with
      | Some _ -> Ert.Kernel.insns_executed k
      | None ->
        ignore (Ert.Kernel.step k);
        loop ()
    in
    loop ()
  in
  (* an interpreter running ON the machine pays a per-operation dispatch
     cost in native instructions; these factors are typical for naive
     tree walkers and threaded-code interpreters of the period *)
  let source_dispatch = 25 and ir_dispatch = 12 in
  let t_src = host_time_of source_run and steps_src = source_run () in
  let t_ir = host_time_of ir_run and steps_ir = ir_run () in
  let t_nat = host_time_of native_run and insns_nat = native_run () in
  pf "%-24s %12s %18s %10s %12s\n" "Level" "work units" "native-insn equiv" "vs native"
    "sim host";
  hr ();
  let row name units equiv t =
    pf "%-24s %12d %18d %9.1fx %9.2f ms\n" name units equiv
      (float_of_int equiv /. float_of_int insns_nat)
      (t *. 1000.0)
  in
  row "Source (AST walk)" steps_src (steps_src * source_dispatch) t_src;
  row "Intermediate (IR)" steps_ir (steps_ir * ir_dispatch) t_ir;
  row "Native (SPARC code)" insns_nat insns_nat t_nat;
  hr ();
  pf "'native-insn equiv' models each interpreted operation costing %d\n" source_dispatch;
  pf "(source) or %d (IR) native instructions of dispatch; 'sim host' is\n" ir_dispatch;
  pf "what this simulator spends on the host (the native level is itself\n";
  pf "an instruction-level simulator there, so its host cost is high).\n\n"

(* ------------------------------------------------------------------ *)
(* Figures 3 and 4: bridging code                                      *)
(* ------------------------------------------------------------------ *)

let run_fig3 () =
  let module B = Mobility.Bridging in
  let plain n = { B.name = n; kind = B.Plain } in
  let call n = { B.name = n; kind = B.Call } in
  let stop n = { B.name = n; kind = B.Stop } in
  let abstract =
    B.abstract
      [ plain "o1"; plain "o2"; plain "o3"; call "switch"; plain "o4"; plain "o5";
        stop "o6" ]
  in
  let code1 = B.apply_edits abstract [ B.Swap 2; B.Swap 1 ] in
  let code2 =
    B.apply_edits abstract
      [ B.Swap 0; B.Swap 2; B.Swap 1; B.Swap 4; B.Swap 3; B.Swap 2; B.Swap 1; B.Swap 3;
        B.Swap 4; B.Swap 3; B.Swap 4 ]
  in
  pf "Figure 3: two code-motion optimizations of one abstract sequence\n";
  hr ();
  Format.printf "  abstract: %a@." B.pp_code abstract;
  Format.printf "  code1:    %a@." B.pp_code code1;
  Format.printf "  code2:    %a@." B.pp_code code2;
  hr ();
  pf "\nFigure 4: bridging from code1 (suspended at switch()) to code2\n";
  hr ();
  let b = B.build_bridge ~from_:code1 ~at:"switch" ~to_:code2 in
  Format.printf "  %a@." (B.pp_bridge ~to_:code2) b;
  let log = B.run_with_migration ~from_:code1 ~at:"switch" ~to_:code2 in
  Format.printf "  execution: %s@." (String.concat "; " log);
  pf "  exactly-once: %b\n" (B.exactly_once ~abstract log);
  hr ();
  pf "(the paper's Figure 4 shows exactly this fragment: o2; o4; o5,\n";
  pf "then a jump to o3 in code2)\n\n"

(* ------------------------------------------------------------------ *)
(* Extension: event-engine scaling                                      *)
(* ------------------------------------------------------------------ *)

(* the sharded engine (DESIGN.md §11): one agent per node touring the
   ring, run to quiescence — the regime whose windows execute on
   parallel OCaml domains.  Correctness (identical result, event count
   and virtual time at any shard count) is asserted unconditionally;
   the >= 2x wall-clock gate at 64 nodes only holds where it can — on a
   host with at least as many cores as shards — so it is enforced
   conditionally and the JSON records host_cores alongside the speedup
   for the consumer to judge. *)
let run_scaling_shards ~best () =
  let shards = !shards_flag in
  pf "Sharded engine: parallel windows vs the single-shard baseline\n";
  pf "One agent per node tours the ring (64 nodes, lockstep phase\n";
  pf "offsets), so between moves every shard runs spin quanta\n";
  pf "concurrently.  Simulation output must be identical at any shard\n";
  pf "count; only the wall clock may change.\n";
  hr ();
  let n = 64 and hops = 8 and spins = 600 in
  let go s =
    best (fun () ->
        W.measure_scaling ~shards:s ~agents:n ~n_nodes:n ~hops ~spins ())
  in
  let base = go 1 in
  let shr = go shards in
  let identical =
    base.W.sc_result = shr.W.sc_result
    && base.W.sc_events = shr.W.sc_events
    && base.W.sc_virtual_us = shr.W.sc_virtual_us
  in
  let speedup = base.W.sc_host_seconds /. shr.W.sc_host_seconds in
  pf "%8s %9s %12s %10s %9s %9s %6s\n" "shards" "events" "virtual us"
    "host s" "windows" "horizon" "same";
  hr ();
  let row (r : W.scaling) =
    pf "%8d %9d %12.1f %10.3f %9d %7.0fus %6s\n" r.W.sc_shards r.W.sc_events
      r.W.sc_virtual_us r.W.sc_host_seconds r.W.sc_windows
      r.W.sc_mean_horizon_us
      (if identical then "yes" else "NO")
  in
  row base;
  row shr;
  hr ();
  add_json_row ~experiment:"scaling_shards"
    [
      ("nodes", jint n);
      ("agents", jint n);
      ("shards", jint shr.W.sc_shards);
      ("host_cores", jint host_cores);
      ("events", jint shr.W.sc_events);
      ("base_host_s", jnum base.W.sc_host_seconds);
      ("sharded_host_s", jnum shr.W.sc_host_seconds);
      ("speedup", jnum speedup);
      ("windows", jint shr.W.sc_windows);
      ("mean_horizon_us", jnum shr.W.sc_mean_horizon_us);
      ("identical", if identical then "true" else "false");
    ];
  pf "speedup at 64 nodes with %d shards: %.2fx on a %d-core host\n" shards
    speedup host_cores;
  if not identical then begin
    pf "ERROR: sharded run diverged from the single-shard baseline\n";
    exit 1
  end;
  if host_cores >= shards && speedup < 2.0 then begin
    pf "FAIL: below the 2x gate on a host with enough cores\n";
    exit 1
  end;
  if host_cores < shards then
    pf "(the 2x gate needs >= %d cores; this host has %d, so only the\n\
       determinism half is enforced here)\n"
      shards host_cores;
  pf "\n"

let run_scaling () =
  pf "Extension: event-selection cost vs cluster size\n";
  pf "One agent tours the ring of nodes under a 2-instruction preemptive\n";
  pf "quantum, so the run decomposes into ~500k tiny scheduling events and\n";
  pf "EVENT SELECTION dominates the host cost.  'scan' is the seed's\n";
  pf "O(nodes)-per-event rescan; 'heap' is the engine's O(log pending)\n";
  pf "pop.  Both must produce the same events, times and result.\n";
  hr ();
  pf "%6s %9s %10s %10s %12s %12s %6s\n" "nodes" "events" "scan s" "heap s"
    "scan ev/s" "heap ev/s" "same";
  hr ();
  let hops = 48 and spins = 800 and quantum = 2 in
  (* host times are noisy; take the best of three runs of each *)
  let best f =
    let r = ref (f ()) in
    for _ = 2 to 3 do
      let r' = f () in
      if r'.W.sc_host_seconds < !r.W.sc_host_seconds then r := r'
    done;
    !r
  in
  let speedup_at_64 = ref nan in
  List.iter
    (fun n ->
      let scan =
        best (fun () ->
            W.measure_scaling ~scheduler:Core.Cluster.Scan ~quantum ~n_nodes:n
              ~hops ~spins ())
      in
      let heap =
        best (fun () ->
            W.measure_scaling ~scheduler:Core.Cluster.Heap ~quantum ~n_nodes:n
              ~hops ~spins ())
      in
      let same =
        scan.W.sc_result = heap.W.sc_result
        && scan.W.sc_events = heap.W.sc_events
        && scan.W.sc_virtual_us = heap.W.sc_virtual_us
      in
      if n = 64 then
        speedup_at_64 := scan.W.sc_host_seconds /. heap.W.sc_host_seconds;
      add_json_row ~experiment:"scaling"
        [
          ("nodes", jint n);
          ("events", jint heap.W.sc_events);
          ("scan_host_s", jnum scan.W.sc_host_seconds);
          ("heap_host_s", jnum heap.W.sc_host_seconds);
          ("scan_events_per_s", jnum scan.W.sc_events_per_sec);
          ("heap_events_per_s", jnum heap.W.sc_events_per_sec);
          ("identical", if same then "true" else "false");
        ];
      pf "%6d %9d %10.3f %10.3f %12.0f %12.0f %6s\n" n scan.W.sc_events
        scan.W.sc_host_seconds heap.W.sc_host_seconds scan.W.sc_events_per_sec
        heap.W.sc_events_per_sec
        (if same then "yes" else "NO"))
    [ 4; 8; 16; 32; 64 ];
  hr ();
  pf "heap speedup over scan at 64 nodes: %.1fx\n" !speedup_at_64;
  pf "(the event count, final virtual time and result are identical under\n";
  pf "both schedulers at every size: the heap replays the scan's order)\n\n";
  run_scaling_shards ~best ()

(* ------------------------------------------------------------------ *)
(* Extension: move cost under injected message loss                     *)
(* ------------------------------------------------------------------ *)

let run_faults () =
  pf "Extension: thread-move cost under message loss\n";
  pf "The Table 1 round trip with a fault plan injecting uniform message\n";
  pf "loss.  The retry/ack transport (sequence numbers, acks, exponential\n";
  pf "backoff from 2 ms) masks every drop, so the trip still completes and\n";
  pf "moves still apply exactly once; each retransmission shows up as RTO\n";
  pf "latency in the virtual clock.  SPARC<->Sun-3, 5 round trips.\n";
  hr ();
  pf "%8s %14s %14s %12s %10s\n" "loss" "per trip" "vs lossless" "retransmits" "messages";
  hr ();
  let base = ref nan in
  List.iter
    (fun drop ->
      let faults =
        if drop = 0.0 then Fault.Plan.empty
        else Fault.Plan.with_seed (Fault.Plan.make ~drop ()) 1
      in
      let r = W.measure_roundtrip ~faults ~home:A.sparc ~dest:A.sun3 ~iters:5 () in
      let ms = r.W.rt_us_per_trip /. 1000.0 in
      if drop = 0.0 then base := ms;
      pf "%7.0f%% %11.1f ms %13s %12d %10d\n" (drop *. 100.0) ms
        (if drop = 0.0 then "-" else Printf.sprintf "%+.0f%%" ((ms -. !base) /. !base *. 100.0))
        r.W.rt_retransmits r.W.rt_messages)
    [ 0.0; 0.1; 0.3 ];
  hr ();
  (* the acceptance gate: an empty plan must be invisible — bit-identical
     virtual times on table1 and an identical event count on scaling *)
  let plain = W.measure_roundtrip ~home:A.sparc ~dest:A.sun3 ~iters:3 () in
  let empty =
    W.measure_roundtrip ~faults:(Fault.Plan.with_seed Fault.Plan.empty 42)
      ~home:A.sparc ~dest:A.sun3 ~iters:3 ()
  in
  let s_plain = W.measure_scaling ~n_nodes:8 ~hops:16 ~spins:200 () in
  let s_empty =
    W.measure_scaling ~faults:(Fault.Plan.with_seed Fault.Plan.empty 42)
      ~n_nodes:8 ~hops:16 ~spins:200 ()
  in
  pf "empty-plan overhead: table1 %.3f ms vs %.3f ms (%s), scaling %d vs %d\n"
    (plain.W.rt_us_per_trip /. 1000.0)
    (empty.W.rt_us_per_trip /. 1000.0)
    (if plain.W.rt_us_per_trip = empty.W.rt_us_per_trip then "bit-identical"
     else "DIFFERENT")
    s_plain.W.sc_events s_empty.W.sc_events;
  pf "events %s, result %s: an unused fault plan costs nothing\n\n"
    (if s_plain.W.sc_events = s_empty.W.sc_events
        && s_plain.W.sc_virtual_us = s_empty.W.sc_virtual_us
     then "identical" else "DIFFERENT")
    (if s_plain.W.sc_result = s_empty.W.sc_result then "identical" else "DIFFERENT")

(* ------------------------------------------------------------------ *)
(* Bechamel host-time microbenchmarks                                   *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let table1 =
    Test.make ~name:"table1_mobility_roundtrip"
      (Staged.stage (fun () ->
           ignore (W.measure_roundtrip ~home:A.sparc ~dest:A.sun3 ~iters:1 ())))
  in
  let intranode =
    Test.make ~name:"intranode_native_loop"
      (Staged.stage (fun () ->
           ignore (W.measure_intranode ~arch:A.sparc ~migrated:false ~n:500 ())))
  in
  let src = W.fig2_src in
  let ast = Emc.Parser.parse_program src in
  let tprog = Emc.Typecheck.check ast in
  let ir = Emc.Lower.lower_program ~name:"fig2" tprog in
  let fig2_source =
    Test.make ~name:"fig2_source_level"
      (Staged.stage (fun () ->
           ignore
             (Emi.Ast_interp.run tprog ~class_name:"Main" ~op:"start"
                ~args:[ Emi.Mvalue.Int 12l ])))
  in
  let fig2_ir =
    Test.make ~name:"fig2_ir_level"
      (Staged.stage (fun () ->
           ignore
             (Emi.Ir_interp.run ir ~class_name:"Main" ~op:"start"
                ~args:[ Emi.Mvalue.Int 12l ])))
  in
  let compile =
    Test.make ~name:"compile_all_architectures"
      (Staged.stage (fun () ->
           ignore (Emc.Compile.compile_exn ~name:"bench" ~archs:A.all W.table1_src)))
  in
  let bridging =
    Test.make ~name:"fig4_bridge_construction"
      (Staged.stage (fun () ->
           let module B = Mobility.Bridging in
           let plain n = { B.name = n; kind = B.Plain } in
           let call n = { B.name = n; kind = B.Call } in
           let stop n = { B.name = n; kind = B.Stop } in
           let abs =
             B.abstract
               [ plain "o1"; plain "o2"; plain "o3"; call "switch"; plain "o4";
                 plain "o5"; stop "o6" ]
           in
           let c1 = B.apply_edits abs [ B.Swap 2; B.Swap 1 ] in
           let c2 = B.apply_edits abs [ B.Swap 0; B.Swap 4 ] in
           ignore (B.build_bridge ~from_:c1 ~at:"switch" ~to_:c2)))
  in
  [ table1; intranode; fig2_source; fig2_ir; compile; bridging ]

let run_bechamel () =
  let open Bechamel in
  pf "Bechamel host-time microbenchmarks (monotonic clock, ns/run)\n";
  hr ();
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> pf "%-36s %14.0f ns/run\n" name est
          | Some _ | None -> pf "%-36s %14s\n" name "n/a")
        stats)
    (bechamel_tests ());
  hr ();
  pf "\n"

(* ------------------------------------------------------------------ *)
(* Migration span tracing: per-phase latency percentiles (DESIGN.md
   §12).  Runs the Table 1 workload with a span profile attached and
   reports the per-arch-pair phase histogram; also the observability
   overhead gate — spans read the virtual clocks and never charge them,
   so the traced run must report the identical virtual time.            *)
(* ------------------------------------------------------------------ *)

let trace_out_flag : string option ref = ref None

let run_spans () =
  pf "Migration phase spans (span tracing, DESIGN.md sec. 12)\n";
  pf "Table 1 workload, SPARC<->Sun-3, 8 round trips; per-phase virtual\n";
  pf "latencies aggregated per architecture pair.\n";
  hr ();
  let run_once ~with_profile () =
    let t0 = Unix.gettimeofday () in
    let cl = Core.Cluster.create ~archs:[ A.sparc; A.sun3 ] () in
    let p =
      if with_profile then begin
        let p = Obs.Profile.create () in
        Core.Cluster.attach_profile cl p;
        Some p
      end
      else None
    in
    ignore (Core.Cluster.compile_and_load cl ~name:"table1" W.table1_src);
    let agent = Core.Cluster.create_object cl ~node:0 ~class_name:"Agent" in
    let tid =
      Core.Cluster.spawn cl ~node:0 ~target:agent ~op:"trip"
        ~args:[ Ert.Value.Vint 1l; Ert.Value.Vint 8l ]
    in
    ignore (Core.Cluster.run_until_result cl tid);
    (Core.Cluster.global_time_us cl, Unix.gettimeofday () -. t0, p)
  in
  let virt_plain, host_plain, _ = run_once ~with_profile:false () in
  let virt_prof, host_prof, prof = run_once ~with_profile:true () in
  let p = Option.get prof in
  print_string (Obs.Profile.table p);
  List.iter
    (fun (r : Obs.Profile.row) ->
      add_json_row ~experiment:"spans"
        [
          ("pair", jstr r.Obs.Profile.r_pair);
          ("phase", jstr r.Obs.Profile.r_phase);
          ("count", jint r.Obs.Profile.r_count);
          ("p50_us", jnum r.Obs.Profile.r_p50_us);
          ("p90_us", jnum r.Obs.Profile.r_p90_us);
          ("p99_us", jnum r.Obs.Profile.r_p99_us);
          ("max_us", jnum r.Obs.Profile.r_max_us);
          ("mean_us", jnum r.Obs.Profile.r_mean_us);
        ])
    (Obs.Profile.rows p);
  (match !trace_out_flag with
  | Some path ->
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (Obs.Trace.to_json (Obs.Profile.spans p)));
    pf "chrome trace written to %s (%d spans)\n" path (Obs.Profile.count p)
  | None -> ());
  hr ();
  pf "overhead gate: virtual %.2f ms untraced vs %.2f ms traced (%s);\n"
    (virt_plain /. 1000.0) (virt_prof /. 1000.0)
    (if virt_plain = virt_prof then "identical, as required" else "MISMATCH");
  pf "host %.1f ms untraced vs %.1f ms traced (%d spans recorded)\n"
    (host_plain *. 1000.0) (host_prof *. 1000.0) (Obs.Profile.count p);
  if virt_plain <> virt_prof then begin
    Printf.eprintf "spans: tracing perturbed virtual time!\n";
    exit 1
  end;
  pf "\n"

(* ------------------------------------------------------------------ *)
(* Extension: forced eviction and asynchronous migration                *)
(* ------------------------------------------------------------------ *)

(* Six spin workers all spawn on node 0 of a four-node cluster; the
   hot-spot balancer fires every 400 virtual us and evicts the deepest
   backlog toward the coldest node, trapping each victim at its next bus
   stop (no cooperative polling).  The identical schedule runs twice:
   synchronously (the sender is charged capture+translate+marshal before
   it resumes) and with asynchronous migration (those phases overlap
   execution, and only the non-overlapped remainder is charged).  The
   gate: overlap may never cost virtual time, and both runs must scatter
   the workers off the hot node. *)
let run_evict () =
  pf "Extension: forced eviction under the hot-spot balancer\n";
  pf "Six workers pile onto node 0 of a 4-node cluster; every 400us the\n";
  pf "balancer evicts the deepest backlog to the coldest node.  'sync'\n";
  pf "charges the full capture pipeline to the sender; 'async' overlaps\n";
  pf "it with execution up to the victim's bus stop.\n";
  hr ();
  let rounds = 16 and spins = 200 and n_nodes = 4 in
  let go async =
    W.measure_evict ~async_migration:async ~n_nodes ~rounds ~spins ()
  in
  let sync = go false in
  let asy = go true in
  pf "%8s %9s %12s %10s %10s %10s\n" "mode" "evicts" "virtual us" "events"
    "peak q0" "spread";
  hr ();
  let spread r =
    String.concat "," (List.map string_of_int r.W.er_final_spread)
  in
  let row name (r : W.evict_run) =
    pf "%8s %9d %12.1f %10d %10d %10s\n" name r.W.er_evictions
      r.W.er_virtual_us r.W.er_events r.W.er_peak_depth_home (spread r)
  in
  row "sync" sync;
  row "async" asy;
  hr ();
  let saved = sync.W.er_virtual_us -. asy.W.er_virtual_us in
  let saved_pct =
    if sync.W.er_virtual_us > 0.0 then 100.0 *. saved /. sync.W.er_virtual_us
    else 0.0
  in
  add_json_row ~experiment:"evict"
    [
      ("nodes", jint n_nodes);
      ("workers", jint 6);
      ("evictions_sync", jint sync.W.er_evictions);
      ("evictions_async", jint asy.W.er_evictions);
      ("sync_virtual_us", jnum sync.W.er_virtual_us);
      ("async_virtual_us", jnum asy.W.er_virtual_us);
      ("overlap_saved_us", jnum saved);
      ("overlap_saved_pct", jnum saved_pct);
      ("peak_depth_home", jint sync.W.er_peak_depth_home);
      ("result_sync", jint sync.W.er_result);
      ("result_async", jint asy.W.er_result);
    ];
  pf "async migration saves %.1f virtual us (%.1f%%) over synchronous\n" saved
    saved_pct;
  if sync.W.er_evictions = 0 || asy.W.er_evictions = 0 then begin
    pf "ERROR: the balancer never fired an eviction\n";
    exit 1
  end;
  if asy.W.er_virtual_us > sync.W.er_virtual_us then begin
    pf "FAIL: asynchronous migration cost virtual time (%.1f > %.1f)\n"
      asy.W.er_virtual_us sync.W.er_virtual_us;
    exit 1
  end;
  pf "\n"

(* ------------------------------------------------------------------ *)
(* Extension: the partitioned location directory at cluster scale       *)
(* ------------------------------------------------------------------ *)

(* The million-object regime, scaled to bench time: a large cold
   population fills the dense object tables and the partitioned
   directory, a hot flock tours the ring as batched group migrations,
   and chasers with stale references drive the locate machinery.  Two
   gates: every chaser digest must land (the calls all found their
   moving targets), and the mean forwarding-hop count per located
   invoke must stay <= 2 — the chain-collapse hints and the directory
   keep routes short even while the flock keeps moving.  The identical
   configuration is run single-sharded and sharded: every
   simulation-visible number must match bit-for-bit. *)
let run_cluster_config ~experiment ~n_nodes ~shards ~n_objects ~flock ~askers
    ~calls ~rounds () =
  let go s =
    W.measure_cluster ~shards:s ~flock ~askers ~calls ~rounds ~n_nodes
      ~n_objects ()
  in
  let base = go 1 in
  let shr = go shards in
  let identical =
    base.W.cr_result = shr.W.cr_result
    && base.W.cr_events = shr.W.cr_events
    && base.W.cr_virtual_us = shr.W.cr_virtual_us
    && base.W.cr_messages = shr.W.cr_messages
    && base.W.cr_bytes = shr.W.cr_bytes
    && base.W.cr_locate_hops = shr.W.cr_locate_hops
    && base.W.cr_dir_updates = shr.W.cr_dir_updates
  in
  pf "%8s %7s %9s %9s %8s %9s %7s %6s\n" "shards" "objects" "events"
    "ev/s" "locates" "mean hops" "dir upd" "same";
  hr ();
  let row (r : W.cluster_run) =
    pf "%8d %7d %9d %9.0f %8d %9.2f %7d %6s\n" r.W.cr_shards r.W.cr_objects
      r.W.cr_events r.W.cr_events_per_sec r.W.cr_locates r.W.cr_mean_hops
      r.W.cr_dir_updates
      (if identical then "yes" else "NO")
  in
  row base;
  row shr;
  hr ();
  pf "group transfers: %d (%d objects); collapses: %d; directory: %d\n"
    shr.W.cr_group_moves shr.W.cr_group_objects shr.W.cr_collapses
    shr.W.cr_dir_applied;
  pf "applied, %d stale dropped, lookups %d hit / %d miss; %d msgs, %d bytes\n"
    shr.W.cr_dir_stale shr.W.cr_dir_hits shr.W.cr_dir_misses shr.W.cr_messages
    shr.W.cr_bytes;
  add_json_row ~experiment
    [
      ("nodes", jint n_nodes);
      ("shards", jint shr.W.cr_shards);
      ("objects", jint n_objects);
      ("events", jint shr.W.cr_events);
      ("events_per_s", jnum shr.W.cr_events_per_sec);
      ("run_host_s", jnum shr.W.cr_run_seconds);
      ("locates", jint shr.W.cr_locates);
      ("mean_lookup_hops", jnum shr.W.cr_mean_hops);
      ("collapses", jint shr.W.cr_collapses);
      ("dir_updates", jint shr.W.cr_dir_updates);
      ("dir_stale", jint shr.W.cr_dir_stale);
      ("dir_hits", jint shr.W.cr_dir_hits);
      ("dir_misses", jint shr.W.cr_dir_misses);
      ("group_moves", jint shr.W.cr_group_moves);
      ("group_objects", jint shr.W.cr_group_objects);
      ("messages", jint shr.W.cr_messages);
      ("bytes", jint shr.W.cr_bytes);
      ("identical", if identical then "true" else "false");
    ];
  if shr.W.cr_result <> shr.W.cr_expected then begin
    pf "FAIL: chaser digests sum to %d, expected %d\n" shr.W.cr_result
      shr.W.cr_expected;
    exit 1
  end;
  if shr.W.cr_locates = 0 || shr.W.cr_group_moves = 0 then begin
    pf "FAIL: the workload generated no locate or group-migration traffic\n";
    exit 1
  end;
  if shr.W.cr_mean_hops > 2.0 then begin
    pf "FAIL: mean lookup hops %.2f exceeds the 2.0 gate\n" shr.W.cr_mean_hops;
    exit 1
  end;
  if not identical then begin
    pf "FAIL: sharded run diverged from the single-shard baseline\n";
    exit 1
  end;
  pf "gates: digests complete, mean hops %.2f <= 2.0, shard-identical\n\n"
    shr.W.cr_mean_hops

let run_cluster () =
  pf "Extension: partitioned location directory at cluster scale\n";
  pf "100k objects on 1024 nodes (8 shards vs 1); a 32-cell flock tours\n";
  pf "the ring as group migrations while 16 chasers with stale references\n";
  pf "invoke it.  Chain collapse and the directory must keep the mean\n";
  pf "forwarding-hop count per located invoke at or below 2.\n";
  hr ();
  run_cluster_config ~experiment:"cluster" ~n_nodes:1024 ~shards:8
    ~n_objects:100_000 ~flock:32 ~askers:16 ~calls:24 ~rounds:30 ()

let run_cluster_smoke () =
  pf "Location directory, CI-sized smoke (same gates, smaller cluster)\n";
  hr ();
  run_cluster_config ~experiment:"cluster_smoke" ~n_nodes:64 ~shards:4
    ~n_objects:5_000 ~flock:8 ~askers:8 ~calls:12 ~rounds:12 ()

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Threaded dispatch: interpreter throughput, traces bit-identical      *)
(* ------------------------------------------------------------------ *)

let interp_src =
  {|
object Spinner
  operation spin[rounds : int, spins : int] -> [r : int]
    var i : int <- 0
    var j : int <- 0
    var t : int <- 0
    var u : int <- 0
    var v : int <- 0
    var acc : int <- 0
    loop
      exit when i >= rounds
      i <- i + 1
      j <- 0
      loop
        exit when j >= spins
        j <- j + 1
        t <- acc + j
        u <- t + i
        v <- u - j
        t <- t + v
        acc <- v + t
      end loop
    end loop
    r <- acc
  end spin
end Spinner
|}

(* a mobile mix for the trace gate: movers cross nodes while spinners
   keep every kernel busy, so the trace covers migration, bus stops and
   preemption under both engines *)
let interp_trace_src =
  interp_src
  ^ {|
object Hopper
  operation hop[n : int] -> [r : int]
    var i : int <- 0
    var acc : int <- 0
    loop
      exit when i >= n
      i <- i + 1
      acc <- acc + i * i
      move self to 1
      acc <- acc - i
      move self to 2
      acc <- acc + 3 * i
      move self to 0
    end loop
    r <- acc
  end hop
end Hopper
|}

let run_interp () =
  pf "Threaded dispatch: interpreter throughput vs the fetch/decode loop\n";
  pf "The same kernel executes the same program under both engines; the\n";
  pf "virtual results (insns, cycles, virtual time, result) must be\n";
  pf "identical — only host time may move.  Gate: >= 3x throughput.\n";
  hr ();
  let arch = A.sparc in
  let prog = Emc.Compile.compile_exn ~name:"interp" ~archs:[ arch ] interp_src in
  let run_once ~threaded () =
    let cl = Core.Cluster.create ~archs:[ arch ] () in
    Ert.Kernel.set_threaded (Core.Cluster.kernel cl 0) threaded;
    Core.Cluster.load_program cl prog;
    let s = Core.Cluster.create_object cl ~node:0 ~class_name:"Spinner" in
    let tid =
      Core.Cluster.spawn cl ~node:0 ~target:s ~op:"spin"
        ~args:[ Ert.Value.Vint 600l; Ert.Value.Vint 600l ]
    in
    let r =
      match Core.Cluster.run_until_result cl tid with
      | Some (Ert.Value.Vint v) -> Int32.to_int v
      | _ -> failwith "interp bench: spinner did not complete"
    in
    ( r,
      Ert.Kernel.insns_executed (Core.Cluster.kernel cl 0),
      Core.Cluster.global_time_us cl )
  in
  let base = run_once ~threaded:false () in
  let thr = run_once ~threaded:true () in
  if base <> thr then failwith "interp bench: threaded dispatch diverged";
  let _, insns, _ = base in
  let t_base = host_time_of (run_once ~threaded:false) in
  let t_thr = host_time_of (run_once ~threaded:true) in
  let mips t = float_of_int insns /. t /. 1e6 in
  let speedup = t_base /. t_thr in
  pf "%-12s %12s %14s %10s\n" "engine" "insns" "throughput" "speedup";
  hr ();
  pf "%-12s %12d %11.1f M/s %10s\n" "fetch/decode" insns (mips t_base) "1.00x";
  pf "%-12s %12d %11.1f M/s %9.2fx\n" "threaded" insns (mips t_thr) speedup;
  List.iter
    (fun (mode, t) ->
      add_json_row ~experiment:"interp"
        [
          ("mode", jstr mode);
          ("insns", jint insns);
          ("host_seconds", jnum t);
          ("minsns_per_sec", jnum (mips t));
          ("speedup_vs_baseline", jnum (t_base /. t));
        ])
    [ ("baseline", t_base); ("threaded", t_thr) ];
  (* trace identity: the threaded engine at 1/2/4 shards must reproduce
     the baseline's protocol trace byte for byte *)
  let trace_prog =
    Emc.Compile.compile_exn ~name:"interp_trace"
      ~archs:
        (List.sort_uniq
           (fun a b -> String.compare a.A.id b.A.id)
           [ A.sparc; A.vax; A.sun3; A.hp9000_433 ])
      interp_trace_src
  in
  let trace_run ~threaded ~shards =
    let archs = [ A.sparc; A.vax; A.sun3; A.hp9000_433 ] in
    let cl = Core.Cluster.create ~quantum:40 ~shards ~archs () in
    for i = 0 to Core.Cluster.n_nodes cl - 1 do
      Ert.Kernel.set_threaded (Core.Cluster.kernel cl i) threaded
    done;
    let trace = Buffer.create 4096 in
    Core.Cluster.set_trace cl (fun line ->
        Buffer.add_string trace line;
        Buffer.add_char trace '\n');
    Core.Cluster.load_program cl trace_prog;
    let h = Core.Cluster.create_object cl ~node:0 ~class_name:"Hopper" in
    let ht =
      Core.Cluster.spawn cl ~node:0 ~target:h ~op:"hop"
        ~args:[ Ert.Value.Vint 3l ]
    in
    let spinners =
      List.init 3 (fun i ->
          let s =
            Core.Cluster.create_object cl ~node:(i + 1) ~class_name:"Spinner"
          in
          Core.Cluster.spawn cl ~node:(i + 1) ~target:s ~op:"spin"
            ~args:[ Ert.Value.Vint 3l; Ert.Value.Vint 40l ])
    in
    Core.Cluster.run cl;
    List.iter
      (fun t -> ignore (Core.Cluster.result cl t))
      (ht :: spinners);
    (Buffer.contents trace, Core.Cluster.global_time_us cl)
  in
  let ref_trace, ref_t = trace_run ~threaded:false ~shards:1 in
  List.iter
    (fun shards ->
      let tr, t = trace_run ~threaded:true ~shards in
      if tr <> ref_trace || t <> ref_t then begin
        pf "FAIL: threaded trace differs from fetch/decode at %d shards\n"
          shards;
        exit 1
      end)
    [ 1; 2; 4 ];
  hr ();
  pf "traces bit-identical to fetch/decode at 1/2/4 shards\n";
  if speedup < 3.0 then begin
    pf "FAIL: threaded dispatch below the 3x throughput gate (%.2fx)\n" speedup;
    exit 1
  end;
  pf "threaded dispatch: %.2fx interpreter throughput (gate: >= 3x)\n\n"
    speedup

(* ------------------------------------------------------------------ *)
(* Blit tier: negotiated same-layout migration without translation      *)
(* ------------------------------------------------------------------ *)

let run_blit () =
  pf "Blit tier: negotiated zero-translation migration for same-layout\n";
  pf "pairs.  Wire bytes stay byte-identical to the plan tier; same-\n";
  pf "layout moves skip the translate/rebuild phases entirely and must\n";
  pf "show it on the virtual clock; every other pair falls back to\n";
  pf "compiled plans, bit for bit.  Gate: skip ratio > 0 and lower\n";
  pf "migration latency on every same-layout pair.\n";
  hr ();
  let skip_counts ~home ~dest =
    let cl =
      Core.Cluster.create ~wire_impl:Enet.Wire.Blit ~archs:[ home; dest ] ()
    in
    ignore (Core.Cluster.compile_and_load cl ~name:"table1" W.table1_src);
    let agent = Core.Cluster.create_object cl ~node:0 ~class_name:"Agent" in
    let tid =
      Core.Cluster.spawn cl ~node:0 ~target:agent ~op:"trip"
        ~args:[ Ert.Value.Vint 1l; Ert.Value.Vint 3l ]
    in
    ignore (Core.Cluster.run_until_result cl tid);
    let open Core.Events in
    ( Core.Cluster.total_counter cl (fun c -> c.c_blit_skips),
      Core.Cluster.total_counter cl (fun c -> c.c_blit_fallbacks) )
  in
  let pairs =
    [
      ("Sun-3<->HP433", A.sun3, A.hp9000_433);
      ("HP433<->HP385", A.hp9000_433, A.hp9000_385);
      ("Sun-3<->Sun-3", A.sun3, A.sun3);
      ("SPARC<->Sun-3", A.sparc, A.sun3);
    ]
  in
  pf "%-16s %7s %12s %12s %8s %6s\n" "pair" "layout" "plan us" "blit us"
    "saved" "skips";
  hr ();
  let failed = ref false in
  List.iter
    (fun (name, home, dest) ->
      let plan =
        W.measure_roundtrip ~wire_impl:Enet.Wire.Plan ~home ~dest ~iters:3 ()
      in
      let blit =
        W.measure_roundtrip ~wire_impl:Enet.Wire.Blit ~home ~dest ~iters:3 ()
      in
      if blit.W.rt_bytes_sent <> plan.W.rt_bytes_sent then begin
        pf "FAIL: %s blit wire bytes differ from plan\n" name;
        failed := true
      end;
      let skips, fallbacks = skip_counts ~home ~dest in
      let same = A.same_layout home dest in
      let ratio =
        if skips + fallbacks = 0 then 0.0
        else float_of_int skips /. float_of_int (skips + fallbacks)
      in
      let saved_pct =
        100.0
        *. (plan.W.rt_us_per_trip -. blit.W.rt_us_per_trip)
        /. plan.W.rt_us_per_trip
      in
      pf "%-16s %7s %12.0f %12.0f %7.1f%% %6d\n" name
        (if same then "same" else "mixed")
        plan.W.rt_us_per_trip blit.W.rt_us_per_trip saved_pct skips;
      add_json_row ~experiment:"blit"
        [
          ("pair", jstr name);
          ("same_layout", if same then "true" else "false");
          ("plan_us_per_trip", jnum plan.W.rt_us_per_trip);
          ("blit_us_per_trip", jnum blit.W.rt_us_per_trip);
          ("saved_pct", jnum saved_pct);
          ("bytes", jint blit.W.rt_bytes_sent);
          ("blit_skips", jint skips);
          ("blit_fallbacks", jint fallbacks);
          ("skip_ratio", jnum ratio);
        ];
      if same then begin
        if skips = 0 || fallbacks <> 0 then begin
          pf "FAIL: %s is same-layout but did not skip translation\n" name;
          failed := true
        end;
        if blit.W.rt_us_per_trip >= plan.W.rt_us_per_trip then begin
          pf "FAIL: %s blit not faster than plan\n" name;
          failed := true
        end
      end
      else begin
        if skips <> 0 then begin
          pf "FAIL: %s is mixed-layout but skipped translation\n" name;
          failed := true
        end;
        if blit.W.rt_us_per_trip <> plan.W.rt_us_per_trip then begin
          pf "FAIL: %s blit fallback moved the virtual clock\n" name;
          failed := true
        end
      end)
    pairs;
  hr ();
  if !failed then exit 1;
  pf "same-layout pairs skip translate/rebuild (byte-identical wire);\n";
  pf "mixed pairs fall back to compiled plans exactly\n\n"

(* ------------------------------------------------------------------ *)
(* Bridge fragments: migration between differently-optimized instances *)
(* ------------------------------------------------------------------ *)

(* One observable action (the print) per iteration puts a syscall stop in
   the loop block, so -O2 elides the back-edge poll — the stop a preempted
   thread is most often evicted at, and the one a bridged landing resumes
   through (DESIGN.md §16). *)
let bridge_src =
  {|
object Worker
  operation work[n : int] -> [r : int]
    var acc : int <- 0
    var i : int <- 0
    loop
      exit when i >= n
      i <- i + 1
      print[i]
      acc <- acc + i
    end loop
    r <- acc
  end work
end Worker
|}

(* Run [workers] loop threads one after another on node 0 (SPARC -O0),
   each evicted to node 1 (VAX, [dest_level]) after [pre] events of its
   own run — identical capture points, so repeats reuse the first
   landing's fragment.  Sequential, because two concurrent workers
   interleave their two-stop prints on the shared output stream. *)
let bridge_run ~dest_level ~n ~pre ~workers =
  let cl = Core.Cluster.create ~quantum:3 ~archs:[ A.sparc; A.vax ] () in
  Core.Cluster.set_opt_level cl ~node:1 dest_level;
  ignore (Core.Cluster.compile_and_load cl ~name:"bridge" bridge_src);
  let k0 = Core.Cluster.kernel cl 0 in
  let results =
    List.init workers (fun _ ->
        let w = Core.Cluster.create_object cl ~node:0 ~class_name:"Worker" in
        let tid =
          Core.Cluster.spawn cl ~node:0 ~target:w ~op:"work"
            ~args:[ Ert.Value.Vint (Int32.of_int n) ]
        in
        for _ = 1 to pre do
          ignore (Core.Cluster.step_once cl)
        done;
        List.iter
          (fun (s : Ert.Thread.segment) ->
            if s.Ert.Thread.seg_thread = tid && s.Ert.Thread.seg_live then
              Core.Cluster.evict_thread cl ~node:0 ~seg_id:s.Ert.Thread.seg_id
                ~dest:1)
          (Ert.Kernel.segments k0);
        Core.Cluster.run_until_result cl tid)
  in
  let out =
    let buf = Buffer.create 256 in
    for i = 0 to Core.Cluster.n_nodes cl - 1 do
      Buffer.add_string buf (Core.Cluster.output cl ~node:i)
    done;
    Buffer.contents buf
  in
  let open Core.Events in
  let bridged = Core.Cluster.total_counter cl (fun c -> c.c_bridged) in
  let hits, misses = Core.Cluster.bridge_stats cl in
  (results, out, bridged, (hits, misses), Core.Cluster.global_time_us cl)

let run_bridge () =
  pf "Bridge fragments: a thread evicted mid-loop lands in a differently\n";
  pf "optimized code instance.  When it was parked at a stop the target's\n";
  pf "-O2 instance elides, the landing resumes through a compiled bridge\n";
  pf "fragment; the alternative column lands the same capture in the\n";
  pf "target's -O0 instance instead.  Gates: exactly-once actions, at\n";
  pf "least one bridged landing, fragment-cache hits on repeat, and -O2\n";
  pf "beating -O0 on the undisturbed loop.\n";
  hr ();
  let n = 14 in
  let expected_result = Int32.of_int (n * (n + 1) / 2) in
  (* a print's two stops may land on different hosts when the thread is
     evicted between them, splitting one line across output streams —
     legal, so the exactly-once gate compares the byte multiset of all
     node outputs, not lines *)
  let chars s = List.sort compare (List.init (String.length s) (String.get s)) in
  let one_run = String.concat "" (List.init n (fun i -> string_of_int (i + 1) ^ "\n")) in
  let exact ~workers results out =
    List.for_all (fun r -> r = Some (Ert.Value.Vint expected_result)) results
    && chars out = chars (String.concat "" (List.init workers (fun _ -> one_run)))
  in
  (* scan eviction points until the trap lands on the elided poll stop *)
  let rec scan pre =
    if pre > 80 then begin
      pf "ERROR: no eviction point parked at the loop's poll stop\n";
      exit 1
    end;
    let results, out, bridged, _, t = bridge_run ~dest_level:Emc.Opt.O2 ~n ~pre ~workers:1 in
    if not (exact ~workers:1 results out) then begin
      pf "FAIL: migrated run diverged at pre=%d (exactly-once gate)\n" pre;
      exit 1
    end;
    if bridged > 0 then (pre, t) else scan (pre + 1)
  in
  let pre, t_bridge = scan 0 in
  (* the same capture point landed in the target's -O0 instance: no
     bridge is needed, but the thread finishes in unoptimized code *)
  let results0, out0, bridged0, _, t_o0 =
    bridge_run ~dest_level:Emc.Opt.O0 ~n ~pre ~workers:1
  in
  if not (exact ~workers:1 results0 out0) then begin
    pf "FAIL: -O0 landing diverged (exactly-once gate)\n";
    exit 1
  end;
  (* repeat migrations: a second worker evicted at the same point in its
     own run reuses the first landing's fragment; scan again because the
     cluster the second worker starts from is no longer pristine *)
  let rec scan_cache pre =
    if pre > 80 then begin
      pf "ERROR: no eviction point reused the fragment cache\n";
      exit 1
    end;
    let results2, out2, bridged2, (hits, misses), _ =
      bridge_run ~dest_level:Emc.Opt.O2 ~n ~pre ~workers:2
    in
    if not (exact ~workers:2 results2 out2) then begin
      pf "FAIL: two-worker run diverged at pre=%d (exactly-once gate)\n" pre;
      exit 1
    end;
    if hits = 0 then scan_cache (pre + 1) else (bridged2, hits, misses)
  in
  let bridged2, hits, misses = scan_cache 0 in
  (* -O2 vs -O0 on the undisturbed loop, same machine, no migration *)
  let solo level =
    let cl = Core.Cluster.create ~archs:[ A.vax ] () in
    Core.Cluster.set_opt_level cl ~node:0 level;
    ignore (Core.Cluster.compile_and_load cl ~name:"solo" bridge_src);
    let w = Core.Cluster.create_object cl ~node:0 ~class_name:"Worker" in
    let tid =
      Core.Cluster.spawn cl ~node:0 ~target:w ~op:"work"
        ~args:[ Ert.Value.Vint 64l ]
    in
    ignore (Core.Cluster.run_until_result cl tid);
    Core.Cluster.global_time_us cl
  in
  let solo_o0 = solo Emc.Opt.O0 and solo_o2 = solo Emc.Opt.O2 in
  let ratio = if hits + misses = 0 then 0.0 else float_of_int hits /. float_of_int (hits + misses) in
  pf "%-26s %12s %12s\n"
    (Printf.sprintf "landing (evict @ %d)" pre)
    "virtual us" "bridged";
  hr ();
  pf "%-26s %12.1f %12d\n" "-O2 + bridge fragment" t_bridge 1;
  pf "%-26s %12.1f %12d\n" "-O0 (no bridge needed)" t_o0 bridged0;
  hr ();
  pf "fragment cache over repeat migrations: %d hits / %d misses\n" hits misses;
  pf "undisturbed loop on the VAX: -O0 %.1f us, -O2 %.1f us (%.1f%% faster)\n"
    solo_o0 solo_o2
    (100.0 *. (solo_o0 -. solo_o2) /. solo_o0);
  add_json_row ~experiment:"bridge"
    [
      ("pair", jstr "SPARC->VAX");
      ("evict_pre", jint pre);
      ("iterations", jint n);
      ("bridge_virtual_us", jnum t_bridge);
      ("o0_landing_virtual_us", jnum t_o0);
      ("threads_bridged", jint 1);
      ("threads_bridged_repeat", jint bridged2);
      ("frag_cache_hits", jint hits);
      ("frag_cache_misses", jint misses);
      ("frag_cache_hit_ratio", jnum ratio);
      ("solo_o0_virtual_us", jnum solo_o0);
      ("solo_o2_virtual_us", jnum solo_o2);
      ("exactly_once", jstr "pass");
    ];
  if bridged2 < 2 then begin
    pf "FAIL: repeat migrations did not both bridge (%d)\n" bridged2;
    exit 1
  end;
  if hits = 0 then begin
    pf "FAIL: repeated migration never hit the fragment cache\n";
    exit 1
  end;
  if solo_o2 >= solo_o0 then begin
    pf "FAIL: -O2 not faster than -O0 on the undisturbed loop (%.1f >= %.1f)\n"
      solo_o2 solo_o0;
    exit 1
  end;
  pf "exactly-once, bridged landings, cache hits and the -O2 win all hold\n\n"

(* ------------------------------------------------------------------ *)
(* gc: stop-the-world pause vs incremental max increment pause on a
   large heap (DESIGN.md §17).

   The heap is built at the kernel level — ~100k live string blocks
   referenced from root vectors handed to the collector as
   [extra_addrs], plus ~50k unreferenced blocks — so the measurement
   isolates collector cost from program execution.  Both tiers are
   charged exactly as the cluster charges them (STW: 2000 + live*40
   insns in one lump; incremental: 400 to open the cycle, then
   120 + scanned*40 per increment), and both must report identical
   live/swept/bytes-freed accounting.

   Gate: the incremental tier's worst single increment must pause the
   node for less than 1/5 of the STW full-collect pause. *)

let run_gc () =
  let module K = Ert.Kernel in
  let module L = Emc.Layout in
  let n_live = 100_000 and n_dead = 50_000 in
  let budget = 4096 in
  pf "gc: incremental tri-color vs stop-the-world at a %d-block heap\n"
    (n_live + n_dead);
  hr ();
  (* identical heaps for both tiers: root vectors of [chunk] string
     blocks each, dead strings interleaved so the sweep walks a mixed
     population *)
  let build () =
    let k = K.create ~node_id:0 ~arch:A.sparc () in
    let mem = K.mem k in
    let chunk = 1000 in
    let roots = ref [] in
    let made = ref 0 in
    let dead = ref 0 in
    let dead_per_chunk = n_dead / (n_live / chunk) in
    while !made < n_live do
      let n = min chunk (n_live - !made) in
      let vec = K.make_vector k ~kind:L.kind_string ~len:n in
      for j = 0 to n - 1 do
        let s = K.make_string k (Printf.sprintf "live-%d" (!made + j)) in
        Isa.Memory.store32 mem (vec + L.vec_elems + (4 * j)) (Int32.of_int s)
      done;
      made := !made + n;
      for j = 0 to dead_per_chunk - 1 do
        ignore (K.make_string k (Printf.sprintf "dead-%d" (!dead + j)) : int)
      done;
      dead := !dead + dead_per_chunk;
      roots := vec :: !roots
    done;
    (k, !roots)
  in
  (* stop-the-world: one lump pause, cluster-style charge *)
  let k_stw, roots_stw = build () in
  let t0 = K.time_us k_stw in
  let stw_stats = Ert.Gc.collect ~extra_addrs:roots_stw k_stw in
  K.charge_insns k_stw (2000 + (stw_stats.Ert.Gc.gc_live * 40));
  let stw_pause = K.time_us k_stw -. t0 in
  (* incremental: same collection as bounded increments *)
  let k_inc, roots_inc = build () in
  let cy = Ert.Gc.start ~extra_addrs:roots_inc k_inc in
  let increments = ref 0 in
  let max_pause = ref 0.0 in
  let total_us = ref 0.0 in
  let note t0 =
    let p = K.time_us k_inc -. t0 in
    if p > !max_pause then max_pause := p;
    total_us := !total_us +. p
  in
  (* the first increment carries the cycle-open charge, as in the
     cluster's [gc_increment] *)
  let t0 = K.time_us k_inc in
  K.charge_insns k_inc 400;
  let rec drive t0 =
    incr increments;
    match Ert.Gc.step cy k_inc ~budget with
    | Ert.Gc.Step_more { scanned; _ } ->
      K.charge_insns k_inc (120 + (scanned * 40));
      note t0;
      drive (K.time_us k_inc)
    | Ert.Gc.Step_done { scanned; stats } ->
      K.charge_insns k_inc (120 + (scanned * 40));
      note t0;
      stats
  in
  let inc_stats = drive t0 in
  let ratio = !max_pause /. stw_pause in
  pf "%-14s %10s %10s %12s %12s\n" "tier" "live" "swept" "pause(us)"
    "total(us)";
  hr ();
  pf "%-14s %10d %10d %12.1f %12.1f\n" "stop-the-world"
    stw_stats.Ert.Gc.gc_live stw_stats.Ert.Gc.gc_swept stw_pause stw_pause;
  pf "%-14s %10d %10d %12.1f %12.1f  (%d increments)\n" "incremental"
    inc_stats.Ert.Gc.gc_live inc_stats.Ert.Gc.gc_swept !max_pause !total_us
    !increments;
  pf "max increment pause / stw pause: %.3f (gate: < 0.2); gc work \
     overhead: %+.1f%%\n"
    ratio
    (100.0 *. (!total_us -. stw_pause) /. stw_pause);
  add_json_row ~experiment:"gc"
    [
      ("heap_blocks", jint (n_live + n_dead));
      ("budget_slots", jint budget);
      ("live", jint inc_stats.Ert.Gc.gc_live);
      ("swept", jint inc_stats.Ert.Gc.gc_swept);
      ("bytes_freed", jint inc_stats.Ert.Gc.gc_bytes_freed);
      ("stw_pause_us", jnum stw_pause);
      ("inc_max_pause_us", jnum !max_pause);
      ("inc_total_us", jnum !total_us);
      ("increments", jint !increments);
      ("pause_ratio", jnum ratio);
    ];
  if
    stw_stats.Ert.Gc.gc_live <> inc_stats.Ert.Gc.gc_live
    || stw_stats.Ert.Gc.gc_swept <> inc_stats.Ert.Gc.gc_swept
    || stw_stats.Ert.Gc.gc_bytes_freed <> inc_stats.Ert.Gc.gc_bytes_freed
  then begin
    pf "FAIL: tiers disagree on accounting (stw %d/%d/%d, inc %d/%d/%d)\n"
      stw_stats.Ert.Gc.gc_live stw_stats.Ert.Gc.gc_swept
      stw_stats.Ert.Gc.gc_bytes_freed inc_stats.Ert.Gc.gc_live
      inc_stats.Ert.Gc.gc_swept inc_stats.Ert.Gc.gc_bytes_freed;
    exit 1
  end;
  if inc_stats.Ert.Gc.gc_swept < n_dead then begin
    pf "FAIL: expected >= %d swept, got %d\n" n_dead
      inc_stats.Ert.Gc.gc_swept;
    exit 1
  end;
  if ratio >= 0.2 then begin
    pf "FAIL: incremental max pause %.1fus is not < 1/5 of the stw pause \
       %.1fus\n"
      !max_pause stw_pause;
    exit 1
  end;
  pf "identical accounting; max pause gate holds\n\n"

let all_experiments =
  [
    ("table1", run_table1);
    ("intranode", run_intranode);
    ("conversion", run_conversion);
    ("marshal", run_marshal);
    ("sweep", run_sweep);
    ("ablation", run_ablation);
    ("fig2", run_fig2);
    ("fig3", run_fig3);
    ("fig4", run_fig3);
    ("scaling", run_scaling);
    ("cluster", run_cluster);
    ("cluster_smoke", run_cluster_smoke);
    ("faults", run_faults);
    ("spans", run_spans);
    ("evict", run_evict);
    ("interp", run_interp);
    ("blit", run_blit);
    ("bridge", run_bridge);
    ("gc", run_gc);
  ]

let () =
  let rec parse acc = function
    | [] -> List.rev acc
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse acc rest
    | [ "--json" ] ->
      Printf.eprintf "--json requires a file argument\n";
      exit 1
    | "--shards" :: n :: rest -> (
      match int_of_string_opt n with
      | Some s when s >= 1 ->
        shards_flag := s;
        parse acc rest
      | _ ->
        Printf.eprintf "--shards requires a positive integer\n";
        exit 1)
    | [ "--shards" ] ->
      Printf.eprintf "--shards requires an integer argument\n";
      exit 1
    | "--trace-out" :: path :: rest ->
      trace_out_flag := Some path;
      parse acc rest
    | [ "--trace-out" ] ->
      Printf.eprintf "--trace-out requires a file argument\n";
      exit 1
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  (match args with
  | [] ->
    pf "Reproduction of the evaluation of Steensgaard & Jul, SOSP 1995:\n";
    pf "\"Object and Native Code Thread Mobility Among Heterogeneous Computers\"\n\n";
    (* fig4 aliases fig3; cluster_smoke is the CI-sized cut of cluster *)
    List.iter
      (fun (name, f) ->
        if name <> "fig4" && name <> "cluster_smoke" then f ())
      all_experiments;
    run_bechamel ()
  | [ "bechamel" ] -> run_bechamel ()
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name all_experiments with
        | Some f -> f ()
        | None when name = "bechamel" -> run_bechamel ()
        | None ->
          Printf.eprintf "unknown experiment %s (have: %s, bechamel)\n" name
            (String.concat ", " (List.map fst all_experiments));
          exit 1)
      names);
  match !json_path with Some p -> write_json p | None -> ()
