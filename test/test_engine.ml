(* The discrete-event engine: run-to-run determinism, heap/scan
   equivalence (the heap must replay the seed's scan order exactly), and
   the engine's instrumentation counters. *)

module A = Isa.Arch
module V = Ert.Value
module W = Core.Workloads
module C = Core.Cluster

let check = Alcotest.check

let archs n =
  let pool = [| A.sparc; A.sun3; A.hp9000_433; A.vax |] in
  List.init n (fun i -> pool.(i mod Array.length pool))

type capture = {
  cap_result : int;
  cap_events : int;
  cap_time : float;
  cap_log : string;  (** every bus event rendered, in order *)
}

(* run the ring-touring workload, recording the full event sequence *)
let run_tour ?quantum ~scheduler ~n_nodes ~hops ~spins () =
  let cl = C.create ~scheduler ?quantum ~archs:(archs n_nodes) () in
  ignore (C.compile_and_load cl ~name:"tour" W.scaling_src);
  let agent = C.create_object cl ~node:0 ~class_name:"Agent" in
  let log = Buffer.create 4096 in
  C.subscribe_events cl (fun ev ->
      Buffer.add_string log (Core.Events.to_string ev);
      Buffer.add_char log '\n');
  let tid =
    C.spawn cl ~node:0 ~target:agent ~op:"tour"
      ~args:
        [
          V.Vint (Int32.of_int n_nodes);
          V.Vint (Int32.of_int hops);
          V.Vint (Int32.of_int spins);
        ]
  in
  let result =
    match C.run_until_result cl tid with
    | Some (V.Vint v) -> Int32.to_int v
    | _ -> Alcotest.fail "tour did not return an int"
  in
  ( cl,
    {
      cap_result = result;
      cap_events = C.events_processed cl;
      cap_time = C.global_time_us cl;
      cap_log = Buffer.contents log;
    } )

(* the tour's accumulator: (j mod 2) summed over j = 1..spins, per hop *)
let expected_acc ~hops ~spins = hops * ((spins + 1) / 2)

let same_capture name a b =
  check Alcotest.int (name ^ ": result") a.cap_result b.cap_result;
  check Alcotest.int (name ^ ": events processed") a.cap_events b.cap_events;
  check (Alcotest.float 0.0) (name ^ ": final virtual time") a.cap_time b.cap_time;
  check Alcotest.string (name ^ ": event sequence") a.cap_log b.cap_log

let test_repeat_identical () =
  (* same workload twice, Emerald bus-stop discipline: bit-identical *)
  let go () = snd (run_tour ~scheduler:C.Heap ~n_nodes:4 ~hops:8 ~spins:40 ()) in
  let a = go () and b = go () in
  same_capture "bus-stop" a b;
  check Alcotest.int "result value" (expected_acc ~hops:8 ~spins:40) a.cap_result

let test_repeat_identical_preemptive () =
  (* same, under a tiny preemptive quantum: far more events, still
     bit-identical *)
  let go () =
    snd (run_tour ~quantum:2 ~scheduler:C.Heap ~n_nodes:4 ~hops:8 ~spins:40 ())
  in
  let a = go () and b = go () in
  same_capture "quantum=2" a b

let test_heap_replays_scan () =
  (* the acceptance bar: at 4 nodes the heap scheduler must reproduce the
     seed scan's event sequence, times and result exactly *)
  let go scheduler =
    snd (run_tour ~quantum:2 ~scheduler ~n_nodes:4 ~hops:8 ~spins:40 ())
  in
  let scan = go C.Scan and heap = go C.Heap in
  same_capture "scan vs heap" scan heap

let test_engine_counters () =
  let heap_cl, heap =
    run_tour ~quantum:2 ~scheduler:C.Heap ~n_nodes:4 ~hops:8 ~spins:40 ()
  in
  let scan_cl, _ =
    run_tour ~quantum:2 ~scheduler:C.Scan ~n_nodes:4 ~hops:8 ~spins:40 ()
  in
  let e = C.engine heap_cl in
  if Core.Engine.pops e = 0 then
    Alcotest.fail "heap mode must pop events from the engine, not scan";
  if Core.Engine.pops e - Core.Engine.stale_pops e < heap.cap_events then
    Alcotest.failf "executed events (%d) exceed non-stale pops (%d)"
      heap.cap_events
      (Core.Engine.pops e - Core.Engine.stale_pops e);
  check Alcotest.int "scan mode never touches the engine" 0
    (Core.Engine.pops (C.engine scan_cl) + Core.Engine.pushes (C.engine scan_cl));
  check Alcotest.int "heap drains its queue" 0 (Core.Engine.pending e)

let test_large_cluster_smoke () =
  (* migration-heavy run across 64 heterogeneous nodes: must terminate
     within a bounded event budget with the right answer *)
  let _, cap = run_tour ~quantum:2 ~scheduler:C.Heap ~n_nodes:64 ~hops:64 ~spins:5 () in
  check Alcotest.int "64-node tour result" (expected_acc ~hops:64 ~spins:5)
    cap.cap_result;
  if cap.cap_events > 200_000 then
    Alcotest.failf "event budget blown: %d events" cap.cap_events

let suites =
  [
    ( "engine",
      [
        Alcotest.test_case "same workload twice is bit-identical" `Quick
          test_repeat_identical;
        Alcotest.test_case "identical under quantum preemption" `Quick
          test_repeat_identical_preemptive;
        Alcotest.test_case "heap replays the scan exactly (4 nodes)" `Quick
          test_heap_replays_scan;
        Alcotest.test_case "engine counters account for every event" `Quick
          test_engine_counters;
        Alcotest.test_case "64-node migration-heavy smoke" `Quick
          test_large_cluster_smoke;
      ] );
  ]
