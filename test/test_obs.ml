(* Span tracing and phase histograms (lib/obs, DESIGN.md sec. 12).

   Three layers: the histogram/trace primitives in isolation, the span
   tree a real migration pipeline emits (every move completion carries a
   complete root-plus-phases tree), and the determinism contract — the
   rendered table and the exported Chrome trace are byte-identical no
   matter how many shards executed the simulation. *)

module A = Isa.Arch
module V = Ert.Value
module S = Obs.Span
module E = Core.Events

let check = Alcotest.check

(* Hist --------------------------------------------------------------- *)

let test_hist_percentiles () =
  let h = Obs.Hist.create () in
  for i = 1 to 1000 do
    Obs.Hist.add h (float_of_int i)
  done;
  check Alcotest.int "count" 1000 (Obs.Hist.count h);
  check (Alcotest.float 0.001) "exact max" 1000.0 (Obs.Hist.max_us h);
  let p50 = Obs.Hist.percentile h 50.0 in
  let p90 = Obs.Hist.percentile h 90.0 in
  let p99 = Obs.Hist.percentile h 99.0 in
  (* quantiles report a bucket lower bound: never above the true sample,
     at most one sub-bucket (~6%) below it *)
  let near expect got =
    if got > expect +. 0.001 || got < expect *. 0.93 then
      Alcotest.failf "quantile %.1f outside bucket tolerance of %.1f" got expect
  in
  near 500.0 p50;
  near 900.0 p90;
  near 990.0 p99;
  if not (p50 <= p90 && p90 <= p99) then Alcotest.fail "quantiles must be monotone";
  let m = Obs.Hist.mean_us h in
  if m < 450.0 || m > 550.0 then Alcotest.failf "mean %.1f far from 500.5" m

let test_hist_empty_and_merge () =
  let h = Obs.Hist.create () in
  check Alcotest.int "empty count" 0 (Obs.Hist.count h);
  check (Alcotest.float 0.001) "empty quantile" 0.0 (Obs.Hist.percentile h 99.0);
  let a = Obs.Hist.create () and b = Obs.Hist.create () in
  List.iter (Obs.Hist.add a) [ 1.0; 2.0 ];
  Obs.Hist.add b 1000.0;
  Obs.Hist.merge ~into:a b;
  check Alcotest.int "merged count" 3 (Obs.Hist.count a);
  check (Alcotest.float 0.001) "merged max" 1000.0 (Obs.Hist.max_us a);
  (* negative samples clamp instead of crashing the bucket index *)
  Obs.Hist.add a (-5.0);
  check Alcotest.int "clamped sample counted" 4 (Obs.Hist.count a)

(* Trace export and validation ---------------------------------------- *)

let mk_span ?parent ~seq ~name ~t0 ~t1 () =
  {
    S.name;
    node = 0;
    arch_pair = "sparc->sun3";
    t_start_us = t0;
    t_end_us = t1;
    id = { S.id_node = 0; id_seq = seq };
    parent;
    bytes = 0;
  }

let test_trace_roundtrip () =
  let root = mk_span ~seq:1 ~name:"move" ~t0:0.0 ~t1:100.0 () in
  let child =
    mk_span ~parent:root.S.id ~seq:2 ~name:"transfer" ~t0:10.0 ~t1:30.0 ()
  in
  (* out-of-order input: to_json sorts by (ts, node, id) *)
  let doc = Obs.Trace.to_json [ child; root ] in
  (match Obs.Trace.validate doc with
  | Ok 2 -> ()
  | Ok n -> Alcotest.failf "expected 2 events, validator saw %d" n
  | Error e -> Alcotest.failf "valid trace rejected: %s" e);
  check Alcotest.string "empty stream still validates" ""
    (match Obs.Trace.validate (Obs.Trace.to_json []) with
    | Ok 0 -> ""
    | Ok n -> Printf.sprintf "%d events" n
    | Error e -> e)

let test_trace_rejects_bad_documents () =
  let bad =
    [
      ("truncated", "{");
      ("not an object", "[]");
      ("traceEvents not an array", {|{"traceEvents": 3}|});
      ("event not an object", {|{"traceEvents":[7]}|});
      ("name not a string", {|{"traceEvents":[{"name":1,"ph":"X","ts":0}]}|});
      ("missing ph", {|{"traceEvents":[{"name":"a","ts":0}]}|});
      ( "ts decreasing",
        {|{"traceEvents":[{"name":"a","ph":"X","ts":5},{"name":"b","ph":"X","ts":1}]}|}
      );
    ]
  in
  List.iter
    (fun (what, doc) ->
      match Obs.Trace.validate doc with
      | Ok _ -> Alcotest.failf "validator accepted %s" what
      | Error _ -> ())
    bad

(* End-to-end: the migration pipeline's span tree ---------------------- *)

let drive_table1 cl =
  ignore (Core.Cluster.compile_and_load cl ~name:"table1" Core.Workloads.table1_src);
  let agent = Core.Cluster.create_object cl ~node:0 ~class_name:"Agent" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:agent ~op:"trip"
      ~args:[ V.Vint 1l; V.Vint 6l ]
  in
  match Core.Cluster.run_until_result cl tid with
  | Some _ -> ()
  | None -> Alcotest.fail "table1 workload produced no result"

let test_span_tree_complete () =
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.sun3 ] () in
  let p = Obs.Profile.create () in
  Core.Cluster.attach_profile cl p;
  let finishes = ref 0 in
  Core.Cluster.subscribe_events cl (function
    | E.Ev_move_finish _ -> incr finishes
    | _ -> ());
  drive_table1 cl;
  let spans = Obs.Profile.spans p in
  let ids = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace ids s.S.id s) spans;
  List.iter
    (fun s ->
      if s.S.t_end_us < s.S.t_start_us then
        Alcotest.failf "span ends before it starts: %s" (S.to_string s);
      match s.S.parent with
      | None -> ()
      | Some pid -> (
        match Hashtbl.find_opt ids pid with
        | None ->
          Alcotest.failf "%s span has orphan parent %s" s.S.name
            (S.id_to_string pid)
        | Some root ->
          check Alcotest.string "phase spans hang off move roots" "move"
            root.S.name;
          if
            s.S.t_start_us < root.S.t_start_us -. 1e-6
            || s.S.t_end_us > root.S.t_end_us +. 1e-6
          then Alcotest.failf "%s span escapes its move root" s.S.name))
    spans;
  let roots = List.filter (fun s -> s.S.name = "move") spans in
  check Alcotest.int "one move root per Ev_move_finish" !finishes
    (List.length roots);
  if !finishes = 0 then Alcotest.fail "workload performed no migrations";
  let phases =
    [ "capture"; "translate"; "marshal"; "transfer"; "unmarshal"; "rebuild"; "relocate" ]
  in
  List.iter
    (fun root ->
      let kids = List.filter (fun s -> s.S.parent = Some root.S.id) spans in
      List.iter
        (fun ph ->
          match List.filter (fun s -> s.S.name = ph) kids with
          | [ _ ] -> ()
          | l ->
            Alcotest.failf "move %s has %d %s phases (want exactly 1)"
              (S.id_to_string root.S.id) (List.length l) ph)
        phases;
      let sum = List.fold_left (fun acc s -> acc +. S.duration_us s) 0.0 kids in
      if sum > S.duration_us root +. 1e-6 then
        Alcotest.failf "phases of move %s sum to %.1fus > the move's %.1fus"
          (S.id_to_string root.S.id) sum (S.duration_us root))
    roots;
  (* the marshalled payload is visible on the transfer phase *)
  List.iter
    (fun s ->
      if s.S.name = "transfer" && s.S.bytes <= 0 then
        Alcotest.fail "transfer span lost its byte count")
    spans

let test_no_spans_without_enable () =
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.sun3 ] () in
  let n = ref 0 in
  Core.Cluster.subscribe_events cl (function E.Ev_span _ -> incr n | _ -> ());
  drive_table1 cl;
  check Alcotest.int "no spans unless tracing was enabled" 0 !n

(* Determinism: identical output at every shard count ------------------ *)

let render_run shards =
  let cl =
    Core.Cluster.create ~shards ~archs:[ A.sparc; A.sun3; A.vax; A.hp9000_385 ] ()
  in
  let p = Obs.Profile.create () in
  Core.Cluster.attach_profile cl p;
  ignore (Core.Cluster.compile_and_load cl ~name:"par" Core.Workloads.parallel_src);
  let agent = Core.Cluster.create_object cl ~node:0 ~class_name:"Agent" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:agent ~op:"tour"
      ~args:[ V.Vint 4l; V.Vint 6l; V.Vint 10l ]
  in
  (match Core.Cluster.run_until_result cl tid with
  | Some _ -> ()
  | None -> Alcotest.fail "tour produced no result");
  (Obs.Profile.table p, Obs.Trace.to_json (Obs.Profile.spans p))

let test_shard_identical_output () =
  let t1, j1 = render_run 1 in
  let t2, j2 = render_run 2 in
  let t4, j4 = render_run 4 in
  check Alcotest.string "phase table identical, 2 shards" t1 t2;
  check Alcotest.string "phase table identical, 4 shards" t1 t4;
  check Alcotest.string "chrome trace identical, 2 shards" j1 j2;
  check Alcotest.string "chrome trace identical, 4 shards" j1 j4;
  match Obs.Trace.validate j1 with
  | Ok n when n > 0 -> ()
  | Ok _ -> Alcotest.fail "trace is empty"
  | Error e -> Alcotest.failf "exported trace invalid: %s" e

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "histogram quantiles" `Quick test_hist_percentiles;
        Alcotest.test_case "histogram empty/merge/clamp" `Quick
          test_hist_empty_and_merge;
        Alcotest.test_case "trace export validates" `Quick test_trace_roundtrip;
        Alcotest.test_case "validator rejects bad documents" `Quick
          test_trace_rejects_bad_documents;
        Alcotest.test_case "every move carries a complete span tree" `Quick
          test_span_tree_complete;
        Alcotest.test_case "silent unless enabled" `Quick
          test_no_spans_without_enable;
        Alcotest.test_case "byte-identical at 1/2/4 shards" `Quick
          test_shard_identical_output;
      ] );
  ]
