(* Tests for the machine-dependent <-> machine-independent translation
   layer and the marshalled formats. *)

module A = Isa.Arch
module V = Ert.Value
module MF = Mobility.Mi_frame

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* Wire round trips ------------------------------------------------------ *)

let value_gen =
  let open QCheck.Gen in
  oneof
    [
      map (fun i -> V.Vint i) (map Int32.of_int (int_range (-1000000) 1000000));
      map (fun f -> V.Vreal f) (map (fun i -> float_of_int i /. 16.0) (int_range (-1000) 1000));
      map (fun b -> V.Vbool b) bool;
      map (fun s -> V.Vstr s) (string_size ~gen:printable (int_range 0 30));
      map (fun i -> V.Vref (Ert.Oid.fresh_data ~node_id:(i mod 8) ~serial:(i mod 1000 + 1))) nat;
      return V.Vnil;
    ]

let segment_gen =
  let open QCheck.Gen in
  let frame_gen =
    int_range 0 6 >>= fun n_slots ->
    list_size (return n_slots) value_gen >>= fun vals ->
    int_range 0 3 >>= fun cls ->
    int_range 0 4 >>= fun mth ->
    int_range 0 20 >>= fun stop ->
    return
      {
        MF.mf_class = cls;
        mf_code_oid = Int32.of_int (1000 + cls);
        mf_method = mth;
        mf_stop = stop;
        mf_slots = Array.of_list (List.mapi (fun i v -> (i, v)) vals);
        mf_self = Ert.Oid.fresh_data ~node_id:1 ~serial:(cls + 1);
      }
  in
  let suspension_gen =
    let module S = Isa.Suspend in
    oneof
      [
        return S.Run;
        map (fun v -> S.Deliver v) value_gen;
        map (fun v -> S.Complete (Some v)) value_gen;
        return (S.Complete None);
        map (fun s -> S.Complete_dequeue (Some s)) nat;
        return (S.Complete_dequeue None);
      ]
  in
  let status_gen =
    oneof
      [
        map (fun s -> MF.Ms_parked s) suspension_gen;
        map (fun s -> MF.Ms_awaiting_reply s) (int_range 0 30);
        map
          (fun (q, dl) ->
            MF.Ms_blocked_monitor
              {
                mon = Ert.Oid.fresh_data ~node_id:2 ~serial:7;
                in_queue = q;
                cond = -1;
                deadline = dl;
              })
          (pair bool
             (oneof
                [ return None; map (fun d -> Some (float_of_int d)) (int_range 0 100000) ]));
      ]
  in
  list_size (int_range 0 4) frame_gen >>= fun frames ->
  status_gen >>= fun status ->
  bool >>= fun has_link ->
  return
    {
      MF.ms_seg_id = 12345;
      ms_thread = 67;
      ms_status = status;
      ms_frames = frames;
      ms_link = (if has_link then Some { Ert.Thread.ln_node = 3; ln_seg = 99 } else None);
      ms_result_type = Some Emc.Ast.Tint;
      ms_spawn = None;
    }

let seg_roundtrip impl =
  QCheck.Test.make
    ~name:(Printf.sprintf "mi_segment wire round trip (%s)" (Enet.Wire.impl_name impl))
    ~count:200 (QCheck.make segment_gen) (fun seg ->
      let stats = Enet.Conversion_stats.create () in
      let w = Enet.Wire.Writer.create ~impl ~stats in
      MF.write_segment w seg;
      let r = Enet.Wire.Reader.create ~impl ~stats (Enet.Wire.Writer.contents w) in
      let seg' = MF.read_segment r in
      seg' = seg)

let test_message_roundtrip () =
  let stats = Enet.Conversion_stats.create () in
  let messages =
    [
      Mobility.Marshal.M_invoke
        {
          target = Ert.Oid.fresh_data ~node_id:1 ~serial:4;
          callee_class = 2;
          callee_method = 1;
          args = [ V.Vint 42l; V.Vstr "hi"; V.Vreal 2.5; V.Vnil ];
          reply = { Ert.Thread.ln_node = 0; ln_seg = 77 };
          thread = 9;
          forwards = 2;
        };
      Mobility.Marshal.M_reply { to_seg = 77; value = V.Vbool true; thread = 9 };
      Mobility.Marshal.M_move_req
        { obj = Ert.Oid.fresh_data ~node_id:2 ~serial:5; dest = 3; forwards = 1 };
      Mobility.Marshal.M_move
        {
          mp_src = 1;
          mp_opt_level = 0;
          mp_objects =
            [
              {
                Mobility.Marshal.mo_oid = Ert.Oid.fresh_data ~node_id:1 ~serial:8;
                mo_class = 0;
                mo_fields = [| V.Vint 1l; V.Vstr "f"; V.Vnil |];
                mo_locked = true;
                mo_waiters = [ 11; 22 ];
                mo_cond_waiters = [ [ 33 ]; [] ];
              };
            ];
          mp_segments = [];
        };
    ]
  in
  List.iter
    (fun m ->
      let enc = Mobility.Marshal.encode ~impl:Enet.Wire.Naive ~stats m in
      let dec = Mobility.Marshal.decode ~impl:Enet.Wire.Naive ~stats enc in
      if dec <> m then
        Alcotest.failf "message did not round trip: %s" (Mobility.Marshal.describe m))
    messages

(* Cross-architecture capture equivalence -------------------------------- *)

(* Run the same program to the same move point on different architectures
   and compare the machine-independent payloads: slot indices, stop
   numbers and values must be identical — the whole point of the format. *)

let capture_src =
  {|
object Agent
  operation go[] -> [r : int]
    var a : int <- 1234567
    var x : real <- 6.5
    var s : string <- "carried"
    var b : bool <- true
    move self to 1
    r <- a
    if b and x == 6.5 and s == "carried" then
      r <- a + 1
    end if
  end go
end Agent
|}

let capture_payload arch =
  let prog = Emc.Compile.compile_exn ~name:"cap" ~archs:[ arch ] capture_src in
  let k = Ert.Kernel.create ~node_id:0 ~arch () in
  Ert.Kernel.load_program k prog;
  let cc = Option.get (Emc.Compile.find_class prog "Agent") in
  let addr = Ert.Kernel.create_object k ~class_index:cc.Emc.Compile.cc_index in
  ignore (Ert.Kernel.spawn_root k ~target_addr:addr ~method_name:"go" ~args:[]);
  let rec to_move n =
    if n > 10000 then Alcotest.fail "never reached the move";
    match Ert.Kernel.step k with
    | [ Ert.Kernel.Oc_move { seg; obj_addr; dest_node } ] ->
      Mobility.Move.park_mover_for_test seg;
      Mobility.Move.perform_move k ~obj_addr ~dest:dest_node
    | _ -> to_move (n + 1)
  in
  to_move 0

let strip_frame (f : MF.mi_frame) =
  (* self OIDs embed the creating node and serial; identical here, but
     compare them anyway along with everything else *)
  (f.MF.mf_class, f.MF.mf_method, f.MF.mf_stop, f.MF.mf_slots, f.MF.mf_self)

let test_cross_arch_capture_equivalence () =
  let payloads = List.map (fun a -> (a, capture_payload a)) A.all in
  match payloads with
  | [] -> ()
  | (ref_arch, ref_payload) :: rest ->
    let ref_frames =
      List.concat_map
        (fun s -> List.map strip_frame s.MF.ms_frames)
        ref_payload.Mobility.Marshal.mp_segments
    in
    List.iter
      (fun (arch, payload) ->
        let frames =
          List.concat_map
            (fun s -> List.map strip_frame s.MF.ms_frames)
            payload.Mobility.Marshal.mp_segments
        in
        if frames <> ref_frames then
          Alcotest.failf
            "machine-independent capture differs between %s and %s" ref_arch.A.id
            arch.A.id;
        (* object payloads too *)
        let objs p =
          List.map
            (fun (o : Mobility.Marshal.move_object) ->
              (o.Mobility.Marshal.mo_class, o.mo_fields, o.mo_locked, o.mo_waiters))
            p.Mobility.Marshal.mp_objects
        in
        if objs payload <> objs ref_payload then
          Alcotest.failf "object capture differs between %s and %s" ref_arch.A.id
            arch.A.id)
      rest

(* the 13 variables of the Table 1 workload land in the MI frame *)
let test_capture_slot_values () =
  let payload = capture_payload A.vax in
  let all_values =
    List.concat_map
      (fun s ->
        List.concat_map
          (fun f -> List.map snd (Array.to_list f.MF.mf_slots))
          s.MF.ms_frames)
      payload.Mobility.Marshal.mp_segments
  in
  let has v = List.exists (V.equal v) all_values in
  if not (has (V.Vint 1234567l)) then Alcotest.fail "int local not captured";
  if not (has (V.Vreal 6.5)) then Alcotest.fail "real local not captured (VAX F!)";
  if not (has (V.Vstr "carried")) then Alcotest.fail "string local not captured";
  if not (has (V.Vbool true)) then Alcotest.fail "bool local not captured"

let suites =
  [
    ( "translate",
      [
        qcheck (seg_roundtrip Enet.Wire.Naive);
        qcheck (seg_roundtrip Enet.Wire.Bulk);
        qcheck (seg_roundtrip Enet.Wire.Plan);
        Alcotest.test_case "message round trips" `Quick test_message_roundtrip;
        Alcotest.test_case "MI capture identical across architectures" `Quick
          test_cross_arch_capture_equivalence;
        Alcotest.test_case "captured slot values" `Quick test_capture_slot_values;
      ] );
  ]
