(* Forced eviction and monitor wait/notify: the PR-6 execution-core
   restructuring.  Covers the hot-spot balancer's determinism at shard
   counts 1/2/4 (traces and profile tables byte-identical), eviction of
   segments caught mid-bridge (awaiting a remote reply) and mid-monitor-
   queue (blocked on a condition), timed waits and notifyall at every
   level of the specialization hierarchy, and a qcheck property that a
   forced eviction marshals exactly the bytes the cooperative capture
   path would. *)

module A = Isa.Arch
module V = Ert.Value
module K = Ert.Kernel
module T = Ert.Thread
module W = Core.Workloads
module MV = Emi.Mvalue

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---------------------------------------------------------------- *)
(* hot-spot balancer determinism at shards 1/2/4                      *)
(* ---------------------------------------------------------------- *)

let test_hotspot_determinism () =
  let go shards =
    W.measure_evict ~shards ~workers:6 ~n_nodes:4 ~rounds:4 ~spins:60 ()
  in
  let r1 = go 1 and r2 = go 2 and r4 = go 4 in
  if r1.W.er_evictions = 0 then
    Alcotest.fail "the balancer never fired an eviction";
  let distinct =
    List.sort_uniq compare r1.W.er_final_spread |> List.length
  in
  if distinct < 2 then
    Alcotest.fail "eviction never spread the workers off node 0";
  List.iter
    (fun (label, r) ->
      check Alcotest.int (label ^ " result") r1.W.er_result r.W.er_result;
      check (Alcotest.float 0.0) (label ^ " virtual us") r1.W.er_virtual_us
        r.W.er_virtual_us;
      check Alcotest.int (label ^ " events") r1.W.er_events r.W.er_events;
      check Alcotest.int (label ^ " evictions") r1.W.er_evictions
        r.W.er_evictions;
      check Alcotest.string (label ^ " trace") r1.W.er_trace r.W.er_trace;
      check Alcotest.string (label ^ " phase table") r1.W.er_phase_table
        r.W.er_phase_table)
    [ ("2 shards", r2); ("4 shards", r4) ]

(* ---------------------------------------------------------------- *)
(* eviction + wait/notify together, still shard-count invariant       *)
(* ---------------------------------------------------------------- *)

let gate_and_spin_src =
  {|
object Gate
  var opened : bool <- false
  condition go

  monitor operation pass[] -> [r : int]
    loop
      exit when opened
      wait go timeout 700
    end loop
    r <- thisnode
  end pass

  monitor operation open[]
    opened <- true
    notifyall go
  end open
end Gate

object Waiter
  var g : Gate <- nil
  operation initially[gg : Gate]
    g <- gg
  end initially
  process
    var x : int <- g.pass[]
  end process
end Waiter

object Opener
  var g : Gate <- nil
  operation initially[gg : Gate]
    g <- gg
  end initially
  process
    var i : int <- 0
    loop
      exit when i >= 150
      i <- i + 1
    end loop
    g.open[]
  end process
end Opener

object Main
  operation start[] -> [r : int]
    var g : Gate <- new Gate
    var w1 : Waiter <- new Waiter[g]
    var w2 : Waiter <- new Waiter[g]
    var o : Opener <- new Opener[g]
    r <- g.pass[]
  end start
end Main

object Worker
  operation work[rounds : int, spins : int] -> [r : int]
    var i : int <- 0
    var j : int <- 0
    var acc : int <- 0
    loop
      exit when i >= rounds
      i <- i + 1
      j <- 0
      loop
        exit when j >= spins
        j <- j + 1
        acc <- acc + j - (j / 2) * 2
      end loop
    end loop
    r <- acc * 100 + thisnode
  end work
end Worker
|}

let run_gate_and_spin shards =
  let archs = List.init 4 (fun _ -> A.sparc) in
  let cl = Core.Cluster.create ~quantum:40 ~shards ~archs () in
  let trace = Buffer.create 4096 in
  Core.Cluster.set_trace cl (fun line ->
      Buffer.add_string trace line;
      Buffer.add_char trace '\n');
  let prof = Obs.Profile.create () in
  Core.Cluster.attach_profile cl prof;
  ignore (Core.Cluster.compile_and_load cl ~name:"gatespin" gate_and_spin_src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let mt = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
  let workers =
    List.init 4 (fun _ ->
        let w = Core.Cluster.create_object cl ~node:0 ~class_name:"Worker" in
        Core.Cluster.spawn cl ~node:0 ~target:w ~op:"work"
          ~args:[ V.Vint 3l; V.Vint 50l ])
  in
  Core.Cluster.set_balancer cl ~every_us:400.0 (W.hot_spot_balancer cl);
  Core.Cluster.run cl;
  let digest tid =
    match Core.Cluster.result cl tid with
    | Some (Some (V.Vint v)) -> Int32.to_int v
    | _ -> Alcotest.fail "gate+spin thread did not complete"
  in
  let evictions =
    List.init 4 (fun i -> K.evictions (Core.Cluster.kernel cl i))
    |> List.fold_left ( + ) 0
  in
  ( List.map digest (mt :: workers),
    evictions,
    Core.Cluster.global_time_us cl,
    Buffer.contents trace,
    Obs.Profile.table prof )

let test_gate_and_spin_determinism () =
  let d1, e1, t1, tr1, pt1 = run_gate_and_spin 1 in
  let d2, e2, t2, tr2, pt2 = run_gate_and_spin 2 in
  let d4, e4, t4, tr4, pt4 = run_gate_and_spin 4 in
  if e1 = 0 then Alcotest.fail "no eviction fired alongside wait/notify";
  check (Alcotest.list Alcotest.int) "digests 1 vs 2" d1 d2;
  check (Alcotest.list Alcotest.int) "digests 1 vs 4" d1 d4;
  check Alcotest.int "evictions 1 vs 2" e1 e2;
  check Alcotest.int "evictions 1 vs 4" e1 e4;
  check (Alcotest.float 0.0) "virtual time 1 vs 2" t1 t2;
  check (Alcotest.float 0.0) "virtual time 1 vs 4" t1 t4;
  check Alcotest.string "trace 1 vs 2" tr1 tr2;
  check Alcotest.string "trace 1 vs 4" tr1 tr4;
  check Alcotest.string "phase table 1 vs 2" pt1 pt2;
  check Alcotest.string "phase table 1 vs 4" pt1 pt4

(* ---------------------------------------------------------------- *)
(* eviction mid-bridge: the segment awaits a remote reply             *)
(* ---------------------------------------------------------------- *)

let bridge_src =
  {|
object Server
  operation double[x : int] -> [r : int]
    var i : int <- 0
    loop
      exit when i >= 400
      i <- i + 1
    end loop
    r <- x + x
  end double
end Server

object Client
  operation go[s : Server] -> [r : int]
    r <- s.double[21]
  end go
end Client
|}

let seg_of_tid k tid =
  List.find_opt (fun s -> s.T.seg_thread = tid) (K.segments k)

let test_evict_mid_bridge () =
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.vax; A.sun3 ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"bridge" bridge_src);
  let server = Core.Cluster.create_object cl ~node:1 ~class_name:"Server" in
  let client = Core.Cluster.create_object cl ~node:0 ~class_name:"Client" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:client ~op:"go"
      ~args:[ V.Vref server ]
  in
  let k0 = Core.Cluster.kernel cl 0 in
  (* run until the client's segment is parked on the bridge *)
  let rec to_bridge n =
    if n > 20000 then Alcotest.fail "client never reached the bridge";
    match seg_of_tid k0 tid with
    | Some ({ T.seg_status = T.Awaiting_reply _; _ } as s) -> s.T.seg_id
    | _ ->
      ignore (Core.Cluster.step_once cl);
      to_bridge (n + 1)
  in
  let seg_id = to_bridge 0 in
  Core.Cluster.evict_thread cl ~node:0 ~seg_id ~dest:2;
  check Alcotest.int "trap fired immediately" 1 (K.evictions k0);
  (match Core.Cluster.run_until_result cl tid with
  | Some (V.Vint 42l) -> ()
  | _ -> Alcotest.fail "reply did not reach the evicted segment");
  (* the client object travelled with its mid-bridge segment *)
  check (Alcotest.option Alcotest.int) "client evicted to node 2" (Some 2)
    (Core.Cluster.where_is cl client)

(* ---------------------------------------------------------------- *)
(* eviction mid-monitor-queue: the segment is a blocked cond waiter   *)
(* ---------------------------------------------------------------- *)

let monitor_queue_src =
  {|
object Gate
  var opened : bool <- false
  condition go

  monitor operation pass[] -> [r : int]
    loop
      exit when opened
      wait go
    end loop
    r <- thisnode
  end pass

  monitor operation open[]
    opened <- true
    notifyall go
  end open
end Gate

object Waiter
  operation park[g : Gate] -> [r : int]
    r <- g.pass[]
  end park
end Waiter
|}

let test_evict_mid_monitor_queue () =
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.vax ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"monq" monitor_queue_src);
  let gate = Core.Cluster.create_object cl ~node:0 ~class_name:"Gate" in
  let w1 = Core.Cluster.create_object cl ~node:0 ~class_name:"Waiter" in
  let w2 = Core.Cluster.create_object cl ~node:0 ~class_name:"Waiter" in
  let t1 = Core.Cluster.spawn cl ~node:0 ~target:w1 ~op:"park" ~args:[ V.Vref gate ] in
  let t2 = Core.Cluster.spawn cl ~node:0 ~target:w2 ~op:"park" ~args:[ V.Vref gate ] in
  let k0 = Core.Cluster.kernel cl 0 in
  (* run until both waiters are blocked on the condition queue *)
  let blocked tid =
    match seg_of_tid k0 tid with
    | Some { T.seg_status = T.Blocked_monitor _; _ } -> true
    | _ -> false
  in
  let rec settle n =
    if n > 20000 then Alcotest.fail "waiters never blocked";
    if not (blocked t1 && blocked t2) then begin
      ignore (Core.Cluster.step_once cl);
      settle (n + 1)
    end
  in
  settle 0;
  let seg_id =
    match seg_of_tid k0 t1 with
    | Some s -> s.T.seg_id
    | None -> Alcotest.fail "waiter 1 segment vanished"
  in
  (* evicting the blocked waiter ships the gate it is executing inside,
     dragging the whole condition queue (the other waiter included) *)
  Core.Cluster.evict_thread cl ~node:0 ~seg_id ~dest:1;
  check Alcotest.int "trap fired immediately" 1 (K.evictions k0);
  Core.Cluster.run cl;
  check (Alcotest.option Alcotest.int) "gate moved with the waiter" (Some 1)
    (Core.Cluster.where_is cl gate);
  let ot = Core.Cluster.spawn cl ~node:1 ~target:gate ~op:"open" ~args:[] in
  Core.Cluster.run cl;
  ignore (Core.Cluster.result cl ot);
  List.iter
    (fun t ->
      match Core.Cluster.result cl t with
      | Some (Some (V.Vint 1l)) -> ()
      | _ -> Alcotest.fail "waiter did not resume on the VAX after eviction")
    [ t1; t2 ]

(* ---------------------------------------------------------------- *)
(* timed waits and notifyall                                          *)
(* ---------------------------------------------------------------- *)

let test_timed_wait_expires () =
  let src =
    {|
object Napper
  condition never
  monitor operation nap[us : int] -> [r : int]
    var t0 : int <- timenow
    wait never timeout us
    r <- timenow - t0
  end nap
end Napper
|}
  in
  let cl = Core.Cluster.create ~archs:[ A.sparc ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"nap" src);
  let n = Core.Cluster.create_object cl ~node:0 ~class_name:"Napper" in
  let t =
    Core.Cluster.spawn cl ~node:0 ~target:n ~op:"nap" ~args:[ V.Vint 500l ]
  in
  match Core.Cluster.run_until_result cl t with
  | Some (V.Vint v) ->
    let v = Int32.to_int v in
    if v < 500 then
      Alcotest.failf "timed wait resumed %d us in, before its 500 us deadline" v
  | _ -> Alcotest.fail "timed wait with no signaller never expired"

let test_notifyall_wakes_every_waiter () =
  let cl = Core.Cluster.create ~archs:[ A.sun3 ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"all" monitor_queue_src);
  let gate = Core.Cluster.create_object cl ~node:0 ~class_name:"Gate" in
  let spawn_waiter () =
    let w = Core.Cluster.create_object cl ~node:0 ~class_name:"Waiter" in
    Core.Cluster.spawn cl ~node:0 ~target:w ~op:"park" ~args:[ V.Vref gate ]
  in
  let ts = List.init 3 (fun _ -> spawn_waiter ()) in
  Core.Cluster.run cl;
  (* all three are parked; one notifyall must release them all *)
  let ot = Core.Cluster.spawn cl ~node:0 ~target:gate ~op:"open" ~args:[] in
  Core.Cluster.run cl;
  ignore (Core.Cluster.result cl ot);
  List.iter
    (fun t ->
      match Core.Cluster.result cl t with
      | Some (Some (V.Vint 0l)) -> ()
      | _ -> Alcotest.fail "notifyall left a waiter blocked")
    ts

(* the same timed-wait/notifyall program at all three levels of the
   specialization hierarchy *)
let levels_src =
  {|
object Cell
  var v : int <- 0
  var filled : bool <- false
  condition c

  monitor operation put[x : int]
    v <- x
    filled <- true
    notifyall c
  end put

  monitor operation get[] -> [r : int]
    loop
      exit when filled
      wait c timeout 50
    end loop
    r <- v
  end get
end Cell

object Setter
  var cell : Cell <- nil
  operation initially[c : Cell]
    cell <- c
  end initially
  process
    cell.put[42]
  end process
end Setter

object Main
  operation start[] -> [r : int]
    var c : Cell <- new Cell
    var s : Setter <- new Setter[c]
    r <- c.get[]
  end start
end Main
|}

let test_wait_notify_levels_agree () =
  let ast = Emc.Parser.parse_program levels_src in
  let tprog = Emc.Typecheck.check ast in
  let r_src =
    Emi.Ast_interp.run tprog ~class_name:"Main" ~op:"start" ~args:[]
  in
  let ir = Emc.Lower.lower_program ~name:"levels" tprog in
  let r_ir = Emi.Ir_interp.run ir ~class_name:"Main" ~op:"start" ~args:[] in
  check (Alcotest.option Alcotest.int) "source level" (Some 42)
    (Option.map (fun v -> Int32.to_int (MV.as_int v)) r_src.Emi.Ast_interp.value);
  check (Alcotest.option Alcotest.int) "IR level" (Some 42)
    (Option.map (fun v -> Int32.to_int (MV.as_int v)) r_ir.Emi.Ir_interp.value);
  let cl = Core.Cluster.create ~archs:[ A.vax ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"levels" levels_src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let t = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
  match Core.Cluster.run_until_result cl t with
  | Some (V.Vint 42l) -> ()
  | _ -> Alcotest.fail "native level disagreed on the wait/notify program"

let test_emi_deadlock_detected () =
  let src =
    {|
object Main
  condition never
  monitor operation start[] -> [r : int]
    wait never
    r <- 1
  end start
end Main
|}
  in
  let ast = Emc.Parser.parse_program src in
  let tprog = Emc.Typecheck.check ast in
  match Emi.Ast_interp.run tprog ~class_name:"Main" ~op:"start" ~args:[] with
  | _ -> Alcotest.fail "an untimed wait with no signaller must deadlock"
  | exception Failure msg ->
    if not (String.length msg >= 8 && String.sub msg 0 8 = "deadlock") then
      Alcotest.failf "expected a deadlock failure, got: %s" msg

(* ---------------------------------------------------------------- *)
(* qcheck: evict-then-migrate == cooperative park-then-migrate        *)
(* ---------------------------------------------------------------- *)

(* Two identical kernels run the same two spin workers in lockstep.  At a
   random slice where worker 1 is capturable, kernel A captures it with
   the forced-eviction path (trap -> [Move.initiate_evict], which must
   resolve the target object by walking the frames) and kernel B with the
   cooperative path ([Move.perform_move] on the object address the
   program knows).  The marshalled move payloads must match byte for
   byte: eviction only chooses *when* to capture, never *what*. *)

let spin_src ~n_vars =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "object Worker\n  operation work[spins : int] -> [r : int]\n";
  for i = 1 to n_vars do
    Buffer.add_string buf (Printf.sprintf "    var v%d : int <- %d\n" i (i * 7))
  done;
  Buffer.add_string buf "    var i : int <- 0\n    var acc : int <- 0\n";
  Buffer.add_string buf "    loop\n      exit when i >= spins\n      i <- i + 1\n";
  Buffer.add_string buf "      acc <- acc";
  for i = 1 to n_vars do
    Buffer.add_string buf (Printf.sprintf " + v%d" i)
  done;
  Buffer.add_string buf "\n    end loop\n    r <- acc\n  end work\nend Worker\n";
  Buffer.contents buf

let evict_capture_gen =
  QCheck.Gen.(triple (int_range 1 10) (int_range 2 30) (int_range 1 60))

let build_spin_kernel ~n_vars ~spins =
  let prog =
    Emc.Compile.compile_exn ~name:"spin" ~archs:[ A.sparc ] (spin_src ~n_vars)
  in
  let k = K.create ~node_id:0 ~arch:A.sparc () in
  K.load_program k prog;
  K.set_quantum k (Some 25);
  let cc = Option.get (Emc.Compile.find_class prog "Worker") in
  let a1 = K.create_object k ~class_index:cc.Emc.Compile.cc_index in
  let a2 = K.create_object k ~class_index:cc.Emc.Compile.cc_index in
  let args = [ V.Vint (Int32.of_int spins) ] in
  let t1 = K.spawn_root k ~target_addr:a1 ~method_name:"work" ~args in
  ignore (K.spawn_root k ~target_addr:a2 ~method_name:"work" ~args);
  (k, a1, t1)

let payload_bytes payload =
  let stats = Enet.Conversion_stats.create () in
  Mobility.Marshal.encode ~impl:Enet.Wire.Naive ~stats
    (Mobility.Marshal.M_move payload)

let qcheck_evict_equals_cooperative =
  QCheck.Test.make ~name:"evict-then-migrate == park-then-migrate (bytes)"
    ~count:80 (QCheck.make evict_capture_gen) (fun (n_vars, spins, slices) ->
      let ka, _oa, ta = build_spin_kernel ~n_vars ~spins in
      let kb, ob, _tb = build_spin_kernel ~n_vars ~spins in
      for _ = 1 to slices do
        ignore (K.step ka);
        ignore (K.step kb)
      done;
      (* capture splits every live segment, so both kernels must first park
         any segment preempted mid-quantum at its next stop — exactly what
         the cluster's quiesce does before a move *)
      let quiesce k =
        List.iter
          (fun s ->
            if s.T.seg_live && not (K.at_stop k s) then
              ignore (K.advance_to_stop k s))
          (K.segments k)
      in
      quiesce ka;
      quiesce kb;
      match seg_of_tid ka ta with
      | None -> true (* worker already finished: nothing to capture *)
      | Some seg_a when not (K.capturable ka seg_a) ->
        true (* parked mid-quantum, not at a stop: trap stays armed *)
      | Some seg_a -> (
        match K.evict_thread ka ~seg_id:seg_a.T.seg_id ~dest_node:1 with
        | [ K.Oc_evict { seg; dest_node; _ } ] ->
          let sends_evict = Mobility.Move.initiate_evict ~k:ka ~seg ~dest:dest_node in
          let payload_coop = Mobility.Move.perform_move kb ~obj_addr:ob ~dest:1 in
          (match sends_evict with
          | [ { Mobility.Move.snd_msg = Mobility.Marshal.M_move p; _ } ] ->
            payload_bytes p = payload_bytes payload_coop
          | _ -> false)
        | _ -> false))

let suites =
  [
    ( "eviction",
      [
        Alcotest.test_case "hot-spot balancer identical at 1/2/4 shards" `Quick
          test_hotspot_determinism;
        Alcotest.test_case "eviction + wait/notify identical at 1/2/4 shards"
          `Quick test_gate_and_spin_determinism;
        Alcotest.test_case "eviction mid-bridge (awaiting reply)" `Quick
          test_evict_mid_bridge;
        Alcotest.test_case "eviction mid-monitor-queue" `Quick
          test_evict_mid_monitor_queue;
        Alcotest.test_case "timed wait expires" `Quick test_timed_wait_expires;
        Alcotest.test_case "notifyall wakes every waiter" `Quick
          test_notifyall_wakes_every_waiter;
        Alcotest.test_case "wait/notify agrees at all three levels" `Quick
          test_wait_notify_levels_agree;
        Alcotest.test_case "emi deadlock detected" `Quick
          test_emi_deadlock_detected;
        qcheck qcheck_evict_equals_cooperative;
      ] );
  ]
