(* The typed trace/metrics bus: emission paths for moves, drops and
   collections; per-node counters; and the legacy-string printer that
   must reproduce the seed trace hook's lines byte-for-byte. *)

module A = Isa.Arch
module V = Ert.Value
module W = Core.Workloads
module C = Core.Cluster
module E = Core.Events

let check = Alcotest.check

let test_legacy_strings () =
  let oid = Ert.Oid.fresh_data ~node_id:3 ~serial:7 in
  let os = Ert.Oid.to_string oid in
  let cases =
    [
      ( E.Ev_msg_send
          { time = 12.0; src = 0; dst = 1; desc = "MoveReq"; bytes = 40; arrives = 262.0 },
        Some "t=12us node 0 -> node 1: MoveReq (40 bytes, arrives 262us)" );
      ( E.Ev_msg_deliver { time = 262.0; node = 1; desc = "MoveReq" },
        Some "t=262us node 1 receives: MoveReq" );
      ( E.Ev_msg_lost { src = 0; dst = 2; desc = "Ping" },
        Some "node 0 -> node 2: Ping LOST (destination down)" );
      (E.Ev_msg_drop { node = 2; desc = "Pong" }, Some "node 2 (down) loses: Pong");
      ( E.Ev_move_start { time = 5.0; node = 0; obj = oid; dest = 1 },
        Some (Printf.sprintf "t=5us node 0: move %s to node 1" os) );
      ( E.Ev_gc { time = 9.0; node = 1; swept = 4; live = 2; bytes_freed = 128 },
        Some "t=9us node 1: gc swept 4 block(s), 128 bytes" );
      (E.Ev_crash { node = 2 }, Some "node 2 crashes");
      ( E.Ev_thread_lost { thread = 1; reason = "node 2 crashed" },
        Some "thread 1 unavailable: node 2 crashed" );
      ( E.Ev_search_start { node = 0; obj = oid; probes = 3 },
        Some (Printf.sprintf "node 0 searches for %s (3 probes)" os) );
      ( E.Ev_search_found { obj = oid; node = 2 },
        Some (Printf.sprintf "search for %s: found on node 2" os) );
      ( E.Ev_search_failed { obj = oid },
        Some (Printf.sprintf "search for %s: not found anywhere" os) );
      (* events the seed's trace hook never printed *)
      (E.Ev_step { node = 0; time = 1.0 }, None);
      ( E.Ev_move_finish { time = 1.0; node = 1; objects = 1; segments = 1; frames = 2 },
        None );
      (E.Ev_conversion { node = 0; calls = 10; bytes = 8 }, None);
    ]
  in
  List.iter
    (fun (ev, expect) ->
      check
        Alcotest.(option string)
        (E.to_string ev) expect (E.legacy_string ev))
    cases

let test_trace_hook_matches_bus () =
  (* the legacy [set_trace] hook and a bus subscriber filtering through
     [legacy_string] must see the very same lines, in the same order *)
  let run collect_via_hook =
    let cl = C.create ~archs:[ A.sparc; A.sun3 ] () in
    ignore (C.compile_and_load cl ~name:"t1" W.table1_src);
    let lines = ref [] in
    if collect_via_hook then C.set_trace cl (fun s -> lines := s :: !lines)
    else
      C.subscribe_events cl (fun ev ->
          match E.legacy_string ev with
          | Some s -> lines := s :: !lines
          | None -> ());
    let agent = C.create_object cl ~node:0 ~class_name:"Agent" in
    let tid =
      C.spawn cl ~node:0 ~target:agent ~op:"trip" ~args:[ V.Vint 1l; V.Vint 2l ]
    in
    ignore (C.run_until_result cl tid);
    List.rev !lines
  in
  let hook = run true and bus = run false in
  if hook = [] then Alcotest.fail "the trace hook saw nothing";
  check Alcotest.(list string) "identical trace lines" hook bus

let test_move_emission_and_counters () =
  let cl = C.create ~archs:[ A.sparc; A.sun3 ] () in
  ignore (C.compile_and_load cl ~name:"t1" W.table1_src);
  let starts = ref 0 and finishes = ref 0 and conv_events = ref 0 in
  C.subscribe_events cl (fun ev ->
      match ev with
      | E.Ev_move_start _ -> incr starts
      | E.Ev_move_finish _ -> incr finishes
      | E.Ev_conversion _ -> incr conv_events
      | _ -> ());
  let agent = C.create_object cl ~node:0 ~class_name:"Agent" in
  let tid =
    C.spawn cl ~node:0 ~target:agent ~op:"trip" ~args:[ V.Vint 1l; V.Vint 2l ]
  in
  ignore (C.run_until_result cl tid);
  (* two iterations of (move to dest; move home): four moves in all *)
  check Alcotest.int "move starts" 4 !starts;
  check Alcotest.int "move finishes" 4 !finishes;
  let c0 = C.node_counters cl 0 and c1 = C.node_counters cl 1 in
  check Alcotest.int "node 0 moves out" 2 c0.E.c_moves_out;
  check Alcotest.int "node 0 moves in" 2 c0.E.c_moves_in;
  check Alcotest.int "node 1 moves out" 2 c1.E.c_moves_out;
  check Alcotest.int "node 1 moves in" 2 c1.E.c_moves_in;
  check Alcotest.int "total moves in = starts" 4
    (C.total_counter cl (fun c -> c.E.c_moves_in));
  if !conv_events = 0 || c0.E.c_conv_calls = 0 then
    Alcotest.fail "enhanced-protocol moves must account conversion work";
  if c0.E.c_steps = 0 then Alcotest.fail "scheduling slices were not counted"

let remote_move_src =
  {|
object Agent
  operation go[] -> [r : int]
    move self to 1
    r <- thisnode
  end go
end Agent

object Main
  operation start[] -> [r : int]
    var a : Agent <- new Agent
    r <- a.go[]
  end start
end Main
|}

let test_lost_message_emission () =
  (* moving toward a dead node: the payload is refused at send time *)
  let cl = C.create ~archs:[ A.sparc; A.vax ] () in
  ignore (C.compile_and_load cl ~name:"lost" remote_move_src);
  let crashes = ref 0 and lost = ref 0 in
  C.subscribe_events cl (fun ev ->
      match ev with
      | E.Ev_crash _ -> incr crashes
      | E.Ev_msg_lost _ -> incr lost
      | _ -> ());
  C.crash_node cl 1;
  let main = C.create_object cl ~node:0 ~class_name:"Main" in
  let tid = C.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
  (match C.run_until_result cl ~max_events:200_000 tid with
  | _ -> Alcotest.fail "expected unavailability"
  | exception C.Thread_unavailable _ -> ());
  check Alcotest.int "one crash event" 1 !crashes;
  if !lost = 0 then Alcotest.fail "no Ev_msg_lost for a send to a dead node";
  check Alcotest.int "lost counter charged to the sender" !lost
    (C.node_counters cl 0).E.c_lost

let churn_src =
  {|
object Cell
  var v : int <- 0
  operation set[x : int]
    v <- x
  end set
end Cell

object Main
  operation churn[n : int] -> [r : int]
    var i : int <- 0
    loop
      exit when i >= n
      i <- i + 1
      var tmp : Cell <- new Cell
      tmp.set[i]
      var s : string <- "garbage " + "string"
      if s == "" then
        r <- i
      end if
    end loop
    r <- 42
  end churn
end Main
|}

let test_gc_emission () =
  let cl = C.create ~gc_threshold:(8 * 1024) ~archs:[ A.sparc ] () in
  ignore (C.compile_and_load cl ~name:"churn" churn_src);
  let gcs = ref 0 and freed = ref 0 in
  C.subscribe_events cl (fun ev ->
      match ev with
      | E.Ev_gc { bytes_freed; _ } ->
        incr gcs;
        freed := !freed + bytes_freed
      | _ -> ());
  let main = C.create_object cl ~node:0 ~class_name:"Main" in
  let tid = C.spawn cl ~node:0 ~target:main ~op:"churn" ~args:[ V.Vint 200l ] in
  (match C.run_until_result cl tid with
  | Some (V.Vint 42l) -> ()
  | _ -> Alcotest.fail "wrong result under automatic GC");
  if !gcs = 0 then Alcotest.fail "no Ev_gc events under a tight threshold";
  if !freed = 0 then Alcotest.fail "the collections freed nothing";
  check Alcotest.int "collection counter" !gcs
    (C.node_counters cl 0).E.c_collections;
  check Alcotest.int "freed-bytes counter" !freed
    (C.node_counters cl 0).E.c_gc_bytes_freed;
  check Alcotest.int "cluster collections agree" !gcs (C.collections cl)

let suites =
  [
    ( "events",
      [
        Alcotest.test_case "legacy strings reproduce the seed trace" `Quick
          test_legacy_strings;
        Alcotest.test_case "set_trace and the bus see identical lines" `Quick
          test_trace_hook_matches_bus;
        Alcotest.test_case "moves emit and count per node" `Quick
          test_move_emission_and_counters;
        Alcotest.test_case "lost messages emit and count" `Quick
          test_lost_message_emission;
        Alcotest.test_case "collections emit and count" `Quick test_gc_emission;
      ] );
  ]
