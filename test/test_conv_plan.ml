(* Tests for compiled conversion plans: byte identity with the
   interpretive tiers, accounting parity with [Bulk], memo-cache
   behaviour, and the golden Table 1 virtual-time numbers the plan tier
   must not move. *)

module A = Isa.Arch
module V = Ert.Value
module CP = Mobility.Conv_plan
module CS = Enet.Conversion_stats
module WR = Enet.Wire.Writer
module RD = Enet.Wire.Reader

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* Section-level byte identity ------------------------------------------- *)

(* A slot whose declared type its value inhabits, so a compiled plan
   always applies; strings and nils keep the dynamic fallback honest. *)
let typed_gen =
  let open QCheck.Gen in
  oneof
    [
      map
        (fun i -> (Emc.Ast.Tint, V.Vint (Int32.of_int i)))
        (int_range (-1000000) 1000000);
      map
        (fun i -> (Emc.Ast.Treal, V.Vreal (float_of_int i /. 16.0)))
        (int_range (-1000) 1000);
      map (fun b -> (Emc.Ast.Tbool, V.Vbool b)) bool;
      map
        (fun s -> (Emc.Ast.Tstring, V.Vstr s))
        (string_size ~gen:printable (int_range 0 20));
      return (Emc.Ast.Tnil, V.Vnil);
    ]

let case_gen =
  let open QCheck.Gen in
  list_size (int_range 0 8) typed_gen >>= fun slots ->
  int_range 0 (List.length A.all - 1) >>= fun si ->
  int_range 0 (List.length A.all - 1) >>= fun di ->
  bool >>= fun prefixed ->
  return (Array.of_list slots, List.nth A.all si, List.nth A.all di, prefixed)

(* What [Bulk] (or [Naive]) would write for the same section without a
   plan: the count prefix, the optional slot-number prefixes, then each
   value through the shared codec. *)
let write_interp ~impl ~stats ~prefixed elems values =
  let w = WR.create ~impl ~stats in
  WR.u16 w (Array.length values);
  Array.iteri
    (fun i v ->
      if prefixed then WR.u16 w (fst elems.(i));
      V.write w v)
    values;
  let s = WR.contents w in
  WR.free w;
  s

let plan_matches_interp =
  QCheck.Test.make ~name:"plan emits the interpretive bytes and accounting"
    ~count:300 (QCheck.make case_gen) (fun (slots, src, dst, prefixed) ->
      let elems = Array.mapi (fun i (ty, _) -> (2 * i, ty)) slots in
      let values = Array.map snd slots in
      let pair = { CP.pr_src = src; pr_dst = dst } in
      let s = CP.compile_section ~pair ~prefixed elems in
      let plan_stats = CS.create () in
      let w = WR.create ~impl:Enet.Wire.Plan ~stats:plan_stats in
      if not (CP.write_section s w (fun i -> values.(i))) then
        QCheck.Test.fail_report "plan did not apply to matching values";
      let plan_bytes = WR.contents w in
      WR.free w;
      let naive_bytes =
        write_interp ~impl:Enet.Wire.Naive ~stats:(CS.create ()) ~prefixed elems
          values
      in
      let bulk_stats = CS.create () in
      let bulk_bytes = write_interp ~impl:Enet.Wire.Bulk ~stats:bulk_stats ~prefixed elems values in
      if plan_bytes <> naive_bytes then
        QCheck.Test.fail_report "plan bytes differ from naive bytes";
      if plan_bytes <> bulk_bytes then
        QCheck.Test.fail_report "plan bytes differ from bulk bytes";
      (* virtual accounting must equal [Bulk]'s, datum for datum *)
      if CS.calls plan_stats <> CS.calls bulk_stats then
        QCheck.Test.fail_reportf "plan charged %d calls, bulk %d"
          (CS.calls plan_stats) (CS.calls bulk_stats);
      if CS.bytes plan_stats <> CS.bytes bulk_stats then
        QCheck.Test.fail_reportf "plan charged %d bytes, bulk %d"
          (CS.bytes plan_stats) (CS.bytes bulk_stats);
      (* and the fused decode must hand back the same values *)
      let r = RD.create ~impl:Enet.Wire.Plan ~stats:(CS.create ()) plan_bytes in
      match CP.read_section s r with
      | None -> QCheck.Test.fail_report "fused decode rejected its own bytes"
      | Some got ->
        if not (Array.for_all2 V.equal got values) then
          QCheck.Test.fail_report "fused decode returned different values";
        true)

(* The memo cache --------------------------------------------------------- *)

let cache_src =
  {|
object Agent
  operation go[] -> [r : int]
    var a : int <- 7
    var x : real <- 1.5
    move self to 1
    r <- a
    if x == 1.5 then
      r <- a + 1
    end if
  end go
end Agent
|}

let compile_cache_prog () =
  Emc.Compile.compile_exn ~name:"plan_cache" ~archs:A.all cache_src

let first_planned_stop use ~nstops =
  let rec go stop =
    if stop >= nstops then Alcotest.fail "no stop with a frame plan"
    else
      match CP.frame_plan_for use ~class_index:0 ~stop with
      | Some _ -> stop
      | None -> go (stop + 1)
  in
  go 0

let test_cache_compiles_once () =
  let prog = compile_cache_prog () in
  let nstops = prog.Emc.Compile.p_classes.(0).Emc.Compile.cc_ir.Emc.Ir.cl_nstops in
  let cache = CP.create_cache () in
  CP.set_program cache prog;
  let pair = { CP.pr_src = A.by_id "sparc"; pr_dst = A.by_id "vax" } in
  let use = CP.make_use cache pair in
  let stop = first_planned_stop use ~nstops in
  let compiles0 = CP.compiles cache in
  (* repeated lookups of the same plan are all hits, no recompiles *)
  for _ = 1 to 5 do
    match CP.frame_plan_for use ~class_index:0 ~stop with
    | Some _ -> ()
    | None -> Alcotest.fail "plan vanished on re-lookup"
  done;
  check Alcotest.int "no recompiles" compiles0 (CP.compiles cache);
  let hits0 = CP.hits cache in
  if hits0 < 5 then Alcotest.failf "expected >= 5 hits, saw %d" hits0;
  (* a second use of the same pair shares the compiled entries *)
  let use2 = CP.make_use cache pair in
  (match CP.frame_plan_for use2 ~class_index:0 ~stop with
  | Some _ -> ()
  | None -> Alcotest.fail "second use missed the shared entry");
  check Alcotest.int "shared entry, no recompile" compiles0 (CP.compiles cache);
  (* loading a program invalidates: a fresh use recompiles *)
  CP.set_program cache prog;
  let use3 = CP.make_use cache pair in
  ignore (CP.frame_plan_for use3 ~class_index:0 ~stop);
  if CP.compiles cache <= compiles0 then
    Alcotest.fail "set_program did not invalidate the cache"

(* Golden Table 1 numbers -------------------------------------------------- *)

(* The virtual-clock results of the reproduced Table 1 workload, three
   iterations.  The plan tier is required to leave every one of these
   alone: it must equal [Bulk] exactly, and neither may move [Naive],
   whose numbers are the published baseline of this repo. *)
let test_table1_virtual_times_unchanged () =
  let sparc = A.by_id "sparc" and sun3 = A.by_id "sun3" in
  let run ?protocol ?wire_impl ?faults ~home ~dest () =
    Core.Workloads.measure_roundtrip ?protocol ?wire_impl ?faults ~home ~dest
      ~iters:3 ()
  in
  let us r = r.Core.Workloads.rt_us_per_trip in
  let orig = run ~protocol:Core.Cluster.Original ~home:sparc ~dest:sparc () in
  check (Alcotest.float 0.0) "original sparc<->sparc" 43432.0 (us orig);
  let naive = run ~wire_impl:Enet.Wire.Naive ~home:sparc ~dest:sparc () in
  check (Alcotest.float 0.0) "naive sparc<->sparc" 68343.0 (us naive);
  check Alcotest.int "naive bytes" 1254 naive.Core.Workloads.rt_bytes_sent;
  check Alcotest.int "naive messages" 6 naive.Core.Workloads.rt_messages;
  check Alcotest.int "naive conversion calls" 2628
    naive.Core.Workloads.rt_conversion_calls;
  let bulk = run ~wire_impl:Enet.Wire.Bulk ~home:sparc ~dest:sparc () in
  check (Alcotest.float 0.0) "bulk sparc<->sparc" 55256.0 (us bulk);
  let plan = run ~wire_impl:Enet.Wire.Plan ~home:sparc ~dest:sparc () in
  check (Alcotest.float 0.0) "plan == bulk virtual time" (us bulk) (us plan);
  check Alcotest.int "plan == bulk bytes" bulk.Core.Workloads.rt_bytes_sent
    plan.Core.Workloads.rt_bytes_sent;
  check Alcotest.int "plan == bulk conversion calls"
    bulk.Core.Workloads.rt_conversion_calls
    plan.Core.Workloads.rt_conversion_calls;
  let het = run ~wire_impl:Enet.Wire.Naive ~home:sparc ~dest:sun3 () in
  check (Alcotest.float 0.0) "naive sparc<->sun3" 98330.0 (us het)

(* An empty fault plan stays invisible under the plan tier too *)
let test_plan_tier_ignores_empty_faults () =
  let sparc = A.by_id "sparc" in
  let plain =
    Core.Workloads.measure_roundtrip ~wire_impl:Enet.Wire.Plan ~home:sparc
      ~dest:sparc ~iters:3 ()
  in
  let faulted =
    Core.Workloads.measure_roundtrip ~wire_impl:Enet.Wire.Plan
      ~faults:(Fault.Plan.with_seed Fault.Plan.empty 42) ~home:sparc ~dest:sparc
      ~iters:3 ()
  in
  check (Alcotest.float 0.0) "virtual time"
    plain.Core.Workloads.rt_us_per_trip faulted.Core.Workloads.rt_us_per_trip;
  check Alcotest.int "bytes" plain.Core.Workloads.rt_bytes_sent
    faulted.Core.Workloads.rt_bytes_sent;
  check Alcotest.int "messages" plain.Core.Workloads.rt_messages
    faulted.Core.Workloads.rt_messages;
  check Alcotest.int "conversion calls" plain.Core.Workloads.rt_conversion_calls
    faulted.Core.Workloads.rt_conversion_calls

let suites =
  [
    ( "conv_plan",
      [
        qcheck plan_matches_interp;
        Alcotest.test_case "cache compiles once, invalidates on load" `Quick
          test_cache_compiles_once;
        Alcotest.test_case "Table 1 virtual times unchanged" `Quick
          test_table1_virtual_times_unchanged;
        Alcotest.test_case "empty fault plan invisible under plan tier" `Quick
          test_plan_tier_ignores_empty_faults;
      ] );
  ]
