(* Cluster-level behaviour: the measured claims behind the benches, RPC
   argument marshalling, the code repository, and location services. *)

module A = Isa.Arch
module V = Ert.Value
module W = Core.Workloads

let check = Alcotest.check

let test_enhanced_costs_more () =
  let orig =
    W.measure_roundtrip ~protocol:Core.Cluster.Original ~home:A.sparc ~dest:A.sparc
      ~iters:2 ()
  in
  let enh = W.measure_roundtrip ~home:A.sparc ~dest:A.sparc ~iters:2 () in
  if enh.W.rt_us_per_trip <= orig.W.rt_us_per_trip then
    Alcotest.fail "the enhanced system must cost more than the original";
  let overhead = (enh.W.rt_us_per_trip -. orig.W.rt_us_per_trip) /. orig.W.rt_us_per_trip in
  if overhead < 0.3 || overhead > 1.2 then
    Alcotest.failf "overhead %.0f%% is out of the paper's band (about 60%%)"
      (overhead *. 100.0);
  if enh.W.rt_conversion_calls <= orig.W.rt_conversion_calls then
    Alcotest.fail "the enhanced system must perform more conversion calls"

let test_conversion_cut_near_half () =
  let orig =
    W.measure_roundtrip ~protocol:Core.Cluster.Original ~home:A.sparc ~dest:A.sparc
      ~iters:2 ()
  in
  let naive = W.measure_roundtrip ~wire_impl:Enet.Wire.Naive ~home:A.sparc ~dest:A.sparc ~iters:2 () in
  let fast =
    W.measure_roundtrip ~wire_impl:Enet.Wire.Bulk ~home:A.sparc ~dest:A.sparc
      ~iters:2 ()
  in
  let cut =
    (naive.W.rt_us_per_trip -. fast.W.rt_us_per_trip)
    /. (naive.W.rt_us_per_trip -. orig.W.rt_us_per_trip)
  in
  if cut < 0.3 || cut > 0.7 then
    Alcotest.failf "conversion ablation cut %.0f%%, expected near the paper's 50%%"
      (cut *. 100.0)

let test_measure_deterministic () =
  let a = W.measure_roundtrip ~home:A.sparc ~dest:A.vax ~iters:2 () in
  let b = W.measure_roundtrip ~home:A.sparc ~dest:A.vax ~iters:2 () in
  check (Alcotest.float 0.0) "identical virtual cost" a.W.rt_us_per_trip b.W.rt_us_per_trip

let test_intranode_migration_free () =
  List.iter
    (fun arch ->
      let local = W.measure_intranode ~arch ~migrated:false ~n:300 () in
      let migrated = W.measure_intranode ~arch ~migrated:true ~n:300 () in
      (* the program reads a whole-microsecond clock, so the two runs may
         differ by one tick of truncation — just like 1995 timers *)
      check (Alcotest.float 1.0)
        (arch.A.id ^ ": migrated thread runs at native speed")
        local.W.in_virtual_us migrated.W.in_virtual_us)
    A.all

(* RPC argument marshalling across architectures -------------------------- *)

let rpc_types_src =
  {|
object Server
  var hits : int <- 0
  operation mix[i : int, x : real, s : string, b : bool, o : Server] -> [r : string]
    hits <- hits + 1
    var verdict : string <- "no"
    if i == -7 and x == 2.5 and b and o != nil and s == "ping" then
      verdict <- "ok"
    end if
    r <- verdict + s
  end mix
end Server

object Main
  operation start[] -> [r : string]
    var srv : Server <- new Server
    move srv to 1
    r <- srv.mix[-7, 2.5, "ping", true, srv]
  end start
end Main
|}

let test_rpc_marshals_all_types () =
  List.iter
    (fun dest ->
      let cl = Core.Cluster.create ~archs:[ A.sparc; dest ] () in
      ignore (Core.Cluster.compile_and_load cl ~name:"rpc" rpc_types_src);
      let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
      let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
      match Core.Cluster.run_until_result cl tid with
      | Some (V.Vstr s) -> check Alcotest.string (dest.A.id ^ " result") "okping" s
      | other ->
        Alcotest.failf "%s: unexpected result %s" dest.A.id
          (match other with
          | Some v -> Format.asprintf "%a" V.pp v
          | None -> "none"))
    [ A.vax; A.sun3; A.hp9000_385 ]

let test_where_is_tracks_moves () =
  let src =
    {|
object Ball
  operation bounce[] -> [r : int]
    r <- thisnode
  end bounce
end Ball

object Main
  operation start[] -> [r : int]
    var b : Ball <- new Ball
    move b to 2
    move b to 1
    r <- b.bounce[]
  end start
end Main
|}
  in
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.vax; A.sun3 ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"whereis" src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  check (Alcotest.option Alcotest.int) "main starts on node 0" (Some 0)
    (Core.Cluster.where_is cl main);
  let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
  (match Core.Cluster.run_until_result cl tid with
  | Some (V.Vint v) -> check Alcotest.int "bounce ran on node 1" 1 (Int32.to_int v)
  | _ -> Alcotest.fail "no result");
  check (Alcotest.option Alcotest.int) "main stayed" (Some 0) (Core.Cluster.where_is cl main)

let test_code_repository_fetches () =
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.vax ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"repo" W.table1_src);
  let agent = Core.Cluster.create_object cl ~node:0 ~class_name:"Agent" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:agent ~op:"trip"
      ~args:[ V.Vint 1l; V.Vint 2l ]
  in
  ignore (Core.Cluster.run_until_result cl tid);
  let repo = Core.Cluster.repository cl in
  (* each node fetches the Agent code object exactly once, on demand *)
  check Alcotest.int "node 0 fetches" 1 (Mobility.Code_repository.fetches_by_node repo 0);
  check Alcotest.int "node 1 fetches" 1 (Mobility.Code_repository.fetches_by_node repo 1)

let test_root_result_types () =
  let src =
    {|
object Main
  operation ival[] -> [r : int]
    r <- 5
  end ival
  operation rval[] -> [r : real]
    r <- 1.25
  end rval
  operation sval[] -> [r : string]
    r <- "emerald"
  end sval
  operation bval[] -> [r : bool]
    r <- true
  end bval
  operation noval[]
    print["fire and forget"]
  end noval
end Main
|}
  in
  let cl = Core.Cluster.create ~archs:[ A.vax ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"results" src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let run op = Core.Cluster.run_until_result cl (Core.Cluster.spawn cl ~node:0 ~target:main ~op ~args:[]) in
  (match run "ival" with
  | Some (V.Vint 5l) -> ()
  | _ -> Alcotest.fail "ival");
  (match run "rval" with
  | Some (V.Vreal x) when x = 1.25 -> ()
  | _ -> Alcotest.fail "rval");
  (match run "sval" with
  | Some (V.Vstr "emerald") -> ()
  | _ -> Alcotest.fail "sval");
  (match run "bval" with
  | Some (V.Vbool true) -> ()
  | _ -> Alcotest.fail "bval");
  match run "noval" with
  | None -> ()
  | Some _ -> Alcotest.fail "noval should have no result"

let suites =
  [
    ( "cluster",
      [
        Alcotest.test_case "enhanced costs ~60% more" `Quick test_enhanced_costs_more;
        Alcotest.test_case "conversion ablation near 50%" `Quick
          test_conversion_cut_near_half;
        Alcotest.test_case "virtual measurements deterministic" `Quick
          test_measure_deterministic;
        Alcotest.test_case "migration leaves native speed intact" `Quick
          test_intranode_migration_free;
        Alcotest.test_case "RPC marshals every value type" `Quick
          test_rpc_marshals_all_types;
        Alcotest.test_case "where_is tracks moves" `Quick test_where_is_tracks_moves;
        Alcotest.test_case "code repository fetch accounting" `Quick
          test_code_repository_fetches;
        Alcotest.test_case "root result types" `Quick test_root_result_types;
      ] );
  ]
