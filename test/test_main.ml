let () =
  Alcotest.run "emobility"
    (Test_isa.suites @ Test_enet.suites @ Test_compiler.suites @ Test_runtime.suites @ Test_mobility.suites @ Test_bridging.suites @ Test_gc.suites @ Test_emi.suites @ Test_translate.suites @ Test_conv_plan.suites @ Test_cluster.suites @ Test_failures.suites @ Test_peephole.suites @ Test_random_migration.suites @ Test_preemption.suites @ Test_vectors.suites @ Test_process.suites @ Test_location.suites @ Test_conditions.suites @ Test_misc.suites @ Test_checkpoint.suites @ Test_engine.suites @ Test_events.suites @ Test_fault.suites @ Test_shards.suites)
