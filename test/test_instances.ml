(* Code instances and migration bridging (DESIGN.md §16): threads moving
   between nodes that run differently-optimized instances of the same
   code.  Covers a qcheck property — a thread evicted mid-loop between
   -O0 and -O2 nodes, across random architecture pairs, produces the
   same result as an unmigrated run with every source-level action
   (a print per iteration) executed exactly once — plus a directed
   bridge landing (the parked stop is elided at the destination, so the
   thread resumes through a compiled fragment), re-migration from
   *inside* a bridge fragment, and 1/2/4-shard trace identity on a
   mixed-level cluster. *)

module A = Isa.Arch
module V = Ert.Value
module K = Ert.Kernel
module T = Ert.Thread
module E = Core.Events
module W = Core.Workloads

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* Each iteration performs one observable action (the print syscall) —
   which also puts a syscall-bearing bus stop in the loop block, so -O2
   elides the back-edge poll stop and a thread parked there has no exact
   correspondent in the -O2 instance. *)
let loop_src =
  {|
object Worker
  operation work[n : int] -> [r : int]
    var acc : int <- 0
    var i : int <- 0
    loop
      exit when i >= n
      i <- i + 1
      print[i]
      acc <- acc + i
    end loop
    r <- acc
  end work
end Worker
|}

let seg_of_tid k tid =
  List.find_opt (fun s -> s.T.seg_thread = tid) (K.segments k)

(* every printed line across every node, numerically sorted: migration
   may split the sequence across hosts but must never duplicate or drop
   an iteration *)
let printed_actions cl =
  let buf = Buffer.create 256 in
  for i = 0 to Core.Cluster.n_nodes cl - 1 do
    Buffer.add_string buf (Core.Cluster.output cl ~node:i)
  done;
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun s -> s <> "")
  |> List.map int_of_string
  |> List.sort compare

let expected_actions n = List.init n (fun i -> i + 1)

let check_exact ~n r actions =
  check
    (Alcotest.option Alcotest.int)
    "result" (Some (n * (n + 1) / 2))
    (match r with Some (V.Vint v) -> Some (Int32.to_int v) | _ -> None);
  check (Alcotest.list Alcotest.int) "each action exactly once"
    (expected_actions n) actions

(* Build a two-node cluster at the given levels, start the loop worker
   on node 0, evict it to node 1 after [pre] events, and run to the end.
   Returns [(result, actions, threads_bridged)].  The quantum matters:
   only a preempted thread can have its eviction trap fire at the loop's
   poll stop (cooperative parking always lands on the print syscall). *)
let run_evicted ~archs ~levels ~n ~pre =
  let cl = Core.Cluster.create ~quantum:3 ~archs () in
  List.iteri (fun i l -> Core.Cluster.set_opt_level cl ~node:i l) levels;
  ignore (Core.Cluster.compile_and_load cl ~name:"instances" loop_src);
  let w = Core.Cluster.create_object cl ~node:0 ~class_name:"Worker" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:w ~op:"work"
      ~args:[ V.Vint (Int32.of_int n) ]
  in
  let k0 = Core.Cluster.kernel cl 0 in
  for _ = 1 to pre do
    ignore (Core.Cluster.step_once cl)
  done;
  (match seg_of_tid k0 tid with
  | Some s when s.T.seg_live ->
    Core.Cluster.evict_thread cl ~node:0 ~seg_id:s.T.seg_id ~dest:1
  | Some _ | None -> ());
  let r = Core.Cluster.run_until_result cl tid in
  (r, printed_actions cl, Core.Cluster.total_counter cl (fun c -> c.E.c_bridged))

(* ---------------------------------------------------------------- *)
(* qcheck: mid-loop -O0 <-> -O2 migration is exact, any arch pair     *)
(* ---------------------------------------------------------------- *)

let all_archs = Array.of_list A.all

let migration_gen =
  QCheck.Gen.(
    let n_archs = Array.length all_archs in
    tup5 (int_range 0 (n_archs - 1)) (int_range 0 (n_archs - 1)) bool
      (int_range 4 16) (int_range 0 60))

let qcheck_exact_across_instances =
  QCheck.Test.make
    ~name:"mid-loop -O0<->-O2 migration: exact result, every action once"
    ~count:60 (QCheck.make migration_gen) (fun (ai, bi, swap, n, pre) ->
      let archs = [ all_archs.(ai); all_archs.(bi) ] in
      let levels =
        if swap then [ Emc.Opt.O2; Emc.Opt.O0 ] else [ Emc.Opt.O0; Emc.Opt.O2 ]
      in
      let r, actions, _ = run_evicted ~archs ~levels ~n ~pre in
      r = Some (V.Vint (Int32.of_int (n * (n + 1) / 2)))
      && actions = expected_actions n)

(* ---------------------------------------------------------------- *)
(* directed: a landing at an elided stop goes through a fragment      *)
(* ---------------------------------------------------------------- *)

(* Which event the eviction trap lands on decides the parked stop (the
   loop's print stop or its poll stop), so scan eviction points until a
   run actually bridges; the qcheck property above already holds at all
   of them. *)
let test_bridged_landing () =
  let n = 12 in
  let rec scan pre =
    if pre > 80 then Alcotest.fail "no eviction point parked at the poll stop";
    let r, actions, bridged =
      run_evicted ~archs:[ A.sparc; A.vax ]
        ~levels:[ Emc.Opt.O0; Emc.Opt.O2 ] ~n ~pre
    in
    check_exact ~n r actions;
    if bridged = 0 then scan (pre + 1)
  in
  scan 0

(* ---------------------------------------------------------------- *)
(* directed: re-migration from inside a bridge fragment               *)
(* ---------------------------------------------------------------- *)

(* One scenario run: evict node 0 -> 1 after [pre] events, then evict
   again the instant the thread lands on node 1 — it is still parked at
   the bridge fragment's poll (when the first landing bridged), so the
   second capture reads the fragment's stop and ships the thread to
   node 2, whose -O2 instance elides that stop too: a second bridge. *)
let double_evict ~n ~pre =
  let cl = Core.Cluster.create ~quantum:3 ~archs:[ A.sparc; A.vax; A.sun3 ] () in
  Core.Cluster.set_opt_level cl ~node:1 Emc.Opt.O2;
  Core.Cluster.set_opt_level cl ~node:2 Emc.Opt.O2;
  ignore (Core.Cluster.compile_and_load cl ~name:"rebridge" loop_src);
  let w = Core.Cluster.create_object cl ~node:0 ~class_name:"Worker" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:w ~op:"work"
      ~args:[ V.Vint (Int32.of_int n) ]
  in
  let k0 = Core.Cluster.kernel cl 0 in
  for _ = 1 to pre do
    ignore (Core.Cluster.step_once cl)
  done;
  (match seg_of_tid k0 tid with
  | Some s when s.T.seg_live ->
    Core.Cluster.evict_thread cl ~node:0 ~seg_id:s.T.seg_id ~dest:1;
    let k1 = Core.Cluster.kernel cl 1 in
    let rec await budget =
      if budget = 0 then Alcotest.fail "worker never landed on node 1"
      else
        match seg_of_tid k1 tid with
        | Some s -> s
        | None ->
          ignore (Core.Cluster.step_once cl);
          await (budget - 1)
    in
    let s1 = await 20000 in
    Core.Cluster.evict_thread cl ~node:1 ~seg_id:s1.T.seg_id ~dest:2
  | Some _ | None -> ());
  let r = Core.Cluster.run_until_result cl tid in
  ( r,
    printed_actions cl,
    Core.Cluster.total_counter cl (fun c -> c.E.c_bridged) )

let test_bridge_from_bridge () =
  let n = 12 in
  let rec scan pre =
    if pre > 80 then
      Alcotest.fail "no eviction point yielded a bridge-from-bridge chain";
    let r, actions, bridged = double_evict ~n ~pre in
    check_exact ~n r actions;
    (* two bridged landings = the second capture happened inside the
       first landing's fragment and was itself re-bridged at node 2 *)
    if bridged < 2 then scan (pre + 1)
  in
  scan 0

(* ---------------------------------------------------------------- *)
(* fragment cache: misses compile, repeats hit, restart clears        *)
(* ---------------------------------------------------------------- *)

let test_fragment_cache () =
  let n = 12 in
  (* find a bridging eviction point, then replay it with a second
     worker evicted at the same point: same parked stop, same target
     instance, so the second landing reuses the first one's fragment *)
  let run pre =
    let cl = Core.Cluster.create ~quantum:3 ~archs:[ A.sparc; A.vax ] () in
    Core.Cluster.set_opt_level cl ~node:1 Emc.Opt.O2;
    ignore (Core.Cluster.compile_and_load cl ~name:"fragcache" loop_src);
    let spawn () =
      let w = Core.Cluster.create_object cl ~node:0 ~class_name:"Worker" in
      Core.Cluster.spawn cl ~node:0 ~target:w ~op:"work"
        ~args:[ V.Vint (Int32.of_int n) ]
    in
    let tid1 = spawn () in
    let k0 = Core.Cluster.kernel cl 0 in
    for _ = 1 to pre do
      ignore (Core.Cluster.step_once cl)
    done;
    (match seg_of_tid k0 tid1 with
    | Some s when s.T.seg_live ->
      Core.Cluster.evict_thread cl ~node:0 ~seg_id:s.T.seg_id ~dest:1
    | Some _ | None -> ());
    ignore (Core.Cluster.run_until_result cl tid1);
    let tid2 = spawn () in
    for _ = 1 to pre do
      ignore (Core.Cluster.step_once cl)
    done;
    (match seg_of_tid k0 tid2 with
    | Some s when s.T.seg_live ->
      Core.Cluster.evict_thread cl ~node:0 ~seg_id:s.T.seg_id ~dest:1
    | Some _ | None -> ());
    ignore (Core.Cluster.run_until_result cl tid2);
    (cl, Core.Cluster.bridge_stats cl)
  in
  let rec scan pre =
    if pre > 80 then Alcotest.fail "no eviction point bridged";
    let cl, (hits, misses) = run pre in
    if hits + misses = 0 then scan (pre + 1) else (cl, hits, misses)
  in
  let cl, hits, misses = scan 0 in
  (* the first landing compiled the fragment; the identical second
     landing must find it *)
  check Alcotest.int "one fragment compiled" 1 misses;
  if hits < 1 then Alcotest.failf "repeat landing missed the cache (%d hits)" hits;
  let b = Mobility.Code_repository.bridge_cache (Core.Cluster.repository cl) ~node:1 in
  if Ert.Bridge.count b < 1 then Alcotest.fail "fragment not retained";
  (* fragments address kernel text, so a restart must drop them while
     the cache's history survives *)
  Core.Cluster.crash_node cl 1;
  Core.Cluster.restart_node cl 1;
  check Alcotest.int "fragments cleared by restart" 0 (Ert.Bridge.count b);
  check Alcotest.int "hit history survives restart" hits (Ert.Bridge.hits b)

(* ---------------------------------------------------------------- *)
(* mixed-level cluster is shard-count invariant                       *)
(* ---------------------------------------------------------------- *)

let spin_and_print_src =
  {|
object Worker
  operation work[rounds : int, spins : int] -> [r : int]
    var i : int <- 0
    var j : int <- 0
    var acc : int <- 0
    loop
      exit when i >= rounds
      i <- i + 1
      print[i]
      j <- 0
      loop
        exit when j >= spins
        j <- j + 1
        acc <- acc + j - (j / 2) * 2
      end loop
    end loop
    r <- acc * 100 + thisnode
  end work
end Worker
|}

let run_mixed shards =
  let archs = [ A.sparc; A.vax; A.sun3; A.hp9000_433 ] in
  let cl = Core.Cluster.create ~quantum:40 ~shards ~archs () in
  List.iteri
    (fun i l -> Core.Cluster.set_opt_level cl ~node:i l)
    [ Emc.Opt.O0; Emc.Opt.O2; Emc.Opt.O0; Emc.Opt.O2 ];
  let trace = Buffer.create 4096 in
  Core.Cluster.set_trace cl (fun line ->
      Buffer.add_string trace line;
      Buffer.add_char trace '\n');
  ignore (Core.Cluster.compile_and_load cl ~name:"mixed" spin_and_print_src);
  let workers =
    List.init 4 (fun _ ->
        let w = Core.Cluster.create_object cl ~node:0 ~class_name:"Worker" in
        Core.Cluster.spawn cl ~node:0 ~target:w ~op:"work"
          ~args:[ V.Vint 3l; V.Vint 50l ])
  in
  Core.Cluster.set_balancer cl ~every_us:400.0 (W.hot_spot_balancer cl);
  Core.Cluster.run cl;
  let digest tid =
    match Core.Cluster.result cl tid with
    | Some (Some (V.Vint v)) -> Int32.to_int v
    | _ -> Alcotest.fail "mixed-level worker did not complete"
  in
  ( List.map digest workers,
    Core.Cluster.global_time_us cl,
    Buffer.contents trace,
    Core.Cluster.total_counter cl (fun c -> c.E.c_bridged),
    Core.Cluster.bridge_stats cl )

let test_mixed_levels_shard_invariant () =
  let d1, t1, tr1, b1, bs1 = run_mixed 1 in
  let d2, t2, tr2, b2, bs2 = run_mixed 2 in
  let d4, t4, tr4, b4, bs4 = run_mixed 4 in
  check (Alcotest.list Alcotest.int) "digests 1 vs 2" d1 d2;
  check (Alcotest.list Alcotest.int) "digests 1 vs 4" d1 d4;
  check (Alcotest.float 0.0) "virtual time 1 vs 2" t1 t2;
  check (Alcotest.float 0.0) "virtual time 1 vs 4" t1 t4;
  check Alcotest.string "trace 1 vs 2" tr1 tr2;
  check Alcotest.string "trace 1 vs 4" tr1 tr4;
  check Alcotest.int "bridged threads 1 vs 2" b1 b2;
  check Alcotest.int "bridged threads 1 vs 4" b1 b4;
  check (Alcotest.pair Alcotest.int Alcotest.int) "fragment cache 1 vs 2" bs1 bs2;
  check (Alcotest.pair Alcotest.int Alcotest.int) "fragment cache 1 vs 4" bs1 bs4

let suites =
  [
    ( "instances",
      [
        qcheck qcheck_exact_across_instances;
        Alcotest.test_case "bridged landing at an elided stop" `Quick
          test_bridged_landing;
        Alcotest.test_case "re-migration from inside a bridge" `Quick
          test_bridge_from_bridge;
        Alcotest.test_case "fragment cache hits, cleared on restart" `Quick
          test_fragment_cache;
        Alcotest.test_case "mixed levels identical at 1/2/4 shards" `Quick
          test_mixed_levels_shard_invariant;
      ] );
  ]
