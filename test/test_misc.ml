(* Remaining edge cases: monitor fairness, string corner cases, heap
   block reuse, network configuration, disassembler coverage, OIDs. *)

module A = Isa.Arch
module V = Ert.Value

let check = Alcotest.check

(* Monitors wake in FIFO order ------------------------------------------- *)

let fifo_src =
  {|
object Logbook
  var order : int <- 0
  monitor operation enter[who : int] -> [r : int]
    // hold the monitor long enough that the others queue up
    var spin : int <- 0
    loop
      exit when spin >= 30
      spin <- spin + 1
    end loop
    order <- order * 10 + who
    r <- order
  end enter
end Logbook

object Guest
  operation visit[l : Logbook, who : int] -> [r : int]
    r <- l.enter[who]
  end visit
end Guest
|}

let test_monitor_fifo () =
  let cl = Core.Cluster.create ~archs:[ A.vax ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"fifo" fifo_src);
  let log = Core.Cluster.create_object cl ~node:0 ~class_name:"Logbook" in
  let spawn who =
    let g = Core.Cluster.create_object cl ~node:0 ~class_name:"Guest" in
    Core.Cluster.spawn cl ~node:0 ~target:g ~op:"visit"
      ~args:[ V.Vref log; V.Vint (Int32.of_int who) ]
  in
  let t1 = spawn 1 and t2 = spawn 2 and t3 = spawn 3 in
  Core.Cluster.run cl;
  let final t =
    match Core.Cluster.result cl t with
    | Some (Some (V.Vint v)) -> Int32.to_int v
    | _ -> Alcotest.fail "guest did not finish"
  in
  (* the thread that entered last sees the full order; waiters are woken
     in their arrival (queue) order: 1, then 2, then 3 *)
  check Alcotest.int "arrival order preserved" 123 (max (final t1) (max (final t2) (final t3)))

(* Strings ------------------------------------------------------------------ *)

let test_string_edges () =
  let src =
    {|
object Main
  operation start[] -> [r : int]
    var empty : string <- ""
    var s : string <- empty + "" + "x" + ""
    var ok : int <- 0
    if empty == "" then
      ok <- ok + 1
    end if
    if s == "x" then
      ok <- ok + 10
    end if
    if empty != s then
      ok <- ok + 100
    end if
    r <- ok
  end start
end Main
|}
  in
  List.iter
    (fun arch ->
      let cl = Core.Cluster.create ~archs:[ arch ] () in
      ignore (Core.Cluster.compile_and_load cl ~name:"str" src);
      let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
      let t = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
      match Core.Cluster.run_until_result cl t with
      | Some (V.Vint 111l) -> ()
      | _ -> Alcotest.failf "%s: string edge cases failed" arch.A.id)
    [ A.vax; A.sparc ]

(* Heap block reuse ----------------------------------------------------------- *)

let test_heap_reuse () =
  let mem = Isa.Memory.create ~endian:Isa.Endian.Big ~size:(1 lsl 16) in
  let heap = Ert.Heap.create ~mem ~start:0x1000 in
  let a = Ert.Heap.alloc heap 64 in
  Ert.Heap.free heap ~addr:a ~size:64;
  let b = Ert.Heap.alloc heap 64 in
  check Alcotest.int "freed block is reused" a b;
  let c = Ert.Heap.alloc heap 64 in
  if c = b then Alcotest.fail "live block must not be reused";
  check Alcotest.bool "zeroed on reuse" true (Isa.Memory.load32 mem b = 0l)

(* Network configuration -------------------------------------------------------- *)

let test_custom_network_config () =
  (* a much slower network makes the same workload proportionally slower *)
  let slow =
    {
      Enet.Netsim.latency_us = 5000.0;
      bandwidth_mbit_s = 1.0;
      frame_overhead_bytes = 58;
    }
  in
  let run config =
    let cl = Core.Cluster.create ?net_config:config ~archs:[ A.sparc; A.sparc ] () in
    ignore (Core.Cluster.compile_and_load cl ~name:"net" Core.Workloads.table1_src);
    let a = Core.Cluster.create_object cl ~node:0 ~class_name:"Agent" in
    let t =
      Core.Cluster.spawn cl ~node:0 ~target:a ~op:"trip" ~args:[ V.Vint 1l; V.Vint 2l ]
    in
    match Core.Cluster.run_until_result cl t with
    | Some (V.Vint v) -> Int32.to_float v
    | _ -> Alcotest.fail "no timing"
  in
  let fast_t = run None in
  let slow_t = run (Some slow) in
  if slow_t <= fast_t then Alcotest.fail "a slower network must cost more"

(* Disassembler smoke over everything ------------------------------------------- *)

let test_disasm_all () =
  let prog =
    Emc.Compile.compile_exn ~name:"dis" ~archs:A.all Core.Workloads.intranode_src
  in
  Array.iter
    (fun (cc : Emc.Compile.compiled_class) ->
      List.iter
        (fun (_, (art : Emc.Compile.arch_artifact)) ->
          let listing = Isa.Disasm.listing art.Emc.Compile.aa_code in
          if String.length listing < 50 then Alcotest.fail "suspiciously short listing";
          (* every bus-stop PC disassembles *)
          Array.iter
            (fun (e : Emc.Busstop.entry) ->
              ignore (Isa.Disasm.insn_at art.Emc.Compile.aa_code e.Emc.Busstop.be_pc))
            art.Emc.Compile.aa_stops.Emc.Busstop.bt_entries)
        cc.Emc.Compile.cc_arts)
    prog.Emc.Compile.p_classes

(* OIDs --------------------------------------------------------------------------- *)

let test_oid_spaces () =
  let data = Ert.Oid.fresh_data ~node_id:3 ~serial:42 in
  check Alcotest.bool "data oid" true (Ert.Oid.is_data data);
  check Alcotest.bool "not code" false (Ert.Oid.is_code data);
  check (Alcotest.option Alcotest.int) "creator" (Some 3) (Ert.Oid.creator_node data);
  let db = Emc.Program_db.create () in
  let code = Emc.Program_db.assign db ~program:"p" ~class_name:"C" in
  check Alcotest.bool "code oid" true (Ert.Oid.is_code code);
  check Alcotest.bool "spaces disjoint" false (Ert.Oid.is_data code);
  check (Alcotest.option Alcotest.int) "wide creator" (Some 1999)
    (Ert.Oid.creator_node (Ert.Oid.fresh_data ~node_id:1999 ~serial:7));
  (match Ert.Oid.fresh_data ~node_id:Ert.Oid.max_nodes ~serial:1 with
  | _ -> Alcotest.fail "node id range must be enforced"
  | exception Invalid_argument _ -> ())

(* Conversion stats ---------------------------------------------------------------- *)

let test_conversion_stats () =
  let s = Enet.Conversion_stats.create () in
  Enet.Conversion_stats.add_calls s 10;
  Enet.Conversion_stats.add_bytes s 5;
  check (Alcotest.float 0.001) "calls per byte" 2.0 (Enet.Conversion_stats.calls_per_byte s);
  Enet.Conversion_stats.reset s;
  check Alcotest.int "reset" 0 (Enet.Conversion_stats.calls s)

let suites =
  [
    ( "misc",
      [
        Alcotest.test_case "monitor FIFO fairness" `Quick test_monitor_fifo;
        Alcotest.test_case "string edge cases" `Quick test_string_edges;
        Alcotest.test_case "heap block reuse" `Quick test_heap_reuse;
        Alcotest.test_case "custom network config" `Quick test_custom_network_config;
        Alcotest.test_case "disassembler covers all code" `Quick test_disasm_all;
        Alcotest.test_case "oid spaces" `Quick test_oid_spaces;
        Alcotest.test_case "conversion stats" `Quick test_conversion_stats;
      ] );
  ]
