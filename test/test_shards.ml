(* The sharded engine (DESIGN.md §11): the (time, rank, seq) total
   order, node→shard placement, and the non-negotiable determinism
   contract — one shard is bit-identical to the pre-shard engine, and
   any shard count produces the identical merged event stream, results
   and virtual times, in both the sequential-merge and the
   parallel-window regimes. *)

module A = Isa.Arch
module V = Ert.Value
module W = Core.Workloads
module C = Core.Cluster
module E = Core.Events
module Eng = Core.Engine

let check = Alcotest.check

let archs n =
  let pool = [| A.sparc; A.sun3; A.hp9000_433; A.vax |] in
  List.init n (fun i -> pool.(i mod Array.length pool))

(* ----------------------------------------------------------------------- *)
(* the engine's total order on colliding timestamps *)

let drain e =
  let rec go acc =
    match Eng.take e with
    | None -> List.rev acc
    | Some ev -> go (ev :: acc)
  in
  go []

let ev_label = function
  | Eng.Chaos i -> Printf.sprintf "chaos%d" i
  | Eng.Gc i -> Printf.sprintf "gc%d" i
  | Eng.Deliver i -> Printf.sprintf "deliver%d" i
  | Eng.Step i -> Printf.sprintf "step%d" i
  | Eng.Timer i -> Printf.sprintf "timer%d" i
  | Eng.Wake i -> Printf.sprintf "wake%d" i

let test_colliding_timestamps () =
  (* every entry at the same virtual time: the pop order must be the
     node-major rank — all of node 0's kinds before any of node 1's —
     regardless of insertion order *)
  let entries =
    [ Eng.Step 2; Eng.Timer 0; Eng.Gc 3; Eng.Deliver 1; Eng.Chaos 2;
      Eng.Deliver 0; Eng.Step 0; Eng.Gc 1; Eng.Timer 3; Eng.Chaos 1 ]
  in
  let expected =
    "deliver0 step0 timer0 chaos1 gc1 deliver1 chaos2 step2 gc3 timer3"
  in
  let run order =
    let e = Eng.create ~n_nodes:4 () in
    List.iter (fun ev -> Eng.schedule e ~at:100.0 ev) order;
    String.concat " " (List.map ev_label (drain e))
  in
  check Alcotest.string "node-major rank order" expected (run entries);
  check Alcotest.string "insertion-order independent" expected
    (run (List.rev entries));
  (* ties against earlier times never jump the queue *)
  let e = Eng.create ~n_nodes:4 () in
  Eng.schedule e ~at:100.0 (Eng.Step 0);
  Eng.schedule e ~at:99.0 (Eng.Timer 3);
  check Alcotest.string "time before rank" "timer3 step0"
    (String.concat " " (List.map ev_label (drain e)))

let test_peek_rank_merge () =
  (* merging two disjoint-node engines by (time, rank) equals one
     engine holding all entries *)
  let one = Eng.create ~n_nodes:4 () in
  let lo = Eng.create ~n_nodes:4 () and hi = Eng.create ~n_nodes:4 () in
  let put e ~at ev = Eng.schedule e ~at ev in
  List.iter
    (fun (at, ev) ->
      put one ~at ev;
      put (match ev with
           | Eng.Step i | Eng.Deliver i | Eng.Gc i | Eng.Timer i | Eng.Chaos i
           | Eng.Wake i ->
             if i < 2 then lo else hi)
        ~at ev)
    [ (5.0, Eng.Step 3); (5.0, Eng.Step 0); (4.0, Eng.Deliver 2);
      (5.0, Eng.Gc 1); (6.0, Eng.Timer 0); (5.0, Eng.Deliver 3) ];
  let merged =
    let rec go acc =
      match Eng.peek lo, Eng.peek hi with
      | None, None -> List.rev acc
      | Some _, None -> go (Option.get (Eng.take lo) :: acc)
      | None, Some _ -> go (Option.get (Eng.take hi) :: acc)
      | Some (t1, r1), Some (t2, r2) ->
        let e = if t1 < t2 || (t1 = t2 && r1 < r2) then lo else hi in
        go (Option.get (Eng.take e) :: acc)
    in
    go []
  in
  check Alcotest.string "two-heap merge replays the single heap"
    (String.concat " " (List.map ev_label (drain one)))
    (String.concat " " (List.map ev_label merged))

(* ----------------------------------------------------------------------- *)
(* placement *)

let test_plan_contiguous () =
  List.iter
    (fun (n, d) ->
      let p = Core.Shard.plan ~n_nodes:n ~shards:d in
      let ds = Core.Shard.n_shards p in
      check Alcotest.int
        (Printf.sprintf "n=%d d=%d: capped at one shard per node" n d)
        (min n d) ds;
      let covered = ref 0 in
      for s = 0 to ds - 1 do
        let lo = Core.Shard.lo p s and hi = Core.Shard.hi p s in
        if s > 0 then
          check Alcotest.int "contiguous intervals" (Core.Shard.hi p (s - 1)) lo;
        for i = lo to hi - 1 do
          check Alcotest.int "owner matches interval" s (Core.Shard.owner p i);
          incr covered
        done
      done;
      check Alcotest.int "every node owned exactly once" n !covered)
    [ (1, 1); (2, 4); (5, 2); (8, 3); (64, 4); (7, 7) ]

(* ----------------------------------------------------------------------- *)
(* determinism across shard counts *)

type capture = {
  cap_result : int;
  cap_events : int;
  cap_collections : int;
  cap_time : float;
  cap_log : string;
}

let same_capture name a b =
  check Alcotest.int (name ^ ": result") a.cap_result b.cap_result;
  check Alcotest.int (name ^ ": events processed") a.cap_events b.cap_events;
  check Alcotest.int (name ^ ": collections") a.cap_collections b.cap_collections;
  check (Alcotest.float 0.0) (name ^ ": final virtual time") a.cap_time b.cap_time;
  check Alcotest.string (name ^ ": event sequence") a.cap_log b.cap_log

(* the multi-agent ring tour, run to quiescence — the one entry point
   that may execute shards in parallel *)
let run_parallel_tour ?gc_threshold ?gc_mode ?gc_budget ?on_event ~subscribe
    ~shards ~n_nodes ~hops ~spins () =
  (* homogeneous cluster: the tour's pairwise-distinct-nodes premise
     needs lockstep agents, i.e. equal node speeds *)
  let cl =
    C.create ~quantum:20 ~shards ?gc_threshold ?gc_mode ?gc_budget
      ~archs:(List.init n_nodes (fun _ -> A.sparc)) ()
  in
  ignore (C.compile_and_load cl ~name:"ptour" W.parallel_src);
  let log = Buffer.create 4096 in
  if subscribe || on_event <> None then
    C.subscribe_events cl (fun ev ->
        (match on_event with Some f -> f ev | None -> ());
        if subscribe then begin
          Buffer.add_string log (Core.Events.to_string ev);
          Buffer.add_char log '\n'
        end);
  let tids =
    List.init n_nodes (fun a ->
        let agent = C.create_object cl ~node:a ~class_name:"Agent" in
        C.spawn cl ~node:a ~target:agent ~op:"tour"
          ~args:
            [
              V.Vint (Int32.of_int n_nodes);
              V.Vint (Int32.of_int hops);
              V.Vint (Int32.of_int spins);
            ])
  in
  C.run cl;
  let result =
    List.fold_left
      (fun acc tid ->
        match C.result cl tid with
        | Some (Some (V.Vint v)) -> acc + Int32.to_int v
        | _ -> Alcotest.fail "agent did not return an int")
      0 tids
  in
  ( cl,
    {
      cap_result = result;
      cap_events = C.events_processed cl;
      cap_collections = C.collections cl;
      cap_time = C.global_time_us cl;
      cap_log = Buffer.contents log;
    } )

let test_parallel_trace_identical () =
  (* full event stream with a live subscriber (windows buffer and replay
     in (time, rank, seq) order): bit-identical at shards 1, 2, 4 *)
  let go shards =
    run_parallel_tour ~subscribe:true ~shards ~n_nodes:4 ~hops:6 ~spins:30 ()
  in
  let _, s1 = go 1 in
  let cl2, s2 = go 2 in
  let cl4, s4 = go 4 in
  same_capture "shards 1 vs 2" s1 s2;
  same_capture "shards 1 vs 4" s1 s4;
  if E.windows (C.bus cl2) = 0 then
    Alcotest.fail "2-shard run never entered a parallel window";
  if E.windows (C.bus cl4) = 0 then
    Alcotest.fail "4-shard run never entered a parallel window"

let test_parallel_counters_identical () =
  (* no subscriber: windows skip the replay buffer and update counters
     directly — results, counters and virtual times must still match,
     and the per-shard metrics must account for every window event *)
  let go shards =
    run_parallel_tour ~subscribe:false ~gc_threshold:60_000 ~shards ~n_nodes:4
      ~hops:6 ~spins:30 ()
  in
  let cl1, s1 = go 1 in
  let cl4, s4 = go 4 in
  same_capture "unbuffered shards 1 vs 4" s1 s4;
  List.iter
    (fun (name, f) ->
      check Alcotest.int name (C.total_counter cl1 f) (C.total_counter cl4 f))
    [
      ("steps", fun c -> c.E.c_steps);
      ("sent", fun c -> c.E.c_sent);
      ("delivered", fun c -> c.E.c_delivered);
      ("moves in", fun c -> c.E.c_moves_in);
      ("collections", fun c -> c.E.c_collections);
      ("conversion calls", fun c -> c.E.c_conv_calls);
    ];
  let bus = C.bus cl4 in
  if E.windows bus = 0 then Alcotest.fail "4-shard run never ran a window";
  let window_events = ref 0 in
  for s = 0 to C.n_shards cl4 - 1 do
    window_events := !window_events + (E.shard_counters bus s).E.s_events
  done;
  if !window_events = 0 then
    Alcotest.fail "no events attributed to any shard's windows";
  if !window_events > C.events_processed cl4 then
    Alcotest.failf "shard metrics count %d events, cluster only %d"
      !window_events (C.events_processed cl4)

let test_sequential_merge_identical () =
  (* the single-agent tour drives [run_until_result] — always the
     sequential merge, at any shard count *)
  let go shards =
    let cl = C.create ~quantum:2 ~shards ~archs:(archs 4) () in
    ignore (C.compile_and_load cl ~name:"tour" W.scaling_src);
    let agent = C.create_object cl ~node:0 ~class_name:"Agent" in
    let log = Buffer.create 4096 in
    C.subscribe_events cl (fun ev ->
        Buffer.add_string log (Core.Events.to_string ev);
        Buffer.add_char log '\n');
    let tid =
      C.spawn cl ~node:0 ~target:agent ~op:"tour"
        ~args:[ V.Vint 4l; V.Vint 8l; V.Vint 40l ]
    in
    let result =
      match C.run_until_result cl tid with
      | Some (V.Vint v) -> Int32.to_int v
      | _ -> Alcotest.fail "tour did not return an int"
    in
    {
      cap_result = result;
      cap_events = C.events_processed cl;
      cap_collections = C.collections cl;
      cap_time = C.global_time_us cl;
      cap_log = Buffer.contents log;
    }
  in
  let s1 = go 1 in
  same_capture "merge shards 1 vs 2" s1 (go 2);
  same_capture "merge shards 1 vs 4" s1 (go 4)

let test_table1_identical () =
  (* the paper's headline numbers may not depend on the shard count *)
  let go shards =
    W.measure_roundtrip ~shards ~home:A.sparc ~dest:A.sun3 ~iters:4 ()
  in
  let r1 = go 1 in
  List.iter
    (fun shards ->
      let r = go shards in
      check (Alcotest.float 0.0)
        (Printf.sprintf "Table 1 us/trip at %d shards" shards)
        r1.W.rt_us_per_trip r.W.rt_us_per_trip;
      check Alcotest.int "bytes" r1.W.rt_bytes_sent r.W.rt_bytes_sent;
      check Alcotest.int "messages" r1.W.rt_messages r.W.rt_messages)
    [ 2; 4 ]

let test_scaling_identical () =
  (* measure_scaling's multi-agent digest across shard counts *)
  let go shards =
    W.measure_scaling ~shards ~agents:4 ~n_nodes:4 ~hops:4 ~spins:25 ()
  in
  let r1 = go 1 and r4 = go 4 in
  check Alcotest.int "digest" r1.W.sc_result r4.W.sc_result;
  check Alcotest.int "events" r1.W.sc_events r4.W.sc_events;
  check (Alcotest.float 0.0) "virtual time" r1.W.sc_virtual_us r4.W.sc_virtual_us;
  check Alcotest.int "shards recorded" 4 r4.W.sc_shards;
  if r4.W.sc_windows = 0 then Alcotest.fail "4-shard scaling run used no windows"

let test_incremental_gc_shard_invariant () =
  (* the incremental collector's increments are ordinary engine events:
     trace, counters and per-increment pauses must be bit-identical at
     1, 2 and 4 shards.  Every pause also obeys the budget bound — the
     per-increment charge (120 + scanned*40 instructions) is what keeps
     Chandy-Misra windows inside the horizon, so an increment whose
     pause escapes the bound would stall the window protocol. *)
  let budget = 64 in
  let pauses = ref [] in
  let go shards =
    pauses := [];
    run_parallel_tour ~gc_threshold:12_000 ~gc_mode:C.Gc_incremental
      ~gc_budget:budget
      ~on_event:(function
        | E.Ev_gc_phase { pause_us; _ } -> pauses := pause_us :: !pauses
        | _ -> ())
      ~subscribe:true ~shards ~n_nodes:4 ~hops:6 ~spins:30 ()
  in
  let cl1, s1 = go 1 in
  let p1 = !pauses in
  let _, s2 = go 2 in
  let cl4, s4 = go 4 in
  let p4 = !pauses in
  same_capture "incremental shards 1 vs 2" s1 s2;
  same_capture "incremental shards 1 vs 4" s1 s4;
  if E.windows (C.bus cl4) = 0 then
    Alcotest.fail "4-shard incremental run never entered a parallel window";
  let inc1 = C.total_counter cl1 (fun c -> c.E.c_gc_increments) in
  if inc1 = 0 then Alcotest.fail "no increments ran";
  check Alcotest.int "increment count shard-invariant" inc1
    (C.total_counter cl4 (fun c -> c.E.c_gc_increments));
  check Alcotest.int "every increment emitted a phase event" inc1
    (List.length p1);
  if p1 <> p4 then Alcotest.fail "phase pauses differ across shard counts";
  (* the atomic root scan may overrun the slot budget, so give it
     headroom; mark and sweep increments sit well inside it *)
  let bound = float_of_int (120 + ((budget + 2048) * 40)) /. A.sparc.A.mips in
  List.iter
    (fun p ->
      if p > bound then
        Alcotest.failf "increment pause %.1fus exceeds bound %.1fus" p bound)
    p1

(* ----------------------------------------------------------------------- *)
(* the qcheck property: any seed-derived workload + fault plan yields the
   identical outcome at shards 1, 2 and 4 (the fuzz driver steps through
   the sequential merge, so this covers crashes, partitions, loss,
   duplication and delay riding on the sharded structures) *)

let verdict_string = function
  | Core.Fuzz.Completed v -> "completed: " ^ v
  | Core.Fuzz.Unavailable r -> "unavailable: " ^ r
  | Core.Fuzz.Stuck r -> "stuck: " ^ r
  | Core.Fuzz.Invariant vs ->
    Printf.sprintf "invariant (%d violations)" (List.length vs)

let fuzz_shard_prop =
  QCheck.Test.make ~count:12 ~name:"fuzz outcome is shard-count invariant"
    QCheck.(map (fun n -> 1 + (n mod 4096)) small_int)
    (fun seed ->
      let out shards =
        let o = Core.Fuzz.run_seed ~check_every:64 ~shards ~seed () in
        ( verdict_string o.Core.Fuzz.f_verdict,
          o.Core.Fuzz.f_events,
          o.Core.Fuzz.f_virtual_us,
          o.Core.Fuzz.f_trace )
      in
      let o1 = out 1 in
      o1 = out 2 && o1 = out 4)

(* same invariance with the incremental collector racing the fault plan:
   crashes land mid-mark-cycle, and the discard-and-restart rule must
   keep the outcome shard-count independent *)
let fuzz_gc_shard_prop =
  QCheck.Test.make ~count:8
    ~name:"gc-mode fuzz outcome is shard-count invariant"
    QCheck.(map (fun n -> 1 + (n mod 4096)) small_int)
    (fun seed ->
      let out shards =
        let o = Core.Fuzz.run_seed ~check_every:64 ~gc:true ~shards ~seed () in
        ( verdict_string o.Core.Fuzz.f_verdict,
          o.Core.Fuzz.f_events,
          o.Core.Fuzz.f_virtual_us,
          o.Core.Fuzz.f_trace )
      in
      let o1 = out 1 in
      o1 = out 2 && o1 = out 4)

let suites =
  [
    ( "shards",
      [
        Alcotest.test_case "engine total order on colliding timestamps" `Quick
          test_colliding_timestamps;
        Alcotest.test_case "two-heap (time, rank) merge = one heap" `Quick
          test_peek_rank_merge;
        Alcotest.test_case "placement is a contiguous partition" `Quick
          test_plan_contiguous;
        Alcotest.test_case "parallel windows: trace identical at 1/2/4" `Quick
          test_parallel_trace_identical;
        Alcotest.test_case "parallel windows: counters identical, metrics sane"
          `Quick test_parallel_counters_identical;
        Alcotest.test_case "sequential merge: trace identical at 1/2/4" `Quick
          test_sequential_merge_identical;
        Alcotest.test_case "Table 1 numbers are shard-count invariant" `Quick
          test_table1_identical;
        Alcotest.test_case "measure_scaling digest is shard-count invariant"
          `Quick test_scaling_identical;
        Alcotest.test_case "incremental gc: trace and pauses identical at 1/2/4"
          `Quick test_incremental_gc_shard_invariant;
        QCheck_alcotest.to_alcotest fuzz_shard_prop;
        QCheck_alcotest.to_alcotest fuzz_gc_shard_prop;
      ] );
  ]
