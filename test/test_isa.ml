(* Tests for the virtual-architecture layer: byte orders, float formats,
   memory, code objects and the machine interpreter. *)

module A = Isa.Arch
module I = Isa.Insn
module O = Isa.Operand

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* Endianness ------------------------------------------------------------ *)

let test_endian_roundtrip =
  QCheck.Test.make ~name:"int32 byte round trip, both orders" ~count:500
    QCheck.int32 (fun v ->
      List.for_all
        (fun e ->
          let b0, b1, b2, b3 = Isa.Endian.bytes_of_int32 e v in
          Int32.equal (Isa.Endian.int32_of_bytes e b0 b1 b2 b3) v)
        [ Isa.Endian.Little; Isa.Endian.Big ])

let test_endian_disagree () =
  let v = 0x01020304l in
  let quad (a, b, c, d) = [ a; b; c; d ] in
  let l = Isa.Endian.bytes_of_int32 Isa.Endian.Little v in
  let b = Isa.Endian.bytes_of_int32 Isa.Endian.Big v in
  check (Alcotest.list Alcotest.int) "little endian order" [ 0x04; 0x03; 0x02; 0x01 ]
    (quad l);
  check (Alcotest.list Alcotest.int) "big endian order" [ 0x01; 0x02; 0x03; 0x04 ] (quad b)

let test_endian16 () =
  let lo, hi = Isa.Endian.bytes_of_int16 Isa.Endian.Little 0xBEEF in
  check Alcotest.int "lo" 0xEF lo;
  check Alcotest.int "hi" 0xBE hi;
  check Alcotest.int "roundtrip" 0xBEEF (Isa.Endian.int16_of_bytes Isa.Endian.Little lo hi)

(* Float formats ---------------------------------------------------------- *)

let representable_float =
  (* single-precision representable, within VAX F range *)
  QCheck.map
    (fun (m, e) -> Float.ldexp (Float.of_int m /. 65536.0) e)
    (QCheck.pair (QCheck.int_range (-65535) 65535) (QCheck.int_range (-100) 100))

let test_float_roundtrip fmt name =
  QCheck.Test.make ~name ~count:500 representable_float (fun x ->
      let y = Isa.Float_format.decode fmt (Isa.Float_format.encode fmt x) in
      Float.abs (y -. x) <= Float.abs x *. 1e-6)

let test_float_cross =
  QCheck.Test.make ~name:"VAX F and IEEE agree through conversion" ~count:500
    representable_float (fun x ->
      let vax = Isa.Float_format.encode Isa.Float_format.Vax_f x in
      let ieee =
        Isa.Float_format.convert ~from:Isa.Float_format.Vax_f
          ~to_:Isa.Float_format.Ieee_single vax
      in
      let y = Isa.Float_format.decode Isa.Float_format.Ieee_single ieee in
      Float.abs (y -. x) <= Float.abs x *. 1e-6)

let test_float_formats_differ () =
  (* the same value must have different register images: the data really is
     machine dependent *)
  let x = 1.5 in
  let v = Isa.Float_format.encode Isa.Float_format.Vax_f x in
  let i = Isa.Float_format.encode Isa.Float_format.Ieee_single x in
  if Int32.equal v i then Alcotest.fail "VAX F and IEEE images should differ"

let test_vax_no_nan () =
  (try
     ignore (Isa.Float_format.encode Isa.Float_format.Vax_f Float.nan);
     Alcotest.fail "NaN must be rejected"
   with Isa.Float_format.Reserved_operand _ -> ());
  try
    ignore (Isa.Float_format.encode Isa.Float_format.Vax_f Float.infinity);
    Alcotest.fail "infinity must be rejected"
  with Isa.Float_format.Reserved_operand _ -> ()

let test_vax_reserved_operand () =
  (* sign bit set, exponent zero *)
  try
    ignore (Isa.Float_format.decode Isa.Float_format.Vax_f 0x8000l);
    Alcotest.fail "reserved operand must be rejected"
  with Isa.Float_format.Reserved_operand _ -> ()

let test_vax_zero () =
  check (Alcotest.float 0.0) "zero encodes to 0" 0.0
    (Isa.Float_format.decode Isa.Float_format.Vax_f
       (Isa.Float_format.encode Isa.Float_format.Vax_f 0.0))

(* Memory ------------------------------------------------------------------ *)

let test_memory_endianness () =
  let little = Isa.Memory.create ~endian:Isa.Endian.Little ~size:0x1000 in
  let big = Isa.Memory.create ~endian:Isa.Endian.Big ~size:0x1000 in
  Isa.Memory.store32 little 0x200 0xAABBCCDDl;
  Isa.Memory.store32 big 0x200 0xAABBCCDDl;
  check Alcotest.int "little low byte" 0xDD (Isa.Memory.load8 little 0x200);
  check Alcotest.int "big low byte" 0xAA (Isa.Memory.load8 big 0x200);
  check Alcotest.int "little load32" 0
    (Int32.compare (Isa.Memory.load32 little 0x200) 0xAABBCCDDl);
  check Alcotest.int "big load32" 0
    (Int32.compare (Isa.Memory.load32 big 0x200) 0xAABBCCDDl)

let test_memory_fault () =
  let mem = Isa.Memory.create ~endian:Isa.Endian.Big ~size:0x1000 in
  (try
     ignore (Isa.Memory.load32 mem 0);
     Alcotest.fail "nil access must fault"
   with Isa.Memory.Fault 0 -> ());
  try
    Isa.Memory.store32 mem 0x10000 1l;
    Alcotest.fail "out of range must fault"
  with Isa.Memory.Fault _ -> ()

let test_memory_grow () =
  let mem = Isa.Memory.create ~endian:Isa.Endian.Big ~size:0x1000 in
  Isa.Memory.grow_to mem 0x4000;
  Isa.Memory.store32 mem 0x3000 42l;
  check Alcotest.int "grown access" 0 (Int32.compare (Isa.Memory.load32 mem 0x3000) 42l)

let test_memory_blit () =
  let mem = Isa.Memory.create ~endian:Isa.Endian.Big ~size:0x1000 in
  Isa.Memory.blit_string mem 0x200 "hello world";
  check Alcotest.string "read back" "hello world" (Isa.Memory.read_string mem 0x200 11);
  Isa.Memory.blit_within mem ~src:0x200 ~dst:0x204 ~len:11;
  check Alcotest.string "overlapping copy" "hellhello w"
    (Isa.Memory.read_string mem 0x200 11)

(* Instruction encodings --------------------------------------------------- *)

let test_insn_sizes () =
  let mov_rr = I.Mov (O.Reg 1, O.Reg 2) in
  let mov_imm = I.Mov (O.Imm 100000l, O.Reg 2) in
  check Alcotest.int "sparc fixed width" 4 (I.size_bytes A.Sparc mov_rr);
  check Alcotest.int "sparc fixed width imm" 4 (I.size_bytes A.Sparc mov_imm);
  check Alcotest.int "vax reg-reg" 3 (I.size_bytes A.Vax mov_rr);
  check Alcotest.int "vax long literal" 7 (I.size_bytes A.Vax mov_imm);
  check Alcotest.int "m68k reg-reg" 2 (I.size_bytes A.M68k mov_rr);
  check Alcotest.int "m68k immediate" 6 (I.size_bytes A.M68k mov_imm);
  (* the same program point lands on different PCs *)
  if
    I.size_bytes A.Vax mov_imm = I.size_bytes A.M68k mov_imm
    && I.size_bytes A.M68k mov_imm = I.size_bytes A.Sparc mov_imm
  then Alcotest.fail "families should have different encodings"

(* A hand-assembled function on each architecture --------------------------- *)

(* Build a tiny code object that computes (a + b) * 2 of two values placed
   in registers 1 and 2 by the harness, leaves the result in register 3 and
   halts.  Exercises the interpreter's arithmetic on each family. *)
let hand_code arch =
  let insns =
    match arch.A.family with
    | A.Vax ->
      [|
        I.Bin3 (I.Add, O.Reg 1, O.Reg 2, O.Reg 3);
        I.Bin3 (I.Mul, O.Reg 3, O.Imm 2l, O.Reg 3);
        I.Halt;
      |]
    | A.M68k ->
      [|
        I.Mov (O.Reg 1, O.Reg 3);
        I.Bin2 (I.Add, O.Reg 2, O.Reg 3);
        I.Bin2 (I.Mul, O.Imm 2l, O.Reg 3);
        I.Halt;
      |]
    | A.Sparc ->
      [|
        I.Bin3 (I.Add, O.Reg 1, O.Reg 2, O.Reg 3);
        I.Bin3 (I.Mul, O.Reg 3, O.Imm 2l, O.Reg 3);
        I.Halt;
      |]
  in
  Isa.Code.make ~arch ~code_oid:99l ~class_name:"hand" ~methods:[| ("run", 0) |] insns

let test_machine_arith () =
  List.iter
    (fun arch ->
      let code = hand_code arch in
      Isa.Isa_validate.check_exn code;
      let mem = Isa.Memory.create ~endian:arch.A.endian ~size:0x1000 in
      let text = Isa.Text.create () in
      let img = Isa.Text.load text code in
      let ctx = Isa.Machine.create_ctx arch in
      ctx.Isa.Machine.pc <- img.Isa.Text.base;
      Isa.Machine.set_reg ctx 1 20l;
      Isa.Machine.set_reg ctx 2 1l;
      let stop = Isa.Machine.run ctx ~mem ~text ~fuel:100 in
      (match stop with
      | Isa.Suspend.Halt -> ()
      | other -> Alcotest.failf "%s: unexpected stop %a" arch.A.id Isa.Machine.pp_stop other);
      check Alcotest.int
        (arch.A.id ^ " result")
        42
        (Int32.to_int (Isa.Machine.reg ctx 3)))
    A.all

let test_machine_div_zero () =
  let arch = A.sparc in
  let insns = [| I.Bin3 (I.Div, O.Reg 1, O.Reg 2, O.Reg 3); I.Halt |] in
  let code = Isa.Code.make ~arch ~code_oid:98l ~class_name:"div" ~methods:[||] insns in
  let mem = Isa.Memory.create ~endian:arch.A.endian ~size:0x1000 in
  let text = Isa.Text.create () in
  let img = Isa.Text.load text code in
  let ctx = Isa.Machine.create_ctx arch in
  ctx.Isa.Machine.pc <- img.Isa.Text.base;
  Isa.Machine.set_reg ctx 1 7l;
  match Isa.Machine.run ctx ~mem ~text ~fuel:10 with
  | Isa.Suspend.Trap Isa.Suspend.Div_zero -> ()
  | other -> Alcotest.failf "expected div-zero trap, got %a" Isa.Machine.pp_stop other

let test_machine_remque () =
  (* build a two-element queue in memory and unlink the first atomically *)
  let arch = A.vax in
  let insns = [| I.Remque (1, 2); I.Remque (1, 3); I.Remque (1, 4); I.Halt |] in
  let code = Isa.Code.make ~arch ~code_oid:97l ~class_name:"remq" ~methods:[||] insns in
  let mem = Isa.Memory.create ~endian:arch.A.endian ~size:0x1000 in
  let sent = 0x200 and n1 = 0x300 and n2 = 0x400 in
  (* circular doubly linked list: sent -> n1 -> n2 -> sent *)
  Isa.Memory.store32 mem sent (Int32.of_int n1);
  Isa.Memory.store32 mem (sent + 4) (Int32.of_int n2);
  Isa.Memory.store32 mem n1 (Int32.of_int n2);
  Isa.Memory.store32 mem (n1 + 4) (Int32.of_int sent);
  Isa.Memory.store32 mem n2 (Int32.of_int sent);
  Isa.Memory.store32 mem (n2 + 4) (Int32.of_int n1);
  let text = Isa.Text.create () in
  let img = Isa.Text.load text code in
  let ctx = Isa.Machine.create_ctx arch in
  ctx.Isa.Machine.pc <- img.Isa.Text.base;
  Isa.Machine.set_reg ctx 1 (Int32.of_int sent);
  (match Isa.Machine.run ctx ~mem ~text ~fuel:10 with
  | Isa.Suspend.Halt -> ()
  | other -> Alcotest.failf "unexpected stop %a" Isa.Machine.pp_stop other);
  check Alcotest.int "first dequeue" n1 (Int32.to_int (Isa.Machine.reg ctx 2));
  check Alcotest.int "second dequeue" n2 (Int32.to_int (Isa.Machine.reg ctx 3));
  check Alcotest.int "empty queue yields 0" 0 (Int32.to_int (Isa.Machine.reg ctx 4))

let test_machine_poll () =
  let arch = A.sparc in
  let insns = [| I.Poll 0; I.Br 0 |] in
  let code = Isa.Code.make ~arch ~code_oid:96l ~class_name:"poll" ~methods:[||] insns in
  let mem = Isa.Memory.create ~endian:arch.A.endian ~size:0x1000 in
  let text = Isa.Text.create () in
  let img = Isa.Text.load text code in
  let ctx = Isa.Machine.create_ctx arch in
  ctx.Isa.Machine.pc <- img.Isa.Text.base;
  (* without a request the loop spins until fuel runs out *)
  (match Isa.Machine.run ctx ~mem ~text ~fuel:50 with
  | Isa.Suspend.Fuel -> ()
  | other -> Alcotest.failf "expected fuel stop, got %a" Isa.Machine.pp_stop other);
  ctx.Isa.Machine.poll_requested <- true;
  (match Isa.Machine.run ctx ~mem ~text ~fuel:50 with
  | Isa.Suspend.Poll -> ()
  | other -> Alcotest.failf "expected poll stop, got %a" Isa.Machine.pp_stop other);
  check Alcotest.int "pc parked at the poll" img.Isa.Text.base ctx.Isa.Machine.pc

let test_validator_families () =
  let remque = [| I.Remque (1, 2) |] in
  let bin3_mem = [| I.Bin3 (I.Add, O.Mem (O.Disp (1, 4)), O.Reg 2, O.Reg 3) |] in
  let check_bad arch insns name =
    let code = Isa.Code.make ~arch ~code_oid:94l ~class_name:name ~methods:[||] insns in
    match Isa.Isa_validate.check code with
    | [] -> Alcotest.failf "validator accepted %s on %s" name arch.A.id
    | _ :: _ -> ()
  in
  let check_good arch insns name =
    let code = Isa.Code.make ~arch ~code_oid:93l ~class_name:name ~methods:[||] insns in
    Isa.Isa_validate.check_exn code
  in
  check_good A.vax remque "remque";
  check_bad A.sparc remque "remque";
  check_bad A.sun3 remque "remque";
  check_good A.vax bin3_mem "bin3-mem";
  check_bad A.sparc bin3_mem "bin3-mem";
  check_bad A.sun3 bin3_mem "bin3-mem";
  check_bad A.sparc [| I.Mov (O.Imm 100000l, O.Reg 1) |] "big-imm";
  check_good A.sparc [| I.Sethi (97l, 1) |] "sethi";
  check_bad A.vax [| I.Sethi (97l, 1) |] "sethi";
  check_bad A.sparc [| I.Mov (O.Mem (O.Disp (1, 0)), O.Mem (O.Disp (2, 0))) |] "mem-mem";
  check_good A.sun3 [| I.Mov (O.Mem (O.Disp (14, 0)), O.Mem (O.Disp (14, 4))) |] "mem-mem"

let suites =
  [
    ( "isa.endian",
      [
        qcheck test_endian_roundtrip;
        Alcotest.test_case "byte orders disagree" `Quick test_endian_disagree;
        Alcotest.test_case "16-bit" `Quick test_endian16;
      ] );
    ( "isa.float",
      [
        qcheck (test_float_roundtrip Isa.Float_format.Vax_f "VAX F round trip");
        qcheck (test_float_roundtrip Isa.Float_format.Ieee_single "IEEE round trip");
        qcheck test_float_cross;
        Alcotest.test_case "formats differ" `Quick test_float_formats_differ;
        Alcotest.test_case "VAX rejects NaN/inf" `Quick test_vax_no_nan;
        Alcotest.test_case "VAX reserved operand" `Quick test_vax_reserved_operand;
        Alcotest.test_case "VAX zero" `Quick test_vax_zero;
      ] );
    ( "isa.memory",
      [
        Alcotest.test_case "endianness visible in bytes" `Quick test_memory_endianness;
        Alcotest.test_case "faults" `Quick test_memory_fault;
        Alcotest.test_case "grow" `Quick test_memory_grow;
        Alcotest.test_case "blit" `Quick test_memory_blit;
      ] );
    ( "isa.machine",
      [
        Alcotest.test_case "encodings differ by family" `Quick test_insn_sizes;
        Alcotest.test_case "arithmetic on all machines" `Quick test_machine_arith;
        Alcotest.test_case "division by zero traps" `Quick test_machine_div_zero;
        Alcotest.test_case "VAX REMQUE" `Quick test_machine_remque;
        Alcotest.test_case "loop poll" `Quick test_machine_poll;
        Alcotest.test_case "family subset validation" `Quick test_validator_families;
      ] );
  ]
