(* Garbage-collector tests: pointer identification through the bus-stop
   templates, with threads suspended mid-computation. *)

module A = Isa.Arch
module V = Ert.Value

let check = Alcotest.check

let garbage_src =
  {|
object Cell
  var v : int <- 0
  operation set[x : int]
    v <- x
  end set
  operation get[] -> [r : int]
    r <- v
  end get
end Cell

object Main
  var keep : Cell <- nil

  operation churn[n : int] -> [r : int]
    var i : int <- 0
    loop
      exit when i >= n
      i <- i + 1
      var tmp : Cell <- new Cell
      tmp.set[i]
      var s : string <- "garbage " + "string"
      if s == "" then
        keep <- tmp
      end if
    end loop
    keep <- new Cell
    keep.set[42]
    r <- keep.get[]
  end churn
end Main
|}

let setup archs =
  let cl = Core.Cluster.create ~archs () in
  ignore (Core.Cluster.compile_and_load cl ~name:"gc" garbage_src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  (cl, main)

let test_collects_garbage () =
  List.iter
    (fun arch ->
      let cl, main = setup [ arch ] in
      let tid =
        Core.Cluster.spawn cl ~node:0 ~target:main ~op:"churn"
          ~args:[ V.Vint 50l ]
      in
      let r = Core.Cluster.run_until_result cl tid in
      check Alcotest.int (arch.A.id ^ " result") 42
        (match r with
        | Some (V.Vint v) -> Int32.to_int v
        | _ -> -1);
      let k = Core.Cluster.kernel cl 0 in
      let stats = Ert.Gc.collect ~extra_roots:[ main ] k in
      (* 50 dead cells and 100+ dead strings must go *)
      if stats.Ert.Gc.gc_swept < 50 then
        Alcotest.failf "%s: expected >= 50 swept blocks, got %d" arch.A.id
          stats.Ert.Gc.gc_swept;
      if stats.Ert.Gc.gc_bytes_freed <= 0 then Alcotest.fail "no bytes freed")
    A.all

let test_preserves_reachable_mid_run () =
  List.iter
    (fun arch ->
      let cl, main = setup [ arch ] in
      let tid =
        Core.Cluster.spawn cl ~node:0 ~target:main ~op:"churn"
          ~args:[ V.Vint 30l ]
      in
      (* interleave collection with execution: every live value the thread
         still needs is protected by the per-stop templates *)
      let k = Core.Cluster.kernel cl 0 in
      let steps = ref 0 in
      let rec go () =
        match Core.Cluster.result cl tid with
        | Some r -> r
        | None ->
          if not (Core.Cluster.step_once cl) then Alcotest.fail "quiescent without result";
          incr steps;
          if !steps mod 7 = 0 then ignore (Ert.Gc.collect ~extra_roots:[ main ] k);
          go ()
      in
      let r = go () in
      check Alcotest.int (arch.A.id ^ " result") 42
        (match r with
        | Some (V.Vint v) -> Int32.to_int v
        | _ -> -1))
    [ A.vax; A.sun3; A.sparc ]

let test_gc_idempotent () =
  let cl, main = setup [ A.sparc ] in
  let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"churn" ~args:[ V.Vint 10l ] in
  ignore (Core.Cluster.run_until_result cl tid);
  let k = Core.Cluster.kernel cl 0 in
  ignore (Ert.Gc.collect ~extra_roots:[ main ] k);
  let second = Ert.Gc.collect ~extra_roots:[ main ] k in
  check Alcotest.int "second collection sweeps nothing" 0 second.Ert.Gc.gc_swept

let test_gc_after_migration () =
  (* after an object moves away, its stale blocks on the source are garbage
     (the forwarding proxy is kept alive only while referenced) *)
  let src =
    {|
object Agent
  operation go[] -> [r : int]
    var s : string <- "payload"
    move self to 1
    if s == "payload" then
      r <- 7
    else
      r <- 0
    end if
  end go
end Agent

object Main
  operation start[] -> [r : int]
    var a : Agent <- new Agent
    r <- a.go[]
  end start
end Main
|}
  in
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.vax ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"gcmove" src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
  let r = Core.Cluster.run_until_result cl tid in
  check Alcotest.int "result" 7
    (match r with
    | Some (V.Vint v) -> Int32.to_int v
    | _ -> -1);
  let s0 = Ert.Gc.collect ~extra_roots:[ main ] (Core.Cluster.kernel cl 0) in
  let s1 = Ert.Gc.collect (Core.Cluster.kernel cl 1) in
  if s0.Ert.Gc.gc_swept = 0 then Alcotest.fail "source node should have garbage";
  ignore s1

let test_automatic_collection () =
  (* a tight threshold forces collections during the run; the program must
     be unaffected and collections must actually happen *)
  let cl = Core.Cluster.create ~gc_threshold:(8 * 1024) ~archs:[ A.sparc; A.vax ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"autogc" garbage_src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:main ~op:"churn" ~args:[ V.Vint 200l ]
  in
  (match Core.Cluster.run_until_result cl tid with
  | Some (V.Vint 42l) -> ()
  | _ -> Alcotest.fail "wrong result under automatic GC");
  if Core.Cluster.collections cl = 0 then
    Alcotest.fail "expected at least one automatic collection"

(* ----------------------------------------------------------------------- *)
(* root-scan regressions *)

let test_parked_monitor_waiter_keeps_monitor () =
  (* a blocked waiter's monitor object is a GC root carried by the
     waiting state itself.  Fabricate a never-dispatched segment (the
     migration-landing shape) and park it on an otherwise-unreferenced
     Cell's monitor queue with a timed wait; collect; then expire the
     timeout.  Before the fix, segment_roots dropped Blocked_monitor
     state for spawn-carrying segments, so the Cell was swept mid-wait
     and the wake path read freed memory. *)
  let cl, main = setup [ A.sparc ] in
  let k = Core.Cluster.kernel cl 0 in
  let mon = Core.Cluster.create_object cl ~node:0 ~class_name:"Cell" in
  let mon_addr =
    match Ert.Kernel.find_object k mon with
    | Some a -> a
    | None -> Alcotest.fail "monitor object not resident"
  in
  let seg =
    Ert.Kernel.spawn_exact k
      ~spawn:
        {
          Ert.Thread.si_target = main;
          si_class = Ert.Kernel.class_of_object k mon_addr;
          si_method = 0;
          si_args = [];
        }
      ~link:None ~thread:4242 ~seg_id:4242
      ~status:(Ert.Thread.Parked Isa.Suspend.Run)
  in
  Ert.Kernel.monitor_enqueue_blocked k ~obj_addr:mon_addr ~deadline:10_000.0
    seg;
  ignore (Ert.Gc.collect ~extra_roots:[ main ] k : Ert.Gc.stats);
  (match Ert.Kernel.find_object k mon with
  | Some _ -> ()
  | None -> Alcotest.fail "monitor object swept while a waiter was queued");
  check Alcotest.int "one wait expired" 1
    (Ert.Kernel.expire_timeouts k ~now:20_000.0);
  match seg.Ert.Thread.seg_status with
  | Ert.Thread.Parked _ -> ()
  | st ->
    Alcotest.failf "waiter not runnable after wake: %s"
      (Format.asprintf "%a" Ert.Thread.pp_status st)

(* field and element reads in the collector are unsigned: a stored
   address with bit 31 set must come back as the same positive value,
   never folded negative by a signed Int32 conversion *)
let vector_elements_unsigned_prop =
  QCheck.Test.make ~count:100
    ~name:"vector element tracing is unsigned over 32-bit patterns"
    QCheck.(list_of_size Gen.(1 -- 40) (map Int32.of_int int))
    (fun raw ->
      let cl, _ = setup [ A.vax ] in
      let k = Core.Cluster.kernel cl 0 in
      let vec =
        Ert.Kernel.make_vector k ~kind:Emc.Layout.kind_ref
          ~len:(List.length raw)
      in
      let mem = Ert.Kernel.mem k in
      List.iteri
        (fun i v ->
          Isa.Memory.store32 mem (vec + Emc.Layout.vec_elems + (4 * i)) v)
        raw;
      let expect =
        List.filter_map
          (fun v ->
            let bits = Int32.to_int v land 0xFFFF_FFFF in
            if bits = 0 then None else Some bits)
          raw
      in
      Ert.Kernel.vector_pointer_elements k vec = expect
      && List.for_all (fun a -> a >= 0) expect)

(* ----------------------------------------------------------------------- *)
(* the incremental tier *)

(* run [churn] to completion and leave the heap quiescent, garbage and
   all — the fixture for tier-equivalence checks *)
let churned_kernel () =
  let cl, main = setup [ A.sparc ] in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:main ~op:"churn"
      ~args:[ V.Vint 60l ]
  in
  ignore (Core.Cluster.run_until_result cl tid);
  (Core.Cluster.kernel cl 0, main)

let drive_cycle ?(budget = 64) cy k =
  let rec go n =
    match Ert.Gc.step cy k ~budget with
    | Ert.Gc.Step_more _ -> go (n + 1)
    | Ert.Gc.Step_done { stats; _ } -> (stats, n + 1)
  in
  go 0

(* any budget: the incremental cycle reports exactly the stop-the-world
   live/swept/bytes accounting on an identical quiescent heap *)
let incremental_equivalence_prop =
  QCheck.Test.make ~count:20
    ~name:"incremental == stop-the-world on identical quiescent heaps"
    QCheck.(map (fun n -> 1 + (n mod 5000)) small_int)
    (fun budget ->
      let k_stw, main_stw = churned_kernel () in
      let k_inc, main_inc = churned_kernel () in
      let s = Ert.Gc.collect ~extra_roots:[ main_stw ] k_stw in
      let cy = Ert.Gc.start ~extra_roots:[ main_inc ] k_inc in
      let i, increments = drive_cycle ~budget cy k_inc in
      (* a tiny budget must still make progress every increment *)
      increments >= 1
      && s.Ert.Gc.gc_live = i.Ert.Gc.gc_live
      && s.Ert.Gc.gc_swept = i.Ert.Gc.gc_swept
      && s.Ert.Gc.gc_bytes_freed = i.Ert.Gc.gc_bytes_freed
      &&
      (* and a second cycle finds nothing left to sweep *)
      let cy2 = Ert.Gc.start ~extra_roots:[ main_inc ] k_inc in
      let i2, _ = drive_cycle ~budget cy2 k_inc in
      i2.Ert.Gc.gc_swept = 0)

let test_incremental_mid_run_soundness () =
  (* interleave bounded increments with execution on a single node: the
     write barrier and graft hook must protect every value the thread
     still needs, whatever the interleaving *)
  let cl, main = setup [ A.sparc ] in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:main ~op:"churn"
      ~args:[ V.Vint 40l ]
  in
  let k = Core.Cluster.kernel cl 0 in
  let cycle = ref None in
  let steps = ref 0 in
  let rec go () =
    match Core.Cluster.result cl tid with
    | Some r -> r
    | None ->
      if not (Core.Cluster.step_once cl) then
        Alcotest.fail "quiescent without result";
      incr steps;
      (if !steps mod 5 = 0 then
         let cy =
           match !cycle with
           | Some cy -> cy
           | None ->
             let cy = Ert.Gc.start ~extra_roots:[ main ] k in
             cycle := Some cy;
             cy
         in
         match Ert.Gc.step cy k ~budget:48 with
         | Ert.Gc.Step_more _ -> ()
         | Ert.Gc.Step_done _ -> cycle := None);
      go ()
  in
  let r = go () in
  (match !cycle with
  | Some cy -> Ert.Gc.abort cy k
  | None -> ());
  check Alcotest.int "result survives interleaved increments" 42
    (match r with
    | Some (V.Vint v) -> Int32.to_int v
    | _ -> -1)

let test_cluster_modes_agree () =
  (* the cluster-scheduled tiers: same program, same threshold, both
     modes — identical results; only the incremental run emits phase
     events, and the stop-the-world run emits none *)
  let run gc_mode =
    let cl =
      Core.Cluster.create ~gc_threshold:(8 * 1024) ~gc_mode ~gc_budget:8
        ~archs:[ A.sparc; A.vax ] ()
    in
    ignore (Core.Cluster.compile_and_load cl ~name:"modegc" garbage_src);
    let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
    let tid =
      Core.Cluster.spawn cl ~node:0 ~target:main ~op:"churn"
        ~args:[ V.Vint 200l ]
    in
    let r =
      match Core.Cluster.run_until_result cl tid with
      | Some (V.Vint v) -> Int32.to_int v
      | _ -> -1
    in
    (r, Core.Cluster.collections cl,
     Core.Cluster.total_counter cl (fun c -> c.Core.Events.c_gc_increments))
  in
  let r_stw, coll_stw, inc_stw = run Core.Cluster.Gc_stw in
  let r_inc, coll_inc, inc_inc = run Core.Cluster.Gc_incremental in
  check Alcotest.int "stw result" 42 r_stw;
  check Alcotest.int "incremental result" 42 r_inc;
  if coll_stw = 0 then Alcotest.fail "stw mode never collected";
  if coll_inc = 0 then Alcotest.fail "incremental mode never collected";
  check Alcotest.int "stw emits no phase increments" 0 inc_stw;
  if inc_inc <= coll_inc then
    Alcotest.failf
      "incremental collections should take multiple increments (%d cycles, \
       %d increments)"
      coll_inc inc_inc

let test_incremental_across_migration () =
  (* threshold small enough that cycles race the move: the send-off
     greying (Oc_move) and the landing's allocate-black rule must keep
     the migrating agent's state sound in both directions *)
  let src =
    {|
object Agent
  operation go[n : int] -> [r : int]
    var i : int <- 0
    var sum : int <- 0
    loop
      exit when i >= n
      i <- i + 1
      var s : string <- "hop " + "payload"
      move self to 1
      move self to 0
      if s == "" then
        sum <- 0 - sum
      end if
      sum <- sum + i
    end loop
    r <- sum
  end go
end Agent

object Main
  operation start[n : int] -> [r : int]
    var a : Agent <- new Agent
    r <- a.go[n]
  end start
end Main
|}
  in
  let run gc_mode =
    let cl =
      Core.Cluster.create ~gc_threshold:(4 * 1024) ~gc_mode ~gc_budget:32
        ~archs:[ A.sparc; A.vax ] ()
    in
    ignore (Core.Cluster.compile_and_load cl ~name:"movegc" src);
    let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
    let tid =
      Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start"
        ~args:[ V.Vint 12l ]
    in
    match Core.Cluster.run_until_result cl tid with
    | Some (V.Vint v) -> Int32.to_int v
    | _ -> -1
  in
  check Alcotest.int "stw across migration" 78 (run Core.Cluster.Gc_stw);
  check Alcotest.int "incremental across migration" 78
    (run Core.Cluster.Gc_incremental)

let test_crash_discards_cycle () =
  (* mark state is node-local soft state: a crash mid-cycle discards it
     (barrier and graft hook detached with the kernel), and a restarted
     node simply starts its next cycle from scratch *)
  let cl =
    Core.Cluster.create ~gc_threshold:(4 * 1024)
      ~gc_mode:Core.Cluster.Gc_incremental ~gc_budget:16
      ~archs:[ A.sparc; A.vax ] ()
  in
  ignore (Core.Cluster.compile_and_load cl ~name:"crashgc" garbage_src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:main ~op:"churn"
      ~args:[ V.Vint 200l ]
  in
  (* step until a cycle is open on node 0, then fail-stop the node *)
  let rec wait budget =
    if budget = 0 then Alcotest.fail "no cycle ever opened"
    else if Core.Cluster.gc_in_progress cl 0 then ()
    else if not (Core.Cluster.step_once cl) then
      Alcotest.fail "quiescent before any cycle opened"
    else wait (budget - 1)
  in
  wait 200_000;
  Core.Cluster.crash_node cl 0;
  if Core.Cluster.gc_in_progress cl 0 then
    Alcotest.fail "crash left the mark cycle installed";
  (match Core.Cluster.thread_failure cl tid with
  | Some _ -> ()
  | None -> Alcotest.fail "root thread on the crashed node not reported lost");
  (* the reboot runs fresh cycles without tripping over stale state *)
  Core.Cluster.restart_node cl 0;
  let main2 = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let tid2 =
    Core.Cluster.spawn cl ~node:0 ~target:main2 ~op:"churn"
      ~args:[ V.Vint 120l ]
  in
  check Alcotest.int "post-restart churn result" 42
    (match Core.Cluster.run_until_result cl tid2 with
    | Some (V.Vint v) -> Int32.to_int v
    | _ -> -1)

let suites =
  [
    ( "gc",
      [
        Alcotest.test_case "collects garbage on every architecture" `Quick
          test_collects_garbage;
        Alcotest.test_case "preserves reachable values mid-run" `Quick
          test_preserves_reachable_mid_run;
        Alcotest.test_case "idempotent" `Quick test_gc_idempotent;
        Alcotest.test_case "after migration" `Quick test_gc_after_migration;
        Alcotest.test_case "automatic collection" `Quick test_automatic_collection;
        Alcotest.test_case "parked monitor waiter keeps its monitor" `Quick
          test_parked_monitor_waiter_keeps_monitor;
        QCheck_alcotest.to_alcotest vector_elements_unsigned_prop;
        QCheck_alcotest.to_alcotest incremental_equivalence_prop;
        Alcotest.test_case "incremental increments interleave with execution"
          `Quick test_incremental_mid_run_soundness;
        Alcotest.test_case "cluster tiers agree on results" `Quick
          test_cluster_modes_agree;
        Alcotest.test_case "incremental cycles race migrations" `Quick
          test_incremental_across_migration;
        Alcotest.test_case "crash mid-cycle discards mark state" `Quick
          test_crash_discards_cycle;
      ] );
  ]
