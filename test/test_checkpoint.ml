(* Thread checkpointing: the machine-independent format as a persistence
   format.  A thread parked at a bus stop is serialised to bytes, removed,
   and later rebuilt — on the same machine or a different architecture.

   To park a compute loop deterministically we spawn a second thread:
   with another segment ready, the loop-back poll stops fire, so each
   kernel step executes exactly one loop iteration and the threads
   alternate — the same schedule on every architecture. *)

module A = Isa.Arch
module V = Ert.Value
module C = Mobility.Checkpoint

let check = Alcotest.check

let sum_src =
  {|
object Main
  var progress : int <- 0
  operation start[n : int] -> [r : int]
    var i : int <- 0
    var sum : int <- 0
    loop
      exit when i >= n
      i <- i + 1
      sum <- sum + i
      progress <- i
    end loop
    r <- sum
  end start
  operation seen[] -> [r : int]
    r <- progress
  end seen
end Main

object Mover
  operation relocate[m : Main, dest : int]
    move m to dest
  end relocate
end Mover
|}

let expected n = n * (n + 1) / 2

let setup archs =
  let cl = Core.Cluster.create ~archs () in
  ignore (Core.Cluster.compile_and_load cl ~name:"ckpt" sum_src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  (cl, main)

let start cl main n =
  Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start"
    ~args:[ V.Vint (Int32.of_int n) ]

(* a victim thread plus a companion that keeps the poll stops firing *)
let start_pair cl main n =
  let victim = start cl main n in
  let companion = start cl main 200 in
  (victim, companion)

let step_some cl k =
  for _ = 1 to k do
    ignore (Core.Cluster.step_once cl)
  done

let test_suspend_restore_same_node () =
  List.iter
    (fun arch ->
      let cl, main = setup [ arch ] in
      let tid, companion = start_pair cl main 40 in
      step_some cl 12;
      let image = C.suspend (Core.Cluster.kernel cl 0) ~thread:tid in
      check Alcotest.int (arch.A.id ^ " image names the thread") tid
        (C.thread_of image);
      (* with the victim suspended, the cluster drains without its result *)
      Core.Cluster.run cl;
      (match Core.Cluster.result cl tid with
      | None -> ()
      | Some _ -> Alcotest.fail "suspended thread must not produce a result");
      (match Core.Cluster.result cl companion with
      | Some (Some (V.Vint v)) ->
        check Alcotest.int (arch.A.id ^ " companion") (expected 200) (Int32.to_int v)
      | _ -> Alcotest.fail "companion thread lost");
      C.restore (Core.Cluster.kernel cl 0) image;
      match Core.Cluster.run_until_result cl tid with
      | Some (V.Vint v) ->
        check Alcotest.int (arch.A.id ^ " sum") (expected 40) (Int32.to_int v)
      | _ -> Alcotest.fail "restored thread produced no result")
    A.all

let test_capture_is_nondestructive () =
  let cl, main = setup [ A.sparc ] in
  let tid, _ = start_pair cl main 25 in
  step_some cl 10;
  let image = C.capture (Core.Cluster.kernel cl 0) ~thread:tid in
  (* while the original lives, its segment ids are taken and the copy
     cannot also be installed (no thread duplication) *)
  (match C.restore (Core.Cluster.kernel cl 0) image with
  | () -> Alcotest.fail "restoring a live thread's copy must be rejected"
  | exception C.Not_checkpointable _ -> ());
  (* and the original keeps running, unharmed by the capture *)
  match Core.Cluster.run_until_result cl tid with
  | Some (V.Vint v) -> check Alcotest.int "sum" (expected 25) (Int32.to_int v)
  | _ -> Alcotest.fail "no result"

let test_heterogeneous_restore () =
  (* suspend on the SPARC, move the object to the VAX, restore there: the
     thread continues on a different architecture mid-loop *)
  let cl, main = setup [ A.sparc; A.vax ] in
  let tid, _ = start_pair cl main 60 in
  step_some cl 20;
  let k0 = Core.Cluster.kernel cl 0 in
  let image = C.suspend k0 ~thread:tid in
  (* restoring where the object does not live is refused *)
  (match C.restore (Core.Cluster.kernel cl 1) image with
  | () -> Alcotest.fail "restore without the object must be rejected"
  | exception C.Not_checkpointable _ -> ());
  (* drain the companion, then ship the (now threadless) object over *)
  Core.Cluster.run cl;
  let mover = Core.Cluster.create_object cl ~node:0 ~class_name:"Mover" in
  let mt =
    Core.Cluster.spawn cl ~node:0 ~target:mover ~op:"relocate"
      ~args:[ V.Vref main; V.Vint 1l ]
  in
  Core.Cluster.run cl;
  (match Core.Cluster.result cl mt with
  | Some _ -> ()
  | None -> Alcotest.fail "move did not complete");
  check (Alcotest.option Alcotest.int) "object on the VAX" (Some 1)
    (Core.Cluster.where_is cl main);
  C.restore (Core.Cluster.kernel cl 1) image;
  (match Core.Cluster.run_until_result cl tid with
  | Some (V.Vint v) -> check Alcotest.int "sum" (expected 60) (Int32.to_int v)
  | _ -> Alcotest.fail "no result after heterogeneous restore");
  (* the loop really did resume mid-way and ran to completion there *)
  let probe = Core.Cluster.spawn cl ~node:1 ~target:main ~op:"seen" ~args:[] in
  match Core.Cluster.run_until_result cl probe with
  | Some (V.Vint 60l) -> ()
  | _ -> Alcotest.fail "object state lost across checkpoint"

let test_image_is_architecture_neutral () =
  (* the same program suspended after the same number of scheduling events
     yields bit-identical images from every architecture: bus stops, slot
     indices and values are all machine-independent *)
  let image_of arch =
    let cl, main = setup [ arch ] in
    let tid, _ = start_pair cl main 30 in
    step_some cl 9;
    C.suspend (Core.Cluster.kernel cl 0) ~thread:tid
  in
  let reference = image_of A.vax in
  List.iter
    (fun arch ->
      check Alcotest.string (arch.A.id ^ " image equals the VAX image")
        reference (image_of arch))
    A.all

let test_checkpoint_preemptive_cluster () =
  (* under a preemptive quantum the thread may sit between stops; the
     cluster-level wrapper quiesces it to the next stop first *)
  let cl = Core.Cluster.create ~quantum:37 ~archs:[ A.sun3 ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"ckpt" sum_src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let tid = start cl main 50 in
  step_some cl 15;
  let image = Core.Cluster.checkpoint_thread cl ~node:0 tid in
  Core.Cluster.run cl;
  Core.Cluster.restore_thread cl ~node:0 image;
  match Core.Cluster.run_until_result cl tid with
  | Some (V.Vint v) -> check Alcotest.int "sum" (expected 50) (Int32.to_int v)
  | _ -> Alcotest.fail "no result"

let test_parse_inspection () =
  let cl, main = setup [ A.hp9000_433 ] in
  let tid, _ = start_pair cl main 20 in
  step_some cl 8;
  let image = C.capture (Core.Cluster.kernel cl 0) ~thread:tid in
  match C.parse image with
  | [ ms ] ->
    check Alcotest.int "thread" tid ms.Mobility.Mi_frame.ms_thread;
    check Alcotest.bool "has frames" true (ms.Mobility.Mi_frame.ms_frames <> []);
    (match ms.Mobility.Mi_frame.ms_status with
    | Mobility.Mi_frame.Ms_parked _ -> ()
    | _ -> Alcotest.fail "captured segment must be parked at a stop")
  | _ -> Alcotest.fail "expected exactly one segment"

(* Image format v2: u32 segment count, validated restores ---------------- *)

let capture_image () =
  let cl, main = setup [ A.sparc ] in
  let tid, _ = start_pair cl main 30 in
  step_some cl 10;
  (cl, tid, C.capture (Core.Cluster.kernel cl 0) ~thread:tid)

let test_v2_header () =
  let _, _, image = capture_image () in
  (* "EMC2" magic, then the count as a u32 — v1's u16 count silently
     truncated threads of more than 65535 segments *)
  check Alcotest.string "v2 magic" "EMC2" (String.sub image 0 4);
  check Alcotest.string "u32 count of one segment" "\x00\x00\x00\x01"
    (String.sub image 4 4);
  match C.parse image with
  | [ _ ] -> ()
  | l -> Alcotest.failf "expected one segment, parsed %d" (List.length l)

let test_v1_image_rejected () =
  let stats = Enet.Conversion_stats.create () in
  let w = Enet.Wire.Writer.create ~impl:Enet.Wire.Bulk ~stats in
  Enet.Wire.Writer.u32 w 0x454d43l (* "EMC", the v1 magic *);
  Enet.Wire.Writer.u16 w 1;
  let v1 = Enet.Wire.Writer.contents w in
  Enet.Wire.Writer.free w;
  match C.parse v1 with
  | _ -> Alcotest.fail "a v1 image must be rejected, not misread"
  | exception Invalid_argument _ -> ()

let test_insane_count_rejected () =
  (* a corrupt length prefix must not reach List.init *)
  let _, _, image = capture_image () in
  let huge = String.sub image 0 4 ^ "\x7f\xff\xff\xff" in
  match C.parse huge with
  | _ -> Alcotest.fail "an unreasonable segment count must be rejected"
  | exception Invalid_argument _ -> ()

let test_duplicate_ids_leave_kernel_unchanged () =
  let cl, main = setup [ A.sparc ] in
  let tid, _ = start_pair cl main 30 in
  step_some cl 10;
  let k = Core.Cluster.kernel cl 0 in
  let image = C.suspend k ~thread:tid in
  (* splice the image's one segment in twice: same ms_seg_id both times *)
  let body = String.sub image 8 (String.length image - 8) in
  let dup = String.sub image 0 4 ^ "\x00\x00\x00\x02" ^ body ^ body in
  check Alcotest.int "tampered image parses as two segments" 2
    (List.length (C.parse dup));
  let seg_ids k =
    List.sort compare
      (List.map (fun s -> s.Ert.Thread.seg_id) (Ert.Kernel.segments k))
  in
  let before = seg_ids k in
  (match C.restore k dup with
  | () -> Alcotest.fail "duplicate segment ids must be rejected"
  | exception C.Not_checkpointable _ -> ());
  (* validation happens before any rebuild: nothing was installed *)
  check (Alcotest.list Alcotest.int) "kernel unchanged by refused restore"
    before (seg_ids k);
  (* and the untampered image still restores and runs to completion *)
  C.restore k image;
  match Core.Cluster.run_until_result cl tid with
  | Some (V.Vint v) -> check Alcotest.int "sum" (expected 30) (Int32.to_int v)
  | _ -> Alcotest.fail "no result after the genuine restore"

(* property: checkpointing at ANY scheduling point — including before the
   first instruction (a spawn record) and after the thread has finished —
   never corrupts the result *)
let prop_checkpoint_any_time =
  QCheck.Test.make ~name:"suspend/restore at a random point preserves the result"
    ~count:40
    QCheck.(pair (int_range 0 120) (int_range 0 4))
    (fun (steps, arch_idx) ->
      let arch = List.nth A.all arch_idx in
      let cl, main = setup [ arch ] in
      let tid, _ = start_pair cl main 35 in
      step_some cl steps;
      (try
         let image = C.suspend (Core.Cluster.kernel cl 0) ~thread:tid in
         (* let everything else drain while the thread is only bytes *)
         Core.Cluster.run cl;
         C.restore (Core.Cluster.kernel cl 0) image
       with C.Not_checkpointable _ ->
         (* the thread had already finished — nothing to suspend *)
         ());
      match Core.Cluster.run_until_result cl tid with
      | Some (V.Vint v) -> Int32.to_int v = expected 35
      | _ -> false)

let suites =
  [
    ( "checkpoint",
      [
        Alcotest.test_case "suspend and restore on every architecture" `Quick
          test_suspend_restore_same_node;
        Alcotest.test_case "capture is non-destructive, no duplication" `Quick
          test_capture_is_nondestructive;
        Alcotest.test_case "heterogeneous restore (SPARC to VAX)" `Quick
          test_heterogeneous_restore;
        Alcotest.test_case "image is architecture-neutral" `Quick
          test_image_is_architecture_neutral;
        Alcotest.test_case "preemptive cluster wrapper quiesces" `Quick
          test_checkpoint_preemptive_cluster;
        Alcotest.test_case "parse for inspection" `Quick test_parse_inspection;
        Alcotest.test_case "v2 header: magic and u32 count" `Quick test_v2_header;
        Alcotest.test_case "v1 image rejected" `Quick test_v1_image_rejected;
        Alcotest.test_case "unreasonable count rejected" `Quick
          test_insane_count_rejected;
        Alcotest.test_case "duplicate ids refused, kernel untouched" `Quick
          test_duplicate_ids_leave_kernel_unchanged;
        QCheck_alcotest.to_alcotest prop_checkpoint_any_time;
      ] );
  ]
