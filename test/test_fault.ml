(* The fault-injection subsystem: seeded determinism, the retry/ack
   transport's exactly-once guarantee under loss, partition heal and
   recovery, and the emfuzz harness's blanket safety property. *)

module A = Isa.Arch
module V = Ert.Value
module P = Fault.Plan

let check = Alcotest.check

let ping_src =
  {|
object Agent
  operation trip[dest : int, iters : int] -> [r : int]
    var home : int <- thisnode
    var i : int <- 0
    loop
      exit when i >= iters
      i <- i + 1
      move self to dest
      move self to home
    end loop
    r <- i
  end trip
end Agent
|}

(* run the ping workload on a fresh two-node cluster, collecting every
   bus event as its printed line *)
let run_ping ?faults ~iters () =
  let cl = Core.Cluster.create ?faults ~archs:[ A.sparc; A.vax ] () in
  let events = ref [] in
  Core.Cluster.subscribe_events cl (fun ev ->
      events := Core.Events.to_string ev :: !events);
  ignore (Core.Cluster.compile_and_load cl ~name:"ping" ping_src);
  let agent = Core.Cluster.create_object cl ~node:0 ~class_name:"Agent" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:agent ~op:"trip"
      ~args:[ V.Vint 1l; V.Vint (Int32.of_int iters) ]
  in
  let result = Core.Cluster.run_until_result cl tid in
  (cl, agent, result, List.rev !events)

(* (a) the same seed replays the same run bit-for-bit: every event line,
   the virtual clock, and the result *)
let test_same_seed_is_deterministic () =
  let faults = P.with_seed (P.make ~drop:0.3 ~dup:0.1 ~delay_p:0.2 ~delay_us:1500.0 ()) 42 in
  let cl1, _, r1, ev1 = run_ping ~faults ~iters:3 () in
  let cl2, _, r2, ev2 = run_ping ~faults ~iters:3 () in
  check (Alcotest.list Alcotest.string) "event sequences" ev1 ev2;
  check (Alcotest.float 0.0) "virtual times"
    (Core.Cluster.global_time_us cl1)
    (Core.Cluster.global_time_us cl2);
  check Alcotest.bool "results" true (r1 = r2);
  (* and the run actually exercised the machinery *)
  let faults_hit = Core.Cluster.total_counter cl1 (fun c -> c.Core.Events.c_faults) in
  if faults_hit = 0 then Alcotest.fail "plan injected nothing; weak test"

(* the empty plan is invisible: a cluster with [P.empty] (any seed)
   produces the exact event sequence and clock of a cluster with no
   fault subsystem at all *)
let test_empty_plan_is_bit_identical () =
  let cl1, _, r1, ev1 = run_ping ~iters:3 () in
  let cl2, _, r2, ev2 = run_ping ~faults:(P.with_seed P.empty 12345) ~iters:3 () in
  check (Alcotest.list Alcotest.string) "event sequences" ev1 ev2;
  check (Alcotest.float 0.0) "virtual times"
    (Core.Cluster.global_time_us cl1)
    (Core.Cluster.global_time_us cl2);
  check Alcotest.bool "results" true (r1 = r2)

(* (b) 30% loss plus duplication: every move still lands exactly once —
   the trip completes, the object ends at home, and the move count is
   exactly 2*iters despite the retransmitted and duplicated frames *)
let test_exactly_once_moves_under_loss () =
  let faults = P.with_seed (P.make ~drop:0.3 ~dup:0.1 ()) 7 in
  let cl, agent, result, _ = run_ping ~faults ~iters:3 () in
  (match result with
  | Some (V.Vint v) -> check Alcotest.int "trip count" 3 (Int32.to_int v)
  | _ -> Alcotest.fail "ping did not complete under 30% loss");
  check (Alcotest.option Alcotest.int) "agent back home" (Some 0)
    (Core.Cluster.where_is cl agent);
  let total f = Core.Cluster.total_counter cl f in
  check Alcotest.int "moves applied exactly once" 6
    (total (fun c -> c.Core.Events.c_moves_in));
  if total (fun c -> c.Core.Events.c_retransmits) = 0 then
    Alcotest.fail "no retransmissions at 30% loss; the plan did not bite";
  check (Alcotest.list Alcotest.string) "invariants" []
    (List.map
       (fun v -> Format.asprintf "%a" Fault.Invariants.pp_violation v)
       (Core.Cluster.check_invariants cl))

let search_src =
  {|
object Target
  var v : int <- 0
  operation poke[] -> [r : int]
    v <- v + 1
    r <- v * 100 + thisnode
  end poke
end Target

object Mover
  operation relocate[t : Target, dest : int]
    move t to dest
  end relocate
end Mover

object Caller
  operation call[t : Target] -> [r : int]
    r <- t.poke[]
  end call
end Caller
|}

(* (c) a partition cuts node 0 off while it tries to reach an object
   whose forwarding chain is broken; retransmission rides out the
   outage, and after the heal the location search finds the object *)
let test_partition_heal_search_recovery () =
  let faults =
    P.with_seed
      (P.make
         ~partitions:
           [ { P.pt_a = [ 0 ]; pt_b = [ 1; 2 ];
               pt_from_us = 0.0; pt_until_us = 40_000.0 } ]
         ())
      11
  in
  let cl = Core.Cluster.create ~faults ~archs:[ A.sparc; A.vax; A.sun3 ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"psearch" search_src);
  (* target born on 1, moved to 2, forwarding proxy on 1 collected: node
     1 no longer knows where the target is (all inside the majority
     side, unaffected by the cut) *)
  let target = Core.Cluster.create_object cl ~node:1 ~class_name:"Target" in
  let mover = Core.Cluster.create_object cl ~node:1 ~class_name:"Mover" in
  let mt =
    Core.Cluster.spawn cl ~node:1 ~target:mover ~op:"relocate"
      ~args:[ V.Vref target; V.Vint 2l ]
  in
  Core.Cluster.run cl;
  ignore (Core.Cluster.result cl mt);
  ignore (Ert.Gc.collect ~extra_roots:[ mover ] (Core.Cluster.kernel cl 1));
  (* node 0 — the partitioned minority — invokes through the creator
     hint; the invoke cannot cross the cut until it heals at 40ms *)
  let caller = Core.Cluster.create_object cl ~node:0 ~class_name:"Caller" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:caller ~op:"call" ~args:[ V.Vref target ]
  in
  (match Core.Cluster.run_until_result cl tid with
  | Some (V.Vint v) -> check Alcotest.int "poked on node 2" 102 (Int32.to_int v)
  | _ -> Alcotest.fail "no result after the partition healed");
  let total f = Core.Cluster.total_counter cl f in
  if total (fun c -> c.Core.Events.c_retransmits) = 0 then
    Alcotest.fail "the cut frame was never retransmitted";
  if total (fun c -> c.Core.Events.c_searches) = 0 then
    Alcotest.fail "no location search ran";
  check Alcotest.bool "the heal was needed: faults were injected" true
    (total (fun c -> c.Core.Events.c_faults) > 0)

(* (d) the emfuzz harness's blanket property: under ANY seed-derived
   plan the root thread either completes or aborts with a reported
   unavailability, and no invariant ever trips *)
let qcheck_any_seed_is_safe =
  QCheck.Test.make ~count:40 ~name:"fuzz: any seed completes or reports loss"
    (QCheck.make
       ~print:(fun seed ->
         let o = Core.Fuzz.run_seed ~seed () in
         Printf.sprintf "seed %d (plan %s)" seed (P.to_string o.Core.Fuzz.f_plan))
       (QCheck.Gen.int_range 1 100_000))
    (fun seed -> (Core.Fuzz.run_seed ~seed ()).Core.Fuzz.f_ok)

(* the wire-level injection hooks: verdicts drop, duplicate and delay
   frames; counters and the fault observer see each one; delivery comes
   out in (arrival, seq) order *)
let test_netsim_injection_hooks () =
  let net = Enet.Netsim.create ~n_nodes:2 () in
  let verdicts =
    ref
      [ Some Enet.Netsim.Fault_drop;
        Some (Enet.Netsim.Fault_dup 5_000.0);
        Some (Enet.Netsim.Fault_delay 9_000.0);
        None ]
  in
  Enet.Netsim.set_injector net (fun ~src:_ ~dst:_ ~now_us:_ ->
      match !verdicts with
      | v :: rest ->
        verdicts := rest;
        v
      | [] -> None);
  let observed = ref 0 in
  Enet.Netsim.set_on_fault net (fun ~src:_ ~dst:_ _ -> incr observed);
  let send p = ignore (Enet.Netsim.send net ~now_us:0.0 ~src:0 ~dst:1 ~payload:p : float) in
  send "dropped";
  send "duplicated";
  send "delayed";
  send "clean";
  check Alcotest.int "faults observed" 3 !observed;
  check Alcotest.int "dropped" 1 (Enet.Netsim.messages_dropped net);
  check Alcotest.int "duplicated" 1 (Enet.Netsim.messages_duplicated net);
  check Alcotest.int "delayed" 1 (Enet.Netsim.messages_delayed net);
  (* 3 enqueued + 1 duplicate copy; the dropped frame never queues *)
  check Alcotest.int "pending" 4 (Enet.Netsim.pending net);
  let rec drain acc =
    match Enet.Netsim.receive net ~dst:1 ~now_us:1e9 with
    | Some m -> drain (Enet.Wire.view_to_string m.Enet.Netsim.msg_payload :: acc)
    | None -> List.rev acc
  in
  let order = drain [] in
  check (Alcotest.list Alcotest.string) "delivery order"
    [ "duplicated"; "clean"; "duplicated"; "delayed" ]
    order

let suites =
  [
    ( "fault",
      [
        Alcotest.test_case "same seed is deterministic" `Quick
          test_same_seed_is_deterministic;
        Alcotest.test_case "empty plan is bit-identical" `Quick
          test_empty_plan_is_bit_identical;
        Alcotest.test_case "exactly-once moves under 30% loss" `Quick
          test_exactly_once_moves_under_loss;
        Alcotest.test_case "partition heal recovers via search" `Quick
          test_partition_heal_search_recovery;
        Alcotest.test_case "netsim injection hooks" `Quick
          test_netsim_injection_hooks;
        QCheck_alcotest.to_alcotest qcheck_any_seed_is_safe;
      ] );
  ]
