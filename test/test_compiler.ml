(* Tests for the compiler: parsing, type checking, IR, templates, code
   generation for all architectures, and bus-stop table isomorphism. *)

module A = Isa.Arch

let check = Alcotest.check

let counter_src =
  {|
object Counter
  var count : int <- 0
  attached var label : string <- "counts"

  operation inc[n : int] -> [r : int]
    count <- count + n
    r <- count
  end inc

  monitor operation sync_inc[n : int] -> [r : int]
    count <- count + n
    r <- count
  end sync_inc

  operation name[] -> [s : string]
    s <- label
  end name
end Counter

object Main
  operation start[] -> [r : int]
    var c : Counter <- new Counter
    var i : int <- 0
    var sum : int <- 0
    loop
      exit when i >= 10
      i <- i + 1
      sum <- sum + c.inc[i]
    end loop
    r <- sum
  end start
end Main
|}

let compile_all ?name src =
  let name = Option.value name ~default:"test" in
  Emc.Compile.compile_exn ~name ~archs:A.all src

let expect_error src =
  match Emc.Compile.compile ~name:"bad" ~archs:[ A.sparc ] src with
  | Ok _ -> Alcotest.fail "expected a compile error"
  | Error (e :: _) -> e.Emc.Diag.message
  | Error [] -> Alcotest.fail "empty error list"

(* Parsing ----------------------------------------------------------------- *)

let test_parse_basic () =
  let ast = Emc.Parser.parse_program counter_src in
  check Alcotest.int "two classes" 2 (List.length ast.Emc.Ast.prog_classes);
  let counter = List.hd ast.Emc.Ast.prog_classes in
  check Alcotest.string "name" "Counter" counter.Emc.Ast.c_name;
  check Alcotest.int "fields" 2 (List.length counter.Emc.Ast.c_fields);
  check Alcotest.int "ops" 3 (List.length counter.Emc.Ast.c_ops);
  let sync = List.nth counter.Emc.Ast.c_ops 1 in
  check Alcotest.bool "monitored" true sync.Emc.Ast.op_monitored

let test_parse_precedence () =
  let e = Emc.Parser.parse_expr "1 + 2 * 3" in
  match e.Emc.Ast.e_desc with
  | Emc.Ast.Ebin (Emc.Ast.Badd, _, { Emc.Ast.e_desc = Emc.Ast.Ebin (Emc.Ast.Bmul, _, _); _ })
    -> ()
  | _ -> Alcotest.fail "multiplication must bind tighter than addition"

let test_parse_errors () =
  let bad = [ "object X end Y"; "object X var x int <- 3 end X"; "object X operation f[ end f end X" ] in
  List.iter
    (fun src ->
      match Emc.Parser.parse_program src with
      | _ -> Alcotest.failf "accepted %S" src
      | exception Emc.Diag.Compile_error _ -> ())
    bad

let test_parse_comments () =
  let src = "// leading comment\nobject X\n  operation f[] // trailing\n  end f\nend X" in
  let ast = Emc.Parser.parse_program src in
  check Alcotest.int "one class" 1 (List.length ast.Emc.Ast.prog_classes)

(* Type checking ------------------------------------------------------------ *)

let test_typecheck_ok () = ignore (compile_all counter_src)

let test_typecheck_errors () =
  let cases =
    [
      ("unknown variable", "object X operation f[] y <- 1 end f end X");
      ( "type mismatch",
        "object X operation f[] var y : int <- 1 y <- \"s\" end f end X" );
      ( "bad invocation",
        "object X operation f[] end f end X\nobject Y operation g[] -> [r : int] var x : X <- new X r <- x.nope[] end g end Y"
      );
      ("exit outside loop", "object X operation f[] exit end f end X");
      ( "arity",
        "object X operation f[a : int] end f operation g[] var x : X <- new X x.f[1, 2] end g end X"
      );
      ( "non-literal field init",
        "object X var y : int <- 1 + 2 operation f[] end f end X" );
      ("invoke on int", "object X operation f[] var i : int <- 1 i.g[] end f end X");
      ( "index non-vector",
        "object X operation f[] -> [r : int] var i : int <- 1 r <- i[0] end f end X" );
      ( "vector element type mismatch",
        "object X operation f[] var v : vector[int] <- vector[int, 3] v[0] <- \"s\" end f end X"
      );
      ( "vector index type",
        "object X operation f[] -> [r : int] var v : vector[int] <- vector[int, 3] r <- v[\"a\"] end f end X"
      );
      ( "vector assigned wrong element type",
        "object X operation f[] var v : vector[int] <- vector[bool, 3] end f end X" );
      ( "assign to expression",
        "object X operation f[] var i : int <- 1 (i + 1) <- 2 end f end X" );
    ]
  in
  List.iter (fun (what, src) -> ignore (Alcotest.check Alcotest.pass what () (ignore (expect_error src)))) cases

let test_vector_types_roundtrip () =
  (* nested vector types parse, check and compile on every architecture *)
  ignore
    (compile_all
       {|
object X
  var cache : vector[vector[string]] <- nil
  operation f[v : vector[real]] -> [r : vector[real]]
    cache <- vector[vector[string], 2]
    r <- v
  end f
end X
|})

let test_int_real_promotion () =
  ignore
    (compile_all
       "object X operation f[] -> [r : real] var i : int <- 3 r <- i + 1.5 end f end X")

(* IR ------------------------------------------------------------------------ *)

let test_ir_stops_deterministic () =
  let p1 = compile_all counter_src in
  let p2 = compile_all counter_src in
  Array.iter2
    (fun (c1 : Emc.Compile.compiled_class) (c2 : Emc.Compile.compiled_class) ->
      check Alcotest.int32 "same oid" c1.Emc.Compile.cc_oid c2.Emc.Compile.cc_oid;
      check Alcotest.int "same stop count" c1.cc_ir.Emc.Ir.cl_nstops
        c2.cc_ir.Emc.Ir.cl_nstops)
    p1.Emc.Compile.p_classes p2.Emc.Compile.p_classes

let test_ir_monitor_stops () =
  let p = compile_all counter_src in
  let counter =
    match Emc.Compile.find_class p "Counter" with
    | Some c -> c
    | None -> Alcotest.fail "no Counter"
  in
  let sync = counter.Emc.Compile.cc_ir.Emc.Ir.cl_ops.(1) in
  let kinds =
    Array.to_list (Array.map (fun s -> s.Emc.Ir.sr_kind) sync.Emc.Ir.oi_stops)
  in
  if
    not
      (List.mem Emc.Ir.Sk_mon_enter kinds
      && List.mem Emc.Ir.Sk_mon_dequeue kinds
      && List.mem Emc.Ir.Sk_mon_wake kinds)
  then Alcotest.fail "monitored operation must have enter/dequeue/wake stops"

(* Templates ------------------------------------------------------------------ *)

let test_template_slots () =
  let p = compile_all counter_src in
  let main =
    match Emc.Compile.find_class p "Main" with
    | Some c -> c
    | None -> Alcotest.fail "no Main"
  in
  let start = main.Emc.Compile.cc_template.Emc.Template.ct_ops.(0) in
  (* self + result + c + i + sum need slots; temps may add more *)
  if start.Emc.Template.ot_nslots < 5 then
    Alcotest.failf "expected at least 5 slots, got %d" start.Emc.Template.ot_nslots;
  (* every stop's live slots are within range and class-consistent *)
  Array.iter
    (fun (st : Emc.Template.stop_t) ->
      List.iter
        (fun (es : Emc.Template.entity_slot) ->
          if es.Emc.Template.es_slot < 0 || es.es_slot >= start.Emc.Template.ot_nslots
          then Alcotest.fail "slot out of range";
          let cls = start.Emc.Template.ot_slot_class.(es.es_slot) in
          let expect = Emc.Template.slot_class_of_type es.es_type in
          if cls <> expect then Alcotest.fail "slot class mismatch")
        st.Emc.Template.st_live)
    start.Emc.Template.ot_stops

let test_template_no_slot_conflicts () =
  (* at any single stop, each slot is owned by at most one entity *)
  let p = compile_all counter_src in
  Array.iter
    (fun (cc : Emc.Compile.compiled_class) ->
      Array.iter
        (fun (op : Emc.Template.op_t) ->
          Array.iter
            (fun (st : Emc.Template.stop_t) ->
              let slots = List.map (fun es -> es.Emc.Template.es_slot) st.Emc.Template.st_live in
              let sorted = List.sort_uniq compare slots in
              if List.length sorted <> List.length slots then
                Alcotest.failf "stop %d of %s.%s: slot owned twice"
                  st.Emc.Template.st_id cc.Emc.Compile.cc_name op.Emc.Template.ot_name)
            op.Emc.Template.ot_stops)
        cc.Emc.Compile.cc_template.Emc.Template.ct_ops)
    p.Emc.Compile.p_classes

(* Code generation ------------------------------------------------------------ *)

let test_codegen_validates () =
  let p = compile_all counter_src in
  Array.iter
    (fun (cc : Emc.Compile.compiled_class) ->
      List.iter
        (fun (_, (art : Emc.Compile.arch_artifact)) ->
          Isa.Isa_validate.check_exn art.Emc.Compile.aa_code)
        cc.Emc.Compile.cc_arts)
    p.Emc.Compile.p_classes

let test_codegen_families_differ () =
  let p = compile_all counter_src in
  let main =
    match Emc.Compile.find_class p "Main" with
    | Some c -> c
    | None -> Alcotest.fail "no Main"
  in
  let sizes =
    List.map
      (fun ((id, _), (art : Emc.Compile.arch_artifact)) ->
        (id, art.Emc.Compile.aa_code.Isa.Code.byte_size))
      main.Emc.Compile.cc_arts
  in
  let vax = List.assoc "vax" sizes
  and sun3 = List.assoc "sun3" sizes
  and sparc = List.assoc "sparc" sizes in
  if vax = sun3 && sun3 = sparc then
    Alcotest.fail "code sizes should differ across families";
  (* the two M68k machines share object code size *)
  check Alcotest.int "sun3 = hp433 code size" (List.assoc "hp433" sizes) sun3

(* Bus stops ------------------------------------------------------------------ *)

let test_busstops_isomorphic () =
  let p = compile_all counter_src in
  Array.iter
    (fun (cc : Emc.Compile.compiled_class) ->
      let tables =
        List.map
          (fun ((id, _), art) -> (id, art.Emc.Compile.aa_stops))
          cc.Emc.Compile.cc_arts
      in
      let counts = List.map (fun (_, t) -> Emc.Busstop.count t) tables in
      (match counts with
      | c :: rest ->
        List.iter
          (fun c' ->
            if c <> c' then
              Alcotest.failf "%s: stop counts differ across architectures"
                cc.Emc.Compile.cc_name)
          rest
      | [] -> ());
      (* same stop id names the same kind and method everywhere *)
      let _, ref_table = List.hd tables in
      Array.iter
        (fun (e : Emc.Busstop.entry) ->
          List.iter
            (fun (_, t) ->
              let e' = Emc.Busstop.by_id t e.Emc.Busstop.be_id in
              check Alcotest.int "same method" e.Emc.Busstop.be_op e'.Emc.Busstop.be_op;
              if e.Emc.Busstop.be_kind <> e'.Emc.Busstop.be_kind then
                Alcotest.fail "stop kind differs across architectures")
            tables)
        ref_table.Emc.Busstop.bt_entries)
    p.Emc.Compile.p_classes

let test_busstops_bijective_pcs () =
  let p = compile_all counter_src in
  Array.iter
    (fun (cc : Emc.Compile.compiled_class) ->
      List.iter
        (fun (_, (art : Emc.Compile.arch_artifact)) ->
          let t = art.Emc.Compile.aa_stops in
          Array.iter
            (fun (e : Emc.Busstop.entry) ->
              if not e.Emc.Busstop.be_exit_only then begin
                match Emc.Busstop.of_pc t e.Emc.Busstop.be_pc with
                | Some e' ->
                  check Alcotest.int "pc maps back to stop" e.Emc.Busstop.be_id
                    e'.Emc.Busstop.be_id
                | None -> Alcotest.failf "stop %d: pc not in table" e.Emc.Busstop.be_id
              end)
            t.Emc.Busstop.bt_entries)
        cc.Emc.Compile.cc_arts)
    p.Emc.Compile.p_classes

let test_vax_exit_only_stops () =
  let p = compile_all counter_src in
  let counter =
    match Emc.Compile.find_class p "Counter" with
    | Some c -> c
    | None -> Alcotest.fail "no Counter"
  in
  let vax = Emc.Compile.artifact counter ~arch_id:"vax" in
  let sparc = Emc.Compile.artifact counter ~arch_id:"sparc" in
  let find_dequeue (t : Emc.Busstop.table) =
    Array.to_list t.Emc.Busstop.bt_entries
    |> List.filter (fun e ->
           match e.Emc.Busstop.be_kind with
           | Emc.Ir.Sk_mon_dequeue -> true
           | _ -> false)
  in
  let vax_deq = find_dequeue vax.Emc.Compile.aa_stops in
  let sparc_deq = find_dequeue sparc.Emc.Compile.aa_stops in
  check Alcotest.int "same dequeue stop count" (List.length sparc_deq)
    (List.length vax_deq);
  if vax_deq = [] then Alcotest.fail "expected monitor dequeue stops";
  List.iter
    (fun (e : Emc.Busstop.entry) ->
      if not e.Emc.Busstop.be_exit_only then
        Alcotest.fail "VAX dequeue stop must be exit-only";
      (* and must be absent from the pc-to-stop direction *)
      match Emc.Busstop.of_pc vax.Emc.Compile.aa_stops e.Emc.Busstop.be_pc with
      | Some e' when e'.Emc.Busstop.be_id = e.Emc.Busstop.be_id ->
        Alcotest.fail "exit-only stop must not be pc-mapped"
      | Some _ | None -> ())
    vax_deq;
  List.iter
    (fun (e : Emc.Busstop.entry) ->
      if e.Emc.Busstop.be_exit_only then
        Alcotest.fail "non-VAX dequeue stops are ordinary system calls")
    sparc_deq

let test_program_db_stable () =
  let db = Emc.Program_db.create () in
  let o1 = Emc.Program_db.assign db ~program:"p" ~class_name:"A" in
  let o2 = Emc.Program_db.assign db ~program:"p" ~class_name:"B" in
  let o1' = Emc.Program_db.assign db ~program:"p" ~class_name:"A" in
  check Alcotest.int32 "stable" o1 o1';
  if Int32.equal o1 o2 then Alcotest.fail "distinct classes need distinct oids";
  let db2 = Emc.Program_db.create () in
  let o1'' = Emc.Program_db.assign db2 ~program:"p" ~class_name:"A" in
  check Alcotest.int32 "deterministic across databases" o1 o1''

let suites =
  [
    ( "emc.parser",
      [
        Alcotest.test_case "basic program" `Quick test_parse_basic;
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "syntax errors" `Quick test_parse_errors;
        Alcotest.test_case "comments" `Quick test_parse_comments;
      ] );
    ( "emc.typecheck",
      [
        Alcotest.test_case "counter program" `Quick test_typecheck_ok;
        Alcotest.test_case "error cases" `Quick test_typecheck_errors;
        Alcotest.test_case "int to real promotion" `Quick test_int_real_promotion;
        Alcotest.test_case "vector types compile" `Quick test_vector_types_roundtrip;
      ] );
    ( "emc.ir",
      [
        Alcotest.test_case "deterministic stops and oids" `Quick test_ir_stops_deterministic;
        Alcotest.test_case "monitor stops" `Quick test_ir_monitor_stops;
      ] );
    ( "emc.template",
      [
        Alcotest.test_case "slots well formed" `Quick test_template_slots;
        Alcotest.test_case "unique slot ownership per stop" `Quick
          test_template_no_slot_conflicts;
      ] );
    ( "emc.codegen",
      [
        Alcotest.test_case "validates on every architecture" `Quick test_codegen_validates;
        Alcotest.test_case "families differ" `Quick test_codegen_families_differ;
      ] );
    ( "emc.busstop",
      [
        Alcotest.test_case "isomorphic across architectures" `Quick
          test_busstops_isomorphic;
        Alcotest.test_case "pc mapping is bijective" `Quick test_busstops_bijective_pcs;
        Alcotest.test_case "VAX REMQUE stops are exit-only" `Quick
          test_vax_exit_only_stops;
        Alcotest.test_case "program database" `Quick test_program_db_stable;
      ] );
  ]
