(* Tests for the network layer: wire codecs and the Ethernet simulation. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let roundtrip_gen =
  QCheck.quad QCheck.int32
    (QCheck.map
       (fun (m, e) -> Float.ldexp (Float.of_int m) e)
       (QCheck.pair (QCheck.int_range (-100000) 100000) (QCheck.int_range (-30) 30)))
    QCheck.bool
    (QCheck.string_of_size (QCheck.Gen.int_range 0 200))

let roundtrip impl =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s codec round trip" (Enet.Wire.impl_name impl))
    ~count:300 roundtrip_gen
    (fun (i, f, b, s) ->
      let stats = Enet.Conversion_stats.create () in
      let w = Enet.Wire.Writer.create ~impl ~stats in
      Enet.Wire.Writer.i32 w i;
      Enet.Wire.Writer.f64 w f;
      Enet.Wire.Writer.bool w b;
      Enet.Wire.Writer.str w s;
      let r = Enet.Wire.Reader.create ~impl ~stats (Enet.Wire.Writer.contents w) in
      Int32.equal (Enet.Wire.Reader.i32 r) i
      && Enet.Wire.Reader.f64 r = f
      && Enet.Wire.Reader.bool r = b
      && String.equal (Enet.Wire.Reader.str r) s
      && Enet.Wire.Reader.at_end r)

let test_network_byte_order () =
  let stats = Enet.Conversion_stats.create () in
  let w = Enet.Wire.Writer.create ~impl:Enet.Wire.Bulk ~stats in
  Enet.Wire.Writer.u32 w 0x01020304l;
  let s = Enet.Wire.Writer.contents w in
  check Alcotest.string "big endian on the wire" "\x01\x02\x03\x04" s

let test_impls_agree () =
  let emit impl =
    let stats = Enet.Conversion_stats.create () in
    let w = Enet.Wire.Writer.create ~impl ~stats in
    Enet.Wire.Writer.u16 w 7;
    Enet.Wire.Writer.i32 w (-42l);
    Enet.Wire.Writer.f64 w 3.25;
    Enet.Wire.Writer.str w "emerald";
    (Enet.Wire.Writer.contents w, Enet.Conversion_stats.calls stats)
  in
  let naive_bytes, naive_calls = emit Enet.Wire.Naive in
  let bulk_bytes, bulk_calls = emit Enet.Wire.Bulk in
  let plan_bytes, plan_calls = emit Enet.Wire.Plan in
  check Alcotest.string "identical octets" naive_bytes bulk_bytes;
  check Alcotest.string "plan tier identical octets" naive_bytes plan_bytes;
  check Alcotest.int "plan charges like bulk" bulk_calls plan_calls;
  if naive_calls <= bulk_calls then
    Alcotest.failf "naive (%d calls) should cost more than bulk (%d)" naive_calls
      bulk_calls

let test_calls_per_byte () =
  (* the paper: an average of 1-2 conversion calls per byte *)
  let stats = Enet.Conversion_stats.create () in
  let w = Enet.Wire.Writer.create ~impl:Enet.Wire.Naive ~stats in
  for i = 0 to 99 do
    Enet.Wire.Writer.i32 w (Int32.of_int i)
  done;
  let cpb = Enet.Conversion_stats.calls_per_byte stats in
  if cpb < 1.0 || cpb > 2.0 then
    Alcotest.failf "naive conversion should cost 1-2 calls/byte, got %.2f" cpb

let test_reader_underflow () =
  let stats = Enet.Conversion_stats.create () in
  let r = Enet.Wire.Reader.create ~impl:Enet.Wire.Naive ~stats "\x00\x01" in
  match Enet.Wire.Reader.u32 r with
  | _ -> Alcotest.fail "expected underflow"
  | exception Enet.Wire.Reader.Underflow -> ()

let test_view_roundtrip () =
  let v = Enet.Wire.view_of_string "hello world" in
  check Alcotest.int "length" 11 (Enet.Wire.view_length v);
  check Alcotest.string "contents" "hello world" (Enet.Wire.view_to_string v);
  let sub = Enet.Wire.sub_view v ~pos:6 ~len:5 in
  check Alcotest.string "sub view" "world" (Enet.Wire.view_to_string sub);
  check (Alcotest.char) "indexing" 'w' (Enet.Wire.view_get sub 0)

let test_pool_reuse () =
  Enet.Wire.Pool.reset ();
  let stats = Enet.Conversion_stats.create () in
  let w = Enet.Wire.Writer.create ~impl:Enet.Wire.Bulk ~stats in
  Enet.Wire.Writer.str w "pooled payload";
  let v = Enet.Wire.Writer.handoff w in
  check Alcotest.int "first buffer is a miss" 1 (Enet.Wire.Pool.misses ());
  check Alcotest.int "handoff counted" 1 (Enet.Wire.Pool.handoffs ());
  Enet.Wire.release_view v;
  let w2 = Enet.Wire.Writer.create ~impl:Enet.Wire.Bulk ~stats in
  check Alcotest.int "released buffer is reused" 1 (Enet.Wire.Pool.hits ());
  Enet.Wire.Writer.str w2 "second";
  Enet.Wire.Writer.free w2;
  (* sub-views never recycle their parent's buffer *)
  let w3 = Enet.Wire.Writer.create ~impl:Enet.Wire.Bulk ~stats in
  Enet.Wire.Writer.str w3 "third";
  let v3 = Enet.Wire.Writer.handoff w3 in
  let inner = Enet.Wire.sub_view v3 ~pos:2 ~len:3 in
  let before = Enet.Wire.Pool.hits () in
  Enet.Wire.release_view inner;
  let w4 = Enet.Wire.Writer.create ~impl:Enet.Wire.Bulk ~stats in
  Enet.Wire.Writer.free w4;
  if Enet.Wire.Pool.hits () > before + 1 then
    Alcotest.fail "sub view release must not recycle the parent buffer";
  Enet.Wire.release_view v3;
  Enet.Wire.Pool.reset ()

let test_pool_balance () =
  (* in_flight = hits + misses - returned must drain to zero on both the
     success and the exception paths of the marshaller *)
  Enet.Wire.Pool.reset ();
  let stats = Enet.Conversion_stats.create () in
  let msg = Mobility.Marshal.M_reply { to_seg = 4; value = Ert.Value.Vint 7l; thread = 1 } in
  let bytes = Mobility.Marshal.encode ~impl:Enet.Wire.Bulk ~stats msg in
  check Alcotest.int "encode returns its buffer" 0 (Enet.Wire.Pool.in_flight ());
  (match Mobility.Marshal.decode ~impl:Enet.Wire.Bulk ~stats bytes with
  | Mobility.Marshal.M_reply { to_seg = 4; _ } -> ()
  | _ -> Alcotest.fail "reply did not survive the round trip");
  let v = Mobility.Marshal.encode_view ~impl:Enet.Wire.Bulk ~stats msg in
  check Alcotest.int "handoff keeps the buffer in flight" 1
    (Enet.Wire.Pool.in_flight ());
  Enet.Wire.release_view v;
  check Alcotest.int "release returns it" 0 (Enet.Wire.Pool.in_flight ());
  (* a string too long for the u16 length prefix aborts the encode
     part-way; the pooled buffer must still come back *)
  let huge =
    Mobility.Marshal.M_reply
      { to_seg = 4; value = Ert.Value.Vstr (String.make 70_000 'x'); thread = 1 }
  in
  (match Mobility.Marshal.encode ~impl:Enet.Wire.Bulk ~stats huge with
  | _ -> Alcotest.fail "oversized string must be rejected"
  | exception Invalid_argument _ -> ());
  check Alcotest.int "no leak from a failed encode" 0 (Enet.Wire.Pool.in_flight ());
  (match Mobility.Marshal.encode_view ~impl:Enet.Wire.Bulk ~stats huge with
  | _ -> Alcotest.fail "oversized string must be rejected"
  | exception Invalid_argument _ -> ());
  check Alcotest.int "no leak from a failed encode_view" 0
    (Enet.Wire.Pool.in_flight ());
  Enet.Wire.Pool.reset ()

let test_pool_balance_end_to_end () =
  (* a whole simulated workload, migrations and all, acquires and returns
     in matched pairs: nothing left in flight once the cluster drains *)
  Enet.Wire.Pool.reset ();
  let cl = Core.Cluster.create ~archs:[ Isa.Arch.sparc; Isa.Arch.sun3 ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"table1" Core.Workloads.table1_src);
  let agent = Core.Cluster.create_object cl ~node:0 ~class_name:"Agent" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:agent ~op:"trip"
      ~args:[ Ert.Value.Vint 1l; Ert.Value.Vint 4l ]
  in
  (match Core.Cluster.run_until_result cl tid with
  | Some _ -> ()
  | None -> Alcotest.fail "workload produced no result");
  check Alcotest.int "pool balanced after the run" 0 (Enet.Wire.Pool.in_flight ());
  Enet.Wire.Pool.reset ()

let test_writer_free_rejects_use () =
  let stats = Enet.Conversion_stats.create () in
  let w = Enet.Wire.Writer.create ~impl:Enet.Wire.Bulk ~stats in
  Enet.Wire.Writer.u16 w 1;
  Enet.Wire.Writer.free w;
  match Enet.Wire.Writer.u16 w 2 with
  | () -> Alcotest.fail "writing to a freed writer should fail"
  | exception _ -> ()

(* Netsim ------------------------------------------------------------------ *)

let test_netsim_latency () =
  let net = Enet.Netsim.create ~n_nodes:3 () in
  let cfg = Enet.Netsim.config net in
  let arrival = Enet.Netsim.send net ~now_us:1000.0 ~src:0 ~dst:1 ~payload:"hello" in
  let wire_bytes = 5 + cfg.Enet.Netsim.frame_overhead_bytes in
  let expect =
    1000.0
    +. (float_of_int (wire_bytes * 8) /. cfg.Enet.Netsim.bandwidth_mbit_s)
    +. cfg.Enet.Netsim.latency_us
  in
  check (Alcotest.float 0.001) "arrival time" expect arrival

let test_netsim_fifo () =
  let net = Enet.Netsim.create ~n_nodes:2 () in
  ignore (Enet.Netsim.send net ~now_us:0.0 ~src:0 ~dst:1 ~payload:"first");
  ignore (Enet.Netsim.send net ~now_us:0.0 ~src:0 ~dst:1 ~payload:"second");
  ignore (Enet.Netsim.send net ~now_us:0.0 ~src:0 ~dst:1 ~payload:"third");
  let recv () =
    match Enet.Netsim.receive net ~dst:1 ~now_us:1e9 with
    | Some m -> Enet.Wire.view_to_string m.Enet.Netsim.msg_payload
    | None -> Alcotest.fail "expected a message"
  in
  check Alcotest.string "fifo 1" "first" (recv ());
  check Alcotest.string "fifo 2" "second" (recv ());
  check Alcotest.string "fifo 3" "third" (recv ());
  check Alcotest.int "drained" 0 (Enet.Netsim.pending net)

let test_netsim_not_before_arrival () =
  let net = Enet.Netsim.create ~n_nodes:2 () in
  let arrival = Enet.Netsim.send net ~now_us:0.0 ~src:0 ~dst:1 ~payload:"x" in
  (match Enet.Netsim.receive net ~dst:1 ~now_us:(arrival -. 1.0) with
  | Some _ -> Alcotest.fail "message delivered before its arrival time"
  | None -> ());
  match Enet.Netsim.receive net ~dst:1 ~now_us:arrival with
  | Some _ -> ()
  | None -> Alcotest.fail "message should be deliverable at its arrival time"

let test_netsim_medium_serialises () =
  (* two messages sent at the same instant share the 10 Mbit/s segment, so
     the second arrives strictly later *)
  let net = Enet.Netsim.create ~n_nodes:3 () in
  let a1 = Enet.Netsim.send net ~now_us:0.0 ~src:0 ~dst:1 ~payload:(String.make 1000 'a') in
  let a2 = Enet.Netsim.send net ~now_us:0.0 ~src:2 ~dst:1 ~payload:(String.make 1000 'b') in
  if a2 <= a1 then Alcotest.fail "shared medium must serialise transmissions"

let suites =
  [
    ( "enet.wire",
      [
        qcheck (roundtrip Enet.Wire.Naive);
        qcheck (roundtrip Enet.Wire.Bulk);
        qcheck (roundtrip Enet.Wire.Plan);
        Alcotest.test_case "network byte order" `Quick test_network_byte_order;
        Alcotest.test_case "implementations agree on octets" `Quick test_impls_agree;
        Alcotest.test_case "naive costs 1-2 calls/byte" `Quick test_calls_per_byte;
        Alcotest.test_case "reader underflow" `Quick test_reader_underflow;
        Alcotest.test_case "views" `Quick test_view_roundtrip;
        Alcotest.test_case "buffer pool reuse" `Quick test_pool_reuse;
        Alcotest.test_case "pool balance on success and failure" `Quick
          test_pool_balance;
        Alcotest.test_case "pool balance across a workload" `Quick
          test_pool_balance_end_to_end;
        Alcotest.test_case "freed writer rejects use" `Quick test_writer_free_rejects_use;
      ] );
    ( "enet.netsim",
      [
        Alcotest.test_case "latency model" `Quick test_netsim_latency;
        Alcotest.test_case "fifo delivery" `Quick test_netsim_fifo;
        Alcotest.test_case "no early delivery" `Quick test_netsim_not_before_arrival;
        Alcotest.test_case "medium serialises" `Quick test_netsim_medium_serialises;
      ] );
  ]
