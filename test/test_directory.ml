(* The partitioned location directory and group migration (DESIGN.md
   sec. 14): the partition map is deterministic, chain collapse keeps
   forwarding chains at one hop, the directory agrees with the
   forwarding ground truth under churn, crashes and restarts, and every
   new wire message is byte-identical at any shard count — while a
   directory-off cluster stays bit-identical to the defaults. *)

module A = Isa.Arch
module C = Core.Cluster
module V = Ert.Value
module W = Core.Workloads

let check = Alcotest.check

let src =
  {|
object Cell
  operation get[x : int] -> [r : int]
    r <- x
  end get
end Cell

object Caller
  operation call[c : Cell, x : int] -> [r : int]
    r <- c.get[x]
  end call
end Caller
|}

let sparcs n = List.init n (fun _ -> A.sparc)

(* ------------------------------------------------------------------ *)
(* the partition map *)

let test_partition_deterministic () =
  let cl = C.create ~location:C.Loc_directory ~archs:(sparcs 8) () in
  ignore (C.compile_and_load cl ~name:"dir" src);
  let oids =
    List.init 64 (fun i -> C.create_object cl ~node:(i mod 8) ~class_name:"Cell")
  in
  (* a second cluster of the same size maps every OID identically: the
     home is a function of the OID and node count alone *)
  let cl2 = C.create ~location:C.Loc_directory ~archs:(sparcs 8) () in
  List.iter
    (fun oid ->
      check Alcotest.int "home is stable across clusters"
        (C.directory_home cl oid) (C.directory_home cl2 oid))
    oids;
  (* every birth registers silently with its home shard *)
  List.iteri
    (fun i oid ->
      check (Alcotest.option Alcotest.int) "birth registered"
        (Some (i mod 8)) (C.directory_entry cl oid))
    oids;
  (* the hash spreads consecutive serials over the ring rather than
     clumping them on one shard *)
  let homes = List.sort_uniq compare (List.map (C.directory_home cl) oids) in
  if List.length homes < 4 then
    Alcotest.failf "64 objects mapped to only %d home shards" (List.length homes)

(* ------------------------------------------------------------------ *)
(* chain collapse: the 50-migration tour *)

(* The target tours nodes 1..5 of a six-node ring for 50 migrations,
   leaving a forwarding proxy at every stop; node 0 only knows the
   creator hint.  The first invoke then walks the accumulated chain —
   several hops — and its success must collapse every hint it touched
   straight to the host: the walk after it takes at most one hop, and a
   second invoke adds zero further hops to the counter. *)
let test_ping_pong_collapse () =
  (* 50 is not a multiple of the 6-node tour cycle, so the target ends
     away from its creator and the walk has a real chain to collapse *)
  let n_nodes = 7 in
  let cl = C.create ~location:C.Loc_collapse ~archs:(sparcs n_nodes) () in
  ignore (C.compile_and_load cl ~name:"dir" src);
  let target = C.create_object cl ~node:1 ~class_name:"Cell" in
  let at = ref 1 in
  for _ = 1 to 50 do
    let dest = 1 + (!at mod (n_nodes - 1)) in
    C.group_move cl ~node:!at ~dest [ target ];
    C.run cl;
    at := dest
  done;
  check (Alcotest.option Alcotest.int) "tour landed" (Some !at)
    (C.where_is cl target);
  let caller = C.create_object cl ~node:0 ~class_name:"Caller" in
  let invoke x =
    let tid =
      C.spawn cl ~node:0 ~target:caller ~op:"call"
        ~args:[ V.Vref target; V.Vint (Int32.of_int x) ]
    in
    match C.run_until_result cl tid with
    | Some (V.Vint v) -> Int32.to_int v
    | _ -> Alcotest.fail "invoke returned nothing"
  in
  check Alcotest.int "first invoke answers" 7 (invoke 7);
  let hops_after_first = C.total_counter cl (fun c -> c.Core.Events.c_locates) in
  ignore hops_after_first;
  let walked = C.total_counter cl (fun c -> c.Core.Events.c_locate_hops) in
  if walked < 2 then
    Alcotest.failf "the tour left no chain to walk (only %d hops)" walked;
  if C.total_counter cl (fun c -> c.Core.Events.c_collapses) = 0 then
    Alcotest.fail "a successful walk must collapse the chain it took";
  (* the asker's route is now direct *)
  let host, hops = C.chain_walk cl ~from:0 target in
  check (Alcotest.option Alcotest.int) "walk reaches the host" (Some !at) host;
  if hops > 1 then Alcotest.failf "chain still %d hops after collapse" hops;
  (* and a second invoke pays no forwarding at all *)
  check Alcotest.int "second invoke answers" 9 (invoke 9);
  check Alcotest.int "second invoke took zero hops" walked
    (C.total_counter cl (fun c -> c.Core.Events.c_locate_hops))

(* ------------------------------------------------------------------ *)
(* interned ordering == structural ordering (qcheck) *)

let oid_gen =
  QCheck.Gen.(
    map2
      (fun node serial -> Ert.Oid.fresh_data ~node_id:node ~serial)
      (int_bound (Ert.Oid.max_nodes - 1))
      (int_bound (Ert.Oid.max_serial - 1)))

let prop_intern_order =
  QCheck.Test.make ~name:"interned ordering equals structural ordering"
    ~count:1000
    (QCheck.make QCheck.Gen.(pair oid_gen oid_gen))
    (fun (a, b) ->
      let sign x = compare x 0 in
      sign (Ert.Oid.compare a b)
      = sign (compare (Ert.Oid.intern a) (Ert.Oid.intern b))
      && Ert.Oid.equal a b = (Ert.Oid.intern a = Ert.Oid.intern b))

(* ------------------------------------------------------------------ *)
(* the directory agrees with the forwarding ground truth under churn,
   crashes and restarts (qcheck over seeded op sequences) *)

let churn_agrees seed =
  let n_nodes = 5 in
  let rng = Random.State.make [| 0xd1c; seed |] in
  let cl = C.create ~location:C.Loc_directory ~archs:(sparcs n_nodes) () in
  ignore (C.compile_and_load cl ~name:"dir" src);
  let objects = ref [] in
  let live_nodes () =
    List.filter (fun i -> not (C.is_crashed cl i)) (List.init n_nodes Fun.id)
  in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  for _ = 1 to 40 do
    (match Random.State.int rng 10 with
    | 0 | 1 | 2 ->
      let node = pick (live_nodes ()) in
      objects := C.create_object cl ~node ~class_name:"Cell" :: !objects
    | 3 | 4 | 5 | 6 -> (
      (* batch-migrate some co-located survivors *)
      let residents =
        List.filter_map
          (fun o ->
            match C.where_is cl o with Some n -> Some (o, n) | None -> None)
          !objects
      in
      match residents with
      | [] -> ()
      | _ ->
        let _, node = pick residents in
        let batch =
          List.filter_map
            (fun (o, n) -> if n = node then Some o else None)
            residents
        in
        let dests = List.filter (fun i -> i <> node) (live_nodes ()) in
        if dests <> [] then C.group_move cl ~node ~dest:(pick dests) batch)
    | 7 ->
      let live = live_nodes () in
      if List.length live > 2 then C.crash_node cl (pick live)
    | _ ->
      let down =
        List.filter (fun i -> C.is_crashed cl i) (List.init n_nodes Fun.id)
      in
      if down <> [] then C.restart_node cl (pick down));
    C.run cl
  done;
  (* at quiescence every publish has landed and every restart has
     rebuilt its shard, so for every surviving object whose home shard
     is alive the directory must point exactly where the object is —
     and any forwarding walk that terminates must agree *)
  List.for_all
    (fun o ->
      match C.where_is cl o with
      | None -> true (* lost to a crash; nothing to agree about *)
      | Some host ->
        let home = C.directory_home cl o in
        let dir_ok =
          C.is_crashed cl home
          || C.directory_entry cl o = Some host
        in
        let walks_ok =
          List.for_all
            (fun from ->
              match C.chain_walk cl ~from o with
              | Some h, _ -> h = host
              | None, _ -> true (* no trail from this node *))
            (live_nodes ())
        in
        dir_ok && walks_ok)
    !objects

let prop_churn =
  QCheck.Test.make ~name:"directory agrees with chain walks under churn"
    ~count:25
    (QCheck.make QCheck.Gen.(int_bound 10_000))
    churn_agrees

(* ------------------------------------------------------------------ *)
(* shard byte-identity of the new traffic *)

(* The location-directory workload — group transfers, directory
   publishes and lookups, hint fanout — must put byte-identical traffic
   on the wire at shards 1, 2 and 4. *)
let test_shard_identity () =
  let go shards =
    W.measure_cluster ~shards ~flock:3 ~askers:3 ~calls:6 ~rounds:6
      ~n_nodes:12 ~n_objects:60 ()
  in
  let base = go 1 in
  check Alcotest.int "digests complete" base.W.cr_expected base.W.cr_result;
  if base.W.cr_group_moves = 0 || base.W.cr_locates = 0 then
    Alcotest.fail "the scenario generated no group or locate traffic";
  List.iter
    (fun shards ->
      let r = go shards in
      check Alcotest.int "result" base.W.cr_result r.W.cr_result;
      check Alcotest.int "events" base.W.cr_events r.W.cr_events;
      check (Alcotest.float 0.0) "virtual time" base.W.cr_virtual_us
        r.W.cr_virtual_us;
      check Alcotest.int "messages" base.W.cr_messages r.W.cr_messages;
      check Alcotest.int "bytes" base.W.cr_bytes r.W.cr_bytes;
      check Alcotest.int "locate hops" base.W.cr_locate_hops r.W.cr_locate_hops;
      check Alcotest.int "collapses" base.W.cr_collapses r.W.cr_collapses;
      check Alcotest.int "directory updates" base.W.cr_dir_updates
        r.W.cr_dir_updates;
      check Alcotest.int "group objects" base.W.cr_group_objects
        r.W.cr_group_objects)
    [ 2; 4 ]

(* group-migration fuzz scenarios replay identically at any shard count *)
let test_shard_identity_fuzz () =
  List.iter
    (fun seed ->
      let base = Core.Fuzz.run_seed ~groups:true ~seed () in
      List.iter
        (fun shards ->
          let r = Core.Fuzz.run_seed ~groups:true ~shards ~seed () in
          check Alcotest.bool "ok" base.Core.Fuzz.f_ok r.Core.Fuzz.f_ok;
          check Alcotest.int "events" base.Core.Fuzz.f_events
            r.Core.Fuzz.f_events;
          check (Alcotest.float 0.0) "virtual time"
            base.Core.Fuzz.f_virtual_us r.Core.Fuzz.f_virtual_us;
          check Alcotest.int "group moves" base.Core.Fuzz.f_group_moves
            r.Core.Fuzz.f_group_moves;
          check (Alcotest.list Alcotest.string) "trace"
            base.Core.Fuzz.f_trace r.Core.Fuzz.f_trace)
        [ 2; 4 ])
    [ 3; 11 ]

(* ------------------------------------------------------------------ *)
(* directory off == the defaults, bit for bit *)

let test_off_identity () =
  let run location =
    let cl =
      match location with
      | None -> C.create ~archs:[ A.sparc; A.sun3; A.vax ] ()
      | Some l -> C.create ~location:l ~archs:[ A.sparc; A.sun3; A.vax ] ()
    in
    let buf = Buffer.create 256 in
    C.subscribe_events cl (fun e ->
        Buffer.add_string buf (Core.Events.to_string e);
        Buffer.add_char buf '\n');
    ignore (C.compile_and_load cl ~name:"dir" src);
    let cell = C.create_object cl ~node:1 ~class_name:"Cell" in
    let caller = C.create_object cl ~node:0 ~class_name:"Caller" in
    let tid =
      C.spawn cl ~node:0 ~target:caller ~op:"call"
        ~args:[ V.Vref cell; V.Vint 5l ]
    in
    let r = C.run_until_result cl tid in
    ( r,
      Buffer.contents buf,
      Enet.Netsim.messages_sent (C.network cl),
      Enet.Netsim.bytes_sent (C.network cl),
      C.events_processed cl )
  in
  let r0, t0, m0, b0, e0 = run None in
  let r1, t1, m1, b1, e1 = run (Some C.Loc_off) in
  if r0 <> r1 then Alcotest.fail "results differ";
  check Alcotest.string "trace bit-identical" t0 t1;
  check Alcotest.int "messages" m0 m1;
  check Alcotest.int "bytes" b0 b1;
  check Alcotest.int "events" e0 e1;
  (* and the collapse mode only ADDS events — the result is unchanged *)
  let r2, _, _, _, _ = run (Some C.Loc_collapse) in
  if r0 <> r2 then Alcotest.fail "location mode changed the program result"

let suites =
  [
    ( "directory",
      [
        Alcotest.test_case "partition map is deterministic" `Quick
          test_partition_deterministic;
        Alcotest.test_case "50-migration tour collapses to one hop" `Quick
          test_ping_pong_collapse;
        QCheck_alcotest.to_alcotest prop_intern_order;
        QCheck_alcotest.to_alcotest prop_churn;
        Alcotest.test_case "new traffic byte-identical at shards 1/2/4" `Slow
          test_shard_identity;
        Alcotest.test_case "group fuzz identical at shards 1/2/4" `Slow
          test_shard_identity_fuzz;
        Alcotest.test_case "directory off is bit-identical to defaults" `Quick
          test_off_identity;
      ] );
  ]
