(* PR-8 fast paths: the threaded-dispatch engine and the negotiated
   same-layout blit migration tier.

   The dispatch engine must be observationally identical to the
   fetch/decode interpreter — same results, same per-node instruction
   counters, same virtual time, same protocol trace — at shard counts
   1/2/4.  The blit tier must write byte-for-byte the plan tier's wire
   bytes and decode to states that behave identically (a qcheck property
   over every architecture pair, with mid-loop and mid-monitor-wait
   captures in flight), skipping translation only for same-layout pairs
   and falling back to plans honestly everywhere else.  A forced
   eviction mid-bridge under the blit codec closes the loop. *)

module A = Isa.Arch
module V = Ert.Value
module K = Ert.Kernel
module T = Ert.Thread

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---------------------------------------------------------------- *)
(* threaded dispatch == fetch/decode, bit for bit, shards 1/2/4       *)
(* ---------------------------------------------------------------- *)

let dispatch_src =
  {|
object Gate
  var opened : bool <- false
  condition go

  monitor operation pass[] -> [r : int]
    loop
      exit when opened
      wait go timeout 900
    end loop
    r <- thisnode
  end pass

  monitor operation open[]
    opened <- true
    notifyall go
  end open
end Gate

object Opener
  var g : Gate <- nil
  operation initially[gg : Gate]
    g <- gg
  end initially
  process
    var i : int <- 0
    loop
      exit when i >= 120
      i <- i + 1
    end loop
    g.open[]
  end process
end Opener

object Hopper
  operation hop[n : int] -> [r : int]
    var i : int <- 0
    var acc : int <- 0
    loop
      exit when i >= n
      i <- i + 1
      acc <- acc + i * i
      move self to 1
      acc <- acc - i
      move self to 2
      acc <- acc + 3 * i
      move self to 0
    end loop
    r <- acc
  end hop
end Hopper

object Worker
  operation work[rounds : int, spins : int] -> [r : int]
    var i : int <- 0
    var j : int <- 0
    var acc : int <- 0
    loop
      exit when i >= rounds
      i <- i + 1
      j <- 0
      loop
        exit when j >= spins
        j <- j + 1
        acc <- acc + j - (j / 2) * 2
      end loop
    end loop
    r <- acc * 100 + thisnode
  end work
end Worker

object Main
  operation start[] -> [r : int]
    var g : Gate <- new Gate
    var o : Opener <- new Opener[g]
    r <- g.pass[]
  end start
end Main
|}

let run_dispatch_mix ~threaded ~shards =
  let archs = [ A.sparc; A.vax; A.sun3; A.by_id "hp433" ] in
  let cl = Core.Cluster.create ~quantum:40 ~shards ~archs () in
  for i = 0 to Core.Cluster.n_nodes cl - 1 do
    K.set_threaded (Core.Cluster.kernel cl i) threaded
  done;
  let trace = Buffer.create 4096 in
  Core.Cluster.set_trace cl (fun line ->
      Buffer.add_string trace line;
      Buffer.add_char trace '\n');
  ignore (Core.Cluster.compile_and_load cl ~name:"dispatchmix" dispatch_src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let gt = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
  let hopper = Core.Cluster.create_object cl ~node:0 ~class_name:"Hopper" in
  let ht =
    Core.Cluster.spawn cl ~node:0 ~target:hopper ~op:"hop"
      ~args:[ V.Vint 3l ]
  in
  let workers =
    List.init 3 (fun i ->
        let w =
          Core.Cluster.create_object cl ~node:(i + 1) ~class_name:"Worker"
        in
        Core.Cluster.spawn cl ~node:(i + 1) ~target:w ~op:"work"
          ~args:[ V.Vint 3l; V.Vint 40l ])
  in
  Core.Cluster.run cl;
  let digest tid =
    match Core.Cluster.result cl tid with
    | Some (Some (V.Vint v)) -> Int32.to_int v
    | _ -> Alcotest.fail "dispatch-mix thread did not complete"
  in
  let insns =
    List.init (Core.Cluster.n_nodes cl) (fun i ->
        K.insns_executed (Core.Cluster.kernel cl i))
  in
  let dstats =
    List.init (Core.Cluster.n_nodes cl) (fun i ->
        K.dispatch_stats (Core.Cluster.kernel cl i))
  in
  ( List.map digest (gt :: ht :: workers),
    insns,
    Core.Cluster.global_time_us cl,
    Buffer.contents trace,
    dstats )

let test_dispatch_identical_to_interpreter () =
  let base, insns0, t0, trace0, base_stats = run_dispatch_mix ~threaded:false ~shards:1 in
  (* the baseline path must not touch the translation cache *)
  List.iter
    (fun (s : Isa.Dispatch.stats) ->
      check Alcotest.int "baseline translated nothing" 0 s.Isa.Dispatch.st_blocks)
    base_stats;
  List.iter
    (fun shards ->
      let d, insns, t, trace, dstats = run_dispatch_mix ~threaded:true ~shards in
      let label s = Printf.sprintf "%s (threaded, %d shards)" s shards in
      check (Alcotest.list Alcotest.int) (label "results") base d;
      check (Alcotest.list Alcotest.int) (label "insns per node") insns0 insns;
      check (Alcotest.float 0.0) (label "virtual time") t0 t;
      check Alcotest.string (label "trace") trace0 trace;
      let blocks =
        List.fold_left (fun a s -> a + s.Isa.Dispatch.st_blocks) 0 dstats
      in
      let fused =
        List.fold_left (fun a s -> a + s.Isa.Dispatch.st_fused) 0 dstats
      in
      if blocks = 0 then Alcotest.fail (label "no blocks were translated");
      if fused = 0 then Alcotest.fail (label "no superinstructions were fused"))
    [ 1; 2; 4 ]

(* ---------------------------------------------------------------- *)
(* blit tier == plan tier for every arch pair (qcheck property)       *)
(* ---------------------------------------------------------------- *)

(* Mid-loop captures (the courier moves with live loop state twice per
   iteration) and a mid-monitor-wait capture (the gate moves while two
   waiters sit on its condition queue), then everyone drains. *)
let blit_src =
  {|
object Gate
  var opened : bool <- false
  condition go

  monitor operation pass[] -> [r : int]
    loop
      exit when opened
      wait go
    end loop
    r <- thisnode
  end pass

  monitor operation open[]
    opened <- true
    notifyall go
  end open
end Gate

object Waiter
  operation park[g : Gate] -> [r : int]
    r <- g.pass[]
  end park
end Waiter

object Courier
  operation tour[g : Gate, n : int] -> [r : int]
    var i : int <- 0
    var acc : int <- 0
    loop
      exit when i >= n
      i <- i + 1
      acc <- acc + i * i
      move self to 1
      acc <- acc + i
      move self to 0
    end loop
    move g to 1
    g.open[]
    r <- acc
  end tour
end Courier
|}

type blit_obs = {
  bo_results : int list;
  bo_gate_at : int option;
  bo_bytes : int;
  bo_messages : int;
  bo_virtual_us : float;
  bo_skips : int;
  bo_fallbacks : int;
}

let run_blit_workload ~wire_impl ~src ~dst =
  let cl = Core.Cluster.create ~wire_impl ~archs:[ src; dst ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"blit" blit_src);
  let gate = Core.Cluster.create_object cl ~node:0 ~class_name:"Gate" in
  let w1 = Core.Cluster.create_object cl ~node:0 ~class_name:"Waiter" in
  let w2 = Core.Cluster.create_object cl ~node:0 ~class_name:"Waiter" in
  let t1 = Core.Cluster.spawn cl ~node:0 ~target:w1 ~op:"park" ~args:[ V.Vref gate ] in
  let t2 = Core.Cluster.spawn cl ~node:0 ~target:w2 ~op:"park" ~args:[ V.Vref gate ] in
  (* park both waiters on the condition queue before the courier runs,
     so moving the gate captures threads blocked mid-monitor-wait *)
  for _ = 1 to 200 do
    ignore (Core.Cluster.step_once cl)
  done;
  let courier = Core.Cluster.create_object cl ~node:0 ~class_name:"Courier" in
  let tc =
    Core.Cluster.spawn cl ~node:0 ~target:courier ~op:"tour"
      ~args:[ V.Vref gate; V.Vint 3l ]
  in
  Core.Cluster.run cl;
  let digest tid =
    match Core.Cluster.result cl tid with
    | Some (Some (V.Vint v)) -> Int32.to_int v
    | _ -> Alcotest.fail "blit workload thread did not complete"
  in
  let open Core.Events in
  {
    bo_results = List.map digest [ t1; t2; tc ];
    bo_gate_at = Core.Cluster.where_is cl gate;
    bo_bytes = Enet.Netsim.bytes_sent (Core.Cluster.network cl);
    bo_messages = Enet.Netsim.messages_sent (Core.Cluster.network cl);
    bo_virtual_us = Core.Cluster.global_time_us cl;
    bo_skips = Core.Cluster.total_counter cl (fun c -> c.c_blit_skips);
    bo_fallbacks = Core.Cluster.total_counter cl (fun c -> c.c_blit_fallbacks);
  }

let pair_gen =
  let open QCheck.Gen in
  let n = List.length A.all in
  int_range 0 (n - 1) >>= fun si ->
  int_range 0 (n - 1) >>= fun di ->
  return (List.nth A.all si, List.nth A.all di)

let blit_matches_plan =
  QCheck.Test.make
    ~name:"blit tier == plan tier for every arch pair (skips iff same layout)"
    ~count:12 (QCheck.make pair_gen) (fun (src, dst) ->
      let plan = run_blit_workload ~wire_impl:Enet.Wire.Plan ~src ~dst in
      let blit = run_blit_workload ~wire_impl:Enet.Wire.Blit ~src ~dst in
      if plan.bo_skips <> 0 || plan.bo_fallbacks <> 0 then
        QCheck.Test.fail_report "plan tier emitted blit events";
      if blit.bo_results <> plan.bo_results then
        QCheck.Test.fail_report "blit decoded to a different result";
      if blit.bo_gate_at <> plan.bo_gate_at then
        QCheck.Test.fail_report "blit left the gate on a different node";
      if blit.bo_bytes <> plan.bo_bytes then
        QCheck.Test.fail_reportf "blit wire bytes differ: %d vs plan %d"
          blit.bo_bytes plan.bo_bytes;
      if blit.bo_messages <> plan.bo_messages then
        QCheck.Test.fail_report "blit message count differs from plan";
      if A.same_layout src dst then begin
        if blit.bo_skips = 0 then
          QCheck.Test.fail_reportf "same-layout pair %s->%s never skipped"
            src.A.id dst.A.id;
        if blit.bo_fallbacks <> 0 then
          QCheck.Test.fail_report "same-layout pair fell back to plans";
        (* skipping translation must show up on the virtual clock *)
        if not (blit.bo_virtual_us < plan.bo_virtual_us) then
          QCheck.Test.fail_reportf
            "same-layout blit not faster: %.1f us vs plan %.1f us"
            blit.bo_virtual_us plan.bo_virtual_us
      end
      else begin
        if blit.bo_skips <> 0 then
          QCheck.Test.fail_reportf "mixed-layout pair %s->%s skipped translation"
            src.A.id dst.A.id;
        if blit.bo_fallbacks = 0 then
          QCheck.Test.fail_report "mixed-layout pair never recorded a fallback";
        (* the honest fallback is the plan tier exactly, clock included *)
        if blit.bo_virtual_us <> plan.bo_virtual_us then
          QCheck.Test.fail_report "mixed-layout blit moved the virtual clock"
      end;
      true)

(* every same-layout pair is exercised deterministically too, not just
   whichever pairs qcheck happens to draw *)
let test_all_same_layout_pairs_skip () =
  let pairs =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if a != b && A.same_layout a b then Some (a, b) else None)
          A.all)
      A.all
  in
  if pairs = [] then Alcotest.fail "no same-layout pairs among the builtins";
  List.iter
    (fun (src, dst) ->
      let blit = run_blit_workload ~wire_impl:Enet.Wire.Blit ~src ~dst in
      if blit.bo_skips = 0 then
        Alcotest.failf "%s->%s: no blit skip" src.A.id dst.A.id;
      if blit.bo_fallbacks <> 0 then
        Alcotest.failf "%s->%s: unexpected fallback" src.A.id dst.A.id)
    pairs

(* ---------------------------------------------------------------- *)
(* eviction during blit: forced capture rides the fast path            *)
(* ---------------------------------------------------------------- *)

let bridge_src =
  {|
object Server
  operation double[x : int] -> [r : int]
    var i : int <- 0
    loop
      exit when i >= 400
      i <- i + 1
    end loop
    r <- x + x
  end double
end Server

object Client
  operation go[s : Server] -> [r : int]
    r <- s.double[21]
  end go
end Client
|}

let seg_of_tid k tid =
  List.find_opt (fun s -> s.T.seg_thread = tid) (K.segments k)

let test_evict_during_blit () =
  (* an all-same-layout cluster under the blit codec: a forced eviction
     mid-bridge marshals through the blit path and must behave exactly
     like the plan-tier eviction test *)
  let archs = [ A.sun3; A.by_id "hp433"; A.by_id "hp385" ] in
  let cl = Core.Cluster.create ~wire_impl:Enet.Wire.Blit ~archs () in
  ignore (Core.Cluster.compile_and_load cl ~name:"blitbridge" bridge_src);
  let server = Core.Cluster.create_object cl ~node:1 ~class_name:"Server" in
  let client = Core.Cluster.create_object cl ~node:0 ~class_name:"Client" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:client ~op:"go"
      ~args:[ V.Vref server ]
  in
  let k0 = Core.Cluster.kernel cl 0 in
  let rec to_bridge n =
    if n > 20000 then Alcotest.fail "client never reached the bridge";
    match seg_of_tid k0 tid with
    | Some ({ T.seg_status = T.Awaiting_reply _; _ } as s) -> s.T.seg_id
    | _ ->
      ignore (Core.Cluster.step_once cl);
      to_bridge (n + 1)
  in
  let seg_id = to_bridge 0 in
  Core.Cluster.evict_thread cl ~node:0 ~seg_id ~dest:2;
  check Alcotest.int "trap fired immediately" 1 (K.evictions k0);
  (match Core.Cluster.run_until_result cl tid with
  | Some (V.Vint 42l) -> ()
  | _ -> Alcotest.fail "reply did not reach the evicted segment");
  check (Alcotest.option Alcotest.int) "client evicted to node 2" (Some 2)
    (Core.Cluster.where_is cl client);
  let open Core.Events in
  let skips = Core.Cluster.total_counter cl (fun c -> c.c_blit_skips) in
  if skips = 0 then Alcotest.fail "the evicted move never took the blit path";
  check Alcotest.int "no fallbacks on the same-layout cluster" 0
    (Core.Cluster.total_counter cl (fun c -> c.c_blit_fallbacks))

(* ---------------------------------------------------------------- *)
(* fingerprints are interned once per arch                            *)
(* ---------------------------------------------------------------- *)

let test_fingerprint_memo () =
  let c0 = A.fingerprint_computes () in
  List.iter (fun a -> ignore (A.fingerprint a : int)) A.all;
  List.iter
    (fun a -> List.iter (fun b -> ignore (A.same_layout a b : bool)) A.all)
    A.all;
  let computed = A.fingerprint_computes () - c0 in
  (* every arch was fingerprinted above; past one compute per arch the
     memo must absorb everything *)
  if computed > List.length A.all then
    Alcotest.failf "memo leak: %d fingerprints computed for %d archs" computed
      (List.length A.all);
  let h0 = A.fingerprint_hits () in
  List.iter (fun a -> ignore (A.fingerprint a : int)) A.all;
  check Alcotest.int "all repeat lookups hit the memo"
    (h0 + List.length A.all)
    (A.fingerprint_hits ());
  check Alcotest.int "no repeat lookup recomputed"
    (c0 + computed)
    (A.fingerprint_computes ())

let suites =
  [
    ( "fastpath",
      [
        Alcotest.test_case "threaded dispatch == interpreter at 1/2/4 shards"
          `Quick test_dispatch_identical_to_interpreter;
        qcheck blit_matches_plan;
        Alcotest.test_case "every same-layout pair skips translation" `Quick
          test_all_same_layout_pairs_skip;
        Alcotest.test_case "eviction during blit" `Quick test_evict_during_blit;
        Alcotest.test_case "layout fingerprints are interned" `Quick
          test_fingerprint_memo;
      ] );
  ]
