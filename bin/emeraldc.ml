(* emeraldc: compile an Emerald-like source file for the heterogeneous
   architectures and inspect what the compiler produces — native code,
   templates, bus-stop tables, IR.

     emeraldc FILE [-O{0,1,2}] [--arch ID] [--dump-ir] [--dump-code]
                   [--dump-stops] [--dump-template] *)

open Cmdliner

let level_of_int n =
  try Emc.Opt.of_int n
  with Invalid_argument _ ->
    Printf.eprintf "invalid optimization level -O%d (have: 0, 1, 2)\n" n;
    exit 2

let compile file opt arch_id dump_ir dump_code dump_stops dump_template =
  let source = In_channel.with_open_text file In_channel.input_all in
  let level = level_of_int opt in
  let archs =
    match arch_id with
    | None -> Isa.Arch.all
    | Some id -> (
      try [ Isa.Arch.by_id id ]
      with Not_found ->
        Printf.eprintf "unknown architecture %s (have: %s)\n" id
          (String.concat ", " (List.map (fun a -> a.Isa.Arch.id) Isa.Arch.all));
        exit 2)
  in
  match
    Emc.Compile.compile ~levels:[ level ]
      ~name:(Filename.remove_extension (Filename.basename file))
      ~archs source
  with
  | Error errs ->
    List.iter
      (fun e -> Printf.eprintf "%s: %s\n" file (Format.asprintf "%a" Emc.Diag.pp_error e))
      errs;
    exit 1
  | Ok prog ->
    Printf.printf "%s: %d class(es) compiled for %s\n" file
      (Array.length prog.Emc.Compile.p_classes)
      (String.concat ", " (List.map (fun a -> a.Isa.Arch.id) archs));
    Array.iter
      (fun (cc : Emc.Compile.compiled_class) ->
        Printf.printf "  %s: oid %ld, %d bus stop(s)\n" cc.Emc.Compile.cc_name
          cc.Emc.Compile.cc_oid cc.Emc.Compile.cc_ir.Emc.Ir.cl_nstops;
        List.iter
          (fun ((id, level), (art : Emc.Compile.arch_artifact)) ->
            Printf.printf "    %-6s -%s %5d bytes of code%s\n" id
              (Emc.Opt.to_string level) art.Emc.Compile.aa_code.Isa.Code.byte_size
              (match List.length art.Emc.Compile.aa_edits with
              | 0 -> ""
              | n -> Printf.sprintf " (%d optimizer edit(s))" n))
          cc.Emc.Compile.cc_arts)
      prog.Emc.Compile.p_classes;
    if dump_ir then Format.printf "@.%a" Emc.Pretty.pp_program prog.Emc.Compile.p_ir;
    Array.iter
      (fun (cc : Emc.Compile.compiled_class) ->
        if dump_template then
          Format.printf "@.%a" Emc.Template.pp_class cc.Emc.Compile.cc_template;
        List.iter
          (fun (_, (art : Emc.Compile.arch_artifact)) ->
            if dump_code then begin
              print_newline ();
              print_string (Isa.Disasm.listing art.Emc.Compile.aa_code)
            end;
            if dump_stops then Format.printf "@.%a" Emc.Busstop.pp art.Emc.Compile.aa_stops)
          cc.Emc.Compile.cc_arts)
      prog.Emc.Compile.p_classes

let file_t =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Emerald source file.")

let opt_t =
  Arg.(value & opt int 0
       & info [ "O" ] ~docv:"LEVEL"
           ~doc:"Optimization level: 0 none, 1 between-bus-stops peephole, 2 windowed \
                 redundant-load elimination and loop-poll elision.")

let arch_t =
  Arg.(value & opt (some string) None
       & info [ "arch" ] ~docv:"ID"
           ~doc:"Compile only for this architecture (vax, sun3, hp433, hp385, \
                 sparc); default: all.")

let dump_ir_t =
  Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the machine-independent IR.")

let dump_code_t =
  Arg.(value & flag & info [ "dump-code" ] ~doc:"Print the native-code listings.")

let dump_stops_t =
  Arg.(value & flag & info [ "dump-stops" ] ~doc:"Print the bus-stop tables.")

let dump_template_t =
  Arg.(value & flag
       & info [ "dump-template" ] ~doc:"Print the object/activation-record templates.")

let cmd =
  let doc = "compile an Emerald-like program for the heterogeneous architectures" in
  Cmd.v
    (Cmd.info "emeraldc" ~doc)
    Term.(
      const compile $ file_t $ opt_t $ arch_t $ dump_ir_t $ dump_code_t $ dump_stops_t
      $ dump_template_t)

let () = exit (Cmd.eval cmd)
