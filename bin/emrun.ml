(* emrun: run an Emerald-like program on a simulated cluster of
   heterogeneous workstations.

     emrun FILE [options]
       --nodes IDS    comma-separated architectures (default:
                      sparc,sun3,hp433,vax — a Figure 1 network)
       --class NAME   class to instantiate on node 0 (default: Main)
       --op NAME      operation to invoke (default: start)
       --args LIST    comma-separated integer arguments
       --original     use the original homogeneous protocol
       --trace        print protocol events
       --stats        print per-node statistics afterwards *)

let usage = "emrun FILE [--nodes IDS] [--class NAME] [--op NAME] [--args LIST] [--original] [--trace] [--stats]"

let () =
  let file = ref None in
  let nodes = ref "sparc,sun3,hp433,vax" in
  let cls = ref "Main" in
  let op = ref "start" in
  let args_s = ref "" in
  let original = ref false in
  let trace = ref false in
  let stats = ref false in
  let spec =
    [
      ("--nodes", Arg.Set_string nodes, "IDS comma-separated architecture ids");
      ("--class", Arg.Set_string cls, "NAME class to instantiate (default Main)");
      ("--op", Arg.Set_string op, "NAME operation to invoke (default start)");
      ("--args", Arg.Set_string args_s, "LIST comma-separated integer arguments");
      ("--original", Arg.Set original, " use the original homogeneous protocol");
      ("--trace", Arg.Set trace, " print protocol events");
      ("--stats", Arg.Set stats, " print per-node statistics");
    ]
  in
  Arg.parse spec (fun f -> file := Some f) usage;
  let file =
    match !file with
    | Some f -> f
    | None ->
      prerr_endline usage;
      exit 2
  in
  let source = In_channel.with_open_text file In_channel.input_all in
  let archs =
    String.split_on_char ',' !nodes
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.map (fun id ->
           try Isa.Arch.by_id id
           with Not_found ->
             Printf.eprintf "unknown architecture %s\n" id;
             exit 2)
  in
  let protocol = if !original then Core.Cluster.Original else Core.Cluster.Enhanced in
  let cl = Core.Cluster.create ~protocol ~archs () in
  if !trace then Core.Cluster.set_trace cl prerr_endline;
  (match
     Emc.Compile.compile ~name:(Filename.remove_extension (Filename.basename file))
       ~archs:(List.sort_uniq (fun a b -> String.compare a.Isa.Arch.id b.Isa.Arch.id) archs)
       source
   with
  | Error errs ->
    List.iter
      (fun e -> Printf.eprintf "%s: %s\n" file (Format.asprintf "%a" Emc.Diag.pp_error e))
      errs;
    exit 1
  | Ok prog -> Core.Cluster.load_program cl prog);
  let target = Core.Cluster.create_object cl ~node:0 ~class_name:!cls in
  let args =
    if !args_s = "" then []
    else
      String.split_on_char ',' !args_s
      |> List.map (fun s -> Ert.Value.Vint (Int32.of_string (String.trim s)))
  in
  let tid = Core.Cluster.spawn cl ~node:0 ~target ~op:!op ~args in
  (match Core.Cluster.run_until_result cl tid with
  | Some v -> Format.printf "result: %a@." Ert.Value.pp v
  | None -> print_endline "done (no result)");
  for i = 0 to Core.Cluster.n_nodes cl - 1 do
    let out = Core.Cluster.output cl ~node:i in
    if out <> "" then Printf.printf "-- node %d output --\n%s" i out
  done;
  Printf.printf "virtual time: %.2f ms\n" (Core.Cluster.global_time_us cl /. 1000.0);
  if !stats then begin
    Printf.printf "network: %d messages, %d bytes\n"
      (Enet.Netsim.messages_sent (Core.Cluster.network cl))
      (Enet.Netsim.bytes_sent (Core.Cluster.network cl));
    for i = 0 to Core.Cluster.n_nodes cl - 1 do
      let k = Core.Cluster.kernel cl i in
      Printf.printf
        "node %d (%-6s): %8d insns, %5d syscalls, %s, code fetches %d\n" i
        (Isa.Arch.by_id (Ert.Kernel.arch k).Isa.Arch.id).Isa.Arch.id
        (Ert.Kernel.insns_executed k)
        (Ert.Kernel.syscalls_handled k)
        (Format.asprintf "%a" Enet.Conversion_stats.pp (Core.Cluster.conversion_stats cl i))
        (Mobility.Code_repository.fetches_by_node (Core.Cluster.repository cl) i)
    done;
    for i = 0 to Core.Cluster.n_nodes cl - 1 do
      let c = Core.Cluster.node_counters cl i in
      let open Core.Events in
      Printf.printf
        "node %d bus: %8d steps, %3d sent, %3d delivered, %2d moves out, %2d in, %4d conv calls\n"
        i c.c_steps c.c_sent c.c_delivered c.c_moves_out c.c_moves_in
        c.c_conv_calls
    done;
    let e = Core.Cluster.engine cl in
    Printf.printf "engine: %d pushes, %d pops (%d stale), %d pending\n"
      (Core.Engine.pushes e) (Core.Engine.pops e) (Core.Engine.stale_pops e)
      (Core.Engine.pending e)
  end
