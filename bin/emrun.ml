(* emrun: run an Emerald-like program on a simulated cluster of
   heterogeneous workstations.

     emrun FILE [--nodes IDS] [-O LEVELS] [--class NAME] [--op NAME]
               [--args LIST] [--original] [--codec TIER] [--shards N]
               [--location MODE] [--gc MODE] [--gc-threshold BYTES]
               [--trace] [--stats] [--profile]
               [--trace-out FILE] [--evict-hot N] [--seed N]
               [--faults SPEC] [--check-invariants] *)

open Cmdliner

let run file nodes opt cls op args_s original codec shards location gc_mode_s
    gc_threshold trace stats profile trace_out evict_hot seed faults
    check_invariants =
  let source = In_channel.with_open_text file In_channel.input_all in
  let archs =
    String.split_on_char ',' nodes
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.map (fun id ->
           try Isa.Arch.by_id id
           with Not_found ->
             Printf.eprintf "unknown architecture %s\n" id;
             exit 2)
  in
  let node_levels =
    let parse s =
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 && n <= 2 -> Emc.Opt.of_int n
      | _ ->
        Printf.eprintf "emrun: bad optimization level %s (have: 0, 1, 2)\n" s;
        exit 2
    in
    match List.map parse (String.split_on_char ',' opt) with
    | [ l ] -> List.map (fun _ -> l) archs
    | ls when List.length ls = List.length archs -> ls
    | ls ->
      Printf.eprintf "emrun: -O wants one level or one per node (%d nodes, %d levels)\n"
        (List.length archs) (List.length ls);
      exit 2
  in
  let protocol = if original then Core.Cluster.Original else Core.Cluster.Enhanced in
  let plan =
    match faults with
    | None -> Fault.Plan.empty
    | Some spec -> (
      match Fault.Plan.of_string spec with
      | Ok p -> p
      | Error e ->
        Printf.eprintf "emrun: bad --faults spec: %s\n" e;
        exit 2)
  in
  let plan = match seed with Some s -> Fault.Plan.with_seed plan s | None -> plan in
  let wire_impl =
    match codec with
    | None -> None
    | Some s -> (
      match Enet.Wire.impl_of_string s with
      | Some impl -> Some impl
      | None ->
        Printf.eprintf "emrun: unknown codec %s (have: naive, bulk, plan, blit)\n" s;
        exit 2)
  in
  let location =
    match location with
    | None -> Core.Cluster.Loc_off
    | Some "off" -> Core.Cluster.Loc_off
    | Some "collapse" -> Core.Cluster.Loc_collapse
    | Some "directory" -> Core.Cluster.Loc_directory
    | Some s ->
      Printf.eprintf "emrun: unknown location mode %s (have: off, collapse, directory)\n" s;
      exit 2
  in
  let gc_mode =
    match gc_mode_s with
    | None | Some "stw" -> Core.Cluster.Gc_stw
    | Some "incremental" -> Core.Cluster.Gc_incremental
    | Some s ->
      Printf.eprintf "emrun: unknown gc mode %s (have: stw, incremental)\n" s;
      exit 2
  in
  let cl =
    Core.Cluster.create ~protocol ?wire_impl ~shards ?gc_threshold ~gc_mode
      ~faults:plan ~location ~archs ()
  in
  (* max-pause tracking for --stats: each Ev_gc_phase carries the virtual
     time its increment charged; stop-the-world pauses are not phased, so
     the line only appears under --gc incremental *)
  let gc_max_pause_us = ref 0.0 in
  Core.Events.subscribe (Core.Cluster.bus cl) (function
    | Core.Events.Ev_gc_phase { pause_us; _ } ->
      if pause_us > !gc_max_pause_us then gc_max_pause_us := pause_us
    | _ -> ());
  List.iteri (fun i l -> Core.Cluster.set_opt_level cl ~node:i l) node_levels;
  (match evict_hot with
  | Some threshold ->
    Core.Cluster.set_balancer cl ~every_us:400.0
      (Core.Workloads.hot_spot_balancer ~threshold cl)
  | None -> ());
  if trace then Core.Cluster.set_trace cl prerr_endline;
  (* span tracing drives both --profile and --trace-out; the profile
     keeps raw spans only when a trace file will be written *)
  let prof =
    if profile || trace_out <> None then begin
      let p = Obs.Profile.create ~keep_spans:(trace_out <> None) () in
      Core.Cluster.attach_profile cl p;
      Some p
    end
    else None
  in
  (* with every node at -O0 the instance list is omitted entirely, so
     the compiled program — and everything downstream — is byte-for-byte
     the historical single-instance one *)
  let levels =
    if List.for_all (Emc.Opt.equal Emc.Opt.O0) node_levels then None
    else Some node_levels
  in
  let prog =
    match
      Emc.Compile.compile ?levels
        ~name:(Filename.remove_extension (Filename.basename file))
        ~archs:(List.sort_uniq (fun a b -> String.compare a.Isa.Arch.id b.Isa.Arch.id) archs)
        source
    with
    | Error errs ->
      List.iter
        (fun e -> Printf.eprintf "%s: %s\n" file (Format.asprintf "%a" Emc.Diag.pp_error e))
        errs;
      exit 1
    | Ok prog ->
      Core.Cluster.load_program cl prog;
      prog
  in
  let target = Core.Cluster.create_object cl ~node:0 ~class_name:cls in
  let args =
    if args_s = "" then []
    else
      String.split_on_char ',' args_s
      |> List.map (fun s -> Ert.Value.Vint (Int32.of_string (String.trim s)))
  in
  let tid = Core.Cluster.spawn cl ~node:0 ~target ~op ~args in
  let finish () =
    for i = 0 to Core.Cluster.n_nodes cl - 1 do
      let out = Core.Cluster.output cl ~node:i in
      if out <> "" then Printf.printf "-- node %d output --\n%s" i out
    done;
    Printf.printf "virtual time: %.2f ms\n" (Core.Cluster.global_time_us cl /. 1000.0);
    if stats then begin
      Printf.printf "network: %d messages, %d bytes\n"
        (Enet.Netsim.messages_sent (Core.Cluster.network cl))
        (Enet.Netsim.bytes_sent (Core.Cluster.network cl));
      for i = 0 to Core.Cluster.n_nodes cl - 1 do
        let k = Core.Cluster.kernel cl i in
        Printf.printf
          "node %d (%-6s): %8d insns, %5d syscalls, %s, code fetches %d\n" i
          (Isa.Arch.by_id (Ert.Kernel.arch k).Isa.Arch.id).Isa.Arch.id
          (Ert.Kernel.insns_executed k)
          (Ert.Kernel.syscalls_handled k)
          (Format.asprintf "%a" Enet.Conversion_stats.pp (Core.Cluster.conversion_stats cl i))
          (Mobility.Code_repository.fetches_by_node (Core.Cluster.repository cl) i)
      done;
      for i = 0 to Core.Cluster.n_nodes cl - 1 do
        let c = Core.Cluster.node_counters cl i in
        let open Core.Events in
        Printf.printf
          "node %d bus: %8d steps, %3d sent, %3d delivered, %2d moves out, %2d in, %4d conv calls\n"
          i c.c_steps c.c_sent c.c_delivered c.c_moves_out c.c_moves_in
          c.c_conv_calls
      done;
      for i = 0 to Core.Cluster.n_nodes cl - 1 do
        let k = Core.Cluster.kernel cl i in
        Printf.printf
          "node %d queue: depth %d (peak %d), %d evictions fired, %d armed\n" i
          (Ert.Kernel.ready_depth k)
          (Ert.Kernel.peak_ready_depth k)
          (Ert.Kernel.evictions k)
          (Ert.Kernel.evictions_armed k)
      done;
      let gc_freed =
        Core.Cluster.total_counter cl (fun c -> c.Core.Events.c_gc_bytes_freed)
      in
      (match Core.Cluster.gc_mode cl with
      | Core.Cluster.Gc_stw ->
        if Core.Cluster.collections cl > 0 then
          Printf.printf "gc: %d stop-the-world collections, %d bytes freed\n"
            (Core.Cluster.collections cl) gc_freed
      | Core.Cluster.Gc_incremental ->
        let incs =
          Core.Cluster.total_counter cl (fun c ->
              c.Core.Events.c_gc_increments)
        in
        Printf.printf
          "gc: %d incremental collections (%d increments), %d bytes freed, \
           max increment pause %.1f us\n"
          (Core.Cluster.collections cl)
          incs gc_freed !gc_max_pause_us);
      for i = 0 to Core.Cluster.n_nodes cl - 1 do
        let c = Core.Cluster.node_counters cl i in
        let open Core.Events in
        if
          c.c_plan_compiles > 0 || c.c_plan_hits > 0 || c.c_pool_hits > 0
          || c.c_pool_misses > 0 || c.c_copies_saved > 0
        then
          Printf.printf
            "node %d fastpath: %d plan compiles, %d plan hits, pool %d/%d \
             (hits/misses), %d copies saved\n"
            i c.c_plan_compiles c.c_plan_hits c.c_pool_hits c.c_pool_misses
            c.c_copies_saved
      done;
      let pc = Mobility.Code_repository.plan_cache (Core.Cluster.repository cl) in
      if Mobility.Conv_plan.compiles pc > 0 || Mobility.Conv_plan.hits pc > 0 then
        Printf.printf "plan cache: %d compiles, %d hits\n"
          (Mobility.Conv_plan.compiles pc) (Mobility.Conv_plan.hits pc);
      let open Core.Events in
      let blit_skips = Core.Cluster.total_counter cl (fun c -> c.c_blit_skips) in
      let blit_falls =
        Core.Cluster.total_counter cl (fun c -> c.c_blit_fallbacks)
      in
      if blit_skips > 0 || blit_falls > 0 then begin
        let fp_computes = Isa.Arch.fingerprint_computes () in
        let fp_hits = Isa.Arch.fingerprint_hits () in
        (* the interning memo must absorb every comparison past the first
           per arch: computing more fingerprints than there are
           architectures would mean the memo is broken *)
        assert (fp_computes <= List.length Isa.Arch.all);
        Printf.printf
          "fastpath: %d blit moves skipped translation, %d fell back to \
           plans (skip ratio %.2f); layout fingerprints %d computed, %d \
           memo hits\n"
          blit_skips blit_falls
          (float_of_int blit_skips /. float_of_int (blit_skips + blit_falls))
          fp_computes fp_hits
      end;
      let d_blocks = ref 0 and d_insns = ref 0 and d_fused = ref 0 in
      let d_slices = ref 0 in
      for i = 0 to Core.Cluster.n_nodes cl - 1 do
        let s = Ert.Kernel.dispatch_stats (Core.Cluster.kernel cl i) in
        d_blocks := !d_blocks + s.Isa.Dispatch.st_blocks;
        d_insns := !d_insns + s.Isa.Dispatch.st_insns;
        d_fused := !d_fused + s.Isa.Dispatch.st_fused;
        d_slices := !d_slices + s.Isa.Dispatch.st_slices
      done;
      if !d_slices > 0 then
        Printf.printf
          "dispatch: %d blocks translated (%d insns, %d fused pairs), %d \
           run slices\n"
          !d_blocks !d_insns !d_fused !d_slices;
      (if levels <> None then begin
         Printf.printf "optimizer: node levels [%s]\n"
           (String.concat ","
              (List.map
                 (fun l -> string_of_int (Emc.Opt.to_int l))
                 node_levels));
         (* per-(arch, level) edit totals over every class of the program *)
         let tallies = Hashtbl.create 8 in
         Array.iter
           (fun cc ->
             List.iter
               (fun (key, (art : Emc.Compile.arch_artifact)) ->
                 let n = List.length art.Emc.Compile.aa_edits in
                 Hashtbl.replace tallies key
                   (n + Option.value (Hashtbl.find_opt tallies key) ~default:0))
               cc.Emc.Compile.cc_arts)
           prog.Emc.Compile.p_classes;
         Hashtbl.fold (fun k v acc -> (k, v) :: acc) tallies []
         |> List.sort compare
         |> List.iter (fun ((arch_id, l), n) ->
                Printf.printf "optimizer: %-6s -%s %4d edit(s)\n" arch_id
                  (Emc.Opt.to_string l) n)
       end);
      let bridged =
        Core.Cluster.total_counter cl (fun c -> c.Core.Events.c_bridged)
      in
      let bh, bm = Core.Cluster.bridge_stats cl in
      if bridged > 0 || bh + bm > 0 then
        Printf.printf
          "bridge: %d threads resumed through fragments; fragment cache %d \
           hits / %d misses\n"
          bridged bh bm;
      Array.iteri
        (fun s e ->
          Printf.printf "engine %d: %d pushes, %d pops (%d stale), %d pending\n"
            s (Core.Engine.pushes e) (Core.Engine.pops e)
            (Core.Engine.stale_pops e) (Core.Engine.pending e))
        (Core.Cluster.engines cl);
      let bus = Core.Cluster.bus cl in
      if Core.Events.windows bus > 0 then begin
        Printf.printf "windows: %d run, mean horizon %.0f us\n"
          (Core.Events.windows bus)
          (Core.Events.mean_horizon_us bus);
        for s = 0 to Core.Cluster.n_shards cl - 1 do
          let sc = Core.Events.shard_counters bus s in
          let open Core.Events in
          Printf.printf
            "shard %d: %d windows, %d events, busy %.1f ms, stalled %.1f ms\n"
            s sc.s_windows sc.s_events (sc.s_busy_ns /. 1e6)
            (sc.s_stall_ns /. 1e6)
        done
      end;
      if Core.Cluster.location cl <> Core.Cluster.Loc_off then begin
        let open Core.Events in
        let tc f = Core.Cluster.total_counter cl f in
        let locates = tc (fun c -> c.c_locates) in
        let hops = tc (fun c -> c.c_locate_hops) in
        Printf.printf
          "location: %d invokes located (%d hops, mean %.2f), %d chain \
           collapses\n"
          locates hops
          (if locates = 0 then 0.0 else float_of_int hops /. float_of_int locates)
          (tc (fun c -> c.c_collapses));
        let u, stale, hits, misses = Core.Cluster.directory_stats cl in
        if Core.Cluster.location cl = Core.Cluster.Loc_directory then
          Printf.printf
            "directory: %d updates sent, %d applied (%d stale dropped), \
             lookups %d hit / %d miss\n"
            (tc (fun c -> c.c_dir_updates))
            u stale hits misses;
        let gm = tc (fun c -> c.c_group_moves) in
        if gm > 0 then
          Printf.printf "group transfers: %d (%d objects)\n" gm
            (tc (fun c -> c.c_group_objects))
      end;
      if not (Fault.Plan.is_trivial plan) then begin
        let open Core.Events in
        let tc f = Core.Cluster.total_counter cl f in
        Printf.printf "faults: %s\n" (Fault.Plan.describe plan);
        Printf.printf
          "faults: %d injected (%d dropped, %d duplicated, %d delayed), %d \
           retransmits, %d dups suppressed, %d acks\n"
          (tc (fun c -> c.c_faults))
          (Enet.Netsim.messages_dropped (Core.Cluster.network cl))
          (Enet.Netsim.messages_duplicated (Core.Cluster.network cl))
          (Enet.Netsim.messages_delayed (Core.Cluster.network cl))
          (tc (fun c -> c.c_retransmits))
          (tc (fun c -> c.c_dups_suppressed))
          (tc (fun c -> c.c_acks))
      end
    end;
    (match prof with
    | Some p ->
      if profile then begin
        Printf.printf "migration phases (%d spans):\n" (Obs.Profile.count p);
        print_string (Obs.Profile.table p)
      end;
      (match trace_out with
      | Some path ->
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (Obs.Trace.to_json (Obs.Profile.spans p)));
        Printf.eprintf "trace written to %s (%d spans)\n" path (Obs.Profile.count p)
      | None -> ())
    | None -> ())
  in
  let result =
    if not check_invariants then (
      try Ok (Core.Cluster.run_until_result cl tid) with
      | Core.Cluster.Thread_unavailable r -> Error ("thread unavailable: " ^ r))
    else begin
      (* step manually so the invariant oracle runs between events *)
      let rec drive budget =
        match Core.Cluster.result cl tid with
        | Some r -> Ok r
        | None -> (
          match Core.Cluster.thread_failure cl tid with
          | Some r -> Error ("thread unavailable: " ^ r)
          | None ->
            if budget <= 0 then Error "event budget exceeded"
            else if not (Core.Cluster.step_once cl) then
              Error "cluster quiescent without a result"
            else begin
              match Core.Cluster.check_invariants cl with
              | [] -> drive (budget - 1)
              | vs ->
                List.iter
                  (fun v ->
                    Format.eprintf "invariant violation: %a@."
                      Fault.Invariants.pp_violation v)
                  vs;
                finish ();
                exit 3
            end)
      in
      drive 2_000_000
    end
  in
  (match result with
  | Ok (Some v) -> Format.printf "result: %a@." Ert.Value.pp v
  | Ok None -> print_endline "done (no result)"
  | Error msg -> Printf.printf "%s\n" msg);
  finish ();
  if check_invariants then print_endline "invariants: ok"

let file_t =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Emerald source file.")

let nodes_t =
  Arg.(value & opt string "sparc,sun3,hp433,vax"
       & info [ "nodes" ] ~docv:"IDS"
           ~doc:"Comma-separated architecture ids (default: a Figure 1 network).")

let opt_t =
  Arg.(value & opt string "0"
       & info [ "O" ] ~docv:"LEVELS"
           ~doc:"Optimization level — one of $(b,0) (straight template \
                 code, the default), $(b,1) (register caching + peephole) \
                 or $(b,2) (1 plus redundant-load elimination and \
                 loop-poll elision) — applied to every node, or a \
                 comma-separated per-node list (e.g. $(b,0,2,0,2)).  Nodes \
                 at different levels run different code instances; threads \
                 migrating between them land through compiled bridge \
                 fragments when their parked bus stop was elided at the \
                 destination.")

let class_t =
  Arg.(value & opt string "Main"
       & info [ "class" ] ~docv:"NAME" ~doc:"Class to instantiate on node 0.")

let op_t =
  Arg.(value & opt string "start" & info [ "op" ] ~docv:"NAME" ~doc:"Operation to invoke.")

let args_t =
  Arg.(value & opt string ""
       & info [ "args" ] ~docv:"LIST" ~doc:"Comma-separated integer arguments.")

let original_t =
  Arg.(value & flag
       & info [ "original" ] ~doc:"Use the original homogeneous protocol.")

let codec_t =
  Arg.(value & opt (some string) None
       & info [ "codec" ] ~docv:"TIER"
           ~doc:"Wire conversion tier: $(b,naive) (per-byte calls, the \
                 prototype's routines), $(b,bulk) (per-datum calls), \
                 $(b,plan) (compiled conversion plans; same virtual cost \
                 as bulk), or $(b,blit) (plan, plus same-layout \
                 architecture pairs negotiate a zero-translation blit \
                 that skips capture translation and frame rebuild).")

let shards_t =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"N"
           ~doc:"Shard the event engine across $(docv) OCaml domains \
                 (capped at one per node).  Simulation results are \
                 identical at any shard count.")

let location_t =
  Arg.(value & opt (some string) None
       & info [ "location" ] ~docv:"MODE"
           ~doc:"Location subsystem mode: $(b,off) (default; bit-identical \
                 to builds that predate it), $(b,collapse) (forwarded \
                 invokes carry hop trails and the hosting node collapses \
                 the chain behind them), or $(b,directory) (collapse plus \
                 the hash-partitioned location directory: migrations \
                 publish to each object's home shard, exhausted proxy \
                 chains ask the home before broadcasting).")

let gc_mode_t =
  Arg.(value & opt (some string) None
       & info [ "gc" ] ~docv:"MODE"
           ~doc:"Collector tier: $(b,stw) (default; one stop-the-world \
                 mark-sweep per threshold crossing, byte-identical traces \
                 to earlier builds) or $(b,incremental) (the tri-color \
                 incremental collector: the same collection as bounded \
                 increments interleaved with execution, each charged per \
                 pointer slot scanned).")

let gc_threshold_t =
  Arg.(value & opt (some int) None
       & info [ "gc-threshold" ] ~docv:"BYTES"
           ~doc:"Arm automatic collection when a node's live heap exceeds \
                 $(docv) bytes (default: collection disabled).")

let trace_t = Arg.(value & flag & info [ "trace" ] ~doc:"Print protocol events.")
let stats_t = Arg.(value & flag & info [ "stats" ] ~doc:"Print per-node statistics.")

let profile_t =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Trace migration spans and print the per-arch-pair phase \
                 table (count, p50/p90/p99/max in virtual us per phase: \
                 capture, translate, marshal, transfer, unmarshal, \
                 rebuild, relocate, plus whole moves and RPC round trips).")

let trace_out_t =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write migration spans as Chrome tracing JSON (load in \
                 about:tracing or Perfetto; timestamps are virtual \
                 microseconds).")

let evict_hot_t =
  Arg.(value & opt (some int) None
       & info [ "evict-hot" ] ~docv:"N"
           ~doc:"Install the hot-spot load balancer: every 400 virtual us, \
                 when the deepest run queue exceeds the shallowest by at \
                 least $(docv), force-evict the lowest-id runnable segment \
                 from the hot node to the cool one (trapped at its next \
                 bus stop, no cooperative polling).")

let seed_t =
  Arg.(value & opt (some int) None
       & info [ "seed" ] ~docv:"N"
           ~doc:"Override the fault plan's random seed (determinism handle).")

let faults_t =
  Arg.(value & opt (some string) None
       & info [ "faults" ] ~docv:"SPEC"
           ~doc:"Install a fault plan, e.g. \
                 'seed=42,drop=0.3,dup=0.05,delay=0.1:2000,part=0+1|2+3@1000:50000,crash=2@3000:9000'.")

let check_invariants_t =
  Arg.(value & flag
       & info [ "check-invariants" ]
           ~doc:"Check cluster invariants between events; exit 3 on violation.")

let cmd =
  let doc = "run an Emerald-like program on a simulated heterogeneous cluster" in
  Cmd.v
    (Cmd.info "emrun" ~doc)
    Term.(
      const run $ file_t $ nodes_t $ opt_t $ class_t $ op_t $ args_t $ original_t
      $ codec_t $ shards_t $ location_t $ gc_mode_t $ gc_threshold_t $ trace_t
      $ stats_t $ profile_t $ trace_out_t $ evict_hot_t $ seed_t $ faults_t
      $ check_invariants_t)

let () = exit (Cmd.eval cmd)
