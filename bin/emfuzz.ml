(* emfuzz: deterministic simulation testing of the mobility protocol.

   Sweeps seeds over randomized workloads and fault plans (message loss,
   duplication, delay, partitions, crash/restart windows), checking the
   cluster invariants between events.  A failing seed is printed with
   its plan and trace tail, then greedily shrunk to a minimal
   still-failing plan; the whole failure reproduces from the seed alone. *)

open Cmdliner

let pp_outcome ?(verbose = false) ppf (o : Core.Fuzz.outcome) =
  let status, detail =
    match o.Core.Fuzz.f_verdict with
    | Core.Fuzz.Completed v -> ("ok", Printf.sprintf "completed: %s" v)
    | Core.Fuzz.Unavailable r -> ("ok", Printf.sprintf "unavailable: %s" r)
    | Core.Fuzz.Stuck r -> ("FAIL", Printf.sprintf "stuck: %s" r)
    | Core.Fuzz.Invariant vs ->
      ( "FAIL",
        Printf.sprintf "invariant violated: %s"
          (String.concat "; "
             (List.map
                (fun v -> Format.asprintf "%a" Fault.Invariants.pp_violation v)
                vs)) )
  in
  Format.fprintf ppf "seed %6d  %-4s %s" o.Core.Fuzz.f_seed status detail;
  if verbose then
    Format.fprintf ppf
      "  [%d events, %.0fus, %d moves, %d evictions, %d faults, %d rexmit, \
       %d dups]"
      o.Core.Fuzz.f_events o.Core.Fuzz.f_virtual_us o.Core.Fuzz.f_moves
      o.Core.Fuzz.f_evictions o.Core.Fuzz.f_faults o.Core.Fuzz.f_retransmits
      o.Core.Fuzz.f_dups;
  if verbose && o.Core.Fuzz.f_group_moves > 0 then
    Format.fprintf ppf " [%d group moves]" o.Core.Fuzz.f_group_moves

let report_failure ~drop ~evict ~groups ~gc ~check_every ~max_events ~shards
    ~do_shrink (o : Core.Fuzz.outcome) =
  Format.printf "@.%a@." (pp_outcome ~verbose:true) o;
  Format.printf "plan: %s@." (Fault.Plan.to_string o.Core.Fuzz.f_plan);
  if o.Core.Fuzz.f_trace <> [] then begin
    Format.printf "--- trace tail ---@.";
    List.iter print_endline o.Core.Fuzz.f_trace;
    Format.printf "--- end trace ---@."
  end;
  if do_shrink then begin
    Format.printf "shrinking...@.";
    let minimal =
      Core.Fuzz.shrink ?drop ~evict ~groups ~gc ~check_every ~max_events
        ~shards ~seed:o.Core.Fuzz.f_seed o.Core.Fuzz.f_plan
    in
    Format.printf "minimal failing plan: %s@." (Fault.Plan.to_string minimal)
  end;
  Format.printf "reproduce: emfuzz --seed %d%s%s%s%s@." o.Core.Fuzz.f_seed
    (match drop with Some d -> Printf.sprintf " --drop %g" d | None -> "")
    (if evict then " --evict" else "")
    (if groups then " --groups" else "")
    (if gc then " --gc" else "")

let run seeds start one_seed faults drop evict groups gc check_every
    max_events shards no_shrink verbose =
  let plan =
    match faults with
    | None -> None
    | Some spec -> (
      match Fault.Plan.of_string spec with
      | Ok p -> Some p
      | Error e ->
        Printf.eprintf "emfuzz: bad --faults spec: %s\n" e;
        exit 2)
  in
  let do_shrink = not no_shrink in
  match one_seed with
  | Some seed ->
    let o =
      Core.Fuzz.run_seed ?plan ?drop ~evict ~groups ~gc ~check_every
        ~max_events ~shards ~seed ()
    in
    if o.Core.Fuzz.f_ok then begin
      Format.printf "%a@." (pp_outcome ~verbose:true) o;
      Format.printf "plan: %s@." (Fault.Plan.to_string o.Core.Fuzz.f_plan);
      if verbose then List.iter print_endline o.Core.Fuzz.f_trace;
      0
    end
    else begin
      report_failure ~drop ~evict ~groups ~gc ~check_every ~max_events ~shards
        ~do_shrink o;
      1
    end
  | None ->
    let t0 = Unix.gettimeofday () in
    let completed = ref 0 and unavailable = ref 0 in
    let faults_n = ref 0 and rexmit = ref 0 and dups = ref 0 in
    let evictions = ref 0 and group_moves = ref 0 in
    let ran = ref 0 in
    let on_outcome (o : Core.Fuzz.outcome) =
      incr ran;
      (match o.Core.Fuzz.f_verdict with
      | Core.Fuzz.Completed _ -> incr completed
      | Core.Fuzz.Unavailable _ -> incr unavailable
      | _ -> ());
      faults_n := !faults_n + o.Core.Fuzz.f_faults;
      rexmit := !rexmit + o.Core.Fuzz.f_retransmits;
      dups := !dups + o.Core.Fuzz.f_dups;
      evictions := !evictions + o.Core.Fuzz.f_evictions;
      group_moves := !group_moves + o.Core.Fuzz.f_group_moves;
      if verbose then Format.printf "%a@." (pp_outcome ~verbose:true) o
    in
    let seed_list = List.init seeds (fun i -> start + i) in
    (match
       Core.Fuzz.sweep ?drop ~evict ~groups ~gc ~check_every ~max_events
         ~shards ~on_outcome ~seeds:seed_list ()
     with
    | Some bad ->
      report_failure ~drop ~evict ~groups ~gc ~check_every ~max_events ~shards
        ~do_shrink bad;
      1
    | None ->
      Format.printf
        "%d seeds: %d completed, %d unavailable, 0 violations  (%d faults \
         injected, %d retransmits, %d dups suppressed%s)  [%.1fs]@."
        !ran !completed !unavailable !faults_n !rexmit !dups
        ((if evict then Printf.sprintf ", %d evictions" !evictions else "")
        ^ (if groups then Printf.sprintf ", %d group moves" !group_moves else ""))
        (Unix.gettimeofday () -. t0);
      0)

let seeds_t =
  Arg.(value & opt int 200 & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to sweep.")

let start_t =
  Arg.(value & opt int 1 & info [ "start" ] ~docv:"S" ~doc:"First seed of the sweep.")

let seed_t =
  Arg.(value & opt (some int) None
       & info [ "seed" ] ~docv:"SEED" ~doc:"Run exactly one seed, verbosely.")

let faults_t =
  Arg.(value & opt (some string) None
       & info [ "faults" ] ~docv:"SPEC"
           ~doc:"Override the seed-derived fault plan with this plan spec \
                 (same syntax as emrun --faults).")

let drop_t =
  Arg.(value & opt (some float) None
       & info [ "drop" ] ~docv:"P"
           ~doc:"Force the per-message loss probability (e.g. 0.3).")

let evict_t =
  Arg.(value & flag
       & info [ "evict" ]
           ~doc:"Install the hot-spot balancer on every scenario, so \
                 forced-eviction captures race the fault plan.")

let groups_t =
  Arg.(value & flag
       & info [ "groups" ]
           ~doc:"Enable the location directory on every scenario and \
                 rotate a flock of objects around the ring as batched \
                 group migrations, racing the fault plan.")

let gc_t =
  Arg.(value & flag
       & info [ "gc" ]
           ~doc:"Arm the incremental collector on every scenario (small                  threshold and budget), so open mark cycles, the write                  barrier and crash-mid-cycle discard race the fault plan.")

let check_every_t =
  Arg.(value & opt int 1
       & info [ "check-every" ] ~docv:"N"
           ~doc:"Run the invariant checkers every N events.")

let max_events_t =
  Arg.(value & opt int 400_000
       & info [ "max-events" ] ~docv:"N" ~doc:"Per-seed event budget.")

let shards_t =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"N"
           ~doc:"Shard the simulated cluster's event engine across \
                 $(docv) structures (the fuzz driver steps through the \
                 deterministic sequential merge, so outcomes are \
                 identical at any shard count).")

let no_shrink_t =
  Arg.(value & flag
       & info [ "no-shrink" ] ~doc:"Skip shrinking when a seed fails.")

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every seed's outcome.")

let cmd =
  let doc = "sweep fault-injection seeds against the mobility protocol" in
  Cmd.v
    (Cmd.info "emfuzz" ~doc)
    Term.(
      const run $ seeds_t $ start_t $ seed_t $ faults_t $ drop_t $ evict_t
      $ groups_t $ gc_t $ check_every_t $ max_events_t $ shards_t
      $ no_shrink_t $ verbose_t)

let () = exit (Cmd.eval' cmd)
