(* emdis: disassemble the native code generated for one architecture,
   side by side with its bus-stop table.

     emdis FILE ARCH [CLASS] [--plans DST] [--opt-diff L,L] *)

open Cmdliner

let arch_by_id id =
  try Isa.Arch.by_id id
  with Not_found ->
    Printf.eprintf "unknown architecture %s (have: %s)\n" id
      (String.concat ", " (List.map (fun a -> a.Isa.Arch.id) Isa.Arch.all));
    exit 2

(* the basic-block partition the threaded-dispatch translator will use,
   with the superinstruction fusions it would apply *)
let print_blocks (code : Isa.Code.t) =
  Printf.printf "blocks %s/%s:\n" code.Isa.Code.class_name
    code.Isa.Code.arch.Isa.Arch.id;
  List.iter
    (fun (b : Isa.Dispatch.block) ->
      let fused =
        match b.Isa.Dispatch.b_fused with
        | [] -> ""
        | l ->
          "  fused "
          ^ String.concat ", "
              (List.map
                 (fun i ->
                   let kind =
                     match code.Isa.Code.insns.(i) with
                     | Isa.Insn.Cmp _ -> "cmp+bcc"
                     | Isa.Insn.Poll _ -> "poll+br"
                     | _ -> "?"
                   in
                   Printf.sprintf "@%d (%s)" i kind)
                 l)
      in
      Printf.printf "  [%4d..%4d]  0x%04x..0x%04x  %d insns%s\n"
        b.Isa.Dispatch.b_first b.Isa.Dispatch.b_last
        code.Isa.Code.offsets.(b.Isa.Dispatch.b_first)
        code.Isa.Code.offsets.(b.Isa.Dispatch.b_last)
        (b.Isa.Dispatch.b_last - b.Isa.Dispatch.b_first + 1)
        fused)
    (Isa.Dispatch.describe_blocks code)

(* --opt-diff: the same class compiled at two optimization levels, the
   instances printed in two columns.  Bus stops are the alignment anchors:
   both instances come from one IR, so stop ids and their order are
   identical by construction; only the instruction sequences between them
   differ.  Each chunk starts at a stop's canonical PC. *)

let kind_name = function
  | Emc.Ir.Sk_invoke _ -> "invoke"
  | Emc.Ir.Sk_new _ -> "new"
  | Emc.Ir.Sk_builtin { bi; _ } -> Emc.Ir.builtin_name bi
  | Emc.Ir.Sk_loop -> "loop"
  | Emc.Ir.Sk_mon_enter -> "mon-enter"
  | Emc.Ir.Sk_mon_dequeue -> "mon-dequeue"
  | Emc.Ir.Sk_mon_wake -> "mon-wake"

(* the instance's code split into chunks, each headed by the bus stop
   whose canonical PC opens it (the prologue chunk has none) *)
let chunk_instance (art : Emc.Compile.arch_artifact) =
  let code = art.Emc.Compile.aa_code in
  let anchors = Hashtbl.create 16 in
  Array.iter
    (fun (e : Emc.Busstop.entry) ->
      if not (Hashtbl.mem anchors e.Emc.Busstop.be_pc) then
        Hashtbl.replace anchors e.Emc.Busstop.be_pc e)
    art.Emc.Compile.aa_stops.Emc.Busstop.bt_entries;
  let labels = Hashtbl.create 4 in
  Array.iter
    (fun (m : Isa.Code.method_info) ->
      Hashtbl.replace labels m.Isa.Code.entry_offset m.Isa.Code.method_name)
    code.Isa.Code.methods;
  let chunks = ref [] and cur_stop = ref None and cur_lines = ref [] in
  let flush () =
    chunks := (!cur_stop, List.rev !cur_lines) :: !chunks;
    cur_lines := []
  in
  Array.iter
    (fun off ->
      (match Hashtbl.find_opt anchors off with
      | Some e ->
        flush ();
        cur_stop := Some e
      | None -> ());
      (match Hashtbl.find_opt labels off with
      | Some name -> cur_lines := (name ^ ":") :: !cur_lines
      | None -> ());
      cur_lines := Isa.Disasm.insn_at code off :: !cur_lines)
    code.Isa.Code.offsets;
  flush ();
  List.rev !chunks

let stop_tag (e : Emc.Busstop.entry) =
  Printf.sprintf "@%04x%s" e.Emc.Busstop.be_pc
    (if e.Emc.Busstop.be_elided then " (elided: bridge entry)"
     else if e.Emc.Busstop.be_exit_only then " (exit-only)"
     else "")

let print_opt_diff ~arch (cc : Emc.Compile.compiled_class) la lb =
  let inst l =
    match Emc.Compile.artifact_at cc ~arch_id:arch.Isa.Arch.id ~level:l with
    | Some a -> a
    | None ->
      Printf.eprintf "%s: no -%s instance for %s\n" cc.Emc.Compile.cc_name
        (Emc.Opt.to_string l) arch.Isa.Arch.id;
      exit 1
  in
  let aa = inst la and ab = inst lb in
  Printf.printf "%s/%s: -%s (%d bytes) vs -%s (%d bytes)\n"
    cc.Emc.Compile.cc_name arch.Isa.Arch.id (Emc.Opt.to_string la)
    aa.Emc.Compile.aa_code.Isa.Code.byte_size (Emc.Opt.to_string lb)
    ab.Emc.Compile.aa_code.Isa.Code.byte_size;
  let edits (art : Emc.Compile.arch_artifact) =
    match art.Emc.Compile.aa_edits with
    | [] ->
      Printf.printf "  -%s: no optimizer edits\n"
        (Emc.Opt.to_string art.Emc.Compile.aa_level)
    | es ->
      Printf.printf "  -%s edits (in application order):\n"
        (Emc.Opt.to_string art.Emc.Compile.aa_level);
      List.iter
        (fun e -> Printf.printf "    %s\n" (Format.asprintf "%a" Emc.Opt.pp_edit e))
        es
  in
  edits aa;
  edits ab;
  let ca = chunk_instance aa and cb = chunk_instance ab in
  if List.length ca <> List.length cb then
    (* cannot happen while both instances share the IR's stop set; keep the
       tool usable if an optimizer bug breaks that invariant *)
    Printf.printf "  ! instances disagree on chunk structure (%d vs %d stops+prologue)\n"
      (List.length ca) (List.length cb);
  let width =
    List.fold_left
      (fun w (_, lines) -> List.fold_left (fun w l -> max w (String.length l)) w lines)
      24 ca
  in
  let rec zip xs ys =
    match (xs, ys) with
    | [], [] -> ()
    | (sa, las) :: xs', (sb, lbs) :: ys' ->
      (match (sa, sb) with
      | None, None -> Printf.printf "  -- entry\n"
      | Some (ea : Emc.Busstop.entry), Some eb ->
        if ea.Emc.Busstop.be_id <> eb.Emc.Busstop.be_id then
          Printf.printf "  ! stop order diverges (%d vs %d)\n" ea.Emc.Busstop.be_id
            eb.Emc.Busstop.be_id;
        Printf.printf "  -- stop %d %-10s %s | %s\n" ea.Emc.Busstop.be_id
          (kind_name ea.Emc.Busstop.be_kind) (stop_tag ea) (stop_tag eb)
      | _ -> Printf.printf "  ! instances disagree on the prologue\n");
      let rec cols l r =
        match (l, r) with
        | [], [] -> ()
        | l, r ->
          let hd = function [] -> "" | x :: _ -> x in
          let tl = function [] -> [] | _ :: t -> t in
          Printf.printf "  %-*s | %s\n" width (hd l) (hd r);
          cols (tl l) (tl r)
      in
      cols las lbs;
      zip xs' ys'
    | (_, lines) :: xs', [] ->
      List.iter (fun l -> Printf.printf "  %-*s |\n" width l) lines;
      zip xs' []
    | [], (_, lines) :: ys' ->
      List.iter (fun l -> Printf.printf "  %-*s | %s\n" width "" l) lines;
      zip [] ys'
  in
  zip ca cb

let dis file arch_id cls plans_dst blocks opt_diff =
  let source = In_channel.with_open_text file In_channel.input_all in
  let arch = arch_by_id arch_id in
  let archs =
    match plans_dst with
    | Some id when id <> arch.Isa.Arch.id -> [ arch; arch_by_id id ]
    | _ -> [ arch ]
  in
  let diff_levels =
    match opt_diff with
    | None -> None
    | Some s -> (
      match String.split_on_char ',' s with
      | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some a, Some b when a >= 0 && a <= 2 && b >= 0 && b <= 2 && a <> b ->
          Some (Emc.Opt.of_int a, Emc.Opt.of_int b)
        | _ ->
          Printf.eprintf "--opt-diff wants two distinct levels 0..2, got %s\n" s;
          exit 2)
      | _ ->
        Printf.eprintf "--opt-diff wants LEVEL,LEVEL (for instance 0,2)\n";
        exit 2)
  in
  let levels =
    Option.map (fun (a, b) -> [ a; b ]) diff_levels
  in
  let prog =
    match
      Emc.Compile.compile ?levels
        ~name:(Filename.remove_extension (Filename.basename file)) ~archs source
    with
    | Ok p -> p
    | Error errs ->
      List.iter
        (fun e ->
          Printf.eprintf "%s: %s\n" file (Format.asprintf "%a" Emc.Diag.pp_error e))
        errs;
      exit 1
  in
  let plan_use =
    match plans_dst with
    | None -> None
    | Some id ->
      let cache = Mobility.Conv_plan.create_cache () in
      Mobility.Conv_plan.set_program cache prog;
      Some
        (Mobility.Conv_plan.make_use cache
           { Mobility.Conv_plan.pr_src = arch; pr_dst = arch_by_id id })
  in
  let wanted (cc : Emc.Compile.compiled_class) =
    match cls with None -> true | Some c -> String.equal cc.Emc.Compile.cc_name c
  in
  Array.iteri
    (fun class_index (cc : Emc.Compile.compiled_class) ->
      if wanted cc then begin
        (match diff_levels with
        | Some (la, lb) -> print_opt_diff ~arch cc la lb
        | None ->
          let art = Emc.Compile.artifact cc ~arch_id:arch.Isa.Arch.id in
          print_string (Isa.Disasm.listing art.Emc.Compile.aa_code);
          Format.printf "%a@." Emc.Busstop.pp art.Emc.Compile.aa_stops;
          if blocks then print_blocks art.Emc.Compile.aa_code);
        match plan_use with
        | None -> ()
        | Some use ->
          for stop = 0 to cc.Emc.Compile.cc_ir.Emc.Ir.cl_nstops - 1 do
            match Mobility.Conv_plan.describe use ~class_index ~stop with
            | Some d -> Printf.printf "plan %s stop %d: %s\n" cc.Emc.Compile.cc_name stop d
            | None -> ()
          done
      end)
    prog.Emc.Compile.p_classes

let file_t =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Emerald source file.")

let arch_t =
  Arg.(required & pos 1 (some string) None
       & info [] ~docv:"ARCH" ~doc:"Architecture to disassemble for.")

let class_t =
  Arg.(value & pos 2 (some string) None
       & info [] ~docv:"CLASS" ~doc:"Restrict the listing to this class.")

let plans_t =
  Arg.(value & opt (some string) None
       & info [ "plans" ] ~docv:"DST"
           ~doc:"Also print the compiled conversion plans for migrations from \
                 ARCH to this destination architecture.")

let blocks_t =
  Arg.(value & flag
       & info [ "blocks" ]
           ~doc:"Print the basic-block partition the threaded-dispatch \
                 translator uses, marking blocks that get superinstruction \
                 fusion (compare-branch, poll-branch).")

let opt_diff_t =
  Arg.(value & opt (some string) None
       & info [ "opt-diff" ] ~docv:"LEVEL,LEVEL"
           ~doc:"Compile two code instances of each class (for instance 0,2) \
                 and print them in two columns, aligned at their shared bus \
                 stops, with the optimizer's edit provenance and elided \
                 stops (bridge entry points) annotated.")

let cmd =
  let doc = "disassemble native code next to its bus-stop table" in
  Cmd.v (Cmd.info "emdis" ~doc)
    Term.(const dis $ file_t $ arch_t $ class_t $ plans_t $ blocks_t $ opt_diff_t)

let () = exit (Cmd.eval cmd)
