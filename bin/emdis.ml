(* emdis: disassemble the native code generated for one architecture,
   side by side with its bus-stop table.

     emdis FILE ARCH [CLASS] [--plans DST] *)

open Cmdliner

let arch_by_id id =
  try Isa.Arch.by_id id
  with Not_found ->
    Printf.eprintf "unknown architecture %s (have: %s)\n" id
      (String.concat ", " (List.map (fun a -> a.Isa.Arch.id) Isa.Arch.all));
    exit 2

(* the basic-block partition the threaded-dispatch translator will use,
   with the superinstruction fusions it would apply *)
let print_blocks (code : Isa.Code.t) =
  Printf.printf "blocks %s/%s:\n" code.Isa.Code.class_name
    code.Isa.Code.arch.Isa.Arch.id;
  List.iter
    (fun (b : Isa.Dispatch.block) ->
      let fused =
        match b.Isa.Dispatch.b_fused with
        | [] -> ""
        | l ->
          "  fused "
          ^ String.concat ", "
              (List.map
                 (fun i ->
                   let kind =
                     match code.Isa.Code.insns.(i) with
                     | Isa.Insn.Cmp _ -> "cmp+bcc"
                     | Isa.Insn.Poll _ -> "poll+br"
                     | _ -> "?"
                   in
                   Printf.sprintf "@%d (%s)" i kind)
                 l)
      in
      Printf.printf "  [%4d..%4d]  0x%04x..0x%04x  %d insns%s\n"
        b.Isa.Dispatch.b_first b.Isa.Dispatch.b_last
        code.Isa.Code.offsets.(b.Isa.Dispatch.b_first)
        code.Isa.Code.offsets.(b.Isa.Dispatch.b_last)
        (b.Isa.Dispatch.b_last - b.Isa.Dispatch.b_first + 1)
        fused)
    (Isa.Dispatch.describe_blocks code)

let dis file arch_id cls plans_dst blocks =
  let source = In_channel.with_open_text file In_channel.input_all in
  let arch = arch_by_id arch_id in
  let archs =
    match plans_dst with
    | Some id when id <> arch.Isa.Arch.id -> [ arch; arch_by_id id ]
    | _ -> [ arch ]
  in
  let prog =
    match
      Emc.Compile.compile ~name:(Filename.remove_extension (Filename.basename file))
        ~archs source
    with
    | Ok p -> p
    | Error errs ->
      List.iter
        (fun e ->
          Printf.eprintf "%s: %s\n" file (Format.asprintf "%a" Emc.Diag.pp_error e))
        errs;
      exit 1
  in
  let plan_use =
    match plans_dst with
    | None -> None
    | Some id ->
      let cache = Mobility.Conv_plan.create_cache () in
      Mobility.Conv_plan.set_program cache prog;
      Some
        (Mobility.Conv_plan.make_use cache
           { Mobility.Conv_plan.pr_src = arch; pr_dst = arch_by_id id })
  in
  let wanted (cc : Emc.Compile.compiled_class) =
    match cls with None -> true | Some c -> String.equal cc.Emc.Compile.cc_name c
  in
  Array.iteri
    (fun class_index (cc : Emc.Compile.compiled_class) ->
      if wanted cc then begin
        let art = Emc.Compile.artifact cc ~arch_id:arch.Isa.Arch.id in
        print_string (Isa.Disasm.listing art.Emc.Compile.aa_code);
        Format.printf "%a@." Emc.Busstop.pp art.Emc.Compile.aa_stops;
        if blocks then print_blocks art.Emc.Compile.aa_code;
        match plan_use with
        | None -> ()
        | Some use ->
          for stop = 0 to cc.Emc.Compile.cc_ir.Emc.Ir.cl_nstops - 1 do
            match Mobility.Conv_plan.describe use ~class_index ~stop with
            | Some d -> Printf.printf "plan %s stop %d: %s\n" cc.Emc.Compile.cc_name stop d
            | None -> ()
          done
      end)
    prog.Emc.Compile.p_classes

let file_t =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Emerald source file.")

let arch_t =
  Arg.(required & pos 1 (some string) None
       & info [] ~docv:"ARCH" ~doc:"Architecture to disassemble for.")

let class_t =
  Arg.(value & pos 2 (some string) None
       & info [] ~docv:"CLASS" ~doc:"Restrict the listing to this class.")

let plans_t =
  Arg.(value & opt (some string) None
       & info [ "plans" ] ~docv:"DST"
           ~doc:"Also print the compiled conversion plans for migrations from \
                 ARCH to this destination architecture.")

let blocks_t =
  Arg.(value & flag
       & info [ "blocks" ]
           ~doc:"Print the basic-block partition the threaded-dispatch \
                 translator uses, marking blocks that get superinstruction \
                 fusion (compare-branch, poll-branch).")

let cmd =
  let doc = "disassemble native code next to its bus-stop table" in
  Cmd.v (Cmd.info "emdis" ~doc)
    Term.(const dis $ file_t $ arch_t $ class_t $ plans_t $ blocks_t)

let () = exit (Cmd.eval cmd)
