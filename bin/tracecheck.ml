(* tracecheck: validate a Chrome tracing JSON file produced by
   `emrun --trace-out` (or any Trace Event Format document with a
   traceEvents array).  Checks well-formed JSON, that every event is an
   object carrying a string name/ph and a numeric ts, and that ts is
   non-decreasing.  Exit 0 and print the event count on success; exit 1
   with the defect on failure.  CI runs this over the bench artifact. *)

let () =
  match Sys.argv with
  | [| _; path |] -> (
    match Obs.Trace.validate_file path with
    | Ok n ->
      Printf.printf "%s: ok (%d events)\n" path n;
      exit 0
    | Error msg ->
      Printf.eprintf "%s: INVALID: %s\n" path msg;
      exit 1)
  | _ ->
    prerr_endline "usage: tracecheck TRACE.json";
    exit 2
