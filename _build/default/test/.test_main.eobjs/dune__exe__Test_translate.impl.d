test/test_translate.ml: Alcotest Emc Enet Ert Int32 Isa List Mobility Option Printf QCheck QCheck_alcotest
