test/test_checkpoint.ml: Alcotest Core Ert Int32 Isa List Mobility QCheck QCheck_alcotest
