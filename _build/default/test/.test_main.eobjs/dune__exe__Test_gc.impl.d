test/test_gc.ml: Alcotest Core Ert Int32 Isa List
