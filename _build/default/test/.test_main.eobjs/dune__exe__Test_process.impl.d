test/test_process.ml: Alcotest Core Emc Ert Format Int32 Isa List
