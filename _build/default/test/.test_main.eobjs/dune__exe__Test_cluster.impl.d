test/test_cluster.ml: Alcotest Core Enet Ert Format Int32 Isa List Mobility
