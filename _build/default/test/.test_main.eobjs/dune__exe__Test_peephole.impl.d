test/test_peephole.ml: Alcotest Array Core Emc Ert Int32 Isa List
