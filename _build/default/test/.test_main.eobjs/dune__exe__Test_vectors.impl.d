test/test_vectors.ml: Alcotest Core Emc Ert Format Int32 Isa List Printf String
