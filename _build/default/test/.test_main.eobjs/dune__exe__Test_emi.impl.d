test/test_emi.ml: Alcotest Core Emc Emi Ert Int32 Isa List Option
