test/test_preemption.ml: Alcotest Core Emc Ert Int32 Isa List Option String
