test/test_failures.ml: Alcotest Core Enet Ert Int32 Isa String
