test/test_location.ml: Alcotest Core Enet Ert Int32 Isa Option String
