test/test_random_migration.ml: Array Buffer Core Ert Int32 Isa List Printf QCheck QCheck_alcotest
