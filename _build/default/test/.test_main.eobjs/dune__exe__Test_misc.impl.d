test/test_misc.ml: Alcotest Array Core Emc Enet Ert Int32 Isa List String
