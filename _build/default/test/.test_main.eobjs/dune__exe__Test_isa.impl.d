test/test_isa.ml: Alcotest Float Int32 Isa List QCheck QCheck_alcotest
