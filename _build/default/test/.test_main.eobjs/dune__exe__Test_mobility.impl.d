test/test_mobility.ml: Alcotest Core Ert Format Int32 Isa List String
