test/test_conditions.ml: Alcotest Core Emc Ert Int32 Isa List
