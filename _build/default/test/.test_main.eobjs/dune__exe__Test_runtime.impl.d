test/test_runtime.ml: Alcotest Emc Ert Format Int32 Isa List Printf QCheck QCheck_alcotest String
