test/test_compiler.ml: Alcotest Array Emc Int32 Isa List Option
