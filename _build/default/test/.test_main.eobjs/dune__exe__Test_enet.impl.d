test/test_enet.ml: Alcotest Enet Float Int32 Printf QCheck QCheck_alcotest String
