test/test_bridging.ml: Alcotest Array List Mobility Printf QCheck QCheck_alcotest String
