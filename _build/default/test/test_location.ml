(* The location-search protocol: when forwarding chains are broken (a
   stale or collected proxy), the node probes every other machine —
   Emerald's broadcast search — parks the invocation, and re-routes it
   when an answer comes back. *)

module A = Isa.Arch
module V = Ert.Value

let check = Alcotest.check

let src =
  {|
object Target
  var v : int <- 0
  operation poke[] -> [r : int]
    v <- v + 1
    r <- v * 100 + thisnode
  end poke
end Target

object Mover
  operation relocate[t : Target, dest : int]
    move t to dest
  end relocate
end Mover

object Caller
  operation call[t : Target] -> [r : int]
    r <- t.poke[]
  end call
end Caller
|}

let test_search_after_collected_proxy () =
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.vax; A.sun3 ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"loc" src);
  (* the target is born on node 1 and moved to node 2 *)
  let target = Core.Cluster.create_object cl ~node:1 ~class_name:"Target" in
  let mover = Core.Cluster.create_object cl ~node:1 ~class_name:"Mover" in
  let mt =
    Core.Cluster.spawn cl ~node:1 ~target:mover ~op:"relocate"
      ~args:[ V.Vref target; V.Vint 2l ]
  in
  Core.Cluster.run cl;
  ignore (Core.Cluster.result cl mt);
  check (Alcotest.option Alcotest.int) "target on node 2" (Some 2)
    (Core.Cluster.where_is cl target);
  (* collect node 1: nothing references the forwarding proxy any more *)
  ignore (Ert.Gc.collect ~extra_roots:[ mover ] (Core.Cluster.kernel cl 1));
  check (Alcotest.option Alcotest.int) "proxy collected" None
    (Option.map (fun _ -> 1) (Ert.Kernel.proxy_of (Core.Cluster.kernel cl 1) target));
  (* node 0 knows only the creator hint (node 1), which now knows nothing:
     the invocation must trigger a search and still succeed *)
  let caller = Core.Cluster.create_object cl ~node:0 ~class_name:"Caller" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:caller ~op:"call" ~args:[ V.Vref target ]
  in
  let probes_before = Enet.Netsim.messages_sent (Core.Cluster.network cl) in
  match Core.Cluster.run_until_result cl tid with
  | Some (V.Vint v) ->
    check Alcotest.int "poked on node 2" 102 (Int32.to_int v);
    let traffic = Enet.Netsim.messages_sent (Core.Cluster.network cl) - probes_before in
    (* invoke + probes + answers + re-routed invoke + reply: > 4 messages *)
    if traffic <= 4 then
      Alcotest.failf "expected search traffic, saw only %d messages" traffic
  | _ -> Alcotest.fail "no result"

let test_search_object_truly_lost () =
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.vax; A.sun3 ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"loc" src);
  let target = Core.Cluster.create_object cl ~node:1 ~class_name:"Target" in
  let mover = Core.Cluster.create_object cl ~node:1 ~class_name:"Mover" in
  let mt =
    Core.Cluster.spawn cl ~node:1 ~target:mover ~op:"relocate"
      ~args:[ V.Vref target; V.Vint 2l ]
  in
  Core.Cluster.run cl;
  ignore (Core.Cluster.result cl mt);
  ignore (Ert.Gc.collect ~extra_roots:[ mover ] (Core.Cluster.kernel cl 1));
  (* the object's host dies: every probe comes back negative *)
  Core.Cluster.crash_node cl 2;
  let caller = Core.Cluster.create_object cl ~node:0 ~class_name:"Caller" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:caller ~op:"call" ~args:[ V.Vref target ]
  in
  match Core.Cluster.run_until_result cl tid with
  | _ -> Alcotest.fail "the object is gone; the call cannot succeed"
  | exception Core.Cluster.Thread_unavailable reason ->
    if not (String.length reason > 0) then Alcotest.fail "empty reason"

let suites =
  [
    ( "location",
      [
        Alcotest.test_case "search finds a moved object" `Quick
          test_search_after_collected_proxy;
        Alcotest.test_case "search reports lost objects" `Quick
          test_search_object_truly_lost;
      ] );
  ]
