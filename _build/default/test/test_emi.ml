(* The thread-state specialization hierarchy (Figure 2): the same program
   must compute the same results at the source-interpretation,
   IR-interpretation and native-execution levels. *)

module A = Isa.Arch
module MV = Emi.Mvalue

let check = Alcotest.check

let src =
  {|
object Helper
  var bias : int <- 3
  operation scale[x : int] -> [r : int]
    r <- x * 2 + bias
  end scale
end Helper

object Main
  operation start[n : int] -> [r : int]
    var h : Helper <- new Helper
    var i : int <- 0
    var acc : int <- 0
    var label : string <- "acc"
    loop
      exit when i >= n
      i <- i + 1
      acc <- acc + h.scale[i]
    end loop
    if label == "acc" then
      print[label, "=", acc]
    end if
    r <- acc
  end start
end Main
|}

let expected n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + (i * 2) + 3
  done;
  !acc

let run_source n =
  let ast = Emc.Parser.parse_program src in
  let tprog = Emc.Typecheck.check ast in
  Emi.Ast_interp.run tprog ~class_name:"Main" ~op:"start" ~args:[ MV.Int (Int32.of_int n) ]

let run_ir n =
  let ast = Emc.Parser.parse_program src in
  let tprog = Emc.Typecheck.check ast in
  let ir = Emc.Lower.lower_program ~name:"emi" tprog in
  Emi.Ir_interp.run ir ~class_name:"Main" ~op:"start" ~args:[ MV.Int (Int32.of_int n) ]

let run_native arch n =
  let prog = Emc.Compile.compile_exn ~name:"emi" ~archs:[ arch ] src in
  let k = Ert.Kernel.create ~node_id:0 ~arch () in
  Ert.Kernel.load_program k prog;
  let cc = Option.get (Emc.Compile.find_class prog "Main") in
  let addr = Ert.Kernel.create_object k ~class_index:cc.Emc.Compile.cc_index in
  let tid =
    Ert.Kernel.spawn_root k ~target_addr:addr ~method_name:"start"
      ~args:[ Ert.Value.Vint (Int32.of_int n) ]
  in
  let rec loop i =
    if i > 500000 then Alcotest.fail "native run diverged";
    match Ert.Kernel.root_result k tid with
    | Some (Some (Ert.Value.Vint v)) -> (Int32.to_int v, Ert.Kernel.output k)
    | Some _ -> Alcotest.fail "bad result"
    | None ->
      ignore (Ert.Kernel.step k);
      loop (i + 1)
  in
  loop 0

let test_three_levels_agree () =
  let n = 25 in
  let want = expected n in
  let r_src = run_source n in
  let r_ir = run_ir n in
  (match r_src.Emi.Ast_interp.value with
  | Some (MV.Int v) -> check Alcotest.int "source value" want (Int32.to_int v)
  | _ -> Alcotest.fail "source: no int result");
  (match r_ir.Emi.Ir_interp.value with
  | Some (MV.Int v) -> check Alcotest.int "IR value" want (Int32.to_int v)
  | _ -> Alcotest.fail "IR: no int result");
  check Alcotest.string "source/IR output agree" r_src.Emi.Ast_interp.output
    r_ir.Emi.Ir_interp.output;
  List.iter
    (fun arch ->
      let v, out = run_native arch n in
      check Alcotest.int (arch.A.id ^ " native value") want v;
      check Alcotest.string (arch.A.id ^ " native output") r_src.Emi.Ast_interp.output out)
    A.all

let test_step_counts_sane () =
  let r_src = run_source 50 in
  let r_ir = run_ir 50 in
  if r_src.Emi.Ast_interp.steps <= 0 || r_ir.Emi.Ir_interp.steps <= 0 then
    Alcotest.fail "interpreters must report work"

let test_fib_levels () =
  let fib_src = Core.Workloads.fig2_src in
  let ast = Emc.Parser.parse_program fib_src in
  let tprog = Emc.Typecheck.check ast in
  let ir = Emc.Lower.lower_program ~name:"fib" tprog in
  let n = 12 in
  let a =
    Emi.Ast_interp.run tprog ~class_name:"Main" ~op:"start"
      ~args:[ MV.Int (Int32.of_int n) ]
  in
  let b =
    Emi.Ir_interp.run ir ~class_name:"Main" ~op:"start" ~args:[ MV.Int (Int32.of_int n) ]
  in
  match a.Emi.Ast_interp.value, b.Emi.Ir_interp.value with
  | Some (MV.Int x), Some (MV.Int y) ->
    check Alcotest.int "fib agree" (Int32.to_int x) (Int32.to_int y);
    check Alcotest.int "fib(12)" 144 (Int32.to_int x)
  | _ -> Alcotest.fail "fib: missing results"

let suites =
  [
    ( "emi",
      [
        Alcotest.test_case "three levels agree" `Quick test_three_levels_agree;
        Alcotest.test_case "step counts" `Quick test_step_counts_sane;
        Alcotest.test_case "fib at the MI levels" `Quick test_fib_levels;
      ] );
  ]
