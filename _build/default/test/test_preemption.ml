(* Preemptive (Trellis/Owl-style) scheduling: control may be taken from a
   thread anywhere, so a thread can be parked between bus stops; before
   migration its state is made well-defined by executing it forward to
   the next stop (section 2.2.1).  These tests run the same programs
   under both control-transfer disciplines and compare. *)

module A = Isa.Arch
module V = Ert.Value

let check = Alcotest.check

let run_with ?quantum archs src ~cls ~op ~args =
  let cl = Core.Cluster.create ?quantum ~archs () in
  ignore (Core.Cluster.compile_and_load cl ~name:"pre" src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:cls in
  let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op ~args in
  Core.Cluster.run_until_result cl tid

let compute_src =
  {|
object Main
  operation start[] -> [r : int]
    var i : int <- 0
    var acc : int <- 7
    loop
      exit when i >= 200
      i <- i + 1
      acc <- acc * 3 + i - acc / 2
    end loop
    r <- acc
  end start
end Main
|}

let test_same_results_under_quantum () =
  List.iter
    (fun arch ->
      let a = run_with [ arch ] compute_src ~cls:"Main" ~op:"start" ~args:[] in
      List.iter
        (fun q ->
          let b = run_with ~quantum:q [ arch ] compute_src ~cls:"Main" ~op:"start" ~args:[] in
          if a <> b then
            Alcotest.failf "%s: quantum %d changed the result" arch.A.id q)
        [ 5; 17; 100 ])
    [ A.vax; A.sparc; A.sun3 ]

let interleave_src =
  {|
object Counter
  var n : int <- 0
  monitor operation bump[] -> [r : int]
    n <- n + 1
    r <- n
  end bump
end Counter

object Worker
  operation work[c : Counter, rounds : int] -> [r : int]
    var i : int <- 0
    var last : int <- 0
    loop
      exit when i >= rounds
      i <- i + 1
      last <- c.bump[]
    end loop
    r <- last
  end work
end Worker
|}

let test_preemptive_interleaving_safe () =
  (* tiny quantum: threads are preempted constantly, including inside the
     monitor body between its bus stops; mutual exclusion must hold *)
  let cl = Core.Cluster.create ~quantum:7 ~archs:[ A.sparc ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"pre" interleave_src);
  let c = Core.Cluster.create_object cl ~node:0 ~class_name:"Counter" in
  let tids =
    List.init 3 (fun _ ->
        let w = Core.Cluster.create_object cl ~node:0 ~class_name:"Worker" in
        Core.Cluster.spawn cl ~node:0 ~target:w ~op:"work"
          ~args:[ V.Vref c; V.Vint 20l ])
  in
  Core.Cluster.run cl;
  let finals =
    List.map
      (fun t ->
        match Core.Cluster.result cl t with
        | Some (Some (V.Vint v)) -> Int32.to_int v
        | _ -> Alcotest.fail "worker did not finish")
      tids
  in
  check Alcotest.int "60 bumps, each exactly once" 60 (List.fold_left max 0 finals)

let migrate_src =
  {|
object Agent
  operation go[] -> [r : int]
    var i : int <- 0
    var acc : int <- 0
    loop
      exit when i >= 40
      i <- i + 1
      acc <- acc + i * i
    end loop
    move self to 1
    loop
      exit when i >= 80
      i <- i + 1
      acc <- acc + i
    end loop
    r <- acc * 10 + thisnode
  end go
end Agent
|}

let pair_name archs = String.concat "<->" (List.map (fun a -> a.A.id) archs)

let test_migration_under_preemption () =
  (* a second thread keeps the node busy so the agent is routinely parked
     mid-computation when the scheduler rotates; migration must still see
     well-defined states *)
  let expected =
    let acc = ref 0 in
    for i = 1 to 40 do
      acc := !acc + (i * i)
    done;
    for i = 41 to 80 do
      acc := !acc + i
    done;
    (!acc * 10) + 1
  in
  List.iter
    (fun pair ->
      let cl = Core.Cluster.create ~quantum:9 ~archs:pair () in
      ignore (Core.Cluster.compile_and_load cl ~name:"pre" migrate_src);
      let a1 = Core.Cluster.create_object cl ~node:0 ~class_name:"Agent" in
      let a2 = Core.Cluster.create_object cl ~node:0 ~class_name:"Agent" in
      let t1 = Core.Cluster.spawn cl ~node:0 ~target:a1 ~op:"go" ~args:[] in
      let t2 = Core.Cluster.spawn cl ~node:0 ~target:a2 ~op:"go" ~args:[] in
      Core.Cluster.run cl;
      List.iter
        (fun t ->
          match Core.Cluster.result cl t with
          | Some (Some (V.Vint v)) ->
            check Alcotest.int (pair_name pair) expected (Int32.to_int v)
          | _ -> Alcotest.fail "agent did not finish")
        [ t1; t2 ])
    [ [ A.sparc; A.vax ]; [ A.sun3; A.sparc ]; [ A.hp9000_433; A.sun3 ] ]

let test_advance_to_stop_direct () =
  (* drive the kernel by hand: preempt mid-arithmetic, check the PC is not
     a stop, advance, check it is *)
  let arch = A.vax in
  let prog = Emc.Compile.compile_exn ~name:"adv" ~archs:[ arch ] compute_src in
  let k = Ert.Kernel.create ~node_id:0 ~arch () in
  Ert.Kernel.load_program k prog;
  Ert.Kernel.set_quantum k (Some 3);
  let cc = Option.get (Emc.Compile.find_class prog "Main") in
  let addr = Ert.Kernel.create_object k ~class_index:cc.Emc.Compile.cc_index in
  let _tid = Ert.Kernel.spawn_root k ~target_addr:addr ~method_name:"start" ~args:[] in
  (* find a moment where the (only) segment is parked between stops *)
  let rec hunt n =
    if n > 3000 then Alcotest.fail "never saw a mid-flight preemption";
    ignore (Ert.Kernel.step k);
    match Ert.Kernel.segments k with
    | [ seg ] when not (Ert.Kernel.at_stop k seg) -> seg
    | _ -> hunt (n + 1)
  in
  let seg = hunt 0 in
  let outs = Ert.Kernel.advance_to_stop k seg in
  check Alcotest.int "no cross-node actions" 0 (List.length outs);
  if not (Ert.Kernel.at_stop k seg) then
    Alcotest.fail "advance_to_stop must land on a bus stop"

let suites =
  [
    ( "preemption",
      [
        Alcotest.test_case "results agree across disciplines" `Quick
          test_same_results_under_quantum;
        Alcotest.test_case "monitors safe under preemption" `Quick
          test_preemptive_interleaving_safe;
        Alcotest.test_case "migration under preemption" `Quick
          test_migration_under_preemption;
        Alcotest.test_case "advance_to_stop lands on a stop" `Quick
          test_advance_to_stop_direct;
      ] );
  ]
