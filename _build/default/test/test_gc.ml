(* Garbage-collector tests: pointer identification through the bus-stop
   templates, with threads suspended mid-computation. *)

module A = Isa.Arch
module V = Ert.Value

let check = Alcotest.check

let garbage_src =
  {|
object Cell
  var v : int <- 0
  operation set[x : int]
    v <- x
  end set
  operation get[] -> [r : int]
    r <- v
  end get
end Cell

object Main
  var keep : Cell <- nil

  operation churn[n : int] -> [r : int]
    var i : int <- 0
    loop
      exit when i >= n
      i <- i + 1
      var tmp : Cell <- new Cell
      tmp.set[i]
      var s : string <- "garbage " + "string"
      if s == "" then
        keep <- tmp
      end if
    end loop
    keep <- new Cell
    keep.set[42]
    r <- keep.get[]
  end churn
end Main
|}

let setup archs =
  let cl = Core.Cluster.create ~archs () in
  ignore (Core.Cluster.compile_and_load cl ~name:"gc" garbage_src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  (cl, main)

let test_collects_garbage () =
  List.iter
    (fun arch ->
      let cl, main = setup [ arch ] in
      let tid =
        Core.Cluster.spawn cl ~node:0 ~target:main ~op:"churn"
          ~args:[ V.Vint 50l ]
      in
      let r = Core.Cluster.run_until_result cl tid in
      check Alcotest.int (arch.A.id ^ " result") 42
        (match r with
        | Some (V.Vint v) -> Int32.to_int v
        | _ -> -1);
      let k = Core.Cluster.kernel cl 0 in
      let stats = Ert.Gc.collect ~extra_roots:[ main ] k in
      (* 50 dead cells and 100+ dead strings must go *)
      if stats.Ert.Gc.gc_swept < 50 then
        Alcotest.failf "%s: expected >= 50 swept blocks, got %d" arch.A.id
          stats.Ert.Gc.gc_swept;
      if stats.Ert.Gc.gc_bytes_freed <= 0 then Alcotest.fail "no bytes freed")
    A.all

let test_preserves_reachable_mid_run () =
  List.iter
    (fun arch ->
      let cl, main = setup [ arch ] in
      let tid =
        Core.Cluster.spawn cl ~node:0 ~target:main ~op:"churn"
          ~args:[ V.Vint 30l ]
      in
      (* interleave collection with execution: every live value the thread
         still needs is protected by the per-stop templates *)
      let k = Core.Cluster.kernel cl 0 in
      let steps = ref 0 in
      let rec go () =
        match Core.Cluster.result cl tid with
        | Some r -> r
        | None ->
          if not (Core.Cluster.step_once cl) then Alcotest.fail "quiescent without result";
          incr steps;
          if !steps mod 7 = 0 then ignore (Ert.Gc.collect ~extra_roots:[ main ] k);
          go ()
      in
      let r = go () in
      check Alcotest.int (arch.A.id ^ " result") 42
        (match r with
        | Some (V.Vint v) -> Int32.to_int v
        | _ -> -1))
    [ A.vax; A.sun3; A.sparc ]

let test_gc_idempotent () =
  let cl, main = setup [ A.sparc ] in
  let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"churn" ~args:[ V.Vint 10l ] in
  ignore (Core.Cluster.run_until_result cl tid);
  let k = Core.Cluster.kernel cl 0 in
  ignore (Ert.Gc.collect ~extra_roots:[ main ] k);
  let second = Ert.Gc.collect ~extra_roots:[ main ] k in
  check Alcotest.int "second collection sweeps nothing" 0 second.Ert.Gc.gc_swept

let test_gc_after_migration () =
  (* after an object moves away, its stale blocks on the source are garbage
     (the forwarding proxy is kept alive only while referenced) *)
  let src =
    {|
object Agent
  operation go[] -> [r : int]
    var s : string <- "payload"
    move self to 1
    if s == "payload" then
      r <- 7
    else
      r <- 0
    end if
  end go
end Agent

object Main
  operation start[] -> [r : int]
    var a : Agent <- new Agent
    r <- a.go[]
  end start
end Main
|}
  in
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.vax ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"gcmove" src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
  let r = Core.Cluster.run_until_result cl tid in
  check Alcotest.int "result" 7
    (match r with
    | Some (V.Vint v) -> Int32.to_int v
    | _ -> -1);
  let s0 = Ert.Gc.collect ~extra_roots:[ main ] (Core.Cluster.kernel cl 0) in
  let s1 = Ert.Gc.collect (Core.Cluster.kernel cl 1) in
  if s0.Ert.Gc.gc_swept = 0 then Alcotest.fail "source node should have garbage";
  ignore s1

let test_automatic_collection () =
  (* a tight threshold forces collections during the run; the program must
     be unaffected and collections must actually happen *)
  let cl = Core.Cluster.create ~gc_threshold:(8 * 1024) ~archs:[ A.sparc; A.vax ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"autogc" garbage_src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:main ~op:"churn" ~args:[ V.Vint 200l ]
  in
  (match Core.Cluster.run_until_result cl tid with
  | Some (V.Vint 42l) -> ()
  | _ -> Alcotest.fail "wrong result under automatic GC");
  if Core.Cluster.collections cl = 0 then
    Alcotest.fail "expected at least one automatic collection"

let suites =
  [
    ( "gc",
      [
        Alcotest.test_case "collects garbage on every architecture" `Quick
          test_collects_garbage;
        Alcotest.test_case "preserves reachable values mid-run" `Quick
          test_preserves_reachable_mid_run;
        Alcotest.test_case "idempotent" `Quick test_gc_idempotent;
        Alcotest.test_case "after migration" `Quick test_gc_after_migration;
        Alcotest.test_case "automatic collection" `Quick test_automatic_collection;
      ] );
  ]
