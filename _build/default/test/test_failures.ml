(* Failure injection: node crashes.

   Emerald's design brief (quoted in section 1): "node crashes are
   considered normal, expected events.  We want to minimize residual
   dependencies, e.g., by co-locating threads with the objects within
   which they are executing."  These tests check exactly that: work whose
   state is entirely elsewhere survives a crash; work whose call chain
   passes through the dead node becomes unavailable rather than hanging. *)

module A = Isa.Arch
module V = Ert.Value

let check = Alcotest.check

let spin_src =
  {|
object Spinner
  operation spin[n : int] -> [r : int]
    var i : int <- 0
    var acc : int <- 0
    loop
      exit when i >= n
      i <- i + 1
      acc <- acc + i
    end loop
    r <- acc
  end spin
end Spinner
|}

let test_unrelated_node_crash_is_harmless () =
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.vax; A.sun3 ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"spin" spin_src);
  let s = Core.Cluster.create_object cl ~node:0 ~class_name:"Spinner" in
  let tid = Core.Cluster.spawn cl ~node:0 ~target:s ~op:"spin" ~args:[ V.Vint 100l ] in
  (* run a little, then kill an uninvolved machine *)
  for _ = 1 to 10 do
    ignore (Core.Cluster.step_once cl)
  done;
  Core.Cluster.crash_node cl 2;
  match Core.Cluster.run_until_result cl tid with
  | Some (V.Vint v) -> check Alcotest.int "result" 5050 (Int32.to_int v)
  | _ -> Alcotest.fail "expected a result"

let remote_callee_src =
  {|
object Server
  operation slow[n : int] -> [r : int]
    var i : int <- 0
    loop
      exit when i >= n
      i <- i + 1
    end loop
    r <- n
  end slow
end Server

object Main
  operation start[] -> [r : int]
    var s : Server <- new Server
    move s to 1
    r <- s.slow[100000]
  end start
end Main
|}

let test_callee_node_crash_makes_thread_unavailable () =
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.vax ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"crash" remote_callee_src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
  (* run until the callee is grinding on node 1 *)
  let rec until_remote n =
    if n > 50_000 then Alcotest.fail "callee never started remotely";
    if Ert.Kernel.live_segment_count (Core.Cluster.kernel cl 1) = 0 then begin
      ignore (Core.Cluster.step_once cl);
      until_remote (n + 1)
    end
  in
  until_remote 0;
  Core.Cluster.crash_node cl 1;
  (match Core.Cluster.run_until_result cl tid with
  | _ -> Alcotest.fail "the thread's callee died; it cannot produce a result"
  | exception Core.Cluster.Thread_unavailable reason ->
    if not (String.length reason > 0) then Alcotest.fail "empty reason");
  check Alcotest.bool "failure recorded" true
    (Core.Cluster.thread_failure cl tid <> None)

let migrated_work_src =
  {|
object Agent
  operation work[] -> [r : int]
    move self to 1
    var i : int <- 0
    var acc : int <- 0
    loop
      exit when i >= 50
      i <- i + 1
      acc <- acc + i
    end loop
    print["computed ", acc, " on node ", thisnode]
    r <- acc
  end work
end Agent

object Main
  operation start[] -> [r : int]
    var a : Agent <- new Agent
    r <- a.work[]
  end start
end Main
|}

let test_migrated_work_survives_home_crash () =
  (* the agent took its state with it; killing its birthplace severs only
     the return path — the computation itself completes on node 1 *)
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.sun3 ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"survive" migrated_work_src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
  let rec until_arrived n =
    if n > 50_000 then Alcotest.fail "agent never arrived";
    if Ert.Kernel.live_segment_count (Core.Cluster.kernel cl 1) = 0 then begin
      ignore (Core.Cluster.step_once cl);
      until_arrived (n + 1)
    end
  in
  until_arrived 0;
  Core.Cluster.crash_node cl 0;
  Core.Cluster.run cl;
  (* the agent finished its computation on the surviving node... *)
  let out = Core.Cluster.output cl ~node:1 in
  if
    not
      (String.length out > 0
      && String.length out >= 8
      && String.sub out 0 8 = "computed")
  then Alcotest.failf "agent did not finish on node 1 (output: %S)" out;
  (* ...but the result had nowhere to return to *)
  check Alcotest.bool "thread marked unavailable" true
    (Core.Cluster.thread_failure cl tid <> None)

let test_messages_to_dead_node_drop () =
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.vax ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"drop" remote_callee_src);
  Core.Cluster.crash_node cl 1;
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
  (* the move to the dead node is dropped; the mover keeps running but its
     invocation can never be served *)
  match Core.Cluster.run_until_result cl ~max_events:200_000 tid with
  | _ -> Alcotest.fail "expected unavailability"
  | exception Core.Cluster.Thread_unavailable _ -> ()

let moving_agent_src =
  {|
object Agent
  operation go[] -> [r : int]
    move self to 1
    r <- thisnode
  end go
end Agent

object Main
  operation start[] -> [r : int]
    var a : Agent <- new Agent
    r <- a.go[]
  end start
end Main
|}

let test_crash_while_move_in_flight () =
  (* the destination dies while the move payload — object, monitor state
     and the mover's activation records — is on the wire: the payload is
     lost and the thread riding in it is aborted *)
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.vax ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"inflight" moving_agent_src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
  (* step until the agent has been evicted from the source but nothing has
     arrived at the destination: the payload is in flight *)
  let k1 = Core.Cluster.kernel cl 1 in
  let rec until_in_flight n =
    if n > 50_000 then Alcotest.fail "move never started";
    if
      Enet.Netsim.messages_sent (Core.Cluster.network cl) > 0
      && Ert.Kernel.live_segment_count k1 = 0
      && Ert.Kernel.objects k1 = []
    then ()
    else begin
      ignore (Core.Cluster.step_once cl);
      until_in_flight (n + 1)
    end
  in
  until_in_flight 0;
  Core.Cluster.crash_node cl 1;
  (match Core.Cluster.run_until_result cl tid with
  | _ -> Alcotest.fail "the mover rode in the lost payload"
  | exception Core.Cluster.Thread_unavailable _ -> ());
  check Alcotest.bool "failure recorded" true
    (Core.Cluster.thread_failure cl tid <> None)

let suites =
  [
    ( "failures",
      [
        Alcotest.test_case "unrelated crash is harmless" `Quick
          test_unrelated_node_crash_is_harmless;
        Alcotest.test_case "callee crash makes thread unavailable" `Quick
          test_callee_node_crash_makes_thread_unavailable;
        Alcotest.test_case "migrated work survives home crash" `Quick
          test_migrated_work_survives_home_crash;
        Alcotest.test_case "messages to dead nodes drop" `Quick
          test_messages_to_dead_node_drop;
        Alcotest.test_case "crash while a move is in flight" `Quick
          test_crash_while_move_in_flight;
      ] );
  ]
