(* Monitor condition variables: wait releases the monitor and queues the
   thread on the condition; signal moves one waiter to the entry queue
   (Mesa semantics).  Condition queues are part of the object's monitor
   state, so they migrate with it. *)

module A = Isa.Arch
module V = Ert.Value

let check = Alcotest.check

let bounded_buffer_src =
  {|
object Buffer
  var slot : int <- 0
  var full : bool <- false
  condition nonempty
  condition nonfull

  monitor operation put[v : int]
    loop
      exit when not full
      wait nonfull
    end loop
    slot <- v
    full <- true
    signal nonempty
  end put

  monitor operation take[] -> [r : int]
    loop
      exit when full
      wait nonempty
    end loop
    full <- false
    r <- slot
    signal nonfull
  end take
end Buffer

object Producer
  var buf : Buffer <- nil
  var n : int <- 0
  operation initially[b : Buffer, count : int]
    buf <- b
    n <- count
  end initially
  process
    var i : int <- 0
    loop
      exit when i >= n
      i <- i + 1
      buf.put[i * i]
    end loop
  end process
end Producer

object Main
  operation start[] -> [r : int]
    var b : Buffer <- new Buffer
    var p : Producer <- new Producer[b, 20]
    var got : int <- 0
    var sum : int <- 0
    loop
      exit when got >= 20
      sum <- sum + b.take[]
      got <- got + 1
    end loop
    r <- sum
  end start
end Main
|}

let expected = List.fold_left (fun a i -> a + (i * i)) 0 (List.init 20 (fun i -> i + 1))

let test_bounded_buffer () =
  (* the consumer blocks on 'nonempty', the producer on 'nonfull': real
     blocking synchronisation, on every architecture *)
  List.iter
    (fun arch ->
      let cl = Core.Cluster.create ~archs:[ arch ] () in
      ignore (Core.Cluster.compile_and_load cl ~name:"bb" bounded_buffer_src);
      let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
      let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
      match Core.Cluster.run_until_result cl tid with
      | Some (V.Vint v) -> check Alcotest.int (arch.A.id ^ " sum") expected (Int32.to_int v)
      | _ -> Alcotest.fail "no result")
    A.all

let test_wait_outside_monitor_rejected () =
  let src =
    {|
object X
  condition c
  operation f[]
    wait c
  end f
end X
|}
  in
  match Emc.Compile.compile ~name:"bad" ~archs:[ A.sparc ] src with
  | Ok _ -> Alcotest.fail "wait outside a monitored operation must be rejected"
  | Error _ -> ()

let test_unknown_condition_rejected () =
  let src =
    {|
object X
  monitor operation f[]
    signal nope
  end f
end X
|}
  in
  match Emc.Compile.compile ~name:"bad" ~archs:[ A.sparc ] src with
  | Ok _ -> Alcotest.fail "unknown condition must be rejected"
  | Error _ -> ()

let migrating_waiters_src =
  {|
object Gate
  var opened : bool <- false
  condition go

  monitor operation pass[] -> [r : int]
    loop
      exit when opened
      wait go
    end loop
    r <- thisnode
  end pass

  monitor operation open[]
    opened <- true
    signal go
    signal go
  end open
end Gate

object Waiter
  operation park[g : Gate] -> [r : int]
    r <- g.pass[]
  end park
end Waiter

object Mover
  operation relocate[g : Gate, dest : int]
    move g to dest
  end relocate
end Mover
|}

let test_condition_waiters_migrate () =
  (* two threads block on the gate's condition; the gate (with its
     condition queue and the waiters' activation records) moves to a
     different architecture; opening it there must release both threads *)
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.vax ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"gate" migrating_waiters_src);
  let gate = Core.Cluster.create_object cl ~node:0 ~class_name:"Gate" in
  let w1 = Core.Cluster.create_object cl ~node:0 ~class_name:"Waiter" in
  let w2 = Core.Cluster.create_object cl ~node:0 ~class_name:"Waiter" in
  let t1 = Core.Cluster.spawn cl ~node:0 ~target:w1 ~op:"park" ~args:[ V.Vref gate ] in
  let t2 = Core.Cluster.spawn cl ~node:0 ~target:w2 ~op:"park" ~args:[ V.Vref gate ] in
  (* let both threads reach the wait *)
  for _ = 1 to 200 do
    ignore (Core.Cluster.step_once cl)
  done;
  check (Alcotest.option Alcotest.int) "gate still home" (Some 0)
    (Core.Cluster.where_is cl gate);
  (* move the gate (and its blocked waiters) to the VAX *)
  let mover = Core.Cluster.create_object cl ~node:0 ~class_name:"Mover" in
  let mt =
    Core.Cluster.spawn cl ~node:0 ~target:mover ~op:"relocate"
      ~args:[ V.Vref gate; V.Vint 1l ]
  in
  Core.Cluster.run cl;
  ignore (Core.Cluster.result cl mt);
  check (Alcotest.option Alcotest.int) "gate moved" (Some 1)
    (Core.Cluster.where_is cl gate);
  (* the waiters are still parked; open the gate on the VAX *)
  (match Core.Cluster.result cl t1, Core.Cluster.result cl t2 with
  | None, None -> ()
  | _ -> Alcotest.fail "waiters should still be blocked after the move");
  let opener = Core.Cluster.create_object cl ~node:1 ~class_name:"Waiter" in
  ignore opener;
  let ot = Core.Cluster.spawn cl ~node:1 ~target:gate ~op:"open" ~args:[] in
  Core.Cluster.run cl;
  ignore (Core.Cluster.result cl ot);
  List.iter
    (fun t ->
      match Core.Cluster.result cl t with
      | Some (Some (V.Vint v)) ->
        (* pass resumed on the VAX, where the gate now lives *)
        check Alcotest.int "resumed on node 1" 1 (Int32.to_int v)
      | _ -> Alcotest.fail "waiter did not pass the gate")
    [ t1; t2 ]

let test_signal_with_no_waiters_is_noop () =
  let src =
    {|
object X
  condition c
  monitor operation f[] -> [r : int]
    signal c
    signal c
    r <- 9
  end f
end X
|}
  in
  let cl = Core.Cluster.create ~archs:[ A.sun3 ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"sig" src);
  let x = Core.Cluster.create_object cl ~node:0 ~class_name:"X" in
  let t = Core.Cluster.spawn cl ~node:0 ~target:x ~op:"f" ~args:[] in
  match Core.Cluster.run_until_result cl t with
  | Some (V.Vint 9l) -> ()
  | _ -> Alcotest.fail "signal on an empty condition must be a no-op"

let suites =
  [
    ( "conditions",
      [
        Alcotest.test_case "bounded buffer on every architecture" `Quick
          test_bounded_buffer;
        Alcotest.test_case "wait outside monitor rejected" `Quick
          test_wait_outside_monitor_rejected;
        Alcotest.test_case "unknown condition rejected" `Quick
          test_unknown_condition_rejected;
        Alcotest.test_case "condition waiters migrate with the object" `Quick
          test_condition_waiters_migrate;
        Alcotest.test_case "signal with no waiters" `Quick
          test_signal_with_no_waiters_is_noop;
      ] );
  ]
