(* Emerald process sections: objects with a thread of their own, started
   at creation, schedulable alongside invocations — and mobile like any
   other thread state. *)

module A = Isa.Arch
module V = Ert.Value

let check = Alcotest.check

let producer_consumer_src =
  {|
object Buffer
  var slot : int <- 0
  var full : bool <- false
  var taken : int <- 0

  monitor operation put[v : int] -> [r : bool]
    if full then
      r <- false
    else
      slot <- v
      full <- true
      r <- true
    end if
  end put

  monitor operation take[] -> [r : int]
    if full then
      full <- false
      taken <- taken + 1
      r <- slot
    else
      r <- 0 - 1
    end if
  end take

  monitor operation consumed[] -> [r : int]
    r <- taken
  end consumed
end Buffer

object Producer
  var buf : Buffer <- nil
  var n : int <- 0

  operation initially[b : Buffer, count : int]
    buf <- b
    n <- count
  end initially

  process
    var sent : int <- 0
    loop
      exit when sent >= n
      if buf.put[sent + 1] then
        sent <- sent + 1
      end if
    end loop
  end process
end Producer

object Main
  operation start[] -> [r : int]
    var b : Buffer <- new Buffer
    var p : Producer <- new Producer[b, 10]
    var got : int <- 0
    var sum : int <- 0
    loop
      exit when got >= 10
      var v : int <- b.take[]
      if v > 0 then
        got <- got + 1
        sum <- sum + v
      end if
    end loop
    r <- sum
  end start
end Main
|}

let test_producer_consumer () =
  List.iter
    (fun arch ->
      let cl = Core.Cluster.create ~archs:[ arch ] () in
      ignore (Core.Cluster.compile_and_load cl ~name:"pc" producer_consumer_src);
      let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
      let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
      match Core.Cluster.run_until_result cl tid with
      | Some (V.Vint v) -> check Alcotest.int (arch.A.id ^ " sum") 55 (Int32.to_int v)
      | _ -> Alcotest.fail "no result")
    [ A.vax; A.sun3; A.sparc ]

let self_moving_src =
  {|
object Roamer
  var log : Signal <- nil

  operation initially[s : Signal]
    log <- s
  end initially

  process
    log.ping[thisnode]
    move self to 1
    log.ping[thisnode]
    move self to 2
    log.ping[thisnode]
  end process
end Roamer

object Signal
  var trail : int <- 0
  var pings : int <- 0

  monitor operation ping[node : int]
    trail <- trail * 10 + node + 1
    pings <- pings + 1
  end ping

  monitor operation read[] -> [r : int]
    r <- trail * 100 + pings
  end read
end Signal

object Main
  operation start[s : Signal] -> [r : int]
    var roamer : Roamer <- new Roamer[s]
    r <- 1
  end start
end Main
|}

let test_process_thread_migrates_itself () =
  (* an object born with a process that immediately roams the cluster:
     mobile by birth *)
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.vax; A.sun3 ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"roam" self_moving_src);
  let signal = Core.Cluster.create_object cl ~node:0 ~class_name:"Signal" in
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[ V.Vref signal ]
  in
  ignore (Core.Cluster.run_until_result cl tid);
  (* the creator finished long ago; let the roamer's process drain *)
  Core.Cluster.run cl;
  let t2 = Core.Cluster.spawn cl ~node:0 ~target:signal ~op:"read" ~args:[] in
  (match Core.Cluster.run_until_result cl t2 with
  | Some (V.Vint v) ->
    (* trail = ((1)*10+2)*10+3 = 123, pings = 3 *)
    check Alcotest.int "trail and ping count" 12303 (Int32.to_int v)
  | _ -> Alcotest.fail "no result");
  check (Alcotest.option Alcotest.int) "roamer ended on node 2" (Some 2)
    (let rec find i =
       if i >= 3 then None
       else
         match
           List.find_opt
             (fun (oid, _) ->
               match
                 Emc.Compile.find_class
                   (Ert.Kernel.program (Core.Cluster.kernel cl i))
                   "Roamer"
               with
               | Some cc -> (
                 match
                   Ert.Kernel.find_object (Core.Cluster.kernel cl i) oid
                 with
                 | Some addr ->
                   Ert.Kernel.class_of_object (Core.Cluster.kernel cl i) addr
                   = cc.Emc.Compile.cc_index
                 | None -> false)
               | None -> false)
             (Ert.Kernel.objects (Core.Cluster.kernel cl i))
         with
         | Some _ -> Some i
         | None -> find (i + 1)
     in
     find 0)

let test_harness_created_process () =
  (* Cluster.create_object starts the process too *)
  let src =
    {|
object Ticker
  var n : int <- 0
  monitor operation count[] -> [r : int]
    r <- n
  end count
  process
    var i : int <- 0
    loop
      exit when i >= 5
      i <- i + 1
      n <- n + 1
    end loop
  end process
end Ticker
|}
  in
  let cl = Core.Cluster.create ~archs:[ A.hp9000_433 ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"tick" src);
  let ticker = Core.Cluster.create_object cl ~node:0 ~class_name:"Ticker" in
  Core.Cluster.run cl;
  let t = Core.Cluster.spawn cl ~node:0 ~target:ticker ~op:"count" ~args:[] in
  match Core.Cluster.run_until_result cl t with
  | Some (V.Vint 5l) -> ()
  | other ->
    Alcotest.failf "expected 5, got %s"
      (match other with
      | Some v -> Format.asprintf "%a" V.pp v
      | None -> "none")

let suites =
  [
    ( "process",
      [
        Alcotest.test_case "producer/consumer" `Quick test_producer_consumer;
        Alcotest.test_case "process thread migrates itself" `Quick
          test_process_thread_migrates_itself;
        Alcotest.test_case "harness-created process" `Quick test_harness_created_process;
      ] );
  ]
