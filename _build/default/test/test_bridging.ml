(* Bridging-code tests (section 2.4): the literal Figure 3/4 example, plus
   property tests that bridges always preserve exactly-once execution. *)

module B = Mobility.Bridging

let check = Alcotest.check

let plain n = { B.name = n; kind = B.Plain }
let call n = { B.name = n; kind = B.Call }
let stop n = { B.name = n; kind = B.Stop }

(* Figure 3: abstract = o1; o2; o3; switch(); o4; o5; o6 *)
let fig3_abstract =
  B.abstract
    [ plain "o1"; plain "o2"; plain "o3"; call "switch"; plain "o4"; plain "o5"; stop "o6" ]

(* code1 = o1; switch(); o2; o3; o4; o5; o6 *)
let fig3_code1 =
  B.apply_edits fig3_abstract [ B.Swap 2; B.Swap 1 ]

(* code2 = o2; o5; switch(); o4; o1; o3; o6 *)
let fig3_code2 =
  B.apply_edits fig3_abstract
    [
      (* derive the figure's sequence by adjacent transpositions *)
      B.Swap 0; (* o2 o1 o3 sw o4 o5 o6 *)
      B.Swap 2; (* o2 o1 sw o3 o4 o5 o6 *)
      B.Swap 1; (* o2 sw o1 o3 o4 o5 o6 *)
      B.Swap 4; (* o2 sw o1 o3 o5 o4 o6 *)
      B.Swap 3; (* o2 sw o1 o5 o3 o4 o6 *)
      B.Swap 2; (* o2 sw o5 o1 o3 o4 o6 *)
      B.Swap 1; (* o2 o5 sw o1 o3 o4 o6 *)
      B.Swap 3; (* o2 o5 sw o3 o1 o4 o6 *)
      B.Swap 4; (* o2 o5 sw o3 o4 o1 o6 *)
      B.Swap 3; (* o2 o5 sw o4 o3 o1 o6 *)
      B.Swap 4; (* o2 o5 sw o4 o1 o3 o6 *)
    ]

let test_fig3_instances () =
  check (Alcotest.list Alcotest.string) "code1"
    [ "o1"; "switch"; "o2"; "o3"; "o4"; "o5"; "o6" ]
    (B.op_names fig3_code1);
  check (Alcotest.list Alcotest.string) "code2"
    [ "o2"; "o5"; "switch"; "o4"; "o1"; "o3"; "o6" ]
    (B.op_names fig3_code2)

(* Figure 4: bridging from code1 at switch() to code2 yields the fragment
   o2; o4; o5 and enters code2 at o3. *)
let test_fig4_bridge () =
  let b = B.build_bridge ~from_:fig3_code1 ~at:"switch" ~to_:fig3_code2 in
  check (Alcotest.list Alcotest.string) "bridge fragment" [ "o2"; "o4"; "o5" ]
    (List.map (fun o -> o.B.name) b.B.br_ops);
  let entry_name = (B.ops fig3_code2).(b.B.br_entry).B.name in
  check Alcotest.string "entry point" "o3" entry_name

let test_fig4_execution () =
  let log = B.run_with_migration ~from_:fig3_code1 ~at:"switch" ~to_:fig3_code2 in
  check (Alcotest.list Alcotest.string) "full execution"
    [ "o1"; "switch"; "o2"; "o4"; "o5"; "o3"; "o6" ]
    log;
  if not (B.exactly_once ~abstract:fig3_abstract log) then
    Alcotest.fail "operations must execute exactly once"

let test_identity_bridge () =
  (* migrating between identical codes: nothing to bridge before the stop *)
  let b = B.build_bridge ~from_:fig3_code1 ~at:"switch" ~to_:fig3_code1 in
  check (Alcotest.list Alcotest.string) "no fragment" []
    (List.map (fun o -> o.B.name) b.B.br_ops);
  let log = B.run_with_migration ~from_:fig3_code1 ~at:"switch" ~to_:fig3_code1 in
  if not (B.exactly_once ~abstract:fig3_abstract log) then
    Alcotest.fail "identity bridge must execute exactly once"

let test_edits_reversible () =
  let edits = [ B.Swap 0; B.Swap 2; B.Swap 1; B.Swap 3 ] in
  let there = B.apply_edits fig3_abstract edits in
  let back = B.apply_edits there (B.invert edits) in
  if not (B.equal back fig3_abstract) then
    Alcotest.fail "inverted edit script must restore the original code"

let test_stops_fixed () =
  match B.apply_edits fig3_abstract [ B.Swap 5 ] with
  | _ -> Alcotest.fail "moving an operation across a bus stop must be rejected"
  | exception B.Illegal_edit _ -> ()

let test_bridging_from_bridging () =
  (* migrate at switch() from code1 to code2, then again at o3 (promote it
     to a call so it is a visible point) to a third instance *)
  let abs =
    B.abstract
      [ plain "o1"; plain "o2"; call "o3"; call "switch"; plain "o4"; plain "o5"; stop "o6" ]
  in
  let c1 = B.apply_edits abs [ B.Swap 2; B.Swap 1 ] in
  let c2 = B.apply_edits abs [ B.Swap 0; B.Swap 4 ] in
  let c3 = B.apply_edits abs [ B.Swap 1; B.Swap 4; B.Swap 3 ] in
  let log = B.run_with_two_migrations ~a:c1 ~at_a:"switch" ~b:c2 ~at_b:"o3" ~c:c3 in
  if not (B.exactly_once ~abstract:abs log) then
    Alcotest.failf "double migration broke exactly-once: %s" (String.concat ";" log)

(* property: for random instances and any visible suspension point, the
   bridged execution runs every abstract operation exactly once *)
let gen_scenario =
  let open QCheck.Gen in
  let n_ops = int_range 3 9 in
  n_ops >>= fun n ->
  let mk_ops =
    List.init n (fun i ->
        if i = n - 1 then return (stop (Printf.sprintf "s%d" i))
        else
          map
            (fun is_call ->
              if is_call then call (Printf.sprintf "c%d" i)
              else plain (Printf.sprintf "p%d" i))
            bool)
  in
  flatten_l mk_ops >>= fun ops ->
  let edits len = list_size (int_range 0 12) (map (fun i -> B.Swap i) (int_range 0 (max 0 (len - 3)))) in
  edits n >>= fun e1 ->
  edits n >>= fun e2 ->
  int_range 0 (n - 1) >>= fun at_idx ->
  return (ops, e1, e2, at_idx)

let prop_bridge_exactly_once =
  QCheck.Test.make ~name:"random bridges execute exactly once" ~count:300
    (QCheck.make gen_scenario) (fun (ops, e1, e2, at_idx) ->
      let abs = B.abstract ops in
      let safe_apply c es =
        List.fold_left
          (fun c e -> try B.apply_edits c [ e ] with B.Illegal_edit _ -> c)
          c es
      in
      let c1 = safe_apply abs e1 in
      let c2 = safe_apply abs e2 in
      (* pick the visible point of c1 at or after at_idx *)
      let visible =
        Array.to_list (B.ops c1)
        |> List.filter (fun o -> o.B.kind <> B.Plain)
        |> List.map (fun o -> o.B.name)
      in
      match List.nth_opt visible (at_idx mod max 1 (List.length visible)) with
      | None -> true
      | Some at -> (
        match B.run_with_migration ~from_:c1 ~at ~to_:c2 with
        | log -> B.exactly_once ~abstract:abs log
        | exception B.No_bridge _ -> true))

let prop_edits_invertible =
  QCheck.Test.make ~name:"edit scripts invert" ~count:300
    (QCheck.make gen_scenario) (fun (ops, e1, _, _) ->
      let abs = B.abstract ops in
      let legal =
        List.filter
          (fun e ->
            match B.apply_edits abs [ e ] with
            | _ -> true
            | exception B.Illegal_edit _ -> false)
          e1
      in
      (* apply the legal prefix as one script *)
      let rec longest_legal acc = function
        | [] -> List.rev acc
        | e :: rest -> (
          match B.apply_edits abs (List.rev (e :: acc)) with
          | _ -> longest_legal (e :: acc) rest
          | exception B.Illegal_edit _ -> List.rev acc)
      in
      let script = longest_legal [] legal in
      let there = B.apply_edits abs script in
      B.equal abs (B.apply_edits there (B.invert script)))

let suites =
  [
    ( "bridging",
      [
        Alcotest.test_case "Figure 3 instances" `Quick test_fig3_instances;
        Alcotest.test_case "Figure 4 bridge" `Quick test_fig4_bridge;
        Alcotest.test_case "Figure 4 execution" `Quick test_fig4_execution;
        Alcotest.test_case "identity bridge" `Quick test_identity_bridge;
        Alcotest.test_case "edits reversible" `Quick test_edits_reversible;
        Alcotest.test_case "bus stops are fixed points" `Quick test_stops_fixed;
        Alcotest.test_case "bridging from bridging" `Quick test_bridging_from_bridging;
        QCheck_alcotest.to_alcotest prop_bridge_exactly_once;
        QCheck_alcotest.to_alcotest prop_edits_invertible;
      ] );
  ]
