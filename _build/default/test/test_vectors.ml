(* Vectors: native indexing with bounds checks on every architecture,
   by-value marshalling across migrations and invocations, GC tracing. *)

module A = Isa.Arch
module V = Ert.Value

let check = Alcotest.check

let run_cluster ?(archs = [ A.sparc ]) src ~op ~args =
  let cl = Core.Cluster.create ~archs () in
  ignore (Core.Cluster.compile_and_load cl ~name:"vec" src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op ~args in
  (Core.Cluster.run_until_result cl tid, cl)

let expect_int ?archs src expected =
  match run_cluster ?archs src ~op:"start" ~args:[] with
  | Some (V.Vint v), _ -> check Alcotest.int "result" expected (Int32.to_int v)
  | other, _ ->
    Alcotest.failf "expected %d, got %s" expected
      (match other with
      | Some v -> Format.asprintf "%a" V.pp v
      | None -> "none")

let sieve_src =
  {|
object Main
  operation start[] -> [r : int]
    var n : int <- 50
    var sieve : vector[bool] <- vector[bool, n]
    var i : int <- 2
    var count : int <- 0
    loop
      exit when i >= n
      if not sieve[i] then
        count <- count + 1
        var j : int <- i + i
        loop
          exit when j >= n
          sieve[j] <- true
          j <- j + i
        end loop
      end if
      i <- i + 1
    end loop
    r <- count
  end start
end Main
|}

let test_sieve_all_archs () =
  (* 15 primes below 50 *)
  List.iter (fun arch -> expect_int ~archs:[ arch ] sieve_src 15) A.all

let test_size_and_sum () =
  expect_int
    {|
object Main
  operation start[] -> [r : int]
    var v : vector[int] <- vector[int, 10]
    var i : int <- 0
    loop
      exit when i >= v.size[]
      v[i] <- i * i
      i <- i + 1
    end loop
    var sum : int <- 0
    i <- 0
    loop
      exit when i >= v.size[]
      sum <- sum + v[i]
      i <- i + 1
    end loop
    r <- sum + v.size[] * 1000
  end start
end Main
|}
    (285 + 10000)

let test_aliasing_is_local () =
  (* two variables referencing the same vector see each other's writes *)
  expect_int
    {|
object Main
  operation start[] -> [r : int]
    var a : vector[int] <- vector[int, 3]
    var b : vector[int] <- a
    a[0] <- 41
    b[0] <- b[0] + 1
    r <- a[0]
  end start
end Main
|}
    42

let test_bounds_trap () =
  List.iter
    (fun arch ->
      List.iter
        (fun idx ->
          let src =
            Printf.sprintf
              {|
object Main
  operation start[] -> [r : int]
    var v : vector[int] <- vector[int, 4]
    r <- v[%s]
  end start
end Main
|}
              idx
          in
          match run_cluster ~archs:[ arch ] src ~op:"start" ~args:[] with
          | _ -> Alcotest.failf "%s: index %s must trap" arch.A.id idx
          | exception Ert.Kernel.Runtime_error msg ->
            if not (String.length msg > 0) then Alcotest.fail "empty error")
        [ "4"; "0 - 1"; "100" ])
    [ A.vax; A.sun3; A.sparc ]

let test_strings_in_vectors () =
  let src =
    {|
object Main
  operation start[] -> [r : string]
    var v : vector[string] <- vector[string, 3]
    v[0] <- "a"
    v[1] <- v[0] + "b"
    v[2] <- v[1] + "c"
    r <- v[2]
  end start
end Main
|}
  in
  match run_cluster src ~op:"start" ~args:[] with
  | Some (V.Vstr s), _ -> check Alcotest.string "result" "abc" s
  | _ -> Alcotest.fail "expected a string"

let migration_src =
  {|
object Agent
  operation go[] -> [r : int]
    var v : vector[int] <- vector[int, 8]
    var names : vector[string] <- vector[string, 2]
    var i : int <- 0
    loop
      exit when i >= 8
      v[i] <- (i + 1) * 11
      i <- i + 1
    end loop
    names[0] <- "alpha"
    names[1] <- "beta"
    move self to 1
    var sum : int <- 0
    i <- 0
    loop
      exit when i >= v.size[]
      sum <- sum + v[i]
      i <- i + 1
    end loop
    if names[0] + names[1] == "alphabeta" then
      sum <- sum + 10000
    end if
    move self to 0
    r <- sum
  end go
end Agent

object Main
  operation start[] -> [r : int]
    var a : Agent <- new Agent
    r <- a.go[]
  end start
end Main
|}

let test_vectors_migrate () =
  (* 11 * (1+..+8) = 396, plus the string vector marker *)
  List.iter
    (fun pair ->
      let cl = Core.Cluster.create ~archs:pair () in
      ignore (Core.Cluster.compile_and_load cl ~name:"vecmig" migration_src);
      let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
      let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
      match Core.Cluster.run_until_result cl tid with
      | Some (V.Vint v) ->
        check Alcotest.int (String.concat "<->" (List.map (fun a -> a.A.id) pair)) 10396
          (Int32.to_int v)
      | _ -> Alcotest.fail "no result")
    [ [ A.sparc; A.vax ]; [ A.vax; A.sun3 ]; [ A.hp9000_433; A.sparc ] ]

let test_vector_as_rpc_argument () =
  let src =
    {|
object Server
  operation total[v : vector[int]] -> [r : int]
    var sum : int <- 0
    var i : int <- 0
    loop
      exit when i >= v.size[]
      sum <- sum + v[i]
      i <- i + 1
    end loop
    r <- sum
  end total
end Server

object Main
  operation start[] -> [r : int]
    var s : Server <- new Server
    move s to 1
    var v : vector[int] <- vector[int, 5]
    var i : int <- 0
    loop
      exit when i >= 5
      v[i] <- i + 1
      i <- i + 1
    end loop
    // vectors marshal by value: the remote side sums a copy
    r <- s.total[v]
  end start
end Main
|}
  in
  expect_int ~archs:[ A.sparc; A.vax ] src 15

let test_vector_as_root_argument_and_result () =
  let src =
    {|
object Main
  operation reverse[v : vector[int]] -> [r : vector[int]]
    var n : int <- v.size[]
    var out : vector[int] <- vector[int, n]
    var i : int <- 0
    loop
      exit when i >= n
      out[i] <- v[n - 1 - i]
      i <- i + 1
    end loop
    r <- out
  end reverse
end Main
|}
  in
  let input = V.Vvec (Emc.Ast.Tint, [| V.Vint 1l; V.Vint 2l; V.Vint 3l |]) in
  match run_cluster ~archs:[ A.vax ] src ~op:"reverse" ~args:[ input ] with
  | Some (V.Vvec (_, [| V.Vint 3l; V.Vint 2l; V.Vint 1l |])), _ -> ()
  | Some v, _ -> Alcotest.failf "wrong result %s" (Format.asprintf "%a" V.pp v)
  | None, _ -> Alcotest.fail "no result"

let test_gc_traces_vectors () =
  let src =
    {|
object Keep
  var data : vector[string] <- nil
  operation fill[]
    data <- vector[string, 2]
    data[0] <- "precious"
    data[1] <- "cargo"
    var junk : vector[string] <- vector[string, 4]
    junk[0] <- "garbage"
  end fill
  operation peek[] -> [r : string]
    r <- data[0] + data[1]
  end peek
end Keep
|}
  in
  let cl = Core.Cluster.create ~archs:[ A.sun3 ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"vecgc" src);
  let keep = Core.Cluster.create_object cl ~node:0 ~class_name:"Keep" in
  let t1 = Core.Cluster.spawn cl ~node:0 ~target:keep ~op:"fill" ~args:[] in
  Core.Cluster.run cl;
  ignore (Core.Cluster.result cl t1);
  let stats = Ert.Gc.collect ~extra_roots:[ keep ] (Core.Cluster.kernel cl 0) in
  if stats.Ert.Gc.gc_swept = 0 then Alcotest.fail "the junk vector should be swept";
  (* the kept vector's strings must have survived the collection *)
  let t2 = Core.Cluster.spawn cl ~node:0 ~target:keep ~op:"peek" ~args:[] in
  match Core.Cluster.run_until_result cl t2 with
  | Some (V.Vstr s) -> check Alcotest.string "strings survived" "preciouscargo" s
  | _ -> Alcotest.fail "peek failed"

let test_nested_vectors () =
  expect_int
    {|
object Main
  operation start[] -> [r : int]
    var grid : vector[vector[int]] <- vector[vector[int], 3]
    var i : int <- 0
    loop
      exit when i >= 3
      grid[i] <- vector[int, 3]
      var j : int <- 0
      loop
        exit when j >= 3
        grid[i][j] <- i * 3 + j
        j <- j + 1
      end loop
      i <- i + 1
    end loop
    r <- grid[0][0] + grid[1][1] + grid[2][2]
  end start
end Main
|}
    12

let suites =
  [
    ( "vectors",
      [
        Alcotest.test_case "sieve on every architecture" `Quick test_sieve_all_archs;
        Alcotest.test_case "size and sum" `Quick test_size_and_sum;
        Alcotest.test_case "aliasing is local" `Quick test_aliasing_is_local;
        Alcotest.test_case "bounds trap" `Quick test_bounds_trap;
        Alcotest.test_case "strings in vectors" `Quick test_strings_in_vectors;
        Alcotest.test_case "vectors migrate by value" `Quick test_vectors_migrate;
        Alcotest.test_case "vector as RPC argument" `Quick test_vector_as_rpc_argument;
        Alcotest.test_case "vector root argument and result" `Quick
          test_vector_as_root_argument_and_result;
        Alcotest.test_case "GC traces vectors" `Quick test_gc_traces_vectors;
        Alcotest.test_case "nested vectors" `Quick test_nested_vectors;
      ] );
  ]
