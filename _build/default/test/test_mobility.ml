(* Cross-node tests: remote invocation, object and native-code thread
   mobility among heterogeneous machines — the paper's core claims. *)

module A = Isa.Arch
module V = Ert.Value

let check = Alcotest.check

let mk_cluster ?protocol ?wire_impl archs = Core.Cluster.create ?protocol ?wire_impl ~archs ()

let run_main ?protocol cluster_archs src =
  let cl = mk_cluster ?protocol cluster_archs in
  ignore (Core.Cluster.compile_and_load cl ~name:"t" src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
  let r = Core.Cluster.run_until_result cl tid in
  (r, cl)

let expect_int ?protocol archs src expected =
  let r, _ = run_main ?protocol archs src in
  match r with
  | Some (V.Vint v) -> check Alcotest.int "result" expected (Int32.to_int v)
  | other ->
    Alcotest.failf "expected int %d, got %s" expected
      (match other with
      | Some v -> Format.asprintf "%a" V.pp v
      | None -> "none")

(* Representative heterogeneous pairs, plus a homogeneous one *)
let pairs =
  [
    [ A.sparc; A.sparc ];
    [ A.sparc; A.sun3 ];
    [ A.sparc; A.vax ];
    [ A.vax; A.sun3 ];
    [ A.hp9000_433; A.vax ];
    [ A.sun3; A.hp9000_385 ];
  ]

let pair_name archs = String.concat "<->" (List.map (fun a -> a.A.id) archs)

(* ----------------------------------------------------------------------- *)

let remote_invocation_src =
  {|
object Worker
  var calls : int <- 0
  operation compute[a : int, b : int] -> [r : int]
    calls <- calls + 1
    r <- a * b + calls
  end compute
end Worker

object Main
  operation start[] -> [r : int]
    var w : Worker <- new Worker
    move w to 1
    r <- w.compute[6, 7] + w.compute[0, 0]
  end start
end Main
|}

let test_remote_invocation () =
  List.iter
    (fun archs ->
      (* 42+1 + 0+2 = 45 *)
      expect_int archs remote_invocation_src 45)
    pairs

let migration_roundtrip_src =
  {|
object Agent
  operation go[] -> [r : int]
    var a : int <- 100
    var b : int <- 23
    var n0 : int <- thisnode
    move self to 1
    var n1 : int <- thisnode
    move self to 0
    var n2 : int <- thisnode
    r <- a - b + (n1 - n0) * 10 + n2
  end go
end Agent

object Main
  operation start[] -> [r : int]
    var a : Agent <- new Agent
    r <- a.go[]
  end start
end Main
|}

let test_migration_roundtrip () =
  List.iter
    (fun archs ->
      (* 77 + 10 + 0 = 87, and thisnode must actually change *)
      expect_int archs migration_roundtrip_src 87)
    pairs

(* all value types must survive translation between formats *)
let typed_locals_src =
  {|
object Probe
  operation id[] -> [r : int]
    r <- 9
  end id
end Probe

object Agent
  operation go[p : Probe] -> [r : int]
    var i : int <- -123456
    var x : real <- 3.25
    var b : bool <- true
    var s : string <- "fourty-two"
    var q : Probe <- p
    var z : Probe <- nil
    move self to 1
    var ok : int <- 0
    if i == -123456 then
      ok <- ok + 1
    end if
    if x == 3.25 then
      ok <- ok + 1
    end if
    if b then
      ok <- ok + 1
    end if
    if s == "fourty-two" then
      ok <- ok + 1
    end if
    if z == nil then
      ok <- ok + 1
    end if
    ok <- ok + q.id[]
    move self to 0
    r <- ok
  end go
end Agent

object Main
  operation start[] -> [r : int]
    var p : Probe <- new Probe
    var a : Agent <- new Agent
    r <- a.go[p]
  end start
end Main
|}

let test_typed_locals_migrate () =
  List.iter (fun archs -> expect_int archs typed_locals_src 14) pairs

(* the Table 1 workload: 13 live variables in the moved fragment *)
let thirteen_vars_src =
  {|
object Agent
  operation go[] -> [r : int]
    var v1 : int <- 1
    var v2 : int <- 2
    var v3 : int <- 3
    var v4 : int <- 4
    var v5 : int <- 5
    var v6 : int <- 6
    var v7 : int <- 7
    var v8 : int <- 8
    var v9 : int <- 9
    var v10 : int <- 10
    var v11 : real <- 11.5
    var v12 : string <- "twelve"
    var v13 : bool <- true
    move self to 1
    move self to 0
    var acc : int <- v1 + v2 + v3 + v4 + v5 + v6 + v7 + v8 + v9 + v10
    if v11 == 11.5 then
      acc <- acc + 100
    end if
    if v12 == "twelve" then
      acc <- acc + 1000
    end if
    if v13 then
      acc <- acc + 10000
    end if
    r <- acc
  end go
end Agent

object Main
  operation start[] -> [r : int]
    var a : Agent <- new Agent
    r <- a.go[]
  end start
end Main
|}

let test_thirteen_variables () =
  List.iter (fun archs -> expect_int archs thirteen_vars_src 11155) pairs

(* Example 1 of the paper: X on node A invokes an operation in Y on node B;
   the operation moves X to node C; when the thread returns from Y it must
   resume on node C. *)
let example1_src =
  {|
object Y
  operation relocate[x : X] -> [r : int]
    move x to 2
    r <- 5
  end relocate
end Y

object X
  operation run[y : Y] -> [r : int]
    var before : int <- thisnode
    var got : int <- y.relocate[self]
    var after : int <- thisnode
    r <- before * 100 + after * 10 + got
  end run
end X

object Main
  operation start[] -> [r : int]
    var y : Y <- new Y
    var x : X <- new X
    move y to 1
    r <- x.run[y]
  end start
end Main
|}

let test_example_1 () =
  List.iter
    (fun third ->
      let archs = [ A.sparc; A.sun3; third ] in
      (* before = 0, after = 2, got = 5 -> 25 *)
      expect_int archs example1_src 25)
    [ A.vax; A.hp9000_433; A.sparc ]

(* recursion: a stack of activation records all belonging to the moving
   object migrates en bloc *)
let deep_stack_src =
  {|
object Agent
  operation down[n : int] -> [r : int]
    if n == 0 then
      move self to 1
      r <- thisnode * 1000
    else
      r <- self.down[n - 1] + n
    end if
  end down
end Agent

object Main
  operation start[] -> [r : int]
    var a : Agent <- new Agent
    r <- a.down[12]
  end start
end Main
|}

let test_deep_stack_migrates () =
  (* 1000 + sum 1..12 = 1078 *)
  List.iter (fun archs -> expect_int archs deep_stack_src 1078) pairs

(* attached objects move with their parent; plain references become remote *)
let attached_src =
  {|
object Cell
  var v : int <- 0
  operation set[x : int]
    v <- x
  end set
  operation get[] -> [r : int]
    r <- v
  end get
end Cell

object Box
  attached var near : Cell <- nil
  var far : Cell <- nil

  operation initially[]
    near <- new Cell
    far <- new Cell
  end initially

  operation fill[a : int, b : int]
    near.set[a]
    far.set[b]
  end fill

  operation readout[] -> [r : int]
    r <- near.get[] * 100 + far.get[] + locate[near] * 10000 + locate[far] * 1000
  end readout
end Box

object Main
  operation start[] -> [r : int]
    var b : Box <- new Box
    b.fill[7, 9]
    move b to 1
    r <- b.readout[]
  end start
end Main
|}

let test_attached_objects () =
  List.iter
    (fun archs ->
      (* near is attached: it moves to node 1 (locate 1); far stays on node
         0; readout runs on node 1: 1*10000 + 0*1000 + 7*100 + 9 = 10709 *)
      expect_int archs attached_src 10709)
    pairs

(* monitor state must move: lock and waiter, preserving mutual exclusion *)
let monitor_move_src =
  {|
object Shared
  var hits : int <- 0
  monitor operation bump[n : int] -> [r : int]
    hits <- hits + n
    r <- hits
  end bump
end Shared

object Agent
  operation go[s : Shared] -> [r : int]
    var one : int <- s.bump[1]
    move self to 1
    var two : int <- s.bump[10]
    move s to 1
    var three : int <- s.bump[100]
    r <- three
  end go
end Agent

object Main
  operation start[] -> [r : int]
    var s : Shared <- new Shared
    var a : Agent <- new Agent
    r <- a.go[s]
  end start
end Main
|}

let test_monitor_moves () =
  List.iter (fun archs -> expect_int archs monitor_move_src 111) pairs

(* two root threads contending on one monitored object that migrates *)
let contention_src =
  {|
object Shared
  var count : int <- 0
  monitor operation add[n : int] -> [r : int]
    count <- count + n
    r <- count
  end add
end Shared

object Spinner
  operation spin[s : Shared, rounds : int] -> [r : int]
    var i : int <- 0
    var last : int <- 0
    loop
      exit when i >= rounds
      i <- i + 1
      last <- s.add[1]
    end loop
    r <- last
  end spin
end Spinner
|}

let test_monitor_contention_across_move () =
  List.iter
    (fun archs ->
      let cl = mk_cluster archs in
      ignore (Core.Cluster.compile_and_load cl ~name:"contend" contention_src);
      let s = Core.Cluster.create_object cl ~node:0 ~class_name:"Shared" in
      let sp0 = Core.Cluster.create_object cl ~node:0 ~class_name:"Spinner" in
      let sp1 = Core.Cluster.create_object cl ~node:1 ~class_name:"Spinner" in
      let t0 =
        Core.Cluster.spawn cl ~node:0 ~target:sp0 ~op:"spin"
          ~args:[ V.Vref s; V.Vint 25l ]
      in
      let t1 =
        Core.Cluster.spawn cl ~node:1 ~target:sp1 ~op:"spin"
          ~args:[ V.Vref s; V.Vint 25l ]
      in
      Core.Cluster.run cl;
      let final t =
        match Core.Cluster.result cl t with
        | Some (Some (V.Vint v)) -> Int32.to_int v
        | _ -> Alcotest.failf "%s: thread did not finish" (pair_name archs)
      in
      let f0 = final t0 and f1 = final t1 in
      (* every increment must be applied exactly once *)
      check Alcotest.int (pair_name archs ^ " total") 50 (max f0 f1))
    pairs

let test_original_protocol_homogeneous () =
  expect_int ~protocol:Core.Cluster.Original [ A.sparc; A.sparc ]
    migration_roundtrip_src 87

let test_original_protocol_rejects_heterogeneous () =
  match
    run_main ~protocol:Core.Cluster.Original [ A.sparc; A.vax ] migration_roundtrip_src
  with
  | _ -> Alcotest.fail "the original system must not migrate heterogeneously"
  | exception Core.Cluster.Heterogeneous_move_in_original_protocol -> ()

let test_determinism () =
  let run () =
    let r, cl = run_main [ A.sparc; A.sun3; A.vax ] migration_roundtrip_src in
    ( (match r with
      | Some (V.Vint v) -> Int32.to_int v
      | _ -> -1),
      Core.Cluster.global_time_us cl,
      Core.Cluster.events_processed cl )
  in
  let r1, t1, e1 = run () in
  let r2, t2, e2 = run () in
  check Alcotest.int "same result" r1 r2;
  check (Alcotest.float 0.0) "same virtual time" t1 t2;
  check Alcotest.int "same event count" e1 e2

(* object moved while threads still hold references: calls are forwarded
   through the proxy chain *)
let forwarding_src =
  {|
object Target
  var v : int <- 0
  operation poke[] -> [r : int]
    v <- v + 1
    r <- v * 10 + thisnode
  end poke
end Target

object Main
  operation start[] -> [r : int]
    var t : Target <- new Target
    move t to 1
    var a : int <- t.poke[]
    move t to 2
    var b : int <- t.poke[]
    move t to 0
    var c : int <- t.poke[]
    r <- a * 10000 + b * 100 + c
  end start
end Main
|}

let test_forwarding_chains () =
  List.iter
    (fun third ->
      let archs = [ A.sparc; A.sun3; third ] in
      (* a=11, b=22, c=30 -> 11*10000+22*100+30 = 112230 *)
      expect_int archs forwarding_src 112230)
    [ A.vax; A.hp9000_385 ]

(* moving a non-resident object: the request is forwarded to its host *)
let move_remote_src =
  {|
object Target
  operation here[] -> [r : int]
    r <- thisnode
  end here
end Target

object Main
  operation start[] -> [r : int]
    var t : Target <- new Target
    move t to 1
    var a : int <- t.here[]
    move t to 2
    var b : int <- t.here[]
    r <- a * 10 + b
  end start
end Main
|}

let test_move_of_remote_object () =
  let archs = [ A.sparc; A.vax; A.sun3 ] in
  (* after 'move t to 1', t is not local; 'move t to 2' forwards a request *)
  expect_int archs move_remote_src 12

(* migrating computation mid-loop (the thread is at a loop-bottom poll) *)
let loop_migration_src =
  {|
object Agent
  operation go[] -> [r : int]
    var i : int <- 0
    var sum : int <- 0
    loop
      exit when i >= 20
      i <- i + 1
      sum <- sum + i
      if i == 10 then
        move self to 1
      end if
    end loop
    r <- sum * 10 + thisnode
  end go
end Agent

object Main
  operation start[] -> [r : int]
    var a : Agent <- new Agent
    r <- a.go[]
  end start
end Main
|}

let test_loop_migration () =
  List.iter (fun archs -> expect_int archs loop_migration_src 2101) pairs

let suites =
  [
    ( "mobility.rpc",
      [
        Alcotest.test_case "remote invocation" `Quick test_remote_invocation;
        Alcotest.test_case "forwarding chains" `Quick test_forwarding_chains;
        Alcotest.test_case "move of a remote object" `Quick test_move_of_remote_object;
      ] );
    ( "mobility.threads",
      [
        Alcotest.test_case "migration round trip (all pairs)" `Quick
          test_migration_roundtrip;
        Alcotest.test_case "typed locals survive translation" `Quick
          test_typed_locals_migrate;
        Alcotest.test_case "13-variable thread (Table 1 workload)" `Quick
          test_thirteen_variables;
        Alcotest.test_case "paper Example 1" `Quick test_example_1;
        Alcotest.test_case "deep stacks migrate" `Quick test_deep_stack_migrates;
        Alcotest.test_case "migration at a loop poll" `Quick test_loop_migration;
      ] );
    ( "mobility.objects",
      [
        Alcotest.test_case "attached objects move together" `Quick test_attached_objects;
        Alcotest.test_case "monitor state moves" `Quick test_monitor_moves;
        Alcotest.test_case "monitor contention across moves" `Quick
          test_monitor_contention_across_move;
      ] );
    ( "mobility.protocols",
      [
        Alcotest.test_case "original protocol, homogeneous" `Quick
          test_original_protocol_homogeneous;
        Alcotest.test_case "original protocol rejects heterogeneous" `Quick
          test_original_protocol_rejects_heterogeneous;
        Alcotest.test_case "determinism" `Quick test_determinism;
      ] );
  ]
