(* The heavyweight property test: generate random programs that mix 32-bit
   arithmetic with migrations at random points across a random
   heterogeneous cluster, and check the final value against a reference
   evaluation with OCaml int32 semantics.

   If activation-record translation dropped a value, byte-swapped a slot
   incorrectly, mislaid a stop, or resumed at the wrong PC, arithmetic
   downstream of a move would diverge. *)

module A = Isa.Arch
module V = Ert.Value

type op =
  | Assign of int * int32  (* vi <- literal *)
  | Arith of int * int * Isa.Insn.binop * int  (* vi <- vj op vk *)
  | Move_to of int  (* move self to node *)

let n_vars = 6

let render_program ops =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "object Agent\n  operation go[] -> [r : int]\n";
  for i = 0 to n_vars - 1 do
    Buffer.add_string buf (Printf.sprintf "    var v%d : int <- %d\n" i (i + 1))
  done;
  List.iter
    (fun op ->
      match op with
      | Assign (i, v) -> Buffer.add_string buf (Printf.sprintf "    v%d <- %ld\n" i v)
      | Arith (i, j, o, k) ->
        let sym =
          match o with
          | Isa.Insn.Add -> "+"
          | Isa.Insn.Sub -> "-"
          | Isa.Insn.Mul -> "*"
          | Isa.Insn.Div -> "/"
          | Isa.Insn.Mod -> "%"
          | _ -> assert false
        in
        (* guard division so it can never trap *)
        if o = Isa.Insn.Div || o = Isa.Insn.Mod then
          (* the divisor lies in (-999, 999) + 1000001: always positive *)
          Buffer.add_string buf
            (Printf.sprintf "    v%d <- v%d %s (v%d %% 1000 * v%d %% 1000 + 1000001)\n" i
               j sym k k)
        else Buffer.add_string buf (Printf.sprintf "    v%d <- v%d %s v%d\n" i j sym k)
      | Move_to n -> Buffer.add_string buf (Printf.sprintf "    move self to %d\n" n))
    ops;
  Buffer.add_string buf "    r <- v0";
  for i = 1 to n_vars - 1 do
    Buffer.add_string buf (Printf.sprintf " + v%d" i)
  done;
  Buffer.add_string buf "\n  end go\nend Agent\n";
  Buffer.contents buf

(* reference evaluation with the same wrap-around int32 semantics *)
let reference ops =
  let v = Array.init n_vars (fun i -> Int32.of_int (i + 1)) in
  List.iter
    (fun op ->
      match op with
      | Assign (i, x) -> v.(i) <- x
      | Arith (i, j, o, k) -> (
        match o with
        | Isa.Insn.Add -> v.(i) <- Int32.add v.(j) v.(k)
        | Isa.Insn.Sub -> v.(i) <- Int32.sub v.(j) v.(k)
        | Isa.Insn.Mul -> v.(i) <- Int32.mul v.(j) v.(k)
        | Isa.Insn.Div | Isa.Insn.Mod ->
          (* mirror the rendered guard exactly, with the source language's
             left-associative same-precedence * and %:
             ((vk % 1000) * vk) % 1000 + 1000001 *)
          let d =
            Int32.add
              (Int32.rem (Int32.mul (Int32.rem v.(k) 1000l) v.(k)) 1000l)
              1000001l
          in
          v.(i) <- (if o = Isa.Insn.Div then Int32.div v.(j) d else Int32.rem v.(j) d)
        | _ -> assert false)
      | Move_to _ -> ())
    ops;
  Array.fold_left Int32.add 0l v

let ops_gen n_nodes =
  let open QCheck.Gen in
  let var = int_range 0 (n_vars - 1) in
  let op =
    frequency
      [
        (2, map2 (fun i x -> Assign (i, Int32.of_int x)) var (int_range (-10000) 10000));
        ( 5,
          var >>= fun i ->
          var >>= fun j ->
          var >>= fun k ->
          oneofl
            [ Isa.Insn.Add; Isa.Insn.Sub; Isa.Insn.Mul; Isa.Insn.Div; Isa.Insn.Mod ]
          >>= fun o -> return (Arith (i, j, o, k)) );
        (2, map (fun n -> Move_to n) (int_range 0 (n_nodes - 1)));
      ]
  in
  list_size (int_range 3 14) op

let cluster_archs_gen =
  let open QCheck.Gen in
  list_size (int_range 2 4) (oneofl A.all)

let scenario_gen =
  let open QCheck.Gen in
  cluster_archs_gen >>= fun archs ->
  ops_gen (List.length archs) >>= fun ops -> return (archs, ops)

let run_scenario (archs, ops) =
  let src = render_program ops in
  let cl = Core.Cluster.create ~archs () in
  ignore (Core.Cluster.compile_and_load cl ~name:"rand" src);
  let agent = Core.Cluster.create_object cl ~node:0 ~class_name:"Agent" in
  let tid = Core.Cluster.spawn cl ~node:0 ~target:agent ~op:"go" ~args:[] in
  match Core.Cluster.run_until_result cl tid with
  | Some (V.Vint v) -> v
  | _ -> QCheck.Test.fail_report "no int result"

let prop_random_migrations =
  QCheck.Test.make ~name:"random programs with random migrations match reference"
    ~count:60 (QCheck.make scenario_gen) (fun scenario ->
      let _, ops = scenario in
      Int32.equal (run_scenario scenario) (reference ops))

(* same scenarios, compiled with the peephole pass *)
let prop_random_migrations_optimized =
  QCheck.Test.make ~name:"random migrations match reference under -O1" ~count:30
    (QCheck.make scenario_gen) (fun (archs, ops) ->
      let src = render_program ops in
      let cl = Core.Cluster.create ~archs () in
      ignore (Core.Cluster.compile_and_load ~optimize:true cl ~name:"rand" src);
      let agent = Core.Cluster.create_object cl ~node:0 ~class_name:"Agent" in
      let tid = Core.Cluster.spawn cl ~node:0 ~target:agent ~op:"go" ~args:[] in
      match Core.Cluster.run_until_result cl tid with
      | Some (V.Vint v) -> Int32.equal v (reference ops)
      | _ -> false)

let suites =
  [
    ( "random-migration",
      [
        QCheck_alcotest.to_alcotest prop_random_migrations;
        QCheck_alcotest.to_alcotest prop_random_migrations_optimized;
      ] );
  ]
