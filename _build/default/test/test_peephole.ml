(* The between-bus-stops peephole pass: code must get smaller, semantics
   and the bus-stop discipline must be untouched — including under
   migration. *)

module A = Isa.Arch
module V = Ert.Value

let check = Alcotest.check

let src =
  {|
object Helper
  var bias : int <- 1
  operation scale[x : int] -> [r : int]
    r <- x * 2 + bias
  end scale
end Helper

object Main
  operation start[] -> [r : int]
    var h : Helper <- new Helper
    var i : int <- 0
    var acc : int <- 0
    loop
      exit when i >= 30
      i <- i + 1
      acc <- acc + h.scale[i]
    end loop
    r <- acc
  end start
end Main
|}

let static_cycles arch p =
  Array.fold_left
    (fun acc (cc : Emc.Compile.compiled_class) ->
      let code = (Emc.Compile.artifact cc ~arch_id:arch.A.id).Emc.Compile.aa_code in
      Array.fold_left
        (fun acc insn -> acc + Isa.Insn.cycles arch.A.family insn)
        acc code.Isa.Code.insns)
    0 p.Emc.Compile.p_classes

let test_code_shrinks () =
  let plain = Emc.Compile.compile_exn ~name:"po" ~archs:A.all src in
  let opt = Emc.Compile.compile_exn ~optimize:true ~name:"po" ~archs:A.all src in
  List.iter
    (fun arch ->
      (* rewrites turn memory accesses into register moves, so the static
         cycle cost must drop everywhere; bytes shrink too on the
         variable-length encodings (SPARC words are fixed at 4 bytes) *)
      let before = static_cycles arch plain and after = static_cycles arch opt in
      if after >= before then
        Alcotest.failf "%s: peephole should cheapen code (%d -> %d cycles)" arch.A.id
          before after)
    A.all;
  let size arch p =
    Array.fold_left
      (fun acc (cc : Emc.Compile.compiled_class) ->
        acc
        + (Emc.Compile.artifact cc ~arch_id:arch.A.id).Emc.Compile.aa_code
            .Isa.Code.byte_size)
      0 p.Emc.Compile.p_classes
  in
  List.iter
    (fun arch ->
      if size arch opt >= size arch plain then
        Alcotest.failf "%s: variable-length code should shrink" arch.A.id)
    [ A.vax; A.sun3 ]

let test_optimized_code_validates () =
  let opt = Emc.Compile.compile_exn ~optimize:true ~name:"po" ~archs:A.all src in
  Array.iter
    (fun (cc : Emc.Compile.compiled_class) ->
      List.iter
        (fun (_, (art : Emc.Compile.arch_artifact)) ->
          Isa.Isa_validate.check_exn art.Emc.Compile.aa_code)
        cc.Emc.Compile.cc_arts)
    opt.Emc.Compile.p_classes

let test_stop_tables_still_isomorphic () =
  let opt = Emc.Compile.compile_exn ~optimize:true ~name:"po" ~archs:A.all src in
  Array.iter
    (fun (cc : Emc.Compile.compiled_class) ->
      let counts =
        List.map
          (fun (_, art) -> Emc.Busstop.count art.Emc.Compile.aa_stops)
          cc.Emc.Compile.cc_arts
      in
      match counts with
      | c :: rest -> List.iter (fun c' -> check Alcotest.int "stop count" c c') rest
      | [] -> ())
    opt.Emc.Compile.p_classes

let run_cluster ~optimize archs program_src =
  let cl = Core.Cluster.create ~archs () in
  ignore (Core.Cluster.compile_and_load ~optimize cl ~name:"po" program_src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
  Core.Cluster.run_until_result cl tid

let test_same_results () =
  List.iter
    (fun arch ->
      let a = run_cluster ~optimize:false [ arch ] src in
      let b = run_cluster ~optimize:true [ arch ] src in
      if a <> b then Alcotest.failf "%s: optimization changed the result" arch.A.id)
    A.all

let migration_src =
  {|
object Agent
  operation go[] -> [r : int]
    var a : int <- 11
    var b : int <- 31
    move self to 1
    var c : int <- a * b
    move self to 0
    r <- c + thisnode
  end go
end Agent

object Main
  operation start[] -> [r : int]
    var ag : Agent <- new Agent
    r <- ag.go[]
  end start
end Main
|}

let test_migration_under_optimization () =
  (* both instances run identically optimized code (the prototype's rule,
     section 3): heterogeneous migration must keep working *)
  List.iter
    (fun pair ->
      match run_cluster ~optimize:true pair migration_src with
      | Some (V.Vint v) -> check Alcotest.int "result" 341 (Int32.to_int v)
      | _ -> Alcotest.fail "no result")
    [ [ A.sparc; A.vax ]; [ A.sun3; A.hp9000_433 ]; [ A.vax; A.sparc ] ]

let suites =
  [
    ( "peephole",
      [
        Alcotest.test_case "code shrinks on every architecture" `Quick test_code_shrinks;
        Alcotest.test_case "optimized code validates" `Quick test_optimized_code_validates;
        Alcotest.test_case "stop tables stay isomorphic" `Quick
          test_stop_tables_still_isomorphic;
        Alcotest.test_case "results unchanged" `Quick test_same_results;
        Alcotest.test_case "migration still works" `Quick test_migration_under_optimization;
      ] );
  ]
