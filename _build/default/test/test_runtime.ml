(* Single-node end-to-end tests: compile a program, load it into a kernel,
   run native code on the virtual CPU, and check the result — on every
   architecture.  The cross-architecture agreement tests are the
   foundation the migration tests build on: if the four machines didn't
   compute the same results from the same source, migration equivalence
   would be meaningless. *)

module A = Isa.Arch

let check = Alcotest.check

exception Deadlock

let run_program ?(fuel = 200_000) arch src ~cls ~op ~args =
  let prog = Emc.Compile.compile_exn ~name:"t" ~archs:[ arch ] src in
  let k = Ert.Kernel.create ~node_id:0 ~arch () in
  Ert.Kernel.load_program k prog;
  let main =
    match Emc.Compile.find_class prog cls with
    | Some c -> c
    | None -> Alcotest.failf "no class %s" cls
  in
  let addr = Ert.Kernel.create_object k ~class_index:main.Emc.Compile.cc_index in
  let tid = Ert.Kernel.spawn_root k ~target_addr:addr ~method_name:op ~args in
  let rec loop n =
    if n > fuel then Alcotest.fail "kernel made no progress";
    match Ert.Kernel.root_result k tid with
    | Some r -> (r, Ert.Kernel.output k)
    | None ->
      if not (Ert.Kernel.has_ready k) then raise Deadlock;
      (match Ert.Kernel.step k with
      | [] -> ()
      | _ :: _ -> Alcotest.fail "unexpected cross-node action on a single node");
      loop (n + 1)
  in
  loop 0

let run_all ?fuel src ~cls ~op ~args = List.map (fun arch -> (arch, run_program ?fuel arch src ~cls ~op ~args)) A.all

let expect_int ?fuel src ~cls ~op ~args expected =
  List.iter
    (fun (arch, (result, _)) ->
      match result with
      | Some (Ert.Value.Vint v) ->
        check Alcotest.int (arch.A.id ^ " result") expected (Int32.to_int v)
      | other ->
        Alcotest.failf "%s: expected int result, got %s" arch.A.id
          (match other with
          | Some v -> Format.asprintf "%a" Ert.Value.pp v
          | None -> "none"))
    (run_all ?fuel src ~cls ~op ~args)

let expect_output ?fuel src ~cls ~op ~args expected =
  List.iter
    (fun (arch, (_, out)) -> check Alcotest.string (arch.A.id ^ " output") expected out)
    (run_all ?fuel src ~cls ~op ~args)

(* ---------------------------------------------------------------------- *)

let test_arith () =
  expect_int ~cls:"Main" ~op:"start" ~args:[]
    {|
object Main
  operation start[] -> [r : int]
    var a : int <- 6
    var b : int <- 7
    r <- a * b + 10 / 2 - 4 % 3
  end start
end Main
|}
    46

let test_loop_sum () =
  expect_int ~cls:"Main" ~op:"start" ~args:[]
    {|
object Main
  operation start[] -> [r : int]
    var i : int <- 0
    var sum : int <- 0
    loop
      exit when i >= 100
      i <- i + 1
      sum <- sum + i
    end loop
    r <- sum
  end start
end Main
|}
    5050

let test_while () =
  expect_int ~cls:"Main" ~op:"start" ~args:[]
    {|
object Main
  operation start[] -> [r : int]
    var n : int <- 10
    var f : int <- 1
    while n > 1
      f <- f * n
      n <- n - 1
    end while
    r <- f
  end start
end Main
|}
    3628800

let test_if_chain () =
  expect_int ~cls:"Main" ~op:"start" ~args:[ Ert.Value.Vint 15l ]
    {|
object Main
  operation start[x : int] -> [r : int]
    if x < 10 then
      r <- 1
    elseif x < 20 then
      r <- 2
    else
      r <- 3
    end if
  end start
end Main
|}
    2

let test_short_circuit () =
  (* the right operand of 'and' must not run when the left is false:
     division by zero would trap *)
  expect_int ~cls:"Main" ~op:"start" ~args:[]
    {|
object Main
  operation start[] -> [r : int]
    var zero : int <- 0
    var x : int <- 5
    if x < 3 and 10 / zero > 1 then
      r <- 1
    else
      r <- 2
    end if
    if x > 3 or 10 / zero > 1 then
      r <- r + 10
    end if
  end start
end Main
|}
    12

let test_invocation () =
  expect_int ~cls:"Main" ~op:"start" ~args:[]
    {|
object Adder
  operation add[a : int, b : int] -> [r : int]
    r <- a + b
  end add
end Adder

object Main
  operation start[] -> [r : int]
    var a : Adder <- new Adder
    r <- a.add[19, 23]
  end start
end Main
|}
    42

let test_fields_and_initially () =
  expect_int ~cls:"Main" ~op:"start" ~args:[]
    {|
object Counter
  var count : int <- 0
  var step : int <- 1

  operation initially[s : int]
    step <- s
  end initially

  operation tick[] -> [r : int]
    count <- count + step
    r <- count
  end tick
end Counter

object Main
  operation start[] -> [r : int]
    var c : Counter <- new Counter[5]
    c.tick[]
    c.tick[]
    r <- c.tick[]
  end start
end Main
|}
    15

let test_recursion () =
  expect_int ~cls:"Main" ~op:"start" ~args:[]
    {|
object Fib
  operation fib[n : int] -> [r : int]
    if n < 2 then
      r <- n
    else
      r <- self.fib[n - 1] + self.fib[n - 2]
    end if
  end fib
end Fib

object Main
  operation start[] -> [r : int]
    var f : Fib <- new Fib
    r <- f.fib[15]
  end start
end Main
|}
    610

let test_reals () =
  expect_output ~cls:"Main" ~op:"start" ~args:[]
    {|
object Main
  operation start[]
    var x : real <- 1.5
    var y : real <- 2.25
    print[x + y]
    print[x * y]
    print[y - x, " ", y / x]
    var i : int <- 3
    print[x + i]
  end start
end Main
|}
    "3.75\n3.375\n0.75 1.5\n4.5\n"

let test_strings () =
  expect_output ~cls:"Main" ~op:"start" ~args:[]
    {|
object Main
  operation start[]
    var a : string <- "hello"
    var b : string <- a + ", " + "world"
    print[b]
    if b == "hello, world" then
      print["equal"]
    end if
    if a != b then
      print["different"]
    end if
  end start
end Main
|}
    "hello, world\nequal\ndifferent\n"

let test_print_mixed () =
  expect_output ~cls:"Main" ~op:"start" ~args:[]
    {|
object Main
  operation start[]
    print["n=", 42, " b=", true, " nil=", nil]
  end start
end Main
|}
    "n=42 b=true nil=nil\n"

let test_monitor_single_thread () =
  expect_int ~cls:"Main" ~op:"start" ~args:[]
    {|
object Account
  var balance : int <- 0

  monitor operation deposit[n : int] -> [r : int]
    balance <- balance + n
    r <- balance
  end deposit
end Account

object Main
  operation start[] -> [r : int]
    var a : Account <- new Account
    a.deposit[10]
    a.deposit[20]
    r <- a.deposit[12]
  end start
end Main
|}
    42

let test_nested_objects () =
  expect_int ~cls:"Main" ~op:"start" ~args:[]
    {|
object Cell
  var value : int <- 0
  operation set[v : int]
    value <- v
  end set
  operation get[] -> [r : int]
    r <- value
  end get
end Cell

object Pair
  var a : Cell <- nil
  var b : Cell <- nil
  operation initially[]
    a <- new Cell
    b <- new Cell
  end initially
  operation fill[x : int, y : int]
    a.set[x]
    b.set[y]
  end fill
  operation sum[] -> [r : int]
    r <- a.get[] + b.get[]
  end sum
end Pair

object Main
  operation start[] -> [r : int]
    var p : Pair <- new Pair
    p.fill[20, 22]
    r <- p.sum[]
  end start
end Main
|}
    42

let test_thisnode_locate () =
  expect_int ~cls:"Main" ~op:"start" ~args:[]
    {|
object Main
  operation start[] -> [r : int]
    r <- thisnode + locate[self]
  end start
end Main
|}
    0

let test_negatives () =
  expect_int ~cls:"Main" ~op:"start" ~args:[]
    {|
object Main
  operation start[] -> [r : int]
    var a : int <- -7
    var b : int <- 0 - 3
    r <- -(a + b) - 4
  end start
end Main
|}
    6

let test_div_zero_traps () =
  List.iter
    (fun arch ->
      match
        run_program arch ~cls:"Main" ~op:"start" ~args:[]
          {|
object Main
  operation start[] -> [r : int]
    var z : int <- 0
    r <- 1 / z
  end start
end Main
|}
      with
      | _ -> Alcotest.failf "%s: expected a runtime error" arch.A.id
      | exception Ert.Kernel.Runtime_error _ -> ())
    A.all

let test_deep_recursion_overflows () =
  List.iter
    (fun arch ->
      match
        run_program ~fuel:2_000_000 arch ~cls:"Main" ~op:"start" ~args:[]
          {|
object R
  operation down[n : int] -> [r : int]
    r <- self.down[n + 1]
  end down
end R
object Main
  operation start[] -> [r : int]
    var x : R <- new R
    r <- x.down[0]
  end start
end Main
|}
      with
      | _ -> Alcotest.failf "%s: expected stack overflow" arch.A.id
      | exception Ert.Kernel.Runtime_error msg ->
        if not (String.length msg > 0) then Alcotest.fail "empty error")
    A.all

(* Random arithmetic programs must compute identical integer results on all
   four machines — the data may be byte swapped in memory, the code
   different, but the semantics identical. *)
let random_expr_gen =
  let open QCheck.Gen in
  let rec expr depth =
    if depth = 0 then
      oneof [ map (fun n -> string_of_int n) (int_range (-50) 50); return "x"; return "y" ]
    else
      let sub = expr (depth - 1) in
      oneof
        [
          map2 (fun a b -> Printf.sprintf "(%s + %s)" a b) sub sub;
          map2 (fun a b -> Printf.sprintf "(%s - %s)" a b) sub sub;
          map2 (fun a b -> Printf.sprintf "(%s * %s)" a b) sub sub;
          map2 (fun a b -> Printf.sprintf "(%s / (%s * %s + 1))" a b b) sub sub;
        ]
  in
  expr 3

let test_cross_arch_equivalence =
  QCheck.Test.make ~name:"random expressions agree on all architectures" ~count:40
    (QCheck.make random_expr_gen) (fun e ->
      let src =
        Printf.sprintf
          {|
object Main
  operation start[x : int, y : int] -> [r : int]
    r <- %s
  end start
end Main
|}
          e
      in
      let results =
        List.map
          (fun arch ->
            match run_program arch src ~cls:"Main" ~op:"start" ~args:[ Ert.Value.Vint 11l; Ert.Value.Vint (-3l) ] with
            | Some (Ert.Value.Vint v), _ -> v
            | _ -> QCheck.Test.fail_report "non-int result"
            | exception Ert.Kernel.Runtime_error _ -> 0x7FFFFFFFl
            (* traps (division by zero) must agree too *))
          A.all
      in
      match results with
      | r :: rest -> List.for_all (Int32.equal r) rest
      | [] -> true)

let suites =
  [
    ( "runtime.exec",
      [
        Alcotest.test_case "arithmetic" `Quick test_arith;
        Alcotest.test_case "loop sum" `Quick test_loop_sum;
        Alcotest.test_case "while factorial" `Quick test_while;
        Alcotest.test_case "if chains" `Quick test_if_chain;
        Alcotest.test_case "short-circuit and/or" `Quick test_short_circuit;
        Alcotest.test_case "invocation" `Quick test_invocation;
        Alcotest.test_case "fields and initially" `Quick test_fields_and_initially;
        Alcotest.test_case "recursion" `Quick test_recursion;
        Alcotest.test_case "reals" `Quick test_reals;
        Alcotest.test_case "strings" `Quick test_strings;
        Alcotest.test_case "print mixed" `Quick test_print_mixed;
        Alcotest.test_case "monitor, single thread" `Quick test_monitor_single_thread;
        Alcotest.test_case "nested objects" `Quick test_nested_objects;
        Alcotest.test_case "thisnode/locate" `Quick test_thisnode_locate;
        Alcotest.test_case "negatives" `Quick test_negatives;
        Alcotest.test_case "division by zero traps" `Quick test_div_zero_traps;
        Alcotest.test_case "stack overflow" `Quick test_deep_recursion_overflows;
        QCheck_alcotest.to_alcotest test_cross_arch_equivalence;
      ] );
  ]
