(* emdis: disassemble the native code generated for one architecture,
   side by side with its bus-stop table.

     emdis FILE ARCH [CLASS] *)

let () =
  match Array.to_list Sys.argv with
  | _ :: file :: arch_id :: rest ->
    let source = In_channel.with_open_text file In_channel.input_all in
    let arch =
      try Isa.Arch.by_id arch_id
      with Not_found ->
        Printf.eprintf "unknown architecture %s (have: %s)\n" arch_id
          (String.concat ", " (List.map (fun a -> a.Isa.Arch.id) Isa.Arch.all));
        exit 2
    in
    let prog =
      match
        Emc.Compile.compile ~name:(Filename.remove_extension (Filename.basename file)) ~archs:[ arch ] source
      with
      | Ok p -> p
      | Error errs ->
        List.iter
          (fun e ->
            Printf.eprintf "%s: %s\n" file (Format.asprintf "%a" Emc.Diag.pp_error e))
          errs;
        exit 1
    in
    let wanted (cc : Emc.Compile.compiled_class) =
      match rest with
      | [] -> true
      | cls :: _ -> String.equal cc.Emc.Compile.cc_name cls
    in
    Array.iter
      (fun (cc : Emc.Compile.compiled_class) ->
        if wanted cc then begin
          let art = Emc.Compile.artifact cc ~arch_id:arch.Isa.Arch.id in
          print_string (Isa.Disasm.listing art.Emc.Compile.aa_code);
          Format.printf "%a@." Emc.Busstop.pp art.Emc.Compile.aa_stops
        end)
      prog.Emc.Compile.p_classes
  | _ ->
    prerr_endline "emdis FILE ARCH [CLASS]";
    exit 2
