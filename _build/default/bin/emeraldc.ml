(* emeraldc: compile an Emerald-like source file for the heterogeneous
   architectures and inspect what the compiler produces — native code,
   templates, bus-stop tables, IR.

     emeraldc FILE [options]
       --arch ID       compile only for this architecture (vax, sun3,
                       hp433, hp385, sparc); default: all
       --dump-ir       print the machine-independent IR
       --dump-code     print the native-code listings
       --dump-stops    print the bus-stop tables
       --dump-template print the object/activation-record templates *)

let usage = "emeraldc FILE [--arch ID] [--dump-ir] [--dump-code] [--dump-stops] [--dump-template]"

let () =
  let file = ref None in
  let arch_id = ref None in
  let dump_ir = ref false in
  let dump_code = ref false in
  let dump_stops = ref false in
  let dump_template = ref false in
  let spec =
    [
      ("--arch", Arg.String (fun s -> arch_id := Some s), "ID architecture to compile for");
      ("--dump-ir", Arg.Set dump_ir, " print the IR");
      ("--dump-code", Arg.Set dump_code, " print native code listings");
      ("--dump-stops", Arg.Set dump_stops, " print bus-stop tables");
      ("--dump-template", Arg.Set dump_template, " print templates");
    ]
  in
  Arg.parse spec (fun f -> file := Some f) usage;
  let file =
    match !file with
    | Some f -> f
    | None ->
      prerr_endline usage;
      exit 2
  in
  let source = In_channel.with_open_text file In_channel.input_all in
  let archs =
    match !arch_id with
    | None -> Isa.Arch.all
    | Some id -> (
      try [ Isa.Arch.by_id id ]
      with Not_found ->
        Printf.eprintf "unknown architecture %s (have: %s)\n" id
          (String.concat ", " (List.map (fun a -> a.Isa.Arch.id) Isa.Arch.all));
        exit 2)
  in
  match
    Emc.Compile.compile ~name:(Filename.remove_extension (Filename.basename file)) ~archs
      source
  with
  | Error errs ->
    List.iter
      (fun e -> Printf.eprintf "%s: %s\n" file (Format.asprintf "%a" Emc.Diag.pp_error e))
      errs;
    exit 1
  | Ok prog ->
    Printf.printf "%s: %d class(es) compiled for %s\n" file
      (Array.length prog.Emc.Compile.p_classes)
      (String.concat ", " (List.map (fun a -> a.Isa.Arch.id) archs));
    Array.iter
      (fun (cc : Emc.Compile.compiled_class) ->
        Printf.printf "  %s: oid %ld, %d bus stop(s)\n" cc.Emc.Compile.cc_name
          cc.Emc.Compile.cc_oid cc.Emc.Compile.cc_ir.Emc.Ir.cl_nstops;
        List.iter
          (fun (id, (art : Emc.Compile.arch_artifact)) ->
            Printf.printf "    %-6s %5d bytes of code\n" id
              art.Emc.Compile.aa_code.Isa.Code.byte_size)
          cc.Emc.Compile.cc_arts)
      prog.Emc.Compile.p_classes;
    if !dump_ir then Format.printf "@.%a" Emc.Pretty.pp_program prog.Emc.Compile.p_ir;
    Array.iter
      (fun (cc : Emc.Compile.compiled_class) ->
        if !dump_template then
          Format.printf "@.%a" Emc.Template.pp_class cc.Emc.Compile.cc_template;
        List.iter
          (fun (_, (art : Emc.Compile.arch_artifact)) ->
            if !dump_code then begin
              print_newline ();
              print_string (Isa.Disasm.listing art.Emc.Compile.aa_code)
            end;
            if !dump_stops then Format.printf "@.%a" Emc.Busstop.pp art.Emc.Compile.aa_stops)
          cc.Emc.Compile.cc_arts)
      prog.Emc.Compile.p_classes
