bin/emeraldc.ml: Arg Array Emc Filename Format In_channel Isa List Printf String
