bin/emeraldc.mli:
