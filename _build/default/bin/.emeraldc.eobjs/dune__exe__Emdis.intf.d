bin/emdis.mli:
