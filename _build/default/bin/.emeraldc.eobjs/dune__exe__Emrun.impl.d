bin/emrun.ml: Arg Core Emc Enet Ert Filename Format In_channel Int32 Isa List Mobility Printf String
