bin/emrun.mli:
