bin/emdis.ml: Array Emc Filename Format In_channel Isa List Printf String Sys
