examples/quickstart.ml: Core Enet Ert Format Int32 Isa List Printf
