examples/pipeline.mli:
