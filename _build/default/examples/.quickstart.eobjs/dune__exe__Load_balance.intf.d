examples/load_balance.mli:
