examples/call_by_move.ml: Core Ert Int32 Isa Printf
