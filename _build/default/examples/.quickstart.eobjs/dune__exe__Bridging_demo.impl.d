examples/bridging_demo.ml: Format Mobility Printf String
