examples/pipeline.ml: Core Enet Ert Int32 Isa List Printf
