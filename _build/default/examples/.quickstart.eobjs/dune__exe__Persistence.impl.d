examples/persistence.ml: Core Ert Float Isa List Mobility Printf String
