examples/load_balance.ml: Core Ert Int32 Isa List Printf
