examples/persistence.mli:
