examples/quickstart.mli:
