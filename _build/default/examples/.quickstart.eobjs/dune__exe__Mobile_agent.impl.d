examples/mobile_agent.ml: Core Enet Ert Int32 Isa List Printf
