examples/wordcount.mli:
