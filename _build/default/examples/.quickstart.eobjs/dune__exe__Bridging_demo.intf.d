examples/bridging_demo.mli:
