examples/call_by_move.mli:
