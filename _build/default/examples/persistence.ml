(* Checkpointing a native thread through time — and across machines.

   The machine-independent activation-record format that ships threads
   over the network works just as well as a persistence format: a thread
   parked at a bus stop is serialised to bytes, the machine forgets it,
   and the bytes rebuild it later — here on a machine with a different
   byte order, float format and calling convention than the one it was
   suspended on.

     dune exec examples/persistence.exe *)

module A = Isa.Arch
module V = Ert.Value
module C = Mobility.Checkpoint

let src =
  {|
object Survey
  var samples : int <- 0
  var acc : real <- 0.0

  operation run[n : int] -> [r : real]
    var i : int <- 0
    loop
      exit when i >= n
      i <- i + 1
      // a slowly converging series: genuinely interruptible work
      acc <- acc + 1.0 / (1.0 * i * i)
      samples <- i
    end loop
    r <- acc
  end run

  operation sampled[] -> [r : int]
    r <- samples
  end sampled
end Survey

object Idler
  operation spin[n : int]
    var i : int <- 0
    loop
      exit when i >= n
      i <- i + 1
    end loop
  end spin
end Idler

object Mover
  operation relocate[s : Survey, dest : int]
    move s to dest
  end relocate
end Mover
|}

let () =
  print_endline "== Suspending a native thread to bytes, resuming elsewhere ==";
  print_endline "";
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.vax ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"persist" src);
  let survey = Core.Cluster.create_object cl ~node:0 ~class_name:"Survey" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:survey ~op:"run" ~args:[ V.Vint 400l ]
  in
  (* a second ready thread makes the loop's poll stops fire, so the survey
     parks at a bus stop after every iteration *)
  let idler = Core.Cluster.create_object cl ~node:0 ~class_name:"Idler" in
  ignore (Core.Cluster.spawn cl ~node:0 ~target:idler ~op:"spin" ~args:[ V.Vint 500l ]);
  for _ = 1 to 120 do
    ignore (Core.Cluster.step_once cl)
  done;

  let image = C.suspend (Core.Cluster.kernel cl 0) ~thread:tid in
  Printf.printf "suspended the survey thread on the SPARC: %d bytes,\n"
    (String.length image);
  (match C.parse image with
  | [ ms ] ->
    Printf.printf "one segment, %d activation record(s), parked at a bus stop.\n"
      (List.length ms.Mobility.Mi_frame.ms_frames)
  | _ -> ());
  print_endline "";

  (* the cluster carries on without it *)
  Core.Cluster.run cl;
  print_endline "the rest of the cluster drained; the thread exists only as bytes.";

  (* ship the survey object to the VAX, then resurrect the thread there *)
  let mover = Core.Cluster.create_object cl ~node:0 ~class_name:"Mover" in
  let mt =
    Core.Cluster.spawn cl ~node:0 ~target:mover ~op:"relocate"
      ~args:[ V.Vref survey; V.Vint 1l ]
  in
  Core.Cluster.run cl;
  ignore (Core.Cluster.result cl mt);
  Printf.printf "moved the survey object to the VAX (now on node %s).\n"
    (match Core.Cluster.where_is cl survey with
    | Some n -> string_of_int n
    | None -> "?");

  Core.Cluster.restore_thread cl ~node:1 image;
  print_endline "restored the thread from bytes on the VAX; resuming...";
  print_endline "";
  (match Core.Cluster.run_until_result cl tid with
  | Some (V.Vreal v) ->
    Printf.printf "sum of 1/i^2 for i = 1..400: %.6f (pi^2/6 = %.6f)\n" v
      (Float.pi *. Float.pi /. 6.0)
  | _ -> print_endline "no result");
  let probe = Core.Cluster.spawn cl ~node:1 ~target:survey ~op:"sampled" ~args:[] in
  (match Core.Cluster.run_until_result cl probe with
  | Some (V.Vint n) -> Printf.printf "samples taken: %ld of 400 — none lost, none repeated.\n" n
  | _ -> ());
  print_endline "";
  print_endline
    "the partial sum crossed from IEEE-754 on a big-endian RISC to VAX\n\
     F-floating on a little-endian CISC inside the checkpoint image, and\n\
     the loop resumed exactly where it was suspended."
