(* Bridging code (section 2.4, Figures 3 and 4).

   Walks through the paper's example of thread mobility between
   differently optimized codes: two code-motion optimizations of one
   abstract sequence, a thread suspended at a visible point of one that
   has no correspondent in the other, and the dynamically constructed
   bridge that makes every operation execute exactly once — then a second
   migration from inside the bridge.

     dune exec examples/bridging_demo.exe *)

module B = Mobility.Bridging

let plain n = { B.name = n; kind = B.Plain }
let call n = { B.name = n; kind = B.Call }
let stop n = { B.name = n; kind = B.Stop }

let show name code = Format.printf "  %-9s %a@." name B.pp_code code

let () =
  print_endline "== Bridging code: mobility between differently optimized codes ==";
  print_endline "";
  let abstract =
    B.abstract
      [ plain "o1"; plain "o2"; plain "o3"; call "switch"; plain "o4"; plain "o5";
        stop "o6" ]
  in
  let code1 = B.apply_edits abstract [ B.Swap 2; B.Swap 1 ] in
  let code2 =
    B.apply_edits abstract
      [ B.Swap 0; B.Swap 2; B.Swap 1; B.Swap 4; B.Swap 3; B.Swap 2; B.Swap 1; B.Swap 3;
        B.Swap 4; B.Swap 3; B.Swap 4 ]
  in
  print_endline "Figure 3 - one abstract sequence, two optimized instances";
  print_endline "(ops in [brackets] are bus stops, with () are visible calls):";
  show "abstract:" abstract;
  show "code1:" code1;
  show "code2:" code2;
  print_endline "";
  print_endline "A thread running code1 is suspended at switch().  The processor it";
  print_endline "moves to runs code2, where that program point has no correspondent";
  print_endline "(it is not a bus stop).  Figure 4 - the generated bridge:";
  print_endline "";
  let bridge = B.build_bridge ~from_:code1 ~at:"switch" ~to_:code2 in
  Format.printf "  %a@." (B.pp_bridge ~to_:code2) bridge;
  print_endline "";
  let log = B.run_with_migration ~from_:code1 ~at:"switch" ~to_:code2 in
  Printf.printf "full execution: %s\n" (String.concat "; " log);
  Printf.printf "every abstract operation executed exactly once: %b\n"
    (B.exactly_once ~abstract log);
  print_endline "";
  print_endline "Bridging from bridging (the thread moves again mid-bridge):";
  let abs2 =
    B.abstract
      [ plain "a"; call "b"; plain "c"; call "d"; plain "e"; stop "ret" ]
  in
  let i1 = B.apply_edits abs2 [ B.Swap 1; B.Swap 3 ] in
  let i2 = B.apply_edits abs2 [ B.Swap 0; B.Swap 2 ] in
  let i3 = B.apply_edits abs2 [ B.Swap 3; B.Swap 2 ] in
  show "abstract:" abs2;
  show "inst1:" i1;
  show "inst2:" i2;
  show "inst3:" i3;
  let log2 = B.run_with_two_migrations ~a:i1 ~at_a:"b" ~b:i2 ~at_b:"d" ~c:i3 in
  Printf.printf "migrate at b() then again at d(): %s\n" (String.concat "; " log2);
  Printf.printf "exactly once: %b\n" (B.exactly_once ~abstract:abs2 log2);
  print_endline "";
  print_endline "(a bridge position is fully described by the set of operations";
  print_endline " already executed, so re-migration needs no special machinery)"
