(* Distributed histogram with a mobile worker and vectors.

   Each node holds a Shard object with a vector of samples (produced
   locally — too bulky to ship).  A Tally agent carries a small histogram
   vector from node to node, merging each shard into it with cheap local
   reads, and brings the totals home.  The histogram vector itself is
   marshalled by value inside the agent's activation records at every hop,
   across three different machine representations.

     dune exec examples/wordcount.exe *)

module A = Isa.Arch
module V = Ert.Value

let src =
  {|
object Shard
  var data : vector[int] <- nil

  operation initially[seed : int, n : int]
    data <- vector[int, n]
    var i : int <- 0
    var x : int <- seed
    loop
      exit when i >= n
      x <- (x * 1103 + 12345) % 100000
      data[i] <- x % 8
      i <- i + 1
    end loop
  end initially

  operation item[i : int] -> [r : int]
    r <- data[i]
  end item

  operation count[] -> [r : int]
    r <- data.size[]
  end count
end Shard

object Tally
  operation run[s1 : Shard, s2 : Shard, s3 : Shard] -> [r : int]
    var hist : vector[int] <- vector[int, 8]

    move self to locate[s1]
    print["tallying shard on node ", thisnode]
    var i : int <- 0
    loop
      exit when i >= s1.count[]
      hist[s1.item[i]] <- hist[s1.item[i]] + 1
      i <- i + 1
    end loop

    move self to locate[s2]
    print["tallying shard on node ", thisnode]
    i <- 0
    loop
      exit when i >= s2.count[]
      hist[s2.item[i]] <- hist[s2.item[i]] + 1
      i <- i + 1
    end loop

    move self to locate[s3]
    print["tallying shard on node ", thisnode]
    i <- 0
    loop
      exit when i >= s3.count[]
      hist[s3.item[i]] <- hist[s3.item[i]] + 1
      i <- i + 1
    end loop

    move self to 0
    var total : int <- 0
    var bucket : int <- 0
    loop
      exit when bucket >= 8
      print["  bucket ", bucket, ": ", hist[bucket]]
      total <- total + hist[bucket]
      bucket <- bucket + 1
    end loop
    r <- total
  end run
end Tally
|}

let () =
  print_endline "== Distributed histogram: a vector rides the migrating thread ==";
  print_endline "";
  let archs = [ A.sparc; A.vax; A.sun3; A.hp9000_385 ] in
  let cl = Core.Cluster.create ~archs () in
  ignore (Core.Cluster.compile_and_load cl ~name:"wordcount" src);
  let per_shard = 40 in
  let mk_shard node seed =
    let oid = Core.Cluster.create_object cl ~node ~class_name:"Shard" in
    let t =
      Core.Cluster.spawn cl ~node ~target:oid ~op:"initially"
        ~args:[ V.Vint seed; V.Vint (Int32.of_int per_shard) ]
    in
    Core.Cluster.run cl;
    ignore (Core.Cluster.result cl t);
    oid
  in
  let s1 = mk_shard 1 17l in
  let s2 = mk_shard 2 99l in
  let s3 = mk_shard 3 4242l in
  let tally = Core.Cluster.create_object cl ~node:0 ~class_name:"Tally" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:tally ~op:"run"
      ~args:[ V.Vref s1; V.Vref s2; V.Vref s3 ]
  in
  let r = Core.Cluster.run_until_result cl tid in
  for i = 0 to 3 do
    let out = Core.Cluster.output cl ~node:i in
    if out <> "" then Printf.printf "node %d (%s):\n%s" i (List.nth archs i).A.name out
  done;
  print_endline "";
  (match r with
  | Some (V.Vint total) ->
    Printf.printf "histogram total: %ld (expected %d) — %s\n" total (3 * per_shard)
      (if Int32.to_int total = 3 * per_shard then "every sample counted exactly once"
       else "MISMATCH")
  | _ -> print_endline "no result");
  Printf.printf
    "the 8-bucket histogram crossed SPARC -> VAX -> Sun-3 -> HP -> SPARC inside\n\
     the thread's activation records; %d messages moved %d bytes in total.\n"
    (Enet.Netsim.messages_sent (Core.Cluster.network cl))
    (Enet.Netsim.bytes_sent (Core.Cluster.network cl))
