(* Load balancing with thread mobility.

   Six worker threads all start on one (slow) VAX.  Each computes a chunk
   of work; in the balanced run, each first moves itself to a different
   machine of the heterogeneous pool and computes there.  A monitored
   collector object gathers results with proper mutual exclusion across
   nodes.  Compare the virtual completion times.

     dune exec examples/load_balance.exe *)

module A = Isa.Arch
module V = Ert.Value

let src =
  {|
object Collector
  var sum : int <- 0
  var done_count : int <- 0

  monitor operation deposit[v : int] -> [r : int]
    sum <- sum + v
    done_count <- done_count + 1
    r <- done_count
  end deposit

  monitor operation total[] -> [r : int]
    r <- sum
  end total
end Collector

object Worker
  operation crunch[c : Collector, chunk : int, n : int, target : int] -> [r : int]
    if target >= 0 then
      move self to target
    end if
    var i : int <- 0
    var acc : int <- 0
    loop
      exit when i >= n
      i <- i + 1
      acc <- acc + (chunk * 1000 + i) % 97
    end loop
    r <- c.deposit[acc]
  end crunch
end Worker
|}

let run ~balanced =
  let archs = [ A.vax; A.sparc; A.hp9000_433; A.sun3; A.hp9000_385 ] in
  let cl = Core.Cluster.create ~archs () in
  ignore (Core.Cluster.compile_and_load cl ~name:"balance" src);
  let collector = Core.Cluster.create_object cl ~node:1 ~class_name:"Collector" in
  let n_workers = 6 in
  let tids =
    List.init n_workers (fun i ->
        let w = Core.Cluster.create_object cl ~node:0 ~class_name:"Worker" in
        let target = if balanced then (i mod 4) + 1 else -1 in
        Core.Cluster.spawn cl ~node:0 ~target:w ~op:"crunch"
          ~args:
            [ V.Vref collector; V.Vint (Int32.of_int i); V.Vint 400l;
              V.Vint (Int32.of_int target) ])
  in
  Core.Cluster.run cl;
  let finished =
    List.for_all
      (fun t ->
        match Core.Cluster.result cl t with
        | Some _ -> true
        | None -> false)
      tids
  in
  if not finished then failwith "workers did not finish";
  (* read the grand total with one more (remote) invocation *)
  let probe = Core.Cluster.create_object cl ~node:0 ~class_name:"Worker" in
  ignore probe;
  let sum_tid =
    Core.Cluster.spawn cl ~node:1 ~target:collector ~op:"total" ~args:[]
  in
  let sum =
    match Core.Cluster.run_until_result cl sum_tid with
    | Some (V.Vint v) -> Int32.to_int v
    | _ -> -1
  in
  (sum, Core.Cluster.global_time_us cl /. 1000.0)

let () =
  print_endline "== Load balancing: threads migrate off an overloaded VAX ==";
  print_endline "";
  print_endline "pool: VAX (overloaded), SPARC, HP9000/300-1, Sun-3, HP9000/300-2";
  print_endline "6 worker threads, 400 loop iterations each, monitored collector.";
  print_endline "";
  let sum_stay, t_stay = run ~balanced:false in
  let sum_bal, t_bal = run ~balanced:true in
  Printf.printf "all on the VAX:      total=%d, completion %8.1f ms (virtual)\n" sum_stay
    t_stay;
  Printf.printf "self-balanced:       total=%d, completion %8.1f ms (virtual)\n" sum_bal
    t_bal;
  print_endline "";
  if sum_stay <> sum_bal then print_endline "MISMATCH: totals differ!"
  else
    Printf.printf
      "identical totals; migration %s the run by %.1fx despite paying for\n\
       six heterogeneous thread moves and remote deposits.\n"
      (if t_bal < t_stay then "sped up" else "slowed down")
      (t_stay /. t_bal)
