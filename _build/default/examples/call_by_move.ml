(* Example 1 of the paper, in full:

     "Consider an object X residing on node A invoking an operation in an
      object Y residing on node B, the effect of the operation being that
      X is moved to node C.  A remote procedure call is performed to
      invoke the operation in Y.  When the thread returns from executing
      the operation in Y, execution has to resume on node C where X is
      now residing.  The system has to move part of the call stack of the
      existing thread from node A to node C."

   Node A is a SPARC, node B a VAX, node C a Sun-3 — so the migrated call
   stack is additionally translated between three machine representations.

     dune exec examples/call_by_move.exe *)

module A = Isa.Arch
module V = Ert.Value

let src =
  {|
object Y
  var relocations : int <- 0

  operation relocate[x : X, target : int] -> [r : int]
    print["Y (on node ", thisnode, "): moving the caller to node ", target]
    move x to target
    relocations <- relocations + 1
    r <- relocations
  end relocate
end Y

object X
  operation run[y : Y, target : int] -> [r : int]
    var before : int <- thisnode
    print["X calls Y from node ", before]
    var count : int <- y.relocate[self, target]
    var after : int <- thisnode
    print["X resumed on node ", after, " (relocation #", count, ")"]
    r <- before * 100 + after
  end run
end X

object Main
  operation start[] -> [r : int]
    var y : Y <- new Y
    var x : X <- new X
    move y to 1
    r <- x.run[y, 2]
  end start
end Main
|}

let () =
  print_endline "== Example 1: the thread returns to where its object went ==";
  print_endline "";
  print_endline "  node A (0): SPARC   - X starts here";
  print_endline "  node B (1): VAX     - Y lives here";
  print_endline "  node C (2): Sun-3   - X is moved here mid-call";
  print_endline "";
  let cl = Core.Cluster.create ~archs:[ A.sparc; A.vax; A.sun3 ] () in
  ignore (Core.Cluster.compile_and_load cl ~name:"example1" src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let tid = Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start" ~args:[] in
  let r = Core.Cluster.run_until_result cl tid in
  for i = 0 to 2 do
    let out = Core.Cluster.output cl ~node:i in
    if out <> "" then Printf.printf "node %d:\n%s" i out
  done;
  print_endline "";
  (match r with
  | Some (V.Vint v) ->
    let before = Int32.to_int v / 100 and after = Int32.to_int v mod 100 in
    Printf.printf "X invoked from node %d and resumed on node %d.\n" before after;
    if before = 0 && after = 2 then
      print_endline
        "The activation record of X.run migrated from the SPARC to the Sun-3\n\
         while the invocation of Y.relocate was outstanding on the VAX: the\n\
         reply chased the moved stack segment to its new home."
    else print_endline "unexpected result!"
  | _ -> print_endline "no result");
  Printf.printf "(virtual time: %.1f ms)\n" (Core.Cluster.global_time_us cl /. 1000.0)
