(* A mobile data-gathering agent — the classic motivation for fine-grained
   mobility: move the computation to the data instead of shipping the data
   to the computation.

   Each workstation hosts a Sensor object with locally produced readings.
   The agent thread hops from node to node, reads each sensor with cheap
   local invocations (no RPC per sample!), aggregates on the spot, and
   carries only the running summary in its activation records — across
   four different machine architectures.

     dune exec examples/mobile_agent.exe *)

module A = Isa.Arch
module V = Ert.Value

let src =
  {|
object Sensor
  var base : int <- 0
  var samples : int <- 0

  operation initially[b : int]
    base <- b
  end initially

  operation read[i : int] -> [r : int]
    samples <- samples + 1
    r <- base + i * 7 % 13
  end read

  operation sampled[] -> [r : int]
    r <- samples
  end sampled
end Sensor

object Agent
  var visited : int <- 0

  operation survey[s1 : Sensor, s2 : Sensor, s3 : Sensor, per : int] -> [r : int]
    var total : int <- 0
    var station : int <- 0

    move self to locate[s1]
    station <- thisnode
    print["agent surveying sensor on node ", station]
    var i : int <- 0
    loop
      exit when i >= per
      i <- i + 1
      total <- total + s1.read[i]
    end loop
    visited <- visited + 1

    move self to locate[s2]
    print["agent surveying sensor on node ", thisnode]
    i <- 0
    loop
      exit when i >= per
      i <- i + 1
      total <- total + s2.read[i]
    end loop
    visited <- visited + 1

    move self to locate[s3]
    print["agent surveying sensor on node ", thisnode]
    i <- 0
    loop
      exit when i >= per
      i <- i + 1
      total <- total + s3.read[i]
    end loop
    visited <- visited + 1

    move self to 0
    print["agent home with ", visited, " stations surveyed"]
    r <- total
  end survey
end Agent
|}

let expected per =
  (* base b on node n: sum over i=1..per of b + (i*7 mod 13) *)
  let one b =
    let t = ref 0 in
    for i = 1 to per do
      t := !t + b + (i * 7 mod 13)
    done;
    !t
  in
  one 100 + one 200 + one 300

let () =
  print_endline "== Mobile agent: move the computation to the data ==";
  print_endline "";
  let archs = [ A.sparc; A.vax; A.sun3; A.hp9000_433 ] in
  let cl = Core.Cluster.create ~archs () in
  ignore (Core.Cluster.compile_and_load cl ~name:"agent" src);
  (* a sensor per remote node, each with a different base reading *)
  let mk_sensor node base =
    let oid = Core.Cluster.create_object cl ~node ~class_name:"Sensor" in
    (* run its initially with the node-specific base *)
    let t =
      Core.Cluster.spawn cl ~node ~target:oid ~op:"initially" ~args:[ V.Vint base ]
    in
    Core.Cluster.run cl;
    ignore (Core.Cluster.result cl t);
    oid
  in
  let s1 = mk_sensor 1 100l in
  let s2 = mk_sensor 2 200l in
  let s3 = mk_sensor 3 300l in
  let agent = Core.Cluster.create_object cl ~node:0 ~class_name:"Agent" in
  let per = 10 in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:agent ~op:"survey"
      ~args:[ V.Vref s1; V.Vref s2; V.Vref s3; V.Vint (Int32.of_int per) ]
  in
  let r = Core.Cluster.run_until_result cl tid in
  for i = 0 to 3 do
    let out = Core.Cluster.output cl ~node:i in
    if out <> "" then Printf.printf "node %d (%s):\n%s" i (List.nth archs i).A.name out
  done;
  print_endline "";
  (match r with
  | Some (V.Vint v) ->
    Printf.printf "aggregate reading: %ld (expected %d) - %s\n" v (expected per)
      (if Int32.to_int v = expected per then "correct across VAX/Sun-3/HP/SPARC"
       else "MISMATCH")
  | _ -> print_endline "no result");
  Printf.printf "messages on the wire: %d (vs %d samples taken: local reads are free)\n"
    (Enet.Netsim.messages_sent (Core.Cluster.network cl))
    (3 * per);
  Printf.printf "virtual time: %.1f ms\n" (Core.Cluster.global_time_us cl /. 1000.0)
