(* A heterogeneous processing pipeline.

   Three stages connected by bounded buffers with monitor condition
   variables: a generator process on the VAX, a squaring stage on the
   Sun-3, and a summing consumer on the SPARC.  Each stage is an object
   with its own Emerald process section; the stage objects are moved to
   their machines before the pipeline starts, taking their (not yet
   started) processes with them.

     dune exec examples/pipeline.exe *)

module A = Isa.Arch
module V = Ert.Value

let src =
  {|
object Buffer
  var slot : int <- 0
  var full : bool <- false
  var closed : bool <- false
  condition nonempty
  condition nonfull

  monitor operation put[v : int]
    loop
      exit when not full
      wait nonfull
    end loop
    slot <- v
    full <- true
    signal nonempty
  end put

  monitor operation close[]
    closed <- true
    signal nonempty
  end close

  // returns the value, or -1 when the stream is closed and drained
  monitor operation take[] -> [r : int]
    loop
      exit when full or closed
      wait nonempty
    end loop
    if full then
      full <- false
      r <- slot
      signal nonfull
    else
      r <- 0 - 1
      signal nonempty
    end if
  end take
end Buffer

object Generator
  var out : Buffer <- nil
  var n : int <- 0
  operation initially[o : Buffer, count : int, home : int]
    out <- o
    n <- count
    move self to home
  end initially
  process
    print["generator on node ", thisnode]
    var i : int <- 0
    loop
      exit when i >= n
      i <- i + 1
      out.put[i]
    end loop
    out.close[]
  end process
end Generator

object Squarer
  var inq : Buffer <- nil
  var out : Buffer <- nil
  operation initially[i : Buffer, o : Buffer, home : int]
    inq <- i
    out <- o
    move self to home
  end initially
  process
    print["squarer on node ", thisnode]
    loop
      var v : int <- inq.take[]
      exit when v < 0
      out.put[v * v]
    end loop
    out.close[]
  end process
end Squarer

object Summer
  var inq : Buffer <- nil
  var total : int <- 0
  var finished : bool <- false
  condition finished_c

  operation initially[i : Buffer, home : int]
    inq <- i
    move self to home
  end initially

  process
    print["summer on node ", thisnode]
    loop
      var v : int <- inq.take[]
      exit when v < 0
      total <- total + v
    end loop
    self.finish[]
  end process

  monitor operation finish[]
    finished <- true
    signal finished_c
  end finish

  monitor operation await[] -> [r : int]
    loop
      exit when finished
      wait finished_c
    end loop
    r <- total
  end await
end Summer

object Main
  operation start[count : int] -> [r : int]
    var b1 : Buffer <- new Buffer
    var b2 : Buffer <- new Buffer
    var sum : Summer <- new Summer[b2, 0]
    var sq : Squarer <- new Squarer[b1, b2, 2]
    var gen : Generator <- new Generator[b1, count, 1]
    r <- sum.await[]
  end start
end Main
|}

let () =
  print_endline "== A pipeline across three architectures ==";
  print_endline "";
  print_endline "  node 0 (SPARC): summing consumer + the pipeline owner";
  print_endline "  node 1 (VAX):   generator process";
  print_endline "  node 2 (Sun-3): squaring stage";
  print_endline "";
  let archs = [ A.sparc; A.vax; A.sun3 ] in
  let cl = Core.Cluster.create ~archs () in
  ignore (Core.Cluster.compile_and_load cl ~name:"pipeline" src);
  let main = Core.Cluster.create_object cl ~node:0 ~class_name:"Main" in
  let count = 20 in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:main ~op:"start"
      ~args:[ V.Vint (Int32.of_int count) ]
  in
  let r = Core.Cluster.run_until_result cl tid in
  for i = 0 to 2 do
    let out = Core.Cluster.output cl ~node:i in
    if out <> "" then Printf.printf "node %d (%s):\n%s" i (List.nth archs i).A.name out
  done;
  print_endline "";
  let expected = List.fold_left (fun a i -> a + (i * i)) 0 (List.init count (fun i -> i + 1)) in
  (match r with
  | Some (V.Vint v) ->
    Printf.printf "sum of squares 1..%d = %ld (expected %d) — %s\n" count v expected
      (if Int32.to_int v = expected then "correct" else "MISMATCH")
  | _ -> print_endline "no result");
  Printf.printf
    "the stage processes migrated to their machines before running; every\n\
     put/take crossed the network as a remote invocation, blocking on\n\
     monitor conditions at both ends.  %d messages, virtual time %.0f ms.\n"
    (Enet.Netsim.messages_sent (Core.Cluster.network cl))
    (Core.Cluster.global_time_us cl /. 1000.0)
