(* Quickstart: the Figure 1 network.

   Builds the paper's sample configuration — a Sun-3, an HP9000/300, a
   SPARC laptop, a SPARC workstation and a VAX on one Ethernet — then
   compiles a small Emerald-like program once for every architecture and
   sends a native-code thread on a tour of all five machines.

     dune exec examples/quickstart.exe *)

module A = Isa.Arch
module V = Ert.Value

let src =
  {|
object Tourist
  var hops : int <- 0

  operation tour[n1 : int, n2 : int, n3 : int, n4 : int] -> [r : int]
    var souvenirs : string <- "visited"
    print["starting from node ", thisnode]
    move self to n1
    hops <- hops + 1
    souvenirs <- souvenirs + " " + "sun3"
    print["hello from node ", thisnode]
    move self to n2
    hops <- hops + 1
    souvenirs <- souvenirs + " " + "hp"
    print["hello from node ", thisnode]
    move self to n3
    hops <- hops + 1
    souvenirs <- souvenirs + " " + "laptop"
    print["hello from node ", thisnode]
    move self to n4
    hops <- hops + 1
    souvenirs <- souvenirs + " " + "vax"
    print["hello from node ", thisnode]
    move self to 0
    print["home again on node ", thisnode, ": ", souvenirs]
    r <- hops
  end tour
end Tourist
|}

let () =
  print_endline "== Quickstart: object and native code thread mobility ==";
  print_endline "";
  (* Figure 1: Sun-3, HP9000/300, SPARC laptop, SPARC, VAX *)
  let archs = [ A.sparc; A.sun3; A.hp9000_433; A.sparc; A.vax ] in
  let cl = Core.Cluster.create ~archs () in
  List.iteri
    (fun i a -> Printf.printf "  node %d: %s (%s, %s-endian)\n" i a.A.name
        (A.family_name a.A.family)
        (Format.asprintf "%a" Isa.Endian.pp a.A.endian))
    archs;
  print_endline "";
  ignore (Core.Cluster.compile_and_load cl ~name:"quickstart" src);
  print_endline "compiled once per architecture; bus-stop tables are isomorphic.";
  print_endline "";
  let tourist = Core.Cluster.create_object cl ~node:0 ~class_name:"Tourist" in
  let tid =
    Core.Cluster.spawn cl ~node:0 ~target:tourist ~op:"tour"
      ~args:[ V.Vint 1l; V.Vint 2l; V.Vint 3l; V.Vint 4l ]
  in
  let r = Core.Cluster.run_until_result cl tid in
  for i = 0 to Core.Cluster.n_nodes cl - 1 do
    let out = Core.Cluster.output cl ~node:i in
    if out <> "" then Printf.printf "node %d says:\n%s" i out
  done;
  print_endline "";
  Printf.printf "hops: %s  (the thread ran native %s, %s, %s and %s code)\n"
    (match r with
    | Some (V.Vint v) -> Int32.to_string v
    | _ -> "?")
    "SPARC" "MC680x0" "SPARC" "VAX";
  Printf.printf "virtual time: %.1f ms; %d messages, %d bytes on the Ethernet\n"
    (Core.Cluster.global_time_us cl /. 1000.0)
    (Enet.Netsim.messages_sent (Core.Cluster.network cl))
    (Enet.Netsim.bytes_sent (Core.Cluster.network cl));
  Printf.printf "the Tourist object now lives on node %s\n"
    (match Core.Cluster.where_is cl tourist with
    | Some n -> string_of_int n
    | None -> "?")
