type impl = Naive | Optimized

let impl_name = function
  | Naive -> "naive"
  | Optimized -> "optimized"

(* Conversion-call accounting.  The naive implementation charges one
   procedure call per byte moved plus one for the datum itself (the
   recursive-descent entry), giving the paper's 1-2 calls per byte; the
   optimized implementation charges a single call per datum. *)
let charge impl stats ~bytes =
  Conversion_stats.add_bytes stats bytes;
  match impl with
  | Naive -> Conversion_stats.add_calls stats (bytes + 1)
  | Optimized -> Conversion_stats.add_calls stats 1

module Writer = struct
  type t = {
    buf : Buffer.t;
    impl : impl;
    stats : Conversion_stats.t;
  }

  let create ~impl ~stats = { buf = Buffer.create 256; impl; stats }

  let u8 t v =
    charge t.impl t.stats ~bytes:1;
    Buffer.add_char t.buf (Char.chr (v land 0xFF))

  let raw_u16 t v =
    Buffer.add_char t.buf (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char t.buf (Char.chr (v land 0xFF))

  let u16 t v =
    charge t.impl t.stats ~bytes:2;
    raw_u16 t v

  let u32 t v =
    charge t.impl t.stats ~bytes:4;
    let b n = Char.chr (Int32.to_int (Int32.shift_right_logical v n) land 0xFF) in
    Buffer.add_char t.buf (b 24);
    Buffer.add_char t.buf (b 16);
    Buffer.add_char t.buf (b 8);
    Buffer.add_char t.buf (b 0)

  let i32 = u32

  let f64 t v =
    charge t.impl t.stats ~bytes:8;
    let bits = Int64.bits_of_float v in
    for n = 7 downto 0 do
      Buffer.add_char t.buf
        (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * n)) land 0xFF))
    done

  let bool t v = u8 t (if v then 1 else 0)

  let str t s =
    let len = String.length s in
    if len > 0xFFFF then invalid_arg "Wire.Writer.str: string too long";
    charge t.impl t.stats ~bytes:(2 + len);
    raw_u16 t len;
    Buffer.add_string t.buf s

  let length t = Buffer.length t.buf
  let contents t = Buffer.contents t.buf
end

module Reader = struct
  type t = {
    data : string;
    mutable pos : int;
    impl : impl;
    stats : Conversion_stats.t;
  }

  exception Underflow

  let create ~impl ~stats data = { data; pos = 0; impl; stats }

  let take t n =
    if t.pos + n > String.length t.data then raise Underflow;
    let p = t.pos in
    t.pos <- p + n;
    p

  let u8 t =
    charge t.impl t.stats ~bytes:1;
    Char.code t.data.[take t 1]

  let raw_u16 t =
    let p = take t 2 in
    (Char.code t.data.[p] lsl 8) lor Char.code t.data.[p + 1]

  let u16 t =
    charge t.impl t.stats ~bytes:2;
    raw_u16 t

  let u32 t =
    charge t.impl t.stats ~bytes:4;
    let p = take t 4 in
    let b i = Int32.of_int (Char.code t.data.[p + i]) in
    let ( ||| ) = Int32.logor in
    Int32.shift_left (b 0) 24 ||| Int32.shift_left (b 1) 16 ||| Int32.shift_left (b 2) 8
    ||| b 3

  let i32 = u32

  let f64 t =
    charge t.impl t.stats ~bytes:8;
    let p = take t 8 in
    let bits = ref 0L in
    for i = 0 to 7 do
      bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (Char.code t.data.[p + i]))
    done;
    Int64.float_of_bits !bits

  let bool t = u8 t <> 0

  let str t =
    let len = raw_u16 t in
    charge t.impl t.stats ~bytes:(2 + len);
    let p = take t len in
    String.sub t.data p len

  let pos t = t.pos
  let at_end t = t.pos >= String.length t.data
end
