lib/enet/conversion_stats.mli: Format
