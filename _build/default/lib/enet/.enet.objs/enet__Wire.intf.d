lib/enet/wire.mli: Conversion_stats
