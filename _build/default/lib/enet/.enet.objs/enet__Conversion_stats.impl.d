lib/enet/conversion_stats.ml: Format
