lib/enet/netsim.ml: Array Float List String
