lib/enet/netsim.mli:
