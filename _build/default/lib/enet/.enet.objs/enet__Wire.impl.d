lib/enet/wire.ml: Buffer Char Conversion_stats Int32 Int64 String
