type config = {
  latency_us : float;
  bandwidth_mbit_s : float;
  frame_overhead_bytes : int;
}

let default_config =
  { latency_us = 300.0; bandwidth_mbit_s = 10.0; frame_overhead_bytes = 58 }

type message = {
  msg_src : int;
  msg_dst : int;
  msg_payload : string;
  msg_sent_at : float;
  msg_arrives_at : float;
  msg_seq : int;
}

type t = {
  cfg : config;
  n_nodes : int;
  mutable queues : message list array;  (* per destination, ordered by (arrival, seq) *)
  mutable medium_free_at : float;
  mutable seq : int;
  mutable messages_sent : int;
  mutable bytes_sent : int;
}

let create ?(config = default_config) ~n_nodes () =
  {
    cfg = config;
    n_nodes;
    queues = Array.make n_nodes [];
    medium_free_at = 0.0;
    seq = 0;
    messages_sent = 0;
    bytes_sent = 0;
  }

let config t = t.cfg

let insert_sorted msg queue =
  let le a b =
    a.msg_arrives_at < b.msg_arrives_at
    || (a.msg_arrives_at = b.msg_arrives_at && a.msg_seq <= b.msg_seq)
  in
  let rec go = function
    | [] -> [ msg ]
    | m :: rest -> if le msg m then msg :: m :: rest else m :: go rest
  in
  go queue

let send t ~now_us ~src ~dst ~payload =
  if dst < 0 || dst >= t.n_nodes then invalid_arg "Netsim.send: bad destination";
  let wire_bytes = String.length payload + t.cfg.frame_overhead_bytes in
  let transmit_us = float_of_int (wire_bytes * 8) /. t.cfg.bandwidth_mbit_s in
  let start = Float.max now_us t.medium_free_at in
  let arrives = start +. transmit_us +. t.cfg.latency_us in
  t.medium_free_at <- start +. transmit_us;
  t.seq <- t.seq + 1;
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + wire_bytes;
  let msg =
    {
      msg_src = src;
      msg_dst = dst;
      msg_payload = payload;
      msg_sent_at = now_us;
      msg_arrives_at = arrives;
      msg_seq = t.seq;
    }
  in
  t.queues.(dst) <- insert_sorted msg t.queues.(dst);
  arrives

let next_arrival_at t ~dst =
  match t.queues.(dst) with
  | [] -> None
  | m :: _ -> Some m.msg_arrives_at

let next_arrival_any t =
  Array.fold_left
    (fun acc q ->
      match q, acc with
      | [], acc -> acc
      | m :: _, None -> Some m.msg_arrives_at
      | m :: _, Some a -> Some (Float.min a m.msg_arrives_at))
    None t.queues

let receive t ~dst ~now_us =
  match t.queues.(dst) with
  | m :: rest when m.msg_arrives_at <= now_us ->
    t.queues.(dst) <- rest;
    Some m
  | [] | _ :: _ -> None

let pending t = Array.fold_left (fun acc q -> acc + List.length q) 0 t.queues
let messages_sent t = t.messages_sent
let bytes_sent t = t.bytes_sent
