(** Network-format (machine-independent) data encoding.

    The commonly-agreed-upon format of section 2.1: big-endian
    ("network byte order") integers, IEEE 754 double reals, length-prefixed
    strings.  Two implementations are provided:

    - [Naive] mirrors the prototype's hand-written recursive-descent
      conversion routines, "not optimized for speed but for ease of
      maintenance": every byte goes through conversion procedure calls
      (counted in the {!Conversion_stats}), averaging 1-2 calls per byte.
    - [Optimized] is the bulk conversion the paper's future-work section
      hypothesises would cut the penalty by about half: one call per datum.

    Both produce identical octets; only the accounted work differs. *)

type impl = Naive | Optimized

val impl_name : impl -> string

module Writer : sig
  type t

  val create : impl:impl -> stats:Conversion_stats.t -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int32 -> unit
  val i32 : t -> int32 -> unit
  val f64 : t -> float -> unit
  val bool : t -> bool -> unit
  val str : t -> string -> unit
  (** u16 length prefix followed by the bytes. *)

  val length : t -> int
  val contents : t -> string
end

module Reader : sig
  type t

  exception Underflow

  val create : impl:impl -> stats:Conversion_stats.t -> string -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int32
  val i32 : t -> int32
  val f64 : t -> float
  val bool : t -> bool
  val str : t -> string
  val pos : t -> int
  val at_end : t -> bool
end
