(** Node-local heap allocator.

    A bump allocator with size-segregated free lists (refilled by the
    garbage collector).  Everything the generated code touches — object
    descriptors, string blocks, monitor queue nodes, descriptor tables,
    thread stacks — comes from here, inside the node's byte-addressable
    memory and below the text segment. *)

type t

val create : mem:Isa.Memory.t -> start:int -> t
val alloc : t -> int -> int
(** Allocate [n] bytes (word aligned), zero filled.
    @raise Out_of_memory if the heap would collide with the text base. *)

val free : t -> addr:int -> size:int -> unit
(** Return a block to the allocator (used by the collector). *)

val brk : t -> int
(** Current top of the bump region. *)

val start : t -> int
val live_bytes : t -> int
val allocations : t -> int
