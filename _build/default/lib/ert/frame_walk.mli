(** Stack walking over suspended segments.

    Because the kernel only regains control at bus stops, every suspended
    activation record's program counter is a bus stop, and the chain of
    frame pointers plus the per-architecture bus-stop geometry is enough
    to enumerate the records.  Both migration (translation to the
    machine-independent format) and the garbage collector (pointer
    identification, section 3.2/[JJ92]) are built on this walk. *)

type frame_rec = {
  fw_class : int;  (** class index of the frame's code object *)
  fw_method : int;
  fw_entry : Emc.Busstop.entry;  (** the bus stop where this record is suspended *)
  fw_fp : int;
  fw_ret_out : int;  (** absolute return address out of this frame; 0 at bottom *)
  fw_self : int;  (** local address of the object this record executes in *)
}

val walk : Kernel.t -> Thread.segment -> frame_rec list
(** Youngest first.  Empty for a never-executed segment.
    @raise Kernel.Runtime_error if a suspension PC is not a bus stop. *)

val live_pointer_slots : Kernel.t -> frame_rec -> (int * Emc.Ast.typ) list
(** Addresses (slot contents) of the pointer-typed entities live at the
    frame's bus stop, with their static types — the garbage collector's
    per-frame roots.  Nil slots are omitted. *)
