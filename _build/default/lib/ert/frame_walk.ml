module A = Isa.Arch
module M = Isa.Machine
module Mem = Isa.Memory
module T = Thread

type frame_rec = {
  fw_class : int;
  fw_method : int;
  fw_entry : Emc.Busstop.entry;
  fw_fp : int;
  fw_ret_out : int;
  fw_self : int;
}

let fail fmt = Format.kasprintf (fun m -> raise (Kernel.Runtime_error m)) fmt
let sparc_i6_off = 32 + (4 * 6)
let sparc_i7_off = 32 + (4 * 7)

let op_template k ~class_index ~method_index =
  let lc = Kernel.loaded_class k class_index in
  lc.Kernel.lc_class.Emc.Compile.cc_template.Emc.Template.ct_ops.(method_index)

let frame_of_pc k ~pc ~fp =
  match Kernel.stop_at_pc k pc with
  | None -> fail "walk: PC %#x of a suspended activation record is not a bus stop" pc
  | Some (lc, entry) ->
    let class_index = lc.Kernel.lc_class.Emc.Compile.cc_index in
    let method_index = entry.Emc.Busstop.be_op in
    let tmpl = op_template k ~class_index ~method_index in
    let fi = Kernel.frame_info k ~class_index ~method_index in
    let self_slot = Emc.Template.var_slot tmpl 0 in
    let self_off = fi.Emc.Busstop.fr_slot_offsets.(self_slot) in
    let fw_self = Int32.to_int (Mem.load32 (Kernel.mem k) (fp + self_off)) in
    { fw_class = class_index; fw_method = method_index; fw_entry = entry; fw_fp = fp;
      fw_ret_out = 0; fw_self }

let walk k (seg : T.segment) =
  if seg.T.seg_spawn <> None then []
  else begin
    let arch = Kernel.arch k in
    let family = arch.A.family in
    let mem = Kernel.mem k in
    let ctx = seg.T.seg_ctx in
    let ret_out_vax_m68k fp =
      match family with
      | A.Vax -> Int32.to_int (Mem.load32 mem (fp + 8))
      | A.M68k -> Int32.to_int (Mem.load32 mem (fp + 4))
      | A.Sparc -> assert false
    in
    let rec go fp pc ret_out acc =
      let fr = { (frame_of_pc k ~pc ~fp) with fw_ret_out = ret_out } in
      let acc = fr :: acc in
      if ret_out = 0 then List.rev acc
      else
        match family with
        | A.Vax | A.M68k ->
          let parent_fp = Int32.to_int (Mem.load32 mem fp) in
          let parent_ret = ret_out_vax_m68k parent_fp in
          go parent_fp ret_out parent_ret acc
        | A.Sparc ->
          let fi = Kernel.frame_info k ~class_index:fr.fw_class ~method_index:fr.fw_method in
          let sp = fp - fi.Emc.Busstop.fr_fixed_sp_depth in
          let parent_fp = Int32.to_int (Mem.load32 mem (sp + sparc_i6_off)) in
          let parent_ret = Int32.to_int (Mem.load32 mem (sp + sparc_i7_off)) in
          go parent_fp ret_out parent_ret acc
    in
    let top_fp = M.fp ctx in
    let top_ret =
      match family with
      | A.Vax | A.M68k -> ret_out_vax_m68k top_fp
      | A.Sparc -> Int32.to_int (M.reg ctx 31)
    in
    go top_fp ctx.M.pc top_ret []
  end

let live_pointer_slots k fr =
  let lc = Kernel.loaded_class k fr.fw_class in
  let ct = lc.Kernel.lc_class.Emc.Compile.cc_template in
  let stop = Emc.Template.stop_by_id ct fr.fw_entry.Emc.Busstop.be_id in
  let fi = Kernel.frame_info k ~class_index:fr.fw_class ~method_index:fr.fw_method in
  let mem = Kernel.mem k in
  List.filter_map
    (fun (es : Emc.Template.entity_slot) ->
      if Emc.Ir.is_pointer_type es.Emc.Template.es_type then begin
        let off = fi.Emc.Busstop.fr_slot_offsets.(es.Emc.Template.es_slot) in
        let addr = Int32.to_int (Mem.load32 mem (fr.fw_fp + off)) in
        if addr = 0 then None else Some (addr, es.Emc.Template.es_type)
      end
      else None)
    stop.Emc.Template.st_live
