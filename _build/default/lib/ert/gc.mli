(** Mark-sweep garbage collection over a node's heap.

    The collector runs between scheduling slices, when every thread
    segment is suspended at a bus stop; the per-stop templates then
    identify exactly which activation-record slots hold pointers —
    "in Emerald, this technique is also used to provide the garbage
    collector with well-defined states for easy pointer identification"
    (section 2.2.1).

    Collected: object descriptors, proxies, and string blocks.  Roots:
    live pointer slots of every suspended frame, pending machine-
    independent values attached to segments (spawn arguments, undelivered
    results), and the code objects' string literals.  Kernel-owned
    structures (descriptor tables, monitor queue nodes, stacks) are not
    subject to collection. *)

type stats = {
  gc_live : int;  (** blocks marked reachable *)
  gc_swept : int;  (** blocks reclaimed *)
  gc_bytes_freed : int;
}

val collect : ?extra_roots:Oid.t list -> Kernel.t -> stats
(** [extra_roots] pins objects held by the embedding harness (objects are
    otherwise reachable only through thread state and other objects).
    @raise Kernel.Runtime_error if a segment is running (collect only
    between scheduling slices). *)
