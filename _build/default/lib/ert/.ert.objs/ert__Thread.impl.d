lib/ert/thread.ml: Emc Format Isa Value
