lib/ert/gc.ml: Array Emc Frame_walk Hashtbl Int32 Isa Kernel List Option Thread Value
