lib/ert/oid.ml: Format Int32 Option Printf
