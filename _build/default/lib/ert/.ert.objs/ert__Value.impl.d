lib/ert/value.ml: Array Bool Emc Enet Float Format Int32 Oid Printf String
