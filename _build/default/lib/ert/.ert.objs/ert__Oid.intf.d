lib/ert/oid.mli: Format
