lib/ert/gc.mli: Kernel Oid
