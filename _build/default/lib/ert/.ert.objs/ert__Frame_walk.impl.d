lib/ert/frame_walk.ml: Array Emc Format Int32 Isa Kernel List Thread
