lib/ert/kernel.ml: Array Buffer Emc Float Format Fun Hashtbl Heap Int32 Isa List Oid Option Printf Queue String Thread Value
