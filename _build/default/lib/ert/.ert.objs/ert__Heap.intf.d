lib/ert/heap.mli: Isa
