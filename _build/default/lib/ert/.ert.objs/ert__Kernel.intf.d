lib/ert/kernel.mli: Emc Heap Isa Oid Thread Value
