lib/ert/frame_walk.mli: Emc Kernel Thread
