lib/ert/value.mli: Emc Enet Format Oid
