lib/ert/thread.mli: Emc Format Isa Value
