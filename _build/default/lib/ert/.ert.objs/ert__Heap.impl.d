lib/ert/heap.ml: Hashtbl Isa
