type t = {
  mem : Isa.Memory.t;
  heap_start : int;
  mutable brk : int;
  free_lists : (int, int list ref) Hashtbl.t;  (* size -> addresses *)
  mutable live_bytes : int;
  mutable allocations : int;
}

let create ~mem ~start =
  { mem; heap_start = start; brk = start; free_lists = Hashtbl.create 16;
    live_bytes = 0; allocations = 0 }

let align n = (n + 3) land lnot 3

let alloc t n =
  let n = align (max n 4) in
  t.allocations <- t.allocations + 1;
  t.live_bytes <- t.live_bytes + n;
  match Hashtbl.find_opt t.free_lists n with
  | Some ({ contents = addr :: rest } as l) ->
    l := rest;
    Isa.Memory.zero_fill t.mem addr n;
    addr
  | Some { contents = [] } | None ->
    let addr = t.brk in
    if addr + n >= Isa.Text.text_base then raise Out_of_memory;
    Isa.Memory.grow_to t.mem (addr + n);
    t.brk <- addr + n;
    addr

let free t ~addr ~size =
  let size = align (max size 4) in
  t.live_bytes <- t.live_bytes - size;
  match Hashtbl.find_opt t.free_lists size with
  | Some l -> l := addr :: !l
  | None -> Hashtbl.replace t.free_lists size (ref [ addr ])

let brk t = t.brk
let start t = t.heap_start
let live_bytes t = t.live_bytes
let allocations t = t.allocations
