(** Object identifiers.

    OIDs uniquely identify objects regardless of their location
    (section 3.2).  Two disjoint spaces share the 32-bit representation:

    - code-object OIDs, assigned deterministically by the program
      database (30-bit values, bit 30 clear);
    - data-object OIDs, allocated without cluster-wide coordination by
      tagging the creating node into the value (bit 30 set). *)

type t = int32

val nil : t
val is_code : t -> bool
val is_data : t -> bool

val fresh_data : node_id:int -> serial:int -> t
(** @raise Invalid_argument when node or serial exceed their fields. *)

val creator_node : t -> int option
(** Creating node of a data OID. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
