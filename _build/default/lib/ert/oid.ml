type t = int32

let nil = 0l
let data_bit = 0x4000_0000l
let is_data oid = Int32.logand oid data_bit <> 0l
let is_code oid = (not (is_data oid)) && not (Int32.equal oid nil)

let fresh_data ~node_id ~serial =
  if node_id < 0 || node_id >= 64 then invalid_arg "Oid.fresh_data: node id out of range";
  if serial < 0 || serial >= 1 lsl 20 then invalid_arg "Oid.fresh_data: serial overflow";
  Int32.logor data_bit (Int32.of_int ((node_id lsl 20) lor serial))

let creator_node oid =
  if is_data oid then Some (Int32.to_int (Int32.shift_right_logical oid 20) land 0x3F)
  else None

let equal = Int32.equal
let compare = Int32.compare
let hash oid = Int32.to_int oid land max_int

let to_string oid =
  if Int32.equal oid nil then "nil"
  else if is_data oid then
    Printf.sprintf "obj:%d.%d"
      (Option.value (creator_node oid) ~default:0)
      (Int32.to_int oid land 0xFFFFF)
  else Printf.sprintf "code:%lx" oid

let pp ppf oid = Format.pp_print_string ppf (to_string oid)
