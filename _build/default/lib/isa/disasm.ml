let listing code = Format.asprintf "%a" Code.pp code

let insn_at code off =
  let idx = Code.index_at code off in
  Format.asprintf "%04x: %a" off
    (Insn.pp code.Code.arch.Arch.family)
    code.Code.insns.(idx)
