(** Per-node text space.

    Loaded code objects are given disjoint base addresses well above data
    memory; an absolute program counter is [base + byte offset], so PC
    values for the same program point differ between nodes even of the
    same architecture — return addresses must always be translated through
    the bus-stop tables (or rebased) when a thread moves. *)

type image = {
  base : int;
  code : Code.t;
}

type t

val text_base : int
(** Lowest text address; data addresses stay below this. *)

val create : unit -> t

val load : t -> Code.t -> image
(** Load a code object, assigning it a fresh base.  Loading the same code
    object twice returns the existing image. *)

val find : t -> int -> image option
(** Image containing the given absolute address. *)

val find_by_oid : t -> int32 -> image option
val images : t -> image list
