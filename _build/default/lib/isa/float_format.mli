(** Single-precision floating-point formats of the virtual architectures.

    The Sun-3, HP9000/300 and SPARC machines use IEEE 754 single precision;
    the VAX uses its F_floating format (excess-128 exponent, hidden-bit
    significand in [0.5,1), word-swapped bit layout, no infinities or NaNs).
    A float value lives in a 32-bit register or memory word as a format
    dependent bit image, so moving a real between a VAX and a SPARC requires
    a genuine format conversion, as in the paper (section 2.1). *)

type t = Vax_f | Ieee_single

exception Reserved_operand of string
(** Raised when a value cannot be represented in the target format
    (VAX F has no NaN/infinity, and a narrower exponent range). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val encode : t -> float -> int32
(** [encode fmt x] is the 32-bit register image of [x] in format [fmt].
    Rounds to nearest. Values too small for the format underflow to zero.
    @raise Reserved_operand if [x] is NaN or infinite and [fmt] is
    [Vax_f], or if [x] overflows the VAX F exponent range. *)

val decode : t -> int32 -> float
(** [decode fmt img] is the value represented by register image [img].
    @raise Reserved_operand on a VAX reserved operand (sign set, exponent
    zero). *)

val convert : from:t -> to_:t -> int32 -> int32
(** Re-encode a register image from one format into another. *)
