type t = Vax_f | Ieee_single

exception Reserved_operand of string

let equal a b =
  match a, b with
  | Vax_f, Vax_f | Ieee_single, Ieee_single -> true
  | Vax_f, Ieee_single | Ieee_single, Vax_f -> false

let pp ppf = function
  | Vax_f -> Format.pp_print_string ppf "VAX-F"
  | Ieee_single -> Format.pp_print_string ppf "IEEE-single"

(* VAX F_floating register image layout (after the 16-bit word swap the
   hardware performs when loading from memory):
     bit 15      sign
     bits 14:7   exponent, excess 128
     bits  6:0   high 7 bits of the 23-bit stored fraction
     bits 31:16  low 16 bits of the stored fraction
   Value = (-1)^s * 0.1f * 2^(e-128); the hidden bit is the 0.5 weight. *)

let vax_pack ~sign ~exp ~frac23 =
  let lo16 = frac23 land 0xFFFF in
  let hi7 = (frac23 lsr 16) land 0x7F in
  let image = (lo16 lsl 16) lor (sign lsl 15) lor ((exp land 0xFF) lsl 7) lor hi7 in
  Int32.of_int image

let vax_unpack img =
  let v = Int32.to_int (Int32.logand img 0xFFFFFFFFl) land 0xFFFFFFFF in
  let sign = (v lsr 15) land 1 in
  let exp = (v lsr 7) land 0xFF in
  let hi7 = v land 0x7F in
  let lo16 = (v lsr 16) land 0xFFFF in
  (sign, exp, (hi7 lsl 16) lor lo16)

let encode_vax x =
  match Float.classify_float x with
  | Float.FP_nan -> raise (Reserved_operand "NaN has no VAX F representation")
  | Float.FP_infinite -> raise (Reserved_operand "infinity has no VAX F representation")
  | Float.FP_zero -> 0l
  | Float.FP_normal | Float.FP_subnormal ->
    let sign = if x < 0.0 then 1 else 0 in
    let m, e = Float.frexp (Float.abs x) in
    (* m in [0.5, 1), value = m * 2^e; VAX exponent is e + 128. *)
    let frac24 = Float.round (Float.ldexp m 24) in
    let frac24, e =
      if frac24 >= 16777216.0 then (8388608.0, e + 1) else (frac24, e)
    in
    let exp = e + 128 in
    if exp > 255 then raise (Reserved_operand "VAX F exponent overflow")
    else if exp <= 0 then 0l
    else vax_pack ~sign ~exp ~frac23:(int_of_float frac24 land 0x7FFFFF)

let decode_vax img =
  let sign, exp, frac23 = vax_unpack img in
  if exp = 0 then
    if sign = 0 then 0.0
    else raise (Reserved_operand "VAX F reserved operand")
  else
    let m = Float.ldexp (float_of_int (frac23 lor 0x800000)) (-24) in
    let v = Float.ldexp m (exp - 128) in
    if sign = 1 then -.v else v

let encode fmt x =
  match fmt with
  | Ieee_single -> Int32.bits_of_float x
  | Vax_f -> encode_vax x

let decode fmt img =
  match fmt with
  | Ieee_single -> Int32.float_of_bits img
  | Vax_f -> decode_vax img

let convert ~from ~to_ img =
  if equal from to_ then img else encode to_ (decode from img)
