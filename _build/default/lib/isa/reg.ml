type t = int

let count = function
  | Arch.Vax -> 15 (* R0..R14; PC not materialised *)
  | Arch.M68k -> 16
  | Arch.Sparc -> 32

let sp = function
  | Arch.Vax -> 14
  | Arch.M68k -> 15
  | Arch.Sparc -> 14 (* %o6 *)

let fp = function
  | Arch.Vax -> 13
  | Arch.M68k -> 14 (* A6 *)
  | Arch.Sparc -> 30 (* %i6 *)

let arg_pointer = function
  | Arch.Vax -> Some 12
  | Arch.M68k | Arch.Sparc -> None

let retval = function
  | Arch.Vax -> 0
  | Arch.M68k -> 0 (* D0 *)
  | Arch.Sparc -> 24 (* %i0 *)

let return_address = function
  | Arch.Vax | Arch.M68k -> None
  | Arch.Sparc -> Some 15 (* %o7 *)

let scratch = function
  | Arch.Vax -> [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ]
  | Arch.M68k -> [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13 ]
  | Arch.Sparc -> [ 16; 17; 18; 19; 20; 21; 22; 23; 1; 2; 3; 4; 5 ]

let out_args = function
  | Arch.Vax | Arch.M68k -> []
  | Arch.Sparc -> [ 8; 9; 10; 11; 12; 13 ]

let in_args = function
  | Arch.Vax | Arch.M68k -> []
  | Arch.Sparc -> [ 24; 25; 26; 27; 28; 29 ]

let name family r =
  match family with
  | Arch.Vax -> (
    match r with
    | 12 -> "AP"
    | 13 -> "FP"
    | 14 -> "SP"
    | n -> Printf.sprintf "R%d" n)
  | Arch.M68k -> if r < 8 then Printf.sprintf "D%d" r else Printf.sprintf "A%d" (r - 8)
  | Arch.Sparc ->
    let bank = [| "g"; "o"; "l"; "i" |].(r / 8) in
    Printf.sprintf "%%%s%d" bank (r mod 8)

let pp family ppf r = Format.pp_print_string ppf (name family r)
