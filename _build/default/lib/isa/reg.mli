(** Register files of the virtual architectures.

    Registers are small integers indexing a per-thread register array; the
    meaning of an index depends on the instruction-set family.  The three
    families have non-isomorphic register sets (section 1 of the paper lists
    this as one of the obstacles to heterogeneous mobility):

    - VAX: R0..R11 general purpose, R12 = AP, R13 = FP, R14 = SP
      (R15 = PC is not materialised in the register array).
    - MC680x0: D0..D7 data registers (indices 0-7), A0..A7 address
      registers (8-15), with A6 the frame pointer and A7 the stack pointer.
    - SPARC: a single visible window %g0..%g7 (0-7, %g0 hardwired to zero),
      %o0..%o7 (8-15), %l0..%l7 (16-23), %i0..%i7 (24-31); %o6/%i6 are
      SP/FP.  Window shifting is performed by the SAVE/RESTORE
      instructions, which spill eagerly (constant window depth of one). *)

type t = int

val count : Arch.family -> int
(** Size of the register array for a family. *)

val sp : Arch.family -> t
(** Stack pointer. *)

val fp : Arch.family -> t
(** Frame pointer (VAX FP, M68k A6, SPARC %i6). *)

val arg_pointer : Arch.family -> t option
(** VAX argument pointer AP; [None] elsewhere. *)

val retval : Arch.family -> t
(** Register carrying an operation result back to the caller (VAX R0,
    M68k D0, SPARC %i0 seen as %o0 after RESTORE). *)

val return_address : Arch.family -> t option
(** SPARC %o7; VAX and M68k push the return address on the stack. *)

val scratch : Arch.family -> t list
(** Registers the code generator may use for expression temporaries
    between bus stops, in allocation order. *)

val out_args : Arch.family -> t list
(** Registers used to pass the first arguments (SPARC %o0..%o5);
    empty for the stack-based families. *)

val in_args : Arch.family -> t list
(** Where the callee sees the register arguments after the prologue
    (SPARC %i0..%i5); empty elsewhere. *)

val name : Arch.family -> t -> string
val pp : Arch.family -> Format.formatter -> t -> unit
