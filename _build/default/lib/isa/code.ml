type method_info = {
  method_name : string;
  entry_offset : int;
  method_index : int;
}

type t = {
  code_oid : int32;
  class_name : string;
  arch : Arch.t;
  insns : Insn.t array;
  offsets : int array;
  byte_size : int;
  methods : method_info array;
  index_by_offset : (int, int) Hashtbl.t;
}

let compute_offsets family insns =
  let n = Array.length insns in
  let offsets = Array.make n 0 in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    offsets.(i) <- !pos;
    pos := !pos + Insn.size_bytes family insns.(i)
  done;
  (offsets, !pos)

let make ~arch ~code_oid ~class_name ~methods insns =
  let offsets, byte_size = compute_offsets arch.Arch.family insns in
  let index_by_offset = Hashtbl.create (Array.length insns) in
  Array.iteri (fun i off -> Hashtbl.replace index_by_offset off i) offsets;
  let methods =
    Array.mapi
      (fun method_index (method_name, entry_index) ->
        { method_name; entry_offset = offsets.(entry_index); method_index })
      methods
  in
  { code_oid; class_name; arch; insns; offsets; byte_size; methods; index_by_offset }

let index_at code off =
  match Hashtbl.find_opt code.index_by_offset off with
  | Some i -> i
  | None ->
    invalid_arg
      (Printf.sprintf "Code.index_at: %#x is not an instruction boundary in %s/%s" off
         code.class_name code.arch.Arch.id)

let method_by_name code name =
  Array.find_opt (fun m -> String.equal m.method_name name) code.methods

let pp ppf code =
  Format.fprintf ppf "code %s (oid %ld, %s, %d bytes)@." code.class_name code.code_oid
    code.arch.Arch.id code.byte_size;
  Array.iteri
    (fun i insn ->
      let off = code.offsets.(i) in
      Array.iter
        (fun m ->
          if m.entry_offset = off then Format.fprintf ppf "%s:@." m.method_name)
        code.methods;
      Format.fprintf ppf "  %04x: %a@." off (Insn.pp code.arch.Arch.family) insn)
    code.insns
