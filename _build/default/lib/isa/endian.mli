(** Byte order of a virtual architecture.

    The VAX is little-endian; the MC680x0 family and SPARC are big-endian.
    All multi-byte loads and stores in {!Memory} go through these
    conversions, so cross-architecture migration genuinely has to byte-swap
    data, as in the paper. *)

type t = Little | Big

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val bytes_of_int32 : t -> int32 -> int * int * int * int
(** [bytes_of_int32 e v] is the four bytes of [v] in memory order
    (lowest address first) under byte order [e]. *)

val int32_of_bytes : t -> int -> int -> int -> int -> int32
(** Inverse of {!bytes_of_int32}; arguments are in memory order. *)

val bytes_of_int16 : t -> int -> int * int
val int16_of_bytes : t -> int -> int -> int
