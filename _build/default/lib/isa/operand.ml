type mem =
  | Abs of int32
  | Disp of Reg.t * int
  | Autoinc of Reg.t
  | Autodec of Reg.t

type t =
  | Reg of Reg.t
  | Imm of int32
  | Mem of mem

let pp_mem family ppf m =
  let reg = Reg.name family in
  match m with
  | Abs a -> Format.fprintf ppf "@%ld" a
  | Disp (r, 0) -> Format.fprintf ppf "(%s)" (reg r)
  | Disp (r, d) -> Format.fprintf ppf "%d(%s)" d (reg r)
  | Autoinc r -> Format.fprintf ppf "(%s)+" (reg r)
  | Autodec r -> Format.fprintf ppf "-(%s)" (reg r)

let pp family ppf = function
  | Reg r -> Format.pp_print_string ppf (Reg.name family r)
  | Imm i -> Format.fprintf ppf "#%ld" i
  | Mem m -> pp_mem family ppf m
