lib/isa/machine.mli: Arch Format Memory Reg Text
