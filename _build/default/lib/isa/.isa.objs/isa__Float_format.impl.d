lib/isa/float_format.ml: Float Format Int32
