lib/isa/text.ml: Code Int32 List
