lib/isa/reg.ml: Arch Array Format Printf
