lib/isa/code.mli: Arch Format Hashtbl Insn
