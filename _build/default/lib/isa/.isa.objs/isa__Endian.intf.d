lib/isa/endian.mli: Format
