lib/isa/insn.ml: Arch Format Int32 Operand Reg
