lib/isa/memory.mli: Endian
