lib/isa/disasm.mli: Code
