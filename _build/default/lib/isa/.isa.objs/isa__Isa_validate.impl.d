lib/isa/isa_validate.ml: Arch Array Buffer Code Format Insn Int32 List Operand Printf
