lib/isa/endian.ml: Format Int32
