lib/isa/machine.ml: Arch Array Code Float Float_format Format Insn Int32 Memory Operand Reg Text
