lib/isa/arch.ml: Endian Float_format Format List String
