lib/isa/operand.mli: Arch Format Reg
