lib/isa/reg.mli: Arch Format
