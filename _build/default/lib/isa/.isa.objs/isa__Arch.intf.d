lib/isa/arch.mli: Endian Float_format Format
