lib/isa/disasm.ml: Arch Array Code Format Insn
