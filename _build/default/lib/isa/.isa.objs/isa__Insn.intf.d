lib/isa/insn.mli: Arch Format Operand Reg
