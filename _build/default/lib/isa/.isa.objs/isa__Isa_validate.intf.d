lib/isa/isa_validate.mli: Code Format
