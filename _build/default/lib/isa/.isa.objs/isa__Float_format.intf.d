lib/isa/float_format.mli: Format
