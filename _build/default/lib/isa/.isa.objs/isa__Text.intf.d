lib/isa/text.mli: Code
