lib/isa/code.ml: Arch Array Format Hashtbl Insn Printf String
