lib/isa/operand.ml: Format Reg
