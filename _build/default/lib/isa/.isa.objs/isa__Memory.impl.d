lib/isa/memory.ml: Bytes Char Endian String
