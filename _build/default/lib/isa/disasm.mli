(** Disassembler for code objects. *)

val listing : Code.t -> string
(** Full listing with byte offsets and method entry labels. *)

val insn_at : Code.t -> int -> string
(** One-line disassembly of the instruction at a byte offset. *)
