(** Per-family instruction-subset validation.

    The instruction type is the union of the three families; this module
    checks that a code object only uses instructions and addressing modes
    its architecture actually has (e.g. no three-operand memory arithmetic
    on the M68k, no memory operands outside loads/stores on SPARC, no
    [Remque] anywhere but the VAX).  Every code object produced by the
    compiler is validated in tests. *)

type error = {
  insn_index : int;
  message : string;
}

val check : Code.t -> error list
(** Empty when the code object is well formed for its architecture. *)

val check_exn : Code.t -> unit
(** @raise Invalid_argument listing the violations, if any. *)

val pp_error : Format.formatter -> error -> unit
