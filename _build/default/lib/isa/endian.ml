type t = Little | Big

let equal a b =
  match a, b with
  | Little, Little | Big, Big -> true
  | Little, Big | Big, Little -> false

let pp ppf = function
  | Little -> Format.pp_print_string ppf "little"
  | Big -> Format.pp_print_string ppf "big"

let byte v n = Int32.to_int (Int32.logand (Int32.shift_right_logical v (8 * n)) 0xFFl)

let bytes_of_int32 e v =
  match e with
  | Little -> (byte v 0, byte v 1, byte v 2, byte v 3)
  | Big -> (byte v 3, byte v 2, byte v 1, byte v 0)

let int32_of_bytes e b0 b1 b2 b3 =
  let combine lo midlo midhi hi =
    let ( ||| ) = Int32.logor in
    let shift v n = Int32.shift_left (Int32.of_int (v land 0xFF)) n in
    shift lo 0 ||| shift midlo 8 ||| shift midhi 16 ||| shift hi 24
  in
  match e with
  | Little -> combine b0 b1 b2 b3
  | Big -> combine b3 b2 b1 b0

let bytes_of_int16 e v =
  let lo = v land 0xFF and hi = (v lsr 8) land 0xFF in
  match e with
  | Little -> (lo, hi)
  | Big -> (hi, lo)

let int16_of_bytes e b0 b1 =
  match e with
  | Little -> (b0 land 0xFF) lor ((b1 land 0xFF) lsl 8)
  | Big -> (b1 land 0xFF) lor ((b0 land 0xFF) lsl 8)
