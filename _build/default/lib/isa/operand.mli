(** Instruction operands.

    The addressing modes are the union of what the three families offer;
    {!Isa_validate} checks that code emitted for a family uses only that
    family's modes (e.g. SPARC is a load/store architecture and allows
    memory operands only in [Mov], while the VAX allows them anywhere). *)

type mem =
  | Abs of int32  (** absolute address *)
  | Disp of Reg.t * int  (** displacement: [d(Rn)] *)
  | Autoinc of Reg.t  (** [(Rn)+] — VAX and M68k post-increment *)
  | Autodec of Reg.t  (** [-(Rn)] — VAX and M68k pre-decrement *)

type t =
  | Reg of Reg.t
  | Imm of int32
  | Mem of mem

val pp : Arch.family -> Format.formatter -> t -> unit
val pp_mem : Arch.family -> Format.formatter -> mem -> unit
