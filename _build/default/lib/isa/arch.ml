type family = Vax | M68k | Sparc

type t = {
  id : string;
  name : string;
  family : family;
  endian : Endian.t;
  float_format : Float_format.t;
  clock_mhz : float;
  mips : float;
  has_atomic_unlink : bool;
}

let vax =
  {
    id = "vax";
    name = "VAX";
    family = Vax;
    endian = Endian.Little;
    float_format = Float_format.Vax_f;
    clock_mhz = 5.0;
    mips = 2.0;
    has_atomic_unlink = true;
  }

let sun3 =
  {
    id = "sun3";
    name = "Sun-3";
    family = M68k;
    endian = Endian.Big;
    float_format = Float_format.Ieee_single;
    clock_mhz = 16.0;
    mips = 2.7;
    has_atomic_unlink = false;
  }

let hp9000_433 =
  {
    id = "hp433";
    name = "HP9000/300-1";
    family = M68k;
    endian = Endian.Big;
    float_format = Float_format.Ieee_single;
    clock_mhz = 33.0;
    mips = 26.0;
    has_atomic_unlink = false;
  }

let hp9000_385 =
  {
    id = "hp385";
    name = "HP9000/300-2";
    family = M68k;
    endian = Endian.Big;
    float_format = Float_format.Ieee_single;
    clock_mhz = 25.0;
    mips = 9.0;
    has_atomic_unlink = false;
  }

let sparc =
  {
    id = "sparc";
    name = "SPARC";
    family = Sparc;
    endian = Endian.Big;
    float_format = Float_format.Ieee_single;
    clock_mhz = 20.0;
    mips = 6.0;
    has_atomic_unlink = false;
  }

let all = [ vax; sun3; hp9000_433; hp9000_385; sparc ]

let by_id id =
  match List.find_opt (fun a -> String.equal a.id id) all with
  | Some a -> a
  | None -> raise Not_found

let family_name = function
  | Vax -> "VAX"
  | M68k -> "MC680x0"
  | Sparc -> "SPARC"

let equal a b = String.equal a.id b.id

let equal_family a b =
  match a, b with
  | Vax, Vax | M68k, M68k | Sparc, Sparc -> true
  | (Vax | M68k | Sparc), _ -> false

let pp ppf a = Format.fprintf ppf "%s(%s)" a.name (family_name a.family)
let cycle_time_ns a = 1000.0 /. a.clock_mhz
