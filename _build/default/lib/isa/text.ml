type image = {
  base : int;
  code : Code.t;
}

type t = {
  mutable images : image list;  (* sorted by decreasing base *)
  mutable next_base : int;
}

let text_base = 0x4000_0000
let align n = (n + 0xFFF) land lnot 0xFFF
let create () = { images = []; next_base = text_base }

let find_by_oid t oid =
  List.find_opt (fun img -> Int32.equal img.code.Code.code_oid oid) t.images

let load t code =
  match find_by_oid t code.Code.code_oid with
  | Some img -> img
  | None ->
    let img = { base = t.next_base; code } in
    t.next_base <- align (t.next_base + code.Code.byte_size + 16);
    t.images <- img :: t.images;
    img

let find t addr =
  List.find_opt
    (fun img -> addr >= img.base && addr < img.base + img.code.Code.byte_size)
    t.images

let images t = t.images
