module K = Ert.Kernel
module T = Ert.Thread

type send = Move.send = {
  snd_dest : int;
  snd_msg : Marshal.message;
}

type route =
  | Routed of send list
  | Unlocated of Marshal.message

let fail fmt = Format.kasprintf (fun m -> raise (K.Runtime_error m)) fmt
let _ = fail

let initiate_invoke ~k ~target_oid ~hint_node ~callee_class ~callee_method ~args
    ~caller_seg ~thread =
  let reply = { T.ln_node = K.node_id k; ln_seg = caller_seg } in
  let dest = if hint_node = K.node_id k then Option.value (Ert.Oid.creator_node target_oid) ~default:0 else hint_node in
  [
    {
      snd_dest = dest;
      snd_msg =
        Marshal.M_invoke
          { target = target_oid; callee_class; callee_method; args; reply; thread; forwards = 0 };
    };
  ]

let handle_invoke ~k ~target ~callee_class ~callee_method ~args ~reply ~thread
    ~forwards =
  match K.find_object k target with
  | Some addr ->
    ignore
      (K.spawn_rpc k ~target_addr:addr ~callee_class ~callee_method ~args ~link:reply
         ~thread);
    Routed []
  | None ->
    let message =
      Marshal.M_invoke
        { target; callee_class; callee_method; args; reply; thread;
          forwards = forwards + 1 }
    in
    let forward_to node =
      if node = K.node_id k then None else Some { snd_dest = node; snd_msg = message }
    in
    let next =
      if forwards >= 4 then None
      else
        match K.proxy_of k target with
        | Some addr -> forward_to (K.proxy_hint k addr)
        | None -> None
    in
    (match next with
    | Some s -> Routed [ s ]
    | None -> Unlocated message)

let initiate_return ~link ~value ~thread =
  {
    snd_dest = link.T.ln_node;
    snd_msg = Marshal.M_reply { to_seg = link.T.ln_seg; value; thread };
  }

let handle_reply ~k ~to_seg ~value ~thread =
  match K.find_segment k to_seg with
  | Some seg ->
    K.deliver_result k seg value;
    []
  | None -> (
    match K.seg_forward k ~seg_id:to_seg with
    | Some node ->
      [ { snd_dest = node; snd_msg = Marshal.M_reply { to_seg; value; thread } } ]
    | None -> fail "reply for unknown segment %d" to_seg)
