(** Virtual-time cost model for the mobility protocols.

    All costs are in {e abstract instructions}, charged to the node doing
    the work at its MIPS rating ({!Ert.Kernel.charge_insns}).  Together
    with the network simulation these constants put the Table 1
    reproduction on the right scale; the {e relative} behaviour (who is
    slower, the enhanced/original ratio) comes from the counted work —
    conversion procedure calls actually made, activation records actually
    translated, bytes actually sent — not from these constants.

    Calibration targets (section 3.6 of the paper):
    - original homogeneous SPARC-SPARC thread round trip = 40 ms,
    - enhanced = 63 ms (57% slower), dominated by the naive conversion
      routines at 1-2 procedure calls per byte. *)

val protocol_fixed_us : float
(** Fixed (CPU-speed-independent) cost of handling one message at one
    endpoint: DMA, interrupt latency, timer granularity, wire access.
    The 1995 measurements do not scale linearly with CPU speed — the
    VAXstation is 79 ms where the SPARC is 40 ms despite a ~7x MIPS gap —
    so the model needs this term. *)

val protocol_send_insns : int
(** CPU cost of sending one mobility/RPC message: kernel entry, protocol
    stack, buffer management. *)

val protocol_recv_insns : int

val per_conversion_call_insns : int
(** Cost of one conversion procedure call of the naive routines. *)

val frame_translate_insns : int
(** Translating one activation record between machine-dependent and
    machine-independent form (enhanced system only). *)

val relocation_insns_per_frame : int
(** The destination-side relocation pass of section 3.5. *)

val object_translate_insns : int
(** Per-object marshalling overhead beyond per-field conversion. *)

val original_copy_insns_per_byte : int
(** The homogeneous system copies data without format conversion. *)

val code_fetch_insns : int
(** Fetching a code object from the shared repository (the NFS disk
    illusion of section 3.4). *)

val invoke_dispatch_insns : int
(** Setting up or completing a remote invocation at either end. *)
