module Names = Set.Make (String)

type op_kind =
  | Plain
  | Call
  | Stop

type op = {
  name : string;
  kind : op_kind;
}

type code = {
  seq : op array;
  abstract_rank : (string, int) Hashtbl.t;  (** semantic (abstract) order *)
}

type edit = Swap of int

exception Illegal_edit of string
exception No_bridge of string

let abstract ops =
  if ops = [] then invalid_arg "Bridging.abstract: empty sequence";
  let names = Hashtbl.create 16 in
  List.iteri
    (fun i o ->
      if Hashtbl.mem names o.name then
        invalid_arg (Printf.sprintf "Bridging.abstract: duplicate operation %s" o.name);
      Hashtbl.replace names o.name i)
    ops;
  (match List.rev ops with
  | last :: _ when last.kind = Stop -> ()
  | _ -> invalid_arg "Bridging.abstract: the last operation must be a bus stop");
  { seq = Array.of_list ops; abstract_rank = names }

let ops c = Array.copy c.seq
let op_names c = Array.to_list (Array.map (fun o -> o.name) c.seq)

let apply_edits c edits =
  let seq = Array.copy c.seq in
  List.iter
    (fun (Swap i) ->
      if i < 0 || i + 1 >= Array.length seq then
        raise (Illegal_edit (Printf.sprintf "swap at %d out of range" i));
      let a = seq.(i) and b = seq.(i + 1) in
      if a.kind = Stop || b.kind = Stop then
        raise
          (Illegal_edit
             (Printf.sprintf "cannot move %s across the bus stop boundary at %d" a.name i));
      seq.(i) <- b;
      seq.(i + 1) <- a)
    edits;
  { c with seq }

let invert edits = List.rev edits
let equal a b = a.seq = b.seq

type bridge = {
  br_ops : op list;
  br_entry : int;
}

let index_of c name =
  let found = ref None in
  Array.iteri (fun i o -> if !found = None && String.equal o.name name then found := Some i) c.seq;
  !found

let executed_at c ~at =
  match index_of c at with
  | None -> raise (No_bridge (Printf.sprintf "no operation %s in this instance" at))
  | Some i ->
    if c.seq.(i).kind = Plain then
      raise
        (No_bridge
           (Printf.sprintf "%s is not a visible program point in this instance" at));
    (* suspension at a call resumes after it: the call has executed *)
    let set = ref Names.empty in
    for j = 0 to i do
      set := Names.add c.seq.(j).name !set
    done;
    !set

let build_bridge_from_set ~executed ~to_ =
  let n = Array.length to_.seq in
  let names_before i =
    let s = ref Names.empty in
    for j = 0 to i - 1 do
      s := Names.add to_.seq.(j).name !s
    done;
    !s
  in
  (* the earliest bus stop that re-executes nothing already done *)
  let rec find_stop i =
    if i >= n then raise (No_bridge "no resumption bus stop")
    else if to_.seq.(i).kind = Stop
            && (not (Names.mem to_.seq.(i).name executed))
            && Names.subset executed (names_before i)
    then i
    else find_stop (i + 1)
  in
  let si = find_stop 0 in
  let remaining = Names.diff (names_before si) executed in
  (* maximal suffix of not-yet-executed operations runs in place in the
     target instance; everything else goes in the bridge fragment *)
  let entry = ref si in
  while !entry > 0 && Names.mem to_.seq.(!entry - 1).name remaining do
    decr entry
  done;
  let suffix = ref Names.empty in
  for j = !entry to si - 1 do
    suffix := Names.add to_.seq.(j).name !suffix
  done;
  let bridge_names = Names.diff remaining !suffix in
  let rank name = Hashtbl.find to_.abstract_rank name in
  let br_ops =
    Names.elements bridge_names
    |> List.sort (fun a b -> compare (rank a) (rank b))
    |> List.map (fun name ->
           let i = Option.get (index_of to_ name) in
           to_.seq.(i))
  in
  { br_ops; br_entry = !entry }

let build_bridge ~from_ ~at ~to_ =
  build_bridge_from_set ~executed:(executed_at from_ ~at) ~to_

(* validation --------------------------------------------------------------- *)

let run_with_migration ~from_ ~at ~to_ =
  let log = ref [] in
  let emit o = log := o.name :: !log in
  let i_at =
    match index_of from_ at with
    | Some i -> i
    | None -> raise (No_bridge (Printf.sprintf "no operation %s" at))
  in
  for j = 0 to i_at do
    emit from_.seq.(j)
  done;
  let b = build_bridge ~from_ ~at ~to_ in
  List.iter emit b.br_ops;
  for j = b.br_entry to Array.length to_.seq - 1 do
    emit to_.seq.(j)
  done;
  List.rev !log

let run_with_two_migrations ~a ~at_a ~b ~at_b ~c =
  let log = ref [] in
  let executed = ref Names.empty in
  let emit o =
    log := o.name :: !log;
    executed := Names.add o.name !executed
  in
  let i_at =
    match index_of a at_a with
    | Some i -> i
    | None -> raise (No_bridge (Printf.sprintf "no operation %s" at_a))
  in
  for j = 0 to i_at do
    emit a.seq.(j)
  done;
  let b1 = build_bridge_from_set ~executed:!executed ~to_:b in
  (* execute the bridge then instance b, watching for the second migration
     point; a bridge position is just an executed set, so migrating from
     inside the bridge works the same way *)
  let stream =
    b1.br_ops
    @ Array.to_list (Array.sub b.seq b1.br_entry (Array.length b.seq - b1.br_entry))
  in
  let rec go = function
    | [] -> ()
    | o :: rest ->
      emit o;
      if String.equal o.name at_b && o.kind <> Plain then begin
        let b2 = build_bridge_from_set ~executed:!executed ~to_:c in
        List.iter emit b2.br_ops;
        for j = b2.br_entry to Array.length c.seq - 1 do
          emit c.seq.(j)
        done
      end
      else go rest
  in
  go stream;
  List.rev !log

let exactly_once ~abstract log =
  let sorted_log = List.sort String.compare log in
  let sorted_abs = List.sort String.compare (op_names abstract) in
  sorted_log = sorted_abs

let pp_code ppf c =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf o ->
         match o.kind with
         | Plain -> Format.fprintf ppf "%s" o.name
         | Call -> Format.fprintf ppf "%s()" o.name
         | Stop -> Format.fprintf ppf "[%s]" o.name))
    (Array.to_list c.seq)

let pp_bridge ~to_ ppf b =
  Format.fprintf ppf "bridge: %a; jump to %s"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf o -> Format.pp_print_string ppf o.name))
    b.br_ops
    (if b.br_entry < Array.length to_.seq then to_.seq.(b.br_entry).name else "<end>")
