(** Thread checkpointing — persistence through the machine-independent
    format.

    The same translation that ships a thread across the network can ship
    it through time: a thread parked at a bus stop is captured into the
    machine-independent segment format, serialised to bytes, removed from
    the kernel, and later rebuilt — on the original machine or, because
    the image is architecture-neutral, on any machine where the thread's
    objects reside.  (The paper notes the format's independence from the
    suspension machine; persistence is the natural second use.)

    Restrictions: every segment of the thread must be on this node and
    parked [Ready] at a bus stop (use {!Ert.Kernel.advance_to_stop} or a
    quiesced preemptive cluster to arrange this); on restore, every
    frame's object must be resident.  Threads blocked on monitors or
    awaiting remote replies hold distributed state and must be moved, not
    checkpointed. *)

exception Not_checkpointable of string

val capture : Ert.Kernel.t -> thread:int -> string
(** Serialise every segment of [thread] to a machine-independent image;
    the thread keeps running.  Raises {!Not_checkpointable} if any
    segment is not parked at a bus stop or the thread spans nodes. *)

val suspend : Ert.Kernel.t -> thread:int -> string
(** {!capture}, then remove the thread's segments from the kernel.  The
    image is the only remaining copy. *)

val restore : Ert.Kernel.t -> string -> unit
(** Rebuild the segments of a checkpoint image as native stacks on this
    kernel and reschedule them.  Raises {!Not_checkpointable} if a frame's
    object is not resident here or a segment id is already taken. *)

val thread_of : string -> int
(** The thread id recorded in a checkpoint image. *)

val parse : string -> Mi_frame.mi_segment list
(** Decode an image without installing it (for inspection). *)
