(** Trans-node (and trans-architecture) invocations and returns.

    An invocation of a non-resident object becomes an [M_invoke] carrying
    machine-independent argument values; the receiving node spawns a new
    segment of the {e same} thread, linked back to the caller's segment.
    Replies (and cross-node segment-bottom returns, which are the same
    thing) deliver a value to a waiting segment, chasing forwarding
    addresses when the segment has migrated since. *)

type send = Move.send = {
  snd_dest : int;
  snd_msg : Marshal.message;
}

val initiate_invoke :
  k:Ert.Kernel.t ->
  target_oid:Ert.Oid.t ->
  hint_node:int ->
  callee_class:int ->
  callee_method:int ->
  args:Ert.Value.t list ->
  caller_seg:int ->
  thread:int ->
  send list

type route =
  | Routed of send list
  | Unlocated of Marshal.message
      (** the proxy chain is exhausted or absent: the caller must run the
          location-search protocol and re-route this message *)

val handle_invoke :
  k:Ert.Kernel.t ->
  target:Ert.Oid.t ->
  callee_class:int ->
  callee_method:int ->
  args:Ert.Value.t list ->
  reply:Ert.Thread.link ->
  thread:int ->
  forwards:int ->
  route
(** Spawn the callee segment if the target is resident; otherwise forward
    along the proxy chain; after too many stale hops (or with no hint at
    all) the invocation becomes [Unlocated] and the node falls back to
    Emerald's broadcast location search. *)

val initiate_return : link:Ert.Thread.link -> value:Ert.Value.t -> thread:int -> send

val handle_reply :
  k:Ert.Kernel.t -> to_seg:int -> value:Ert.Value.t -> thread:int -> send list
(** Deliver to the waiting segment, or chase its forwarding address. *)
