(** Bridging code: thread mobility between differently optimized codes
    (section 2.4 of the paper — proposed there, implemented here).

    Model: a straight-line {e abstract} code sequence of named operations;
    differently optimized instances are produced by sequences of primitive
    reversible code-motion edits (adjacent transpositions, as the paper
    suggests: "code motion can be implemented by a very small set of
    primitive operations ... if the primitive code motion operations are
    all reversible, reversing the sequence ... yields the original control
    flow graph").

    Operations are [Plain], [Call] (a locally visible program point — a
    procedure or system call, where a thread can be suspended), or [Stop]
    (a bus stop: visible {e and} order-fixed in every instance; the last
    operation of a sequence must be a [Stop], the return point).

    When a thread suspended at a [Call] of one instance must continue in
    another instance with no corresponding point, {!build_bridge}
    constructs the bridge: the operations already executed are never
    re-executed, the rest execute exactly once — partly in a fresh bridge
    fragment (in abstract order), partly by entering the target instance
    early.  Figures 3 and 4 of the paper fall out as a literal test case.

    A thread may migrate again while executing bridging code; because a
    bridge position is fully described by the executed set,
    {!build_bridge_from_set} handles bridging-from-bridging. *)

module Names : Set.S with type elt = string

type op_kind =
  | Plain
  | Call
  | Stop

type op = {
  name : string;
  kind : op_kind;
}

type code

type edit = Swap of int
(** Exchange the operations at positions [i] and [i+1]. *)

exception Illegal_edit of string
exception No_bridge of string

val abstract : op list -> code
(** @raise Invalid_argument unless non-empty, uniquely named, ending in a
    [Stop]. *)

val ops : code -> op array
val op_names : code -> string list

val apply_edits : code -> edit list -> code
(** @raise Illegal_edit when an edit would reorder bus stops (compilers
    may optimise only {e between} bus stops). *)

val invert : edit list -> edit list
(** Applying [invert es] to [apply_edits c es] yields [c] back. *)

val equal : code -> code -> bool

type bridge = {
  br_ops : op list;  (** the fresh fragment, in abstract order *)
  br_entry : int;  (** index in the target instance to jump to afterwards *)
}

val executed_at : code -> at:string -> Names.t
(** Operations completed when suspended at the named visible point
    (inclusive: a suspension at a call resumes after it). *)

val build_bridge : from_:code -> at:string -> to_:code -> bridge
(** @raise No_bridge if [at] is not a visible point of [from_], or no
    resumption bus stop exists. *)

val build_bridge_from_set : executed:Names.t -> to_:code -> bridge

(* validation ------------------------------------------------------------- *)

val run_with_migration : from_:code -> at:string -> to_:code -> string list
(** Execute [from_] up to the suspension, the bridge, and the target
    instance to completion; returns the full operation log. *)

val run_with_two_migrations :
  a:code -> at_a:string -> b:code -> at_b:string -> c:code -> string list
(** Migrate at [at_a] from [a] to [b]; if the bridge-plus-[b] execution
    passes the visible point [at_b] before finishing, migrate again to
    [c] (bridging from bridging); returns the full log. *)

val exactly_once : abstract:code -> string list -> bool
(** Every abstract operation appears exactly once in the log. *)

val pp_code : Format.formatter -> code -> unit
val pp_bridge : to_:code -> Format.formatter -> bridge -> unit
