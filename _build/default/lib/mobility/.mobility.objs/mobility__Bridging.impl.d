lib/mobility/bridging.ml: Array Format Hashtbl List Option Printf Set String
