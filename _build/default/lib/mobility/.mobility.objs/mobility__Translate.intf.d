lib/mobility/translate.mli: Emc Ert Isa Mi_frame
