lib/mobility/code_repository.mli:
