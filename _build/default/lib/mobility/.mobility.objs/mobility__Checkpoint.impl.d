lib/mobility/checkpoint.ml: Cost_model Enet Ert List Mi_frame Printf Translate
