lib/mobility/rpc.ml: Ert Format Marshal Move Option
