lib/mobility/marshal.mli: Enet Ert Mi_frame
