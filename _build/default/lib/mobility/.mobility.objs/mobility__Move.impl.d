lib/mobility/move.ml: Array Emc Ert Format Hashtbl Isa List Marshal Mi_frame Translate
