lib/mobility/bridging.mli: Format Set
