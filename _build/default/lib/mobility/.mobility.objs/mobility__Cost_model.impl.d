lib/mobility/cost_model.ml:
