lib/mobility/mi_frame.ml: Emc Enet Ert Format Int32 List Printf
