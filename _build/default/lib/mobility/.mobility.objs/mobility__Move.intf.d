lib/mobility/move.mli: Ert Marshal
