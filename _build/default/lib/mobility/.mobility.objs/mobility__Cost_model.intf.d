lib/mobility/cost_model.mli:
