lib/mobility/marshal.ml: Enet Ert Int32 List Mi_frame Printf
