lib/mobility/code_repository.ml: List
