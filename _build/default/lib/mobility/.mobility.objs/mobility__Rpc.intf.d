lib/mobility/rpc.mli: Ert Marshal Move
