lib/mobility/mi_frame.mli: Emc Enet Ert Format
