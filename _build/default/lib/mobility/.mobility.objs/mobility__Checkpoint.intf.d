lib/mobility/checkpoint.mli: Ert Mi_frame
