lib/mobility/translate.ml: Array Emc Ert Format Int32 Isa List Mi_frame Option
