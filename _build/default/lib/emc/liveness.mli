(** Liveness analysis over the IR.

    The original Emerald debugging information "does not specify which
    variables are dead or alive at a given program point", nor "the number
    and types of temporary variables live at a given program point"
    (section 3.3) — this pass computes exactly that augmentation.  It
    fills in [sr_live] for every bus stop (variables and temporaries whose
    values must be translated if a thread migrates while suspended there)
    and reports which temporaries need activation-record slots at all
    (those live across a stop or a basic-block edge). *)

module ISet : Set.S with type elt = int

type info = {
  li_block_live_in : ISet.t array;
      (** per block: live entity keys at block entry (see {!key_of}) *)
  li_slotted_temps : ISet.t;  (** temps requiring frame slots *)
  li_interf : (int, ISet.t) Hashtbl.t;
      (** interference between entity keys, for slot sharing *)
}

val key_of_var : Ir.op_ir -> int -> int
val key_of_temp : Ir.op_ir -> Ir.temp -> int
val is_temp_key : Ir.op_ir -> int -> bool
val temp_of_key : Ir.op_ir -> int -> Ir.temp

val analyse : Ir.op_ir -> info
(** Also mutates [sr_live] of every stop of the operation. *)
