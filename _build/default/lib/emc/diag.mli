(** Compiler diagnostics. *)

type error = {
  pos : Ast.pos;
  message : string;
}

exception Compile_error of error list

val error : Ast.pos -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise a single {!Compile_error}. *)

val pp_error : Format.formatter -> error -> unit
val to_string : error list -> string
