module ISet = Liveness.ISet

let build_op (op : Ir.op_ir) : Template.op_t =
  let info = Liveness.analyse op in
  let slot_of_key = Hashtbl.create 32 in
  let slot_classes = ref [] in
  let n_slots = ref 0 in
  let new_slot cls =
    let s = !n_slots in
    incr n_slots;
    slot_classes := cls :: !slot_classes;
    s
  in
  let class_of_key k =
    let ty =
      if Liveness.is_temp_key op k then op.Ir.oi_temp_types.(Liveness.temp_of_key op k)
      else op.Ir.oi_vars.(k).Ir.vd_type
    in
    Template.slot_class_of_type ty
  in
  (* dedicated slots for self, parameters and the result *)
  let dedicated k = Hashtbl.replace slot_of_key k (new_slot (class_of_key k)) in
  for v = 0 to op.Ir.oi_nparams - 1 do
    dedicated (Liveness.key_of_var op v)
  done;
  (match op.Ir.oi_result with
  | Some r -> dedicated (Liveness.key_of_var op r)
  | None -> ());
  (* locals and slotted temps share slots within their class when their
     live ranges do not interfere *)
  let interferes_with k = Option.value (Hashtbl.find_opt info.Liveness.li_interf k) ~default:ISet.empty in
  let shared_pool : (int * Template.slot_class * ISet.t ref) list ref = ref [] in
  let assign_shared k =
    let cls = class_of_key k in
    let conflicts = interferes_with k in
    let rec find = function
      | [] ->
        let s = new_slot cls in
        shared_pool := !shared_pool @ [ (s, cls, ref (ISet.singleton k)) ];
        s
      | (s, c, members) :: rest ->
        if
          c = cls
          && ISet.is_empty (ISet.inter !members conflicts)
          && not (ISet.mem k !members)
        then begin
          members := ISet.add k !members;
          s
        end
        else find rest
    in
    Hashtbl.replace slot_of_key k (find !shared_pool)
  in
  Array.iteri
    (fun v vd ->
      match vd.Ir.vd_kind with
      | Ir.Klocal _ -> assign_shared (Liveness.key_of_var op v)
      | Ir.Kself | Ir.Kparam _ | Ir.Kresult -> ())
    op.Ir.oi_vars;
  ISet.iter assign_shared info.Liveness.li_slotted_temps;
  (* materialise the template *)
  let var_slot v = Hashtbl.find slot_of_key (Liveness.key_of_var op v) in
  let vars =
    Array.mapi (fun v vd -> (vd.Ir.vd_name, vd.Ir.vd_type, var_slot v)) op.Ir.oi_vars
  in
  let temp_slots =
    Array.init (Array.length op.Ir.oi_temp_types) (fun t ->
        Hashtbl.find_opt slot_of_key (Liveness.key_of_temp op t))
  in
  let slot_of_entity = function
    | Ir.Evar v -> var_slot v
    | Ir.Etemp t -> (
      match temp_slots.(t) with
      | Some s -> s
      | None -> invalid_arg "slot_alloc: live temp without slot")
  in
  let stops =
    Array.map
      (fun (sr : Ir.stop_rec) ->
        {
          Template.st_id = sr.Ir.sr_id;
          st_op = sr.Ir.sr_op;
          st_kind = sr.Ir.sr_kind;
          st_live =
            List.map
              (fun (e, ty) ->
                { Template.es_entity = e; es_slot = slot_of_entity e; es_type = ty })
              sr.Ir.sr_live;
        })
      op.Ir.oi_stops
  in
  {
    Template.ot_name = op.Ir.oi_name;
    ot_index = op.Ir.oi_index;
    ot_monitored = op.Ir.oi_monitored;
    ot_nparams = op.Ir.oi_nparams;
    ot_result_var = op.Ir.oi_result;
    ot_vars = vars;
    ot_temp_slots = temp_slots;
    ot_nslots = !n_slots;
    ot_slot_class = Array.of_list (List.rev !slot_classes);
    ot_stops = stops;
  }

let build_class (cl : Ir.class_ir) ~oid : Template.class_t =
  {
    Template.ct_name = cl.Ir.cl_name;
    ct_index = cl.Ir.cl_index;
    ct_oid = oid;
    ct_fields = cl.Ir.cl_fields;
    ct_attached = cl.Ir.cl_attached;
    ct_field_inits = cl.Ir.cl_field_inits;
    ct_conditions = cl.Ir.cl_conditions;
    ct_strings = cl.Ir.cl_strings;
    ct_ops = Array.map build_op cl.Ir.cl_ops;
    ct_nstops = cl.Ir.cl_nstops;
  }
