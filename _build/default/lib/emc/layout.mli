(** Memory-layout constants shared between the code generators and the
    runtime kernel.

    Object descriptors (one per object per node; non-resident objects get
    proxy descriptors used for forwarding):
    {v
    +0   flags            (bit 0: resident; bit 1: code loaded;
                           bit 2: string block; bit 3: locked-to-node)
    +4   OID
    +8   descriptor-table address (resident) / last-known node id (proxy)
    +12  monitor lock word (0 free / 1 held)
    +16  monitor wait-queue sentinel flink   (circular doubly linked)
    +20  monitor wait-queue sentinel blink
    +24  fields, one 32-bit word each
    v}

    String blocks: [+0] flags (string bit), [+4] length, [+8..] bytes.

    Monitor wait-queue nodes: [+0] flink, [+4] blink, [+8] thread id.

    Descriptor tables (one per loaded code object per node):
    [+0] class index; [+4+4m] absolute entry address of method [m];
    then one word per string literal holding its block's address. *)

val obj_flags : int
val obj_oid : int
val obj_desc : int
val obj_lock : int
val obj_qflink : int
val obj_qblink : int
val obj_fields : int
val obj_header_size : int

val flag_resident : int
val flag_code_loaded : int
val flag_string : int
val flag_fixed : int

val str_flags : int
val str_len : int
val str_bytes : int

val qnode_flink : int
val qnode_blink : int
val qnode_thread : int
val qnode_size : int

val desc_class : int
val desc_method : int -> int
val desc_string : nmethods:int -> int -> int
val desc_size : nmethods:int -> nstrings:int -> int

val field_offset : int -> int

val cond_sentinel : nfields:int -> int -> int
(** Monitor-condition wait-queue sentinel [c] (after the fields). *)

val object_size : nconds:int -> nfields:int -> int

(** Vector blocks: [+0] flags (vector bit), [+4] length, [+8] element-kind
    code, [+12..] one 32-bit word per element. *)

val vec_flags : int
val vec_len : int
val vec_kind : int
val vec_elems : int
val flag_vector : int
val kind_int : int
val kind_real : int
val kind_bool : int
val kind_string : int
val kind_ref : int
val kind_vec : int
val kind_of_typ : Ast.typ -> int
