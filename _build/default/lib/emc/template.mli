(** Templates: the machine-independent compiler-generated descriptions of
    objects and activation records (section 3.2/3.3 of the paper).

    A class template describes the object data area (field names and
    types, attachment, literal initial values) and, for every operation,
    the activation-record contents in terms of abstract {e slots}: every
    variable has a slot, locals with disjoint live ranges may share one,
    and temporaries that live across a bus stop or block edge get slots
    too.  For each bus stop the template records exactly which entities
    own which slots and with which types — the information the runtime
    needs to convert an activation record to and from the
    machine-independent format, and the garbage collector needs to find
    pointers.

    The per-architecture half (slot offsets, frame sizes, PC values) lives
    in {!Busstop}, emitted by the code generators. *)

type slot_class =
  | Scalar  (** int, real, bool *)
  | Pointer  (** object references and strings *)

type entity_slot = {
  es_entity : Ir.entity;
  es_slot : int;
  es_type : Ast.typ;
}

type stop_t = {
  st_id : int;  (** class-global bus stop number *)
  st_op : int;
  st_kind : Ir.stop_kind;
  st_live : entity_slot list;
      (** slot ownership at this stop: the entities whose values occupy
          slots here, with the types they hold *)
}

type op_t = {
  ot_name : string;
  ot_index : int;
  ot_monitored : bool;
  ot_nparams : int;  (** including self *)
  ot_result_var : int option;
  ot_vars : (string * Ast.typ * int) array;  (** var id -> name, type, slot *)
  ot_temp_slots : int option array;  (** temp id -> slot, when slotted *)
  ot_nslots : int;
  ot_slot_class : slot_class array;
  ot_stops : stop_t array;
}

type class_t = {
  ct_name : string;
  ct_index : int;
  ct_oid : int32;
  ct_fields : (string * Ast.typ) array;
  ct_attached : bool array;
  ct_field_inits : Ir.field_init array;
  ct_conditions : string array;
  ct_strings : string array;
  ct_ops : op_t array;
  ct_nstops : int;
}

val slot_class_of_type : Ast.typ -> slot_class
val stop_by_id : class_t -> int -> stop_t
val op_of_stop : class_t -> int -> op_t
val var_slot : op_t -> int -> int
val pp_class : Format.formatter -> class_t -> unit
