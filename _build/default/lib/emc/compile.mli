(** Top-level compiler driver.

    Compiles a source program once per requested architecture from a
    single shared IR, so bus-stop numbering, templates and code-object
    OIDs are identical across architectures by construction — the
    discipline the paper's program database enforces for separate
    compilations (section 3.4). *)

type arch_artifact = {
  aa_arch : Isa.Arch.t;
  aa_code : Isa.Code.t;
  aa_stops : Busstop.table;
}

type compiled_class = {
  cc_name : string;
  cc_index : int;
  cc_oid : int32;
  cc_template : Template.class_t;
  cc_ir : Ir.class_ir;
  cc_arts : (string * arch_artifact) list;  (** keyed by architecture id *)
}

type program = {
  p_name : string;
  p_ir : Ir.program_ir;
  p_classes : compiled_class array;
}

val compile :
  ?db:Program_db.t ->
  ?optimize:bool ->
  name:string ->
  archs:Isa.Arch.t list ->
  string ->
  (program, Diag.error list) result

val compile_exn :
  ?db:Program_db.t ->
  ?optimize:bool ->
  name:string ->
  archs:Isa.Arch.t list ->
  string ->
  program
(** [optimize] enables the between-bus-stops peephole pass ({!Peephole});
    it must be used uniformly across a program's architectures, which this
    interface guarantees (the paper's prototype likewise ran identically
    optimized code everywhere, section 3).
    @raise Diag.Compile_error *)

val find_class : program -> string -> compiled_class option
val artifact : compiled_class -> arch_id:string -> arch_artifact
val class_by_index : program -> int -> compiled_class
