(** Activation-record slot allocation.

    Self, parameters and the result get dedicated slots; locals share
    slots when their live ranges do not interfere (so a slot may be owned
    by different variables at different bus stops — the sharing the paper's
    enhanced templates describe); temporaries that are live across a bus
    stop or a block edge also receive slots.  Sharing only happens within
    a slot class (pointers never share with scalars). *)

val build_class : Ir.class_ir -> oid:int32 -> Template.class_t
(** Runs liveness on every operation (filling the per-stop live sets) and
    constructs the class template. *)
