lib/emc/codegen_vax.mli: Busstop Codegen_common Ir Isa Template
