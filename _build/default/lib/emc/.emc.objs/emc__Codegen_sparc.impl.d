lib/emc/codegen_sparc.ml: Array Codegen_common Int32 Ir Isa Layout List Sysno
