lib/emc/template.ml: Array Ast Format Ir Printf
