lib/emc/program_db.mli:
