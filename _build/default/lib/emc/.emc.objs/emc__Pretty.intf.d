lib/emc/pretty.mli: Format Ir
