lib/emc/busstop.mli: Format Hashtbl Ir
