lib/emc/lower.mli: Ir Typecheck
