lib/emc/diag.ml: Ast Format List String
