lib/emc/lexer.ml: Ast Buffer Diag Int32 List Printf String
