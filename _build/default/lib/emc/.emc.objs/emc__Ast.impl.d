lib/emc/ast.ml: Format String
