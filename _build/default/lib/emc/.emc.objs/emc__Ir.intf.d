lib/emc/ir.mli: Ast Isa
