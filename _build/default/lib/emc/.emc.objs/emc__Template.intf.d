lib/emc/template.mli: Ast Format Ir
