lib/emc/peephole.ml: Array Isa List
