lib/emc/codegen_m68k.mli: Busstop Codegen_common Ir Isa Template
