lib/emc/codegen_m68k.ml: Array Codegen_common Int32 Ir Isa Layout List Sysno
