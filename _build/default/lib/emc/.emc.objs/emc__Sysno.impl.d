lib/emc/sysno.ml: Ir Printf
