lib/emc/layout.mli: Ast
