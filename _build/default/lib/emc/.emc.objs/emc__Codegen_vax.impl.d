lib/emc/codegen_vax.ml: Array Codegen_common Int32 Ir Isa Layout List Sysno
