lib/emc/parser.ml: Ast Diag Lexer List String
