lib/emc/lexer.mli: Ast
