lib/emc/typecheck.mli: Ast
