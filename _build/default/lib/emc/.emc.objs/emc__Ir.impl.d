lib/emc/ir.ml: Array Ast Isa Printf
