lib/emc/compile.ml: Array Busstop Codegen_m68k Codegen_sparc Codegen_vax Diag Ir Isa List Lower Parser Printf Program_db Slot_alloc String Template Typecheck
