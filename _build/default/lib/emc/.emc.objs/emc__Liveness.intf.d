lib/emc/liveness.mli: Hashtbl Ir Set
