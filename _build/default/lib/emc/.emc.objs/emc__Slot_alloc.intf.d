lib/emc/slot_alloc.mli: Ir Template
