lib/emc/ast.mli: Format
