lib/emc/codegen_common.ml: Array Busstop Fun Hashtbl Int32 Ir Isa Layout List Option Peephole Printf Sysno Template
