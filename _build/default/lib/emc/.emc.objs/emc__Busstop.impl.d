lib/emc/busstop.ml: Array Format Hashtbl Ir Printf
