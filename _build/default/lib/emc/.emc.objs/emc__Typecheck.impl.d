lib/emc/typecheck.ml: Array Ast Diag Hashtbl List Option String
