lib/emc/peephole.mli: Isa
