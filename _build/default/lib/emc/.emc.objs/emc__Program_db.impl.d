lib/emc/program_db.ml: Char Hashtbl Int32 Option String
