lib/emc/slot_alloc.ml: Array Hashtbl Ir List Liveness Option Template
