lib/emc/liveness.ml: Array Fun Hashtbl Int Ir List Option Set
