lib/emc/lower.ml: Array Ast Hashtbl Int32 Ir Isa Layout List Option String Typecheck
