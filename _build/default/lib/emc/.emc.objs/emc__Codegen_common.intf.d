lib/emc/codegen_common.mli: Busstop Ir Isa Template
