lib/emc/sysno.mli: Ir
