lib/emc/layout.ml: Ast
