lib/emc/compile.mli: Busstop Diag Ir Isa Program_db Template
