lib/emc/parser.mli: Ast
