lib/emc/pretty.ml: Array Ast Format Ir Isa List Printf String
