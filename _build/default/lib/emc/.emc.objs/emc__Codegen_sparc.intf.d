lib/emc/codegen_sparc.mli: Busstop Codegen_common Ir Isa Template
