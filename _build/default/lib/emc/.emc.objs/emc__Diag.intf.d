lib/emc/diag.mli: Ast Format
