let obj_flags = 0
let obj_oid = 4
let obj_desc = 8
let obj_lock = 12
let obj_qflink = 16
let obj_qblink = 20
let obj_fields = 24
let obj_header_size = 24
let flag_resident = 1
let flag_code_loaded = 2
let flag_string = 4
let flag_fixed = 8
let str_flags = 0
let str_len = 4
let str_bytes = 8
let qnode_flink = 0
let qnode_blink = 4
let qnode_thread = 8
let qnode_size = 12
let desc_class = 0
let desc_method m = 4 + (4 * m)
let desc_string ~nmethods s = 4 + (4 * nmethods) + (4 * s)
let desc_size ~nmethods ~nstrings = 4 + (4 * nmethods) + (4 * nstrings)
let field_offset i = obj_fields + (4 * i)
let cond_sentinel ~nfields c = obj_fields + (4 * nfields) + (8 * c)
let object_size ~nconds ~nfields = obj_header_size + (4 * nfields) + (8 * nconds)
let vec_flags = 0
let vec_len = 4
let vec_kind = 8
let vec_elems = 12
let flag_vector = 16

let kind_int = 1
let kind_real = 2
let kind_bool = 3
let kind_string = 4
let kind_ref = 5
let kind_vec = 6

let kind_of_typ = function
  | Ast.Tint -> kind_int
  | Ast.Treal -> kind_real
  | Ast.Tbool -> kind_bool
  | Ast.Tstring -> kind_string
  | Ast.Tobj _ | Ast.Tnil -> kind_ref
  | Ast.Tvec _ -> kind_vec
