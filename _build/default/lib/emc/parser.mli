(** Recursive-descent parser for the Emerald-like source language. *)

val parse_program : string -> Ast.program
(** @raise Diag.Compile_error on syntax errors. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (for tests and tools). *)
