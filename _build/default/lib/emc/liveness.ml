module ISet = Set.Make (Int)

type info = {
  li_block_live_in : ISet.t array;
  li_slotted_temps : ISet.t;
  li_interf : (int, ISet.t) Hashtbl.t;
}

(* Entities are encoded in one integer key space: variables first, then
   temporaries. *)
let key_of_var _op v = v
let key_of_temp op t = Array.length op.Ir.oi_vars + t
let is_temp_key op k = k >= Array.length op.Ir.oi_vars
let temp_of_key op k = k - Array.length op.Ir.oi_vars

(* Instructions that implicitly need [self] (variable 0): field access,
   string-literal loads (which go through self's descriptor table), and
   the monitor sequences, whose expansions reload self after their stops. *)
let implicit_self_use = function
  | Ir.Iload_field (_, _)
  | Ir.Istore_field (_, _)
  | Ir.Imon_enter _ | Ir.Imon_exit _
  | Ir.Iconst_str (_, _) -> true
  | Ir.Iconst_int (_, _)
  | Ir.Iconst_real (_, _)
  | Ir.Iconst_bool (_, _)
  | Ir.Iconst_nil _
  | Ir.Icopy (_, _)
  | Ir.Iload_var (_, _)
  | Ir.Istore_var (_, _)
  | Ir.Ibin _ | Ir.Icmp _ | Ir.Ineg _ | Ir.Inot _ | Ir.Icvt_int_real _ | Ir.Iinvoke _
  | Ir.Inew _ | Ir.Ibuiltin _ | Ir.Ivec_get _ | Ir.Ivec_set _ | Ir.Ivec_len _ -> false

let instr_uses op i =
  let temps = List.map (key_of_temp op) (Ir.uses i) in
  let vars =
    match i with
    | Ir.Iload_var (_, v) -> [ key_of_var op v ]
    | _ -> []
  in
  let self = if implicit_self_use i then [ key_of_var op 0 ] else [] in
  temps @ vars @ self

let instr_defs op i =
  let t = Option.map (key_of_temp op) (Ir.defs i) in
  let v =
    match i with
    | Ir.Istore_var (v, _) -> Some (key_of_var op v)
    | _ -> None
  in
  List.filter_map Fun.id [ t; v ]

let term_uses_keys op term =
  let temps = List.map (key_of_temp op) (Ir.term_uses term) in
  match term with
  | Ir.Treturn -> (
    match op.Ir.oi_result with
    | Some r -> key_of_var op r :: temps
    | None -> temps)
  | Ir.Tjump _ | Ir.Tcond _ | Ir.Tloop _ -> temps

let transfer_block op blk live_out =
  let live = ref (ISet.union live_out (ISet.of_list (term_uses_keys op blk.Ir.b_term))) in
  List.iter
    (fun i ->
      List.iter (fun d -> live := ISet.remove d !live) (instr_defs op i);
      List.iter (fun u -> live := ISet.add u !live) (instr_uses op i))
    (List.rev blk.Ir.b_instrs);
  !live

let analyse (op : Ir.op_ir) : info =
  let n = Array.length op.Ir.oi_blocks in
  let live_in = Array.make n ISet.empty in
  let live_out blk =
    List.fold_left
      (fun acc l -> ISet.union acc live_in.(l))
      ISet.empty
      (Ir.successors blk.Ir.b_term)
  in
  (* fixpoint *)
  let changed = ref true in
  while !changed do
    changed := false;
    for bi = n - 1 downto 0 do
      let blk = op.Ir.oi_blocks.(bi) in
      let li = transfer_block op blk (live_out blk) in
      if not (ISet.equal li live_in.(bi)) then begin
        live_in.(bi) <- li;
        changed := true
      end
    done
  done;
  (* final pass: record per-stop live sets, slotted temps, interference *)
  let slotted = ref ISet.empty in
  let interf : (int, ISet.t) Hashtbl.t = Hashtbl.create 64 in
  let add_interf a b =
    if a <> b then begin
      let cur = Option.value (Hashtbl.find_opt interf a) ~default:ISet.empty in
      Hashtbl.replace interf a (ISet.add b cur);
      let cur = Option.value (Hashtbl.find_opt interf b) ~default:ISet.empty in
      Hashtbl.replace interf b (ISet.add a cur)
    end
  in
  let entity_of_key k =
    if is_temp_key op k then Ir.Etemp (temp_of_key op k) else Ir.Evar k
  in
  let type_of_key k =
    if is_temp_key op k then op.Ir.oi_temp_types.(temp_of_key op k)
    else op.Ir.oi_vars.(k).Ir.vd_type
  in
  let record_stop stop_id live =
    let stop = Ir.find_stop op stop_id in
    (* self is needed by the monitor-exit lock release after its stops *)
    let live =
      match stop.Ir.sr_kind with
      | Ir.Sk_mon_dequeue | Ir.Sk_mon_wake | Ir.Sk_mon_enter ->
        ISet.add (key_of_var op 0) live
      | Ir.Sk_invoke _ | Ir.Sk_new _ | Ir.Sk_builtin _ | Ir.Sk_loop -> live
    in
    stop.Ir.sr_live <-
      List.map (fun k -> (entity_of_key k, type_of_key k)) (ISet.elements live);
    ISet.iter (fun k -> if is_temp_key op k then slotted := ISet.add k !slotted) live
  in
  Array.iter
    (fun blk ->
      let out = live_out blk in
      (* loop-bottom poll stop: everything live at the back edge *)
      (match blk.Ir.b_term with
      | Ir.Tloop { stop; _ } -> record_stop stop out
      | Ir.Tjump _ | Ir.Tcond _ | Ir.Treturn -> ());
      let live = ref (ISet.union out (ISet.of_list (term_uses_keys op blk.Ir.b_term))) in
      List.iter
        (fun i ->
          let defs = instr_defs op i in
          (* live set across this instruction, excluding what it defines *)
          let live_across = List.fold_left (fun s d -> ISet.remove d s) !live defs in
          List.iter (fun stop_id -> record_stop stop_id live_across) (Ir.stop_of_instr i);
          List.iter (fun d -> ISet.iter (fun k -> add_interf d k) live_across) defs;
          live := live_across;
          List.iter (fun u -> live := ISet.add u !live) (instr_uses op i))
        (List.rev blk.Ir.b_instrs))
    op.Ir.oi_blocks;
  (* temps live across a block edge also need slots *)
  Array.iter
    (fun li ->
      ISet.iter (fun k -> if is_temp_key op k then slotted := ISet.add k !slotted) li)
    live_in;
  { li_block_live_in = live_in; li_slotted_temps = !slotted; li_interf = interf }
