type t = {
  by_name : (string, int32) Hashtbl.t;  (* "program/class" -> oid *)
  by_oid : (int32, string * string) Hashtbl.t;
}

let create () = { by_name = Hashtbl.create 32; by_oid = Hashtbl.create 32 }

(* FNV-1a, folded to a positive 30-bit value so OIDs stay clear of the
   node-id tag space used by the runtime *)
let fnv1a s =
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c ->
      h := (!h lxor Char.code c) * 0x01000193;
      h := !h land 0x3FFFFFFF)
    s;
  !h

let assign t ~program ~class_name =
  let key = program ^ "/" ^ class_name in
  match Hashtbl.find_opt t.by_name key with
  | Some oid -> oid
  | None ->
    let rec probe h =
      let candidate = Int32.of_int (if h = 0 then 1 else h) in
      if Hashtbl.mem t.by_oid candidate then probe ((h + 1) land 0x3FFFFFFF)
      else candidate
    in
    let oid = probe (fnv1a key) in
    Hashtbl.replace t.by_name key oid;
    Hashtbl.replace t.by_oid oid (program, class_name);
    oid

let lookup t oid = Hashtbl.find_opt t.by_oid oid
let class_of_oid t oid = Option.map snd (lookup t oid)
let count t = Hashtbl.length t.by_name
