type error = {
  pos : Ast.pos;
  message : string;
}

exception Compile_error of error list

let error pos fmt =
  Format.kasprintf (fun message -> raise (Compile_error [ { pos; message } ])) fmt

let pp_error ppf e = Format.fprintf ppf "%d:%d: %s" e.pos.Ast.line e.pos.Ast.col e.message

let to_string errors =
  String.concat "\n" (List.map (fun e -> Format.asprintf "%a" pp_error e) errors)
