type arch_artifact = {
  aa_arch : Isa.Arch.t;
  aa_code : Isa.Code.t;
  aa_stops : Busstop.table;
}

type compiled_class = {
  cc_name : string;
  cc_index : int;
  cc_oid : int32;
  cc_template : Template.class_t;
  cc_ir : Ir.class_ir;
  cc_arts : (string * arch_artifact) list;
}

type program = {
  p_name : string;
  p_ir : Ir.program_ir;
  p_classes : compiled_class array;
}

let backend_for (arch : Isa.Arch.t) =
  match arch.Isa.Arch.family with
  | Isa.Arch.Vax -> Codegen_vax.compile_class
  | Isa.Arch.M68k -> Codegen_m68k.compile_class
  | Isa.Arch.Sparc -> Codegen_sparc.compile_class

let compile_exn ?db ?(optimize = false) ~name ~archs source =
  let db =
    match db with
    | Some db -> db
    | None -> Program_db.create ()
  in
  let ast = Parser.parse_program source in
  let tprog = Typecheck.check ast in
  let ir = Lower.lower_program ~name tprog in
  let classes =
    Array.map
      (fun (cl : Ir.class_ir) ->
        let oid = Program_db.assign db ~program:name ~class_name:cl.Ir.cl_name in
        let template = Slot_alloc.build_class cl ~oid in
        let arts =
          List.map
            (fun arch ->
              let code, stops =
                (backend_for arch) ~optimize ~arch ~code_oid:oid cl template
              in
              ( arch.Isa.Arch.id,
                { aa_arch = arch; aa_code = code; aa_stops = stops } ))
            archs
        in
        {
          cc_name = cl.Ir.cl_name;
          cc_index = cl.Ir.cl_index;
          cc_oid = oid;
          cc_template = template;
          cc_ir = cl;
          cc_arts = arts;
        })
      ir.Ir.pr_classes
  in
  { p_name = name; p_ir = ir; p_classes = classes }

let compile ?db ?optimize ~name ~archs source =
  match compile_exn ?db ?optimize ~name ~archs source with
  | prog -> Ok prog
  | exception Diag.Compile_error errs -> Error errs

let find_class prog name =
  Array.find_opt (fun c -> String.equal c.cc_name name) prog.p_classes

let artifact cc ~arch_id =
  match List.assoc_opt arch_id cc.cc_arts with
  | Some a -> a
  | None ->
    invalid_arg
      (Printf.sprintf "Compile.artifact: class %s was not compiled for %s" cc.cc_name
         arch_id)

let class_by_index prog i = prog.p_classes.(i)
