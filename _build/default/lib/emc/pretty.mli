(** Pretty-printing of the IR (for the [emeraldc] dump tool and tests). *)

val pp_instr : Format.formatter -> Ir.instr -> unit
val pp_terminator : Format.formatter -> Ir.terminator -> unit
val pp_op : Format.formatter -> Ir.op_ir -> unit
val pp_class : Format.formatter -> Ir.class_ir -> unit
val pp_program : Format.formatter -> Ir.program_ir -> unit
