(** The program database of section 3.4.

    The prototype in the paper required the programmer to synchronise OID
    counters by hand so that semantically equivalent code objects compiled
    on different machines got the same OID; the paper proposes a program
    database as the production fix.  This is that database: OIDs are
    assigned deterministically from the program and class names, so
    compiling the same program for any architecture, any number of times,
    yields the same code-object OIDs. *)

type t

val create : unit -> t

val assign : t -> program:string -> class_name:string -> int32
(** Deterministic, collision-free OID for a code object.  Calling again
    with the same names returns the same OID. *)

val lookup : t -> int32 -> (string * string) option
(** [(program, class_name)] registered under an OID. *)

val class_of_oid : t -> int32 -> string option
val count : t -> int
