(** Lowering from the typed AST to the IR.

    Allocates bus-stop ids (dense, per class, in a deterministic
    source-driven order — so independent compilations for different
    architectures agree), makes monitor entry/exit explicit, expands
    short-circuit boolean operators and [while] into control flow, and
    expands [new C\[args\]] into an allocation followed by an [initially]
    invocation. *)

val lower_program : name:string -> Typecheck.tprog -> Ir.program_ir
