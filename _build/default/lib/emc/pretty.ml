let pf = Format.fprintf

let pp_instr ppf (i : Ir.instr) =
  match i with
  | Ir.Iconst_int (t, v) -> pf ppf "t%d <- %ld" t v
  | Ir.Iconst_real (t, v) -> pf ppf "t%d <- %g" t v
  | Ir.Iconst_bool (t, v) -> pf ppf "t%d <- %b" t v
  | Ir.Iconst_str (t, s) -> pf ppf "t%d <- str#%d" t s
  | Ir.Iconst_nil t -> pf ppf "t%d <- nil" t
  | Ir.Icopy (d, s) -> pf ppf "t%d <- t%d" d s
  | Ir.Iload_var (t, v) -> pf ppf "t%d <- v%d" t v
  | Ir.Istore_var (v, t) -> pf ppf "v%d <- t%d" v t
  | Ir.Iload_field (t, f) -> pf ppf "t%d <- self.f%d" t f
  | Ir.Istore_field (f, t) -> pf ppf "self.f%d <- t%d" f t
  | Ir.Ibin { dst; op; ty; a; b } ->
    pf ppf "t%d <- t%d %s%s t%d" dst a (Isa.Insn.binop_name op)
      (match ty with
      | Ir.Areal -> "."
      | Ir.Aint -> "")
      b
  | Ir.Icmp { dst; op; a; b; _ } ->
    pf ppf "t%d <- t%d %s t%d" dst a (Isa.Insn.cmp_name op) b
  | Ir.Ineg { dst; a; _ } -> pf ppf "t%d <- -t%d" dst a
  | Ir.Inot { dst; a } -> pf ppf "t%d <- not t%d" dst a
  | Ir.Icvt_int_real { dst; a } -> pf ppf "t%d <- real(t%d)" dst a
  | Ir.Iinvoke { dst; target; method_name; args; stop; _ } ->
    pf ppf "%st%d.%s[%s]  @stop %d"
      (match dst with
      | Some d -> Printf.sprintf "t%d <- " d
      | None -> "")
      target method_name
      (String.concat ", " (List.map (Printf.sprintf "t%d") args))
      stop
  | Ir.Inew { dst; class_index; stop } ->
    pf ppf "t%d <- new class#%d  @stop %d" dst class_index stop
  | Ir.Ibuiltin { dst; bi; args; stop } ->
    pf ppf "%s%s[%s]  @stop %d"
      (match dst with
      | Some d -> Printf.sprintf "t%d <- " d
      | None -> "")
      (Ir.builtin_name bi)
      (String.concat ", " (List.map (Printf.sprintf "t%d") args))
      stop
  | Ir.Ivec_get { dst; vec; idx; stop } ->
    pf ppf "t%d <- t%d[t%d]  @stop %d" dst vec idx stop
  | Ir.Ivec_set { vec; idx; src; stop } ->
    pf ppf "t%d[t%d] <- t%d  @stop %d" vec idx src stop
  | Ir.Ivec_len { dst; vec } -> pf ppf "t%d <- size(t%d)" dst vec
  | Ir.Imon_enter { stop } -> pf ppf "monitor-enter  @stop %d" stop
  | Ir.Imon_exit { dequeue_stop; wake_stop } ->
    pf ppf "monitor-exit  @stops %d,%d" dequeue_stop wake_stop

let pp_terminator ppf (t : Ir.terminator) =
  match t with
  | Ir.Tjump l -> pf ppf "jump L%d" l
  | Ir.Tcond { c; if_true; if_false } -> pf ppf "if t%d then L%d else L%d" c if_true if_false
  | Ir.Treturn -> pf ppf "return"
  | Ir.Tloop { target; stop } -> pf ppf "loop-back L%d  @stop %d" target stop

let pp_op ppf (op : Ir.op_ir) =
  pf ppf "  operation %s%s@." op.Ir.oi_name (if op.Ir.oi_monitored then " [monitor]" else "");
  Array.iteri
    (fun i (vd : Ir.var_def) ->
      pf ppf "    v%d = %s : %s@." i vd.Ir.vd_name (Ast.typ_name vd.Ir.vd_type))
    op.Ir.oi_vars;
  Array.iter
    (fun (b : Ir.block) ->
      pf ppf "    L%d:@." b.Ir.b_label;
      List.iter (fun i -> pf ppf "      %a@." pp_instr i) b.Ir.b_instrs;
      pf ppf "      %a@." pp_terminator b.Ir.b_term)
    op.Ir.oi_blocks

let pp_class ppf (cl : Ir.class_ir) =
  pf ppf "class %s (#%d, %d stops)@." cl.Ir.cl_name cl.Ir.cl_index cl.Ir.cl_nstops;
  Array.iteri
    (fun i (name, ty) -> pf ppf "  field f%d = %s : %s@." i name (Ast.typ_name ty))
    cl.Ir.cl_fields;
  Array.iter (pp_op ppf) cl.Ir.cl_ops

let pp_program ppf (p : Ir.program_ir) =
  pf ppf "program %s@." p.Ir.pr_name;
  Array.iter (pp_class ppf) p.Ir.pr_classes
