type slot_class =
  | Scalar
  | Pointer

type entity_slot = {
  es_entity : Ir.entity;
  es_slot : int;
  es_type : Ast.typ;
}

type stop_t = {
  st_id : int;
  st_op : int;
  st_kind : Ir.stop_kind;
  st_live : entity_slot list;
}

type op_t = {
  ot_name : string;
  ot_index : int;
  ot_monitored : bool;
  ot_nparams : int;
  ot_result_var : int option;
  ot_vars : (string * Ast.typ * int) array;
  ot_temp_slots : int option array;
  ot_nslots : int;
  ot_slot_class : slot_class array;
  ot_stops : stop_t array;
}

type class_t = {
  ct_name : string;
  ct_index : int;
  ct_oid : int32;
  ct_fields : (string * Ast.typ) array;
  ct_attached : bool array;
  ct_field_inits : Ir.field_init array;
  ct_conditions : string array;
  ct_strings : string array;
  ct_ops : op_t array;
  ct_nstops : int;
}

let slot_class_of_type t = if Ir.is_pointer_type t then Pointer else Scalar

let stop_by_id ct id =
  let found = ref None in
  Array.iter
    (fun op ->
      Array.iter (fun s -> if s.st_id = id then found := Some s) op.ot_stops)
    ct.ct_ops;
  match !found with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Template.stop_by_id: no stop %d in %s" id ct.ct_name)

let op_of_stop ct id = ct.ct_ops.((stop_by_id ct id).st_op)

let var_slot op v =
  let _, _, slot = op.ot_vars.(v) in
  slot

let pp_entity ppf = function
  | Ir.Evar v -> Format.fprintf ppf "v%d" v
  | Ir.Etemp t -> Format.fprintf ppf "t%d" t

let pp_class ppf ct =
  Format.fprintf ppf "template %s (class %d, oid %ld)@." ct.ct_name ct.ct_index ct.ct_oid;
  Array.iteri
    (fun i (name, ty) ->
      Format.fprintf ppf "  field %d: %s : %a%s@." i name Ast.pp_typ ty
        (if ct.ct_attached.(i) then " [attached]" else ""))
    ct.ct_fields;
  Array.iter
    (fun op ->
      Format.fprintf ppf "  operation %s: %d slots%s@." op.ot_name op.ot_nslots
        (if op.ot_monitored then " [monitor]" else "");
      Array.iter
        (fun (name, ty, slot) ->
          Format.fprintf ppf "    var %s : %a -> slot %d@." name Ast.pp_typ ty slot)
        op.ot_vars;
      Array.iter
        (fun s ->
          Format.fprintf ppf "    stop %d: live {%a}@." s.st_id
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
               (fun ppf e ->
                 Format.fprintf ppf "%a@@%d:%a" pp_entity e.es_entity e.es_slot Ast.pp_typ
                   e.es_type))
            s.st_live)
        op.ot_stops)
    ct.ct_ops
