lib/core/cluster.ml: Array Emc Enet Ert Float Format Hashtbl Isa List Mobility Option Printf String
