lib/core/workloads.mli: Cluster Enet Isa
