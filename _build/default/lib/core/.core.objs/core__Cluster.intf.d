lib/core/cluster.mli: Emc Enet Ert Isa Mobility
