lib/core/workloads.ml: Buffer Cluster Enet Ert Int32 Isa Printf Unix
