(** Intermediate-code interpretation: the middle of the Figure 2
    hierarchy.

    Executes the compiler's machine-independent IR (three-address code
    over basic blocks) directly — the "byte code" execution level: faster
    than walking the source tree, slower than native code, and with
    thread state that is already machine-independent, so mobility at this
    level needs no translation at all. *)

type result = {
  value : Mvalue.t option;
  output : string;
  steps : int;  (** IR instructions executed *)
}

val run :
  Emc.Ir.program_ir -> class_name:string -> op:string -> args:Mvalue.t list -> result
