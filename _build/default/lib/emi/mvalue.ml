type t =
  | Int of int32
  | Real of float
  | Bool of bool
  | Str of string
  | Obj of obj
  | Vec of t array
  | Nil

and obj = {
  o_class : int;
  o_fields : t array;
}

let default_of = function
  | Emc.Ast.Tint -> Int 0l
  | Emc.Ast.Treal -> Real 0.0
  | Emc.Ast.Tbool -> Bool false
  | Emc.Ast.Tstring -> Str ""
  | Emc.Ast.Tobj _ | Emc.Ast.Tvec _ | Emc.Ast.Tnil -> Nil

let equal a b =
  match a, b with
  | Int x, Int y -> Int32.equal x y
  | Real x, Real y -> Float.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Str x, Str y -> String.equal x y
  | Obj x, Obj y -> x == y
  | Vec x, Vec y -> x == y
  | Nil, Nil -> true
  | (Int _ | Real _ | Bool _ | Str _ | Obj _ | Vec _ | Nil), _ -> false

let to_print_string = function
  | Int v -> Int32.to_string v
  | Real v -> Printf.sprintf "%g" v
  | Bool v -> if v then "true" else "false"
  | Str s -> s
  | Obj _ -> "obj"
  | Vec xs -> Printf.sprintf "vector[%d]" (Array.length xs)
  | Nil -> "nil"

exception Type_error of string

let type_error m = raise (Type_error m)

let as_int = function
  | Int v -> v
  | _ -> type_error "int expected"

let as_real = function
  | Real v -> v
  | Int v -> Int32.to_float v
  | _ -> type_error "real expected"

let as_bool = function
  | Bool v -> v
  | _ -> type_error "bool expected"

let as_str = function
  | Str v -> v
  | _ -> type_error "string expected"

let as_obj = function
  | Obj o -> o
  | _ -> type_error "object expected"

let as_vec = function
  | Vec v -> v
  | _ -> type_error "vector expected"
