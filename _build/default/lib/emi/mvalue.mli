(** Values for the machine-independent execution levels (Figure 2).

    Unlike the native levels, objects here are plain OCaml structures —
    there is no memory image, byte order, or float format: this is the
    top of the thread-state specialization hierarchy, where mobility would
    be trivial and execution is slow. *)

type t =
  | Int of int32
  | Real of float
  | Bool of bool
  | Str of string
  | Obj of obj
  | Vec of t array
  | Nil

and obj = {
  o_class : int;
  o_fields : t array;
}

val default_of : Emc.Ast.typ -> t
val equal : t -> t -> bool
val to_print_string : t -> string
val type_error : string -> 'a
val as_int : t -> int32
val as_real : t -> float
val as_bool : t -> bool
val as_str : t -> string
val as_obj : t -> obj
val as_vec : t -> t array
