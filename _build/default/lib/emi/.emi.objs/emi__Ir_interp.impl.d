lib/emi/ir_interp.ml: Array Buffer Emc Float Int32 Isa List Mvalue Option String
