lib/emi/ir_interp.mli: Emc Mvalue
