lib/emi/ast_interp.mli: Emc Mvalue
