lib/emi/ast_interp.ml: Array Bool Buffer Emc Float Int32 List Mvalue Option String
