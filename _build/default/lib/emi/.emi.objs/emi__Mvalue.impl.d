lib/emi/mvalue.ml: Array Bool Emc Float Int32 Printf String
