lib/emi/mvalue.mli: Emc
