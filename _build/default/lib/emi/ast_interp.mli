(** Source-level interpretation: the top of the Figure 2 hierarchy.

    Executes the typed AST directly.  Thread state is OCaml data (an
    environment tree), so mobility at this level would be trivial — and
    execution is correspondingly slow, which is what the hierarchy
    predicts and the [fig2] benchmark measures. *)

type result = {
  value : Mvalue.t option;
  output : string;
  steps : int;  (** AST nodes evaluated *)
}

val run :
  Emc.Typecheck.tprog ->
  class_name:string ->
  op:string ->
  args:Mvalue.t list ->
  result
(** @raise Failure on runtime errors (nil invocation, division by zero). *)
