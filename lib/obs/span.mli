(** Virtual-time spans over the migration pipeline.

    A span brackets one phase of work — a migration, a translation pass,
    an encode, a wire transfer — between two readings of a node's
    virtual clock.  Phase spans point at their enclosing move span
    through [parent], giving each completed migration a two-level tree:
    one root ["move"] span and one child per pipeline phase. *)

type id = {
  id_node : int;  (** the node that allocated the id *)
  id_seq : int;  (** that node's span counter (1-based) *)
}
(** Span identity.  Per-node sequence numbers make allocation
    deterministic under sharded execution: a node belongs to exactly one
    shard, so its counter never races and never depends on placement. *)

type t = {
  name : string;
  node : int;
  arch_pair : string;  (** ["src->dst"] architecture ids *)
  t_start_us : float;
  t_end_us : float;
  id : id;
  parent : id option;
  bytes : int;  (** payload bytes, when the phase moved any; else 0 *)
}

val duration_us : t -> float
val id_to_string : id -> string
val compare_id : id -> id -> int
val to_string : t -> string
