(** Chrome [chrome://tracing] (Trace Event Format) export of span
    streams, plus the tiny validator behind the [tracecheck] tool. *)

val to_json : Span.t list -> string
(** Render spans as complete ("ph":"X") trace events, sorted by
    (start time, node, id).  ["ts"]/["dur"] are virtual microseconds —
    the format's native unit — and pid/tid carry the node, so
    about:tracing or Perfetto lay the migration pipeline out per node
    on the simulation clock.  Identical span streams produce
    byte-identical files. *)

val validate : string -> (int, string) result
(** Check a trace document: well-formed JSON, a [traceEvents] array of
    objects each carrying a string [name]/[ph] and a numeric [ts], with
    [ts] non-decreasing.  Returns the event count. *)

val validate_file : string -> (int, string) result
