(* Log-bucketed (HDR-style) latency histogram over virtual microseconds.

   Samples are truncated to integer nanoseconds and bucketed with 16
   sub-buckets per power of two, bounding the relative quantization
   error of any reported quantile at 1/16 (~6%).  Everything is integer
   arithmetic on the sample's bit pattern, so identical sample streams
   produce identical histograms — the determinism the sharded span
   tests rely on. *)

let sub_bits = 4
let sub = 1 lsl sub_bits (* 16 sub-buckets per octave *)
let n_buckets = sub + ((62 - sub_bits + 1) * sub)

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum_ns : int;
  mutable max_ns : int;
}

let create () = { buckets = Array.make n_buckets 0; count = 0; sum_ns = 0; max_ns = 0 }

let msb_position v =
  (* v > 0; position of the highest set bit *)
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bucket_of_ns v =
  if v < sub then v
  else begin
    let m = msb_position v in
    ((m - sub_bits) * sub) + (v lsr (m - sub_bits))
  end

(* the lower bound (in ns) of the values mapping to bucket [b]:
   bucket_of_ns is monotone and lower_bound_ns inverts it to the
   smallest member *)
let lower_bound_ns b =
  if b < 2 * sub then b
  else begin
    let oct = (b / sub) - 1 in
    let si = b mod sub in
    (sub + si) lsl oct
  end

let add t us =
  let ns = if us <= 0.0 then 0 else int_of_float (us *. 1000.0) in
  let b = bucket_of_ns ns in
  let b = if b >= n_buckets then n_buckets - 1 else b in
  t.buckets.(b) <- t.buckets.(b) + 1;
  t.count <- t.count + 1;
  t.sum_ns <- t.sum_ns + ns;
  if ns > t.max_ns then t.max_ns <- ns

let count t = t.count
let max_us t = float_of_int t.max_ns /. 1000.0
let mean_us t = if t.count = 0 then 0.0 else float_of_int t.sum_ns /. 1000.0 /. float_of_int t.count

(* the value at quantile [p] (0 < p <= 100): the lower bound of the
   bucket holding the ceil(p/100 * count)-th smallest sample *)
let percentile t p =
  if t.count = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let rec go b seen =
      let seen = seen + t.buckets.(b) in
      if seen >= rank then float_of_int (lower_bound_ns b) /. 1000.0
      else go (b + 1) seen
    in
    go 0 0
  end

let merge ~into src =
  Array.iteri (fun i v -> into.buckets.(i) <- into.buckets.(i) + v) src.buckets;
  into.count <- into.count + src.count;
  into.sum_ns <- into.sum_ns + src.sum_ns;
  if src.max_ns > into.max_ns then into.max_ns <- src.max_ns
