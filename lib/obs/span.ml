(* Virtual-time spans over the migration pipeline (DESIGN.md §12).

   A span id is a (node, seq) pair: every node numbers the spans it
   opens from its own counter.  A node is owned by exactly one engine
   shard, so id allocation is deterministic at any shard count — ids
   never depend on cross-shard interleaving, which is what makes span
   streams byte-identical at --shards 1/2/4. *)

type id = {
  id_node : int;
  id_seq : int;
}

type t = {
  name : string;  (* phase: "move", "capture", "translate", ... *)
  node : int;  (* the node whose clock bracketed the work *)
  arch_pair : string;  (* "src_arch->dst_arch" *)
  t_start_us : float;
  t_end_us : float;
  id : id;
  parent : id option;  (* the enclosing move span, if any *)
  bytes : int;  (* payload bytes for encode/decode/transfer phases *)
}

let duration_us s = s.t_end_us -. s.t_start_us

let id_to_string i = Printf.sprintf "%d:%d" i.id_node i.id_seq

let compare_id a b =
  match compare a.id_node b.id_node with
  | 0 -> compare a.id_seq b.id_seq
  | c -> c

let to_string s =
  Printf.sprintf "span %s node=%d pair=%s t0=%.3fus t1=%.3fus id=%s%s%s" s.name
    s.node s.arch_pair s.t_start_us s.t_end_us (id_to_string s.id)
    (match s.parent with
    | None -> ""
    | Some p -> " parent=" ^ id_to_string p)
    (if s.bytes > 0 then Printf.sprintf " bytes=%d" s.bytes else "")
