(** Log-bucketed (HDR-style) latency histograms over virtual
    microseconds.

    Samples are truncated to integer nanoseconds and bucketed with 16
    sub-buckets per power of two, so any reported quantile is the lower
    bound of a bucket at most ~6% below the true sample.  All state is
    integer, making histograms of identical sample streams identical —
    the determinism contract the sharded span tests check. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one sample, in virtual microseconds (negative clamps to 0). *)

val count : t -> int
val max_us : t -> float
(** The exact (un-bucketed) maximum sample. *)

val mean_us : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in (0, 100]: the bucket lower bound of the
    ceil(p% · count)-th smallest sample, in microseconds; 0 when empty. *)

val merge : into:t -> t -> unit
