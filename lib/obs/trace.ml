(* Chrome chrome://tracing (Trace Event Format) export.

   Spans become complete ("ph":"X") events: "ts" is the span's virtual
   start in microseconds — the unit the format specifies — and "dur" its
   virtual width, so about:tracing and Perfetto render the migration
   pipeline on the simulation's own clock.  pid/tid carry the node.
   Events are sorted by (ts, node, id) before writing, giving trace
   files that are byte-identical whenever the span streams are. *)

let esc b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let compare_span (a : Span.t) (b : Span.t) =
  match Float.compare a.Span.t_start_us b.Span.t_start_us with
  | 0 -> (
    match compare a.Span.node b.Span.node with
    | 0 -> Span.compare_id a.Span.id b.Span.id
    | c -> c)
  | c -> c

let to_json spans =
  let spans = List.stable_sort compare_span spans in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun (s : Span.t) ->
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b "\n{\"name\":\"";
      esc b s.Span.name;
      Buffer.add_string b "\",\"cat\":\"mobility\",\"ph\":\"X\",\"ts\":";
      Buffer.add_string b (Printf.sprintf "%.3f" s.Span.t_start_us);
      Buffer.add_string b ",\"dur\":";
      Buffer.add_string b (Printf.sprintf "%.3f" (Span.duration_us s));
      Buffer.add_string b (Printf.sprintf ",\"pid\":%d,\"tid\":%d" s.Span.node s.Span.node);
      Buffer.add_string b ",\"args\":{\"pair\":\"";
      esc b s.Span.arch_pair;
      Buffer.add_string b "\",\"id\":\"";
      esc b (Span.id_to_string s.Span.id);
      Buffer.add_char b '"';
      (match s.Span.parent with
      | None -> ()
      | Some p ->
        Buffer.add_string b ",\"parent\":\"";
        esc b (Span.id_to_string p);
        Buffer.add_char b '"');
      if s.Span.bytes > 0 then
        Buffer.add_string b (Printf.sprintf ",\"bytes\":%d" s.Span.bytes);
      Buffer.add_string b "}}")
    spans;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

(* ----------------------------------------------------------------------- *)
(* the tiny validator behind `tracecheck`: a minimal JSON reader plus
   the structural checks CI runs on emitted traces — a traceEvents
   array of objects whose "ts" is a number and non-decreasing *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char b '"'; advance ()
         | '\\' -> Buffer.add_char b '\\'; advance ()
         | '/' -> Buffer.add_char b '/'; advance ()
         | 'n' -> Buffer.add_char b '\n'; advance ()
         | 't' -> Buffer.add_char b '\t'; advance ()
         | 'r' -> Buffer.add_char b '\r'; advance ()
         | 'b' -> Buffer.add_char b '\b'; advance ()
         | 'f' -> Buffer.add_char b '\012'; advance ()
         | 'u' ->
           if !pos + 4 >= n then fail "bad \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           let code = try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape" in
           (* BMP only; enough for trace output, which never emits others *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else Buffer.add_string b (Printf.sprintf "\\u%s" hex);
           pos := !pos + 5
         | _ -> fail "bad escape");
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Jobj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Jobj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Jarr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Jarr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let validate (data : string) : (int, string) result =
  match parse_json data with
  | exception Bad msg -> Error ("malformed JSON: " ^ msg)
  | Jobj fields -> (
    match List.assoc_opt "traceEvents" fields with
    | None -> Error "no traceEvents array"
    | Some (Jarr events) -> (
      let check (last_ts, i) ev =
        match ev with
        | Jobj f -> (
          (match List.assoc_opt "name" f with
          | Some (Jstr _) -> ()
          | _ -> raise (Bad (Printf.sprintf "event %d: missing name" i)));
          (match List.assoc_opt "ph" f with
          | Some (Jstr _) -> ()
          | _ -> raise (Bad (Printf.sprintf "event %d: missing ph" i)));
          match List.assoc_opt "ts" f with
          | Some (Jnum ts) ->
            if ts < last_ts then
              raise
                (Bad
                   (Printf.sprintf "event %d: ts %.3f < previous %.3f (not monotone)"
                      i ts last_ts));
            (ts, i + 1)
          | _ -> raise (Bad (Printf.sprintf "event %d: missing numeric ts" i)))
        | _ -> raise (Bad (Printf.sprintf "event %d: not an object" i))
      in
      match List.fold_left check (neg_infinity, 0) events with
      | _, count -> Ok count
      | exception Bad msg -> Error msg)
    | Some _ -> Error "traceEvents is not an array")
  | _ -> Error "top level is not an object"

let validate_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | data -> validate data
  | exception Sys_error msg -> Error msg
