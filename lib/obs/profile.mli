(** Span-stream aggregation: per-(arch pair, phase) latency histograms
    and the paper-style per-pair phase-cost table (Section 4's migration
    breakdown, with p50/p90/p99/max instead of a single mean). *)

type t

val create : ?keep_spans:bool -> unit -> t
(** A fresh profile.  [keep_spans] (default true) retains the raw spans
    for trace export; pass [false] to keep only the histograms. *)

val add : t -> Span.t -> unit
val count : t -> int
(** Spans absorbed so far. *)

val spans : t -> Span.t list
(** Spans in the order added (empty when [keep_spans] is false). *)

val hist : t -> pair:string -> phase:string -> Hist.t option

type row = {
  r_pair : string;
  r_phase : string;
  r_count : int;
  r_p50_us : float;
  r_p90_us : float;
  r_p99_us : float;
  r_max_us : float;
  r_mean_us : float;
}

val rows : t -> row list
(** One row per (pair, phase), sorted by pair then canonical phase
    order (move, capture, group_pack, translate, marshal, transfer,
    unmarshal, rebuild, relocate, group_unpack, rpc). *)

val table : t -> string
(** The rendered per-arch-pair phase table.  Deterministic: identical
    span streams render identical tables. *)
