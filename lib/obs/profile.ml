(* Aggregation of span streams into per-(arch pair, phase) histograms
   and the paper-style phase-cost table (Section 4 reports migration
   cost per phase per architecture pair; this reproduces that breakdown
   from live spans, with percentiles instead of single means). *)

(* canonical phase order for tables and JSON rows; unknown names sort
   after these, alphabetically *)
let phase_order =
  [ "move"; "evict"; "overlap"; "capture"; "group_pack"; "translate"; "marshal";
    "transfer"; "unmarshal"; "rebuild"; "relocate"; "group_unpack"; "rpc";
    "gc_roots"; "gc_mark"; "gc_sweep" ]

let phase_rank name =
  let rec go i = function
    | [] -> List.length phase_order
    | p :: rest -> if p = name then i else go (i + 1) rest
  in
  go 0 phase_order

type t = {
  tbl : (string * string, Hist.t) Hashtbl.t;  (* (pair, phase) -> hist *)
  mutable spans_rev : Span.t list;
  keep_spans : bool;
  mutable n : int;
}

let create ?(keep_spans = true) () =
  { tbl = Hashtbl.create 16; spans_rev = []; keep_spans; n = 0 }

let add t (s : Span.t) =
  let key = (s.Span.arch_pair, s.Span.name) in
  let h =
    match Hashtbl.find_opt t.tbl key with
    | Some h -> h
    | None ->
      let h = Hist.create () in
      Hashtbl.add t.tbl key h;
      h
  in
  Hist.add h (Span.duration_us s);
  if t.keep_spans then t.spans_rev <- s :: t.spans_rev;
  t.n <- t.n + 1

let count t = t.n
let spans t = List.rev t.spans_rev

let hist t ~pair ~phase = Hashtbl.find_opt t.tbl (pair, phase)

type row = {
  r_pair : string;
  r_phase : string;
  r_count : int;
  r_p50_us : float;
  r_p90_us : float;
  r_p99_us : float;
  r_max_us : float;
  r_mean_us : float;
}

let rows t =
  Hashtbl.fold
    (fun (pair, phase) h acc ->
      {
        r_pair = pair;
        r_phase = phase;
        r_count = Hist.count h;
        r_p50_us = Hist.percentile h 50.0;
        r_p90_us = Hist.percentile h 90.0;
        r_p99_us = Hist.percentile h 99.0;
        r_max_us = Hist.max_us h;
        r_mean_us = Hist.mean_us h;
      }
      :: acc)
    t.tbl []
  |> List.sort (fun a b ->
         match String.compare a.r_pair b.r_pair with
         | 0 -> (
           match compare (phase_rank a.r_phase) (phase_rank b.r_phase) with
           | 0 -> String.compare a.r_phase b.r_phase
           | c -> c)
         | c -> c)

let table t =
  let b = Buffer.create 1024 in
  let rs = rows t in
  let pairs =
    List.sort_uniq String.compare (List.map (fun r -> r.r_pair) rs)
  in
  List.iter
    (fun pair ->
      let prs = List.filter (fun r -> r.r_pair = pair) rs in
      Buffer.add_string b (Printf.sprintf "arch pair %s\n" pair);
      Buffer.add_string b
        (Printf.sprintf "  %-10s %7s %10s %10s %10s %10s\n" "phase" "count"
           "p50(us)" "p90(us)" "p99(us)" "max(us)");
      List.iter
        (fun r ->
          Buffer.add_string b
            (Printf.sprintf "  %-10s %7d %10.1f %10.1f %10.1f %10.1f\n" r.r_phase
               r.r_count r.r_p50_us r.r_p90_us r.r_p99_us r.r_max_us))
        prs)
    pairs;
  Buffer.contents b
