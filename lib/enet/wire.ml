type impl = Naive | Bulk | Plan | Blit

let impl_name = function
  | Naive -> "naive"
  | Bulk -> "bulk"
  | Plan -> "plan"
  | Blit -> "blit"

let impl_of_string = function
  | "naive" -> Some Naive
  | "bulk" | "optimized" -> Some Bulk
  | "plan" -> Some Plan
  | "blit" -> Some Blit
  | _ -> None

(* Conversion-call accounting.  The naive implementation charges one
   procedure call per byte moved plus one for the datum itself (the
   recursive-descent entry), giving the paper's 1-2 calls per byte; the
   bulk implementation charges a single call per datum.  Plans charge
   exactly what the bulk tier would for the same datums (precomputed),
   so the Plan tier's virtual numbers equal Bulk's by construction. *)
let charge impl stats ~bytes =
  Conversion_stats.add_bytes stats bytes;
  match impl with
  | Naive -> Conversion_stats.add_calls stats (bytes + 1)
  | Bulk | Plan | Blit -> Conversion_stats.add_calls stats 1

type view = {
  vw_bytes : Bytes.t;
  vw_off : int;
  vw_len : int;
  vw_pooled : bool;
}

let view_of_string s =
  (* read-only aliasing of the string's storage: no copy on send *)
  { vw_bytes = Bytes.unsafe_of_string s; vw_off = 0; vw_len = String.length s; vw_pooled = false }

let view_to_string v = Bytes.sub_string v.vw_bytes v.vw_off v.vw_len
let view_length v = v.vw_len

let view_get v i =
  if i < 0 || i >= v.vw_len then invalid_arg "Wire.view_get";
  Bytes.get v.vw_bytes (v.vw_off + i)

let sub_view v ~pos ~len =
  if pos < 0 || len < 0 || pos + len > v.vw_len then invalid_arg "Wire.sub_view";
  { vw_bytes = v.vw_bytes; vw_off = v.vw_off + pos; vw_len = len; vw_pooled = false }

module Pool = struct
  let free_list : Bytes.t list ref = ref []
  let max_kept = 64
  let n_kept = ref 0
  let hits_c = ref 0
  let misses_c = ref 0
  let handoffs_c = ref 0
  let returned_c = ref 0

  let take () =
    match !free_list with
    | b :: rest ->
      free_list := rest;
      decr n_kept;
      incr hits_c;
      b
    | [] ->
      incr misses_c;
      Bytes.create 256

  let recycle b =
    (* counted even when the free list is full and the buffer is dropped:
       [returned] tracks ownership given back, not buffers kept *)
    incr returned_c;
    if !n_kept < max_kept then begin
      free_list := b :: !free_list;
      incr n_kept
    end

  let hits () = !hits_c
  let misses () = !misses_c
  let handoffs () = !handoffs_c
  let returned () = !returned_c
  let in_flight () = !hits_c + !misses_c - !returned_c

  let reset () =
    free_list := [];
    n_kept := 0;
    hits_c := 0;
    misses_c := 0;
    handoffs_c := 0;
    returned_c := 0
end

let release_view v = if v.vw_pooled then Pool.recycle v.vw_bytes

module Writer = struct
  type t = {
    mutable buf : Bytes.t;
    mutable pos : int;
    mutable live : bool;
    impl : impl;
    stats : Conversion_stats.t;
  }

  (* The naive tier mirrors the seed's host path: a fresh, small buffer
     per message, grown by doubling — the pool belongs to the optimized
     tiers.  The virtual accounting is unaffected either way. *)
  let create ~impl ~stats =
    let buf = match impl with Naive -> Bytes.create 16 | Bulk | Plan | Blit -> Pool.take () in
    { buf; pos = 0; live = true; impl; stats }

  let ensure t n =
    if not t.live then invalid_arg "Wire.Writer: use after free/handoff";
    let need = t.pos + n in
    let cap = Bytes.length t.buf in
    if need > cap then begin
      let cap' = max (cap * 2) need in
      let buf' = Bytes.create cap' in
      Bytes.blit t.buf 0 buf' 0 t.pos;
      t.buf <- buf'
    end

  (* The naive tier's host path is deliberately a non-inlined call per
     byte, mirroring the prototype's per-byte conversion procedures, so
     the host-time ablation measures what the cost model charges for. *)
  let[@inline never] naive_put t b =
    ensure t 1;
    Bytes.unsafe_set t.buf t.pos (Char.unsafe_chr (b land 0xFF));
    t.pos <- t.pos + 1

  let raw_put t b =
    ensure t 1;
    Bytes.unsafe_set t.buf t.pos (Char.unsafe_chr (b land 0xFF));
    t.pos <- t.pos + 1

  let u8 t v =
    charge t.impl t.stats ~bytes:1;
    match t.impl with
    | Naive -> naive_put t v
    | Bulk | Plan | Blit -> raw_put t v

  let raw_u16 t v =
    ensure t 2;
    let p = t.pos in
    Bytes.unsafe_set t.buf p (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set t.buf (p + 1) (Char.unsafe_chr (v land 0xFF));
    t.pos <- p + 2

  let u16 t v =
    charge t.impl t.stats ~bytes:2;
    match t.impl with
    | Naive ->
      naive_put t (v lsr 8);
      naive_put t v
    | Bulk | Plan | Blit -> raw_u16 t v

  let u32 t v =
    charge t.impl t.stats ~bytes:4;
    let b n = Int32.to_int (Int32.shift_right_logical v n) land 0xFF in
    match t.impl with
    | Naive ->
      naive_put t (b 24);
      naive_put t (b 16);
      naive_put t (b 8);
      naive_put t (b 0)
    | Bulk | Plan | Blit ->
      ensure t 4;
      let p = t.pos in
      Bytes.unsafe_set t.buf p (Char.unsafe_chr (b 24));
      Bytes.unsafe_set t.buf (p + 1) (Char.unsafe_chr (b 16));
      Bytes.unsafe_set t.buf (p + 2) (Char.unsafe_chr (b 8));
      Bytes.unsafe_set t.buf (p + 3) (Char.unsafe_chr (b 0));
      t.pos <- p + 4

  let i32 = u32

  let f64 t v =
    charge t.impl t.stats ~bytes:8;
    let bits = Int64.bits_of_float v in
    let b n = Int64.to_int (Int64.shift_right_logical bits (8 * n)) land 0xFF in
    match t.impl with
    | Naive ->
      for n = 7 downto 0 do
        naive_put t (b n)
      done
    | Bulk | Plan | Blit ->
      ensure t 8;
      let p = t.pos in
      for n = 7 downto 0 do
        Bytes.unsafe_set t.buf (p + 7 - n) (Char.unsafe_chr (b n))
      done;
      t.pos <- p + 8

  let bool t v = u8 t (if v then 1 else 0)

  let str t s =
    let len = String.length s in
    if len > 0xFFFF then invalid_arg "Wire.Writer.str: string too long";
    charge t.impl t.stats ~bytes:(2 + len);
    (match t.impl with
    | Naive ->
      naive_put t (len lsr 8);
      naive_put t len;
      for i = 0 to len - 1 do
        naive_put t (Char.code (String.unsafe_get s i))
      done
    | Bulk | Plan | Blit ->
      raw_u16 t len;
      ensure t len;
      Bytes.blit_string s 0 t.buf t.pos len;
      t.pos <- t.pos + len)

  let length t = t.pos
  let contents t = Bytes.sub_string t.buf 0 t.pos

  let free t =
    if t.live then begin
      t.live <- false;
      match t.impl with Naive -> () | Bulk | Plan | Blit -> Pool.recycle t.buf
    end

  let handoff t =
    if not t.live then invalid_arg "Wire.Writer.handoff: writer already dead";
    t.live <- false;
    let pooled = match t.impl with Naive -> false | Bulk | Plan | Blit -> true in
    if pooled then incr Pool.handoffs_c;
    { vw_bytes = t.buf; vw_off = 0; vw_len = t.pos; vw_pooled = pooled }

  let add_charge t ~calls ~bytes =
    Conversion_stats.add_calls t.stats calls;
    Conversion_stats.add_bytes t.stats bytes

  let raw_u8 t v = raw_put t v

  let raw_u32 t v =
    ensure t 4;
    let p = t.pos in
    let b n = Int32.to_int (Int32.shift_right_logical v n) land 0xFF in
    Bytes.unsafe_set t.buf p (Char.unsafe_chr (b 24));
    Bytes.unsafe_set t.buf (p + 1) (Char.unsafe_chr (b 16));
    Bytes.unsafe_set t.buf (p + 2) (Char.unsafe_chr (b 8));
    Bytes.unsafe_set t.buf (p + 3) (Char.unsafe_chr (b 0));
    t.pos <- p + 4

  let blit t s =
    let len = String.length s in
    ensure t len;
    let p = t.pos in
    Bytes.blit_string s 0 t.buf p len;
    t.pos <- p + len;
    p

  let poke8 t ~at v = Bytes.unsafe_set t.buf at (Char.unsafe_chr (v land 0xFF))

  let poke32 t ~at v =
    let b n = Char.unsafe_chr (Int32.to_int (Int32.shift_right_logical v n) land 0xFF) in
    Bytes.unsafe_set t.buf at (b 24);
    Bytes.unsafe_set t.buf (at + 1) (b 16);
    Bytes.unsafe_set t.buf (at + 2) (b 8);
    Bytes.unsafe_set t.buf (at + 3) (b 0)

  let poke64 t ~at v =
    for n = 7 downto 0 do
      Bytes.unsafe_set t.buf (at + 7 - n)
        (Char.unsafe_chr (Int64.to_int (Int64.shift_right_logical v (8 * n)) land 0xFF))
    done

  let raw_f64 t v =
    let bits = Int64.bits_of_float v in
    ensure t 8;
    let p = t.pos in
    for n = 7 downto 0 do
      Bytes.unsafe_set t.buf (p + 7 - n)
        (Char.unsafe_chr (Int64.to_int (Int64.shift_right_logical bits (8 * n)) land 0xFF))
    done;
    t.pos <- p + 8

  let raw_str t s =
    let len = String.length s in
    if len > 0xFFFF then invalid_arg "Wire.Writer.raw_str: string too long";
    raw_u16 t len;
    ensure t len;
    Bytes.blit_string s 0 t.buf t.pos len;
    t.pos <- t.pos + len
end

module Reader = struct
  type t = {
    data : Bytes.t;
    base : int;
    limit : int;  (* absolute *)
    mutable pos : int;  (* absolute *)
    impl : impl;
    stats : Conversion_stats.t;
  }

  exception Underflow

  let create ~impl ~stats data =
    let b = Bytes.unsafe_of_string data in
    { data = b; base = 0; limit = Bytes.length b; pos = 0; impl; stats }

  let of_view ~impl ~stats v =
    { data = v.vw_bytes; base = v.vw_off; limit = v.vw_off + v.vw_len; pos = v.vw_off; impl; stats }

  let take t n =
    if t.pos + n > t.limit then raise Underflow;
    let p = t.pos in
    t.pos <- p + n;
    p

  (* naive-tier host path: one non-inlined call per byte (see Writer) *)
  let[@inline never] naive_get t =
    let p = take t 1 in
    Char.code (Bytes.unsafe_get t.data p)

  let u8 t =
    charge t.impl t.stats ~bytes:1;
    match t.impl with
    | Naive -> naive_get t
    | Bulk | Plan | Blit ->
      let p = take t 1 in
      Char.code (Bytes.unsafe_get t.data p)

  let raw_u16 t =
    let p = take t 2 in
    (Char.code (Bytes.unsafe_get t.data p) lsl 8) lor Char.code (Bytes.unsafe_get t.data (p + 1))

  let u16 t =
    charge t.impl t.stats ~bytes:2;
    match t.impl with
    | Naive ->
      let hi = naive_get t in
      let lo = naive_get t in
      (hi lsl 8) lor lo
    | Bulk | Plan | Blit -> raw_u16 t

  let read32_at data p =
    let b i = Int32.of_int (Char.code (Bytes.unsafe_get data (p + i))) in
    let ( ||| ) = Int32.logor in
    Int32.shift_left (b 0) 24 ||| Int32.shift_left (b 1) 16 ||| Int32.shift_left (b 2) 8
    ||| b 3

  let u32 t =
    charge t.impl t.stats ~bytes:4;
    match t.impl with
    | Naive ->
      let acc = ref 0l in
      for _ = 0 to 3 do
        acc := Int32.logor (Int32.shift_left !acc 8) (Int32.of_int (naive_get t))
      done;
      !acc
    | Bulk | Plan | Blit ->
      let p = take t 4 in
      read32_at t.data p

  let i32 = u32

  let read64_at data p =
    let bits = ref 0L in
    for i = 0 to 7 do
      bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (Char.code (Bytes.unsafe_get data (p + i))))
    done;
    !bits

  let f64 t =
    charge t.impl t.stats ~bytes:8;
    match t.impl with
    | Naive ->
      let bits = ref 0L in
      for _ = 0 to 7 do
        bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (naive_get t))
      done;
      Int64.float_of_bits !bits
    | Bulk | Plan | Blit ->
      let p = take t 8 in
      Int64.float_of_bits (read64_at t.data p)

  let bool t = u8 t <> 0

  let str t =
    match t.impl with
    | Naive ->
      (* length bytes come through the per-byte path too *)
      let hi = naive_get t in
      let lo = naive_get t in
      let len = (hi lsl 8) lor lo in
      charge t.impl t.stats ~bytes:(2 + len);
      let b = Bytes.create len in
      for i = 0 to len - 1 do
        Bytes.unsafe_set b i (Char.unsafe_chr (naive_get t))
      done;
      Bytes.unsafe_to_string b
    | Bulk | Plan | Blit ->
      let len = raw_u16 t in
      charge t.impl t.stats ~bytes:(2 + len);
      let p = take t len in
      Bytes.sub_string t.data p len

  let pos t = t.pos - t.base
  let at_end t = t.pos >= t.limit

  let add_charge t ~calls ~bytes =
    Conversion_stats.add_calls t.stats calls;
    Conversion_stats.add_bytes t.stats bytes

  let block t n = take t n
  let get8_at t at = Char.code (Bytes.unsafe_get t.data at)

  let get16_at t at =
    (Char.code (Bytes.unsafe_get t.data at) lsl 8)
    lor Char.code (Bytes.unsafe_get t.data (at + 1))

  let get32_at t at = read32_at t.data at
  let get64_at t at = read64_at t.data at

  let peek_u16 t =
    if t.pos + 2 > t.limit then None
    else
      Some
        ((Char.code (Bytes.unsafe_get t.data t.pos) lsl 8)
        lor Char.code (Bytes.unsafe_get t.data (t.pos + 1)))

  (* uncharged reads for the blit tier: the caller accounts a whole
     blitted frame/object with one [add_charge] *)
  let raw_u8 t =
    let p = take t 1 in
    Char.code (Bytes.unsafe_get t.data p)

  let raw_u32 t =
    let p = take t 4 in
    read32_at t.data p

  let raw_f64 t =
    let p = take t 8 in
    Int64.float_of_bits (read64_at t.data p)

  let raw_str t =
    let len = raw_u16 t in
    let p = take t len in
    Bytes.sub_string t.data p len
end
