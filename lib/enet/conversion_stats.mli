(** Accounting for network-format conversion work.

    The paper attributes the greater part of the enhanced system's
    performance penalty to its naive conversion routines: "an average of
    1-2 calls of conversion procedures are performed for each byte being
    transferred over the network" (section 3.6).  Every conversion
    procedure call in {!Wire} is counted here so the virtual-time cost
    model can charge for it. *)

type t

val create : unit -> t
val reset : t -> unit
val add_calls : t -> int -> unit
val add_bytes : t -> int -> unit

val add_copies_saved : t -> int -> unit
(** Payload copies avoided by pooled buffer handoff ({!Wire.Writer.handoff})
    instead of a [Writer.contents] copy per send. *)

val calls : t -> int
val bytes : t -> int
val copies_saved : t -> int

val calls_per_byte : t -> float
(** [calls t / bytes t]; 0 when no bytes were converted. *)

val pp : Format.formatter -> t -> unit
