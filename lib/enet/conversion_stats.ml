type t = {
  mutable calls : int;
  mutable bytes : int;
  mutable copies_saved : int;
}

let create () = { calls = 0; bytes = 0; copies_saved = 0 }

let reset t =
  t.calls <- 0;
  t.bytes <- 0;
  t.copies_saved <- 0

let add_calls t n = t.calls <- t.calls + n
let add_bytes t n = t.bytes <- t.bytes + n
let add_copies_saved t n = t.copies_saved <- t.copies_saved + n
let calls t = t.calls
let bytes t = t.bytes
let copies_saved t = t.copies_saved

let calls_per_byte t =
  if t.bytes = 0 then 0.0 else float_of_int t.calls /. float_of_int t.bytes

let pp ppf t =
  Format.fprintf ppf "%d conversion calls over %d bytes (%.2f calls/byte)" t.calls t.bytes
    (calls_per_byte t)
