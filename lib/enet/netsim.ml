type config = {
  latency_us : float;
  bandwidth_mbit_s : float;
  frame_overhead_bytes : int;
}

let default_config =
  { latency_us = 300.0; bandwidth_mbit_s = 10.0; frame_overhead_bytes = 58 }

type message = {
  msg_src : int;
  msg_dst : int;
  msg_payload : string;
  msg_sent_at : float;
  msg_arrives_at : float;
  msg_seq : int;
}

type t = {
  cfg : config;
  n_nodes : int;
  queues : message Queue.t array;  (* per destination, FIFO *)
  mutable medium_free_at : float;
  mutable seq : int;
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable on_arrival : (dst:int -> at:float -> unit) option;
}

let create ?(config = default_config) ~n_nodes () =
  {
    cfg = config;
    n_nodes;
    queues = Array.init n_nodes (fun _ -> Queue.create ());
    medium_free_at = 0.0;
    seq = 0;
    messages_sent = 0;
    bytes_sent = 0;
    on_arrival = None;
  }

let config t = t.cfg
let set_on_arrival t f = t.on_arrival <- Some f

(* The shared medium serialises frames: each transmission starts no
   earlier than the previous one finished, and the fixed latency is
   common to all frames, so arrival times are non-decreasing in send
   order — a plain FIFO per destination is already sorted by
   (arrival, seq).  Appending is O(1), where the seed implementation
   walked a sorted list. *)
let send t ~now_us ~src ~dst ~payload =
  if dst < 0 || dst >= t.n_nodes then invalid_arg "Netsim.send: bad destination";
  let wire_bytes = String.length payload + t.cfg.frame_overhead_bytes in
  let transmit_us = float_of_int (wire_bytes * 8) /. t.cfg.bandwidth_mbit_s in
  let start = Float.max now_us t.medium_free_at in
  let arrives = start +. transmit_us +. t.cfg.latency_us in
  t.medium_free_at <- start +. transmit_us;
  t.seq <- t.seq + 1;
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + wire_bytes;
  let msg =
    {
      msg_src = src;
      msg_dst = dst;
      msg_payload = payload;
      msg_sent_at = now_us;
      msg_arrives_at = arrives;
      msg_seq = t.seq;
    }
  in
  Queue.add msg t.queues.(dst);
  (match t.on_arrival with
  | Some f -> f ~dst ~at:arrives
  | None -> ());
  arrives

let next_arrival_at t ~dst =
  match Queue.peek_opt t.queues.(dst) with
  | None -> None
  | Some m -> Some m.msg_arrives_at

let next_arrival_any t =
  Array.fold_left
    (fun acc q ->
      match Queue.peek_opt q, acc with
      | None, acc -> acc
      | Some m, None -> Some m.msg_arrives_at
      | Some m, Some a -> Some (Float.min a m.msg_arrives_at))
    None t.queues

let receive t ~dst ~now_us =
  match Queue.peek_opt t.queues.(dst) with
  | Some m when m.msg_arrives_at <= now_us ->
    ignore (Queue.pop t.queues.(dst));
    Some m
  | Some _ | None -> None

let pending t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues
let messages_sent t = t.messages_sent
let bytes_sent t = t.bytes_sent
