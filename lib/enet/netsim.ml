type config = {
  latency_us : float;
  bandwidth_mbit_s : float;
  frame_overhead_bytes : int;
}

let default_config =
  { latency_us = 300.0; bandwidth_mbit_s = 10.0; frame_overhead_bytes = 58 }

type message = {
  msg_src : int;
  msg_dst : int;
  msg_payload : Wire.view;
  msg_sent_at : float;
  msg_arrives_at : float;
  msg_seq : int;
  (* host-side observability tag: the sender's move-span identity
     (node, seq, start time) riding along so the receiver can close the
     span.  Never on the wire — no bytes, no virtual time, no effect on
     delivery — and None whenever span tracing is off. *)
  msg_span : (int * int * float) option;
}

type fault =
  | Fault_drop
  | Fault_dup of float
  | Fault_delay of float

type t = {
  cfg : config;
  n_nodes : int;
  queues : message Queue.t array;  (* per destination, FIFO (reliable wire) *)
  (* fault-delayed messages and duplicate copies break the queues' sorted-
     by-construction property, so they live in a side list kept sorted by
     (arrival, seq); always empty without an injector, so the fast path
     pays one [[]] comparison *)
  delayed : message list array;
  mutable medium_free_at : float;
  mutable seq : int;
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed_count : int;
  mutable on_arrival : (dst:int -> at:float -> unit) option;
  mutable injector : (src:int -> dst:int -> now_us:float -> fault option) option;
  mutable on_fault : (src:int -> dst:int -> fault -> unit) option;
}

let create ?(config = default_config) ~n_nodes () =
  {
    cfg = config;
    n_nodes;
    queues = Array.init n_nodes (fun _ -> Queue.create ());
    delayed = Array.make n_nodes [];
    medium_free_at = 0.0;
    seq = 0;
    messages_sent = 0;
    bytes_sent = 0;
    dropped = 0;
    duplicated = 0;
    delayed_count = 0;
    on_arrival = None;
    injector = None;
    on_fault = None;
  }

let config t = t.cfg
let set_on_arrival t f = t.on_arrival <- Some f
let set_injector t f = t.injector <- Some f
let set_on_fault t f = t.on_fault <- Some f

let notify_arrival t ~dst ~at =
  match t.on_arrival with
  | Some f -> f ~dst ~at
  | None -> ()

let notify_fault t ~src ~dst fault =
  match t.on_fault with
  | Some f -> f ~src ~dst fault
  | None -> ()

let insert_delayed t msg =
  let before a b =
    a.msg_arrives_at < b.msg_arrives_at
    || (a.msg_arrives_at = b.msg_arrives_at && a.msg_seq < b.msg_seq)
  in
  let rec ins = function
    | [] -> [ msg ]
    | m :: rest as l -> if before msg m then msg :: l else m :: ins rest
  in
  t.delayed.(msg.msg_dst) <- ins t.delayed.(msg.msg_dst)

(* The shared medium serialises frames: each transmission starts no
   earlier than the previous one finished, and the fixed latency is
   common to all frames, so on a reliable wire arrival times are
   non-decreasing in send order — a plain FIFO per destination is
   already sorted by (arrival, seq).  Appending is O(1), where the seed
   implementation walked a sorted list.  An injected delay or duplicate
   copy is the one thing that can arrive out of order; those are filed
   in the sorted [delayed] side list instead. *)
let send_view ?span t ~now_us ~src ~dst ~payload =
  if dst < 0 || dst >= t.n_nodes then invalid_arg "Netsim.send: bad destination";
  let wire_bytes = Wire.view_length payload + t.cfg.frame_overhead_bytes in
  let transmit_us = float_of_int (wire_bytes * 8) /. t.cfg.bandwidth_mbit_s in
  let start = Float.max now_us t.medium_free_at in
  let arrives = start +. transmit_us +. t.cfg.latency_us in
  t.medium_free_at <- start +. transmit_us;
  t.seq <- t.seq + 1;
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + wire_bytes;
  let mk ~arrives ~seq =
    {
      msg_src = src;
      msg_dst = dst;
      msg_payload = payload;
      msg_sent_at = now_us;
      msg_arrives_at = arrives;
      msg_seq = seq;
      msg_span = span;
    }
  in
  let verdict =
    match t.injector with
    | None -> None
    | Some f -> f ~src ~dst ~now_us
  in
  match verdict with
  | None ->
    Queue.add (mk ~arrives ~seq:t.seq) t.queues.(dst);
    notify_arrival t ~dst ~at:arrives;
    arrives
  | Some Fault_drop ->
    (* the frame was transmitted (medium time is spent) and then lost *)
    t.dropped <- t.dropped + 1;
    notify_fault t ~src ~dst Fault_drop;
    arrives
  | Some (Fault_delay extra) ->
    let late = arrives +. extra in
    t.delayed_count <- t.delayed_count + 1;
    insert_delayed t (mk ~arrives:late ~seq:t.seq);
    notify_fault t ~src ~dst (Fault_delay extra);
    notify_arrival t ~dst ~at:late;
    late
  | Some (Fault_dup extra) ->
    Queue.add (mk ~arrives ~seq:t.seq) t.queues.(dst);
    notify_arrival t ~dst ~at:arrives;
    (* the copy is an interface-level duplicate: same octets, delivered a
       little later, charged as a second frame of traffic *)
    t.seq <- t.seq + 1;
    t.duplicated <- t.duplicated + 1;
    t.messages_sent <- t.messages_sent + 1;
    t.bytes_sent <- t.bytes_sent + wire_bytes;
    let late = arrives +. extra in
    insert_delayed t (mk ~arrives:late ~seq:t.seq);
    notify_fault t ~src ~dst (Fault_dup extra);
    notify_arrival t ~dst ~at:late;
    arrives

let send ?span t ~now_us ~src ~dst ~payload =
  send_view ?span t ~now_us ~src ~dst ~payload:(Wire.view_of_string payload)

let earlier (a : message option) (b : message option) =
  match a, b with
  | None, x | x, None -> x
  | Some m, Some d ->
    if
      d.msg_arrives_at < m.msg_arrives_at
      || (d.msg_arrives_at = m.msg_arrives_at && d.msg_seq < m.msg_seq)
    then b
    else a

let head t ~dst =
  earlier
    (Queue.peek_opt t.queues.(dst))
    (match t.delayed.(dst) with [] -> None | m :: _ -> Some m)

let next_arrival_at t ~dst =
  match head t ~dst with
  | None -> None
  | Some m -> Some m.msg_arrives_at

let next_arrival_any t =
  let best = ref None in
  for dst = 0 to t.n_nodes - 1 do
    match next_arrival_at t ~dst, !best with
    | None, _ -> ()
    | Some a, None -> best := Some a
    | Some a, Some b -> if a < b then best := Some a
  done;
  !best

let receive t ~dst ~now_us =
  match head t ~dst with
  | Some m when m.msg_arrives_at <= now_us ->
    (match t.delayed.(dst) with
    | d :: rest when d.msg_seq = m.msg_seq && d.msg_arrives_at = m.msg_arrives_at ->
      t.delayed.(dst) <- rest
    | _ -> ignore (Queue.pop t.queues.(dst)));
    Some m
  | Some _ | None -> None

let pending t =
  Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues
  + Array.fold_left (fun acc l -> acc + List.length l) 0 t.delayed

let iter_pending t f =
  Array.iter (fun q -> Queue.iter f q) t.queues;
  Array.iter (fun l -> List.iter f l) t.delayed

(* Deferred sends for sharded execution.  During a conservative window a
   shard may not touch the shared medium ([medium_free_at], [seq], the
   destination queues are partially foreign) — so it posts sends into a
   private outbox instead.  At the window barrier the coordinator
   flushes all outboxes in one canonical order (the generating event's
   (time, rank) in the engine's global total order, then a per-shard
   posting counter), replaying exactly the medium reservation fold and
   injector consultation a single-heap run would have performed.  The
   arrival times, sequence numbers and fault verdicts are therefore
   bit-identical to inline sends, merely computed later — which is sound
   because the window horizon never exceeds the network latency, so no
   posted send can arrive inside the window that posted it. *)
module Outbox = struct
  type entry = {
    e_time : float;  (* generating event's virtual time *)
    e_rank : int;  (* generating event's engine rank (node-major) *)
    e_seq : int;  (* posting order within the shard *)
    e_now_us : float;
    e_src : int;
    e_dst : int;
    e_payload : Wire.view;
    e_span : (int * int * float) option;  (* observability tag, see [message] *)
    mutable e_arrives : float;  (* filled by flush *)
  }

  type t = { mutable entries : entry list; mutable count : int }

  let create () = { entries = []; count = 0 }
  let length b = b.count

  let post ?span b ~time ~rank ~seq ~now_us ~src ~dst ~payload =
    let e =
      {
        e_time = time;
        e_rank = rank;
        e_seq = seq;
        e_now_us = now_us;
        e_src = src;
        e_dst = dst;
        e_payload = payload;
        e_span = span;
        e_arrives = Float.nan;
      }
    in
    b.entries <- e :: b.entries;
    b.count <- b.count + 1;
    e

  let arrival e = e.e_arrives

  (* (time, rank) identifies the generating event globally — the rank is
     node-major, and a node lives in exactly one shard — so the per-shard
     posting counter only ever breaks ties between posts of one shard. *)
  let order a b =
    match Float.compare a.e_time b.e_time with
    | 0 -> (
      match compare a.e_rank b.e_rank with
      | 0 -> compare a.e_seq b.e_seq
      | c -> c)
    | c -> c
end

let flush_outboxes t boxes =
  let n = Array.fold_left (fun acc b -> acc + Outbox.length b) 0 boxes in
  if n > 0 then begin
    let all =
      Array.concat
        (Array.to_list (Array.map (fun b -> Array.of_list b.Outbox.entries) boxes))
    in
    Array.sort Outbox.order all;
    Array.iter
      (fun e ->
        e.Outbox.e_arrives <-
          send_view ?span:e.Outbox.e_span t ~now_us:e.Outbox.e_now_us
            ~src:e.Outbox.e_src ~dst:e.Outbox.e_dst ~payload:e.Outbox.e_payload)
      all;
    Array.iter
      (fun b ->
        b.Outbox.entries <- [];
        b.Outbox.count <- 0)
      boxes
  end

let messages_sent t = t.messages_sent
let bytes_sent t = t.bytes_sent
let messages_dropped t = t.dropped
let messages_duplicated t = t.duplicated
let messages_delayed t = t.delayed_count
