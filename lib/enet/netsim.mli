(** Discrete-event simulation of the 10 Mbit/s Ethernet of Figure 1.

    Messages are charged transmission time on a shared medium (the
    segment is busy while a frame is on the wire) plus a fixed
    latency covering media access and interface handling.  Times are
    virtual microseconds.

    {b Delivery order.}  On a reliable wire (no injector installed),
    delivery between any pair of nodes is FIFO: the shared medium
    serialises transmissions, so arrival times are non-decreasing in
    send order.  With a fault injector, that guarantee is deliberately
    broken — a delayed message or a duplicate copy can overtake or trail
    other traffic — and delivery is ordered by [(arrival time, seq)]
    instead.  (Earlier revisions documented FIFO unconditionally; that
    was only true because nothing ever perturbed the wire.) *)

type config = {
  latency_us : float;  (** per-message fixed delay *)
  bandwidth_mbit_s : float;
  frame_overhead_bytes : int;  (** per-message header/trailer bytes on the wire *)
}

val default_config : config
(** 10 Mbit/s, 300 us latency, 58 bytes of Ethernet+IP+UDP framing. *)

type message = {
  msg_src : int;
  msg_dst : int;
  msg_payload : Wire.view;
      (** a length-delimited window, possibly onto a pooled buffer the
          receiver must {!Wire.release_view} after decoding *)
  msg_sent_at : float;
  msg_arrives_at : float;
  msg_seq : int;
  msg_span : (int * int * float) option;
      (** host-side observability tag — the sender's move-span identity
          [(node, seq, start_us)] riding with the message so the
          receiver can close the span.  Never serialised: zero wire
          bytes, zero effect on timing; [None] when tracing is off. *)
}

type fault =
  | Fault_drop  (** the frame is transmitted, then lost *)
  | Fault_dup of float  (** a duplicate copy arrives [extra] us later *)
  | Fault_delay of float  (** delivery is delayed by [extra] us *)

type t

val create : ?config:config -> n_nodes:int -> unit -> t
val config : t -> config

val set_on_arrival : t -> (dst:int -> at:float -> unit) -> unit
(** Register an arrival listener: called once per enqueued delivery
    (including duplicate copies, and at the {e delayed} arrival time of
    a delayed message), so an event engine can schedule deliveries
    without polling every node's queue. *)

val set_injector : t -> (src:int -> dst:int -> now_us:float -> fault option) -> unit
(** Install a fault injector, consulted once per {!send} at the wire:
    its verdict drops, duplicates or delays the frame.  Determinism is
    the injector's contract — given the same call sequence it must
    return the same verdicts (see [Fault.Plan]). *)

val set_on_fault : t -> (src:int -> dst:int -> fault -> unit) -> unit
(** Observe injected faults (for trace/metrics emission).  Fires after
    the fault is applied, before {!send} returns. *)

val send :
  ?span:int * int * float ->
  t ->
  now_us:float ->
  src:int ->
  dst:int ->
  payload:string ->
  float
(** Queue a message; returns its (possibly fault-delayed) arrival time.
    A dropped message still consumes medium time — the frame was on the
    wire — and the returned time is when it would have arrived.
    Zero-copy: the payload string's bytes are aliased, not copied. *)

val send_view :
  ?span:int * int * float ->
  t ->
  now_us:float ->
  src:int ->
  dst:int ->
  payload:Wire.view ->
  float
(** Like {!send}, but hands off a buffer view directly (pooled views let
    the receiver recycle the encode buffer after decoding).  Do not send
    pooled views while a fault injector is installed — a duplicated
    delivery would alias a buffer the first delivery already released. *)

val next_arrival_at : t -> dst:int -> float option
(** Earliest pending arrival time for a node, if any. *)

val next_arrival_any : t -> float option
(** Earliest pending arrival time across all nodes. *)

val receive : t -> dst:int -> now_us:float -> message option
(** Pop the pending message for [dst] with the smallest
    [(arrival, seq)] whose arrival time is at most [now_us]. *)

val pending : t -> int

val iter_pending : t -> (message -> unit) -> unit
(** Visit every in-flight message (delivery order not guaranteed) — for
    invariant checkers that need to know what is on the wire. *)

(** {1 Sharded execution}

    During a conservative simulation window a shard must not touch the
    shared medium state; it {!Outbox.post}s its sends into a private
    outbox instead.  {!flush_outboxes} replays all posted sends at the
    window barrier in the canonical event order, reproducing exactly the
    medium reservation, sequence numbering and injector consultation of
    an inline run.  Sound because the window horizon is bounded by the
    network latency: no posted send can arrive inside its own window. *)

module Outbox : sig
  type entry
  type t

  val create : unit -> t
  val length : t -> int

  val post :
    ?span:int * int * float ->
    t ->
    time:float ->
    rank:int ->
    seq:int ->
    now_us:float ->
    src:int ->
    dst:int ->
    payload:Wire.view ->
    entry
  (** Record a deferred send.  [(time, rank)] key the generating engine
      event in the global node-major total order; [seq] is the shard's
      posting counter, breaking ties among posts of one event. *)

  val arrival : entry -> float
  (** Arrival time assigned by {!flush_outboxes}; NaN before the flush. *)
end

val flush_outboxes : t -> Outbox.t array -> unit
(** Sort all posted sends by [(time, rank, seq)] and run each through
    the normal send path ({!send_view} — medium fold, injector,
    [on_arrival] listener), then empty the outboxes. *)

val messages_sent : t -> int
val bytes_sent : t -> int
(** Payload plus framing bytes across all messages. *)

val messages_dropped : t -> int
(** Frames lost to the injector (partitions count here too). *)

val messages_duplicated : t -> int
val messages_delayed : t -> int
