(** Discrete-event simulation of the 10 Mbit/s Ethernet of Figure 1.

    Messages are charged transmission time on a shared medium (the
    segment is busy while a frame is on the wire) plus a fixed
    latency covering media access and interface handling.  Times are
    virtual microseconds.  Delivery between any pair of nodes is FIFO. *)

type config = {
  latency_us : float;  (** per-message fixed delay *)
  bandwidth_mbit_s : float;
  frame_overhead_bytes : int;  (** per-message header/trailer bytes on the wire *)
}

val default_config : config
(** 10 Mbit/s, 300 us latency, 58 bytes of Ethernet+IP+UDP framing. *)

type message = {
  msg_src : int;
  msg_dst : int;
  msg_payload : string;
  msg_sent_at : float;
  msg_arrives_at : float;
  msg_seq : int;
}

type t

val create : ?config:config -> n_nodes:int -> unit -> t
val config : t -> config

val set_on_arrival : t -> (dst:int -> at:float -> unit) -> unit
(** Register an arrival listener: called once per {!send} with the
    message's destination and arrival time, so an event engine can
    schedule the delivery without polling every node's queue. *)

val send : t -> now_us:float -> src:int -> dst:int -> payload:string -> float
(** Queue a message; returns its arrival time.  The shared medium
    serialises transmissions, so arrival times are non-decreasing in
    send order and delivery between any pair of nodes is FIFO. *)

val next_arrival_at : t -> dst:int -> float option
(** Earliest pending arrival time for a node, if any. *)

val next_arrival_any : t -> float option
(** Earliest pending arrival time across all nodes. *)

val receive : t -> dst:int -> now_us:float -> message option
(** Pop the earliest message for [dst] whose arrival time is at most
    [now_us]. *)

val pending : t -> int
val messages_sent : t -> int
val bytes_sent : t -> int
(** Payload plus framing bytes across all messages. *)
