(** Network-format (machine-independent) data encoding.

    The commonly-agreed-upon format of section 2.1: big-endian
    ("network byte order") integers, IEEE 754 double reals, length-prefixed
    strings.  Three implementation tiers are provided for the §4 ablation:

    - [Naive] mirrors the prototype's hand-written recursive-descent
      conversion routines, "not optimized for speed but for ease of
      maintenance": every byte goes through conversion procedure calls
      (counted in the {!Conversion_stats}), averaging 1-2 calls per byte.
      The host path is honestly byte-at-a-time as well (a non-inlined
      call per byte), so measured host time backs the modeled cost.
    - [Bulk] is the bulk conversion the paper's future-work section
      hypothesises would cut the penalty by about half: one call per
      datum, and one bounds check plus word-at-a-time stores per datum
      on the host.
    - [Plan] carries the same per-datum accounting as [Bulk] (so virtual
      times are identical by construction) but lets compiled conversion
      plans ({!Mobility.Conv_plan}) bypass per-datum dispatch entirely:
      a plan blits a precomputed skeleton and pokes values into holes,
      charging the precomputed [Bulk]-equivalent cost in one step.
    - [Blit] is the negotiated common-layout tier: when source and
      destination {!Isa.Arch.fingerprint}s match, move payloads are
      copied verbatim (one conversion call per blitted frame/object
      instead of one per datum) and translate/rebuild work is skipped
      at both ends; every pair that does not match falls back to the
      [Plan] tier.  Non-move traffic under this tier behaves as [Bulk].

    All four tiers produce identical octets; only the accounted work
    and the host-side work differ. *)

type impl = Naive | Bulk | Plan | Blit

val impl_name : impl -> string

val impl_of_string : string -> impl option
(** Recognizes ["naive"], ["bulk"], ["plan"], ["blit"] (and the legacy
    spelling ["optimized"] for [Bulk]). *)

(** {1 Buffer views}

    A [view] is a length-delimited window onto a byte buffer.  Encoders
    can hand a pooled buffer off as a view instead of copying it into a
    fresh string ({!Writer.handoff}); the network delivers the view and
    the receiver returns the buffer to the pool after decoding
    ({!release_view}). *)

type view = private {
  vw_bytes : Bytes.t;
  vw_off : int;
  vw_len : int;
  vw_pooled : bool;  (** buffer came from the pool; release after use *)
}

val view_of_string : string -> view
(** Zero-copy: aliases the string's bytes.  The view must only be read. *)

val view_to_string : view -> string
(** Copies the window out into a fresh string. *)

val view_length : view -> int
val view_get : view -> int -> char

val sub_view : view -> pos:int -> len:int -> view
(** A sub-window sharing the same buffer.  The result is never pooled:
    releasing a sub-view must not recycle the parent's buffer. *)

val release_view : view -> unit
(** Returns a pooled view's buffer to the free list; no-op otherwise.
    Call at most once, after the last read. *)

(** {1 The buffer pool}

    A global free list of encode buffers.  [Writer.create] takes a
    buffer from the pool (a {e hit}) or allocates fresh (a {e miss});
    [Writer.free] and [release_view] return buffers.  [handoffs] counts
    payloads handed to the network without the copy that
    [Writer.contents] would have made. *)
module Pool : sig
  val hits : unit -> int
  val misses : unit -> int
  val handoffs : unit -> int

  val returned : unit -> int
  (** Buffers given back ([Writer.free] of a pooled writer, or
      {!release_view} of a pooled view) — counted even when the free
      list is full and the buffer is dropped. *)

  val in_flight : unit -> int
  (** [hits + misses - returned]: pool-acquired buffers not yet given
      back.  Zero at quiescence; a persistent positive value is a leak
      (a buffer lost on an exception path between acquisition and
      free/handoff-release). *)

  val reset : unit -> unit
  (** Clears counters {e and} the free list (for test isolation). *)
end

module Writer : sig
  type t

  val create : impl:impl -> stats:Conversion_stats.t -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int32 -> unit
  val i32 : t -> int32 -> unit
  val f64 : t -> float -> unit
  val bool : t -> bool -> unit

  val str : t -> string -> unit
  (** u16 length prefix followed by the bytes. *)

  val length : t -> int

  val contents : t -> string
  (** Copies the accumulated bytes out; the writer stays usable. *)

  val free : t -> unit
  (** Recycles the buffer into the pool.  The writer is dead afterwards. *)

  val handoff : t -> view
  (** Transfers the buffer to a pooled view without copying.  The writer
      is dead afterwards. *)

  (** {2 Fused-plan primitives}

      Raw, charge-free access for compiled conversion plans: a plan
      blits its skeleton, pokes dynamic values into precomputed holes,
      and accounts the whole run with one {!add_charge}. *)

  val add_charge : t -> calls:int -> bytes:int -> unit
  (** Account [calls] conversion calls over [bytes] bytes, exactly as a
      sequence of per-datum writes under this writer's tier would. *)

  val blit : t -> string -> int
  (** Appends raw bytes (uncharged) and returns the start offset. *)

  val raw_u8 : t -> int -> unit
  val raw_u16 : t -> int -> unit
  val raw_u32 : t -> int32 -> unit
  (** Uncharged big-endian appends for fused scaffold writes; the caller
      accounts them with {!add_charge}. *)

  val poke8 : t -> at:int -> int -> unit
  val poke32 : t -> at:int -> int32 -> unit
  val poke64 : t -> at:int -> int64 -> unit

  val raw_f64 : t -> float -> unit
  val raw_str : t -> string -> unit
  (** Uncharged appends for the blit tier; the caller accounts the
      whole blitted run with {!add_charge}. *)
end

module Reader : sig
  type t

  exception Underflow

  val create : impl:impl -> stats:Conversion_stats.t -> string -> t
  val of_view : impl:impl -> stats:Conversion_stats.t -> view -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int32
  val i32 : t -> int32
  val f64 : t -> float
  val bool : t -> bool
  val str : t -> string

  val pos : t -> int
  (** Position relative to the start of the window. *)

  val at_end : t -> bool

  (** {2 Fused-plan primitives} *)

  val add_charge : t -> calls:int -> bytes:int -> unit

  val block : t -> int -> int
  (** Consumes [n] bytes (uncharged) and returns the absolute offset of
      the consumed run, for use with [get*_at]. *)

  val get8_at : t -> int -> int
  val get16_at : t -> int -> int
  val get32_at : t -> int -> int32
  val get64_at : t -> int -> int64

  val peek_u16 : t -> int option
  (** The next big-endian u16 without consuming it (uncharged); [None]
      on underflow. *)

  val raw_u8 : t -> int
  val raw_u16 : t -> int
  val raw_u32 : t -> int32
  val raw_f64 : t -> float
  val raw_str : t -> string
  (** Uncharged consuming reads for the blit tier; the caller accounts
      the whole blitted run with {!add_charge}. *)
end
