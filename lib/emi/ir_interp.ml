module I = Emc.Ir
module V = Mvalue

type result = {
  value : Mvalue.t option;
  output : string;
  steps : int;
}

(* The activation-local state a compiled instruction closes over: one
   record per call, threaded through the shared per-(class, operation)
   compiled code — the same split the native engine makes between the
   machine context and the translated text. *)
type env = {
  e_self : V.obj;
  e_vars : V.t array;
  e_temps : V.t array;
}

(* a compiled basic block: run the instructions, return the next block's
   label (-1 to return from the operation) *)
type compiled = (env -> int) array

type state = {
  prog : I.program_ir;
  out : Buffer.t;
  sched : Coop.t;
  mutable steps : int;
  code : (int * string, compiled) Hashtbl.t;
      (* per (class index, operation name): blocks are translated to
         closure arrays once, on the operation's first invocation, and
         every later call — every loop iteration of every object of the
         class — reuses them *)
}

let class_of st i = st.prog.I.pr_classes.(i)

let new_object st class_index =
  let cl = class_of st class_index in
  let obj =
    {
      V.o_class = class_index;
      o_fields = Array.make (Array.length cl.I.cl_fields) V.Nil;
    }
  in
  Array.iteri
    (fun i init ->
      obj.V.o_fields.(i) <-
        (match (init : I.field_init) with
        | I.Fint v -> V.Int v
        | I.Freal v -> V.Real v
        | I.Fbool v -> V.Bool v
        | I.Fstr v -> V.Str v
        | I.Fnil -> V.Nil))
    cl.I.cl_field_inits;
  obj

let int_op op a b =
  match (op : Isa.Insn.binop) with
  | Isa.Insn.Add -> Int32.add a b
  | Isa.Insn.Sub -> Int32.sub a b
  | Isa.Insn.Mul -> Int32.mul a b
  | Isa.Insn.Div ->
    if Int32.equal b 0l then failwith "division by zero" else Int32.div a b
  | Isa.Insn.Mod ->
    if Int32.equal b 0l then failwith "division by zero" else Int32.rem a b
  | Isa.Insn.And -> Int32.logand a b
  | Isa.Insn.Or -> Int32.logor a b
  | Isa.Insn.Xor -> Int32.logxor a b

let real_op op a b =
  match (op : Isa.Insn.binop) with
  | Isa.Insn.Add -> a +. b
  | Isa.Insn.Sub -> a -. b
  | Isa.Insn.Mul -> a *. b
  | Isa.Insn.Div -> if b = 0.0 then failwith "division by zero" else a /. b
  | Isa.Insn.Mod | Isa.Insn.And | Isa.Insn.Or | Isa.Insn.Xor ->
    failwith "bad float operation"

let eval_cmp op c =
  match (op : Isa.Insn.cmp) with
  | Isa.Insn.Eq -> c = 0
  | Isa.Insn.Ne -> c <> 0
  | Isa.Insn.Lt -> c < 0
  | Isa.Insn.Le -> c <= 0
  | Isa.Insn.Gt -> c > 0
  | Isa.Insn.Ge -> c >= 0

(* Translate one IR instruction into a closure: temp/var/field indices,
   constants, and the operator dispatch are resolved here, once, so
   executing the instruction is a single indirect call on the hot path.
   Observable behaviour (output, [steps] counting, failure messages and
   their ordering) is identical to the former match-per-instruction
   interpreter. *)
let rec compile_instr st cl instr : env -> unit =
  match instr with
  | I.Iconst_int (t, v) -> fun env -> env.e_temps.(t) <- V.Int v
  | I.Iconst_real (t, v) -> fun env -> env.e_temps.(t) <- V.Real v
  | I.Iconst_bool (t, v) -> fun env -> env.e_temps.(t) <- V.Bool v
  | I.Iconst_str (t, s) ->
    let v = V.Str cl.I.cl_strings.(s) in
    fun env -> env.e_temps.(t) <- v
  | I.Iconst_nil t -> fun env -> env.e_temps.(t) <- V.Nil
  | I.Icopy (d, s) -> fun env -> env.e_temps.(d) <- env.e_temps.(s)
  | I.Iload_var (t, v) -> fun env -> env.e_temps.(t) <- env.e_vars.(v)
  | I.Istore_var (v, t) -> fun env -> env.e_vars.(v) <- env.e_temps.(t)
  | I.Iload_field (t, f) -> fun env -> env.e_temps.(t) <- env.e_self.V.o_fields.(f)
  | I.Istore_field (f, t) -> fun env -> env.e_self.V.o_fields.(f) <- env.e_temps.(t)
  | I.Ibin { dst; op; ty; a; b } -> (
    match ty with
    | I.Aint ->
      fun env ->
        env.e_temps.(dst) <-
          V.Int (int_op op (V.as_int env.e_temps.(a)) (V.as_int env.e_temps.(b)))
    | I.Areal ->
      fun env ->
        env.e_temps.(dst) <-
          V.Real (real_op op (V.as_real env.e_temps.(a)) (V.as_real env.e_temps.(b))))
  | I.Icmp { dst; op; ty; a; b } -> (
    match ty with
    | I.Areal ->
      fun env ->
        let c = Float.compare (V.as_real env.e_temps.(a)) (V.as_real env.e_temps.(b)) in
        env.e_temps.(dst) <- V.Bool (eval_cmp op c)
    | I.Aint ->
      fun env ->
        let c =
          match (env.e_temps.(a), env.e_temps.(b)) with
          | V.Int x, V.Int y -> Int32.compare x y
          | x, y -> if V.equal x y then 0 else 1
        in
        env.e_temps.(dst) <- V.Bool (eval_cmp op c))
  | I.Ineg { dst; ty; a } -> (
    match ty with
    | I.Aint ->
      fun env -> env.e_temps.(dst) <- V.Int (Int32.neg (V.as_int env.e_temps.(a)))
    | I.Areal -> fun env -> env.e_temps.(dst) <- V.Real (-.V.as_real env.e_temps.(a)))
  | I.Inot { dst; a } ->
    fun env -> env.e_temps.(dst) <- V.Bool (not (V.as_bool env.e_temps.(a)))
  | I.Icvt_int_real { dst; a } ->
    fun env -> env.e_temps.(dst) <- V.Real (Int32.to_float (V.as_int env.e_temps.(a)))
  | I.Iinvoke { dst; target; method_index; args; _ } ->
    (* the callee is still bound at run time — dynamic dispatch on the
       receiver's class, as before *)
    fun env -> (
      match env.e_temps.(target) with
      | V.Obj obj ->
        let callee_cl = class_of st obj.V.o_class in
        let callee = callee_cl.I.cl_ops.(method_index) in
        let vargs = List.map (fun t -> env.e_temps.(t)) args in
        let r = call st ~self:obj ~op_ir:callee ~args:vargs in
        (match dst with
        | Some d -> env.e_temps.(d) <- Option.value r ~default:V.Nil
        | None -> ())
      | V.Nil -> failwith "invocation of nil"
      | _ -> V.type_error "invocation target")
  | I.Inew { dst; class_index; _ } ->
    fun env -> env.e_temps.(dst) <- V.Obj (new_object st class_index)
  | I.Ibuiltin { dst; bi; args; _ } ->
    fun env -> (
      let arg i = env.e_temps.(List.nth args i) in
      let set v =
        match dst with
        | Some d -> env.e_temps.(d) <- v
        | None -> ()
      in
      match bi with
      | I.Bprint_int | I.Bprint_real | I.Bprint_bool | I.Bprint_str | I.Bprint_ref ->
        Buffer.add_string st.out (V.to_print_string (arg 0))
      | I.Bprint_nl -> Buffer.add_char st.out '\n'
      | I.Blocate -> set (V.Int 0l)
      | I.Bthisnode -> set (V.Int 0l)
      | I.Btimenow -> set (V.Int (Int32.of_float (Coop.now st.sched)))
      | I.Bmove -> () (* machine-independent level: mobility is trivial *)
      | I.Bsconcat -> set (V.Str (V.as_str (arg 0) ^ V.as_str (arg 1)))
      | I.Bseq -> set (V.Bool (String.equal (V.as_str (arg 0)) (V.as_str (arg 1))))
      | I.Bvec_new ->
        let n = Int32.to_int (V.as_int (arg 1)) in
        if n < 0 then failwith "negative vector length";
        set (V.Vec (Array.make n V.Nil))
      | I.Bbounds -> failwith "vector index out of bounds"
      | I.Bcond_wait | I.Bcond_wait_timed ->
        let obj = V.as_obj (arg 0) in
        let cond = Int32.to_int (V.as_int (arg 1)) in
        let timeout =
          match bi with
          | I.Bcond_wait_timed -> Some (Int32.to_float (V.as_int (arg 2)))
          | _ -> None
        in
        ignore (Coop.wait st.sched ~obj ~cond ~timeout : bool)
      | I.Bcond_signal ->
        Coop.notify st.sched ~obj:(V.as_obj (arg 0))
          ~cond:(Int32.to_int (V.as_int (arg 1)))
      | I.Bcond_notify_all ->
        Coop.notify_all st.sched ~obj:(V.as_obj (arg 0))
          ~cond:(Int32.to_int (V.as_int (arg 1)))
      | I.Bstart_process ->
        (* the process is its own cooperative thread; it runs inline
           until it completes or first waits *)
        (match arg 0 with
        | V.Obj obj ->
          let cl2 = class_of st obj.V.o_class in
          (match
             Array.find_opt (fun o -> String.equal o.I.oi_name "$process") cl2.I.cl_ops
           with
          | Some op ->
            Coop.spawn st.sched (fun () ->
                ignore (call st ~self:obj ~op_ir:op ~args:[]))
          | None -> ())
        | _ -> ()))
  | I.Ivec_get { dst; vec; idx; _ } ->
    fun env ->
      let xs = V.as_vec env.e_temps.(vec) in
      let i = Int32.to_int (V.as_int env.e_temps.(idx)) in
      if i < 0 || i >= Array.length xs then failwith "vector index out of bounds";
      env.e_temps.(dst) <- xs.(i)
  | I.Ivec_set { vec; idx; src; _ } ->
    fun env ->
      let xs = V.as_vec env.e_temps.(vec) in
      let i = Int32.to_int (V.as_int env.e_temps.(idx)) in
      if i < 0 || i >= Array.length xs then failwith "vector index out of bounds";
      xs.(i) <- env.e_temps.(src)
  | I.Ivec_len { dst; vec } ->
    fun env ->
      env.e_temps.(dst) <- V.Int (Int32.of_int (Array.length (V.as_vec env.e_temps.(vec))))
  | I.Imon_enter _ | I.Imon_exit _ -> fun _ -> () (* single-threaded level *)

(* a block: the instruction closures in order, then the terminator
   resolved to a next-label function.  [steps] counts one per
   instruction (before it executes) and one per block (after the
   instructions, before the terminator), exactly as the direct
   interpreter counted. *)
and compile_block st cl blk : env -> int =
  let instrs = Array.of_list (List.map (compile_instr st cl) blk.I.b_instrs) in
  let term =
    match blk.I.b_term with
    | I.Tjump l -> fun _ -> l
    | I.Tloop { target; _ } -> fun _ -> target
    | I.Tcond { c; if_true; if_false } ->
      fun env -> if V.as_bool env.e_temps.(c) then if_true else if_false
    | I.Treturn -> fun _ -> -1
  in
  fun env ->
    Array.iter
      (fun f ->
        st.steps <- st.steps + 1;
        f env)
      instrs;
    st.steps <- st.steps + 1;
    term env

and compiled_for st cl (op_ir : I.op_ir) =
  let key = (cl.I.cl_index, op_ir.I.oi_name) in
  match Hashtbl.find_opt st.code key with
  | Some c -> c
  | None ->
    let c = Array.map (compile_block st cl) op_ir.I.oi_blocks in
    Hashtbl.add st.code key c;
    c

and call st ~(self : V.obj) ~(op_ir : I.op_ir) ~(args : V.t list) : V.t option =
  let n_vars = Array.length op_ir.I.oi_vars in
  let vars = Array.make n_vars V.Nil in
  Array.iteri (fun i vd -> vars.(i) <- V.default_of vd.I.vd_type) op_ir.I.oi_vars;
  vars.(0) <- V.Obj self;
  List.iteri (fun i a -> vars.(i + 1) <- a) args;
  let temps = Array.make (max 1 (Array.length op_ir.I.oi_temp_types)) V.Nil in
  let cl = class_of st self.V.o_class in
  let blocks = compiled_for st cl op_ir in
  let env = { e_self = self; e_vars = vars; e_temps = temps } in
  let rec go label = if label >= 0 then go (blocks.(label) env) in
  go 0;
  Option.map (fun r -> vars.(r)) op_ir.I.oi_result

let run prog ~class_name ~op ~args =
  let st =
    {
      prog;
      out = Buffer.create 64;
      sched = Coop.create ();
      steps = 0;
      code = Hashtbl.create 16;
    }
  in
  let cl =
    match
      Array.find_opt (fun c -> String.equal c.I.cl_name class_name) prog.I.pr_classes
    with
    | Some c -> c
    | None -> failwith ("no class " ^ class_name)
  in
  let obj = new_object st cl.I.cl_index in
  let op_ir =
    match Array.find_opt (fun o -> String.equal o.I.oi_name op) cl.I.cl_ops with
    | Some o -> o
    | None -> failwith ("no operation " ^ op)
  in
  (* the root invocation is itself a cooperative thread: it may wait on
     a condition that a process section notifies *)
  let value = ref None and finished = ref false in
  Coop.spawn st.sched (fun () ->
      value := call st ~self:obj ~op_ir ~args;
      finished := true);
  Coop.drain st.sched;
  if not !finished then failwith "deadlock: the root operation never completed";
  { value = !value; output = Buffer.contents st.out; steps = st.steps }
