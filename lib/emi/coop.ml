(* Cooperative threads for the machine-independent interpreters.

   The AST and IR levels used to be strictly single-threaded: process
   sections ran to completion at creation and [wait] was a runtime
   error.  This module gives both interpreters the same first-class
   resumable continuations the native kernel has — built on OCaml
   effects rather than captured stack segments — so monitor
   [wait]/[notify]/[notifyall] (with timeouts) behave observably like
   the kernel's bus-stop implementation, while non-waiting programs
   execute in exactly the legacy order:

   - [spawn] runs the thread inline under a deep handler; a thread
     that never waits completes before [spawn] returns, byte-identical
     to the old run-to-completion behaviour.
   - [wait] performs an effect; the captured continuation parks on a
     per-(object, condition) FIFO queue, and control returns to
     whoever resumed this thread (Mesa semantics: no handoff).
   - [notify]/[notify_all] move waiters to the ready queue; they run
     when the current thread next completes or waits ([drain]).
   - When every thread is parked, the virtual clock jumps to the
     earliest wait deadline and the due waiters resume with
     [timed out = true], in (deadline, arrival) order — the same order
     the kernel's [expire_timeouts] uses. *)

module V = Mvalue

type waiter = {
  w_seq : int;  (* arrival order: FIFO wake, deterministic expiry ties *)
  w_deadline : float option;  (* absolute virtual microseconds *)
  w_k : (bool, unit) Effect.Deep.continuation;
}

(* per-(object, condition) wait queue; object identity is physical *)
type cqueue = {
  q_obj : V.obj;
  q_cond : int;
  mutable q_waiters : waiter list;  (* oldest first *)
}

type t = {
  mutable queues : cqueue list;
  ready : (bool * (bool, unit) Effect.Deep.continuation) Queue.t;
      (* resumable threads; the flag is the wait's timed-out result *)
  mutable now : float;  (* virtual microseconds, advanced only by expiry *)
  mutable seq : int;
  mutable blocked : int;  (* waiters parked across all queues *)
}

type _ Effect.t +=
  | Wait : { obj : V.obj; cond : int; timeout : float option } -> bool Effect.t

let create () =
  { queues = []; ready = Queue.create (); now = 0.0; seq = 0; blocked = 0 }

let now t = t.now

let queue_for t obj cond =
  match
    List.find_opt (fun q -> q.q_obj == obj && q.q_cond = cond) t.queues
  with
  | Some q -> q
  | None ->
    let q = { q_obj = obj; q_cond = cond; q_waiters = [] } in
    t.queues <- t.queues @ [ q ];
    q

let wait _t ~obj ~cond ~timeout = Effect.perform (Wait { obj; cond; timeout })

let wake t w ~timed_out =
  t.blocked <- t.blocked - 1;
  Queue.add (timed_out, w.w_k) t.ready

let notify t ~obj ~cond =
  match
    List.find_opt (fun q -> q.q_obj == obj && q.q_cond = cond) t.queues
  with
  | None -> ()
  | Some q -> (
    match q.q_waiters with
    | [] -> ()
    | w :: rest ->
      q.q_waiters <- rest;
      wake t w ~timed_out:false)

let notify_all t ~obj ~cond =
  match
    List.find_opt (fun q -> q.q_obj == obj && q.q_cond = cond) t.queues
  with
  | None -> ()
  | Some q ->
    let ws = q.q_waiters in
    q.q_waiters <- [];
    List.iter (fun w -> wake t w ~timed_out:false) ws

let handler t =
  {
    Effect.Deep.retc = (fun () -> ());
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Wait { obj; cond; timeout } ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              let q = queue_for t obj cond in
              t.seq <- t.seq + 1;
              let deadline =
                Option.map (fun us -> t.now +. Float.max 0.0 us) timeout
              in
              q.q_waiters <-
                q.q_waiters @ [ { w_seq = t.seq; w_deadline = deadline; w_k = k } ];
              t.blocked <- t.blocked + 1)
        | _ -> None);
  }

let spawn t f = Effect.Deep.match_with f () (handler t)

(* move every waiter whose deadline has passed to the ready queue, in
   (deadline, arrival) order across all queues *)
let expire t =
  let due = ref [] in
  List.iter
    (fun q ->
      let d, rest =
        List.partition
          (fun w ->
            match w.w_deadline with Some d -> d <= t.now | None -> false)
          q.q_waiters
      in
      q.q_waiters <- rest;
      due := !due @ d)
    t.queues;
  let due =
    List.sort
      (fun a b ->
        match Option.compare Float.compare a.w_deadline b.w_deadline with
        | 0 -> compare a.w_seq b.w_seq
        | c -> c)
      !due
  in
  List.iter (fun w -> wake t w ~timed_out:true) due

let earliest_deadline t =
  List.fold_left
    (fun acc q ->
      List.fold_left
        (fun acc w ->
          match w.w_deadline, acc with
          | None, _ -> acc
          | Some d, None -> Some d
          | Some d, Some e -> Some (Float.min d e))
        acc q.q_waiters)
    None t.queues

let rec drain t =
  match Queue.take_opt t.ready with
  | Some (timed_out, k) ->
    Effect.Deep.continue k timed_out;
    drain t
  | None -> (
    match earliest_deadline t with
    | Some d ->
      t.now <- Float.max t.now d;
      expire t;
      drain t
    | None ->
      if t.blocked > 0 then
        failwith
          (Printf.sprintf
             "deadlock: %d thread(s) blocked in wait with no signaller and no \
              timeout"
             t.blocked))
