(** Cooperative threads for the machine-independent interpreters.

    The effect-based analogue of the native kernel's resumable
    suspensions ({!Isa.Suspend}): a thread that executes [wait] is
    captured as a first-class continuation and parked on a
    per-(object, condition) FIFO queue; [notify]/[notify_all] move
    waiters to a ready queue, where they resume — Mesa-style, after
    the signaller yields — under {!drain}.  Timed waits resume with
    [timed out = true] once the virtual clock reaches their deadline;
    the clock only advances when every thread is parked, jumping to
    the earliest deadline, so non-waiting programs observe time 0 and
    the legacy single-threaded execution order exactly. *)

type t

val create : unit -> t

val now : t -> float
(** Virtual time in microseconds; 0 until a timed wait expires. *)

val spawn : t -> (unit -> unit) -> unit
(** Run a thread inline under the scheduler's handler.  Returns when
    the thread completes or first waits; a thread that never waits
    therefore runs to completion here, preserving the legacy
    process-at-creation semantics. *)

val wait : t -> obj:Mvalue.obj -> cond:int -> timeout:float option -> bool
(** Park the calling thread on [(obj, cond)].  Returns [false] when
    woken by a notify, [true] when the (relative, microseconds)
    timeout expired first.  Must run inside {!spawn}. *)

val notify : t -> obj:Mvalue.obj -> cond:int -> unit
(** Wake the oldest waiter on [(obj, cond)], if any.  It runs when the
    current thread next completes or waits. *)

val notify_all : t -> obj:Mvalue.obj -> cond:int -> unit
(** Wake every waiter on [(obj, cond)], in arrival order. *)

val drain : t -> unit
(** Run ready threads — and, when all are parked, expire timed waits in
    (deadline, arrival) order — until none remain.
    @raise Failure on deadlock: threads blocked forever with no
    timeout. *)
