module T = Emc.Typecheck
module V = Mvalue

type result = {
  value : Mvalue.t option;
  output : string;
  steps : int;
}

type state = {
  prog : T.tprog;
  out : Buffer.t;
  sched : Coop.t;
  mutable steps : int;
}

exception Exit_loop
exception Return

type frame = {
  self : V.obj;
  params : V.t array;
  mutable result : V.t;
  locals : V.t array;
}

let tick st = st.steps <- st.steps + 1

let class_of st i = st.prog.T.tp_classes.(i)

let new_object st (ci : T.class_info) =
  tick st;
  {
    V.o_class = ci.T.ci_index;
    o_fields =
      Array.map
        (fun tc ->
          ignore tc;
          V.Nil)
        ci.T.ci_fields;
  }

let literal_value (e : T.texpr) =
  match e.T.te_d with
  | T.TEint v -> V.Int v
  | T.TEreal v -> V.Real v
  | T.TEbool v -> V.Bool v
  | T.TEstr v -> V.Str v
  | T.TEnil -> V.Nil
  | T.TEcvt_int_to_real { T.te_d = T.TEint v; _ } -> V.Real (Int32.to_float v)
  | _ -> failwith "field initialisers are literals"

let init_fields st (tc : T.tclass) (obj : V.obj) =
  Array.iteri (fun i init -> obj.V.o_fields.(i) <- literal_value init) tc.T.tc_field_inits;
  ignore st

let rec eval st (fr : frame) (e : T.texpr) : V.t =
  tick st;
  match e.T.te_d with
  | T.TEint v -> V.Int v
  | T.TEreal v -> V.Real v
  | T.TEbool v -> V.Bool v
  | T.TEstr v -> V.Str v
  | T.TEnil -> V.Nil
  | T.TEself -> V.Obj fr.self
  | T.TEthisnode -> V.Int 0l
  | T.TEtimenow -> V.Int (Int32.of_float (Coop.now st.sched))
  | T.TEvar (vr, _) -> (
    match vr with
    | T.Vparam i -> fr.params.(i)
    | T.Vresult -> fr.result
    | T.Vlocal i -> fr.locals.(i)
    | T.Vfield i -> fr.self.V.o_fields.(i))
  | T.TElocate _ -> V.Int 0l
  | T.TEvec_new (elem, len) ->
    let n = Int32.to_int (V.as_int (eval st fr len)) in
    if n < 0 then failwith "negative vector length";
    V.Vec (Array.make n (V.default_of elem))
  | T.TEindex (vec, idx) ->
    let xs = V.as_vec (eval st fr vec) in
    let i = Int32.to_int (V.as_int (eval st fr idx)) in
    if i < 0 || i >= Array.length xs then failwith "vector index out of bounds";
    xs.(i)
  | T.TEveclen vec -> V.Int (Int32.of_int (Array.length (V.as_vec (eval st fr vec))))
  | T.TEcvt_int_to_real x -> V.Real (Int32.to_float (V.as_int (eval st fr x)))
  | T.TEun (Emc.Ast.Uneg, x) -> (
    match eval st fr x with
    | V.Int v -> V.Int (Int32.neg v)
    | V.Real v -> V.Real (-.v)
    | _ -> V.type_error "negation")
  | T.TEun (Emc.Ast.Unot, x) -> V.Bool (not (V.as_bool (eval st fr x)))
  | T.TEbin (op, a, b) -> eval_bin st fr op a b
  | T.TEnew (ci, args) ->
    let obj = new_object st ci in
    let tc = class_of st ci.T.ci_index in
    init_fields st tc obj;
    if ci.T.ci_has_initially then begin
      let vargs = List.map (eval st fr) args in
      ignore (invoke st obj "initially" vargs)
    end;
    (* the process section is its own cooperative thread; it runs
       inline until it completes or first waits, so a non-waiting
       process keeps the legacy run-to-completion-at-creation order *)
    if ci.T.ci_has_process then
      Coop.spawn st.sched (fun () -> ignore (invoke st obj "$process" []));
    V.Obj obj
  | T.TEinvoke (target, _, msig, args) -> (
    match eval st fr target with
    | V.Obj obj ->
      let vargs = List.map (eval st fr) args in
      Option.value (invoke st obj msig.T.m_name vargs) ~default:V.Nil
    | V.Nil -> failwith "invocation of nil"
    | _ -> V.type_error "invocation target")

and eval_bin st fr op a b =
  let va = eval st fr a in
  let vb = eval st fr b in
  let module A = Emc.Ast in
  match op, va, vb with
  | A.Badd, V.Str x, V.Str y -> V.Str (x ^ y)
  | A.Badd, V.Int x, V.Int y -> V.Int (Int32.add x y)
  | A.Bsub, V.Int x, V.Int y -> V.Int (Int32.sub x y)
  | A.Bmul, V.Int x, V.Int y -> V.Int (Int32.mul x y)
  | A.Bdiv, V.Int x, V.Int y ->
    if Int32.equal y 0l then failwith "division by zero" else V.Int (Int32.div x y)
  | A.Bmod, V.Int x, V.Int y ->
    if Int32.equal y 0l then failwith "division by zero" else V.Int (Int32.rem x y)
  | A.Badd, _, _ -> V.Real (V.as_real va +. V.as_real vb)
  | A.Bsub, _, _ -> V.Real (V.as_real va -. V.as_real vb)
  | A.Bmul, _, _ -> V.Real (V.as_real va *. V.as_real vb)
  | A.Bdiv, _, _ ->
    let y = V.as_real vb in
    if y = 0.0 then failwith "division by zero" else V.Real (V.as_real va /. y)
  | A.Bmod, _, _ -> V.type_error "mod"
  | A.Beq, _, _ -> V.Bool (compare_values va vb = Some 0)
  | A.Bne, _, _ -> V.Bool (compare_values va vb <> Some 0)
  | A.Blt, _, _ -> V.Bool (cmp_num va vb < 0)
  | A.Ble, _, _ -> V.Bool (cmp_num va vb <= 0)
  | A.Bgt, _, _ -> V.Bool (cmp_num va vb > 0)
  | A.Bge, _, _ -> V.Bool (cmp_num va vb >= 0)
  | A.Band, _, _ -> V.Bool (V.as_bool va && V.as_bool vb)
  | A.Bor, _, _ -> V.Bool (V.as_bool va || V.as_bool vb)

and compare_values a b =
  match a, b with
  | V.Int x, V.Int y -> Some (Int32.compare x y)
  | V.Real _, _ | _, V.Real _ -> Some (Float.compare (V.as_real a) (V.as_real b))
  | V.Bool x, V.Bool y -> Some (Bool.compare x y)
  | V.Str x, V.Str y -> Some (String.compare x y)
  | V.Obj x, V.Obj y -> Some (if x == y then 0 else 1)
  | V.Nil, V.Nil -> Some 0
  | (V.Obj _ | V.Nil), (V.Obj _ | V.Nil) -> Some 1
  | V.Vec _, _ | _, V.Vec _ -> None
  | _, _ -> None

and cmp_num a b =
  match a, b with
  | V.Int x, V.Int y -> Int32.compare x y
  | _, _ -> Float.compare (V.as_real a) (V.as_real b)

and exec st fr (s : T.tstmt) =
  tick st;
  match s with
  | T.TSdecl (i, e) -> fr.locals.(i) <- eval st fr e
  | T.TSassign (vr, e) -> (
    let v = eval st fr e in
    match vr with
    | T.Vparam i -> fr.params.(i) <- v
    | T.Vresult -> fr.result <- v
    | T.Vlocal i -> fr.locals.(i) <- v
    | T.Vfield i -> fr.self.V.o_fields.(i) <- v)
  | T.TSindex_assign (vec, idx, e) ->
    let xs = V.as_vec (eval st fr vec) in
    let i = Int32.to_int (V.as_int (eval st fr idx)) in
    if i < 0 || i >= Array.length xs then failwith "vector index out of bounds";
    xs.(i) <- eval st fr e
  | T.TSexpr e -> ignore (eval st fr e)
  | T.TSif (arms, els) ->
    let rec go = function
      | [] -> List.iter (exec st fr) els
      | (c, body) :: rest ->
        if V.as_bool (eval st fr c) then List.iter (exec st fr) body else go rest
    in
    go arms
  | T.TSloop body -> (
    try
      while true do
        List.iter (exec st fr) body
      done
    with Exit_loop -> ())
  | T.TSexit None -> raise Exit_loop
  | T.TSexit (Some c) -> if V.as_bool (eval st fr c) then raise Exit_loop
  | T.TSreturn -> raise Return
  | T.TSmove (obj, node) ->
    (* a single machine-independent world: mobility is a no-op, exactly
       the "painless migration" of section 1 *)
    ignore (eval st fr obj);
    ignore (eval st fr node)
  | T.TSwait (cond, timeout) ->
    let timeout =
      Option.map (fun e -> Int32.to_float (V.as_int (eval st fr e))) timeout
    in
    (* the language cannot observe the timed-out flag directly; a timed
       wait simply resumes, and the program re-checks its predicate
       (Mesa discipline) against [timenow] *)
    ignore (Coop.wait st.sched ~obj:fr.self ~cond ~timeout : bool)
  | T.TSsignal cond -> Coop.notify st.sched ~obj:fr.self ~cond
  | T.TSnotifyall cond -> Coop.notify_all st.sched ~obj:fr.self ~cond
  | T.TSprint args ->
    List.iter (fun a -> Buffer.add_string st.out (V.to_print_string (eval st fr a))) args;
    Buffer.add_char st.out '\n'

and invoke st (obj : V.obj) op_name vargs : V.t option =
  let tc = class_of st obj.V.o_class in
  let top =
    match
      Array.find_opt (fun (o : T.top) -> String.equal o.T.t_sig.T.m_name op_name) tc.T.tc_ops
    with
    | Some o -> o
    | None -> failwith ("no operation " ^ op_name)
  in
  let fr =
    {
      self = obj;
      params = Array.of_list vargs;
      result =
        (match top.T.t_sig.T.m_result with
        | Some ty -> V.default_of ty
        | None -> V.Nil);
      locals = Array.map (fun (_, ty) -> V.default_of ty) top.T.t_locals;
    }
  in
  (try List.iter (exec st fr) top.T.t_body with Return -> ());
  match top.T.t_sig.T.m_result with
  | Some _ -> Some fr.result
  | None -> None

let run prog ~class_name ~op ~args =
  let st = { prog; out = Buffer.create 64; sched = Coop.create (); steps = 0 } in
  let ci =
    match
      Array.find_opt
        (fun (tc : T.tclass) -> String.equal tc.T.tc_info.T.ci_name class_name)
        prog.T.tp_classes
    with
    | Some tc -> tc.T.tc_info
    | None -> failwith ("no class " ^ class_name)
  in
  let obj = new_object st ci in
  init_fields st (class_of st ci.T.ci_index) obj;
  (* the root invocation is itself a cooperative thread: it may wait on
     a condition that a process section notifies *)
  let value = ref None and finished = ref false in
  Coop.spawn st.sched (fun () ->
      value := invoke st obj op args;
      finished := true);
  Coop.drain st.sched;
  if not !finished then failwith "deadlock: the root operation never completed";
  { value = !value; output = Buffer.contents st.out; steps = st.steps }
