(* Parallel-array binary min-heap.  A record-of-entries layout costs an
   allocation per push and a pointer chase per comparison (the float key
   is boxed inside a mixed record); four parallel arrays keep the keys
   flat — [times] is an unboxed float array — and make push/pop
   allocation-free. *)

type 'a t = {
  mutable times : float array;
  mutable ranks : int array;
  mutable seqs : int array;
  mutable items : 'a array;
  mutable size : int;
  mutable seq : int;
}

let create () =
  { times = [||]; ranks = [||]; seqs = [||]; items = [||]; size = 0; seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let clear t =
  t.times <- [||];
  t.ranks <- [||];
  t.seqs <- [||];
  t.items <- [||];
  t.size <- 0

(* entry i orders before entry j: time, then rank, then insertion order *)
let lt t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j)
     && (t.ranks.(i) < t.ranks.(j)
        || (t.ranks.(i) = t.ranks.(j) && t.seqs.(i) < t.seqs.(j))))

let swap t i j =
  let tm = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tm;
  let rk = t.ranks.(i) in
  t.ranks.(i) <- t.ranks.(j);
  t.ranks.(j) <- rk;
  let sq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- sq;
  let it = t.items.(i) in
  t.items.(i) <- t.items.(j);
  t.items.(j) <- it

let grow t item =
  let cap = Array.length t.times in
  let cap' = max 16 (2 * cap) in
  let times = Array.make cap' 0.0 in
  let ranks = Array.make cap' 0 in
  let seqs = Array.make cap' 0 in
  (* the fresh item doubles as the filler for the unused tail *)
  let items = Array.make cap' item in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.ranks 0 ranks 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.items 0 items 0 t.size;
  t.times <- times;
  t.ranks <- ranks;
  t.seqs <- seqs;
  t.items <- items

let push t ~time ~rank item =
  t.seq <- t.seq + 1;
  if t.size = Array.length t.times then grow t item;
  let n = t.size in
  t.times.(n) <- time;
  t.ranks.(n) <- rank;
  t.seqs.(n) <- t.seq;
  t.items.(n) <- item;
  t.size <- n + 1;
  let i = ref n in
  while !i > 0 && lt t !i ((!i - 1) / 2) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let peek t = if t.size = 0 then None else Some (t.times.(0), t.items.(0))

let sift_down t =
  let i = ref 0 in
  let sifting = ref true in
  while !sifting do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let m = ref !i in
    if l < t.size && lt t l !m then m := l;
    if r < t.size && lt t r !m then m := r;
    if !m = !i then sifting := false
    else begin
      swap t !i !m;
      i := !m
    end
  done

let min_time t =
  if t.size = 0 then invalid_arg "Pqueue.min_time: empty queue"
  else t.times.(0)

let min_rank t =
  if t.size = 0 then invalid_arg "Pqueue.min_rank: empty queue"
  else t.ranks.(0)

let take_min t =
  if t.size = 0 then invalid_arg "Pqueue.take_min: empty queue"
  else begin
    let top = t.items.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.times.(0) <- t.times.(t.size);
      t.ranks.(0) <- t.ranks.(t.size);
      t.seqs.(0) <- t.seqs.(t.size);
      t.items.(0) <- t.items.(t.size);
      sift_down t
    end;
    top
  end

let pop t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) in
    Some (time, take_min t)
  end
