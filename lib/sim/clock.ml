type t = { mutable now : float }

let create ?(at = 0.0) () = { now = at }
let now t = t.now
let advance_to t v = if v > t.now then t.now <- v
let add t dt = t.now <- t.now +. dt
