(** A binary min-heap priority queue over virtual time.

    Entries are ordered by [(time, rank, seq)]: virtual time first, then
    an explicit rank (the caller's tie-breaking policy — e.g. event kind
    and node index), then an internal sequence number assigned at push
    time.  The sequence number makes the pop order a total order, so a
    simulation driven off this queue is deterministic regardless of
    insertion timing.

    [push] and [pop] are O(log n); [peek] is O(1). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> rank:int -> 'a -> unit
(** Insert an item at the given virtual time.  Lower [rank] wins among
    entries with equal time; insertion order breaks remaining ties. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum entry. *)

val peek : 'a t -> (float * 'a) option

val min_time : 'a t -> float
(** Time of the minimum entry, without the option/tuple wrapping of
    {!peek} — for hot loops that have already checked {!is_empty}.
    @raise Invalid_argument on an empty queue. *)

val min_rank : 'a t -> int
(** Rank of the minimum entry.
    @raise Invalid_argument on an empty queue. *)

val take_min : 'a t -> 'a
(** Remove the minimum entry and return its item (read {!min_time}
    first if the time is needed).
    @raise Invalid_argument on an empty queue. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
