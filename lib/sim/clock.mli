(** A virtual clock, in microseconds.

    Each kernel owns one for its node-local time, and the event engine
    owns one for the global simulation horizon (the time of the last
    event popped).  Time never moves backwards: [advance_to] is a max
    operation, [add] accumulates a non-negative charge. *)

type t = { mutable now : float }
(** Concrete on purpose: the simulation reads and charges clocks once or
    more per event, and a direct field access compiles to a load where
    the accessor costs a call and a float box.  Mutate only through
    {!advance_to}/{!add} (or their manifest equivalents) — time must
    never move backwards. *)

val create : ?at:float -> unit -> t
val now : t -> float

val advance_to : t -> float -> unit
(** Move the clock forward to [v]; a no-op if [v] is in the past. *)

val add : t -> float -> unit
(** Charge [dt] microseconds of virtual work. *)
