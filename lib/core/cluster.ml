module K = Ert.Kernel
module T = Ert.Thread
module CS = Enet.Conversion_stats
module CM = Mobility.Cost_model
module E = Events

type protocol =
  | Enhanced
  | Original

type scheduler =
  | Heap
  | Scan

exception Heterogeneous_move_in_original_protocol

type node = {
  n_kernel : K.t;
  n_clock : Sim.Clock.t;  (* == K.clock n_kernel, cached for the hot loop *)
  n_conv : CS.t;
  mutable n_crashed : bool;
}

(* an in-flight Emerald location search, owned by the asking node *)
type search = {
  s_asker : int;
  mutable s_pending : Mobility.Marshal.message list;
  mutable s_awaiting : int;  (* probe answers still outstanding *)
}

type t = {
  nodes : node array;
  net : Enet.Netsim.t;
  repo : Mobility.Code_repository.t;
  proto : protocol;
  wire_impl : Enet.Wire.impl;
  sched : scheduler;
  engine : Engine.t;
  bus : E.bus;
  mutable events : int;
  mutable trace : (string -> unit) option;
  failures : (T.tid, string) Hashtbl.t;  (* threads lost to node crashes *)
  searches : (Ert.Oid.t, search) Hashtbl.t;
  gc_threshold : int option;  (* collect a node when its heap exceeds this *)
  gc_threshold_i : int;  (* same, resolved to max_int when absent (hot-loop form) *)
  mutable pinned : Ert.Oid.t list;  (* harness-held references: GC roots *)
  mutable collections : int;
  root_done : (T.tid, Ert.Value.t option) Hashtbl.t;
}

let emit t ev =
  E.emit t.bus ev;
  match t.trace with
  | None -> ()
  | Some f -> ( match E.legacy_string ev with Some s -> f s | None -> ())

(* (re)queue a scheduling slice for the node, at its current virtual
   time; the engine dedups, so this is cheap to call after anything
   that might have woken a segment *)
let ensure_step t i =
  if t.sched = Heap then begin
    let n = t.nodes.(i) in
    if (not n.n_crashed) && K.has_ready n.n_kernel then
      Engine.schedule t.engine ~at:(K.time_us n.n_kernel) (Engine.Step i)
  end

let create ?net_config ?(protocol = Enhanced) ?(wire_impl = Enet.Wire.Naive)
    ?(scheduler = Heap) ?quantum ?gc_threshold ~archs () =
  let n = List.length archs in
  let net = Enet.Netsim.create ?config:net_config ~n_nodes:n () in
  let repo = Mobility.Code_repository.create () in
  let nodes =
    Array.of_list
      (List.mapi
         (fun i arch ->
           let k = K.create ~node_id:i ~arch () in
           K.set_on_code_load k (fun ~class_index ->
               Mobility.Code_repository.record_fetch repo ~node:i ~class_index;
               K.charge_insns k CM.code_fetch_insns);
           K.set_quantum k quantum;
           { n_kernel = k; n_clock = K.clock k; n_conv = CS.create ();
             n_crashed = false })
         archs)
  in
  let t =
    { nodes; net; repo; proto = protocol; wire_impl; sched = scheduler;
      engine = Engine.create ~n_nodes:n (); bus = E.create_bus ~n_nodes:n;
      events = 0; trace = None;
      failures = Hashtbl.create 4; searches = Hashtbl.create 4;
      gc_threshold = gc_threshold;
      gc_threshold_i = (match gc_threshold with Some v -> v | None -> max_int);
      pinned = []; collections = 0;
      root_done = Hashtbl.create 4 }
  in
  Array.iter
    (fun node ->
      K.set_on_root_result node.n_kernel (fun ~thread r ->
          Hashtbl.replace t.root_done thread r))
    t.nodes;
  if scheduler = Heap then
    Enet.Netsim.set_on_arrival net (fun ~dst ~at ->
        Engine.schedule t.engine ~at (Engine.Deliver dst));
  t

let protocol t = t.proto
let scheduler t = t.sched
let n_nodes t = Array.length t.nodes
let kernel t i = t.nodes.(i).n_kernel
let kernels t = Array.map (fun n -> n.n_kernel) t.nodes
let arch_of t i = K.arch (kernel t i)
let repository t = t.repo
let network t = t.net
let engine t = t.engine
let conversion_stats t i = t.nodes.(i).n_conv
let set_trace t f = t.trace <- Some f
let subscribe_events t f = E.subscribe t.bus f
let node_counters t i = E.counters t.bus i
let total_counter t f = E.total t.bus f

let load_program t prog = Array.iter (fun n -> K.load_program n.n_kernel prog) t.nodes

let compile_and_load ?optimize t ~name source =
  let archs =
    List.sort_uniq
      (fun a b -> String.compare a.Isa.Arch.id b.Isa.Arch.id)
      (Array.to_list (Array.map (fun n -> K.arch n.n_kernel) t.nodes))
  in
  let prog = Emc.Compile.compile_exn ?optimize ~name ~archs source in
  load_program t prog;
  prog

let create_object t ~node ~class_name =
  let k = kernel t node in
  let prog = K.program k in
  match Emc.Compile.find_class prog class_name with
  | None -> invalid_arg (Printf.sprintf "Cluster.create_object: no class %s" class_name)
  | Some cc ->
    let addr = K.create_object k ~class_index:cc.Emc.Compile.cc_index in
    ignore (K.start_process_if_any k ~target_addr:addr);
    let oid = K.oid_at k addr in
    (* harness-held references pin their objects against automatic GC *)
    t.pinned <- oid :: t.pinned;
    ensure_step t node;
    oid

let where_is t oid =
  let found = ref None in
  Array.iteri
    (fun i n ->
      if !found = None && (not n.n_crashed) && K.find_object n.n_kernel oid <> None then
        found := Some i)
    t.nodes;
  !found

let spawn t ~node ~target ~op ~args =
  let k = kernel t node in
  match K.find_object k target with
  | None ->
    invalid_arg
      (Printf.sprintf "Cluster.spawn: %s is not resident on node %d"
         (Ert.Oid.to_string target) node)
  | Some addr ->
    let tid = K.spawn_root k ~target_addr:addr ~method_name:op ~args in
    ensure_step t node;
    tid

(* ----------------------------------------------------------------------- *)
(* node crashes (failure injection) *)

exception Thread_unavailable of string

let is_crashed t i = t.nodes.(i).n_crashed
let thread_failure t tid = Hashtbl.find_opt t.failures tid

(* abort every live segment of a thread: its continuation is gone *)
let abort_thread t tid ~reason =
  if not (Hashtbl.mem t.failures tid) then begin
    Hashtbl.replace t.failures tid reason;
    emit t (E.Ev_thread_lost { thread = tid; reason });
    Array.iter
      (fun n ->
        if not n.n_crashed then
          List.iter
            (fun (seg : T.segment) ->
              if seg.T.seg_thread = tid then begin
                seg.T.seg_status <- T.Dead;
                K.unregister_segment n.n_kernel seg
              end)
            (K.segments n.n_kernel))
      t.nodes
  end

(* a message could not be delivered: the sending thread's continuation is
   lost with it *)
let rec drop_message t (msg : Mobility.Marshal.message) ~reason =
  match msg with
  | Mobility.Marshal.M_invoke { thread; _ } -> abort_thread t thread ~reason
  | Mobility.Marshal.M_reply { thread; _ } -> abort_thread t thread ~reason
  | Mobility.Marshal.M_move payload ->
    List.iter
      (fun (s : Mobility.Mi_frame.mi_segment) ->
        abort_thread t s.Mobility.Mi_frame.ms_thread ~reason)
      payload.Mobility.Marshal.mp_segments
  | Mobility.Marshal.M_locate { obj } ->
    (* an unanswerable probe counts as a negative answer *)
    search_negative t obj
  | Mobility.Marshal.M_move_req _ | Mobility.Marshal.M_located _
  | Mobility.Marshal.M_start_process _ -> ()

and search_negative t obj =
  match Hashtbl.find_opt t.searches obj with
  | None -> ()
  | Some s ->
    s.s_awaiting <- s.s_awaiting - 1;
    if s.s_awaiting <= 0 then begin
      Hashtbl.remove t.searches obj;
      emit t (E.Ev_search_failed { obj });
      List.iter
        (fun msg ->
          drop_message t msg
            ~reason:
              (Printf.sprintf "object %s cannot be located" (Ert.Oid.to_string obj)))
        s.s_pending
    end

let crash_node t i =
  let victim = t.nodes.(i) in
  if not victim.n_crashed then begin
    emit t (E.Ev_crash { node = i });
    (* a thread whose ACTIVE segment (ready, running or blocked on a local
       monitor) dies with the node can never make progress: abort its
       remnants now.  A thread that merely had a dormant awaiting segment
       here keeps computing wherever its top segment lives — co-location
       pays off — and is aborted only when its return is eventually
       dropped at this dead node. *)
    let lost_threads =
      List.filter_map
        (fun (s : T.segment) ->
          match s.T.seg_status with
          | T.Ready _ | T.Running | T.Blocked_monitor _ -> Some s.T.seg_thread
          | T.Awaiting_reply _ | T.Dead -> None)
        (K.segments victim.n_kernel)
      |> List.sort_uniq compare
    in
    victim.n_crashed <- true;
    List.iter
      (fun tid -> abort_thread t tid ~reason:(Printf.sprintf "node %d crashed" i))
      lost_threads;
    (* searches owned by the dead node die with it; their pending
       invocations can never be routed *)
    let orphaned =
      Hashtbl.fold
        (fun obj s acc -> if s.s_asker = i then (obj, s) :: acc else acc)
        t.searches []
    in
    List.iter
      (fun (obj, s) ->
        Hashtbl.remove t.searches obj;
        List.iter
          (fun msg -> drop_message t msg ~reason:(Printf.sprintf "node %d crashed" i))
          s.s_pending)
      orphaned
  end

(* ----------------------------------------------------------------------- *)
(* message transmission with conversion accounting *)

let payload_shape (msg : Mobility.Marshal.message) =
  match msg with
  | Mobility.Marshal.M_move p ->
    let frames =
      List.fold_left
        (fun acc s -> acc + Mobility.Mi_frame.frame_count s)
        0 p.Mobility.Marshal.mp_segments
    in
    (List.length p.Mobility.Marshal.mp_objects, frames)
  | Mobility.Marshal.M_invoke _ | Mobility.Marshal.M_reply _
  | Mobility.Marshal.M_move_req _ | Mobility.Marshal.M_locate _
  | Mobility.Marshal.M_located _ | Mobility.Marshal.M_start_process _ -> (0, 0)

let check_protocol t ~src ~dst (msg : Mobility.Marshal.message) =
  match t.proto, msg with
  | Original, Mobility.Marshal.M_move _
    when not
           (Isa.Arch.equal_family (arch_of t src).Isa.Arch.family
              (arch_of t dst).Isa.Arch.family) ->
    (* the homogeneous system has no machine-independent format to go
       through: it works only between machines running the same object
       code (the two HP9000/300s of the paper qualify) *)
    raise Heterogeneous_move_in_original_protocol
  | (Original | Enhanced), _ -> ()

(* charge the conversion (or raw copy) work performed while encoding or
   decoding [bytes] of network data *)
let charge_conversion t ~node ~calls ~bytes =
  let k = t.nodes.(node).n_kernel in
  (match t.proto with
  | Enhanced -> K.charge_insns k (calls * CM.per_conversion_call_insns)
  | Original -> K.charge_insns k (bytes * CM.original_copy_insns_per_byte));
  if calls > 0 || bytes > 0 then emit t (E.Ev_conversion { node; calls; bytes })

let charge_translation t ~node (msg : Mobility.Marshal.message) =
  match t.proto with
  | Original -> ()
  | Enhanced ->
    let objects, frames = payload_shape msg in
    let k = t.nodes.(node).n_kernel in
    K.charge_insns k
      ((objects * CM.object_translate_insns) + (frames * CM.frame_translate_insns))

let wire_impl_of t =
  match t.proto with
  | Enhanced -> t.wire_impl
  | Original -> Enet.Wire.Optimized

let send_message t ~src (s : Mobility.Move.send) =
  let dst = s.Mobility.Move.snd_dest in
  let msg = s.Mobility.Move.snd_msg in
  if t.nodes.(dst).n_crashed then begin
    emit t
      (E.Ev_msg_lost { src; dst; desc = Mobility.Marshal.describe msg });
    drop_message t msg ~reason:(Printf.sprintf "node %d is down" dst)
  end
  else begin
  check_protocol t ~src ~dst msg;
  let k = t.nodes.(src).n_kernel in
  K.charge_us k CM.protocol_fixed_us;
  K.charge_insns k CM.protocol_send_insns;
  charge_translation t ~node:src msg;
  let stats = t.nodes.(src).n_conv in
  let calls0 = CS.calls stats and bytes0 = CS.bytes stats in
  let payload = Mobility.Marshal.encode ~impl:(wire_impl_of t) ~stats msg in
  charge_conversion t ~node:src ~calls:(CS.calls stats - calls0)
    ~bytes:(CS.bytes stats - bytes0);
  let arrival =
    Enet.Netsim.send t.net ~now_us:(K.time_us k) ~src ~dst ~payload
  in
  emit t
    (E.Ev_msg_send
       { time = K.time_us k; src; dst; desc = Mobility.Marshal.describe msg;
         bytes = String.length payload; arrives = arrival })
  end

(* Emerald's broadcast location search: probe every live node; park the
   unroutable message until an answer arrives *)
let start_search t ~asker obj msg =
  match Hashtbl.find_opt t.searches obj with
  | Some s -> s.s_pending <- msg :: s.s_pending
  | None ->
    let others = ref [] in
    Array.iteri
      (fun i n -> if i <> asker && not n.n_crashed then others := i :: !others)
      t.nodes;
    (match !others with
    | [] ->
      drop_message t msg
        ~reason:(Printf.sprintf "object %s cannot be located" (Ert.Oid.to_string obj))
    | probes ->
      emit t (E.Ev_search_start { node = asker; obj; probes = List.length probes });
      Hashtbl.replace t.searches obj
        { s_asker = asker; s_pending = [ msg ]; s_awaiting = List.length probes };
      List.iter
        (fun i ->
          send_message t ~src:asker
            { Mobility.Move.snd_dest = i; snd_msg = Mobility.Marshal.M_locate { obj } })
        probes)

(* under preemptive scheduling, segments may sit between bus stops; run
   them forward to well-defined states before any migration capture *)
let rec quiesce_node t i =
  let k = t.nodes.(i).n_kernel in
  if K.quantum k <> None then
    List.iter
      (fun seg ->
        if not (K.at_stop k seg) then
          List.iter (handle_outcall t ~src:i) (K.advance_to_stop k seg))
      (K.segments k)

and handle_outcall t ~src (oc : K.outcall) =
  let k = t.nodes.(src).n_kernel in
  let sends =
    match oc with
    | K.Oc_invoke { seg; target_oid; hint_node; callee_class; callee_method; args; stop_id = _ } ->
      K.charge_insns k CM.invoke_dispatch_insns;
      Mobility.Rpc.initiate_invoke ~k ~target_oid ~hint_node ~callee_class
        ~callee_method ~args ~caller_seg:seg.T.seg_id ~thread:seg.T.seg_thread
    | K.Oc_move { seg; obj_addr; dest_node } ->
      emit t
        (E.Ev_move_start
           { time = K.time_us k; node = src; obj = K.oid_at k obj_addr;
             dest = dest_node });
      quiesce_node t src;
      Mobility.Move.initiate ~k ~mover:seg ~obj_addr ~dest:dest_node
    | K.Oc_return { link; value; thread } ->
      if link.T.ln_node = src then begin
        (* same-node segment chain: deliver directly *)
        match K.find_segment k link.T.ln_seg with
        | Some seg ->
          K.deliver_result k seg value;
          []
        | None -> Mobility.Rpc.handle_reply ~k ~to_seg:link.T.ln_seg ~value ~thread
      end
      else [ Mobility.Rpc.initiate_return ~link ~value ~thread ]
    | K.Oc_start_process { target_oid; hint_node } ->
      let dest = if hint_node = src then Option.value (Ert.Oid.creator_node target_oid) ~default:0 else hint_node in
      [
        {
          Mobility.Move.snd_dest = dest;
          snd_msg = Mobility.Marshal.M_start_process { obj = target_oid; forwards = 0 };
        };
      ]
  in
  List.iter (send_message t ~src) sends

let deliver t ~dst (m : Enet.Netsim.message) =
  let k = t.nodes.(dst).n_kernel in
  K.set_time_us k m.Enet.Netsim.msg_arrives_at;
  K.charge_us k CM.protocol_fixed_us;
  K.charge_insns k CM.protocol_recv_insns;
  let stats = t.nodes.(dst).n_conv in
  let calls0 = CS.calls stats and bytes0 = CS.bytes stats in
  let msg =
    Mobility.Marshal.decode ~impl:(wire_impl_of t) ~stats m.Enet.Netsim.msg_payload
  in
  charge_conversion t ~node:dst ~calls:(CS.calls stats - calls0)
    ~bytes:(CS.bytes stats - bytes0);
  charge_translation t ~node:dst msg;
  emit t
    (E.Ev_msg_deliver
       { time = K.time_us k; node = dst; desc = Mobility.Marshal.describe msg });
  let sends =
    match msg with
    | Mobility.Marshal.M_invoke
        { target; callee_class; callee_method; args; reply; thread; forwards } -> (
      K.charge_insns k CM.invoke_dispatch_insns;
      match
        Mobility.Rpc.handle_invoke ~k ~target ~callee_class ~callee_method ~args ~reply
          ~thread ~forwards
      with
      | Mobility.Rpc.Routed sends -> sends
      | Mobility.Rpc.Unlocated msg ->
        start_search t ~asker:dst target msg;
        [])
    | Mobility.Marshal.M_reply { to_seg; value; thread } ->
      Mobility.Rpc.handle_reply ~k ~to_seg ~value ~thread
    | Mobility.Marshal.M_move_req { obj; dest; forwards } ->
      quiesce_node t dst;
      Mobility.Move.handle_move_req ~k ~obj ~dest ~forwards
    | Mobility.Marshal.M_move payload ->
      let mstats = Mobility.Move.apply_move k payload in
      K.charge_insns k (mstats.Mobility.Move.ap_frames * CM.relocation_insns_per_frame);
      emit t
        (E.Ev_move_finish
           { time = K.time_us k; node = dst;
             objects = mstats.Mobility.Move.ap_objects;
             segments = mstats.Mobility.Move.ap_segments;
             frames = mstats.Mobility.Move.ap_frames });
      []
    | Mobility.Marshal.M_start_process { obj; forwards } -> (
      match K.find_object k obj with
      | Some addr ->
        ignore (K.start_process_if_any k ~target_addr:addr);
        []
      | None -> (
        let msg = Mobility.Marshal.M_start_process { obj; forwards = forwards + 1 } in
        let hop =
          if forwards >= 4 then None
          else
            Option.map (fun addr -> K.proxy_hint k addr) (K.proxy_of k obj)
        in
        match hop with
        | Some node when node <> dst ->
          [ { Mobility.Move.snd_dest = node; snd_msg = msg } ]
        | Some _ | None ->
          start_search t ~asker:dst obj msg;
          []))
    | Mobility.Marshal.M_locate { obj } ->
      let found = K.find_object k obj <> None in
      [
        {
          Mobility.Move.snd_dest = m.Enet.Netsim.msg_src;
          snd_msg = Mobility.Marshal.M_located { obj; found };
        };
      ]
    | Mobility.Marshal.M_located { obj; found } -> (
      match Hashtbl.find_opt t.searches obj with
      | None -> [] (* a late or duplicate answer *)
      | Some s ->
        if found then begin
          let host = m.Enet.Netsim.msg_src in
          Hashtbl.remove t.searches obj;
          emit t (E.Ev_search_found { obj; node = host });
          (* refresh the local forwarding hint *)
          let addr = K.ensure_ref k obj in
          K.set_proxy_hint k ~addr ~node:host;
          List.map
            (fun msg -> { Mobility.Move.snd_dest = host; snd_msg = msg })
            s.s_pending
        end
        else begin
          search_negative t obj;
          []
        end)
  in
  List.iter (send_message t ~src:dst) sends

(* ----------------------------------------------------------------------- *)
(* the discrete-event loop *)

(* automatic collection: between events every segment is parked at a bus
   stop, so the templates identify every pointer *)
let do_collect t i =
  let k = t.nodes.(i).n_kernel in
  let stats = Ert.Gc.collect ~extra_roots:t.pinned k in
  t.collections <- t.collections + 1;
  K.charge_insns k (2000 + (stats.Ert.Gc.gc_live * 40));
  emit t
    (E.Ev_gc
       { time = K.time_us k; node = i; swept = stats.Ert.Gc.gc_swept;
         live = stats.Ert.Gc.gc_live; bytes_freed = stats.Ert.Gc.gc_bytes_freed })

let over_gc_threshold t i =
  Ert.Heap.live_bytes (K.heap (t.nodes.(i).n_kernel)) > t.gc_threshold_i

(* --- the seed's O(nodes) selection scan, kept as the [Scan] scheduler
   (the heap engine is cross-checked against it, and the scaling
   benchmark measures the difference) --- *)

type scan_event =
  | E_deliver of int * float
  | E_step of int * float

let next_event_scan t =
  let best = ref None in
  let better time =
    match !best with
    | None -> true
    | Some (E_deliver (_, bt) | E_step (_, bt)) -> time < bt
  in
  (* message deliveries first on ties (lower effective time wins) *)
  Array.iteri
    (fun i n ->
      match Enet.Netsim.next_arrival_at t.net ~dst:i with
      | Some arrival ->
        (* packets addressed to a dead interface still need draining *)
        let eff = Float.max arrival (K.time_us n.n_kernel) in
        if better eff then best := Some (E_deliver (i, eff))
      | None -> ())
    t.nodes;
  Array.iteri
    (fun i n ->
      if (not n.n_crashed) && K.has_ready n.n_kernel then begin
        let time = K.time_us n.n_kernel in
        if better time then best := Some (E_step (i, time))
      end)
    t.nodes;
  !best

let exec_deliver t i eff =
  t.events <- t.events + 1;
  match Enet.Netsim.receive t.net ~dst:i ~now_us:eff with
  | Some m when t.nodes.(i).n_crashed ->
    let stats = CS.create () in
    let msg =
      Mobility.Marshal.decode ~impl:(wire_impl_of t) ~stats m.Enet.Netsim.msg_payload
    in
    emit t (E.Ev_msg_drop { node = i; desc = Mobility.Marshal.describe msg });
    drop_message t msg ~reason:(Printf.sprintf "node %d is down" i)
  | Some m -> deliver t ~dst:i m
  | None -> ()

let exec_step t i ~time =
  t.events <- t.events + 1;
  let k = t.nodes.(i).n_kernel in
  E.emit_step t.bus ~node:i ~time;
  match K.step k with
  | [] -> ()
  | outs -> List.iter (handle_outcall t ~src:i) outs

let step_once_scan t =
  match next_event_scan t with
  | None -> false
  | Some (E_deliver (i, eff)) ->
    exec_deliver t i eff;
    true
  | Some (E_step (i, time)) ->
    exec_step t i ~time;
    if over_gc_threshold t i then do_collect t i;
    true

(* --- the heap engine loop.  Entries are revalidated when popped: a
   node's clock may have advanced past its queued step, or a message
   queue's head may now arrive effectively later; stale entries are
   rescheduled at the corrected (always later) time and the pop costs
   nothing.  Executed events therefore come out in exactly the order the
   scan would have chosen. *)

(* Harness code may mutate a kernel behind the cluster's back (tests
   drive [Mobility.Checkpoint.restore] on a kernel directly, for
   instance), so an empty heap does not yet prove quiescence: rescan
   once and reseed anything runnable.  This is the only O(nodes) scan
   left, and it runs once per drain, not per event. *)
let reseed t =
  let any = ref false in
  Array.iteri
    (fun i n ->
      if (not n.n_crashed) && K.has_ready n.n_kernel then begin
        Engine.schedule t.engine ~at:(K.time_us n.n_kernel) (Engine.Step i);
        any := true
      end;
      match Enet.Netsim.next_arrival_at t.net ~dst:i with
      | Some a ->
        Engine.schedule t.engine
          ~at:(Float.max a (K.time_us n.n_kernel))
          (Engine.Deliver i);
        any := true
      | None -> ())
    t.nodes;
  !any

let rec step_once_heap t =
  match Engine.take t.engine with
  | None -> if reseed t then step_once_heap t else false
  | Some (Engine.Gc i) ->
    let n = t.nodes.(i) in
    if n.n_crashed || not (over_gc_threshold t i) then step_once_heap t
    else begin
      do_collect t i;
      ensure_step t i;
      true
    end
  | Some (Engine.Step i) ->
    let n = t.nodes.(i) in
    if n.n_crashed || not (K.has_ready n.n_kernel) then step_once_heap t
    else begin
      let tm = Engine.now t.engine in
      let now = n.n_clock.Sim.Clock.now in
      if now > tm then begin
        Engine.reschedule t.engine ~at:now (Engine.Step i);
        step_once_heap t
      end
      else begin
        exec_step t i ~time:tm;
        (* the slice advanced the node clock; read it once for both the
           collection check and the follow-on step *)
        let at = n.n_clock.Sim.Clock.now in
        if over_gc_threshold t i then Engine.schedule t.engine ~at (Engine.Gc i);
        if (not n.n_crashed) && K.has_ready n.n_kernel then
          Engine.schedule t.engine ~at (Engine.Step i);
        true
      end
    end
  | Some (Engine.Deliver i) ->
    let n = t.nodes.(i) in
    (match Enet.Netsim.next_arrival_at t.net ~dst:i with
    | None -> step_once_heap t
    | Some arrival ->
      let tm = Engine.now t.engine in
      let eff = Float.max arrival n.n_clock.Sim.Clock.now in
      if eff > tm then begin
        Engine.reschedule t.engine ~at:eff (Engine.Deliver i);
        step_once_heap t
      end
      else begin
        exec_deliver t i eff;
        (match Enet.Netsim.next_arrival_at t.net ~dst:i with
        | Some a ->
          Engine.schedule t.engine
            ~at:(Float.max a (K.time_us n.n_kernel))
            (Engine.Deliver i)
        | None -> ());
        ensure_step t i;
        true
      end)

let step_once t =
  match t.sched with
  | Heap -> step_once_heap t
  | Scan -> step_once_scan t

let run ?(max_events = 2_000_000) t =
  let budget = ref max_events in
  while step_once t do
    decr budget;
    if !budget <= 0 then failwith "Cluster.run: event budget exceeded (livelock?)"
  done

(* checkpointing: quiesce first so every segment is parked at a stop *)
let checkpoint_thread t ~node tid =
  quiesce_node t node;
  let image = Mobility.Checkpoint.suspend t.nodes.(node).n_kernel ~thread:tid in
  ensure_step t node;
  image

let restore_thread t ~node image =
  Mobility.Checkpoint.restore t.nodes.(node).n_kernel image;
  ensure_step t node

let result t tid =
  match Hashtbl.find_opt t.root_done tid with
  | Some r -> Some r
  | None ->
    (* fallback for results recorded before the cluster's callback was
       installed (kernels driven outside the cluster) *)
    let found = ref None in
    Array.iter
      (fun n ->
        match K.root_result n.n_kernel tid with
        | Some r -> found := Some r
        | None -> ())
      t.nodes;
    !found

let run_until_result ?(max_events = 2_000_000) t tid =
  let budget = ref max_events in
  (* probing two hash tables before every event is measurable in the hot
     loop; both tables only ever grow, so O(1) length checks gate the
     probes and the common no-news iteration touches neither *)
  let probe () =
    match Hashtbl.find_opt t.root_done tid with
    | Some r -> Some r
    | None ->
      if Hashtbl.mem t.failures tid then
        raise (Thread_unavailable (Hashtbl.find t.failures tid));
      None
  in
  let rec go ~done_n ~fail_n =
    let dn = Hashtbl.length t.root_done and fn = Hashtbl.length t.failures in
    let hit = if dn <> done_n || fn <> fail_n then probe () else None in
    match hit with
    | Some r -> r
    | None ->
      if not (step_once t) then
        failwith "Cluster.run_until_result: cluster quiescent without a result";
      decr budget;
      if !budget <= 0 then failwith "Cluster.run_until_result: event budget exceeded";
      go ~done_n:dn ~fail_n:fn
  in
  go ~done_n:(-1) ~fail_n:(-1)

let global_time_us t =
  Array.fold_left (fun acc n -> Float.max acc (K.time_us n.n_kernel)) 0.0 t.nodes

let output t ~node = K.output (kernel t node)

let outputs t =
  String.concat "" (Array.to_list (Array.map (fun n -> K.output n.n_kernel) t.nodes))

let events_processed t = t.events
let collections t = t.collections
