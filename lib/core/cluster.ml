module K = Ert.Kernel
module T = Ert.Thread
module CS = Enet.Conversion_stats
module CM = Mobility.Cost_model
module E = Events

type protocol =
  | Enhanced
  | Original

type scheduler =
  | Heap
  | Scan

(* The location subsystem (DESIGN.md §14).  [Loc_off] is the seed
   behaviour: forwarding proxies only, broadcast search on exhaustion —
   and bit-identical traffic, because every new message tag and event
   below is produced only when a mode is enabled.  [Loc_collapse] adds
   lazy chain collapse: forwarded invokes carry their hop trail and the
   node that finally hosts the target rewrites every traversed proxy.
   [Loc_directory] adds the hash-partitioned location directory on top:
   migrations publish their destination to the object's home shard, and
   an exhausted proxy chain asks the home shard before falling back to
   the broadcast search. *)
type location =
  | Loc_off
  | Loc_collapse
  | Loc_directory

(* Which collector tier automatic collection uses (DESIGN.md §17).
   [Gc_stw] is the seed behaviour — one stop-the-world mark-sweep per
   threshold crossing, byte-identical traces.  [Gc_incremental] runs the
   same collection as a tri-color cycle of bounded increments
   interleaved with the event loop, charged per increment. *)
type gc_mode =
  | Gc_stw
  | Gc_incremental

exception Heterogeneous_move_in_original_protocol

type node = {
  mutable n_kernel : K.t;  (* replaced wholesale on restart after a crash *)
  n_clock : Sim.Clock.t;  (* == K.clock n_kernel, cached for the hot loop *)
  n_conv : CS.t;
  mutable n_crashed : bool;
}

(* an in-flight Emerald location search, owned by the asking node *)
type search = {
  s_asker : int;
  mutable s_pending : Mobility.Marshal.message list;
  mutable s_awaiting : int;  (* probe answers still outstanding *)
}

(* ----------------------------------------------------------------------- *)
(* the reliable transport (installed only for a non-trivial fault plan)

   With an injector on the wire, frames can be dropped, duplicated or
   delayed, so protocol messages travel in an envelope: a 1-byte tag and
   a 4-byte big-endian per-sender sequence number in front of the
   marshalled payload.  Every data frame is acknowledged (header-only
   ack frame, re-acked on duplicates); the sender retransmits unacked
   messages on engine-scheduled timeouts with bounded exponential
   backoff, and the receiver suppresses (src, seq) pairs it has already
   delivered — exactly-once delivery, or a reported loss after the
   retry budget is spent.  The header is framing, not data: it is
   charged no conversion work, matching the Ethernet/IP framing bytes
   Netsim already accounts.

   Without a fault plan none of this exists: messages travel bare, no
   acks are sent, and the event sequence is bit-identical to a build
   without the fault subsystem. *)

type pending_send = {
  p_seq : int;
  p_dst : int;
  p_frame : string;  (* the enveloped wire frame, cached for retransmission *)
  p_msg : Mobility.Marshal.message;  (* for loss reporting on give-up *)
  p_desc : string;
  p_span : (int * int * float) option;  (* move-span tag, kept across retries *)
  mutable p_attempts : int;  (* transmissions so far *)
  mutable p_next_at : float;  (* retransmission deadline *)
}

let tr_rto_us = 2_000.0 (* initial retransmission timeout *)
let tr_rto_max_us = 32_000.0 (* backoff cap *)
let tr_max_attempts = 8 (* transmissions before the loss is reported *)

let put_seq b off seq =
  Bytes.set b off (Char.chr ((seq lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((seq lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((seq lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (seq land 0xff))

let get_seq v off =
  (Char.code (Enet.Wire.view_get v off) lsl 24)
  lor (Char.code (Enet.Wire.view_get v (off + 1)) lsl 16)
  lor (Char.code (Enet.Wire.view_get v (off + 2)) lsl 8)
  lor Char.code (Enet.Wire.view_get v (off + 3))

let data_frame ~seq payload =
  let b = Bytes.create (5 + String.length payload) in
  Bytes.set b 0 '\001';
  put_seq b 1 seq;
  Bytes.blit_string payload 0 b 5 (String.length payload);
  Bytes.unsafe_to_string b

let ack_frame seq =
  let b = Bytes.create 5 in
  Bytes.set b 0 '\002';
  put_seq b 1 seq;
  Bytes.unsafe_to_string b

type frame =
  | Frame_data of int * Enet.Wire.view
  | Frame_ack of int

let unwrap_frame v =
  match Enet.Wire.view_get v 0 with
  | '\001' ->
    Frame_data (get_seq v 1, Enet.Wire.sub_view v ~pos:5 ~len:(Enet.Wire.view_length v - 5))
  | '\002' -> Frame_ack (get_seq v 1)
  | _ -> invalid_arg "Cluster: corrupt transport frame"

type chaos_act =
  | Chaos_crash
  | Chaos_restart

(* ----------------------------------------------------------------------- *)
(* sharded execution (DESIGN.md §11)

   The node range is split into contiguous shards (Shard.plan), each
   with its own engine heap.  Two execution regimes share the shard
   structure:

   - *Sequential merge* ([step_once]): repeatedly pop the globally
     earliest event across the per-shard engines, comparing heads by
     (time, rank).  The engine rank is node-major, so this reproduces
     the single-heap order exactly — [--shards 1] degenerates to the
     one-engine loop bit-for-bit, and any shard count executes the
     identical event sequence.  All semantics (fault plans, reliable
     transport, invariant probing) run in this regime.

   - *Parallel windows* ([run] only, when [parallel_ok]): shards
     execute concurrently inside a conservative Chandy–Misra window
     [W, W + lookahead) where the lookahead is the network latency —
     the minimum delay any cross-node interaction can have.  Inside a
     window a shard touches only its own nodes' state; sends are
     posted to a per-shard Netsim outbox and flushed at the barrier in
     canonical (time, rank, seq) order, reproducing bit-identically
     the medium reservation, sequence numbers and arrival times of a
     sequential run (every arrival lands at or past the horizon, so
     deferral is unobservable in-window).  Bus events are buffered
     per shard with their generating event's key and replayed merged
     at the barrier; with no subscribers and no trace hook the buffer
     is skipped and counters (per node, shard-owned) are updated
     directly.  The rare in-window thread abort (a failed location
     search) is deferred to the barrier too; its thread's segments
     are all parked awaiting a reply that will never come, so the
     deferral is unobservable. *)

type dsend = {
  ds_entry : Enet.Netsim.Outbox.entry;
  ds_time : float;  (* sender's virtual clock at the send *)
  ds_src : int;
  ds_dst : int;
  ds_desc : string;
  ds_bytes : int;
  (* transfer-span identity (own id, root move-span id, arch pair) when
     span tracing is on and the send carries a move; the barrier emits
     the span once the flush has computed the arrival time *)
  ds_span : (Obs.Span.id * Obs.Span.id * string) option;
}

type buffered =
  | B_ev of E.t
  | B_send of dsend  (* Ev_msg_send whose arrival the barrier fills in *)

type shard = {
  sh_id : int;
  sh_engine : Engine.t;
  sh_searches : (Ert.Oid.t, search) Hashtbl.t;  (* keyed by asker's shard *)
  sh_root_done : (T.tid, Ert.Value.t option) Hashtbl.t;
  mutable sh_events : int;  (* events executed in parallel windows *)
  mutable sh_collections : int;
  (* window-transient state, reset at each barrier *)
  sh_outbox : Enet.Netsim.Outbox.t;
  mutable sh_buf : (float * int * int * buffered) list;
  mutable sh_aborts : (float * int * int * int * T.tid * string) list;
      (* key, context node, thread, reason *)
  mutable sh_seq : int;  (* per-window emission/posting counter *)
  mutable sh_key_time : float;  (* generating event's key, set per pop *)
  mutable sh_key_rank : int;
  mutable sh_win_busy_ns : float;  (* host time in the current window *)
}

type t = {
  nodes : node array;
  net : Enet.Netsim.t;
  repo : Mobility.Code_repository.t;
  proto : protocol;
  wire_impl : Enet.Wire.impl;
  sched : scheduler;
  splan : Shard.plan;
  owner : int array;  (* node -> shard, cached from [splan] *)
  engines : Engine.t array;  (* one per shard *)
  shards : shard array;
  lookahead : float;  (* window width = min network latency *)
  mutable win_active : bool;  (* inside a parallel window *)
  mutable win_buffering : bool;  (* window events buffered for replay *)
  bus : E.bus;
  mutable events : int;
  mutable trace : (string -> unit) option;
  failures : (T.tid, string) Hashtbl.t;  (* threads lost to node crashes *)
  gc_threshold : int option;  (* collect a node when its heap exceeds this *)
  gc_threshold_i : int;  (* same, resolved to max_int when absent (hot-loop form) *)
  gc_mode : gc_mode;
  gc_budget : int;  (* pointer slots per incremental increment *)
  gcs : Ert.Gc.cycle option array;
      (* per-node in-progress incremental mark cycle.  Soft state, like
         the location directory: a crash discards it (Gc.abort) and the
         next threshold crossing starts a fresh cycle from scratch. *)
  mutable pinned : Ert.Oid.t list;  (* harness-held references: GC roots *)
  mutable collections : int;
  (* --- fault injection; [reliable] = a non-trivial plan is installed --- *)
  faults : Fault.Plan.t;
  reliable : bool;
  frng : Fault.Rng.t;  (* the plan's wire-fault stream *)
  next_seq : int array;  (* per-node transport sequence numbers *)
  outstanding : (int, pending_send) Hashtbl.t array;  (* unacked, per sender *)
  seen : (int * int, unit) Hashtbl.t array;  (* (src, seq) delivered, per receiver *)
  chaos : (float * chaos_act) list array;  (* per-node schedule, sorted by time *)
  quantum : int option;  (* kept to configure replacement kernels on restart *)
  opt_levels : Emc.Opt.level array;
      (* per-node code-instance selection, kept (like [quantum]) to
         configure replacement kernels on restart; mutated only by
         [set_opt_level], which the kernel refuses once code is loaded *)
  async_migration : bool;
      (* overlap migration capture with execution-to-the-stop: refund the
         smaller of the quiesce and capture costs against the source
         clock (DESIGN.md §13); off by default, preserving byte-identical
         timing with earlier versions *)
  (* --- periodic load balancing at fixed virtual times; fires between
     events (sequentially) or between windows (sharded), so the schedule
     is independent of the shard count --- *)
  mutable balancer : (unit -> unit) option;
  mutable balance_every : float;
  mutable balance_at : float;
  mutable last_prog : Emc.Compile.program option;
  inv_last_times : float array;  (* monotonicity state for check_invariants *)
  (* --- span tracing (DESIGN.md §12); all off and alloc-free until
     [enable_spans]/[attach_profile] flips [spans_on] --- *)
  mutable spans_on : bool;
  span_seq : int array;  (* per-node span id allocator (shard-owned) *)
  move_t0 : float array;  (* per-node start time of the move being captured *)
  rpc_open : (T.tid * int, string * float) Hashtbl.t array;
      (* per caller node: (thread, caller seg) -> (arch pair, t0) of the
         round trip in flight; opened at the original M_invoke send,
         closed when the M_reply is delivered back at the caller *)
  (* --- the location subsystem (DESIGN.md §14); all state is inert when
     [location = Loc_off] --- *)
  location : location;
  partition : Loc.Partition.t;  (* OID -> home-shard map (stateless) *)
  dirs : Loc.Directory.t array;
      (* node i's directory shard: entries for OIDs whose home is i.
         Mutated only while executing node i's events (or host-side
         between events), so parallel windows touch disjoint shards. *)
  dir_waits : (Ert.Oid.t, Mobility.Marshal.message list) Hashtbl.t array;
      (* per asker node: messages parked awaiting that node's in-flight
         M_dir_lookup, newest first *)
}

let n_shards t = Array.length t.shards
let shard_of t i = t.owner.(i)
let eng t i = t.engines.(t.owner.(i))

let emit_direct t ev =
  E.emit t.bus ev;
  match t.trace with
  | None -> ()
  | Some f -> ( match E.legacy_string ev with Some s -> f s | None -> ())

(* Emit an event attributed to [node].  Inside a parallel window the
   event is buffered with the generating event's merge key (or, with
   nobody listening, counted directly — the node's counters are owned
   by the executing shard); otherwise it goes straight to the bus. *)
let emit t ~node ev =
  if t.win_active then begin
    let sh = t.shards.(t.owner.(node)) in
    if t.win_buffering then begin
      sh.sh_seq <- sh.sh_seq + 1;
      sh.sh_buf <- (sh.sh_key_time, sh.sh_key_rank, sh.sh_seq, B_ev ev) :: sh.sh_buf
    end
    else E.emit t.bus ev
  end
  else emit_direct t ev

(* --- span tracing helpers (DESIGN.md §12) ---

   Spans measure virtual-time intervals of the migration pipeline; they
   read clocks, never charge them, so enabling tracing cannot perturb
   simulated times.  Span ids are (node, per-node counter) pairs: the
   counter is bumped only while executing events of the owning node,
   which lives in exactly one shard, so allocation is race-free and the
   id stream is independent of the shard count. *)

let alloc_span_id t node =
  let s = t.span_seq.(node) + 1 in
  t.span_seq.(node) <- s;
  { Obs.Span.id_node = node; id_seq = s }

let arch_pair t ~src ~dst =
  (K.arch t.nodes.(src).n_kernel).Isa.Arch.id
  ^ "->"
  ^ (K.arch t.nodes.(dst).n_kernel).Isa.Arch.id

(* allocate an id and publish a closed span on the bus, attributed to
   [node] (so window replay merges it at its canonical position) *)
let emit_span t ~node ?parent ?(bytes = 0) ~pair ~name ~t0 ~t1 () =
  let id = alloc_span_id t node in
  emit t ~node
    (E.Ev_span
       { Obs.Span.name; node; arch_pair = pair; t_start_us = t0; t_end_us = t1;
         id; parent; bytes })

let enable_spans t = t.spans_on <- true

let attach_profile t p =
  enable_spans t;
  E.subscribe t.bus (function
    | E.Ev_span s -> Obs.Profile.add p s
    | _ -> ())

(* (re)queue a scheduling slice for the node, at its current virtual
   time; the engine dedups, so this is cheap to call after anything
   that might have woken a segment *)
let ensure_step t i =
  if t.sched = Heap then begin
    let n = t.nodes.(i) in
    if (not n.n_crashed) && K.has_ready n.n_kernel then
      Engine.schedule (eng t i) ~at:(K.time_us n.n_kernel) (Engine.Step i)
  end

(* (re)queue a wake at the node's earliest timed-wait deadline; the
   engine dedups, and the pop handler revalidates against the kernel, so
   a stale or superseded entry costs one no-op pop.  Timed waits are a
   Heap-scheduler feature, like fault plans. *)
let ensure_wake t i =
  if t.sched = Heap then begin
    let n = t.nodes.(i) in
    if not n.n_crashed then
      match K.next_timeout n.n_kernel with
      | Some d -> Engine.schedule (eng t i) ~at:d (Engine.Wake i)
      | None -> ()
  end

let create ?net_config ?(protocol = Enhanced) ?(wire_impl = Enet.Wire.Naive)
    ?(scheduler = Heap) ?(shards = 1) ?quantum ?(opt_level = Emc.Opt.O0)
    ?gc_threshold ?(gc_mode = Gc_stw) ?(gc_budget = 4096)
    ?(faults = Fault.Plan.empty) ?(async_migration = false)
    ?(location = Loc_off) ~archs () =
  let n = List.length archs in
  let reliable = not (Fault.Plan.is_trivial faults) in
  if reliable && scheduler <> Heap then
    invalid_arg "Cluster.create: fault plans require the Heap scheduler";
  if gc_mode = Gc_incremental && scheduler <> Heap then
    invalid_arg "Cluster.create: incremental GC requires the Heap scheduler";
  if gc_budget < 1 then invalid_arg "Cluster.create: gc_budget must be positive";
  if shards < 1 then invalid_arg "Cluster.create: need at least one shard";
  if shards > 1 && scheduler <> Heap then
    invalid_arg "Cluster.create: sharding requires the Heap scheduler";
  let net = Enet.Netsim.create ?config:net_config ~n_nodes:n () in
  let repo = Mobility.Code_repository.create ~n_nodes:n () in
  let nodes =
    Array.of_list
      (List.mapi
         (fun i arch ->
           let k = K.create ~node_id:i ~arch () in
           K.set_on_code_load k (fun ~class_index ->
               Mobility.Code_repository.record_fetch repo ~node:i ~class_index;
               K.charge_insns k CM.code_fetch_insns);
           K.set_quantum k quantum;
           K.set_dispatch_cache k
             (Mobility.Code_repository.dispatch_cache repo ~node:i);
           K.set_bridge_cache k
             (Mobility.Code_repository.bridge_cache repo ~node:i);
           K.set_opt_level k opt_level;
           { n_kernel = k; n_clock = K.clock k; n_conv = CS.create ();
             n_crashed = false })
         archs)
  in
  let splan = Shard.plan ~n_nodes:n ~shards in
  let d = Shard.n_shards splan in
  let mk_shard s =
    {
      sh_id = s;
      sh_engine = Engine.create ~n_nodes:n ();
      sh_searches = Hashtbl.create 4;
      sh_root_done = Hashtbl.create 4;
      sh_events = 0;
      sh_collections = 0;
      sh_outbox = Enet.Netsim.Outbox.create ();
      sh_buf = [];
      sh_aborts = [];
      sh_seq = 0;
      sh_key_time = 0.0;
      sh_key_rank = 0;
      sh_win_busy_ns = 0.0;
    }
  in
  let shard_ctxs = Array.init d mk_shard in
  let t =
    { nodes; net; repo; proto = protocol; wire_impl; sched = scheduler;
      splan; owner = Array.init n (Shard.owner splan);
      engines = Array.map (fun sh -> sh.sh_engine) shard_ctxs;
      shards = shard_ctxs;
      lookahead =
        (Enet.Netsim.config net).Enet.Netsim.latency_us;
      win_active = false; win_buffering = false;
      bus = E.create_bus ~n_nodes:n;
      events = 0; trace = None;
      failures = Hashtbl.create 4;
      gc_threshold = gc_threshold;
      gc_threshold_i = (match gc_threshold with Some v -> v | None -> max_int);
      gc_mode; gc_budget;
      gcs = Array.make n None;
      pinned = []; collections = 0;
      faults; reliable;
      frng = Fault.Rng.create ~seed:faults.Fault.Plan.pl_seed;
      next_seq = Array.make n 0;
      outstanding = Array.init n (fun _ -> Hashtbl.create 8);
      seen = Array.init n (fun _ -> Hashtbl.create 64);
      chaos = Array.make n [];
      quantum;
      opt_levels = Array.make n opt_level;
      async_migration;
      balancer = None; balance_every = infinity; balance_at = infinity;
      last_prog = None;
      inv_last_times = Array.make n 0.0;
      spans_on = false;
      span_seq = Array.make n 0;
      move_t0 = Array.make n Float.nan;
      rpc_open = Array.init n (fun _ -> Hashtbl.create 8);
      location;
      partition = Loc.Partition.create ~n_nodes:n;
      dirs = Array.init n (fun _ -> Loc.Directory.create ());
      dir_waits = Array.init n (fun _ -> Hashtbl.create 4) }
  in
  E.attach_shards t.bus d;
  Array.iteri
    (fun i node ->
      let done_tbl = t.shards.(t.owner.(i)).sh_root_done in
      K.set_on_root_result node.n_kernel (fun ~thread r ->
          Hashtbl.replace done_tbl thread r))
    t.nodes;
  if scheduler = Heap then
    Enet.Netsim.set_on_arrival net (fun ~dst ~at ->
        Engine.schedule (eng t dst) ~at (Engine.Deliver dst));
  if reliable then begin
    Enet.Netsim.set_injector net (fun ~src ~dst ~now_us ->
        Fault.Plan.wire_fault faults ~rng:t.frng ~src ~dst ~now_us);
    Enet.Netsim.set_on_fault net (fun ~src ~dst f ->
        let kind =
          match f with
          | Enet.Netsim.Fault_drop -> "drop"
          | Enet.Netsim.Fault_dup extra -> Printf.sprintf "dup (+%.0fus)" extra
          | Enet.Netsim.Fault_delay extra -> Printf.sprintf "delay (+%.0fus)" extra
        in
        emit t ~node:src
          (E.Ev_fault
             { time = K.time_us t.nodes.(src).n_kernel; src; dst; kind }));
    (* compile the plan's crash/restart windows into per-node schedules
       and seed the engine with each node's first window *)
    List.iter
      (fun (c : Fault.Plan.chaos) ->
        let i = c.Fault.Plan.ch_node in
        if i < 0 || i >= n then
          invalid_arg "Cluster.create: fault plan crashes a node out of range";
        let acts =
          (c.Fault.Plan.ch_crash_at_us, Chaos_crash)
          :: (match c.Fault.Plan.ch_restart_at_us with
             | Some r -> [ (r, Chaos_restart) ]
             | None -> [])
        in
        t.chaos.(i) <-
          List.sort (fun (a, _) (b, _) -> Float.compare a b) (t.chaos.(i) @ acts))
      faults.Fault.Plan.pl_chaos;
    Array.iteri
      (fun i acts ->
        match acts with
        | (at, _) :: _ -> Engine.schedule (eng t i) ~at (Engine.Chaos i)
        | [] -> ())
      t.chaos
  end;
  t

let protocol t = t.proto
let scheduler t = t.sched
let gc_mode t = t.gc_mode
let gc_in_progress t i = t.gcs.(i) <> None
let location t = t.location
let directory_home t oid = Loc.Partition.home t.partition oid

(* host-side directory inspection (no hit/miss accounting) *)
let directory_entry t oid =
  match Loc.Directory.peek t.dirs.(directory_home t oid) oid with
  | Some e -> Some e.Loc.Directory.le_node
  | None -> None

(* summed over all shards: (updates, stale drops, hits, misses) *)
let directory_stats t =
  Array.fold_left
    (fun (u, s, h, m) d ->
      ( u + Loc.Directory.updates d,
        s + Loc.Directory.stale_dropped d,
        h + Loc.Directory.hits d,
        m + Loc.Directory.misses d ))
    (0, 0, 0, 0) t.dirs
let n_nodes t = Array.length t.nodes
let kernel t i = t.nodes.(i).n_kernel
let kernels t = Array.map (fun n -> n.n_kernel) t.nodes
let arch_of t i = K.arch (kernel t i)
let repository t = t.repo
let network t = t.net
let engine t = t.engines.(0)
let engines t = t.engines
let conversion_stats t i = t.nodes.(i).n_conv
let fault_plan t = t.faults
let set_trace t f = t.trace <- Some f
let bus t = t.bus
let subscribe_events t f = E.subscribe t.bus f
let node_counters t i = E.counters t.bus i
let total_counter t f = E.total t.bus f

let load_program t prog =
  t.last_prog <- Some prog;  (* replayed into replacement kernels on restart *)
  Mobility.Code_repository.set_program t.repo prog;
  Array.iter (fun n -> K.load_program n.n_kernel prog) t.nodes

let compile_and_load ?optimize ?levels t ~name source =
  let archs =
    List.sort_uniq
      (fun a b -> String.compare a.Isa.Arch.id b.Isa.Arch.id)
      (Array.to_list (Array.map (fun n -> K.arch n.n_kernel) t.nodes))
  in
  (* with no explicit instance list, compile whatever the nodes are
     configured to run: the [?optimize] level first (the primary, so
     byte-for-byte compatible with the old single-instance path), then
     any other per-node levels.  When every node wants the primary this
     collapses to exactly the old call. *)
  let levels =
    match levels with
    | Some _ -> levels
    | None ->
      let primary = Emc.Opt.of_optimize (optimize = Some true) in
      if Array.for_all (Emc.Opt.equal primary) t.opt_levels then None
      else Some (primary :: Array.to_list t.opt_levels)
  in
  let prog = Emc.Compile.compile_exn ?optimize ?levels ~name ~archs source in
  load_program t prog;
  prog

let set_opt_level t ~node level =
  if node < 0 || node >= Array.length t.nodes then
    invalid_arg "Cluster.set_opt_level: node id out of range";
  K.set_opt_level t.nodes.(node).n_kernel level;  (* refuses if code is loaded *)
  t.opt_levels.(node) <- level

let opt_level_of t node = K.opt_level t.nodes.(node).n_kernel
let bridge_stats t = Mobility.Code_repository.bridge_stats t.repo

let create_object t ~node ~class_name =
  let k = kernel t node in
  let prog = K.program k in
  match Emc.Compile.find_class prog class_name with
  | None -> invalid_arg (Printf.sprintf "Cluster.create_object: no class %s" class_name)
  | Some cc ->
    let addr = K.create_object k ~class_index:cc.Emc.Compile.cc_index in
    ignore (K.start_process_if_any k ~target_addr:addr);
    let oid = K.oid_at k addr in
    (* harness-held references pin their objects against automatic GC *)
    t.pinned <- oid :: t.pinned;
    (* a silent host-side birth registration: no traffic and no events,
       so the directory-off byte stream is untouched and a fresh cluster
       starts with an authoritative location map *)
    (if t.location = Loc_directory then
       let home = Loc.Partition.home t.partition oid in
       ignore (Loc.Directory.update t.dirs.(home) oid ~node ~at:(K.time_us k) : bool));
    ensure_step t node;
    oid

let where_is t oid =
  let found = ref None in
  Array.iteri
    (fun i n ->
      if !found = None && (not n.n_crashed) && K.find_object n.n_kernel oid <> None then
        found := Some i)
    t.nodes;
  !found

let spawn t ~node ~target ~op ~args =
  let k = kernel t node in
  match K.find_object k target with
  | None ->
    invalid_arg
      (Printf.sprintf "Cluster.spawn: %s is not resident on node %d"
         (Ert.Oid.to_string target) node)
  | Some addr ->
    let tid = K.spawn_root k ~target_addr:addr ~method_name:op ~args in
    ensure_step t node;
    tid

(* ----------------------------------------------------------------------- *)
(* node crashes (failure injection) *)

exception Thread_unavailable of string

let is_crashed t i = t.nodes.(i).n_crashed
let thread_failure t tid = Hashtbl.find_opt t.failures tid

(* Abort every live segment of a thread: its continuation is gone.
   [node] is the context node the abort originates at (for shard
   attribution).  Inside a parallel window the abort is deferred to the
   barrier: the only in-window abort source is a failed location
   search, whose thread's segments are all parked awaiting a reply that
   will never come, so postponing the kill past the window edge is
   unobservable — but the trace line must appear at its canonical
   position, so Ev_thread_lost is buffered now, with the generating
   event's key. *)
let abort_thread t ~node tid ~reason =
  if t.win_active then begin
    let sh = t.shards.(t.owner.(node)) in
    (* [t.failures] is written only at barriers, so reading it from a
       worker domain mid-window is race-free *)
    let fresh =
      (not (Hashtbl.mem t.failures tid))
      && not (List.exists (fun (_, _, _, _, tid', _) -> tid' = tid) sh.sh_aborts)
    in
    if fresh then begin
      sh.sh_seq <- sh.sh_seq + 1;
      sh.sh_aborts <-
        (sh.sh_key_time, sh.sh_key_rank, sh.sh_seq, node, tid, reason)
        :: sh.sh_aborts;
      emit t ~node (E.Ev_thread_lost { thread = tid; reason })
    end
  end
  else if not (Hashtbl.mem t.failures tid) then begin
    Hashtbl.replace t.failures tid reason;
    emit t ~node (E.Ev_thread_lost { thread = tid; reason });
    Array.iter
      (fun n ->
        if not n.n_crashed then
          List.iter
            (fun (seg : T.segment) ->
              if seg.T.seg_thread = tid then begin
                seg.T.seg_status <- T.Dead;
                K.unregister_segment n.n_kernel seg
              end)
            (K.segments n.n_kernel))
      t.nodes
  end

(* the window-deferred half of [abort_thread]: record the failure and
   reap the segments, without re-emitting the (already buffered) event *)
let apply_deferred_abort t tid ~reason =
  if not (Hashtbl.mem t.failures tid) then begin
    Hashtbl.replace t.failures tid reason;
    Array.iter
      (fun n ->
        if not n.n_crashed then
          List.iter
            (fun (seg : T.segment) ->
              if seg.T.seg_thread = tid then begin
                seg.T.seg_status <- T.Dead;
                K.unregister_segment n.n_kernel seg
              end)
            (K.segments n.n_kernel))
      t.nodes
  end

(* the search table is per shard, keyed by the asking node's shard, so
   that parallel windows mutate disjoint tables *)
let search_tbl t ~asker = t.shards.(t.owner.(asker)).sh_searches

(* find a search whose asker is unknown (sequential contexts only) *)
let find_search_any t obj =
  let rec go s =
    if s >= Array.length t.shards then None
    else
      match Hashtbl.find_opt t.shards.(s).sh_searches obj with
      | Some search -> Some (t.shards.(s).sh_searches, search)
      | None -> go (s + 1)
  in
  go 0

(* a message could not be delivered: the sending thread's continuation is
   lost with it.  [node] is the context node the drop happens at.  The
   whole delivery/search/transport machinery below is one recursive
   group: a drop can complete a search negatively, a directory fallback
   starts a search, and a search sends probes. *)
let rec drop_message t ~node (msg : Mobility.Marshal.message) ~reason =
  match msg with
  | Mobility.Marshal.M_invoke { thread; _ } -> abort_thread t ~node thread ~reason
  | Mobility.Marshal.M_invoke_via { inv; _ } -> drop_message t ~node inv ~reason
  | Mobility.Marshal.M_reply { thread; _ } -> abort_thread t ~node thread ~reason
  | Mobility.Marshal.M_move payload | Mobility.Marshal.M_group_move payload ->
    List.iter
      (fun (s : Mobility.Mi_frame.mi_segment) ->
        abort_thread t ~node s.Mobility.Mi_frame.ms_thread ~reason)
      payload.Mobility.Marshal.mp_segments
  | Mobility.Marshal.M_locate { obj } -> (
    (* an unanswerable probe counts as a negative answer; the probe does
       not name its asker, so find the search across shards (this path
       never runs inside a parallel window — it needs a dead node or a
       spent retry budget) *)
    match find_search_any t obj with
    | None -> ()
    | Some (tbl, s) -> search_negative t tbl obj s)
  | Mobility.Marshal.M_dir_lookup { obj } | Mobility.Marshal.M_dir_reply { obj; _ }
    ->
    (* a lookup (or its answer) died on the wire: release every parked
       message waiting on it into the broadcast search.  Like the
       M_locate case, this needs a dead node or a spent retry budget,
       so it never runs inside a parallel window. *)
    dir_fallback t obj
  | Mobility.Marshal.M_move_req _ | Mobility.Marshal.M_located _
  | Mobility.Marshal.M_start_process _ | Mobility.Marshal.M_dir_update _
  | Mobility.Marshal.M_loc_hint _ ->
    (* no thread continuation rides on these; the protocol degrades to a
       search, a stale directory entry, or a no-op *)
    ()

and search_negative t tbl obj (s : search) =
  s.s_awaiting <- s.s_awaiting - 1;
  if s.s_awaiting <= 0 then begin
    Hashtbl.remove tbl obj;
    emit t ~node:s.s_asker (E.Ev_search_failed { obj });
    List.iter
      (fun msg ->
        drop_message t ~node:s.s_asker msg
          ~reason:
            (Printf.sprintf "object %s cannot be located" (Ert.Oid.to_string obj)))
      s.s_pending
  end

(* every node whose directory wait on [obj] can no longer be answered
   falls back to the broadcast search with its parked messages *)
and dir_fallback t obj =
  Array.iteri
    (fun asker waits ->
      match Hashtbl.find_opt waits obj with
      | None -> ()
      | Some pending ->
        Hashtbl.remove waits obj;
        List.iter (fun msg -> start_search t ~asker obj msg) (List.rev pending))
    t.dir_waits

and crash_node t i =
  let victim = t.nodes.(i) in
  if not victim.n_crashed then begin
    emit t ~node:i (E.Ev_crash { node = i });
    (* an in-progress incremental mark cycle is soft state: discard it
       with the incarnation (the directory rule); a post-restart
       threshold crossing starts a fresh cycle from scratch *)
    (match t.gcs.(i) with
    | Some cy ->
      Ert.Gc.abort cy victim.n_kernel;
      t.gcs.(i) <- None
    | None -> ());
    (* a thread whose ACTIVE segment (ready, running or blocked on a local
       monitor) dies with the node can never make progress: abort its
       remnants now.  A thread that merely had a dormant awaiting segment
       here keeps computing wherever its top segment lives — co-location
       pays off — and is aborted only when its return is eventually
       dropped at this dead node. *)
    let lost_threads =
      List.filter_map
        (fun (s : T.segment) ->
          match s.T.seg_status with
          | T.Parked _ | T.Running | T.Blocked_monitor _ -> Some s.T.seg_thread
          | T.Awaiting_reply _ | T.Dead -> None)
        (K.segments victim.n_kernel)
      |> List.sort_uniq compare
    in
    victim.n_crashed <- true;
    List.iter
      (fun tid ->
        abort_thread t ~node:i tid ~reason:(Printf.sprintf "node %d crashed" i))
      lost_threads;
    (* searches owned by the dead node die with it; their pending
       invocations can never be routed *)
    let tbl = search_tbl t ~asker:i in
    let orphaned =
      Hashtbl.fold
        (fun obj s acc -> if s.s_asker = i then (obj, s) :: acc else acc)
        tbl []
    in
    List.iter
      (fun (obj, s) ->
        Hashtbl.remove tbl obj;
        List.iter
          (fun msg ->
            drop_message t ~node:i msg
              ~reason:(Printf.sprintf "node %d crashed" i))
          s.s_pending)
      orphaned;
    (* the dead node's transport state is gone: every message it had not
       yet seen acknowledged may or may not have been delivered — the
       fail-stop uncertainty — so their continuations are reported lost *)
    if t.reliable && Hashtbl.length t.outstanding.(i) > 0 then begin
      let entries =
        Hashtbl.fold (fun _ p acc -> p :: acc) t.outstanding.(i) []
        |> List.sort (fun a b -> compare a.p_seq b.p_seq)
      in
      Hashtbl.reset t.outstanding.(i);
      List.iter
        (fun p ->
          drop_message t ~node:i p.p_msg
            ~reason:(Printf.sprintf "node %d crashed" i))
        entries
    end;
    (* the node's directory shard dies with it (restart rebuilds it from
       the surviving residents), and its in-flight lookups can no longer
       be answered: release their parked messages to the search *)
    if t.location = Loc_directory then begin
      Loc.Directory.clear t.dirs.(i);
      let waits =
        Hashtbl.fold (fun obj msgs acc -> (obj, msgs) :: acc) t.dir_waits.(i) []
        |> List.sort (fun (a, _) (b, _) ->
               compare (Ert.Oid.intern a) (Ert.Oid.intern b))
      in
      Hashtbl.reset t.dir_waits.(i);
      List.iter
        (fun (_, msgs) ->
          List.iter
            (fun msg ->
              drop_message t ~node:i msg
                ~reason:(Printf.sprintf "node %d crashed" i))
            (List.rev msgs))
        waits
    end
  end

(* Reboot a crashed node: a fresh, amnesiac kernel — no objects, no
   segments, no transport state — on the same (shared, monotonic) clock,
   with the program reloaded so arriving invocations can at least build
   proxies and forward.  Everything the node held before the crash stays
   lost; that is the fail-stop model. *)
and restart_node t i =
  let n = t.nodes.(i) in
  if n.n_crashed then begin
    let arch = K.arch n.n_kernel in
    let k = K.create ~clock:n.n_clock ~node_id:i ~arch () in
    (* serial counters come from stable storage: a rebooted node must not
       re-mint an OID its previous incarnation issued, because copies of
       those objects may have migrated away and survived the crash *)
    K.inherit_serials k (K.serials n.n_kernel);
    K.set_on_code_load k (fun ~class_index ->
        Mobility.Code_repository.record_fetch t.repo ~node:i ~class_index;
        K.charge_insns k CM.code_fetch_insns);
    K.set_quantum k t.quantum;
    K.set_dispatch_cache k (Mobility.Code_repository.dispatch_cache t.repo ~node:i);
    (* bridge fragments address the dead kernel's text, so they are
       cleared with the incarnation; the cache object (and its hit/miss
       history) lives in the repository and survives, like the plans *)
    let bridge = Mobility.Code_repository.bridge_cache t.repo ~node:i in
    Ert.Bridge.clear bridge;
    K.set_bridge_cache k bridge;
    K.set_opt_level k t.opt_levels.(i);
    let done_tbl = t.shards.(t.owner.(i)).sh_root_done in
    K.set_on_root_result k (fun ~thread r -> Hashtbl.replace done_tbl thread r);
    (match t.last_prog with Some prog -> K.load_program k prog | None -> ());
    n.n_kernel <- k;
    n.n_crashed <- false;
    if t.reliable then Hashtbl.reset t.seen.(i);
    (* rebuild the node's directory shard from the forwarding ground
       truth: every surviving resident whose home partition is this node
       is re-registered at its current host, stamped now — so an update
       that was in flight across the crash arrives stale and is dropped *)
    if t.location = Loc_directory then begin
      let d = t.dirs.(i) in
      Loc.Directory.clear d;
      let now = K.time_us k in
      Array.iteri
        (fun j n' ->
          if not n'.n_crashed then
            K.iter_objects n'.n_kernel (fun oid _ ->
                if Loc.Partition.home t.partition oid = i then
                  ignore (Loc.Directory.update d oid ~node:j ~at:now : bool)))
        t.nodes
    end;
    emit t ~node:i (E.Ev_restart { node = i })
  end

(* ----------------------------------------------------------------------- *)
(* message transmission with conversion accounting *)

and payload_shape (msg : Mobility.Marshal.message) =
  match msg with
  | Mobility.Marshal.M_move p | Mobility.Marshal.M_group_move p ->
    let frames =
      List.fold_left
        (fun acc s -> acc + Mobility.Mi_frame.frame_count s)
        0 p.Mobility.Marshal.mp_segments
    in
    (List.length p.Mobility.Marshal.mp_objects, frames)
  | Mobility.Marshal.M_invoke _ | Mobility.Marshal.M_invoke_via _
  | Mobility.Marshal.M_reply _ | Mobility.Marshal.M_move_req _
  | Mobility.Marshal.M_locate _ | Mobility.Marshal.M_located _
  | Mobility.Marshal.M_start_process _ | Mobility.Marshal.M_dir_update _
  | Mobility.Marshal.M_dir_lookup _ | Mobility.Marshal.M_dir_reply _
  | Mobility.Marshal.M_loc_hint _ -> (0, 0)

and check_protocol t ~src ~dst (msg : Mobility.Marshal.message) =
  match t.proto, msg with
  | Original, (Mobility.Marshal.M_move _ | Mobility.Marshal.M_group_move _)
    when not
           (Isa.Arch.equal_family (arch_of t src).Isa.Arch.family
              (arch_of t dst).Isa.Arch.family) ->
    (* the homogeneous system has no machine-independent format to go
       through: it works only between machines running the same object
       code (the two HP9000/300s of the paper qualify) *)
    raise Heterogeneous_move_in_original_protocol
  | (Original | Enhanced), _ -> ()

(* charge the conversion (or raw copy) work performed while encoding or
   decoding [bytes] of network data *)
and charge_conversion t ~node ~calls ~bytes =
  let k = t.nodes.(node).n_kernel in
  (match t.proto with
  | Enhanced -> K.charge_insns k (calls * CM.per_conversion_call_insns)
  | Original -> K.charge_insns k (bytes * CM.original_copy_insns_per_byte));
  if calls > 0 || bytes > 0 then emit t ~node (E.Ev_conversion { node; calls; bytes })

and charge_translation t ~node (msg : Mobility.Marshal.message) =
  match t.proto with
  | Original -> ()
  | Enhanced ->
    let objects, frames = payload_shape msg in
    let k = t.nodes.(node).n_kernel in
    K.charge_insns k
      ((objects * CM.object_translate_insns) + (frames * CM.frame_translate_insns))

and wire_impl_of t =
  match t.proto with
  | Enhanced -> t.wire_impl
  | Original -> Enet.Wire.Bulk

(* under the Plan tier, thread the memoized conversion-plan cache and the
   (src, dst) arch pair through encode/decode; other tiers interpret.
   The Blit tier negotiates per pair: layout-matched pairs take the raw
   blit path (no plans), everyone else falls back to the plan path — the
   honest general case. *)
and plans_for t ~src ~dst =
  let plan_use () =
    Mobility.Conv_plan.make_use
      (Mobility.Code_repository.plan_cache t.repo)
      {
        Mobility.Conv_plan.pr_src = K.arch t.nodes.(src).n_kernel;
        pr_dst = K.arch t.nodes.(dst).n_kernel;
      }
  in
  match wire_impl_of t with
  | Enet.Wire.Plan -> Some (plan_use ())
  | Enet.Wire.Blit -> if blit_pair t ~src ~dst then None else Some (plan_use ())
  | Enet.Wire.Naive | Enet.Wire.Bulk -> None

(* the negotiated common-layout fast path applies to a (src, dst) pair
   when the blit tier is selected and both ends' layout fingerprints
   (endianness, float format, word size, packing) match.  Source and
   destination evaluate the same deterministic predicate, so no
   per-message capability bit is needed on the wire. *)
and blit_pair t ~src ~dst =
  match wire_impl_of t with
  | Enet.Wire.Blit ->
    Isa.Arch.same_layout
      (K.arch t.nodes.(src).n_kernel)
      (K.arch t.nodes.(dst).n_kernel)
    (* a blitted image replays the source's saved PCs verbatim, so both
       ends must also be running the same code instance: differently-
       optimized instances place their bus stops at different PCs *)
    && Emc.Opt.equal
         (K.opt_level t.nodes.(src).n_kernel)
         (K.opt_level t.nodes.(dst).n_kernel)
  | Enet.Wire.Naive | Enet.Wire.Bulk | Enet.Wire.Plan -> false

(* run an en/decode step and publish plan-cache and buffer-pool activity
   observed during it (diffs of the global counters) on the bus.
   Explicitly polymorphic in the result: inside the recursive delivery
   group it is used at both [string] (copying encode) and
   [Enet.Wire.view] (pooled encode) *)
and with_conv_extras : 'a. t -> node:int -> (unit -> 'a) -> 'a =
 fun t ~node f ->
  let pc = Mobility.Code_repository.plan_cache t.repo in
  let c0 = Mobility.Conv_plan.compiles pc and h0 = Mobility.Conv_plan.hits pc in
  let ph0 = Enet.Wire.Pool.hits () and pm0 = Enet.Wire.Pool.misses () in
  let hf0 = Enet.Wire.Pool.handoffs () in
  let r = f () in
  let dc = Mobility.Conv_plan.compiles pc - c0 in
  let dh = Mobility.Conv_plan.hits pc - h0 in
  if dc > 0 || dh > 0 then emit t ~node (E.Ev_plan { node; compiles = dc; hits = dh });
  let dph = Enet.Wire.Pool.hits () - ph0 in
  let dpm = Enet.Wire.Pool.misses () - pm0 in
  let dhf = Enet.Wire.Pool.handoffs () - hf0 in
  if dhf > 0 then CS.add_copies_saved t.nodes.(node).n_conv dhf;
  if dph > 0 || dpm > 0 || dhf > 0 then
    emit t ~node (E.Ev_pool { node; hits = dph; misses = dpm; copies_saved = dhf });
  r

and send_message t ~src (s : Mobility.Move.send) =
  let dst = s.Mobility.Move.snd_dest in
  let msg = s.Mobility.Move.snd_msg in
  if (not t.reliable) && t.nodes.(dst).n_crashed then begin
    (* reliable-wire model: a send to a known-dead interface is refused
       outright.  Under a fault plan the frame goes out anyway — the
       node may restart — and the loss is only reported when the
       retransmission budget is spent. *)
    emit t ~node:src
      (E.Ev_msg_lost { src; dst; desc = Mobility.Marshal.describe msg });
    drop_message t ~node:src msg ~reason:(Printf.sprintf "node %d is down" dst)
  end
  else begin
  check_protocol t ~src ~dst msg;
  let k = t.nodes.(src).n_kernel in
  let sp = t.spans_on in
  let pair = if sp then arch_pair t ~src ~dst else "" in
  (* the root move span: opened here for an outgoing M_move, starting at
     the time the generating event began the capture (recorded in
     [move_t0] by the Oc_move handler or the M_move_req delivery);
     closed at the destination when the move lands *)
  let root =
    match msg with
    | (Mobility.Marshal.M_move _ | Mobility.Marshal.M_group_move _) when sp ->
      let t0 =
        let v = t.move_t0.(src) in
        if Float.is_nan v then K.time_us k else v
      in
      t.move_t0.(src) <- Float.nan;
      Some (alloc_span_id t src, t0)
    | _ -> None
  in
  (* an original (non-forwarded) invocation opens the round-trip clock;
     closed when the reply lands back here *)
  (match msg with
  | Mobility.Marshal.M_invoke { reply; thread; _ }
    when sp && reply.T.ln_node = src ->
    Hashtbl.replace t.rpc_open.(src) (thread, reply.T.ln_seg) (pair, K.time_us k)
  | _ -> ());
  (match root with
  | Some (rid, rt0) ->
    let name =
      match msg with
      | Mobility.Marshal.M_group_move _ -> "group_pack"
      | _ -> "capture"
    in
    emit_span t ~node:src ~parent:rid ~pair ~name ~t0:rt0 ~t1:(K.time_us k) ()
  | None -> ());
  K.charge_us k CM.protocol_fixed_us;
  K.charge_insns k CM.protocol_send_insns;
  (* negotiated common-layout fast path: a matched pair ships the payload
     verbatim and skips the per-datum translate pass here (relocation at
     the destination still runs — addresses differ even when layouts
     match).  Counted once per outgoing move payload. *)
  let blit = blit_pair t ~src ~dst in
  (match (msg, wire_impl_of t) with
  | ( (Mobility.Marshal.M_move _ | Mobility.Marshal.M_group_move _),
      Enet.Wire.Blit ) ->
    emit t ~node:src (E.Ev_blit { node = src; dest = dst; skipped = blit })
  | _ -> ());
  let t_tr0 = if sp then K.time_us k else 0.0 in
  if not blit then charge_translation t ~node:src msg;
  let t_tr1 = if sp then K.time_us k else 0.0 in
  (match root with
  | Some (rid, _) ->
    emit_span t ~node:src ~parent:rid ~pair ~name:"translate" ~t0:t_tr0 ~t1:t_tr1 ()
  | None -> ());
  let span_tag =
    match root with
    | Some (rid, rt0) -> Some (rid.Obs.Span.id_node, rid.Obs.Span.id_seq, rt0)
    | None -> None
  in
  let stats = t.nodes.(src).n_conv in
  let calls0 = CS.calls stats and bytes0 = CS.bytes stats in
  let plans = plans_for t ~src ~dst in
  if not t.reliable then begin
    (* exactly-once receive on the reliable wire: the pooled encode
       buffer can be handed to the network without a copy and recycled
       by the receiver after decoding *)
    let payload =
      with_conv_extras t ~node:src (fun () ->
          Mobility.Marshal.encode_view ?plans ~blit ~impl:(wire_impl_of t) ~stats
            msg)
    in
    charge_conversion t ~node:src ~calls:(CS.calls stats - calls0)
      ~bytes:(CS.bytes stats - bytes0);
    (match root with
    | Some (rid, _) ->
      emit_span t ~node:src ~parent:rid ~bytes:(Enet.Wire.view_length payload)
        ~pair ~name:"marshal" ~t0:t_tr1 ~t1:(K.time_us k) ()
    | None -> ());
    if t.win_active then begin
      (* inside a parallel window the shared medium is off limits: post
         the send to the shard's outbox, keyed by the generating event,
         and let the barrier replay the medium fold in canonical order.
         The Ev_msg_send needs the arrival the barrier will compute, so
         it is buffered (or counted) as a [dsend]. *)
      let sh = t.shards.(t.owner.(src)) in
      sh.sh_seq <- sh.sh_seq + 1;
      let entry =
        Enet.Netsim.Outbox.post ?span:span_tag sh.sh_outbox ~time:sh.sh_key_time
          ~rank:sh.sh_key_rank ~seq:sh.sh_seq ~now_us:(K.time_us k) ~src ~dst
          ~payload
      in
      if t.win_buffering then begin
        let d =
          { ds_entry = entry; ds_time = K.time_us k; ds_src = src; ds_dst = dst;
            ds_desc = Mobility.Marshal.describe msg;
            ds_bytes = Enet.Wire.view_length payload;
            ds_span =
              (match root with
              | Some (rid, _) -> Some (alloc_span_id t src, rid, pair)
              | None -> None) }
        in
        sh.sh_buf <- (sh.sh_key_time, sh.sh_key_rank, sh.sh_seq, B_send d) :: sh.sh_buf
      end
      else begin
        (* nobody listening: only the counter is observable, and the
           sender's counters are owned by this shard *)
        let c = E.counters t.bus src in
        c.E.c_sent <- c.E.c_sent + 1
      end
    end
    else begin
      let now = K.time_us k in
      let arrival =
        Enet.Netsim.send_view ?span:span_tag t.net ~now_us:now ~src ~dst ~payload
      in
      emit t ~node:src
        (E.Ev_msg_send
           { time = now; src; dst; desc = Mobility.Marshal.describe msg;
             bytes = Enet.Wire.view_length payload; arrives = arrival });
      match root with
      | Some (rid, _) ->
        emit_span t ~node:src ~parent:rid ~bytes:(Enet.Wire.view_length payload)
          ~pair ~name:"transfer" ~t0:now ~t1:arrival ()
      | None -> ()
    end
  end
  else begin
    (* the retry/ack envelope retransmits the cached frame, so the
       payload must outlive this send: keep the copying encode *)
    let payload =
      with_conv_extras t ~node:src (fun () ->
          Mobility.Marshal.encode ?plans ~blit ~impl:(wire_impl_of t) ~stats msg)
    in
    charge_conversion t ~node:src ~calls:(CS.calls stats - calls0)
      ~bytes:(CS.bytes stats - bytes0);
    (match root with
    | Some (rid, _) ->
      emit_span t ~node:src ~parent:rid ~bytes:(String.length payload) ~pair
        ~name:"marshal" ~t0:t_tr1 ~t1:(K.time_us k) ()
    | None -> ());
    let seq = t.next_seq.(src) in
    t.next_seq.(src) <- seq + 1;
    let frame = data_frame ~seq payload in
    let desc = Mobility.Marshal.describe msg in
    let now = K.time_us k in
    let arrival =
      Enet.Netsim.send ?span:span_tag t.net ~now_us:now ~src ~dst ~payload:frame
    in
    emit t ~node:src
      (E.Ev_msg_send
         { time = now; src; dst; desc; bytes = String.length frame;
           arrives = arrival });
    (match root with
    | Some (rid, _) ->
      emit_span t ~node:src ~parent:rid ~bytes:(String.length frame) ~pair
        ~name:"transfer" ~t0:now ~t1:arrival ()
    | None -> ());
    let p =
      { p_seq = seq; p_dst = dst; p_frame = frame; p_msg = msg; p_desc = desc;
        p_span = span_tag; p_attempts = 1; p_next_at = now +. tr_rto_us }
    in
    Hashtbl.replace t.outstanding.(src) seq p;
    (* the engine holds at most one timer entry per node; if one is
       already queued later than this deadline, the pop will process
       this entry past due and reschedule at the then-earliest — a late
       retransmit, never a lost one *)
    Engine.schedule (eng t src) ~at:p.p_next_at (Engine.Timer src)
  end
  end

(* Emerald's broadcast location search: probe every live node; park the
   unroutable message until an answer arrives *)
and start_search t ~asker obj msg =
  let tbl = search_tbl t ~asker in
  match Hashtbl.find_opt tbl obj with
  | Some s -> s.s_pending <- msg :: s.s_pending
  | None ->
    let others = ref [] in
    Array.iteri
      (fun i n -> if i <> asker && not n.n_crashed then others := i :: !others)
      t.nodes;
    (match !others with
    | [] ->
      drop_message t ~node:asker msg
        ~reason:(Printf.sprintf "object %s cannot be located" (Ert.Oid.to_string obj))
    | probes ->
      emit t ~node:asker
        (E.Ev_search_start { node = asker; obj; probes = List.length probes });
      Hashtbl.replace tbl obj
        { s_asker = asker; s_pending = [ msg ]; s_awaiting = List.length probes };
      List.iter
        (fun i ->
          send_message t ~src:asker
            { Mobility.Move.snd_dest = i; snd_msg = Mobility.Marshal.M_locate { obj } })
        probes)

(* An exhausted (or absent) proxy chain.  With the directory on, ask the
   object's home shard — one unicast instead of the broadcast — parking
   the message until the answer; the broadcast search remains the
   fallback of last resort (home unreachable, no entry, stale answer). *)
let locate_fallback t ~asker obj msg =
  match t.location with
  | Loc_off | Loc_collapse -> start_search t ~asker obj msg
  | Loc_directory ->
    let home = Loc.Partition.home t.partition obj in
    if home = asker then begin
      (* the asker owns the home shard: consult it locally *)
      let hit = Loc.Directory.lookup t.dirs.(asker) obj in
      emit t ~node:asker
        (E.Ev_dir_lookup { node = asker; obj; found = hit <> None });
      match hit with
      | Some e
        when e.Loc.Directory.le_node <> asker
             && not t.nodes.(e.Loc.Directory.le_node).n_crashed ->
        let k = t.nodes.(asker).n_kernel in
        let addr = K.ensure_ref k obj in
        K.set_proxy_hint k ~addr ~node:e.Loc.Directory.le_node;
        send_message t ~src:asker
          { Mobility.Move.snd_dest = e.Loc.Directory.le_node; snd_msg = msg }
      | Some _ | None -> start_search t ~asker obj msg
    end
    else if t.nodes.(home).n_crashed && not t.reliable then
      (* a known-dead home shard cannot answer; under a fault plan the
         lookup goes out anyway and the retry budget decides *)
      start_search t ~asker obj msg
    else begin
      let waits = t.dir_waits.(asker) in
      match Hashtbl.find_opt waits obj with
      | Some pending -> Hashtbl.replace waits obj (msg :: pending)
      | None ->
        Hashtbl.replace waits obj [ msg ];
        send_message t ~src:asker
          { Mobility.Move.snd_dest = home;
            snd_msg = Mobility.Marshal.M_dir_lookup { obj } }
    end

(* After a move (or group move) lands with the directory on, tell each
   moved object's home shard where it went.  Updates are batched per
   home and the homes are walked in ascending order, so the published
   traffic is identical at any shard count. *)
let publish_locations t ~dst payload =
  if t.location = Loc_directory then begin
    let k = t.nodes.(dst).n_kernel in
    let at = K.time_us k in
    let by_home = Hashtbl.create 8 in
    let homes = ref [] in
    List.iter
      (fun (mo : Mobility.Marshal.move_object) ->
        let oid = mo.Mobility.Marshal.mo_oid in
        let home = Loc.Partition.home t.partition oid in
        match Hashtbl.find_opt by_home home with
        | Some l -> Hashtbl.replace by_home home (oid :: l)
        | None ->
          homes := home :: !homes;
          Hashtbl.replace by_home home [ oid ])
      payload.Mobility.Marshal.mp_objects;
    List.iter
      (fun home ->
        let objs = List.rev (Hashtbl.find by_home home) in
        if home = dst then
          (* the destination owns the home shard: no traffic needed *)
          List.iter
            (fun obj ->
              let applied = Loc.Directory.update t.dirs.(dst) obj ~node:dst ~at in
              emit t ~node:dst
                (E.Ev_dir_update { node = dst; obj; loc = dst; applied }))
            objs
        else
          send_message t ~src:dst
            { Mobility.Move.snd_dest = home;
              snd_msg = Mobility.Marshal.M_dir_update { objs; node = dst; at } })
      (List.sort compare !homes)
  end

(* Asynchronous migration (DESIGN.md §13): the capture/translate/marshal
   pipeline runs on a background mover engine, so the source's other
   threads keep the CPU while the payload is prepared.  The pipeline cost
   is still charged synchronously — the payload's wire timestamp, and
   hence its arrival, is identical to the synchronous path — and then
   refunded against the source clock, rolling it back to the instant the
   capture began.  The "overlap" span records the refunded interval. *)
let credit_overlap t ~src ~dest ~d_pipeline ~t_end =
  if t.async_migration then begin
    let credit = d_pipeline in
    if credit > 0.0 then begin
      K.credit_us t.nodes.(src).n_kernel credit;
      if t.spans_on then
        emit_span t ~node:src
          ~pair:(arch_pair t ~src ~dst:dest)
          ~name:"overlap" ~t0:(t_end -. credit) ~t1:t_end ()
    end
  end

(* under preemptive scheduling, segments may sit between bus stops; run
   them forward to well-defined states before any migration capture *)
let rec quiesce_node t i =
  let k = t.nodes.(i).n_kernel in
  if K.quantum k <> None then
    List.iter
      (fun seg ->
        if not (K.at_stop k seg) then
          List.iter (handle_outcall t ~src:i) (K.advance_to_stop k seg))
      (K.segments k)

and handle_outcall t ~src (oc : K.outcall) =
  let k = t.nodes.(src).n_kernel in
  let sends =
    match oc with
    | K.Oc_invoke { seg; target_oid; hint_node; callee_class; callee_method; args; stop_id = _ } ->
      K.charge_insns k CM.invoke_dispatch_insns;
      Mobility.Rpc.initiate_invoke ~k ~target_oid ~hint_node ~callee_class
        ~callee_method ~args ~caller_seg:seg.T.seg_id ~thread:seg.T.seg_thread
    | K.Oc_move { seg; obj_addr; dest_node } ->
      emit t ~node:src
        (E.Ev_move_start
           { time = K.time_us k; node = src; obj = K.oid_at k obj_addr;
             dest = dest_node });
      if t.spans_on then t.move_t0.(src) <- K.time_us k;
      quiesce_node t src;
      (* send-off under an active mark cycle: grey the departing
         segment's roots and the moved object before capture removes
         them from the root set *)
      (match t.gcs.(src) with
      | Some cy ->
        Ert.Gc.grey_segment cy k seg;
        Ert.Gc.grey_addr cy k obj_addr
      | None -> ());
      let tq1 = K.time_us k in
      let sends = Mobility.Move.initiate ~k ~mover:seg ~obj_addr ~dest:dest_node in
      (* the pipeline's virtual cost (protocol, translate, conversion) is
         charged by [send_message]: dispatch here so the overlap credit
         sees the whole capture-to-wire interval *)
      List.iter (send_message t ~src) sends;
      let t_cap1 = K.time_us k in
      credit_overlap t ~src ~dest:dest_node ~d_pipeline:(t_cap1 -. tq1)
        ~t_end:t_cap1;
      []
    | K.Oc_evict { seg; dest_node; armed_us } ->
      emit t ~node:src
        (E.Ev_evict
           { time = K.time_us k; node = src; seg_id = seg.T.seg_id;
             dest = dest_node });
      let t_fire = K.time_us k in
      if t.spans_on then t.move_t0.(src) <- t_fire;
      quiesce_node t src;
      (match t.gcs.(src) with
      | Some cy -> Ert.Gc.grey_segment cy k seg
      | None -> ());
      let tq1 = K.time_us k in
      let sends = Mobility.Move.initiate_evict ~k ~seg ~dest:dest_node in
      List.iter (send_message t ~src) sends;
      let t_cap1 = K.time_us k in
      (* the eviction span covers trap-arm to wire-out (the victim may
         have run to its bus stop in between); its children
         (capture/translate/marshal/transfer…) hang off the move root
         opened by [send_message] *)
      if t.spans_on then
        emit_span t ~node:src
          ~pair:(arch_pair t ~src ~dst:dest_node)
          ~name:"evict" ~t0:(Float.min armed_us t_cap1) ~t1:t_cap1 ();
      credit_overlap t ~src ~dest:dest_node ~d_pipeline:(t_cap1 -. tq1)
        ~t_end:t_cap1;
      []
    | K.Oc_return { link; value; thread } ->
      if link.T.ln_node = src then begin
        (* same-node segment chain: deliver directly *)
        match K.find_segment k link.T.ln_seg with
        | Some seg ->
          K.deliver_result k seg value;
          []
        | None -> Mobility.Rpc.handle_reply ~k ~to_seg:link.T.ln_seg ~value ~thread
      end
      else [ Mobility.Rpc.initiate_return ~link ~value ~thread ]
    | K.Oc_start_process { target_oid; hint_node } ->
      let dest = if hint_node = src then Option.value (Ert.Oid.creator_node target_oid) ~default:0 else hint_node in
      [
        {
          Mobility.Move.snd_dest = dest;
          snd_msg = Mobility.Marshal.M_start_process { obj = target_oid; forwards = 0 };
        };
      ]
  in
  List.iter (send_message t ~src) sends

let deliver t ~dst (m : Enet.Netsim.message) =
  let k = t.nodes.(dst).n_kernel in
  K.set_time_us k m.Enet.Netsim.msg_arrives_at;
  let sp = t.spans_on in
  (* the sender's move-span tag (root id + start time), if this message
     carries a move and tracing is on *)
  let tag = if sp then m.Enet.Netsim.msg_span else None in
  let t_arr = if sp then K.time_us k else 0.0 in
  K.charge_us k CM.protocol_fixed_us;
  K.charge_insns k CM.protocol_recv_insns;
  let stats = t.nodes.(dst).n_conv in
  let calls0 = CS.calls stats and bytes0 = CS.bytes stats in
  let plans = plans_for t ~src:m.Enet.Netsim.msg_src ~dst in
  (* the receiver re-evaluates the same deterministic layout predicate
     the sender used, so the blit codec needs no capability bit on the
     wire *)
  let blit = blit_pair t ~src:m.Enet.Netsim.msg_src ~dst in
  (* decoding is the last read: a pooled payload buffer goes back to the
     free list (sub-views and string-backed views are no-ops) — also on
     a decode failure, or it would leak from the pool *)
  let msg =
    Fun.protect
      ~finally:(fun () -> Enet.Wire.release_view m.Enet.Netsim.msg_payload)
      (fun () ->
        with_conv_extras t ~node:dst (fun () ->
            Mobility.Marshal.decode_view ?plans ~blit ~impl:(wire_impl_of t)
              ~stats m.Enet.Netsim.msg_payload))
  in
  charge_conversion t ~node:dst ~calls:(CS.calls stats - calls0)
    ~bytes:(CS.bytes stats - bytes0);
  let t_unm1 = if tag <> None then K.time_us k else 0.0 in
  if not blit then charge_translation t ~node:dst msg;
  (match tag with
  | Some (rn, rs, _) ->
    let parent = { Obs.Span.id_node = rn; id_seq = rs } in
    let pair = arch_pair t ~src:m.Enet.Netsim.msg_src ~dst in
    emit_span t ~node:dst ~parent ~pair ~name:"unmarshal" ~t0:t_arr ~t1:t_unm1 ();
    emit_span t ~node:dst ~parent ~pair ~name:"rebuild" ~t0:t_unm1
      ~t1:(K.time_us k) ()
  | None -> ());
  emit t ~node:dst
    (E.Ev_msg_deliver
       { time = K.time_us k; node = dst; desc = Mobility.Marshal.describe msg });
  let sends =
    match msg with
    | Mobility.Marshal.M_invoke _ | Mobility.Marshal.M_invoke_via _ -> (
      (* the hop trail: empty for a first-hop invoke, the list of nodes
         already traversed for a via-wrapped one (location modes only) *)
      let via, inv =
        match msg with
        | Mobility.Marshal.M_invoke_via { via; inv } -> (via, inv)
        | inv -> ([], inv)
      in
      match inv with
      | Mobility.Marshal.M_invoke
          { target; callee_class; callee_method; args; reply; thread; forwards } -> (
        (* under a fault plan, a message of an already-aborted thread can
           still arrive (its abort raced a copy in flight); resurrecting
           the continuation would violate the no-orphans invariant *)
        if t.reliable && Hashtbl.mem t.failures thread then []
        else begin
        K.charge_insns k CM.invoke_dispatch_insns;
        match
          Mobility.Rpc.handle_invoke ~k ~target ~callee_class ~callee_method ~args
            ~reply ~thread ~forwards
        with
        | Mobility.Rpc.Routed [] ->
          (* the target is here: the walk is over.  Collapse the chain it
             came through — every traversed node, plus the caller, gets a
             hint pointing straight at this host (ascending node order,
             so the fanout is deterministic at any shard count) *)
          if t.location = Loc_off then []
          else begin
            emit t ~node:dst
              (E.Ev_locate { node = dst; obj = target; hops = List.length via });
            if via = [] then []
            else
              List.filter_map
                (fun n ->
                  if n = dst then None
                  else
                    Some
                      { Mobility.Move.snd_dest = n;
                        snd_msg =
                          Mobility.Marshal.M_loc_hint { obj = target; node = dst } })
                (List.sort_uniq compare (reply.T.ln_node :: via))
          end
        | Mobility.Rpc.Routed sends ->
          (* forwarding along a proxy chain: record this hop in the trail
             so the eventual host knows whom to collapse *)
          if t.location = Loc_off then sends
          else
            List.map
              (fun s ->
                match s.Mobility.Move.snd_msg with
                | Mobility.Marshal.M_invoke _ as fwd ->
                  { s with
                    Mobility.Move.snd_msg =
                      Mobility.Marshal.M_invoke_via { via = via @ [ dst ]; inv = fwd }
                  }
                | _ -> s)
              sends
        | Mobility.Rpc.Unlocated unl ->
          let unl =
            if t.location = Loc_off then unl
            else Mobility.Marshal.M_invoke_via { via = via @ [ dst ]; inv = unl }
          in
          locate_fallback t ~asker:dst target unl;
          []
        end)
      | _ ->
        (* an M_invoke_via always wraps an M_invoke (see marshal.mli) *)
        assert false)
    | Mobility.Marshal.M_reply { to_seg; value; thread } ->
      (* close the round-trip clock opened when the original M_invoke
         left this node (same node, hence same shard: race-free) *)
      (if sp then
         match Hashtbl.find_opt t.rpc_open.(dst) (thread, to_seg) with
         | Some (pair0, t0) ->
           Hashtbl.remove t.rpc_open.(dst) (thread, to_seg);
           emit_span t ~node:dst ~pair:pair0 ~name:"rpc" ~t0 ~t1:(K.time_us k) ()
         | None -> ());
      if t.reliable && Hashtbl.mem t.failures thread then []
      else Mobility.Rpc.handle_reply ~k ~to_seg ~value ~thread
    | Mobility.Marshal.M_move_req { obj; dest; forwards } ->
      (* a remote-initiated move: the capture clock starts when the
         request reaches the object's host (this node) *)
      if sp then t.move_t0.(dst) <- K.time_us k;
      quiesce_node t dst;
      Mobility.Move.handle_move_req ~k ~obj ~dest ~forwards
    | (Mobility.Marshal.M_move payload | Mobility.Marshal.M_group_move payload) as mv
      ->
      (* a group move reuses the whole single-move landing path; only the
         span name marks the batched unpack *)
      let unpack_name =
        match mv with
        | Mobility.Marshal.M_group_move _ -> "group_unpack"
        | _ -> "relocate"
      in
      let t_rel0 = if tag <> None then K.time_us k else 0.0 in
      let mstats = Mobility.Move.apply_move k payload in
      K.charge_insns k (mstats.Mobility.Move.ap_frames * CM.relocation_insns_per_frame);
      (match tag with
      | Some (rn, rs, rt0) ->
        let rid = { Obs.Span.id_node = rn; id_seq = rs } in
        let pair = arch_pair t ~src:m.Enet.Netsim.msg_src ~dst in
        let t_end = K.time_us k in
        emit_span t ~node:dst ~parent:rid ~pair ~name:unpack_name ~t0:t_rel0
          ~t1:t_end ();
        (* the root span, closed where the move lands; its id was
           allocated at the source and rode the message tag *)
        emit t ~node:dst
          (E.Ev_span
             { Obs.Span.name = "move"; node = dst; arch_pair = pair;
               t_start_us = rt0; t_end_us = t_end; id = rid; parent = None;
               bytes = 0 })
      | None -> ());
      emit t ~node:dst
        (E.Ev_move_finish
           { time = K.time_us k; node = dst;
             objects = mstats.Mobility.Move.ap_objects;
             segments = mstats.Mobility.Move.ap_segments;
             frames = mstats.Mobility.Move.ap_frames });
      if mstats.Mobility.Move.ap_bridged > 0 then
        emit t ~node:dst
          (E.Ev_bridge
             { time = K.time_us k; node = dst;
               count = mstats.Mobility.Move.ap_bridged;
               src_level = mstats.Mobility.Move.ap_src_opt;
               dst_level = Emc.Opt.to_int (K.opt_level k) });
      (* a move payload can land after its thread was reported lost (the
         abort raced a copy in flight); reap the resurrected segments so
         the dead continuation cannot run *)
      if t.reliable && mstats.Mobility.Move.ap_segments > 0 then
        List.iter
          (fun (seg : T.segment) ->
            if seg.T.seg_status <> T.Dead && Hashtbl.mem t.failures seg.T.seg_thread
            then begin
              seg.T.seg_status <- T.Dead;
              K.unregister_segment k seg
            end)
          (K.segments k);
      publish_locations t ~dst payload;
      []
    | Mobility.Marshal.M_start_process { obj; forwards } -> (
      match K.find_object k obj with
      | Some addr ->
        ignore (K.start_process_if_any k ~target_addr:addr);
        []
      | None -> (
        let msg = Mobility.Marshal.M_start_process { obj; forwards = forwards + 1 } in
        let hop =
          if forwards >= 4 then None
          else
            Option.map (fun addr -> K.proxy_hint k addr) (K.proxy_of k obj)
        in
        match hop with
        | Some node when node <> dst ->
          [ { Mobility.Move.snd_dest = node; snd_msg = msg } ]
        | Some _ | None ->
          start_search t ~asker:dst obj msg;
          []))
    | Mobility.Marshal.M_locate { obj } ->
      let found = K.find_object k obj <> None in
      [
        {
          Mobility.Move.snd_dest = m.Enet.Netsim.msg_src;
          snd_msg = Mobility.Marshal.M_located { obj; found };
        };
      ]
    | Mobility.Marshal.M_located { obj; found } -> (
      let tbl = search_tbl t ~asker:dst in
      match Hashtbl.find_opt tbl obj with
      | None -> [] (* a late or duplicate answer *)
      | Some s ->
        if found then begin
          let host = m.Enet.Netsim.msg_src in
          Hashtbl.remove tbl obj;
          emit t ~node:dst (E.Ev_search_found { obj; node = host });
          (* refresh the local forwarding hint *)
          let addr = K.ensure_ref k obj in
          K.set_proxy_hint k ~addr ~node:host;
          List.map
            (fun msg -> { Mobility.Move.snd_dest = host; snd_msg = msg })
            s.s_pending
        end
        else begin
          search_negative t tbl obj s;
          []
        end)
    | Mobility.Marshal.M_dir_update { objs; node; at } ->
      (* a publish reaching this home shard; last-writer-wins by virtual
         timestamp, so reordered publishes of a ping-ponging object
         cannot regress the entry *)
      List.iter
        (fun obj ->
          let applied = Loc.Directory.update t.dirs.(dst) obj ~node ~at in
          emit t ~node:dst (E.Ev_dir_update { node = dst; obj; loc = node; applied }))
        objs;
      []
    | Mobility.Marshal.M_dir_lookup { obj } ->
      let hit = Loc.Directory.lookup t.dirs.(dst) obj in
      emit t ~node:dst (E.Ev_dir_lookup { node = dst; obj; found = hit <> None });
      let node, known =
        match hit with
        | Some e -> (e.Loc.Directory.le_node, true)
        | None -> (0, false)
      in
      [
        {
          Mobility.Move.snd_dest = m.Enet.Netsim.msg_src;
          snd_msg = Mobility.Marshal.M_dir_reply { obj; node; known };
        };
      ]
    | Mobility.Marshal.M_dir_reply { obj; node; known } -> (
      let waits = t.dir_waits.(dst) in
      match Hashtbl.find_opt waits obj with
      | None -> [] (* a late or duplicate answer; the messages moved on *)
      | Some pending ->
        Hashtbl.remove waits obj;
        let pending = List.rev pending in
        if known && node <> dst && (t.reliable || not t.nodes.(node).n_crashed)
        then begin
          (* the answer doubles as a forwarding hint: future invokes go
             direct instead of through the directory again *)
          let addr = K.ensure_ref k obj in
          K.set_proxy_hint k ~addr ~node;
          List.map
            (fun msg -> { Mobility.Move.snd_dest = node; snd_msg = msg })
            pending
        end
        else if K.find_object k obj <> None then
          (* the entry pointed here and it was right: the object came
             home while we were asking.  Re-deliver to ourselves so the
             pending invokes take the normal found path *)
          List.map
            (fun msg -> { Mobility.Move.snd_dest = dst; snd_msg = msg })
            pending
        else begin
          match Option.map (fun addr -> K.proxy_hint k addr) (K.proxy_of k obj) with
          | Some hop
            when hop <> dst && (t.reliable || not t.nodes.(hop).n_crashed) ->
            (* the entry points here because we hosted the object once
               and its departure published later than our own — our
               forwarding proxy is fresher than the directory, so resume
               the chain walk from it instead of broadcasting (a search
               racing the in-flight transfer would see every probe come
               back negative and wrongly report the object lost) *)
            List.map
              (fun msg -> { Mobility.Move.snd_dest = hop; snd_msg = msg })
              pending
          | _ ->
            (* no entry and no trail: broadcast search, last resort *)
            List.iter (fun msg -> start_search t ~asker:dst obj msg) pending;
            []
        end)
    | Mobility.Marshal.M_loc_hint { obj; node } ->
      (* chain collapse: repoint this node's forwarding proxy straight at
         the object's current host.  A hint racing the object home (we
         host it again) is simply ignored *)
      if K.find_object k obj = None && node <> dst then begin
        let addr = K.ensure_ref k obj in
        K.set_proxy_hint k ~addr ~node;
        emit t ~node:dst (E.Ev_collapse { node = dst; obj; loc = node })
      end;
      []
  in
  List.iter (send_message t ~src:dst) sends

(* ----------------------------------------------------------------------- *)
(* the discrete-event loop *)

(* automatic collection: the templates identify pointers only at bus
   stops, so under preemptive scheduling the node is quiesced first —
   the same discipline migration capture uses (section 2.2.1); without
   a quantum every segment is already parked between events *)
let note_collection t i =
  if t.win_active then begin
    let sh = t.shards.(t.owner.(i)) in
    sh.sh_collections <- sh.sh_collections + 1
  end
  else t.collections <- t.collections + 1

let do_collect_stw t i =
  quiesce_node t i;
  let k = t.nodes.(i).n_kernel in
  let stats = Ert.Gc.collect ~extra_roots:t.pinned k in
  note_collection t i;
  K.charge_insns k (2000 + (stats.Ert.Gc.gc_live * 40));
  emit t ~node:i
    (E.Ev_gc
       { time = K.time_us k; node = i; swept = stats.Ert.Gc.gc_swept;
         live = stats.Ert.Gc.gc_live; bytes_freed = stats.Ert.Gc.gc_bytes_freed })

(* one bounded increment of the incremental tier (DESIGN.md §17).
   Opening a cycle quiesces the node exactly as the stop-the-world tier
   does — the atomic root scan happens inside the first [step] and the
   templates identify pointers only at bus stops; every later increment
   interleaves with execution, protected by the write barrier and graft
   hook, and is charged [120 + scanned*40] instructions instead of the
   lump pause.  The cycle drives itself to completion by self-scheduling
   [Engine.Gc] at the post-charge clock; [Engine]'s dedup makes that
   safe alongside the Step handler's threshold checks. *)
let gc_increment t i =
  let k = t.nodes.(i).n_kernel in
  let cy =
    match t.gcs.(i) with
    | Some cy -> cy
    | None ->
      quiesce_node t i;
      let cy = Ert.Gc.start ~extra_roots:t.pinned k in
      t.gcs.(i) <- Some cy;
      (* snapshot + barrier installation *)
      K.charge_insns k 400;
      cy
  in
  let t0 = K.time_us k in
  let finish_increment ~phase ~scanned =
    K.charge_insns k (120 + (scanned * 40));
    let t1 = K.time_us k in
    emit t ~node:i
      (E.Ev_gc_phase
         { time = t1; node = i; phase; scanned; pause_us = t1 -. t0 });
    if t.spans_on then
      emit_span t ~node:i ~pair:(arch_pair t ~src:i ~dst:i) ~name:phase ~t0 ~t1
        ();
    t1
  in
  match Ert.Gc.step cy k ~budget:t.gc_budget with
  | Ert.Gc.Step_more { scanned; phase } ->
    let t1 = finish_increment ~phase:(Ert.Gc.phase_name phase) ~scanned in
    Engine.schedule (eng t i) ~at:t1 (Engine.Gc i)
  | Ert.Gc.Step_done { scanned; stats } ->
    t.gcs.(i) <- None;
    let t1 = finish_increment ~phase:"gc_sweep" ~scanned in
    note_collection t i;
    emit t ~node:i
      (E.Ev_gc
         { time = t1; node = i; swept = stats.Ert.Gc.gc_swept;
           live = stats.Ert.Gc.gc_live;
           bytes_freed = stats.Ert.Gc.gc_bytes_freed })

let do_collect t i =
  match t.gc_mode with
  | Gc_stw -> do_collect_stw t i
  | Gc_incremental -> gc_increment t i

(* an increment already queued its successor; only the threshold starts
   a brand-new cycle (matching the stop-the-world cadence) *)
let gc_pending t i = t.gcs.(i) <> None

let over_gc_threshold t i =
  Ert.Heap.live_bytes (K.heap (t.nodes.(i).n_kernel)) > t.gc_threshold_i

(* --- the seed's O(nodes) selection scan, kept as the [Scan] scheduler
   (the heap engine is cross-checked against it, and the scaling
   benchmark measures the difference) --- *)

type scan_event =
  | E_deliver of int * float
  | E_step of int * float

let next_event_scan t =
  let best = ref None in
  let better time =
    match !best with
    | None -> true
    | Some (E_deliver (_, bt) | E_step (_, bt)) -> time < bt
  in
  (* message deliveries first on ties (lower effective time wins) *)
  Array.iteri
    (fun i n ->
      match Enet.Netsim.next_arrival_at t.net ~dst:i with
      | Some arrival ->
        (* packets addressed to a dead interface still need draining *)
        let eff = Float.max arrival (K.time_us n.n_kernel) in
        if better eff then best := Some (E_deliver (i, eff))
      | None -> ())
    t.nodes;
  Array.iteri
    (fun i n ->
      if (not n.n_crashed) && K.has_ready n.n_kernel then begin
        let time = K.time_us n.n_kernel in
        if better time then best := Some (E_step (i, time))
      end)
    t.nodes;
  !best

(* the reliable-transport receive path: unwrap the envelope, ack every
   data frame (even duplicates — the first ack may itself have been
   lost), suppress (src, seq) pairs already delivered, and clear the
   sender's retransmission state on ack receipt *)
let deliver_reliable t i (m : Enet.Netsim.message) =
  let src = m.Enet.Netsim.msg_src in
  if t.nodes.(i).n_crashed then
    (* a dead interface drains the frame silently; the sender's
       retransmission timer decides the message's fate *)
    ()
  else
    match unwrap_frame m.Enet.Netsim.msg_payload with
    | Frame_ack seq ->
      let k = t.nodes.(i).n_kernel in
      K.set_time_us k m.Enet.Netsim.msg_arrives_at;
      K.charge_us k CM.protocol_fixed_us;
      if Hashtbl.mem t.outstanding.(i) seq then begin
        Hashtbl.remove t.outstanding.(i) seq;
        emit t ~node:i (E.Ev_ack { node = i; seq })
      end
    | Frame_data (seq, inner) ->
      let k = t.nodes.(i).n_kernel in
      K.set_time_us k m.Enet.Netsim.msg_arrives_at;
      ignore
        (Enet.Netsim.send t.net ~now_us:(K.time_us k) ~src:i ~dst:src
           ~payload:(ack_frame seq)
          : float);
      if Hashtbl.mem t.seen.(i) (src, seq) then begin
        K.charge_us k CM.protocol_fixed_us;
        emit t ~node:i (E.Ev_msg_dup { node = i; src; seq })
      end
      else begin
        Hashtbl.add t.seen.(i) (src, seq) ();
        deliver t ~dst:i { m with Enet.Netsim.msg_payload = inner }
      end

let count_event t i =
  if t.win_active then begin
    let sh = t.shards.(t.owner.(i)) in
    sh.sh_events <- sh.sh_events + 1
  end
  else t.events <- t.events + 1

let exec_deliver t i eff =
  count_event t i;
  match Enet.Netsim.receive t.net ~dst:i ~now_us:eff with
  | None -> ()
  | Some m when t.reliable -> deliver_reliable t i m
  | Some m when t.nodes.(i).n_crashed ->
    let stats = CS.create () in
    let msg =
      Fun.protect
        ~finally:(fun () -> Enet.Wire.release_view m.Enet.Netsim.msg_payload)
        (fun () ->
          Mobility.Marshal.decode_view
            ~blit:(blit_pair t ~src:m.Enet.Netsim.msg_src ~dst:i)
            ~impl:(wire_impl_of t) ~stats m.Enet.Netsim.msg_payload)
    in
    emit t ~node:i (E.Ev_msg_drop { node = i; desc = Mobility.Marshal.describe msg });
    drop_message t ~node:i msg ~reason:(Printf.sprintf "node %d is down" i)
  | Some m -> deliver t ~dst:i m

let exec_step t i ~time =
  count_event t i;
  let k = t.nodes.(i).n_kernel in
  (if t.win_active && t.win_buffering then
     emit t ~node:i (E.Ev_step { node = i; time })
   else E.emit_step t.bus ~node:i ~time);
  match K.step k with
  | [] -> ()
  | outs -> List.iter (handle_outcall t ~src:i) outs

let step_once_scan t =
  match next_event_scan t with
  | None -> false
  | Some (E_deliver (i, eff)) ->
    exec_deliver t i eff;
    true
  | Some (E_step (i, time)) ->
    exec_step t i ~time;
    if over_gc_threshold t i then do_collect t i;
    true

(* --- the heap engine loop.  Entries are revalidated when popped: a
   node's clock may have advanced past its queued step, or a message
   queue's head may now arrive effectively later; stale entries are
   rescheduled at the corrected (always later) time and the pop costs
   nothing.  Executed events therefore come out in exactly the order the
   scan would have chosen. *)

(* Harness code may mutate a kernel behind the cluster's back (tests
   drive [Mobility.Checkpoint.restore] on a kernel directly, for
   instance), so an empty heap does not yet prove quiescence: rescan
   once and reseed anything runnable.  This is the only O(nodes) scan
   left, and it runs once per drain, not per event. *)
let reseed t =
  let any = ref false in
  Array.iteri
    (fun i n ->
      if (not n.n_crashed) && K.has_ready n.n_kernel then begin
        Engine.schedule (eng t i) ~at:(K.time_us n.n_kernel) (Engine.Step i);
        any := true
      end;
      (* a node whose segments all sit in timed waits has no ready work,
         so only its wake keeps the simulation from quiescing early *)
      (match K.next_timeout n.n_kernel with
      | Some d when not n.n_crashed ->
        Engine.schedule (eng t i) ~at:d (Engine.Wake i);
        any := true
      | _ -> ());
      match Enet.Netsim.next_arrival_at t.net ~dst:i with
      | Some a ->
        Engine.schedule (eng t i)
          ~at:(Float.max a (K.time_us n.n_kernel))
          (Engine.Deliver i);
        any := true
      | None -> ())
    t.nodes;
  !any

(* one due retransmission deadline: either resend with doubled backoff or,
   with the attempt budget spent, report the loss and abort whatever was
   riding on the message *)
let retransmit_due t i ~now p =
  if p.p_attempts >= tr_max_attempts then begin
    Hashtbl.remove t.outstanding.(i) p.p_seq;
    emit t ~node:i (E.Ev_msg_lost { src = i; dst = p.p_dst; desc = p.p_desc });
    drop_message t ~node:i p.p_msg
      ~reason:
        (Printf.sprintf "no acknowledgement from node %d after %d attempts"
           p.p_dst p.p_attempts)
  end
  else begin
    p.p_attempts <- p.p_attempts + 1;
    let backoff =
      Float.min tr_rto_max_us (tr_rto_us *. (2. ** float_of_int (p.p_attempts - 1)))
    in
    p.p_next_at <- now +. backoff;
    emit t ~node:i
      (E.Ev_retransmit { node = i; dst = p.p_dst; seq = p.p_seq;
                         attempt = p.p_attempts });
    ignore (Enet.Netsim.send ?span:p.p_span t.net ~now_us:now ~src:i ~dst:p.p_dst
              ~payload:p.p_frame : float)
  end

(* The sequential merge: the globally earliest event is the smallest
   (time, rank) across the per-shard engine heads.  The rank is
   node-major, so this is exactly the order one shared heap would pop —
   one shard degenerates to the single-engine loop, and any shard count
   executes the identical event sequence.  Equal (time, rank) on two
   engines is impossible (the rank pins the node, and a node lives in
   one shard), so the scan needs no shard tiebreak. *)
let pick_engine t =
  let n = Array.length t.engines in
  if n = 1 then
    match Engine.peek t.engines.(0) with
    | None -> None
    | Some (tm, _) -> Some (tm, t.engines.(0))
  else begin
    let best = ref None in
    for s = 0 to n - 1 do
      match Engine.peek t.engines.(s) with
      | None -> ()
      | Some (tm, rk) -> (
        match !best with
        | Some (bt, br, _) when bt < tm || (bt = tm && br <= rk) -> ()
        | _ -> best := Some (tm, rk, t.engines.(s)))
    done;
    match !best with None -> None | Some (tm, _, e) -> Some (tm, e)
  end

let rec step_once_heap t ~horizon =
  match pick_engine t with
  | None -> if reseed t then step_once_heap t ~horizon else false
  | Some (tm, _) when tm >= horizon ->
    false (* a pending load-balancing point gates further execution *)
  | Some (_, e) ->
  match Engine.take e with
  | None -> if reseed t then step_once_heap t ~horizon else false
  | Some (Engine.Timer i) ->
    let tbl = t.outstanding.(i) in
    if t.nodes.(i).n_crashed || Hashtbl.length tbl = 0 then step_once_heap t ~horizon
    else begin
      let now = Engine.now e in
      let due, later =
        Hashtbl.fold
          (fun _ p (d, l) ->
            if p.p_next_at <= now then (p :: d, l) else (d, Float.min l p.p_next_at))
          tbl ([], infinity)
      in
      match due with
      | [] ->
        if later < infinity then Engine.reschedule e ~at:later (Engine.Timer i);
        step_once_heap t ~horizon
      | due ->
        t.events <- t.events + 1;
        (* hashtable fold order is unspecified; sequence numbers restore
           a deterministic processing order *)
        let due = List.sort (fun a b -> compare a.p_seq b.p_seq) due in
        List.iter (retransmit_due t i ~now) due;
        let next = Hashtbl.fold (fun _ p acc -> Float.min acc p.p_next_at) tbl infinity in
        if next < infinity then Engine.schedule e ~at:next (Engine.Timer i);
        true
    end
  | Some (Engine.Chaos i) -> (
    match t.chaos.(i) with
    | [] -> step_once_heap t ~horizon
    | (_, act) :: rest ->
      t.chaos.(i) <- rest;
      t.events <- t.events + 1;
      (match act with
      | Chaos_crash -> crash_node t i
      | Chaos_restart -> restart_node t i);
      (match rest with
      | (at, _) :: _ -> Engine.schedule e ~at (Engine.Chaos i)
      | [] -> ());
      ensure_step t i;
      true)
  | Some (Engine.Gc i) ->
    let n = t.nodes.(i) in
    (* an in-progress incremental cycle must run to completion even if
       sweeping has already pushed the heap back under the threshold *)
    if n.n_crashed || not (gc_pending t i || over_gc_threshold t i) then
      step_once_heap t ~horizon
    else begin
      do_collect t i;
      ensure_step t i;
      true
    end
  | Some (Engine.Step i) ->
    let n = t.nodes.(i) in
    if n.n_crashed || not (K.has_ready n.n_kernel) then step_once_heap t ~horizon
    else begin
      let tm = Engine.now e in
      let now = n.n_clock.Sim.Clock.now in
      if now > tm then begin
        Engine.reschedule e ~at:now (Engine.Step i);
        step_once_heap t ~horizon
      end
      else begin
        exec_step t i ~time:tm;
        (* the slice advanced the node clock; read it once for both the
           collection check and the follow-on step *)
        let at = n.n_clock.Sim.Clock.now in
        if over_gc_threshold t i then Engine.schedule e ~at (Engine.Gc i);
        if (not n.n_crashed) && K.has_ready n.n_kernel then
          Engine.schedule e ~at (Engine.Step i);
        ensure_wake t i;
        true
      end
    end
  | Some (Engine.Wake i) ->
    (* revalidate against the kernel, exactly as Step does against the
       clock: the deadline may have been consumed (signalled, migrated
       away) or superseded by an earlier one since this entry was queued *)
    let n = t.nodes.(i) in
    if n.n_crashed then step_once_heap t ~horizon
    else begin
      let k = n.n_kernel in
      match K.next_timeout k with
      | None -> step_once_heap t ~horizon
      | Some d ->
        let tm = Engine.now e in
        let eff = Float.max d n.n_clock.Sim.Clock.now in
        if eff > tm then begin
          Engine.reschedule e ~at:eff (Engine.Wake i);
          step_once_heap t ~horizon
        end
        else begin
          count_event t i;
          K.set_time_us k tm;
          ignore (K.expire_timeouts k ~now:tm : int);
          ensure_wake t i;
          ensure_step t i;
          true
        end
    end
  | Some (Engine.Deliver i) ->
    let n = t.nodes.(i) in
    (match Enet.Netsim.next_arrival_at t.net ~dst:i with
    | None -> step_once_heap t ~horizon
    | Some arrival ->
      let tm = Engine.now e in
      let eff = Float.max arrival n.n_clock.Sim.Clock.now in
      if eff > tm then begin
        Engine.reschedule e ~at:eff (Engine.Deliver i);
        step_once_heap t ~horizon
      end
      else begin
        exec_deliver t i eff;
        (match Enet.Netsim.next_arrival_at t.net ~dst:i with
        | Some a ->
          Engine.schedule e
            ~at:(Float.max a (K.time_us n.n_kernel))
            (Engine.Deliver i)
        | None -> ());
        ensure_step t i;
        ensure_wake t i;
        true
      end)

(* Fire the installed balancer and advance its schedule.  Balancing
   points partition virtual time identically under any shard count: an
   event executes before the balancer iff its (revalidated) time is
   below [balance_at] — [step_once_heap]'s horizon sequentially, the
   window horizon clamp in parallel. *)
let fire_balancer t =
  (match t.balancer with Some f -> f () | None -> ());
  t.balance_at <- t.balance_at +. t.balance_every

let set_balancer t ~every_us f =
  if every_us <= 0.0 then invalid_arg "Cluster.set_balancer: need a positive period";
  t.balancer <- Some f;
  t.balance_every <- every_us;
  t.balance_at <- every_us

let rec step_once t =
  match t.sched with
  | Heap ->
    if step_once_heap t ~horizon:t.balance_at then true
    else if t.balancer <> None && pick_engine t <> None then begin
      (* not quiescent — execution is gated at a pending balancing
         point.  Fire it here so [false] means quiescent for every
         caller, including external drivers stepping the cluster
         themselves (the fuzz harness, interactive tools). *)
      fire_balancer t;
      step_once t
    end
    else false
  | Scan -> step_once_scan t

(* ----------------------------------------------------------------------- *)
(* parallel windows (run-to-quiescence only)

   Conservative Chandy–Misra execution: the window [W, W + lookahead)
   starts at the globally earliest pending event; inside it every shard
   executes its own events concurrently, touching only its own nodes'
   kernels, clocks, search tables and Netsim receive queues.  The
   lookahead is the network latency — the soonest any send performed in
   the window can arrive — so deferring all sends to the barrier is
   unobservable in-window, and every cross-shard interaction lands in a
   later window. *)

let parallel_ok t =
  Array.length t.shards > 1
  && t.sched = Heap
  && (not t.reliable)
  && t.lookahead > 0.0
  (* the Naive conversion tier is the one whose en/decode paths touch no
     global mutable state (no plan cache, no shared buffer pool) *)
  && wire_impl_of t = Enet.Wire.Naive
  && not (Array.exists (fun n -> n.n_crashed) t.nodes)

(* Execute one shard's events inside the window [*, horizon).  The body
   mirrors [step_once_heap]'s Step/Deliver/Gc revalidation exactly;
   Timer and Chaos entries cannot exist here ([parallel_ok] excludes
   fault plans).  Each popped entry's (time, rank) becomes the merge
   key under which the event's emissions, sends and aborts are
   buffered. *)
let win_run_shard t s ~horizon =
  let sh = t.shards.(s) in
  let e = sh.sh_engine in
  let running = ref true in
  while !running do
    match Engine.peek e with
    | None -> running := false
    | Some (tm, _) when tm >= horizon -> running := false
    | Some (tm, rk) -> (
      sh.sh_key_time <- tm;
      sh.sh_key_rank <- rk;
      match Engine.take e with
      | None -> running := false
      | Some (Engine.Timer _) | Some (Engine.Chaos _) ->
        assert false (* never scheduled without a fault plan *)
      | Some (Engine.Gc i) ->
        let n = t.nodes.(i) in
        if (not n.n_crashed) && (gc_pending t i || over_gc_threshold t i)
        then begin
          do_collect t i;
          ensure_step t i
        end
      | Some (Engine.Step i) ->
        let n = t.nodes.(i) in
        if (not n.n_crashed) && K.has_ready n.n_kernel then begin
          let now = n.n_clock.Sim.Clock.now in
          if now > tm then Engine.reschedule e ~at:now (Engine.Step i)
          else begin
            exec_step t i ~time:tm;
            let at = n.n_clock.Sim.Clock.now in
            if over_gc_threshold t i then Engine.schedule e ~at (Engine.Gc i);
            if (not n.n_crashed) && K.has_ready n.n_kernel then
              Engine.schedule e ~at (Engine.Step i);
            ensure_wake t i
          end
        end
      | Some (Engine.Wake i) ->
        (* node-local, so safe inside a window; mirrors the sequential
           loop's revalidation exactly *)
        let n = t.nodes.(i) in
        if not n.n_crashed then begin
          match K.next_timeout n.n_kernel with
          | None -> ()
          | Some d ->
            let eff = Float.max d n.n_clock.Sim.Clock.now in
            if eff > tm then Engine.reschedule e ~at:eff (Engine.Wake i)
            else begin
              count_event t i;
              K.set_time_us n.n_kernel tm;
              ignore (K.expire_timeouts n.n_kernel ~now:tm : int);
              ensure_wake t i;
              ensure_step t i
            end
        end
      | Some (Engine.Deliver i) -> (
        let n = t.nodes.(i) in
        match Enet.Netsim.next_arrival_at t.net ~dst:i with
        | None -> ()
        | Some arrival ->
          let eff = Float.max arrival n.n_clock.Sim.Clock.now in
          if eff > tm then Engine.reschedule e ~at:eff (Engine.Deliver i)
          else begin
            exec_deliver t i eff;
            (match Enet.Netsim.next_arrival_at t.net ~dst:i with
            | Some a ->
              Engine.schedule e
                ~at:(Float.max a (K.time_us n.n_kernel))
                (Engine.Deliver i)
            | None -> ());
            ensure_step t i;
            ensure_wake t i
          end))
  done

(* The barrier: replay the windows' deferred effects in the canonical
   (time, rank, seq) order — first the sends through the shared medium
   (bit-identical reservation fold, sequence numbers and arrival
   times), then the buffered bus events, then the thread aborts. *)
(* Merge key subtlety: across shards, (time, rank) orders correctly —
   ranks are node-major and shards hold contiguous node ranges, so at
   equal times every lower shard's pops precede every higher shard's,
   exactly as [pick_engine] chooses.  WITHIN a shard, though, the true
   sequential order at one instant is the pop order (the emission
   sequence number), not the rank order: a handler may schedule a
   same-time event of LOWER rank — the Step handler queuing a
   collection for a zero-cost slice, say — and the engine necessarily
   pops it after its scheduler, while a rank sort would replay it
   before.  Hence the key is (time, shard, seq). *)
let barrier_flush t =
  Enet.Netsim.flush_outboxes t.net (Array.map (fun sh -> sh.sh_outbox) t.shards);
  if t.win_buffering then begin
    let all =
      Array.concat
        (Array.to_list
           (Array.mapi
              (fun s sh ->
                Array.of_list
                  (List.map (fun (tm, _rk, sq, b) -> (tm, s, sq, b)) sh.sh_buf))
              t.shards))
    in
    Array.sort
      (fun (t1, r1, s1, _) (t2, r2, s2, _) ->
        match Float.compare t1 t2 with
        | 0 -> ( match compare r1 r2 with 0 -> compare s1 s2 | c -> c)
        | c -> c)
      all;
    Array.iter
      (fun (_, _, _, b) ->
        match b with
        | B_ev ev -> emit_direct t ev
        | B_send d ->
          let arrives = Enet.Netsim.Outbox.arrival d.ds_entry in
          emit_direct t
            (E.Ev_msg_send
               { time = d.ds_time; src = d.ds_src; dst = d.ds_dst;
                 desc = d.ds_desc; bytes = d.ds_bytes; arrives });
          (* the transfer span follows its Ev_msg_send immediately, as
             on the sequential path *)
          (match d.ds_span with
          | Some (id, rid, pair) ->
            emit_direct t
              (E.Ev_span
                 { Obs.Span.name = "transfer"; node = d.ds_src;
                   arch_pair = pair; t_start_us = d.ds_time;
                   t_end_us = arrives; id; parent = Some rid;
                   bytes = d.ds_bytes })
          | None -> ()))
      all;
    Array.iter (fun sh -> sh.sh_buf <- []) t.shards
  end;
  let aborts =
    Array.fold_left (fun acc sh -> List.rev_append sh.sh_aborts acc) [] t.shards
  in
  (match aborts with
  | [] -> ()
  | aborts ->
    List.iter
      (fun (_, _, _, _, tid, reason) -> apply_deferred_abort t tid ~reason)
      (List.sort
         (fun (t1, _, s1, n1, _, _) (t2, _, s2, n2, _, _) ->
           match Float.compare t1 t2 with
           | 0 -> (
             (* same (time, shard, seq) key as the event replay above *)
             match compare t.owner.(n1) t.owner.(n2) with
             | 0 -> compare s1 s2
             | c -> c)
           | c -> c)
         aborts);
    Array.iter (fun sh -> sh.sh_aborts <- []) t.shards)

let now_ns () = Unix.gettimeofday () *. 1e9

let run_parallel t ~max_events =
  let base = ref 0 in
  Array.iter (fun sh -> base := !base + sh.sh_events) t.shards;
  let executed () =
    Array.fold_left (fun acc sh -> acc + sh.sh_events) (- !base) t.shards
  in
  let ev_before = Array.make (Array.length t.shards) 0 in
  let pool = Shard.Pool.create ~shards:(Array.length t.shards) in
  Fun.protect
    ~finally:(fun () ->
      t.win_active <- false;
      Shard.Pool.shutdown pool)
  @@ fun () ->
  let running = ref true in
  while !running do
    match pick_engine t with
    | None -> if not (reseed t) then running := false
    | Some (w0, _) when w0 >= t.balance_at ->
      (* everything earlier than the balancing point has executed; fire
         between windows, where no shard is running *)
      fire_balancer t
    | Some (w0, _) ->
      let horizon = Float.min (w0 +. t.lookahead) t.balance_at in
      t.win_buffering <- E.has_subscribers t.bus || t.trace <> None;
      Array.iteri
        (fun s sh ->
          sh.sh_seq <- 0;
          ev_before.(s) <- sh.sh_events)
        t.shards;
      t.win_active <- true;
      let t0 = now_ns () in
      Shard.Pool.run pool (fun s ->
          let s0 = now_ns () in
          win_run_shard t s ~horizon;
          t.shards.(s).sh_win_busy_ns <- now_ns () -. s0);
      let wall = now_ns () -. t0 in
      t.win_active <- false;
      barrier_flush t;
      E.note_window t.bus ~horizon_us:t.lookahead;
      Array.iteri
        (fun s sh ->
          let sc = E.shard_counters t.bus s in
          let d_ev = sh.sh_events - ev_before.(s) in
          if d_ev > 0 then sc.E.s_windows <- sc.E.s_windows + 1;
          sc.E.s_events <- sc.E.s_events + d_ev;
          sc.E.s_busy_ns <- sc.E.s_busy_ns +. sh.sh_win_busy_ns;
          sc.E.s_stall_ns <-
            sc.E.s_stall_ns +. Float.max 0.0 (wall -. sh.sh_win_busy_ns))
        t.shards;
      if executed () > max_events then
        failwith "Cluster.run: event budget exceeded (livelock?)"
  done

let run ?(max_events = 2_000_000) t =
  if parallel_ok t then run_parallel t ~max_events
  else begin
    let budget = ref max_events in
    let running = ref true in
    while !running do
      if step_once t then begin
        decr budget;
        if !budget <= 0 then
          failwith "Cluster.run: event budget exceeded (livelock?)"
      end
      else running := false
    done
  end

(* checkpointing: quiesce first so every segment is parked at a stop *)
let checkpoint_thread t ~node tid =
  quiesce_node t node;
  let image = Mobility.Checkpoint.suspend t.nodes.(node).n_kernel ~thread:tid in
  ensure_step t node;
  image

let restore_thread t ~node image =
  Mobility.Checkpoint.restore t.nodes.(node).n_kernel image;
  ensure_step t node;
  ensure_wake t node

(* Forced eviction from outside the kernel (load balancers, tests): arm
   the trap; when the segment is already capturable the trap fires here
   and its outcalls route through the normal move machinery, otherwise
   the kernel captures it at the segment's next bus stop during a later
   scheduling slice. *)
let evict_thread t ~node ~seg_id ~dest =
  let outs = K.evict_thread t.nodes.(node).n_kernel ~seg_id ~dest_node:dest in
  List.iter (handle_outcall t ~src:node) outs;
  ensure_step t node

(* Batched migration: capture the union closure of several co-located
   roots — the objects, their attached closures, and every thread
   segment executing inside any of them — and ship it as a single
   [M_group_move] over the pooled wire path, under one root "move" span
   whose capture leg is named "group_pack" and landing leg
   "group_unpack".  Roots not resident on [node] are skipped; a batch
   that captures nothing sends nothing. *)
let group_move t ~node ~dest oids =
  if dest <> node && oids <> [] then begin
    let k = t.nodes.(node).n_kernel in
    quiesce_node t node;
    if t.spans_on then t.move_t0.(node) <- K.time_us k;
    let roots = List.filter_map (K.find_object k) oids in
    (* batch send-off under an active mark cycle: grey every captured
       root before the pack removes the group from the heap's root set *)
    (match t.gcs.(node) with
    | Some cy -> List.iter (Ert.Gc.grey_addr cy k) roots
    | None -> ());
    let payload = Mobility.Move.perform_group_move k ~roots ~dest in
    if payload.Mobility.Marshal.mp_objects <> [] then begin
      emit t ~node
        (E.Ev_group_move
           { time = K.time_us k; node; dest;
             objects = List.length payload.Mobility.Marshal.mp_objects;
             segments = List.length payload.Mobility.Marshal.mp_segments });
      send_message t ~src:node
        { Mobility.Move.snd_dest = dest;
          snd_msg = Mobility.Marshal.M_group_move payload };
      ensure_step t node
    end
  end

(* Follow forwarding-proxy hints from [from] toward [oid]: returns the
   hosting node, if one is reached, and the hops taken.  A harness-side
   observer (tests, stats) — it sends nothing and charges nothing, so
   calling it cannot perturb a trace. *)
let chain_walk t ~from oid =
  let rec go node hops visited =
    if List.mem node visited then (None, hops)
    else if
      (not t.nodes.(node).n_crashed)
      && K.find_object t.nodes.(node).n_kernel oid <> None
    then (Some node, hops)
    else
      let k = t.nodes.(node).n_kernel in
      match K.proxy_of k oid with
      | Some addr ->
        let next = K.proxy_hint k addr in
        if next = node then (None, hops)
        else go next (hops + 1) (node :: visited)
      | None -> (None, hops)
  in
  go from 0 []

let find_root_done t tid =
  let rec go s =
    if s >= Array.length t.shards then None
    else
      match Hashtbl.find_opt t.shards.(s).sh_root_done tid with
      | Some r -> Some r
      | None -> go (s + 1)
  in
  go 0

let root_done_count t =
  Array.fold_left (fun acc sh -> acc + Hashtbl.length sh.sh_root_done) 0 t.shards

let result t tid =
  match find_root_done t tid with
  | Some r -> Some r
  | None ->
    (* fallback for results recorded before the cluster's callback was
       installed (kernels driven outside the cluster) *)
    let found = ref None in
    Array.iter
      (fun n ->
        match K.root_result n.n_kernel tid with
        | Some r -> found := Some r
        | None -> ())
      t.nodes;
    !found

let run_until_result ?(max_events = 2_000_000) t tid =
  let budget = ref max_events in
  (* probing two hash tables before every event is measurable in the hot
     loop; both tables only ever grow, so O(1) length checks gate the
     probes and the common no-news iteration touches neither *)
  let probe () =
    match find_root_done t tid with
    | Some r -> Some r
    | None ->
      if Hashtbl.mem t.failures tid then
        raise (Thread_unavailable (Hashtbl.find t.failures tid));
      None
  in
  let rec go ~done_n ~fail_n =
    let dn = root_done_count t and fn = Hashtbl.length t.failures in
    let hit = if dn <> done_n || fn <> fail_n then probe () else None in
    match hit with
    | Some r -> r
    | None ->
      if not (step_once t) then
        failwith "Cluster.run_until_result: cluster quiescent without a result";
      decr budget;
      if !budget <= 0 then failwith "Cluster.run_until_result: event budget exceeded";
      go ~done_n:dn ~fail_n:fn
  in
  go ~done_n:(-1) ~fail_n:(-1)

let global_time_us t =
  Array.fold_left (fun acc n -> Float.max acc (K.time_us n.n_kernel)) 0.0 t.nodes

let output t ~node = K.output (kernel t node)

let outputs t =
  String.concat "" (Array.to_list (Array.map (fun n -> K.output n.n_kernel) t.nodes))

let events_processed t =
  Array.fold_left (fun acc sh -> acc + sh.sh_events) t.events t.shards

let collections t =
  Array.fold_left (fun acc sh -> acc + sh.sh_collections) t.collections t.shards

(* between events every segment is parked at a bus stop, so global
   properties are well defined; [inv_last_times] carries the previous
   per-node clock observations for the monotonicity check *)
let check_invariants t =
  Fault.Invariants.check ~n_nodes:(Array.length t.nodes)
    ~kernel:(fun i -> t.nodes.(i).n_kernel)
    ~crashed:(fun i -> t.nodes.(i).n_crashed)
    ~thread_failed:(fun tid -> Hashtbl.mem t.failures tid)
    ~last_times:t.inv_last_times
