(* Node→shard placement and the domain worker pool for the sharded
   engine.  Placement is contiguous: shard [s] owns the node interval
   [lo s, hi s), an even split of the node range.  Contiguity is what
   lets the node-major engine rank double as the cross-shard merge key:
   sorting merged events by (time, rank) groups each node's events
   exactly as a single heap would, independent of how many shards the
   nodes are spread over. *)

type plan = {
  n_nodes : int;
  n_shards : int;
  owner : int array;  (* node -> shard *)
  lo : int array;  (* shard -> first owned node *)
  hi : int array;  (* shard -> one past last owned node *)
}

let plan ~n_nodes ~shards =
  if n_nodes < 1 then invalid_arg "Shard.plan: need at least one node";
  if shards < 1 then invalid_arg "Shard.plan: need at least one shard";
  let d = min shards n_nodes in
  let lo = Array.init d (fun s -> s * n_nodes / d) in
  let hi = Array.init d (fun s -> (s + 1) * n_nodes / d) in
  let owner = Array.make n_nodes 0 in
  for s = 0 to d - 1 do
    for i = lo.(s) to hi.(s) - 1 do
      owner.(i) <- s
    done
  done;
  { n_nodes; n_shards = d; owner; lo; hi }

let n_shards p = p.n_shards
let owner p node = p.owner.(node)
let lo p s = p.lo.(s)
let hi p s = p.hi.(s)

(* A persistent pool of worker domains, one per shard beyond the first:
   the calling domain executes shard 0 itself, so [shards = 1] never
   spawns anything.  Workers park on a condition variable between
   windows; [run] publishes a job, executes its own share, then waits
   for the stragglers — the mutex hand-offs at the window edges are the
   only synchronisation the sharded engine needs, because inside a
   window every shard touches only its own nodes' state. *)
module Pool = struct
  type t = {
    size : int;
    mutable job : int -> unit;
    mutable gen : int;
    mutable remaining : int;
    mutable quit : bool;
    mutable failed : (exn * Printexc.raw_backtrace) option;
    m : Mutex.t;
    work : Condition.t;
    finished : Condition.t;
    mutable domains : unit Domain.t array;
  }

  let record_failure p e bt =
    Mutex.lock p.m;
    if p.failed = None then p.failed <- Some (e, bt);
    Mutex.unlock p.m

  let worker p s =
    let my_gen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock p.m;
      while (not p.quit) && p.gen = !my_gen do
        Condition.wait p.work p.m
      done;
      if p.quit then begin
        Mutex.unlock p.m;
        running := false
      end
      else begin
        my_gen := p.gen;
        let job = p.job in
        Mutex.unlock p.m;
        (try job s
         with e -> record_failure p e (Printexc.get_raw_backtrace ()));
        Mutex.lock p.m;
        p.remaining <- p.remaining - 1;
        if p.remaining = 0 then Condition.signal p.finished;
        Mutex.unlock p.m
      end
    done

  let create ~shards =
    if shards < 1 then invalid_arg "Shard.Pool.create: need at least one shard";
    let p =
      {
        size = shards;
        job = ignore;
        gen = 0;
        remaining = 0;
        quit = false;
        failed = None;
        m = Mutex.create ();
        work = Condition.create ();
        finished = Condition.create ();
        domains = [||];
      }
    in
    p.domains <-
      Array.init (shards - 1) (fun w -> Domain.spawn (fun () -> worker p (w + 1)));
    p

  let run p job =
    if p.size = 1 then job 0
    else begin
      Mutex.lock p.m;
      p.job <- job;
      p.remaining <- p.size - 1;
      p.gen <- p.gen + 1;
      Condition.broadcast p.work;
      Mutex.unlock p.m;
      (try job 0 with e -> record_failure p e (Printexc.get_raw_backtrace ()));
      Mutex.lock p.m;
      while p.remaining > 0 do
        Condition.wait p.finished p.m
      done;
      let failed = p.failed in
      p.failed <- None;
      Mutex.unlock p.m;
      match failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

  let shutdown p =
    Mutex.lock p.m;
    p.quit <- true;
    Condition.broadcast p.work;
    Mutex.unlock p.m;
    Array.iter Domain.join p.domains
end
