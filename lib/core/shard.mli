(** Node→shard placement and the worker-domain pool for the sharded
    engine (see DESIGN.md §11).

    Placement is contiguous — shard [s] owns the node interval
    [[lo s, hi s)] — so the engine's node-major rank doubles as the
    cross-shard merge key: merging per-shard event streams by
    (time, rank) reproduces the single-heap order for any shard count. *)

type plan

val plan : n_nodes:int -> shards:int -> plan
(** Even contiguous split of [n_nodes] over at most [shards] shards
    (capped at one shard per node). *)

val n_shards : plan -> int
val owner : plan -> int -> int
val lo : plan -> int -> int
val hi : plan -> int -> int

(** A persistent pool of worker domains, one per shard beyond the
    first; the calling domain executes shard 0 itself.  [run p job]
    executes [job s] for every shard [s] and returns when all are done;
    a job exception is re-raised in the caller after the barrier.
    [shards = 1] spawns no domains and runs inline. *)
module Pool : sig
  type t

  val create : shards:int -> t
  val run : t -> (int -> unit) -> unit
  val shutdown : t -> unit
end
