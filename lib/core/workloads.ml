let table1_src =
  {|
// The Table 1 workload: the moved fragment carries 13 variables
// (dest, iters, home, t0, i, v1..v8), as in the paper's measurement.
object Agent
  operation trip[dest : int, iters : int] -> [r : int]
    var home : int <- thisnode
    var v1 : int <- 1
    var v2 : int <- 2
    var v3 : int <- 3
    var v4 : int <- 4
    var v5 : int <- 5
    var v6 : int <- 6
    var v7 : int <- 7
    var v8 : int <- 8
    var t0 : int <- timenow
    var i : int <- 0
    loop
      exit when i >= iters
      i <- i + 1
      move self to dest
      move self to home
    end loop
    var t1 : int <- timenow
    r <- (t1 - t0) / iters + (v1 + v2 + v3 + v4 + v5 + v6 + v7 + v8) * 0
  end trip
end Agent
|}

let intranode_src =
  {|
object Adder
  operation add[a : int, b : int] -> [r : int]
    r <- a + b
  end add
end Adder

object Agent
  operation work[n : int, where : int] -> [r : int]
    move self to where
    var a : Adder <- new Adder
    var t0 : int <- timenow
    var i : int <- 0
    var sum : int <- 0
    loop
      exit when i >= n
      i <- i + 1
      sum <- a.add[sum, i] * 3 / 3 - i + i
    end loop
    var t1 : int <- timenow
    r <- t1 - t0
  end work
end Agent
|}

let fig2_src =
  {|
object Fib
  operation fib[n : int] -> [r : int]
    if n < 2 then
      r <- n
    else
      r <- self.fib[n - 1] + self.fib[n - 2]
    end if
  end fib
end Fib

object Main
  operation start[n : int] -> [r : int]
    var f : Fib <- new Fib
    var acc : int <- 0
    var i : int <- 0
    loop
      exit when i >= 50
      i <- i + 1
      acc <- acc + i * i - (i - 1) * (i + 1)
    end loop
    r <- f.fib[n] + acc - 50
  end start
end Main
|}

(* the Table 1 program with a configurable fragment size: [n_vars] live
   integer variables carried across every move (plus dest/iters/home/t0/i,
   which are live too) *)
let table1_src_sized ~n_vars =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "object Agent\n  operation trip[dest : int, iters : int] -> [r : int]\n";
  Buffer.add_string buf "    var home : int <- thisnode\n";
  for i = 1 to n_vars do
    Buffer.add_string buf (Printf.sprintf "    var v%d : int <- %d\n" i i)
  done;
  Buffer.add_string buf
    "    var t0 : int <- timenow\n\
    \    var i : int <- 0\n\
    \    loop\n\
    \      exit when i >= iters\n\
    \      i <- i + 1\n\
    \      move self to dest\n\
    \      move self to home\n\
    \    end loop\n\
    \    var t1 : int <- timenow\n\
    \    r <- (t1 - t0) / iters";
  for i = 1 to n_vars do
    Buffer.add_string buf (Printf.sprintf " + v%d * 0" i)
  done;
  Buffer.add_string buf "\n  end trip\nend Agent\n";
  Buffer.contents buf

(* The engine-scaling workload: one agent tours the ring of nodes,
   spinning a little at each stop.  Under a small preemptive quantum the
   spin decomposes into many cheap scheduling events, so the cost of
   EVENT SELECTION — O(nodes) rescans in the seed, O(log pending) heap
   operations now — dominates the run and the difference is measurable. *)
let scaling_src =
  {|
object Agent
  operation tour[n : int, hops : int, spins : int] -> [r : int]
    var home : int <- thisnode
    var i : int <- 0
    var j : int <- 0
    var dest : int <- 0
    var acc : int <- 0
    loop
      exit when i >= hops
      i <- i + 1
      dest <- i - (i / n) * n
      move self to dest
      j <- 0
      loop
        exit when j >= spins
        j <- j + 1
        acc <- acc + j - (j / 2) * 2
      end loop
    end loop
    move self to home
    r <- acc
  end tour
end Agent
|}

(* The sharded-engine workload: one agent per node, all touring the
   ring with their home as phase offset, so at every hop the agents
   occupy pairwise distinct nodes — agent a sits at (a + hop) mod n.
   With contiguous shard placement the spin events between moves are
   pure intra-shard work happening concurrently on every shard, and the
   moves (network latency apart) fall on window barriers: the shape a
   conservative parallel engine can actually speed up. *)
let parallel_src =
  {|
object Agent
  operation tour[n : int, hops : int, spins : int] -> [r : int]
    var home : int <- thisnode
    var i : int <- 0
    var j : int <- 0
    var dest : int <- 0
    var acc : int <- 0
    loop
      exit when i >= hops
      i <- i + 1
      dest <- home + i - ((home + i) / n) * n
      move self to dest
      j <- 0
      loop
        exit when j >= spins
        j <- j + 1
        acc <- acc + j - (j / 2) * 2
      end loop
    end loop
    move self to home
    r <- acc + home - home
  end tour
end Agent
|}

type roundtrip = {
  rt_us_per_trip : float;
  rt_bytes_sent : int;
  rt_messages : int;
  rt_conversion_calls : int;
  rt_retransmits : int;
  rt_host_seconds : float;
}

let measure_roundtrip ?protocol ?wire_impl ?faults ?shards ?n_vars ~home ~dest
    ~iters () =
  let t_start = Unix.gettimeofday () in
  let cl =
    Cluster.create ?protocol ?wire_impl ?faults ?shards ~archs:[ home; dest ] ()
  in
  let source =
    match n_vars with
    | None -> table1_src
    | Some n -> table1_src_sized ~n_vars:n
  in
  ignore (Cluster.compile_and_load cl ~name:"table1" source);
  let agent = Cluster.create_object cl ~node:0 ~class_name:"Agent" in
  let tid =
    Cluster.spawn cl ~node:0 ~target:agent ~op:"trip"
      ~args:[ Ert.Value.Vint 1l; Ert.Value.Vint (Int32.of_int iters) ]
  in
  let result = Cluster.run_until_result cl tid in
  let us =
    match result with
    | Some (Ert.Value.Vint v) -> Int32.to_float v
    | _ -> failwith "table1 workload did not return a time"
  in
  let conv =
    Enet.Conversion_stats.calls (Cluster.conversion_stats cl 0)
    + Enet.Conversion_stats.calls (Cluster.conversion_stats cl 1)
  in
  {
    rt_us_per_trip = us;
    rt_bytes_sent = Enet.Netsim.bytes_sent (Cluster.network cl);
    rt_messages = Enet.Netsim.messages_sent (Cluster.network cl);
    rt_conversion_calls = conv;
    rt_retransmits = Cluster.total_counter cl (fun c -> c.Events.c_retransmits);
    rt_host_seconds = Unix.gettimeofday () -. t_start;
  }

type intranode = {
  in_result : int;
  in_virtual_us : float;
  in_insns : int;
  in_host_seconds : float;
}

let measure_intranode ?optimize ~arch ~migrated ~n () =
  let t_start = Unix.gettimeofday () in
  (* node 1 is the measured machine; node 0 only launches when migrating *)
  let cl = Cluster.create ~archs:[ Isa.Arch.sparc; arch ] () in
  ignore (Cluster.compile_and_load ?optimize cl ~name:"intranode" intranode_src);
  let start_node = if migrated then 0 else 1 in
  let agent = Cluster.create_object cl ~node:start_node ~class_name:"Agent" in
  let k1 = Cluster.kernel cl 1 in
  let insns_before = Ert.Kernel.insns_executed k1 in
  let tid =
    Cluster.spawn cl ~node:start_node ~target:agent ~op:"work"
      ~args:[ Ert.Value.Vint (Int32.of_int n); Ert.Value.Vint 1l ]
  in
  let result = Cluster.run_until_result cl tid in
  let us =
    match result with
    | Some (Ert.Value.Vint v) -> Int32.to_float v
    | _ -> failwith "intranode workload did not return a time"
  in
  {
    in_result = int_of_float us;
    in_virtual_us = us;
    in_insns = Ert.Kernel.insns_executed k1 - insns_before;
    in_host_seconds = Unix.gettimeofday () -. t_start;
  }

type scaling = {
  sc_nodes : int;
  sc_shards : int;
  sc_agents : int;
  sc_result : int;
  sc_events : int;
  sc_virtual_us : float;
  sc_host_seconds : float;
  sc_events_per_sec : float;
  sc_engine_pops : int;
  sc_engine_stale : int;
  sc_windows : int;
  sc_mean_horizon_us : float;
}

let scaling_archs n_nodes =
  let pool = [| Isa.Arch.sparc; Isa.Arch.sun3; Isa.Arch.hp9000_433; Isa.Arch.vax |] in
  List.init n_nodes (fun i -> pool.(i mod Array.length pool))

let measure_scaling ?(scheduler = Cluster.Heap) ?(quantum = 20) ?faults
    ?(shards = 1) ?(agents = 1) ~n_nodes ~hops ~spins () =
  let multi = agents > 1 in
  (* the multi-agent tour's premise — agents at pairwise distinct nodes
     on every hop — holds only when every node executes at the same
     speed, so the lockstep phase offsets never drift; heterogeneous
     node speeds eventually co-locate two mid-quantum agents, a
     different workload entirely *)
  let archs =
    if multi then List.init n_nodes (fun _ -> Isa.Arch.sparc)
    else scaling_archs n_nodes
  in
  let cl = Cluster.create ~scheduler ~quantum ?faults ~shards ~archs () in
  ignore
    (Cluster.compile_and_load cl ~name:"scaling"
       (if multi then parallel_src else scaling_src));
  let spawn_agent a =
    let node = a mod n_nodes in
    let agent = Cluster.create_object cl ~node ~class_name:"Agent" in
    Cluster.spawn cl ~node ~target:agent ~op:"tour"
      ~args:
        [
          Ert.Value.Vint (Int32.of_int n_nodes);
          Ert.Value.Vint (Int32.of_int hops);
          Ert.Value.Vint (Int32.of_int spins);
        ]
  in
  let tids = List.init agents spawn_agent in
  (* time the event loop only, not compilation; settle the collector so
     one run's garbage is not charged to the next *)
  Gc.full_major ();
  let t_start = Unix.gettimeofday () in
  (* a single agent keeps the seed's exact run-until-result drive; the
     multi-agent tour runs to quiescence — the only entry point allowed
     to execute shards in parallel — and the per-thread results are
     collected afterwards *)
  let r =
    if multi then begin
      Cluster.run cl;
      List.fold_left
        (fun acc tid ->
          match Cluster.result cl tid with
          | Some (Some (Ert.Value.Vint v)) -> acc + Int32.to_int v
          | _ -> failwith "scaling agent did not return a value")
        0 tids
    end
    else
      match Cluster.run_until_result cl (List.hd tids) with
      | Some (Ert.Value.Vint v) -> Int32.to_int v
      | _ -> failwith "scaling workload did not return a value"
  in
  let dt = Unix.gettimeofday () -. t_start in
  let events = Cluster.events_processed cl in
  let pops, stale =
    Array.fold_left
      (fun (p, s) e -> (p + Engine.pops e, s + Engine.stale_pops e))
      (0, 0) (Cluster.engines cl)
  in
  {
    sc_nodes = n_nodes;
    sc_shards = Cluster.n_shards cl;
    sc_agents = agents;
    sc_result = r;
    sc_events = events;
    sc_virtual_us = Cluster.global_time_us cl;
    sc_host_seconds = dt;
    sc_events_per_sec = float_of_int events /. Float.max dt 1e-9;
    sc_engine_pops = pops;
    sc_engine_stale = stale;
    sc_windows = Events.windows (Cluster.bus cl);
    sc_mean_horizon_us = Events.mean_horizon_us (Cluster.bus cl);
  }

(* The eviction workload: [workers] compute-bound threads all spawned on
   node 0 of an otherwise idle homogeneous cluster.  The program never
   moves itself and never polls cooperatively — only forced eviction
   ([Cluster.evict_thread], armed by the balancer below) can spread the
   load.  Each worker's digest carries the node it finished on, so the
   result proves where the balancer actually put things. *)
let hotspot_src =
  {|
object Worker
  operation work[rounds : int, spins : int] -> [r : int]
    var i : int <- 0
    var j : int <- 0
    var acc : int <- 0
    loop
      exit when i >= rounds
      i <- i + 1
      j <- 0
      loop
        exit when j >= spins
        j <- j + 1
        acc <- acc + j - (j / 2) * 2
      end loop
    end loop
    r <- acc * 100 + thisnode
  end work
end Worker
|}

let hot_spot_balancer ?(threshold = 2) cl =
  let module T = Ert.Thread in
  let n = Cluster.n_nodes cl in
  (* hysteresis: the balancer is blind to evictions still in flight (the
     victim has left the hot node's queue but not yet landed on the cold
     one), so back-to-back decisions overshoot and the cluster thrashes.
     One eviction per cooldown window gives each payload time to land
     before the next reading.  Virtual-time based, so it is deterministic
     at any shard count. *)
  let cooldown_us = 25_000.0 in
  let last_fire = ref neg_infinity in
  fun () ->
    let now = Cluster.global_time_us cl in
    if now -. !last_fire >= cooldown_us then begin
      let depth i = Ert.Kernel.ready_depth (Cluster.kernel cl i) in
      let hot = ref 0 and cold = ref 0 in
      for i = 1 to n - 1 do
        if depth i > depth !hot then hot := i;
        if depth i < depth !cold then cold := i
      done;
      if !hot <> !cold && depth !hot - depth !cold >= threshold then begin
        let k = Cluster.kernel cl !hot in
        (* lowest-id runnable segment: deterministic under any shard count *)
        let candidates =
          Ert.Kernel.segments k
          |> List.filter (fun s ->
                 s.T.seg_live
                 &&
                 match s.T.seg_status with
                 | T.Parked Isa.Suspend.Run -> true
                 | _ -> false)
          |> List.sort (fun a b -> compare a.T.seg_id b.T.seg_id)
        in
        match candidates with
        | s :: _ ->
          last_fire := now;
          Cluster.evict_thread cl ~node:!hot ~seg_id:s.T.seg_id ~dest:!cold
        | [] -> ()
      end
    end

(* The location-directory workload: a large cold population of cells
   fills the dense object tables and the partitioned directory, while a
   small co-located "flock" of hot cells tours the ring as batched group
   migrations.  Chasers on fixed nodes hold references to flock members
   — stale the moment the first tour hop lands — so every remote invoke
   exercises the locate machinery: forwarding-proxy walks, chain
   collapse hints, and (when an invoke outruns an in-flight transfer)
   directory lookups.  The chasers' digests prove every call landed. *)
let cluster_src =
  {|
object Cell
  operation get[x : int] -> [r : int]
    r <- x
  end get
end Cell

object Chaser
  operation chase[c : Cell, times : int] -> [r : int]
    var i : int <- 0
    var acc : int <- 0
    loop
      exit when i >= times
      i <- i + 1
      acc <- acc + c.get[i]
    end loop
    r <- acc
  end chase
end Chaser
|}

type cluster_run = {
  cr_nodes : int;
  cr_shards : int;
  cr_objects : int;
  cr_result : int;
  cr_expected : int;
  cr_events : int;
  cr_virtual_us : float;
  cr_host_seconds : float;
  cr_run_seconds : float;
  cr_events_per_sec : float;
  cr_messages : int;
  cr_bytes : int;
  cr_locates : int;
  cr_locate_hops : int;
  cr_mean_hops : float;
  cr_collapses : int;
  cr_dir_updates : int;
  cr_dir_applied : int;
  cr_dir_stale : int;
  cr_dir_hits : int;
  cr_dir_misses : int;
  cr_group_moves : int;
  cr_group_objects : int;
}

let measure_cluster ?(shards = 1) ?(flock = 16) ?(askers = 8) ?(calls = 12)
    ?(rounds = 16) ~n_nodes ~n_objects () =
  let t_start = Unix.gettimeofday () in
  (* homogeneous ring: the point is location traffic, not conversion *)
  let archs = List.init n_nodes (fun _ -> Isa.Arch.sparc) in
  let cl = Cluster.create ~shards ~location:Cluster.Loc_directory ~archs () in
  ignore (Cluster.compile_and_load cl ~name:"cluster" cluster_src);
  (* the flock is born co-located on node 0; the cold population is
     spread round-robin (each birth registers silently with its home
     shard, so the directory starts authoritative at full scale) *)
  let flock_oids =
    List.init flock (fun _ -> Cluster.create_object cl ~node:0 ~class_name:"Cell")
  in
  for i = flock to n_objects - 1 do
    ignore (Cluster.create_object cl ~node:(i mod n_nodes) ~class_name:"Cell")
  done;
  let flock_arr = Array.of_list flock_oids in
  let tids =
    List.init askers (fun a ->
        let node = 1 + a * (n_nodes - 1) / askers in
        let chaser = Cluster.create_object cl ~node ~class_name:"Chaser" in
        Cluster.spawn cl ~node ~target:chaser ~op:"chase"
          ~args:
            [
              Ert.Value.Vref flock_arr.(a mod flock);
              Ert.Value.Vint (Int32.of_int calls);
            ])
  in
  (* the tour: one group migration per balancing point, gated on the
     previous payload having landed (otherwise the roots are not yet
     resident and the batch would capture nothing), bounded to [rounds]
     hops so the run is finite *)
  let home = ref 0 and remaining = ref rounds in
  let stride = max 1 (n_nodes / 3) in
  Cluster.set_balancer cl ~every_us:400.0 (fun () ->
      if !remaining > 0 then begin
        let k = Cluster.kernel cl !home in
        if List.for_all (fun o -> Ert.Kernel.find_object k o <> None) flock_oids
        then begin
          decr remaining;
          let dest = (!home + stride) mod n_nodes in
          Cluster.group_move cl ~node:!home ~dest flock_oids;
          home := dest
        end
      end);
  Gc.full_major ();
  let t_run = Unix.gettimeofday () in
  Cluster.run cl;
  let dt_run = Unix.gettimeofday () -. t_run in
  let result =
    List.fold_left
      (fun acc tid ->
        match Cluster.result cl tid with
        | Some (Some (Ert.Value.Vint v)) -> acc + Int32.to_int v
        | _ -> failwith "cluster chaser did not finish")
      0 tids
  in
  let c f = Cluster.total_counter cl f in
  let locates = c (fun x -> x.Events.c_locates) in
  let hops = c (fun x -> x.Events.c_locate_hops) in
  let applied, stale, hits, misses = Cluster.directory_stats cl in
  let events = Cluster.events_processed cl in
  {
    cr_nodes = n_nodes;
    cr_shards = Cluster.n_shards cl;
    cr_objects = n_objects;
    cr_result = result;
    cr_expected = askers * (calls * (calls + 1) / 2);
    cr_events = events;
    cr_virtual_us = Cluster.global_time_us cl;
    cr_host_seconds = Unix.gettimeofday () -. t_start;
    cr_run_seconds = dt_run;
    cr_events_per_sec = float_of_int events /. Float.max dt_run 1e-9;
    cr_messages = Enet.Netsim.messages_sent (Cluster.network cl);
    cr_bytes = Enet.Netsim.bytes_sent (Cluster.network cl);
    cr_locates = locates;
    cr_locate_hops = hops;
    cr_mean_hops =
      (if locates = 0 then 0.0 else float_of_int hops /. float_of_int locates);
    cr_collapses = c (fun x -> x.Events.c_collapses);
    cr_dir_updates = c (fun x -> x.Events.c_dir_updates);
    cr_dir_applied = applied;
    cr_dir_stale = stale;
    cr_dir_hits = hits;
    cr_dir_misses = misses;
    cr_group_moves = c (fun x -> x.Events.c_group_moves);
    cr_group_objects = c (fun x -> x.Events.c_group_objects);
  }

type evict_run = {
  er_result : int;
  er_virtual_us : float;
  er_events : int;
  er_evictions : int;
  er_peak_depth_home : int;
  er_final_spread : int list;
  er_trace : string;
  er_phase_table : string;
  er_host_seconds : float;
}

let measure_evict ?(async_migration = false) ?(shards = 1) ?(workers = 6)
    ?(every_us = 400.0) ?(threshold = 2) ~n_nodes ~rounds ~spins () =
  let t_start = Unix.gettimeofday () in
  (* homogeneous cluster: the point is queue depth, not conversion *)
  let archs = List.init n_nodes (fun _ -> Isa.Arch.sparc) in
  let cl = Cluster.create ~quantum:40 ~shards ~async_migration ~archs () in
  let trace = Buffer.create 4096 in
  Cluster.set_trace cl (fun line ->
      Buffer.add_string trace line;
      Buffer.add_char trace '\n');
  let prof = Obs.Profile.create () in
  Cluster.attach_profile cl prof;
  ignore (Cluster.compile_and_load cl ~name:"hotspot" hotspot_src);
  let spawn_worker _ =
    let w = Cluster.create_object cl ~node:0 ~class_name:"Worker" in
    Cluster.spawn cl ~node:0 ~target:w ~op:"work"
      ~args:[ Ert.Value.Vint (Int32.of_int rounds); Ert.Value.Vint (Int32.of_int spins) ]
  in
  let tids = List.init workers spawn_worker in
  Cluster.set_balancer cl ~every_us (hot_spot_balancer ~threshold cl);
  Cluster.run cl;
  let digests =
    List.map
      (fun tid ->
        match Cluster.result cl tid with
        | Some (Some (Ert.Value.Vint v)) -> Int32.to_int v
        | _ -> failwith "hotspot worker did not return a digest")
      tids
  in
  let spread = List.map (fun d -> d mod 100) digests in
  let evictions =
    List.init n_nodes (fun i -> Ert.Kernel.evictions (Cluster.kernel cl i))
    |> List.fold_left ( + ) 0
  in
  {
    er_result = List.fold_left ( + ) 0 digests;
    er_virtual_us = Cluster.global_time_us cl;
    er_events = Cluster.events_processed cl;
    er_evictions = evictions;
    er_peak_depth_home = Ert.Kernel.peak_ready_depth (Cluster.kernel cl 0);
    er_final_spread = spread;
    er_trace = Buffer.contents trace;
    er_phase_table = Obs.Profile.table prof;
    er_host_seconds = Unix.gettimeofday () -. t_start;
  }
