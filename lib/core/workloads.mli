(** Benchmark workloads: the programs behind every reproduced table and
    figure (see DESIGN.md's per-experiment index). *)

val table1_src : string
(** The Table 1 workload: a small thread (13 variables in the moved
    fragment) that measures, with the virtual clock, the cost of moving
    itself to another node and back ([X -> Y -> X], two moves per
    iteration). *)

val intranode_src : string
(** The section 3.6 intra-node workload: an invocation- and
    arithmetic-heavy loop, used to check that a node runs migrated threads
    at exactly native speed. *)

val fig2_src : string
(** The Figure 2 workload: a pure computation run at all three levels of
    the thread-state specialization hierarchy. *)

type roundtrip = {
  rt_us_per_trip : float;  (** virtual microseconds per X->Y->X round trip *)
  rt_bytes_sent : int;
  rt_messages : int;
  rt_conversion_calls : int;
  rt_retransmits : int;  (** frames retransmitted (0 without a fault plan) *)
  rt_host_seconds : float;  (** wall time spent simulating *)
}

val table1_src_sized : n_vars:int -> string
(** The Table 1 workload with a configurable number of live integer
    variables in the moved fragment (the paper's thread carried 13). *)

val measure_roundtrip :
  ?protocol:Cluster.protocol ->
  ?wire_impl:Enet.Wire.impl ->
  ?faults:Fault.Plan.t ->
  ?shards:int ->
  ?n_vars:int ->
  home:Isa.Arch.t ->
  dest:Isa.Arch.t ->
  iters:int ->
  unit ->
  roundtrip
(** Build a two-node cluster, run the Table 1 workload, and report the
    per-round-trip cost from the program's own virtual-clock measurement.
    [shards] shards the cluster; the reported Table 1 numbers are
    identical at every shard count (asserted by the regression tests). *)

type intranode = {
  in_result : int;
  in_virtual_us : float;
  in_insns : int;
  in_host_seconds : float;
}

val measure_intranode :
  ?optimize:bool -> arch:Isa.Arch.t -> migrated:bool -> n:int -> unit -> intranode
(** Run the intra-node loop on a node of the given architecture; with
    [migrated] the thread first migrates in from another node, so the
    measurement shows whether arriving threads run any slower (they must
    not). *)

val scaling_src : string
(** The engine-scaling workload: an agent tours the ring of nodes,
    spinning briefly at each stop; under a small preemptive quantum the
    run decomposes into many cheap events, so event-selection cost
    dominates. *)

val parallel_src : string
(** The sharded-engine workload: one agent per node touring the ring
    with its home node as phase offset, so agents occupy pairwise
    distinct nodes at every hop — concurrent intra-shard spin work on
    every shard, with the cross-shard moves a network latency apart.
    The distinct-nodes premise requires a homogeneous cluster: equal
    node speeds keep the agents in lockstep. *)

type scaling = {
  sc_nodes : int;
  sc_shards : int;  (** shards actually used (capped at one per node) *)
  sc_agents : int;
  sc_result : int;  (** the workload's own result (a determinism digest) *)
  sc_events : int;
  sc_virtual_us : float;
  sc_host_seconds : float;  (** wall time of the event loop *)
  sc_events_per_sec : float;
  sc_engine_pops : int;  (** summed over shards; 0 under [Scan] *)
  sc_engine_stale : int;
  sc_windows : int;  (** parallel windows run (0 in sequential regimes) *)
  sc_mean_horizon_us : float;
}

val measure_scaling :
  ?scheduler:Cluster.scheduler ->
  ?quantum:int ->
  ?faults:Fault.Plan.t ->
  ?shards:int ->
  ?agents:int ->
  n_nodes:int ->
  hops:int ->
  spins:int ->
  unit ->
  scaling
(** Run the scaling workload on an [n_nodes] cluster and report events
    per wall-clock second.  Run with both schedulers to compare: the
    simulation results must be identical, only the wall clock differs.

    [agents = 1] (default) keeps the seed's single-agent tour, driven
    by [run_until_result].  [agents > 1] spawns one {!parallel_src}
    agent per listed agent (agent [a] starts on node [a mod n_nodes])
    and runs the cluster to quiescence — the regime in which
    [shards > 1] executes windows in parallel.  Results, events and
    virtual time are identical at every shard count; only
    [sc_host_seconds] may differ. *)

val hotspot_src : string
(** The eviction workload: compute-bound workers that never move or
    poll on their own; only forced eviction can spread them off their
    spawn node.  Each worker's result digest encodes the node it
    finished on. *)

val hot_spot_balancer : ?threshold:int -> Cluster.t -> unit -> unit
(** A deterministic hot-spot load balancer for {!Cluster.set_balancer}:
    each firing compares per-node run-queue depths
    ({!Ert.Kernel.ready_depth}) and, when the deepest exceeds the
    shallowest by at least [threshold] (default 2), arms a forced
    eviction of the lowest-id runnable segment on the hot node toward
    the cool one.  At most one eviction fires per 25 ms cooldown window,
    giving in-flight payloads time to land before the next depth
    reading.  A function of kernel state and virtual time only, so its
    decisions are identical at every shard count.

    Thresholds below 2 can live-lock: moving a segment from a depth-1
    node to an empty one merely swaps the imbalance, so a lone thread
    ping-pongs forever without ever executing.  With [threshold >= 2]
    every eviction strictly narrows the depth spread. *)

val cluster_src : string
(** The location-directory workload: chasers repeatedly invoke cells
    they hold stale references to while the cells tour the ring as
    batched group migrations. *)

type cluster_run = {
  cr_nodes : int;
  cr_shards : int;
  cr_objects : int;  (** resident population created *)
  cr_result : int;  (** sum of chaser digests *)
  cr_expected : int;  (** what the digests must sum to *)
  cr_events : int;
  cr_virtual_us : float;
  cr_host_seconds : float;  (** wall time including population setup *)
  cr_run_seconds : float;  (** wall time of the event loop only *)
  cr_events_per_sec : float;  (** events / [cr_run_seconds] *)
  cr_messages : int;
  cr_bytes : int;
  cr_locates : int;  (** remote invokes that reached their target *)
  cr_locate_hops : int;  (** forwarding hops summed over those *)
  cr_mean_hops : float;  (** [cr_locate_hops / cr_locates]; the gate is <= 2 *)
  cr_collapses : int;  (** proxy chains shortened by hints *)
  cr_dir_updates : int;  (** batched directory updates sent *)
  cr_dir_applied : int;
  cr_dir_stale : int;  (** last-writer-wins rejections *)
  cr_dir_hits : int;
  cr_dir_misses : int;
  cr_group_moves : int;  (** batched transfers sent *)
  cr_group_objects : int;  (** objects carried by them *)
}

val measure_cluster :
  ?shards:int ->
  ?flock:int ->
  ?askers:int ->
  ?calls:int ->
  ?rounds:int ->
  n_nodes:int ->
  n_objects:int ->
  unit ->
  cluster_run
(** Build an [n_nodes] homogeneous cluster with the location directory
    on, populate it with [n_objects] cells ([flock] of them co-located
    on node 0, the rest round-robin), spawn [askers] chasers each
    invoking a flock member [calls] times, and rotate the flock
    [rounds] hops around the ring with {!Cluster.group_move} while they
    chase.  Every simulation-visible field is identical at any [shards]
    (asserted by the bench and the regression tests); only the wall
    clock may change. *)

type evict_run = {
  er_result : int;  (** sum of worker digests (encodes final placement) *)
  er_virtual_us : float;
  er_events : int;
  er_evictions : int;  (** eviction traps fired, summed over nodes *)
  er_peak_depth_home : int;  (** run-queue high-water mark on node 0 *)
  er_final_spread : int list;  (** node each worker finished on *)
  er_trace : string;  (** full event-bus trace (byte-identity checks) *)
  er_phase_table : string;  (** {!Obs.Profile} phase table incl. evict/overlap *)
  er_host_seconds : float;
}

val measure_evict :
  ?async_migration:bool ->
  ?shards:int ->
  ?workers:int ->
  ?every_us:float ->
  ?threshold:int ->
  n_nodes:int ->
  rounds:int ->
  spins:int ->
  unit ->
  evict_run
(** Spawn [workers] hotspot workers on node 0 of an [n_nodes]
    homogeneous cluster, install {!hot_spot_balancer}, and run to
    quiescence.  With [async_migration] the capture/translate/marshal
    pipeline runs on the background mover engine and its cost is
    refunded against the source clock, so [er_virtual_us] is never
    larger than the synchronous run's. *)
