(** Benchmark workloads: the programs behind every reproduced table and
    figure (see DESIGN.md's per-experiment index). *)

val table1_src : string
(** The Table 1 workload: a small thread (13 variables in the moved
    fragment) that measures, with the virtual clock, the cost of moving
    itself to another node and back ([X -> Y -> X], two moves per
    iteration). *)

val intranode_src : string
(** The section 3.6 intra-node workload: an invocation- and
    arithmetic-heavy loop, used to check that a node runs migrated threads
    at exactly native speed. *)

val fig2_src : string
(** The Figure 2 workload: a pure computation run at all three levels of
    the thread-state specialization hierarchy. *)

type roundtrip = {
  rt_us_per_trip : float;  (** virtual microseconds per X->Y->X round trip *)
  rt_bytes_sent : int;
  rt_messages : int;
  rt_conversion_calls : int;
  rt_retransmits : int;  (** frames retransmitted (0 without a fault plan) *)
  rt_host_seconds : float;  (** wall time spent simulating *)
}

val table1_src_sized : n_vars:int -> string
(** The Table 1 workload with a configurable number of live integer
    variables in the moved fragment (the paper's thread carried 13). *)

val measure_roundtrip :
  ?protocol:Cluster.protocol ->
  ?wire_impl:Enet.Wire.impl ->
  ?faults:Fault.Plan.t ->
  ?shards:int ->
  ?n_vars:int ->
  home:Isa.Arch.t ->
  dest:Isa.Arch.t ->
  iters:int ->
  unit ->
  roundtrip
(** Build a two-node cluster, run the Table 1 workload, and report the
    per-round-trip cost from the program's own virtual-clock measurement.
    [shards] shards the cluster; the reported Table 1 numbers are
    identical at every shard count (asserted by the regression tests). *)

type intranode = {
  in_result : int;
  in_virtual_us : float;
  in_insns : int;
  in_host_seconds : float;
}

val measure_intranode :
  ?optimize:bool -> arch:Isa.Arch.t -> migrated:bool -> n:int -> unit -> intranode
(** Run the intra-node loop on a node of the given architecture; with
    [migrated] the thread first migrates in from another node, so the
    measurement shows whether arriving threads run any slower (they must
    not). *)

val scaling_src : string
(** The engine-scaling workload: an agent tours the ring of nodes,
    spinning briefly at each stop; under a small preemptive quantum the
    run decomposes into many cheap events, so event-selection cost
    dominates. *)

val parallel_src : string
(** The sharded-engine workload: one agent per node touring the ring
    with its home node as phase offset, so agents occupy pairwise
    distinct nodes at every hop — concurrent intra-shard spin work on
    every shard, with the cross-shard moves a network latency apart.
    The distinct-nodes premise requires a homogeneous cluster: equal
    node speeds keep the agents in lockstep. *)

type scaling = {
  sc_nodes : int;
  sc_shards : int;  (** shards actually used (capped at one per node) *)
  sc_agents : int;
  sc_result : int;  (** the workload's own result (a determinism digest) *)
  sc_events : int;
  sc_virtual_us : float;
  sc_host_seconds : float;  (** wall time of the event loop *)
  sc_events_per_sec : float;
  sc_engine_pops : int;  (** summed over shards; 0 under [Scan] *)
  sc_engine_stale : int;
  sc_windows : int;  (** parallel windows run (0 in sequential regimes) *)
  sc_mean_horizon_us : float;
}

val measure_scaling :
  ?scheduler:Cluster.scheduler ->
  ?quantum:int ->
  ?faults:Fault.Plan.t ->
  ?shards:int ->
  ?agents:int ->
  n_nodes:int ->
  hops:int ->
  spins:int ->
  unit ->
  scaling
(** Run the scaling workload on an [n_nodes] cluster and report events
    per wall-clock second.  Run with both schedulers to compare: the
    simulation results must be identical, only the wall clock differs.

    [agents = 1] (default) keeps the seed's single-agent tour, driven
    by [run_until_result].  [agents > 1] spawns one {!parallel_src}
    agent per listed agent (agent [a] starts on node [a mod n_nodes])
    and runs the cluster to quiescence — the regime in which
    [shards > 1] executes windows in parallel.  Results, events and
    virtual time are identical at every shard count; only
    [sc_host_seconds] may differ. *)
