(** The typed trace/metrics bus.

    Every observable simulation action — kernel scheduling slices, message
    traffic, migrations, conversion work, collections, failures — is
    published on the bus as a structured event.  Subscribers get the typed
    value; per-node counters are maintained automatically; and
    {!legacy_string} renders the exact line the seed's [(string -> unit)]
    trace hook used to print, so existing trace consumers survive the
    refactor unchanged. *)

type t =
  | Ev_step of { node : int; time : float }
      (** one kernel scheduling slice ran *)
  | Ev_msg_send of {
      time : float;
      src : int;
      dst : int;
      desc : string;  (** [Mobility.Marshal.describe] of the message *)
      bytes : int;  (** encoded payload bytes *)
      arrives : float;
    }
  | Ev_msg_deliver of { time : float; node : int; desc : string }
  | Ev_msg_lost of { src : int; dst : int; desc : string }
      (** refused at send time: the destination is down *)
  | Ev_msg_drop of { node : int; desc : string }
      (** drained at a dead interface after transit *)
  | Ev_move_start of { time : float; node : int; obj : Ert.Oid.t; dest : int }
  | Ev_evict of { time : float; node : int; seg_id : int; dest : int }
      (** a forced-eviction trap fired: the named segment was captured at
          its next bus stop and is being shipped to [dest] *)
  | Ev_move_finish of {
      time : float;
      node : int;  (** the destination *)
      objects : int;
      segments : int;
      frames : int;
    }
  | Ev_conversion of { node : int; calls : int; bytes : int }
      (** marshalling work performed while encoding or decoding *)
  | Ev_gc of { time : float; node : int; swept : int; live : int; bytes_freed : int }
  | Ev_gc_phase of {
      time : float;
      node : int;
      phase : string;  (** ["gc_roots"], ["gc_mark"] or ["gc_sweep"] *)
      scanned : int;  (** pointer slots scanned by this increment *)
      pause_us : float;  (** virtual time charged for this increment *)
    }
      (** one bounded increment of an incremental collection cycle ran.
          Fires only under [Gc_incremental], so legacy (stop-the-world)
          traces are unaffected; the cycle's completion still emits the
          classic {!Ev_gc} line. *)
  | Ev_crash of { node : int }
  | Ev_restart of { node : int }
      (** a crash window closed: the node reboots empty (fault plans) *)
  | Ev_thread_lost of { thread : Ert.Thread.tid; reason : string }
  | Ev_search_start of { node : int; obj : Ert.Oid.t; probes : int }
  | Ev_search_found of { obj : Ert.Oid.t; node : int }
  | Ev_search_failed of { obj : Ert.Oid.t }
  | Ev_fault of { time : float; src : int; dst : int; kind : string }
      (** the injector perturbed a frame on the wire (drop/dup/delay) *)
  | Ev_msg_dup of { node : int; src : int; seq : int }
      (** a duplicate protocol message was suppressed at the receiver *)
  | Ev_retransmit of { node : int; dst : int; seq : int; attempt : int }
      (** an unacknowledged message was retransmitted *)
  | Ev_ack of { node : int; seq : int }
      (** an acknowledgement was processed at the original sender *)
  | Ev_plan of { node : int; compiles : int; hits : int }
      (** compiled conversion-plan cache activity during one en/decode *)
  | Ev_pool of { node : int; hits : int; misses : int; copies_saved : int }
      (** encode-buffer pool activity during one en/decode; [copies_saved]
          counts pooled handoffs that avoided a payload copy *)
  | Ev_span of Obs.Span.t
      (** a closed migration/RPC phase span (virtual-time interval); only
          emitted when span tracing is enabled on the cluster *)
  | Ev_dir_update of { node : int; obj : Ert.Oid.t; loc : int; applied : bool }
      (** the directory shard at [node] processed a location update;
          [applied = false] means it was stale and dropped *)
  | Ev_dir_lookup of { node : int; obj : Ert.Oid.t; found : bool }
      (** the directory shard at [node] answered a lookup *)
  | Ev_locate of { node : int; obj : Ert.Oid.t; hops : int }
      (** an invoke found its target at [node] after [hops] forwarding
          hops (0 = the first send landed on the object's host) *)
  | Ev_collapse of { node : int; obj : Ert.Oid.t; loc : int }
      (** a location hint rewrote [node]'s proxy for [obj] to point
          directly at [loc], collapsing the forwarding chain *)
  | Ev_group_move of {
      time : float;
      node : int;
      dest : int;
      objects : int;
      segments : int;
    }
      (** a batched group migration left [node]: [objects] co-located
          objects and their [segments] attached threads in one transfer *)
  | Ev_blit of { node : int; dest : int; skipped : bool }
      (** a move payload left [node] under the negotiated [blit] codec
          tier: [skipped = true] when the layout fingerprints matched and
          the translate/rebuild passes were skipped at both ends,
          [false] when the pair fell back to the plan path.  Fires only
          under the blit wire tier, so legacy traces are unaffected. *)
  | Ev_bridge of {
      time : float;
      node : int;  (** the destination *)
      count : int;
      src_level : int;
      dst_level : int;
    }
      (** a landed move resumed [count] threads through compiled bridge
          fragments: their parked bus stops have no exact correspondent
          in this node's code instance ([dst_level], vs. the source's
          [src_level]).  Fires only when nodes run differently-optimized
          instances, so legacy traces are unaffected. *)

val legacy_string : t -> string option
(** The seed trace hook's line for this event; [None] for events the seed
    never printed (steps, move completion, conversion accounting). *)

val to_string : t -> string
(** A line for every event (legacy format where one exists). *)

(** {1 Per-node counters} *)

type counters = {
  mutable c_steps : int;
  mutable c_sent : int;  (** messages sent from this node *)
  mutable c_delivered : int;  (** messages delivered to this node *)
  mutable c_lost : int;  (** messages lost at or addressed to this node *)
  mutable c_moves_out : int;  (** migrations initiated here *)
  mutable c_moves_in : int;  (** migrations landed here *)
  mutable c_evictions : int;  (** forced evictions fired on this node *)
  mutable c_conv_calls : int;
  mutable c_conv_bytes : int;
  mutable c_collections : int;
  mutable c_gc_bytes_freed : int;
  mutable c_gc_increments : int;  (** incremental-GC increments run here *)
  mutable c_searches : int;  (** broadcast location searches started here *)
  mutable c_faults : int;  (** wire faults injected on frames this node sent *)
  mutable c_dups_suppressed : int;  (** duplicates suppressed at this receiver *)
  mutable c_retransmits : int;  (** retransmissions sent from this node *)
  mutable c_acks : int;  (** acknowledgements processed at this node *)
  mutable c_plan_compiles : int;  (** conversion plans compiled for this node *)
  mutable c_plan_hits : int;  (** plan-cache hits *)
  mutable c_pool_hits : int;  (** encode buffers reused from the pool *)
  mutable c_pool_misses : int;  (** encode buffers freshly allocated *)
  mutable c_copies_saved : int;  (** payload copies avoided by pooled handoff *)
  mutable c_dir_updates : int;  (** location updates processed by this shard *)
  mutable c_dir_lookups : int;  (** directory lookups answered by this shard *)
  mutable c_locates : int;  (** invokes that found their target on this node *)
  mutable c_locate_hops : int;  (** forwarding hops those invokes took *)
  mutable c_collapses : int;  (** proxy chains collapsed on this node *)
  mutable c_group_moves : int;  (** group migrations initiated here *)
  mutable c_group_objects : int;  (** objects shipped in those groups *)
  mutable c_blit_skips : int;
      (** outgoing moves that took the common-layout blit fast path *)
  mutable c_blit_fallbacks : int;
      (** blit-tier moves whose pair mismatched: plan path used *)
  mutable c_bridged : int;
      (** arriving threads this node resumed through a bridge fragment *)
}

(** {1 The bus} *)

type bus

val create_bus : n_nodes:int -> bus
val subscribe : bus -> (t -> unit) -> unit
(** Subscribers are called in subscription order on every event. *)

val has_subscribers : bus -> bool

val emit : bus -> t -> unit
(** Update counters and notify subscribers. *)

val emit_step : bus -> node:int -> time:float -> unit
(** [emit bus (Ev_step {node; time})], but allocation-free when there
    are no subscribers — it runs once per scheduling slice. *)

val counters : bus -> int -> counters
val n_nodes : bus -> int

val total : bus -> (counters -> int) -> int
(** Sum a counter field across all nodes. *)

(** {1 Sharded-run observability}

    Per-shard window metrics, carried on the bus next to the per-node
    counters but never emitted as events: a sharded run must produce an
    event stream identical to a one-shard run, and windows are a
    wall-clock artefact.  [s_busy_ns] is host time spent executing
    inside windows; [s_stall_ns] is host time the shard spent parked at
    barriers while slower shards finished; events/sec follows as
    [s_events /. (s_busy_ns /. 1e9)]. *)

type shard_counters = {
  mutable s_windows : int;  (** windows in which the shard had work *)
  mutable s_events : int;  (** engine events the shard executed *)
  mutable s_busy_ns : float;
  mutable s_stall_ns : float;
}

val attach_shards : bus -> int -> unit
(** Size the per-shard counter array (idempotent per size). *)

val shards_attached : bus -> int
val shard_counters : bus -> int -> shard_counters

val note_window : bus -> horizon_us:float -> unit
(** Record one parallel window and its width in virtual microseconds. *)

val windows : bus -> int
val mean_horizon_us : bus -> float
