module P = Fault.Plan
module R = Fault.Rng

type verdict =
  | Completed of string
  | Unavailable of string
  | Stuck of string
  | Invariant of Fault.Invariants.violation list

type outcome = {
  f_seed : int;
  f_plan : P.t;
  f_verdict : verdict;
  f_ok : bool;
  f_events : int;
  f_virtual_us : float;
  f_moves : int;
  f_evictions : int;
  f_faults : int;
  f_retransmits : int;
  f_dups : int;
  f_group_moves : int;
  f_trace : string list;
}

(* ----------------------------------------------------------------------- *)
(* workloads

   Two program shapes, both touring the whole cluster so every fault in
   the plan has protocol traffic to hit:

   - [ping]: the Table 1 agent bouncing between node 0 and a peer —
     move / move-req / reply traffic only;
   - [mixed]: an agent touring the ring while invoking an Adder left
     behind on node 0 — every add after the first hop is a remote
     invocation through a proxy, so invoke / reply / forwarding /
     search traffic joins the moves. *)

let mixed_src =
  {|
object Adder
  operation add[a : int, b : int] -> [r : int]
    r <- a + b
  end add
end Adder

object Agent
  operation work[n : int, peers : int] -> [r : int]
    var a : Adder <- new Adder
    var i : int <- 0
    var dest : int <- 0
    var sum : int <- 0
    loop
      exit when i >= n
      i <- i + 1
      dest <- i - (i / peers) * peers
      move self to dest
      sum <- a.add[sum, i]
    end loop
    r <- sum
  end work
end Agent
|}

(* compile each workload once for the whole architecture pool and share
   the program across every cluster in the sweep; per-seed compilation
   would dominate a 200-seed run *)
let arch_pool = [ Isa.Arch.sparc; Isa.Arch.sun3; Isa.Arch.hp9000_433; Isa.Arch.vax ]

let compiled : (string, Emc.Compile.program) Hashtbl.t = Hashtbl.create 4

let program_for ~name source =
  match Hashtbl.find_opt compiled name with
  | Some p -> p
  | None ->
    let p = Emc.Compile.compile_exn ~name ~archs:arch_pool source in
    Hashtbl.replace compiled name p;
    p

(* ----------------------------------------------------------------------- *)
(* seed-derived scenarios *)

let pick rng choices = List.nth choices (R.int rng ~bound:(List.length choices))

let plan_of_seed ~rng ~n_nodes =
  let drop = pick rng [ 0.0; 0.05; 0.1; 0.3 ] in
  let dup = pick rng [ 0.0; 0.05; 0.2 ] in
  let delay_p = pick rng [ 0.0; 0.1; 0.3 ] in
  let delay_us = float_of_int (200 * (1 lsl R.int rng ~bound:5)) in
  let partitions =
    if R.bool rng ~p:0.3 && n_nodes >= 2 then begin
      (* cut the node range in two for a window *)
      let cut = 1 + R.int rng ~bound:(n_nodes - 1) in
      let from_us = float_of_int (500 + R.int rng ~bound:4500) in
      let len = float_of_int (1_000 + R.int rng ~bound:19_000) in
      [
        {
          P.pt_a = List.init cut Fun.id;
          pt_b = List.init (n_nodes - cut) (fun i -> cut + i);
          pt_from_us = from_us;
          pt_until_us = from_us +. len;
        };
      ]
    end
    else []
  in
  let chaos =
    if R.bool rng ~p:0.25 then begin
      let node = R.int rng ~bound:n_nodes in
      let crash_at = float_of_int (1_000 + R.int rng ~bound:19_000) in
      let restart =
        if R.bool rng ~p:0.6 then
          Some (crash_at +. float_of_int (2_000 + R.int rng ~bound:18_000))
        else None
      in
      [ { P.ch_node = node; ch_crash_at_us = crash_at; ch_restart_at_us = restart } ]
    end
    else []
  in
  P.make ~drop ~dup ~delay_p ~delay_us ~partitions ~chaos ()

type scenario = {
  sc_n_nodes : int;
  sc_prog : Emc.Compile.program;
  sc_class : string;
  sc_op : string;
  sc_args : Ert.Value.t list;
  sc_plan : P.t;
}

let scenario_of_seed seed =
  let rng = R.create ~seed in
  let n_nodes = 2 + R.int rng ~bound:3 in
  let workload = R.int rng ~bound:2 in
  let prog, cls, op, args =
    if workload = 0 then begin
      let n_vars = 1 + R.int rng ~bound:8 in
      let iters = 1 + R.int rng ~bound:4 in
      let name = Printf.sprintf "fuzz-ping-%d" n_vars in
      ( program_for ~name (Workloads.table1_src_sized ~n_vars),
        "Agent", "trip",
        [
          Ert.Value.Vint (Int32.of_int (1 + R.int rng ~bound:(n_nodes - 1)));
          Ert.Value.Vint (Int32.of_int iters);
        ] )
    end
    else begin
      let hops = 4 + R.int rng ~bound:7 in
      ( program_for ~name:"fuzz-mixed" mixed_src,
        "Agent", "work",
        [ Ert.Value.Vint (Int32.of_int hops);
          Ert.Value.Vint (Int32.of_int n_nodes) ] )
    end
  in
  let plan = P.with_seed (plan_of_seed ~rng ~n_nodes) seed in
  { sc_n_nodes = n_nodes; sc_prog = prog; sc_class = cls; sc_op = op;
    sc_args = args; sc_plan = plan }

(* ----------------------------------------------------------------------- *)
(* the invariant-checked driver *)

let value_string = function
  | None -> "(no value)"
  | Some v -> Format.asprintf "%a" Ert.Value.pp v

let run_seed ?plan ?drop ?(evict = false) ?(groups = false) ?(gc = false)
    ?(check_every = 1) ?(max_events = 400_000) ?(trace_lines = 120) ?shards
    ~seed () =
  let sc = scenario_of_seed seed in
  let plan = match plan with Some p -> P.with_seed p seed | None -> sc.sc_plan in
  let plan = match drop with Some d -> { plan with P.pl_drop = d } | None -> plan in
  let archs = List.init sc.sc_n_nodes (fun i -> List.nth arch_pool (i mod 4)) in
  (* the driver advances the cluster by [step_once] — the sequential
     (time, rank) merge — so any shard count replays the identical
     event sequence; [shards] here exercises the sharded structures
     under fault plans, not parallel execution *)
  let location = if groups then Cluster.Loc_directory else Cluster.Loc_off in
  (* gc mode: incremental collection with a threshold small enough that
     cycles are open nearly continuously, so the write barrier, migration
     send-off greying and crash-mid-cycle discard all race the fault
     plan.  The collector is local-roots-only (no distributed GC), so the
     mixed workload's Adder — referenced only by the departed agent's
     remote frame — is legitimately swept once its holder leaves; the
     protocol then reports the loss cleanly ("cannot be located") and the
     verdict stays ok.  The stop-the-world tier at the same threshold
     produces the identical verdict. *)
  let gc_mode = if gc then Cluster.Gc_incremental else Cluster.Gc_stw in
  let gc_threshold = if gc then Some (8 * 1024) else None in
  let cl =
    Cluster.create ~faults:plan ?shards ~location ~gc_mode ?gc_threshold
      ~gc_budget:64 ~archs ()
  in
  (* forced-eviction mode: the hot-spot balancer fires against the
     fault plan, so eviction captures race message loss, partitions and
     crash windows — same determinism obligations as any other event.
     Threshold 2 is the liveness floor (see {!Workloads.hot_spot_balancer});
     the extra peer threads spawned below create the depth imbalance
     that makes the balancer fire at all. *)
  if evict then
    Cluster.set_balancer cl ~every_us:400.0
      (Workloads.hot_spot_balancer ~threshold:2 cl);
  let trace = Queue.create () in
  Cluster.subscribe_events cl (fun ev ->
      Queue.push (Events.to_string ev) trace;
      if Queue.length trace > trace_lines then ignore (Queue.pop trace));
  Cluster.load_program cl sc.sc_prog;
  let target = Cluster.create_object cl ~node:0 ~class_name:sc.sc_class in
  let tid =
    Cluster.spawn cl ~node:0 ~target ~op:sc.sc_op ~args:sc.sc_args
  in
  (* pile two more copies of the workload onto node 0: the home queue
     starts three deep against empty peers, so forced evictions fire
     from the first balancing point while the root thread races the
     fault plan.  Only the root thread's outcome is adjudicated. *)
  if evict then
    for _ = 1 to 2 do
      let peer = Cluster.create_object cl ~node:0 ~class_name:sc.sc_class in
      ignore
        (Cluster.spawn cl ~node:0 ~target:peer ~op:sc.sc_op ~args:sc.sc_args
          : Ert.Thread.tid)
    done;
  (* group-migration mode: a flock of idle objects tours the ring as one
     batched transfer per balancing point, racing the fault plan with
     M_group_move and directory publish/lookup traffic while the root
     thread's own invocations exercise the chain-collapse path.  When a
     crash swallows the flock the rotation degrades to a no-op; the
     adjudicated thread is unaffected.  The tour is bounded — like every
     other fuzz workload — because an open-ended rotation offers load
     faster than a fault-delayed node can absorb it, and the resulting
     (honest) receive livelock starves the adjudicated thread forever. *)
  if groups then begin
    let flock =
      List.init 3 (fun _ ->
          Cluster.create_object cl ~node:0 ~class_name:sc.sc_class)
    in
    let home = ref 0 in
    let remaining = ref 40 in
    let rotate () =
      if !remaining > 0 && not (Cluster.is_crashed cl !home) then begin
        decr remaining;
        let dest = (!home + 1) mod sc.sc_n_nodes in
        Cluster.group_move cl ~node:!home ~dest flock;
        home := dest
      end
    in
    if evict then
      (* compose with the hot-spot balancer at its period *)
      Cluster.set_balancer cl ~every_us:400.0
        (let hot = Workloads.hot_spot_balancer ~threshold:2 cl in
         fun () ->
           hot ();
           rotate ())
    else Cluster.set_balancer cl ~every_us:700.0 rotate
  end;
  let rec drive budget since_check =
    match Cluster.result cl tid with
    | Some r -> Completed (value_string r)
    | None -> (
      match Cluster.thread_failure cl tid with
      | Some reason -> Unavailable reason
      | None ->
        if budget <= 0 then Stuck "event budget exhausted (livelock?)"
        else if not (Cluster.step_once cl) then
          Stuck "cluster quiescent with the thread neither done nor reported lost"
        else if since_check + 1 >= check_every then begin
          match Cluster.check_invariants cl with
          | [] -> drive (budget - 1) 0
          | vs -> Invariant vs
        end
        else drive (budget - 1) (since_check + 1))
  in
  let verdict = drive max_events 0 in
  let ok = match verdict with Completed _ | Unavailable _ -> true | _ -> false in
  {
    f_seed = seed;
    f_plan = plan;
    f_verdict = verdict;
    f_ok = ok;
    f_events = Cluster.events_processed cl;
    f_virtual_us = Cluster.global_time_us cl;
    f_moves = Cluster.total_counter cl (fun c -> c.Events.c_moves_in);
    f_evictions =
      (let acc = ref 0 in
       for i = 0 to sc.sc_n_nodes - 1 do
         acc := !acc + Ert.Kernel.evictions (Cluster.kernel cl i)
       done;
       !acc);
    f_faults = Cluster.total_counter cl (fun c -> c.Events.c_faults);
    f_retransmits = Cluster.total_counter cl (fun c -> c.Events.c_retransmits);
    f_dups = Cluster.total_counter cl (fun c -> c.Events.c_dups_suppressed);
    f_group_moves = Cluster.total_counter cl (fun c -> c.Events.c_group_moves);
    f_trace = List.of_seq (Queue.to_seq trace);
  }

(* ----------------------------------------------------------------------- *)
(* greedy plan shrinking: drop one component at a time, keep the removal
   whenever the seed still fails, until no single removal preserves the
   failure *)

let shrink_candidates (p : P.t) =
  let drop_nth n l = List.filteri (fun i _ -> i <> n) l in
  List.concat
    [
      (if p.P.pl_drop > 0.0 then [ { p with P.pl_drop = 0.0 } ] else []);
      (if p.P.pl_dup > 0.0 then [ { p with P.pl_dup = 0.0 } ] else []);
      (if p.P.pl_delay_p > 0.0 then [ { p with P.pl_delay_p = 0.0 } ] else []);
      List.mapi
        (fun i _ -> { p with P.pl_partitions = drop_nth i p.P.pl_partitions })
        p.P.pl_partitions;
      List.mapi
        (fun i _ -> { p with P.pl_chaos = drop_nth i p.P.pl_chaos })
        p.P.pl_chaos;
    ]

let shrink ?drop ?evict ?groups ?gc ?check_every ?max_events ?shards ~seed plan
    =
  let still_fails p =
    not
      (run_seed ~plan:p ?drop ?evict ?groups ?gc ?check_every ?max_events
         ?shards ~seed ())
        .f_ok
  in
  let rec go p =
    match List.find_opt still_fails (shrink_candidates p) with
    | Some smaller -> go smaller
    | None -> p
  in
  go plan

let sweep ?drop ?evict ?groups ?gc ?check_every ?max_events ?shards
    ?(on_outcome = ignore) ~seeds () =
  let rec go = function
    | [] -> None
    | seed :: rest ->
      let o =
        run_seed ?drop ?evict ?groups ?gc ?check_every ?max_events ?shards
          ~seed ()
      in
      on_outcome o;
      if o.f_ok then go rest else Some o
  in
  go seeds
