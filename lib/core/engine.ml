type event =
  | Step of int
  | Deliver of int
  | Wake of int
  | Gc of int
  | Timer of int
  | Chaos of int

(* Priority encoding.  Simultaneous events are ordered node-major: the
   lower node index wins, and within one node the kinds order as
   Chaos < Gc < Deliver < Wake < Step < Timer — a scheduled crash or
   restart takes effect before anything else at its instant, an automatic
   collection runs inline before the node does other work, a message
   delivery beats a scheduling step, a wait-timeout expiry (Wake) makes
   its waiter ready before the instant's scheduling step runs, and
   retransmission deadlines fire after regular work.  The node-major order is what makes the rank a
   *placement-independent* total order: partitioning the nodes into
   contiguous shards and merging the shards' streams by (time, rank)
   reproduces exactly the one-heap order, because rank already sorts by
   node first.  (The insertion sequence number inside the heap breaks
   any remaining tie FIFO, so a single heap is deterministic too.) *)
let n_kinds = 6

let rank = function
  | Chaos i -> i * n_kinds
  | Gc i -> (i * n_kinds) + 1
  | Deliver i -> (i * n_kinds) + 2
  | Wake i -> (i * n_kinds) + 3
  | Step i -> (i * n_kinds) + 4
  | Timer i -> (i * n_kinds) + 5

type t = {
  pq : event Sim.Pqueue.t;
  clock : Sim.Clock.t;  (* frontier: time of the last event popped *)
  step_queued : bool array;
  deliver_queued : bool array;
  wake_queued : bool array;
  gc_queued : bool array;
  timer_queued : bool array;
  chaos_queued : bool array;
  mutable pushes : int;
  mutable pops : int;
  mutable stale : int;
}

let create ~n_nodes () =
  {
    pq = Sim.Pqueue.create ();
    clock = Sim.Clock.create ();
    step_queued = Array.make n_nodes false;
    deliver_queued = Array.make n_nodes false;
    wake_queued = Array.make n_nodes false;
    gc_queued = Array.make n_nodes false;
    timer_queued = Array.make n_nodes false;
    chaos_queued = Array.make n_nodes false;
    pushes = 0;
    pops = 0;
    stale = 0;
  }

let now t = Sim.Clock.now t.clock

let flag t = function
  | Step i -> t.step_queued.(i)
  | Deliver i -> t.deliver_queued.(i)
  | Wake i -> t.wake_queued.(i)
  | Gc i -> t.gc_queued.(i)
  | Timer i -> t.timer_queued.(i)
  | Chaos i -> t.chaos_queued.(i)

let set_flag t v = function
  | Step i -> t.step_queued.(i) <- v
  | Deliver i -> t.deliver_queued.(i) <- v
  | Wake i -> t.wake_queued.(i) <- v
  | Gc i -> t.gc_queued.(i) <- v
  | Timer i -> t.timer_queued.(i) <- v
  | Chaos i -> t.chaos_queued.(i) <- v

(* At most one queued entry per (event kind, node): a second schedule is
   a no-op.  The existing entry is never later than the wanted time —
   validity is re-checked at pop, and a stale entry is rescheduled at
   its corrected time — so dropping the duplicate is safe. *)
let schedule t ~at ev =
  if not (flag t ev) then begin
    set_flag t true ev;
    t.pushes <- t.pushes + 1;
    Sim.Pqueue.push t.pq ~time:at ~rank:(rank ev) ev
  end

let reschedule t ~at ev =
  t.stale <- t.stale + 1;
  schedule t ~at ev

let peek t =
  if Sim.Pqueue.is_empty t.pq then None
  else Some (Sim.Pqueue.min_time t.pq, Sim.Pqueue.min_rank t.pq)

(* [pop] without the [(time * event) option] wrapping: the popped time
   is readable as [now t] (the pop advanced the clock to it).  The hot
   loop runs this once per event. *)
let take t =
  if Sim.Pqueue.is_empty t.pq then None
  else begin
    let time = Sim.Pqueue.min_time t.pq in
    let ev = Sim.Pqueue.take_min t.pq in
    set_flag t false ev;
    t.pops <- t.pops + 1;
    Sim.Clock.advance_to t.clock time;
    Some ev
  end

let pending t = Sim.Pqueue.length t.pq
let pushes t = t.pushes
let pops t = t.pops
let stale_pops t = t.stale
