type event =
  | Step of int
  | Deliver of int
  | Gc of int
  | Timer of int
  | Chaos of int

(* Priority encoding.  The seed's O(nodes) scan had an implicit order at
   equal virtual time: message deliveries beat scheduling steps, the
   lower node index beat the higher, and an automatic collection ran
   inline before anything else could intervene on that node.  The rank
   reproduces that order inside the heap: at equal time,
   Gc < Deliver < Step, and the node index breaks ties within a class.
   The fault subsystem's kinds slot around them: a scheduled crash or
   restart (Chaos) takes effect before anything else at its instant, and
   retransmission deadlines (Timer) fire after regular work. *)
let rank ~n_nodes = function
  | Chaos i -> i
  | Gc i -> n_nodes + i
  | Deliver i -> (2 * n_nodes) + i
  | Step i -> (3 * n_nodes) + i
  | Timer i -> (4 * n_nodes) + i

type t = {
  pq : event Sim.Pqueue.t;
  clock : Sim.Clock.t;  (* frontier: time of the last event popped *)
  n_nodes : int;
  step_queued : bool array;
  deliver_queued : bool array;
  gc_queued : bool array;
  timer_queued : bool array;
  chaos_queued : bool array;
  mutable pushes : int;
  mutable pops : int;
  mutable stale : int;
}

let create ?clock ~n_nodes () =
  {
    pq = Sim.Pqueue.create ();
    clock = (match clock with Some c -> c | None -> Sim.Clock.create ());
    n_nodes;
    step_queued = Array.make n_nodes false;
    deliver_queued = Array.make n_nodes false;
    gc_queued = Array.make n_nodes false;
    timer_queued = Array.make n_nodes false;
    chaos_queued = Array.make n_nodes false;
    pushes = 0;
    pops = 0;
    stale = 0;
  }

let clock t = t.clock
let now t = Sim.Clock.now t.clock

let flag t = function
  | Step i -> t.step_queued.(i)
  | Deliver i -> t.deliver_queued.(i)
  | Gc i -> t.gc_queued.(i)
  | Timer i -> t.timer_queued.(i)
  | Chaos i -> t.chaos_queued.(i)

let set_flag t v = function
  | Step i -> t.step_queued.(i) <- v
  | Deliver i -> t.deliver_queued.(i) <- v
  | Gc i -> t.gc_queued.(i) <- v
  | Timer i -> t.timer_queued.(i) <- v
  | Chaos i -> t.chaos_queued.(i) <- v

(* At most one queued entry per (event kind, node): a second schedule is
   a no-op.  The existing entry is never later than the wanted time —
   validity is re-checked at pop, and a stale entry is rescheduled at
   its corrected time — so dropping the duplicate is safe. *)
let schedule t ~at ev =
  if not (flag t ev) then begin
    set_flag t true ev;
    t.pushes <- t.pushes + 1;
    Sim.Pqueue.push t.pq ~time:at ~rank:(rank ~n_nodes:t.n_nodes ev) ev
  end

let reschedule t ~at ev =
  t.stale <- t.stale + 1;
  schedule t ~at ev

(* [pop] without the [(time * event) option] wrapping: the popped time
   is readable as [now t] (the pop advanced the clock to it).  The hot
   loop runs this once per event. *)
let take t =
  if Sim.Pqueue.is_empty t.pq then None
  else begin
    let time = Sim.Pqueue.min_time t.pq in
    let ev = Sim.Pqueue.take_min t.pq in
    set_flag t false ev;
    t.pops <- t.pops + 1;
    Sim.Clock.advance_to t.clock time;
    Some ev
  end

let pop t =
  if Sim.Pqueue.is_empty t.pq then None
  else begin
    let time = Sim.Pqueue.min_time t.pq in
    let ev = Sim.Pqueue.take_min t.pq in
    set_flag t false ev;
    t.pops <- t.pops + 1;
    Sim.Clock.advance_to t.clock time;
    Some (time, ev)
  end

let pending t = Sim.Pqueue.length t.pq
let pushes t = t.pushes
let pops t = t.pops
let stale_pops t = t.stale
