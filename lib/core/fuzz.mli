(** The simulation-testing harness behind [emfuzz] and the fault tests.

    Each seed deterministically derives a whole scenario — cluster size,
    workload, and fault plan (message loss, duplication, delay, a
    partition window, a crash/restart window) — runs it with the
    cluster invariants checked between events, and classifies the run:

    - {b ok}: the root thread completed, or was aborted with a reported
      unavailability (the protocol's two legitimate outcomes);
    - {b violation}: an invariant tripped, the cluster went quiescent
      with the thread neither finished nor reported lost, or the event
      budget was exhausted (livelock).

    A failing seed is a complete reproducer: the same seed replays the
    same run bit-for-bit.  {!shrink} then greedily removes plan
    components (probabilities, partitions, crash windows) while the
    failure persists, leaving a minimal plan. *)

type verdict =
  | Completed of string  (** printed root-thread result *)
  | Unavailable of string  (** aborted, with the loss reported *)
  | Stuck of string  (** liveness failure: neither of the above *)
  | Invariant of Fault.Invariants.violation list

type outcome = {
  f_seed : int;
  f_plan : Fault.Plan.t;
  f_verdict : verdict;
  f_ok : bool;  (** [Completed] or [Unavailable] *)
  f_events : int;
  f_virtual_us : float;
  f_moves : int;  (** migrations landed *)
  f_evictions : int;  (** forced-eviction traps fired (0 without [evict]) *)
  f_faults : int;  (** wire faults injected *)
  f_retransmits : int;
  f_dups : int;  (** duplicates suppressed *)
  f_group_moves : int;  (** batched group transfers sent (0 without [groups]) *)
  f_trace : string list;  (** last trace lines, oldest first *)
}

val plan_of_seed : rng:Fault.Rng.t -> n_nodes:int -> Fault.Plan.t
(** Draw a randomized fault plan (the distribution [emfuzz] sweeps);
    [pl_seed] is left 0 — callers install the scenario seed. *)

val run_seed :
  ?plan:Fault.Plan.t ->
  ?drop:float ->
  ?evict:bool ->
  ?groups:bool ->
  ?gc:bool ->
  ?check_every:int ->
  ?max_events:int ->
  ?trace_lines:int ->
  ?shards:int ->
  seed:int ->
  unit ->
  outcome
(** Run one scenario.  [plan] overrides the seed-derived fault plan
    (used by {!shrink}); [drop] overrides just the loss probability
    (the sweep-at-30%-loss configuration); [evict] installs the
    {!Workloads.hot_spot_balancer}, so forced-eviction captures race the
    fault plan (default false); [groups] builds the cluster with
    {!Cluster.Loc_directory} and rotates a three-object flock around the
    ring as one {!Cluster.group_move} per balancing point, so batched
    transfers and directory publish/lookup traffic race the fault plan
    too (default false); [gc] arms the incremental collector
    ({!Cluster.Gc_incremental}, a deliberately small threshold and
    budget) so open mark cycles, the write barrier, migration send-off
    greying and crash-mid-cycle discard all race the fault plan
    (default false); [check_every] runs the
    invariant checkers every that-many events (default 1);
    [trace_lines] bounds the kept trace tail (default 120).

    [shards] builds the cluster sharded (default 1).  The driver steps
    the cluster through the sequential (time, rank) merge, so every
    shard count replays the identical event sequence and outcome —
    asserted by the regression tests. *)

val shrink :
  ?drop:float -> ?evict:bool -> ?groups:bool -> ?gc:bool ->
  ?check_every:int -> ?max_events:int -> ?shards:int -> seed:int ->
  Fault.Plan.t -> Fault.Plan.t
(** Greedily remove plan components while the seed still fails;
    returns the smallest still-failing plan found. *)

val sweep :
  ?drop:float ->
  ?evict:bool ->
  ?groups:bool ->
  ?gc:bool ->
  ?check_every:int ->
  ?max_events:int ->
  ?shards:int ->
  ?on_outcome:(outcome -> unit) ->
  seeds:int list ->
  unit ->
  outcome option
(** Run every seed, reporting each outcome; returns the first failing
    outcome (remaining seeds are not run), or [None] if all pass. *)
