(** A simulated network of heterogeneous workstations (Figure 1).

    One kernel per node, connected by the simulated Ethernet, with the
    mobility protocols glued in.  Execution is a deterministic
    discrete-event simulation over virtual time: the node (or message
    delivery) with the smallest virtual timestamp runs next, so results
    and timings are reproducible. *)

type protocol =
  | Enhanced  (** the paper's heterogeneous system: machine-independent
                  conversion on every transfer *)
  | Original
      (** the original homogeneous system: raw copying, no format
          conversion — and migration between unlike architectures is
          refused, as it must be *)

type scheduler =
  | Heap  (** event selection through the {!Engine} min-heap: O(log
              pending) per event *)
  | Scan
      (** the seed's O(nodes)-per-event rescan, kept for cross-checking
          and for the scaling benchmark; both produce identical event
          sequences and results *)

type location =
  | Loc_off
      (** no location subsystem: the event and byte streams are
          bit-identical to clusters built before it existed *)
  | Loc_collapse
      (** forwarded invokes carry their hop trail ({!Marshal.M_invoke_via})
          and the node that finally hosts the target collapses the chain
          it walked with {!Marshal.M_loc_hint}s — chains shorten to at
          most one hop after a single traversal *)
  | Loc_directory
      (** {!Loc_collapse} plus the hash-partitioned location directory:
          every object has a deterministic home shard
          ({!Loc.Partition.home}); migrations publish batched updates to
          the homes, and an exhausted proxy chain asks the home shard
          (one unicast) before falling back to the broadcast search *)

type gc_mode =
  | Gc_stw
      (** one-shot stop-the-world mark-sweep when the heap crosses the
          threshold — the default; traces are byte-identical to clusters
          built before the incremental tier existed *)
  | Gc_incremental
      (** the tri-color incremental tier (DESIGN.md §17): the same
          collection split into bounded increments interleaved with the
          event loop, each charged per slot scanned; live/swept
          accounting matches {!Gc_stw} exactly.  Requires the {!Heap}
          scheduler. *)

exception Heterogeneous_move_in_original_protocol

exception Thread_unavailable of string
(** A thread's continuation was lost to a node crash. *)

type t

val create :
  ?net_config:Enet.Netsim.config ->
  ?protocol:protocol ->
  ?wire_impl:Enet.Wire.impl ->
  ?scheduler:scheduler ->
  ?shards:int ->
  ?quantum:int ->
  ?opt_level:Emc.Opt.level ->
  ?gc_threshold:int ->
  ?gc_mode:gc_mode ->
  ?gc_budget:int ->
  ?faults:Fault.Plan.t ->
  ?async_migration:bool ->
  ?location:location ->
  archs:Isa.Arch.t list ->
  unit ->
  t
(** [quantum] switches every node to preemptive (Trellis/Owl-style)
    scheduling with the given instruction quantum; threads are then run
    forward to their next bus stop before any migration capture
    (section 2.2.1).  Default: the Emerald discipline — control transfers
    only at bus stops.  [scheduler] selects the event-selection
    mechanism (default {!Heap}).

    [gc_threshold] arms automatic collection when a node's live heap
    bytes exceed it; [gc_mode] selects the collector tier (default
    {!Gc_stw}) and [gc_budget] bounds the pointer slots one incremental
    increment may scan (default 4096; must be positive).
    [Gc_incremental] requires the {!Heap} scheduler.

    [opt_level] selects the code instance every node executes (default
    {!Emc.Opt.O0}, the seed's straight template code); use
    {!set_opt_level} before loading code to run a heterogeneous mix.
    Threads migrating between differently-optimized nodes land through
    compiled bridge fragments when their parked stop was elided at the
    destination (DESIGN.md §16).

    [shards] partitions the nodes contiguously across that many OCaml
    domains, one event engine per shard (default 1; capped at one shard
    per node; requires {!Heap}).  Sharding never changes simulation
    results: every API except {!run} drives the shards through a
    sequential (time, rank) merge that reproduces the single-heap event
    order exactly, and {!run} switches to conservatively synchronised
    parallel windows (DESIGN.md §11) only when that is provably
    unobservable — virtual times, results, counters and the event
    stream are identical at any shard count; only wall-clock time
    changes.

    [faults] installs a deterministic fault plan (default
    {!Fault.Plan.empty}).  A non-trivial plan switches every protocol
    message onto a sequence-numbered, acknowledged transport with
    bounded-backoff retransmission and receiver-side duplicate
    suppression — exactly-once delivery, or a reported loss once the
    retry budget is spent — and schedules the plan's partitions and
    crash/restart windows.  A trivial plan changes nothing: the event
    sequence is bit-identical to a cluster built without one.
    Non-trivial plans require the {!Heap} scheduler.

    [async_migration] hands the capture/translate/marshal pipeline of a
    migration to a background mover engine (DESIGN.md §13): the pipeline
    cost is charged so the payload's wire timestamp — and hence its
    arrival — matches the synchronous path exactly, then refunded
    against the source clock, so the source's other threads resume from
    the instant the capture began and the asynchronous run never
    finishes later than the synchronous one.  Default [false], which
    keeps timings bit-identical to earlier versions.

    [location] selects the location subsystem (default {!Loc_off}, which
    is bit-identical to clusters that predate it).  All directory and
    chain-collapse traffic uses dedicated message tags, is produced in
    deterministic (ascending node) order, and never depends on shard
    count, so enabling a mode changes bytes identically at any
    [shards]. *)

val protocol : t -> protocol
val scheduler : t -> scheduler

val gc_mode : t -> gc_mode

val gc_in_progress : t -> int -> bool
(** Whether the node has an open incremental mark cycle (always [false]
    under {!Gc_stw}). *)

val location : t -> location

val directory_home : t -> Ert.Oid.t -> int
(** The object's home shard node under the cluster's partition map —
    deterministic in the OID and node count alone. *)

val directory_entry : t -> Ert.Oid.t -> int option
(** Peek (without counting a hit or miss) at the home shard's current
    entry for the object: its last published location, if any. *)

val directory_stats : t -> int * int * int * int
(** Totals over every node's directory shard:
    [(updates_applied, stale_dropped, lookup_hits, lookup_misses)]. *)

val n_nodes : t -> int
val kernel : t -> int -> Ert.Kernel.t
val kernels : t -> Ert.Kernel.t array
val arch_of : t -> int -> Isa.Arch.t
val repository : t -> Mobility.Code_repository.t
val network : t -> Enet.Netsim.t
val conversion_stats : t -> int -> Enet.Conversion_stats.t

val engine : t -> Engine.t
(** Shard 0's event engine (heap depth, push/pop/stale counters).
    Unused — all counters zero — under the {!Scan} scheduler. *)

val engines : t -> Engine.t array
(** All per-shard engines, in shard order (length {!n_shards}). *)

val n_shards : t -> int
val shard_of : t -> int -> int
(** The shard owning a node (contiguous placement, see {!Shard.plan}). *)

val set_trace : t -> (string -> unit) -> unit
(** Legacy line-oriented trace hook: receives
    {!Events.legacy_string} of every event that has one — byte-identical
    to the seed's output. *)

val subscribe_events : t -> (Events.t -> unit) -> unit
(** Subscribe to the typed trace/metrics bus. *)

val bus : t -> Events.bus
(** The bus itself — per-node counters plus, after a parallel {!run},
    the per-shard window metrics ({!Events.shard_counters},
    {!Events.windows}, {!Events.mean_horizon_us}). *)

val node_counters : t -> int -> Events.counters
val total_counter : t -> (Events.counters -> int) -> int

val enable_spans : t -> unit
(** Turn on migration span tracing (DESIGN.md §12): every move emits a
    root ["move"] span plus capture/translate/marshal/transfer/
    unmarshal/rebuild/relocate phase child spans, and every RPC round
    trip an ["rpc"] span, as {!Events.Ev_span} values on the bus.
    Spans measure virtual-time intervals and never charge the clocks,
    so enabling tracing cannot change simulated times; until this is
    called the pipeline does no span work at all. *)

val attach_profile : t -> Obs.Profile.t -> unit
(** {!enable_spans} plus a bus subscription feeding every closed span
    into [p] — per-(arch pair, phase) histograms and, unless the
    profile was created with [~keep_spans:false], the raw span list
    for {!Obs.Trace.to_json} export. *)

val load_program : t -> Emc.Compile.program -> unit
(** Register the compiled program with every node (and the repository). *)

val compile_and_load :
  ?optimize:bool ->
  ?levels:Emc.Opt.level list ->
  t ->
  name:string ->
  string ->
  Emc.Compile.program
(** Compile the source once for every architecture present and load it.
    Without [levels], the instance set is derived from the nodes'
    configured optimization levels (primary first: the [?optimize]
    level, preserving the old single-instance behaviour byte-for-byte
    when every node runs it). *)

val set_opt_level : t -> node:int -> Emc.Opt.level -> unit
(** Pick the code instance the node executes.  Must be called before
    any code is loaded on the node (the kernel refuses afterwards:
    resident threads' saved PCs address the old instance). *)

val opt_level_of : t -> int -> Emc.Opt.level

val bridge_stats : t -> int * int
(** Summed bridge-fragment cache [(hits, misses)] over every node —
    nonzero only when differently-optimized nodes exchanged threads
    parked at elided stops. *)

val create_object : t -> node:int -> class_name:string -> Ert.Oid.t
val where_is : t -> Ert.Oid.t -> int option

val spawn : t -> node:int -> target:Ert.Oid.t -> op:string -> args:Ert.Value.t list -> Ert.Thread.tid

val step_once : t -> bool
(** Process the next event; [false] when the cluster is quiescent.
    Pending balancing points ({!set_balancer}) are fired internally, so
    external drivers stepping the cluster themselves need no balancer
    plumbing of their own. *)

val run : ?max_events:int -> t -> unit
(** Run to quiescence.  @raise Failure if [max_events] is exceeded. *)

val run_until_result : ?max_events:int -> t -> Ert.Thread.tid -> Ert.Value.t option
(** Run until the given root thread finishes (wherever it finishes);
    returns its result. *)

val result : t -> Ert.Thread.tid -> Ert.Value.t option option

val checkpoint_thread : t -> node:int -> Ert.Thread.tid -> string
(** Suspend a thread resident on [node] into a machine-independent image:
    quiesces the node (preemptive mode), captures every segment through
    the bus-stop templates, and removes them.  See {!Mobility.Checkpoint}.
    @raise Mobility.Checkpoint.Not_checkpointable per its restrictions. *)

val restore_thread : t -> node:int -> string -> unit
(** Rebuild a checkpointed thread as native stacks on [node] — any
    architecture — and reschedule it.  The thread's objects must reside
    there. *)

val evict_thread : t -> node:int -> seg_id:int -> dest:int -> unit
(** Forcibly evict a running segment (DESIGN.md §13): arms
    {!Ert.Kernel.evict_thread}'s trap on [node].  If the segment is
    already capturable (parked at a bus stop, blocked on a monitor, or
    awaiting a reply) it is shipped to [dest] immediately; otherwise the
    kernel pins polling on for it and the trap fires at its next bus
    stop — no cooperative [move] in the program is needed.  The shipped
    closure is the object the segment is executing inside, so monitor
    queues and split stacks travel exactly as for a programmed move.
    Unknown, dead, or non-resident segments are ignored. *)

val group_move : t -> node:int -> dest:int -> Ert.Oid.t list -> unit
(** Batched migration: capture the union closure of the given co-located
    roots — the objects, their attached closures, and every thread
    segment executing inside any of them — and ship it as a single
    {!Marshal.M_group_move} transfer over the pooled wire path, reusing
    the compiled conversion plans.  One root ["move"] span covers the
    batch; its capture leg is the ["group_pack"] phase and the landing
    leg ["group_unpack"].  Roots not resident on [node] are skipped, and
    a batch that captures nothing sends nothing.  With the directory on,
    the landing publishes every moved object's new location in one
    batched update per home shard. *)

val chain_walk : t -> from:int -> Ert.Oid.t -> int option * int
(** Follow forwarding-proxy hints from [from] toward the object:
    [(host, hops)] where [host] is the hosting node if the walk reached
    one ([None] on a dead end or cycle).  A harness-side observer for
    tests and statistics — it sends nothing and charges nothing, so
    calling it cannot perturb a trace. *)

val set_balancer : t -> every_us:float -> (unit -> unit) -> unit
(** Install a load-balancing hook that fires every [every_us] of virtual
    time, between events — and, in sharded runs, between windows — so
    its firing points partition the event sequence identically at any
    shard count.  The hook typically inspects per-node load
    ({!Ert.Kernel.ready_depth}, {!Obs.Profile} data) and calls
    {!evict_thread}.  Heap scheduler only. *)

val crash_node : t -> int -> unit
(** Fail-stop the node: its objects, code and thread segments are lost;
    packets to it are dropped.  Threads whose call chains passed through
    it become unavailable; threads entirely elsewhere keep running —
    Emerald's design goal of minimising residual dependencies. *)

val restart_node : t -> int -> unit
(** Reboot a crashed node as a fresh, amnesiac kernel (no objects, no
    segments, no transport state) on the same monotonic clock, with the
    last loaded program replayed into it.  No-op on a live node. *)

val is_crashed : t -> int -> bool
val thread_failure : t -> Ert.Thread.tid -> string option

val fault_plan : t -> Fault.Plan.t

val check_invariants : t -> Fault.Invariants.violation list
(** Run the {!Fault.Invariants} checkers over the cluster.  Call between
    events (after a {!step_once}), when every segment is parked at a bus
    stop; empty means healthy.  Monotonicity state is kept inside [t],
    so interleave calls freely. *)

val global_time_us : t -> float
(** Maximum virtual time across nodes. *)

val output : t -> node:int -> string
val outputs : t -> string
(** All nodes' console output concatenated in node order. *)

val events_processed : t -> int

val collections : t -> int
(** Automatic collections performed (with [gc_threshold]). *)
