(** The discrete-event engine: a binary min-heap of pending simulation
    events keyed on virtual time.

    The seed selected the next event by rescanning every node's kernel
    and message queue — O(nodes) per event.  The engine replaces the
    scan with an O(log pending) heap while reproducing the scan's event
    order, with one deliberate strengthening: simultaneous events have a
    *total* order (time, then node-major {!rank} — per node the kinds
    order Chaos < Gc < Deliver < Wake < Step < Timer — then insertion
    sequence),
    so the merged order cannot depend on heap insertion order.  Because
    the rank sorts by node before kind, the order is placement
    independent: merging per-shard heaps of a contiguous node partition
    by (time, rank) reproduces the single-heap order exactly.

    Scheduled times are allowed to go stale — a node's clock advances
    after its step was queued, or a message queue's head changes.  The
    engine dedups to at most one pending entry per (kind, node); the
    executor re-validates each popped entry and {!reschedule}s it at the
    corrected time, which is always later, so no event can run early.

    One engine instance is single-domain: a sharded cluster runs one
    engine per shard and merges the streams (see Cluster).  The heap,
    flags and counters here are deliberately not exposed. *)

type event =
  | Step of int  (** run one kernel scheduling slice on the node *)
  | Deliver of int  (** deliver the node's next arrived message *)
  | Wake of int
      (** the node's earliest monitor wait-timeout deadline is due;
          node-local (no message traffic), hence safe inside
          Chandy-Misra windows *)
  | Gc of int  (** automatic collection on the node *)
  | Timer of int  (** the node's earliest retransmission deadline is due *)
  | Chaos of int  (** the node's next scheduled crash/restart window opens *)

type t

val create : n_nodes:int -> unit -> t

val now : t -> float
(** Virtual time of the most recently popped event (the frontier). *)

val schedule : t -> at:float -> event -> unit
(** Queue an event; a duplicate of an already-queued (kind, node) pair
    is dropped. *)

val reschedule : t -> at:float -> event -> unit
(** Re-queue a popped-but-stale event at its corrected time; counted
    separately in {!stale_pops}. *)

val peek : t -> (float * int) option
(** Time and rank of the earliest pending event, without removing it.
    The rank is the global node-major total order key: two engines over
    disjoint node sets can be merged deterministically by comparing
    (time, rank).  Shard executors also use it to stop at a window
    horizon without disturbing the heap. *)

val take : t -> event option
(** Remove and return the earliest event, advancing the frontier clock;
    the popped entry's time is readable as [now t] afterwards.  For the
    per-event hot loop. *)

val pending : t -> int

(** {1 Instrumentation} *)

val pushes : t -> int
val pops : t -> int
val stale_pops : t -> int
(** Pops that were bookkeeping only (revalidation failed and the event
    was rescheduled); [pops - stale_pops] bounds the executed events. *)
