(** The discrete-event engine: a binary min-heap of pending simulation
    events keyed on virtual time.

    The seed selected the next event by rescanning every node's kernel
    and message queue — O(nodes) per event.  The engine replaces the
    scan with an O(log pending) heap while reproducing the scan's event
    order exactly, including its tie-breaking (see {!event}'s rank
    order) and its insertion order (a sequence number inside the heap
    makes equal keys FIFO, so runs are deterministic).

    Scheduled times are allowed to go stale — a node's clock advances
    after its step was queued, or a message queue's head changes.  The
    engine dedups to at most one pending entry per (kind, node); the
    executor re-validates each popped entry and {!reschedule}s it at the
    corrected time, which is always later, so no event can run early. *)

type event =
  | Step of int  (** run one kernel scheduling slice on the node *)
  | Deliver of int  (** deliver the node's next arrived message *)
  | Gc of int  (** automatic collection on the node *)
  | Timer of int  (** the node's earliest retransmission deadline is due *)
  | Chaos of int  (** the node's next scheduled crash/restart window opens *)

type t

val create : ?clock:Sim.Clock.t -> n_nodes:int -> unit -> t
(** [clock] is the engine's frontier clock (by default a fresh one); it
    is advanced to each popped event's time. *)

val clock : t -> Sim.Clock.t
val now : t -> float
(** Virtual time of the most recently popped event. *)

val schedule : t -> at:float -> event -> unit
(** Queue an event; a duplicate of an already-queued (kind, node) pair
    is dropped. *)

val reschedule : t -> at:float -> event -> unit
(** Re-queue a popped-but-stale event at its corrected time; counted
    separately in {!stale_pops}. *)

val pop : t -> (float * event) option
(** Remove and return the earliest event, advancing the frontier clock. *)

val take : t -> event option
(** {!pop} without the time/tuple wrapping — the popped entry's time is
    readable as [now t] afterwards.  For the per-event hot loop. *)

val pending : t -> int

(** {1 Instrumentation} *)

val pushes : t -> int
val pops : t -> int
val stale_pops : t -> int
(** Pops that were bookkeeping only (revalidation failed and the event
    was rescheduled); [pops - stale_pops] bounds the executed events. *)
