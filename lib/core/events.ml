type t =
  | Ev_step of { node : int; time : float }
  | Ev_msg_send of {
      time : float;
      src : int;
      dst : int;
      desc : string;
      bytes : int;
      arrives : float;
    }
  | Ev_msg_deliver of { time : float; node : int; desc : string }
  | Ev_msg_lost of { src : int; dst : int; desc : string }
  | Ev_msg_drop of { node : int; desc : string }
  | Ev_move_start of { time : float; node : int; obj : Ert.Oid.t; dest : int }
  | Ev_evict of { time : float; node : int; seg_id : int; dest : int }
  | Ev_move_finish of {
      time : float;
      node : int;
      objects : int;
      segments : int;
      frames : int;
    }
  | Ev_conversion of { node : int; calls : int; bytes : int }
  | Ev_gc of { time : float; node : int; swept : int; live : int; bytes_freed : int }
  | Ev_gc_phase of {
      time : float;
      node : int;
      phase : string;
      scanned : int;
      pause_us : float;
    }
  | Ev_crash of { node : int }
  | Ev_restart of { node : int }
  | Ev_thread_lost of { thread : Ert.Thread.tid; reason : string }
  | Ev_search_start of { node : int; obj : Ert.Oid.t; probes : int }
  | Ev_search_found of { obj : Ert.Oid.t; node : int }
  | Ev_search_failed of { obj : Ert.Oid.t }
  | Ev_fault of { time : float; src : int; dst : int; kind : string }
  | Ev_msg_dup of { node : int; src : int; seq : int }
  | Ev_retransmit of { node : int; dst : int; seq : int; attempt : int }
  | Ev_ack of { node : int; seq : int }
  | Ev_plan of { node : int; compiles : int; hits : int }
  | Ev_pool of { node : int; hits : int; misses : int; copies_saved : int }
  | Ev_span of Obs.Span.t
  (* location-subsystem events: none of these fire in the directory-off
     configuration, so the legacy trace stays byte-identical *)
  | Ev_dir_update of { node : int; obj : Ert.Oid.t; loc : int; applied : bool }
  | Ev_dir_lookup of { node : int; obj : Ert.Oid.t; found : bool }
  | Ev_locate of { node : int; obj : Ert.Oid.t; hops : int }
  | Ev_collapse of { node : int; obj : Ert.Oid.t; loc : int }
  | Ev_group_move of {
      time : float;
      node : int;
      dest : int;
      objects : int;
      segments : int;
    }
  | Ev_blit of { node : int; dest : int; skipped : bool }
      (** a move payload under the negotiated [blit] codec tier:
          [skipped = true] when the layout fingerprints matched and the
          translate/rebuild passes were skipped, [false] when the pair
          fell back to the plan path.  Fires only under [--codec blit],
          so the legacy trace is unaffected. *)
  | Ev_bridge of {
      time : float;
      node : int;
      count : int;  (** arriving threads that landed via a bridge fragment *)
      src_level : int;
      dst_level : int;
    }
      (** a move landed threads at bus stops this node's code instance
          elided, so they resume through compiled bridge fragments.
          Fires only when nodes run differently-optimized instances, so
          the legacy trace is unaffected. *)

(* The exact line the seed's [(string -> unit)] trace hook printed for
   this event, if it printed one.  Events the seed had no line for
   (steps, move completion, conversion accounting) map to [None], so a
   legacy subscriber sees byte-identical output.  Fault-subsystem events
   (restarts, injected faults, dups, retransmits, acks) never fire
   without a fault plan, so giving them lines keeps the no-fault trace
   byte-identical while making [--trace] useful under injection. *)
let legacy_string = function
  | Ev_step _ | Ev_move_finish _ | Ev_conversion _ | Ev_plan _ | Ev_pool _
  | Ev_span _ | Ev_blit _ | Ev_bridge _ | Ev_gc_phase _ -> None
  | Ev_msg_send { time; src; dst; desc; bytes; arrives } ->
    Some
      (Printf.sprintf "t=%.0fus node %d -> node %d: %s (%d bytes, arrives %.0fus)"
         time src dst desc bytes arrives)
  | Ev_msg_deliver { time; node; desc } ->
    Some (Printf.sprintf "t=%.0fus node %d receives: %s" time node desc)
  | Ev_msg_lost { src; dst; desc } ->
    Some (Printf.sprintf "node %d -> node %d: %s LOST (destination down)" src dst desc)
  | Ev_msg_drop { node; desc } ->
    Some (Printf.sprintf "node %d (down) loses: %s" node desc)
  | Ev_move_start { time; node; obj; dest } ->
    Some
      (Printf.sprintf "t=%.0fus node %d: move %s to node %d" time node
         (Ert.Oid.to_string obj) dest)
  | Ev_evict { time; node; seg_id; dest } ->
    Some
      (Printf.sprintf "t=%.0fus node %d: evict segment %d to node %d" time node
         seg_id dest)
  | Ev_gc { time; node; swept; bytes_freed; live = _ } ->
    Some
      (Printf.sprintf "t=%.0fus node %d: gc swept %d block(s), %d bytes" time node
         swept bytes_freed)
  | Ev_crash { node } -> Some (Printf.sprintf "node %d crashes" node)
  | Ev_restart { node } -> Some (Printf.sprintf "node %d restarts (empty)" node)
  | Ev_fault { time; src; dst; kind } ->
    Some (Printf.sprintf "t=%.0fus wire fault: node %d -> node %d %s" time src dst kind)
  | Ev_msg_dup { node; src; seq } ->
    Some (Printf.sprintf "node %d suppresses duplicate #%d from node %d" node seq src)
  | Ev_retransmit { node; dst; seq; attempt } ->
    Some
      (Printf.sprintf "node %d retransmits #%d to node %d (attempt %d)" node seq dst
         attempt)
  | Ev_ack { node; seq } -> Some (Printf.sprintf "node %d acked #%d" node seq)
  | Ev_thread_lost { thread; reason } ->
    Some (Printf.sprintf "thread %d unavailable: %s" thread reason)
  | Ev_search_start { node; obj; probes } ->
    Some
      (Printf.sprintf "node %d searches for %s (%d probes)" node
         (Ert.Oid.to_string obj) probes)
  | Ev_search_found { obj; node } ->
    Some
      (Printf.sprintf "search for %s: found on node %d" (Ert.Oid.to_string obj) node)
  | Ev_search_failed { obj } ->
    Some (Printf.sprintf "search for %s: not found anywhere" (Ert.Oid.to_string obj))
  (* location-directory events fire only when a location mode is enabled,
     so printing them cannot perturb a legacy (directory-off) trace *)
  | Ev_dir_update { node; obj; loc; applied } ->
    Some
      (Printf.sprintf "node %d directory: %s now at node %d%s" node
         (Ert.Oid.to_string obj) loc
         (if applied then "" else " (stale, dropped)"))
  | Ev_dir_lookup { node; obj; found } ->
    Some
      (Printf.sprintf "node %d directory: lookup %s -> %s" node
         (Ert.Oid.to_string obj)
         (if found then "hit" else "miss"))
  | Ev_locate { node; obj; hops } ->
    Some
      (Printf.sprintf "node %d located %s after %d hop(s)" node
         (Ert.Oid.to_string obj) hops)
  | Ev_collapse { node; obj; loc } ->
    Some
      (Printf.sprintf "node %d collapses chain for %s -> node %d" node
         (Ert.Oid.to_string obj) loc)
  | Ev_group_move { time; node; dest; objects; segments } ->
    Some
      (Printf.sprintf
         "t=%.0fus node %d: group move of %d object(s), %d segment(s) to node %d"
         time node objects segments dest)

let to_string ev =
  match ev with
  | Ev_step { node; time } -> Printf.sprintf "step node=%d t=%.0fus" node time
  | Ev_move_finish { time; node; objects; segments; frames } ->
    Printf.sprintf
      "move-finish node=%d t=%.0fus objects=%d segments=%d frames=%d" node time
      objects segments frames
  | Ev_conversion { node; calls; bytes } ->
    Printf.sprintf "conversion node=%d calls=%d bytes=%d" node calls bytes
  | Ev_plan { node; compiles; hits } ->
    Printf.sprintf "plan node=%d compiles=%d hits=%d" node compiles hits
  | Ev_pool { node; hits; misses; copies_saved } ->
    Printf.sprintf "pool node=%d hits=%d misses=%d copies-saved=%d" node hits misses
      copies_saved
  | Ev_span s -> Obs.Span.to_string s
  | Ev_blit { node; dest; skipped } ->
    Printf.sprintf "blit node=%d dest=%d %s" node dest
      (if skipped then "skip" else "fallback")
  | Ev_bridge { time; node; count; src_level; dst_level } ->
    Printf.sprintf "bridge node=%d t=%.0fus threads=%d O%d->O%d" node time count
      src_level dst_level
  | Ev_gc_phase { time; node; phase; scanned; pause_us } ->
    Printf.sprintf "gc-phase node=%d t=%.0fus %s scanned=%d pause=%.2fus" node time
      phase scanned pause_us
  | _ -> ( match legacy_string ev with Some s -> s | None -> assert false)

type counters = {
  mutable c_steps : int;
  mutable c_sent : int;
  mutable c_delivered : int;
  mutable c_lost : int;
  mutable c_moves_out : int;
  mutable c_moves_in : int;
  mutable c_evictions : int;
  mutable c_conv_calls : int;
  mutable c_conv_bytes : int;
  mutable c_collections : int;
  mutable c_gc_bytes_freed : int;
  mutable c_gc_increments : int;
  mutable c_searches : int;
  mutable c_faults : int;
  mutable c_dups_suppressed : int;
  mutable c_retransmits : int;
  mutable c_acks : int;
  mutable c_plan_compiles : int;
  mutable c_plan_hits : int;
  mutable c_pool_hits : int;
  mutable c_pool_misses : int;
  mutable c_copies_saved : int;
  mutable c_dir_updates : int;
  mutable c_dir_lookups : int;
  mutable c_locates : int;  (* invokes that found their target *)
  mutable c_locate_hops : int;  (* forwarding hops those invokes took *)
  mutable c_collapses : int;  (* proxy chains rewritten by a location hint *)
  mutable c_group_moves : int;
  mutable c_group_objects : int;  (* objects shipped inside group transfers *)
  mutable c_blit_skips : int;
      (* moves whose layout fingerprints matched: translate/rebuild skipped *)
  mutable c_blit_fallbacks : int;  (* blit-tier moves that took the plan path *)
  mutable c_bridged : int;
      (* arriving threads that landed through a compiled bridge fragment *)
}

let fresh_counters () =
  {
    c_steps = 0;
    c_sent = 0;
    c_delivered = 0;
    c_lost = 0;
    c_moves_out = 0;
    c_moves_in = 0;
    c_evictions = 0;
    c_conv_calls = 0;
    c_conv_bytes = 0;
    c_collections = 0;
    c_gc_bytes_freed = 0;
    c_gc_increments = 0;
    c_searches = 0;
    c_faults = 0;
    c_dups_suppressed = 0;
    c_retransmits = 0;
    c_acks = 0;
    c_plan_compiles = 0;
    c_plan_hits = 0;
    c_pool_hits = 0;
    c_pool_misses = 0;
    c_copies_saved = 0;
    c_dir_updates = 0;
    c_dir_lookups = 0;
    c_locates = 0;
    c_locate_hops = 0;
    c_collapses = 0;
    c_group_moves = 0;
    c_group_objects = 0;
    c_blit_skips = 0;
    c_blit_fallbacks = 0;
    c_bridged = 0;
  }

(* Per-shard window metrics for the sharded engine: how many windows the
   shard had work in, how many events it executed, how long it computed
   inside windows, and how long it sat at barriers waiting for slower
   shards.  These live on the bus (next to the per-node counters) but
   are deliberately *not* emitted as events: a sharded run must produce
   the identical event stream to a one-shard run, and window boundaries
   are a wall-clock artefact, not simulation behaviour. *)
type shard_counters = {
  mutable s_windows : int;
  mutable s_events : int;
  mutable s_busy_ns : float;
  mutable s_stall_ns : float;
}

let fresh_shard_counters () =
  { s_windows = 0; s_events = 0; s_busy_ns = 0.0; s_stall_ns = 0.0 }

type bus = {
  node_counters : counters array;
  mutable subscribers : (t -> unit) list;
  mutable shard_counters : shard_counters array;
  mutable windows : int;  (* parallel windows run *)
  mutable horizon_us_sum : float;  (* sum of window widths *)
}

let create_bus ~n_nodes =
  {
    node_counters = Array.init n_nodes (fun _ -> fresh_counters ());
    subscribers = [];
    shard_counters = [||];
    windows = 0;
    horizon_us_sum = 0.0;
  }

let attach_shards bus n =
  if Array.length bus.shard_counters <> n then
    bus.shard_counters <- Array.init n (fun _ -> fresh_shard_counters ())

let shards_attached bus = Array.length bus.shard_counters
let shard_counters bus s = bus.shard_counters.(s)

let note_window bus ~horizon_us =
  bus.windows <- bus.windows + 1;
  bus.horizon_us_sum <- bus.horizon_us_sum +. horizon_us

let windows bus = bus.windows

let mean_horizon_us bus =
  if bus.windows = 0 then 0.0 else bus.horizon_us_sum /. float_of_int bus.windows

let subscribe bus f = bus.subscribers <- bus.subscribers @ [ f ]
let has_subscribers bus = bus.subscribers <> []

let count bus ev =
  let c i = bus.node_counters.(i) in
  match ev with
  | Ev_step { node; _ } -> (c node).c_steps <- (c node).c_steps + 1
  | Ev_msg_send { src; _ } -> (c src).c_sent <- (c src).c_sent + 1
  | Ev_msg_deliver { node; _ } -> (c node).c_delivered <- (c node).c_delivered + 1
  | Ev_msg_lost { src; _ } -> (c src).c_lost <- (c src).c_lost + 1
  | Ev_msg_drop { node; _ } -> (c node).c_lost <- (c node).c_lost + 1
  | Ev_move_start { node; _ } -> (c node).c_moves_out <- (c node).c_moves_out + 1
  | Ev_evict { node; _ } -> (c node).c_evictions <- (c node).c_evictions + 1
  | Ev_move_finish { node; _ } -> (c node).c_moves_in <- (c node).c_moves_in + 1
  | Ev_conversion { node; calls; bytes } ->
    (c node).c_conv_calls <- (c node).c_conv_calls + calls;
    (c node).c_conv_bytes <- (c node).c_conv_bytes + bytes
  | Ev_gc { node; bytes_freed; _ } ->
    (c node).c_collections <- (c node).c_collections + 1;
    (c node).c_gc_bytes_freed <- (c node).c_gc_bytes_freed + bytes_freed
  | Ev_gc_phase { node; _ } ->
    (c node).c_gc_increments <- (c node).c_gc_increments + 1
  | Ev_search_start { node; _ } -> (c node).c_searches <- (c node).c_searches + 1
  | Ev_fault { src; _ } -> (c src).c_faults <- (c src).c_faults + 1
  | Ev_msg_dup { node; _ } ->
    (c node).c_dups_suppressed <- (c node).c_dups_suppressed + 1
  | Ev_retransmit { node; _ } -> (c node).c_retransmits <- (c node).c_retransmits + 1
  | Ev_ack { node; _ } -> (c node).c_acks <- (c node).c_acks + 1
  | Ev_plan { node; compiles; hits } ->
    (c node).c_plan_compiles <- (c node).c_plan_compiles + compiles;
    (c node).c_plan_hits <- (c node).c_plan_hits + hits
  | Ev_pool { node; hits; misses; copies_saved } ->
    (c node).c_pool_hits <- (c node).c_pool_hits + hits;
    (c node).c_pool_misses <- (c node).c_pool_misses + misses;
    (c node).c_copies_saved <- (c node).c_copies_saved + copies_saved
  | Ev_dir_update { node; _ } -> (c node).c_dir_updates <- (c node).c_dir_updates + 1
  | Ev_dir_lookup { node; _ } -> (c node).c_dir_lookups <- (c node).c_dir_lookups + 1
  | Ev_locate { node; hops; _ } ->
    (c node).c_locates <- (c node).c_locates + 1;
    (c node).c_locate_hops <- (c node).c_locate_hops + hops
  | Ev_collapse { node; _ } -> (c node).c_collapses <- (c node).c_collapses + 1
  | Ev_group_move { node; objects; _ } ->
    (c node).c_group_moves <- (c node).c_group_moves + 1;
    (c node).c_group_objects <- (c node).c_group_objects + objects
  | Ev_blit { node; skipped; _ } ->
    if skipped then (c node).c_blit_skips <- (c node).c_blit_skips + 1
    else (c node).c_blit_fallbacks <- (c node).c_blit_fallbacks + 1
  | Ev_bridge { node; count; _ } -> (c node).c_bridged <- (c node).c_bridged + count
  | Ev_crash _ | Ev_restart _ | Ev_thread_lost _ | Ev_search_found _
  | Ev_search_failed _ | Ev_span _ -> ()

let emit bus ev =
  count bus ev;
  List.iter (fun f -> f ev) bus.subscribers

(* step events fire once per scheduling slice — the hottest path in the
   simulation — so avoid constructing the event value when nobody is
   listening (the counter is all that's needed) *)
let emit_step bus ~node ~time =
  let c = bus.node_counters.(node) in
  c.c_steps <- c.c_steps + 1;
  match bus.subscribers with
  | [] -> ()
  | subs ->
    let ev = Ev_step { node; time } in
    List.iter (fun f -> f ev) subs

let counters bus node = bus.node_counters.(node)
let n_nodes bus = Array.length bus.node_counters

let total bus f =
  Array.fold_left (fun acc c -> acc + f c) 0 bus.node_counters
