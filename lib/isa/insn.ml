type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Xor

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | Mov of Operand.t * Operand.t
  | Bin3 of binop * Operand.t * Operand.t * Operand.t
  | Bin2 of binop * Operand.t * Operand.t
  | Fbin3 of binop * Operand.t * Operand.t * Operand.t
  | Fbin2 of binop * Operand.t * Operand.t
  | Neg of Operand.t * Operand.t
  | Fneg of Operand.t * Operand.t
  | Cvt_if of Operand.t * Operand.t
  | Cvt_fi of Operand.t * Operand.t
  | Cmp of Operand.t * Operand.t
  | Fcmp of Operand.t * Operand.t
  | Bcc of cmp * int
  | Br of int
  | Jmp_abs of int
  | Jsr_ind of Reg.t
  | Push of Operand.t
  | Vax_entry of int
  | Vax_ret
  | Link of int
  | Unlk
  | Rts
  | Save of int
  | Restore
  | Retl
  | Sethi of int32 * Reg.t
  | Syscall of int
  | Poll of int
  | Remque of Reg.t * Reg.t
  | Nop
  | Halt

(* Encoded operand sizes, loosely modelled on the real encodings: the VAX
   uses one specifier byte plus displacement/immediate bytes (short
   literals 0..63 fit in the specifier byte); the M68k pays one extension
   word for displacements and two for 32-bit immediates; SPARC operands
   are folded into the fixed 4-byte word. *)

let vax_operand_size = function
  | Operand.Reg _ -> 1
  | Operand.Imm i -> if Int32.compare i 0l >= 0 && Int32.compare i 64l < 0 then 1 else 5
  | Operand.Mem (Operand.Abs _) -> 5
  | Operand.Mem (Operand.Disp (_, d)) -> if d >= -128 && d < 128 then 2 else 5
  | Operand.Mem (Operand.Autoinc _) | Operand.Mem (Operand.Autodec _) -> 1

let m68k_operand_size = function
  | Operand.Reg _ -> 0
  | Operand.Imm _ -> 4
  | Operand.Mem (Operand.Abs _) -> 4
  | Operand.Mem (Operand.Disp (_, _)) -> 2
  | Operand.Mem (Operand.Autoinc _) | Operand.Mem (Operand.Autodec _) -> 0

let size_bytes family insn =
  match family with
  | Arch.Sparc -> (
    match insn with
    | Jmp_abs _ -> 8 (* sethi %hi(addr); jmpl — folded pair *)
    | _ -> 4)
  | Arch.Vax -> (
    let op = vax_operand_size in
    match insn with
    | Mov (a, b)
    | Bin2 (_, a, b)
    | Fbin2 (_, a, b)
    | Neg (a, b)
    | Fneg (a, b)
    | Cvt_if (a, b)
    | Cvt_fi (a, b)
    | Cmp (a, b)
    | Fcmp (a, b) -> 1 + op a + op b
    | Bin3 (_, a, b, c) | Fbin3 (_, a, b, c) -> 1 + op a + op b + op c
    | Bcc (_, _) -> 3
    | Br _ -> 3
    | Jmp_abs _ -> 6 (* JMP @#addr: opcode + absolute specifier *)
    | Jsr_ind _ -> 2
    | Push a -> 1 + op a
    | Vax_entry _ -> 3 (* entry mask word + opcode *)
    | Vax_ret -> 1
    | Syscall _ -> 2 (* CHMK #n *)
    | Poll _ -> 4 (* cmpl sp,limit; blss — folded *)
    | Remque (_, _) -> 3
    | Nop -> 1
    | Halt -> 1
    | Sethi (_, _) | Link _ | Unlk | Rts | Save _ | Restore | Retl -> 1)
  | Arch.M68k -> (
    let op = m68k_operand_size in
    match insn with
    | Mov (a, b)
    | Bin2 (_, a, b)
    | Fbin2 (_, a, b)
    | Neg (a, b)
    | Fneg (a, b)
    | Cvt_if (a, b)
    | Cvt_fi (a, b)
    | Cmp (a, b)
    | Fcmp (a, b) -> 2 + op a + op b
    | Bin3 (_, a, b, c) | Fbin3 (_, a, b, c) -> 2 + op a + op b + op c
    | Bcc (_, _) -> 4
    | Br _ -> 4
    | Jmp_abs _ -> 6 (* jmp (xxx).l: opcode word + long absolute *)
    | Jsr_ind _ -> 2
    | Push a -> 2 + op a
    | Link _ -> 4
    | Unlk -> 2
    | Rts -> 2
    | Syscall _ -> 4 (* TRAP #n; extension word *)
    | Poll _ -> 6
    | Nop -> 2
    | Halt -> 2
    | Sethi (_, _) | Vax_entry _ | Vax_ret | Save _ | Restore | Retl | Remque (_, _) -> 2)

let mem_operand = function
  | Operand.Mem _ -> true
  | Operand.Reg _ | Operand.Imm _ -> false

let cycles family insn =
  let mem_penalty a = if mem_operand a then 2 else 0 in
  match family with
  | Arch.Vax -> (
    match insn with
    | Mov (a, b) -> 4 + mem_penalty a + mem_penalty b
    | Bin3 (op, a, b, c) ->
      let base =
        match op with
        | Mul -> 18
        | Div | Mod -> 40
        | Add | Sub | And | Or | Xor -> 5
      in
      base + mem_penalty a + mem_penalty b + mem_penalty c
    | Bin2 (op, a, b) ->
      let base =
        match op with
        | Mul -> 18
        | Div | Mod -> 40
        | Add | Sub | And | Or | Xor -> 5
      in
      base + mem_penalty a + mem_penalty b
    | Fbin3 (_, _, _, _) | Fbin2 (_, _, _) -> 25
    | Neg (_, _) | Fneg (_, _) -> 6
    | Cvt_if (_, _) | Cvt_fi (_, _) -> 15
    | Cmp (a, b) -> 4 + mem_penalty a + mem_penalty b
    | Fcmp (_, _) -> 12
    | Bcc (_, _) -> 5
    | Br _ -> 5
    | Jmp_abs _ -> 6
    | Jsr_ind _ -> 10
    | Push a -> 5 + mem_penalty a
    | Vax_entry _ -> 14
    | Vax_ret -> 12
    | Syscall _ -> 40
    | Poll _ -> 6
    | Remque (_, _) -> 16
    | Nop -> 2
    | Halt -> 2
    | Sethi (_, _) | Link _ | Unlk | Rts | Save _ | Restore | Retl -> 2)
  | Arch.M68k -> (
    match insn with
    | Mov (a, b) -> 3 + mem_penalty a + mem_penalty b
    | Bin2 (op, a, b) | Bin3 (op, a, _, b) | Fbin3 (op, a, _, b) | Fbin2 (op, a, b) ->
      let base =
        match op with
        | Mul -> 30
        | Div | Mod -> 70
        | Add | Sub | And | Or | Xor -> 3
      in
      base + mem_penalty a + mem_penalty b
    | Neg (_, _) | Fneg (_, _) -> 4
    | Cvt_if (_, _) | Cvt_fi (_, _) -> 20
    | Cmp (a, b) -> 3 + mem_penalty a + mem_penalty b
    | Fcmp (_, _) -> 20
    | Bcc (_, _) -> 5
    | Br _ -> 5
    | Jmp_abs _ -> 10
    | Jsr_ind _ -> 8
    | Push a -> 5 + mem_penalty a
    | Link _ -> 8
    | Unlk -> 6
    | Rts -> 8
    | Syscall _ -> 35
    | Poll _ -> 6
    | Nop -> 2
    | Halt -> 2
    | Sethi (_, _) | Vax_entry _ | Vax_ret | Save _ | Restore | Retl | Remque (_, _) -> 2)
  | Arch.Sparc -> (
    match insn with
    | Mov (a, b) -> if mem_operand a || mem_operand b then 2 else 1
    | Bin3 (op, _, _, _) | Bin2 (op, _, _) -> (
      match op with
      | Mul -> 8
      | Div | Mod -> 20
      | Add | Sub | And | Or | Xor -> 1)
    | Fbin3 (_, _, _, _) | Fbin2 (_, _, _) -> 4
    | Neg (_, _) | Fneg (_, _) -> 1
    | Cvt_if (_, _) | Cvt_fi (_, _) -> 6
    | Cmp (_, _) -> 1
    | Fcmp (_, _) -> 4
    | Bcc (_, _) -> 2
    | Br _ -> 2
    | Jmp_abs _ -> 3 (* sethi + jmpl *)
    | Jsr_ind _ -> 2
    | Push _ -> 2
    | Save _ -> 22 (* eager window spill: 16 stores + bookkeeping *)
    | Restore -> 22
    | Retl -> 2
    | Sethi (_, _) -> 1
    | Syscall _ -> 30
    | Poll _ -> 3
    | Nop -> 1
    | Halt -> 1
    | Vax_entry _ | Vax_ret | Link _ | Unlk | Rts | Remque (_, _) -> 1)

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"

let cmp_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let mnemonic family insn =
  match family, insn with
  | Arch.Vax, Mov (_, _) -> "movl"
  | Arch.M68k, Mov (_, _) -> "move.l"
  | Arch.Sparc, Mov (_, _) -> "mov"
  | Arch.Vax, Bin3 (op, _, _, _) -> binop_name op ^ "l3"
  | (Arch.M68k | Arch.Sparc), Bin3 (op, _, _, _) -> binop_name op
  | _, Bin2 (op, _, _) -> binop_name op ^ ".l"
  | Arch.Vax, Fbin3 (op, _, _, _) -> binop_name op ^ "f3"
  | _, Fbin3 (op, _, _, _) -> "f" ^ binop_name op
  | _, Fbin2 (op, _, _) -> "f" ^ binop_name op ^ ".s"
  | _, Neg (_, _) -> "neg"
  | _, Fneg (_, _) -> "fneg"
  | _, Cvt_if (_, _) -> "cvtlf"
  | _, Cvt_fi (_, _) -> "cvtfl"
  | Arch.Vax, Cmp (_, _) -> "cmpl"
  | Arch.M68k, Cmp (_, _) -> "cmp.l"
  | Arch.Sparc, Cmp (_, _) -> "subcc"
  | _, Fcmp (_, _) -> "fcmp"
  | _, Bcc (c, _) -> "b" ^ cmp_name c
  | _, Br _ -> "br"
  | _, Jmp_abs _ -> "jmp"
  | Arch.Sparc, Jsr_ind _ -> "jmpl"
  | _, Jsr_ind _ -> "jsr"
  | _, Push _ -> "pushl"
  | _, Vax_entry _ -> "entry"
  | _, Vax_ret -> "ret"
  | _, Link _ -> "link"
  | _, Unlk -> "unlk"
  | _, Rts -> "rts"
  | _, Save _ -> "save"
  | _, Restore -> "restore"
  | _, Retl -> "retl"
  | _, Sethi (_, _) -> "sethi"
  | Arch.Vax, Syscall _ -> "chmk"
  | Arch.M68k, Syscall _ -> "trap"
  | Arch.Sparc, Syscall _ -> "ta"
  | _, Poll _ -> "poll"
  | _, Remque (_, _) -> "remque"
  | _, Nop -> "nop"
  | _, Halt -> "halt"

let pp family ppf insn =
  let pop = Operand.pp family in
  let preg r = Reg.name family r in
  let m = mnemonic family insn in
  match insn with
  | Mov (a, b)
  | Bin2 (_, a, b)
  | Fbin2 (_, a, b)
  | Neg (a, b)
  | Fneg (a, b)
  | Cvt_if (a, b)
  | Cvt_fi (a, b)
  | Cmp (a, b)
  | Fcmp (a, b) -> Format.fprintf ppf "%-8s %a, %a" m pop a pop b
  | Bin3 (_, a, b, c) | Fbin3 (_, a, b, c) ->
    Format.fprintf ppf "%-8s %a, %a, %a" m pop a pop b pop c
  | Bcc (_, t) -> Format.fprintf ppf "%-8s L%04x" m t
  | Br t -> Format.fprintf ppf "%-8s L%04x" m t
  | Jmp_abs a -> Format.fprintf ppf "%-8s @#%08x" m a
  | Jsr_ind r -> Format.fprintf ppf "%-8s (%s)" m (preg r)
  | Push a -> Format.fprintf ppf "%-8s %a" m pop a
  | Vax_entry n | Link n | Save n -> Format.fprintf ppf "%-8s #%d" m n
  | Sethi (i, r) -> Format.fprintf ppf "%-8s #%ld, %s" m i (preg r)
  | Syscall n | Poll n -> Format.fprintf ppf "%-8s #%d" m n
  | Remque (a, b) -> Format.fprintf ppf "%-8s (%s), %s" m (preg a) (preg b)
  | Vax_ret | Unlk | Rts | Restore | Retl | Nop | Halt -> Format.pp_print_string ppf m
