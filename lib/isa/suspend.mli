(** The unified suspension representation.

    One type describes every way a running segment can be suspended,
    subsuming what used to be two overlapping enums: the virtual CPU's
    [Machine.stop_reason] (why native execution handed control back) and
    the kernel's [Thread.resume] (what to do when the segment is next
    dispatched).  A parked segment's status carries a ['v t]; the value
    parameter is the runtime's value type (machine-level code
    instantiates it with [Ert.Value.t]), kept abstract here so the ISA
    layer stays value-free.

    Invariant table — which constructors appear where:

    {v
    constructor         produced by      resumable  wire tag
    ------------------  ---------------  ---------  --------
    Run                 CPU (Poll stop,  yes        1
                        quantum expiry),
                        kernel
    Deliver v           kernel           yes        2
    Complete v          kernel           yes        3
    Complete_dequeue s  kernel           yes        4
    Poll                CPU              no         —
    Syscall n           CPU              no         —
    Bottom_return       CPU              no         —
    Halt                CPU              no         —
    Trap t              CPU              no         —
    Fuel                CPU              no         —
    v}

    - {e produced by CPU}: [Machine.run] returns it to describe why the
      slice ended.  The kernel immediately consumes CPU-only
      constructors (dispatching the syscall, finishing the bottom
      return, reporting the trap); they are never stored in a
      [Thread.status] and never marshalled.
    - {e resumable}: may appear inside [Thread.Parked] — the segment is
      at a bus stop (or, for [Run] under a preemptive quantum, between
      stops) and [Kernel.step] knows how to resume it.
    - {e wire tag}: the byte tag {!Mobility.Mi_frame} writes; only
      resumable suspensions travel, because capture happens at bus
      stops.  The tags are fixed by the v2 wire format and must not be
      renumbered. *)

type trap =
  | Div_zero
  | Nil_deref
  | Mem_fault of int
  | Float_reserved of string
  | Stack_overflow
  | Bad_pc of int
  | Bad_insn of string  (** instruction invalid for this family *)

type 'v t =
  | Run  (** context is valid; just execute *)
  | Poll  (** at a [Poll] with a pending kernel request; PC at the poll *)
  | Syscall of int
      (** at a [Syscall n]; the context PC is left at the instruction *)
  | Bottom_return
      (** a return popped the sentinel return address 0: the caller's
          activation record lives in another stack segment, possibly on
          another node *)
  | Halt
  | Trap of trap
  | Fuel  (** fuel exhausted; under a quantum this is plain preemption *)
  | Deliver of 'v
      (** an invocation result arrived: put it in the return-value
          register, then execute (PC already at the stop) *)
  | Complete of 'v option
      (** parked at a [Syscall] instruction whose kernel service has
          completed (or completes trivially, like a migration arrival):
          set the result if any, pop the arguments, advance the PC *)
  | Complete_dequeue of int option
      (** parked at a monitor-exit dequeue stop: the kernel has unlinked
          a waiter (identified by segment id — a machine-independent
          name, so this state survives migration) or found the queue
          empty; on dispatch, fabricate a fresh queue node for the
          waiter and hand its address to the generated code *)

val resumable : 'v t -> bool
(** May this suspension appear inside [Thread.Parked]? *)

val wire_encodable : 'v t -> bool
(** May this suspension be marshalled?  Same set as {!resumable}: only
    parked segments are captured. *)

val pp_trap : Format.formatter -> trap -> unit

val pp :
  ?value:(Format.formatter -> 'v -> unit) -> Format.formatter -> 'v t -> unit
(** Omitting [value] prints carried values as ["<value>"]. *)
