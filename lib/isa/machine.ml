(* the trap and suspension types live in [Suspend]; [run] returns the
   machine-producible subset of the unified suspension type *)
type ctx = {
  arch : Arch.t;
  regs : int32 array;
  mutable pc : int;
  mutable cc : int;
  mutable poll_requested : bool;
  mutable skip_poll : bool;
  mutable stack_limit : int;
  mutable cycles : int;
  mutable insns : int;
}

exception Trapped of Suspend.trap

let create_ctx arch =
  {
    arch;
    regs = Array.make (Reg.count arch.Arch.family) 0l;
    pc = 0;
    cc = 0;
    poll_requested = false;
    skip_poll = false;
    stack_limit = Memory.low_bound;
    cycles = 0;
    insns = 0;
  }

let sparc_g0 = 0

let reg ctx r =
  if ctx.arch.Arch.family = Arch.Sparc && r = sparc_g0 then 0l else ctx.regs.(r)

let set_reg ctx r v =
  if ctx.arch.Arch.family = Arch.Sparc && r = sparc_g0 then () else ctx.regs.(r) <- v

let sp ctx = Int32.to_int (reg ctx (Reg.sp ctx.arch.Arch.family))
let set_sp ctx v = set_reg ctx (Reg.sp ctx.arch.Arch.family) (Int32.of_int v)
let fp ctx = Int32.to_int (reg ctx (Reg.fp ctx.arch.Arch.family))
let set_fp ctx v = set_reg ctx (Reg.fp ctx.arch.Arch.family) (Int32.of_int v)

let addr_of v =
  let a = Int32.to_int v land 0xFFFF_FFFF in
  if a = 0 then raise (Trapped Suspend.Nil_deref) else a

let load mem a =
  try Memory.load32 mem a with Memory.Fault x -> raise (Trapped (Suspend.Mem_fault x))

let store mem a v =
  try Memory.store32 mem a v with Memory.Fault x -> raise (Trapped (Suspend.Mem_fault x))

let get_operand ctx mem op =
  match op with
  | Operand.Reg r -> reg ctx r
  | Operand.Imm i -> i
  | Operand.Mem (Operand.Abs a) -> load mem (addr_of a)
  | Operand.Mem (Operand.Disp (r, d)) -> load mem (addr_of (reg ctx r) + d)
  | Operand.Mem (Operand.Autoinc r) ->
    let a = addr_of (reg ctx r) in
    let v = load mem a in
    set_reg ctx r (Int32.of_int (a + 4));
    v
  | Operand.Mem (Operand.Autodec r) ->
    let a = addr_of (reg ctx r) - 4 in
    set_reg ctx r (Int32.of_int a);
    load mem a

let set_operand ctx mem op v =
  match op with
  | Operand.Reg r -> set_reg ctx r v
  | Operand.Imm _ -> raise (Trapped (Suspend.Bad_insn "immediate destination"))
  | Operand.Mem (Operand.Abs a) -> store mem (addr_of a) v
  | Operand.Mem (Operand.Disp (r, d)) -> store mem (addr_of (reg ctx r) + d) v
  | Operand.Mem (Operand.Autoinc r) ->
    let a = addr_of (reg ctx r) in
    store mem a v;
    set_reg ctx r (Int32.of_int (a + 4))
  | Operand.Mem (Operand.Autodec r) ->
    let a = addr_of (reg ctx r) - 4 in
    set_reg ctx r (Int32.of_int a);
    store mem a v

let int_binop op a b =
  match op with
  | Insn.Add -> Int32.add a b
  | Insn.Sub -> Int32.sub a b
  | Insn.Mul -> Int32.mul a b
  | Insn.Div -> if Int32.equal b 0l then raise (Trapped Suspend.Div_zero) else Int32.div a b
  | Insn.Mod -> if Int32.equal b 0l then raise (Trapped Suspend.Div_zero) else Int32.rem a b
  | Insn.And -> Int32.logand a b
  | Insn.Or -> Int32.logor a b
  | Insn.Xor -> Int32.logxor a b

let float_binop fmt op a b =
  let decode v =
    try Float_format.decode fmt v
    with Float_format.Reserved_operand m -> raise (Trapped (Suspend.Float_reserved m))
  in
  let x = decode a and y = decode b in
  let r =
    match op with
    | Insn.Add -> x +. y
    | Insn.Sub -> x -. y
    | Insn.Mul -> x *. y
    | Insn.Div -> if y = 0.0 then raise (Trapped Suspend.Div_zero) else x /. y
    | Insn.Mod | Insn.And | Insn.Or | Insn.Xor ->
      raise (Trapped (Suspend.Bad_insn "non-arithmetic float op"))
  in
  try Float_format.encode fmt r
  with Float_format.Reserved_operand m -> raise (Trapped (Suspend.Float_reserved m))

let eval_cc cmp cc =
  match cmp with
  | Insn.Eq -> cc = 0
  | Insn.Ne -> cc <> 0
  | Insn.Lt -> cc < 0
  | Insn.Le -> cc <= 0
  | Insn.Gt -> cc > 0
  | Insn.Ge -> cc >= 0

let push ctx mem v =
  let a = sp ctx - 4 in
  set_sp ctx a;
  store mem a v;
  if a < ctx.stack_limit then raise (Trapped Suspend.Stack_overflow)

let pop ctx mem =
  let a = sp ctx in
  let v = load mem a in
  set_sp ctx (a + 4);
  v

let check_stack ctx =
  if sp ctx < ctx.stack_limit then raise (Trapped Suspend.Stack_overflow)

(* SPARC window registers *)
let l_base = 16
let i_base = 24
let o_base = 8

let sparc_save ctx mem size =
  let old_sp = sp ctx in
  let new_sp = old_sp - 64 - size in
  (* spill the caller's %l and %i window below the new stack pointer *)
  for k = 0 to 7 do
    store mem (new_sp + (4 * k)) ctx.regs.(l_base + k);
    store mem (new_sp + 32 + (4 * k)) ctx.regs.(i_base + k)
  done;
  (* window shift: %i <- %o; %i6 becomes the caller's SP, i.e. our FP *)
  for k = 0 to 7 do
    ctx.regs.(i_base + k) <- ctx.regs.(o_base + k)
  done;
  set_sp ctx new_sp;
  check_stack ctx

let sparc_restore ctx mem =
  let cur_sp = sp ctx in
  let saved_i = Array.init 8 (fun k -> ctx.regs.(i_base + k)) in
  for k = 0 to 7 do
    ctx.regs.(l_base + k) <- load mem (cur_sp + (4 * k));
    ctx.regs.(i_base + k) <- load mem (cur_sp + 32 + (4 * k))
  done;
  for k = 0 to 7 do
    ctx.regs.(o_base + k) <- saved_i.(k)
  done
(* %o6 = old %i6 = caller SP: the stack is popped by the window shift *)

type exec_state = {
  mutable img : Text.image option;
}

let image_for text state pc =
  match state.img with
  | Some img when pc >= img.Text.base && pc < img.Text.base + img.Text.code.Code.byte_size
    -> img
  | Some _ | None -> (
    match Text.find text pc with
    | Some img ->
      state.img <- Some img;
      img
    | None -> raise (Trapped (Suspend.Bad_pc pc)))

let run ctx ~mem ~text ~fuel =
  let family = ctx.arch.Arch.family in
  let fmt = ctx.arch.Arch.float_format in
  let state = { img = None } in
  (* direct-style hot loop: each arm tail-calls [exec] with the fuel it
     has left or returns its stop reason outright, so a slice costs no
     result/fuel refs, no closures, and no per-instruction stop check *)
  let rec exec fuel =
    if fuel <= 0 then Suspend.Fuel
    else begin
      let img = image_for text state ctx.pc in
      let base = img.Text.base in
      let code = img.Text.code in
      let idx = Code.index_at code (ctx.pc - base) in
      let insn = code.Code.insns.(idx) in
      let next_pc = ctx.pc + code.Code.insn_sizes.(idx) in
      ctx.cycles <- ctx.cycles + code.Code.insn_cycles.(idx);
      ctx.insns <- ctx.insns + 1;
      match insn with
      | Insn.Mov (a, b) ->
        set_operand ctx mem b (get_operand ctx mem a);
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Bin3 (op, a, b, c) ->
        set_operand ctx mem c
          (int_binop op (get_operand ctx mem a) (get_operand ctx mem b));
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Bin2 (op, a, b) ->
        let v = int_binop op (get_operand ctx mem b) (get_operand ctx mem a) in
        set_operand ctx mem b v;
        ctx.cc <- Int32.compare v 0l;
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Fbin3 (op, a, b, c) ->
        set_operand ctx mem c
          (float_binop fmt op (get_operand ctx mem a) (get_operand ctx mem b));
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Fbin2 (op, a, b) ->
        set_operand ctx mem b
          (float_binop fmt op (get_operand ctx mem b) (get_operand ctx mem a));
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Neg (a, b) ->
        set_operand ctx mem b (Int32.neg (get_operand ctx mem a));
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Fneg (a, b) ->
        set_operand ctx mem b
          (float_binop fmt Insn.Sub
             (Float_format.encode fmt 0.0)
             (get_operand ctx mem a));
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Cvt_if (a, b) ->
        set_operand ctx mem b
          (Float_format.encode fmt (Int32.to_float (get_operand ctx mem a)));
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Cvt_fi (a, b) ->
        let f =
          try Float_format.decode fmt (get_operand ctx mem a)
          with Float_format.Reserved_operand m -> raise (Trapped (Suspend.Float_reserved m))
        in
        set_operand ctx mem b (Int32.of_float f);
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Cmp (a, b) ->
        ctx.cc <- Int32.compare (get_operand ctx mem a) (get_operand ctx mem b);
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Fcmp (a, b) ->
        let decode v =
          try Float_format.decode fmt v
          with Float_format.Reserved_operand m -> raise (Trapped (Suspend.Float_reserved m))
        in
        ctx.cc <-
          Float.compare
            (decode (get_operand ctx mem a))
            (decode (get_operand ctx mem b));
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Bcc (c, target) ->
        ctx.pc <- (if eval_cc c ctx.cc then base + target else next_pc);
        exec (fuel - 1)
      | Insn.Br target ->
        ctx.pc <- base + target;
        exec (fuel - 1)
      | Insn.Jmp_abs target ->
        if target = 0 then raise (Trapped (Suspend.Bad_pc 0));
        ctx.pc <- target;
        exec (fuel - 1)
      | Insn.Jsr_ind r ->
        let target = Int32.to_int (reg ctx r) in
        if target = 0 then raise (Trapped (Suspend.Bad_pc 0));
        (match family with
        | Arch.Vax | Arch.M68k -> push ctx mem (Int32.of_int next_pc)
        | Arch.Sparc -> set_reg ctx 15 (Int32.of_int next_pc));
        ctx.pc <- target;
        exec (fuel - 1)
      | Insn.Push a ->
        push ctx mem (get_operand ctx mem a);
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Vax_entry size ->
        push ctx mem 0l;
        (* save mask word *)
        push ctx mem (Int32.of_int (fp ctx));
        set_fp ctx (sp ctx);
        set_sp ctx (sp ctx - size);
        check_stack ctx;
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Vax_ret ->
        set_sp ctx (fp ctx);
        set_fp ctx (Int32.to_int (pop ctx mem));
        let _mask = pop ctx mem in
        ret_to (Int32.to_int (pop ctx mem)) fuel
      | Insn.Link size ->
        push ctx mem (Int32.of_int (fp ctx));
        set_fp ctx (sp ctx);
        set_sp ctx (sp ctx - size);
        check_stack ctx;
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Unlk ->
        set_sp ctx (fp ctx);
        set_fp ctx (Int32.to_int (pop ctx mem));
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Rts -> ret_to (Int32.to_int (pop ctx mem)) fuel
      | Insn.Save size ->
        sparc_save ctx mem size;
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Restore ->
        sparc_restore ctx mem;
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Retl -> ret_to (Int32.to_int (reg ctx 15)) fuel
      | Insn.Sethi (i, r) ->
        set_reg ctx r (Int32.shift_left i 10);
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Syscall n -> Suspend.Syscall n
      | Insn.Poll _ ->
        if ctx.skip_poll then begin
          ctx.skip_poll <- false;
          ctx.pc <- next_pc;
          exec (fuel - 1)
        end
        else if ctx.poll_requested then Suspend.Poll
        else begin
          ctx.pc <- next_pc;
          exec (fuel - 1)
        end
      | Insn.Remque (rs, rd) ->
        let sent = addr_of (reg ctx rs) in
        let first = Int32.to_int (load mem sent) in
        if first = sent then set_reg ctx rd 0l
        else begin
          let next = load mem first in
          store mem sent next;
          store mem (Int32.to_int next + 4) (Int32.of_int sent);
          set_reg ctx rd (Int32.of_int first)
        end;
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Nop ->
        ctx.pc <- next_pc;
        exec (fuel - 1)
      | Insn.Halt -> Suspend.Halt
    end
  and ret_to target fuel =
    if target = 0 then Suspend.Bottom_return
    else begin
      ctx.pc <- target;
      exec (fuel - 1)
    end
  in
  try exec fuel with Trapped t -> Suspend.Trap t

let syscall_resume ctx ~text =
  match Text.find text ctx.pc with
  | None -> invalid_arg "Machine.syscall_resume: PC outside text"
  | Some img ->
    let idx = Code.index_at img.Text.code (ctx.pc - img.Text.base) in
    let insn = img.Text.code.Code.insns.(idx) in
    ctx.pc <- ctx.pc + Insn.size_bytes ctx.arch.Arch.family insn

let pp_trap = Suspend.pp_trap
let pp_stop ppf s = Suspend.pp ppf s
