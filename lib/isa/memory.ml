type t = {
  mutable data : Bytes.t;
  endian : Endian.t;
  (* write barrier for the incremental collector: while a mark cycle is
     active every 32-bit store reports the overwritten and the stored
     word (both as unsigned bits).  [None] — the normal state — costs a
     single branch per store. *)
  mutable barrier : (int -> int -> unit) option;
}

exception Fault of int

let low_bound = 0x100

let create ~endian ~size =
  let size = max size (low_bound + 4) in
  { data = Bytes.make size '\000'; endian; barrier = None }

let endian t = t.endian
let size t = Bytes.length t.data

let set_store_barrier t f = t.barrier <- Some f
let clear_store_barrier t = t.barrier <- None

let grow_to t wanted =
  if wanted > Bytes.length t.data then begin
    let nsize = max wanted (2 * Bytes.length t.data) in
    let ndata = Bytes.make nsize '\000' in
    Bytes.blit t.data 0 ndata 0 (Bytes.length t.data);
    t.data <- ndata
  end

let check t addr len =
  if addr < low_bound || addr + len > Bytes.length t.data then raise (Fault addr)

let load8 t addr =
  check t addr 1;
  Char.code (Bytes.unsafe_get t.data addr)

let store8 t addr v =
  check t addr 1;
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF))

let load32 t addr =
  check t addr 4;
  let b i = Char.code (Bytes.unsafe_get t.data (addr + i)) in
  Endian.int32_of_bytes t.endian (b 0) (b 1) (b 2) (b 3)

(* unchecked int-domain access for callers that have already done
   [check t addr 4] themselves (the threaded dispatcher inlines the
   bounds test so a fault can be attributed to the exact micro-op) *)
let unsafe_load32_bits t addr =
  let d = t.data in
  let b0 = Char.code (Bytes.unsafe_get d addr)
  and b1 = Char.code (Bytes.unsafe_get d (addr + 1))
  and b2 = Char.code (Bytes.unsafe_get d (addr + 2))
  and b3 = Char.code (Bytes.unsafe_get d (addr + 3)) in
  match t.endian with
  | Endian.Little -> b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)
  | Endian.Big -> b3 lor (b2 lsl 8) lor (b1 lsl 16) lor (b0 lsl 24)

let unsafe_store32_bits t addr v =
  (match t.barrier with
   | None -> ()
   | Some f -> f (unsafe_load32_bits t addr) (v land 0xFFFF_FFFF));
  let d = t.data in
  match t.endian with
  | Endian.Little ->
    Bytes.unsafe_set d addr (Char.unsafe_chr (v land 0xFF));
    Bytes.unsafe_set d (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set d (addr + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
    Bytes.unsafe_set d (addr + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))
  | Endian.Big ->
    Bytes.unsafe_set d addr (Char.unsafe_chr ((v lsr 24) land 0xFF));
    Bytes.unsafe_set d (addr + 1) (Char.unsafe_chr ((v lsr 16) land 0xFF));
    Bytes.unsafe_set d (addr + 2) (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set d (addr + 3) (Char.unsafe_chr (v land 0xFF))

let store32 t addr v =
  check t addr 4;
  unsafe_store32_bits t addr (Int32.to_int v land 0xFFFF_FFFF)

(* checked int-domain 32-bit access: identical bounds check and byte
   order to [load32]/[store32], but the word travels as bits in an
   untagged [int], so a frame slot access allocates nothing *)
let load32_bits t addr =
  check t addr 4;
  unsafe_load32_bits t addr

let store32_bits t addr v =
  check t addr 4;
  unsafe_store32_bits t addr v

let load16 t addr =
  check t addr 2;
  let b i = Char.code (Bytes.unsafe_get t.data (addr + i)) in
  Endian.int16_of_bytes t.endian (b 0) (b 1)

let store16 t addr v =
  check t addr 2;
  let b0, b1 = Endian.bytes_of_int16 t.endian v in
  Bytes.unsafe_set t.data addr (Char.unsafe_chr b0);
  Bytes.unsafe_set t.data (addr + 1) (Char.unsafe_chr b1)

let blit_string t addr s =
  check t addr (String.length s);
  Bytes.blit_string s 0 t.data addr (String.length s)

let read_string t addr len =
  check t addr len;
  Bytes.sub_string t.data addr len

let blit_within t ~src ~dst ~len =
  check t src len;
  check t dst len;
  Bytes.blit t.data src t.data dst len

let zero_fill t addr len =
  check t addr len;
  Bytes.fill t.data addr len '\000'
