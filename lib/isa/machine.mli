(** The virtual CPU: executes native code for one thread context.

    The interpreter plays the role of the processor.  It runs until the
    code itself transfers control to the kernel — at a [Syscall]
    instruction, at a loop-bottom [Poll] when the kernel has requested
    control, or when a return reaches the bottom of a stack segment —
    exactly the control-transfer discipline of the original Emerald
    (section 3.2): the runtime system never preempts a thread, so the only
    program-counter values it observes are bus stops. *)

type ctx = {
  arch : Arch.t;
  regs : int32 array;
  mutable pc : int;
  mutable cc : int;  (** condition codes, abstracted to a comparison sign *)
  mutable poll_requested : bool;
  mutable skip_poll : bool;
      (** pass the next poll unconditionally: set by the kernel when
          resuming a thread parked at a loop-bottom poll, so the same poll
          does not fire again before any progress is made *)
  mutable stack_limit : int;
  mutable cycles : int;  (** accumulated clock cycles *)
  mutable insns : int;  (** accumulated instruction count *)
}

exception Trapped of Suspend.trap
(** Raised by the execution primitives below on a machine trap; [run]
    (and {!Dispatch.run}) catch it at the slice boundary and return
    [Suspend.Trap].  Exposed so the threaded-dispatch engine can reuse
    the exact primitives — and therefore the exact trap behaviour — of
    the fetch/decode interpreter. *)

val create_ctx : Arch.t -> ctx
val reg : ctx -> Reg.t -> int32
val set_reg : ctx -> Reg.t -> int32 -> unit
val sp : ctx -> int
val set_sp : ctx -> int -> unit
val fp : ctx -> int
val set_fp : ctx -> int -> unit

(** {1 Execution primitives}

    The building blocks of the interpreter loop, shared with the
    threaded-dispatch engine ({!Dispatch}) so both execution paths have
    identical operand, arithmetic, trap and stack semantics by
    construction. *)

val addr_of : int32 -> int
val load : Memory.t -> int -> int32
val store : Memory.t -> int -> int32 -> unit
val get_operand : ctx -> Memory.t -> Operand.t -> int32
val set_operand : ctx -> Memory.t -> Operand.t -> int32 -> unit
val int_binop : Insn.binop -> int32 -> int32 -> int32
val float_binop : Float_format.t -> Insn.binop -> int32 -> int32 -> int32
val eval_cc : Insn.cmp -> int -> bool
val push : ctx -> Memory.t -> int32 -> unit
val pop : ctx -> Memory.t -> int32
val check_stack : ctx -> unit
val sparc_save : ctx -> Memory.t -> int -> unit
val sparc_restore : ctx -> Memory.t -> unit

val run : ctx -> mem:Memory.t -> text:Text.t -> fuel:int -> 'v Suspend.t
(** Execute instructions until a stop.  [fuel] bounds the number of
    instructions as a safety net; generated code reaches a bus stop on
    every loop iteration, so under the cooperative discipline it never
    runs dry (a preemptive quantum makes [Fuel] ordinary).  Only the
    machine-producible constructors of {!Suspend.t} are returned — see
    the invariant table in suspend.mli. *)

val syscall_resume : ctx -> text:Text.t -> unit
(** Advance the PC past the [Syscall] instruction it is stopped at, for
    kernel services that complete immediately. *)

val pp_trap : Format.formatter -> Suspend.trap -> unit
val pp_stop : Format.formatter -> 'v Suspend.t -> unit
