(** The virtual instruction sets.

    One OCaml type covers the union of the three families' instructions;
    each code generator emits only its family's subset, which
    {!Isa_validate.check} enforces.  Branch and call targets that are
    [int]s are byte offsets within the enclosing code object; absolute
    addresses travel in registers ({!Jsr_ind}).

    Program-counter values are byte offsets, and instruction encodings have
    family-specific sizes ({!size_bytes}): variable 1-6 byte VAX encodings,
    2-8 byte M68k encodings, fixed 4-byte SPARC words.  The same program
    point therefore has different PC values on different machines — the
    problem bus stops exist to solve. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Xor

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | Mov of Operand.t * Operand.t  (** [Mov (src, dst)] *)
  | Bin3 of binop * Operand.t * Operand.t * Operand.t
      (** three-operand integer op (VAX; SPARC with register operands):
          [dst <- src1 op src2] as [Bin3 (op, src1, src2, dst)] *)
  | Bin2 of binop * Operand.t * Operand.t
      (** two-operand integer op (M68k): [dst <- dst op src] as
          [Bin2 (op, src, dst)]; sets the condition codes *)
  | Fbin3 of binop * Operand.t * Operand.t * Operand.t
      (** float op on register images in the architecture's float format;
          only [Add], [Sub], [Mul], [Div] are valid *)
  | Fbin2 of binop * Operand.t * Operand.t
  | Neg of Operand.t * Operand.t  (** [Neg (src, dst)] *)
  | Fneg of Operand.t * Operand.t
  | Cvt_if of Operand.t * Operand.t  (** int to native-format float *)
  | Cvt_fi of Operand.t * Operand.t  (** float to int, truncating *)
  | Cmp of Operand.t * Operand.t  (** signed compare, sets condition codes *)
  | Fcmp of Operand.t * Operand.t
  | Bcc of cmp * int  (** conditional branch on condition codes *)
  | Br of int
  | Jmp_abs of int
      (** unconditional jump to an absolute text address, used by the
          dynamically generated bridge fragments (paper section 2.4) to
          re-enter a class image from outside it: VAX [JMP @#addr], M68k
          [jmp (addr).l], SPARC a folded [sethi %hi(addr); jmpl] pair *)
  | Jsr_ind of Reg.t
      (** indirect call to an absolute text address: VAX/M68k push the
          return address; SPARC writes it to %o7 *)
  | Push of Operand.t  (** VAX PUSHL *)
  | Vax_entry of int
      (** VAX procedure entry: push save mask word, push FP, FP <- SP,
          SP <- SP - size *)
  | Vax_ret  (** VAX RET: SP <- FP; pop FP; pop mask; pop PC *)
  | Link of int  (** M68k LINK A6,#-size *)
  | Unlk  (** M68k UNLK A6 *)
  | Rts  (** M68k RTS *)
  | Save of int
      (** SPARC SAVE with eager window spill: store %l0-7/%i0-7 below the
          new SP, shift %o -> %i (so FP <- caller SP), SP <- SP - 64 - size *)
  | Restore  (** SPARC RESTORE: reload the spilled window, shift %i -> %o *)
  | Retl  (** SPARC return: PC <- %o7 (used after [Restore]) *)
  | Sethi of int32 * Reg.t  (** SPARC: dst <- imm << 10 *)
  | Syscall of int  (** trap into the node kernel; a bus stop *)
  | Poll of int
      (** loop-bottom poll (the compare-SP-against-limit check of section
          3.2, folded into one cheap instruction): if the kernel has
          requested control, trap; otherwise fall through.  The operand is
          unused at run time but keeps encodings distinct.  A bus stop. *)
  | Remque of Reg.t * Reg.t
      (** VAX atomic queue unlink: [Remque (sentinel, dst)] dequeues the
          first element of the doubly linked list rooted at [sentinel]
          (flink at +0, blink at +4); [dst] receives the element address or
          0 when the queue is empty.  Single instruction only on the VAX —
          the source of the exit-only bus stops of section 3.3. *)
  | Nop
  | Halt  (** terminate the thread *)

val size_bytes : Arch.family -> t -> int
(** Encoded size in bytes; deterministic per family. *)

val cycles : Arch.family -> t -> int
(** Approximate execution cost in clock cycles, used by the virtual-time
    cost model. *)

val binop_name : binop -> string
val cmp_name : cmp -> string
val mnemonic : Arch.family -> t -> string
val pp : Arch.family -> Format.formatter -> t -> unit
