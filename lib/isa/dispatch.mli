(** Threaded-dispatch execution: the fetch/decode interpreter's fast
    replacement.

    Each straight-line run of instructions is translated once, on first
    execution, into a chain of per-instruction closures — operand
    addressing modes, cycle charges and fall-through targets resolved at
    translation time — and the compiler's two hot adjacent pairs
    (compare-then-branch, loop-bottom poll-then-branch) are fused into
    superinstructions.  Translations are cached per code object in a
    {!cache} (one per kernel, handed out by the code repository) and are
    valid only for the memory and load address they were built against.

    The engine is observationally identical to {!Machine.run}: same
    stops, same traps (including mid-instruction PC placement), same
    cycle and instruction counters, same fuel accounting, same
    [Suspend.t] and eviction-trap semantics.  The tier-1 trace tests
    hold it to that bit for bit. *)

type stats = {
  mutable st_blocks : int;  (** straight-line runs translated *)
  mutable st_insns : int;  (** instructions translated *)
  mutable st_fused : int;  (** superinstruction pairs fused *)
  mutable st_slices : int;  (** run slices driven *)
}

type cache

val create_cache : unit -> cache
val stats : cache -> stats

val run :
  cache -> Machine.ctx -> mem:Memory.t -> text:Text.t -> fuel:int -> 'v Suspend.t
(** Drop-in replacement for {!Machine.run}, translating lazily through
    [cache]. *)

(** {1 Static block partition}

    The partition the translator would produce, computed without
    executing — for [emdis --blocks] and the tests. *)

type block = {
  b_first : int;  (** instruction index of the leader *)
  b_last : int;  (** inclusive *)
  b_fused : int list;  (** indices heading a fused superinstruction *)
}

val describe_blocks : Code.t -> block list
